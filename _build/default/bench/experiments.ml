(* The experiment suite: one function per table/figure of DESIGN.md's
   experiment index. Each prints the rows the paper (and its companion
   research paper) reports; EXPERIMENTS.md records the expected shapes. *)

module Digraph = Gps.Graph.Digraph
module Strategy = Gps.Interactive.Strategy
module Oracle = Gps.Interactive.Oracle
module Simulate = Gps.Interactive.Simulate
module Session = Gps.Interactive.Session
module Sample = Gps.Learning.Sample
module Learner = Gps.Learning.Learner
module Eval = Gps.Query.Eval
module Metrics = Gps.Query.Metrics
module Rpq = Gps.Query.Rpq
module Prng = Gps.Graph.Prng
module View = Gps.Interactive.View
open Workloads

(* ---------------------------------------------------------------- *)
(* FIG-1: the motivating example and its selection *)

let fig1 () =
  rule ();
  print_endline "FIG-1  the geographical database and q = (tram+bus)*.cinema";
  rule ();
  let { graph = g; _ } = figure1 () in
  Format.printf "%a@." Digraph.pp g;
  let goal = q "(tram+bus)*.cinema" in
  Printf.printf "\nq selects: %s   (paper: N1, N2, N4, N6)\n"
    (String.concat ", " (Gps.evaluate g goal));
  List.iter
    (fun v ->
      match Gps.Query.Witness.find g goal v with
      | Some w -> Printf.printf "  %s\n" (Gps.Viz.Ascii.witness g w)
      | None -> ())
    (Eval.select_nodes g goal)

(* ---------------------------------------------------------------- *)
(* FIG-2: one traced interactive session (the scenario loop) *)

let fig2 () =
  rule ();
  print_endline "FIG-2  interactive scenario trace on Figure 1";
  rule ();
  let { graph = g; _ } = figure1 () in
  let goal = q "(tram+bus)*.cinema" in
  let transcript =
    Gps.Interactive.Transcript.record g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal)
  in
  print_string (Gps.Interactive.Transcript.render g transcript)

(* ---------------------------------------------------------------- *)
(* FIG-3a/3b: the zoomable neighborhood views *)

let fig3ab () =
  rule ();
  print_endline "FIG-3a/3b  neighborhood of N2 at radius 2, then zoomed to 3";
  rule ();
  let { graph = g; _ } = figure1 () in
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  let v2 = View.make_neighborhood g n2 ~radius:2 in
  print_string (Gps.Viz.Ascii.neighborhood g v2);
  print_newline ();
  let v3 = View.make_neighborhood g ~previous:v2.View.fragment n2 ~radius:3 in
  print_string (Gps.Viz.Ascii.neighborhood g v3)

(* FIG-3c: the candidate-path prefix tree *)

let fig3c () =
  rule ();
  print_endline "FIG-3c  candidate paths of N2 (length <= 3) given negative N5";
  rule ();
  let { graph = g; _ } = figure1 () in
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  let n5 = Option.get (Digraph.node_of_name g "N5") in
  match View.make_path_tree g n2 ~negatives:[ n5 ] ~max_len:3 with
  | Some tree -> print_string (Gps.Viz.Ascii.path_tree tree)
  | None -> print_endline "unexpected: no candidates"

(* ---------------------------------------------------------------- *)
(* EXP-INT: user interactions per strategy (the headline comparison) *)

let seeds = [ 11; 23; 37 ]

(* Static baseline: label uniformly random nodes until the learned query
   matches the goal on the instance; returns the number of labels (capped
   at |V|). *)
let static_labels g goal seed =
  let rng = Prng.create ~seed in
  let sel = Eval.select g goal in
  let order = Prng.shuffle rng (Digraph.nodes g) in
  let rec go sample used = function
    | [] -> used
    | v :: rest -> (
        let sample = if sel.(v) then Sample.add_pos sample v else Sample.add_neg sample v in
        let used = used + 1 in
        match Learner.learn g sample with
        | Learner.Learned lq when Eval.select g lq = sel -> used
        | Learner.Learned _ -> go sample used rest
        | Learner.Failed _ -> used)
  in
  go Sample.empty 0 order

let run_interactive g goal strategy =
  let trace = Simulate.run g ~strategy ~user:(Oracle.perfect ~goal) in
  let reached = Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal in
  (reached, trace)

let interactions () =
  rule ();
  print_endline
    "EXP-INT  user answers to reach the goal query (mean over seeds; L = labels only)";
  rule ();
  Printf.printf "%-12s %-5s %-30s %7s %7s %7s %7s %8s\n" "dataset" "query" "goal" "smart"
    "random" "degree" "smartL" "staticL";
  let datasets =
    [
      (city ~districts:24 ~seed:1, city_queries);
      (city ~districts:48 ~seed:2, city_queries);
      (bio ~nodes:120 ~seed:3, bio_queries);
    ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal = 0 then
            Printf.printf "%-12s %-5s %-30s %s\n" ds.name qname qs "(empty answer; skipped)"
          else begin
            let per_strategy strategy =
              mean
                (List.map
                   (fun seed ->
                     let strat =
                       if strategy = "random" then Strategy.random ~seed
                       else Result.get_ok (Strategy.by_name ~seed strategy)
                     in
                     let reached, trace = run_interactive ds.graph goal strat in
                     if reached then float_of_int trace.Simulate.questions
                     else float_of_int (2 * Digraph.n_nodes ds.graph))
                   seeds)
            in
            let smart_labels =
              mean
                (List.map
                   (fun seed ->
                     ignore seed;
                     let _, trace = run_interactive ds.graph goal Strategy.smart in
                     float_of_int trace.Simulate.counters.Session.labels)
                   [ 1 ])
            in
            let static_mean =
              mean (List.map (fun s -> float_of_int (static_labels ds.graph goal s)) seeds)
            in
            Printf.printf "%-12s %-5s %-30s %7.1f %7.1f %7.1f %7.1f %8.1f\n" ds.name qname qs
              (per_strategy "smart") (per_strategy "random") (per_strategy "degree")
              smart_labels static_mean
          end)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* EXP-PRUNE: how much of the graph the user never has to look at *)

let pruning () =
  rule ();
  print_endline "EXP-PRUNE  nodes pruned as uninformative / implied positive";
  rule ();
  Printf.printf "%-12s %-5s %6s %8s %8s %8s %9s\n" "dataset" "query" "|V|" "labeled" "pruned"
    "implied+" "untouched";
  let datasets =
    [
      (city ~districts:24 ~seed:1, city_queries);
      (city ~districts:48 ~seed:2, city_queries);
      (bio ~nodes:120 ~seed:3, bio_queries);
    ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then begin
            let _, trace = run_interactive ds.graph goal Strategy.smart in
            let n = Digraph.n_nodes ds.graph in
            let labeled = trace.Simulate.counters.Session.labels in
            let untouched = n - labeled - trace.Simulate.pruned - trace.Simulate.implied_pos in
            Printf.printf "%-12s %-5s %6d %8d %8d %8d %9d\n" ds.name qname n labeled
              trace.Simulate.pruned trace.Simulate.implied_pos (max 0 untouched)
          end)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* EXP-TIME: scaling of the kernels and of whole sessions *)

let time_once f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.0)

let time_best ~repeat f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let _, ms = time_once f in
    if ms < !best then best := ms
  done;
  !best

let time_scaling () =
  rule ();
  print_endline "EXP-TIME  per-operation latency vs graph size (ms; best of 3)";
  rule ();
  Printf.printf "%7s %7s %10s %12s %12s %12s\n" "|V|" "|E|" "eval(ms)" "witness(ms)"
    "learn(ms)" "session(ms)";
  List.iter
    (fun districts ->
      let ds = city ~districts ~seed:5 in
      let g = ds.graph in
      let goal = q "(tram+bus)*.cinema" in
      let eval_ms = time_best ~repeat:3 (fun () -> ignore (Eval.select g goal)) in
      let witness_ms =
        time_best ~repeat:3 (fun () ->
            ignore (Gps.Query.Witness.find g goal 0))
      in
      let sel = Eval.select g goal in
      let nodes = Digraph.nodes g in
      let pos = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> sel.(v)) nodes) in
      let neg =
        List.filteri (fun i _ -> i < 3) (List.filter (fun v -> not sel.(v)) nodes)
      in
      let sample = List.fold_left Sample.add_pos Sample.empty pos in
      let sample = List.fold_left Sample.add_neg sample neg in
      let learn_ms = time_best ~repeat:3 (fun () -> ignore (Learner.learn g sample)) in
      let session_ms =
        time_best ~repeat:1 (fun () ->
            ignore (Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal)))
      in
      Printf.printf "%7d %7d %10.2f %12.2f %12.2f %12.2f\n" (Digraph.n_nodes g)
        (Digraph.n_edges g) eval_ms witness_ms learn_ms session_ms)
    [ 25; 50; 100; 200; 400 ]

(* ---------------------------------------------------------------- *)
(* EXP-F1: quality of the intermediate hypotheses (learning curve) *)

let f1_curve () =
  rule ();
  print_endline "EXP-F1  F-measure of the hypothesis vs user answers (mean over queries)";
  rule ();
  let ds = city ~districts:32 ~seed:4 in
  let checkpoints = [ 2; 4; 6; 8; 12; 16; 24 ] in
  Printf.printf "%-8s" "answers";
  List.iter (fun c -> Printf.printf " %8d" c) checkpoints;
  print_newline ();
  let curve strategy =
    (* F1 of the latest hypothesis proposed at <= c answers, averaged *)
    let per_query (_, qs) =
      let goal = q qs in
      if Eval.count ds.graph goal = 0 then None
      else begin
        let trace = Simulate.run ds.graph ~strategy ~user:(Oracle.perfect ~goal) in
        let expected = Eval.select ds.graph goal in
        let f1_at c =
          let applicable =
            List.filter (fun s -> s.Simulate.at_questions <= c) trace.Simulate.history
          in
          match List.rev applicable with
          | [] -> 0.0
          | last :: _ ->
              (Metrics.score_sets ~expected ~got:(Eval.select ds.graph last.Simulate.hypothesis))
                .Metrics.f1
        in
        Some (List.map f1_at checkpoints)
      end
    in
    let rows = List.filter_map per_query city_queries in
    List.map (fun i -> mean (List.map (fun row -> List.nth row i) rows))
      (List.init (List.length checkpoints) Fun.id)
  in
  List.iter
    (fun (name, strategy) ->
      Printf.printf "%-8s" name;
      List.iter (fun v -> Printf.printf " %8.3f" v) (curve strategy);
      print_newline ())
    [ ("smart", Strategy.smart); ("random", Strategy.random ~seed:1) ]

(* ---------------------------------------------------------------- *)
(* EXP-PV: what path validation buys (demo scenarios 2 vs 3) *)

let path_validation () =
  rule ();
  print_endline "EXP-PV  goal recovery with vs without path validation effort";
  rule ();
  Printf.printf "%-12s %-5s %-30s %12s %12s\n" "dataset" "query" "goal" "with (3)"
    "without (2)";
  let datasets =
    [
      (figure1 (), [ ("q", "(tram+bus)*.cinema") ]);
      (city ~districts:24 ~seed:1, city_queries);
      (bio ~nodes:120 ~seed:3, bio_queries);
    ]
  in
  let recovered g goal user =
    let trace = Simulate.run g ~strategy:Strategy.smart ~user in
    Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then
            Printf.printf "%-12s %-5s %-30s %12b %12b\n" ds.name qname qs
              (recovered ds.graph goal (Oracle.perfect ~goal))
              (recovered ds.graph goal (Oracle.eager ~goal)))
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* EXP-STATIC: free labeling vs guided interaction *)

let static_comparison () =
  rule ();
  print_endline "EXP-STATIC  static free labeling vs interactive answers (mean over seeds)";
  rule ();
  Printf.printf "%-12s %-5s %8s %11s %13s\n" "dataset" "query" "|V|" "static lbl" "interactive";
  let datasets =
    [
      (figure1 (), [ ("q", "(tram+bus)*.cinema") ]);
      (city ~districts:24 ~seed:1, city_queries);
      (city ~districts:48 ~seed:2, city_queries);
    ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then begin
            let stat =
              mean (List.map (fun s -> float_of_int (static_labels ds.graph goal s)) seeds)
            in
            let inter =
              let _, trace = run_interactive ds.graph goal Strategy.smart in
              trace.Simulate.questions
            in
            Printf.printf "%-12s %-5s %8d %11.1f %13d\n" ds.name qname
              (Digraph.n_nodes ds.graph) stat inter
          end)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* ABL-GEN: what state-merging generalization buys (learner ablation) *)

let generalize_ablation () =
  rule ();
  print_endline
    "ABL-GEN  learner ablation: F1 of the final query / its size (RPNI vs baselines)";
  rule ();
  Printf.printf "%-12s %-5s %10s %10s %10s %8s %8s %8s\n" "dataset" "query" "rpniF1" "disjF1"
    "unionF1" "rpni|q|" "disj|q|" "union|q|";
  let datasets =
    [ (city ~districts:24 ~seed:1, city_queries); (bio ~nodes:120 ~seed:3, bio_queries) ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then begin
            (* spread the sample across the answer set (every k-th selected
               node) so the witness words are diverse — a clustered sample
               makes every learner coincide and hides the ablation *)
            let sel = Eval.select ds.graph goal in
            let nodes = Digraph.nodes ds.graph in
            let spread k l =
              let n = List.length l in
              let stride = max 1 (n / k) in
              List.filteri (fun i _ -> i mod stride = 0) l
              |> List.filteri (fun i _ -> i < k)
            in
            let pos = spread 5 (List.filter (fun v -> sel.(v)) nodes) in
            let neg = spread 5 (List.filter (fun v -> not sel.(v)) nodes) in
            let sample = List.fold_left Sample.add_pos Sample.empty pos in
            let sample = List.fold_left Sample.add_neg sample neg in
            (* validate each positive with its path of interest (shortest
               goal witness), as the interactive scenario would — without
               validated paths every learner falls back to the same
               trivial uncovered words and the ablation shows nothing *)
            let sample =
              List.fold_left
                (fun s v ->
                  match Gps.Query.Witness.find ds.graph goal v with
                  | Some w -> Sample.validate s v w.Gps.Query.Witness.word
                  | None -> s)
                sample pos
            in
            let score learn =
              match learn ds.graph sample with
              | Learner.Learned lq ->
                  let f1 =
                    (Metrics.score ds.graph ~goal ~hypothesis:lq).Metrics.f1
                  in
                  (f1, Gps.Regex.Regex.size (Rpq.regex lq))
              | Learner.Failed _ -> (nan, 0)
            in
            let rpni_f1, rpni_sz = score (fun g s -> Learner.learn g s) in
            let disj_f1, disj_sz = score (fun g s -> Gps.Learning.Baseline.disjunction g s) in
            let union_f1, union_sz = score (fun g s -> Gps.Learning.Baseline.label_union g s) in
            Printf.printf "%-12s %-5s %10.3f %10.3f %10.3f %8d %8d %8d\n" ds.name qname rpni_f1
              disj_f1 union_f1 rpni_sz disj_sz union_sz
          end)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* ABL-EVAL: evaluation against the NFA product vs the minimized-DFA
   product *)

let eval_ablation () =
  rule ();
  print_endline "ABL-EVAL  evaluation via NFA product vs minimized-DFA product (ms, best of 5)";
  rule ();
  Printf.printf "%7s %-30s %8s %8s %10s %10s\n" "|V|" "query" "|Qnfa|" "|Qdfa|" "nfa(ms)"
    "dfa(ms)";
  List.iter
    (fun districts ->
      let ds = city ~districts ~seed:5 in
      List.iter
        (fun qs ->
          let goal = q qs in
          let nfa_states = Gps.Automata.Nfa.n_states (Rpq.nfa goal) in
          let dfa =
            Gps.Automata.Dfa.minimize (Gps.Automata.Dfa.determinize (Rpq.nfa goal))
          in
          let nfa_ms = time_best ~repeat:5 (fun () -> ignore (Eval.select ds.graph goal)) in
          let dfa_ms =
            time_best ~repeat:5 (fun () -> ignore (Eval.select_via_dfa ds.graph goal))
          in
          Printf.printf "%7d %-30s %8d %8d %10.3f %10.3f\n" (Digraph.n_nodes ds.graph) qs
            nfa_states dfa.Gps.Automata.Dfa.n_states nfa_ms dfa_ms)
        [ "(tram+bus)*.cinema"; "(bus+tram).(bus+tram).cinema"; "metro*.museum" ])
    [ 50; 200 ]

(* ---------------------------------------------------------------- *)
(* ABL-MIN: Hopcroft vs Brzozowski minimization *)

let minimize_ablation () =
  rule ();
  print_endline "ABL-MIN  DFA minimization: Hopcroft vs Brzozowski (ms over 200 random regexes)";
  rule ();
  let rng = Prng.create ~seed:77 in
  let syms = [ "a"; "b"; "c" ] in
  let rec random_regex depth =
    if depth = 0 then Gps.Regex.Regex.sym (Prng.pick rng syms)
    else
      match Prng.int rng 4 with
      | 0 -> Gps.Regex.Regex.sym (Prng.pick rng syms)
      | 1 -> Gps.Regex.Regex.alt [ random_regex (depth - 1); random_regex (depth - 1) ]
      | 2 -> Gps.Regex.Regex.seq [ random_regex (depth - 1); random_regex (depth - 1) ]
      | _ -> Gps.Regex.Regex.star (random_regex (depth - 1))
  in
  let regexes = List.init 200 (fun _ -> random_regex 5) in
  let nfas = List.map Gps.Automata.Compile.to_nfa regexes in
  let dfas = List.map Gps.Automata.Dfa.determinize nfas in
  let hop_ms =
    time_best ~repeat:3 (fun () -> List.iter (fun d -> ignore (Gps.Automata.Dfa.minimize d)) dfas)
  in
  let brz_ms =
    time_best ~repeat:3 (fun () ->
        List.iter (fun a -> ignore (Gps.Automata.Dfa.minimize_brzozowski a)) nfas)
  in
  Printf.printf "hopcroft (incl. determinize amortized out): %8.2f ms\n" hop_ms;
  Printf.printf "brzozowski (from the NFA, both reversals) : %8.2f ms\n" brz_ms;
  let agree =
    List.for_all2
      (fun d a ->
        Gps.Automata.Dfa.equal_lang (Gps.Automata.Dfa.minimize d)
          (Gps.Automata.Dfa.minimize_brzozowski a))
      dfas nfas
  in
  Printf.printf "languages agree on all 200 inputs        : %b\n" agree

(* ---------------------------------------------------------------- *)
(* ABL-BOUND: the informativeness bound k *)

let bound_ablation () =
  rule ();
  print_endline "ABL-BOUND  informativeness bound k: answers and session time (city-32)";
  rule ();
  Printf.printf "%6s %10s %12s %12s\n" "k" "answers" "reached" "session(ms)";
  let ds = city ~districts:32 ~seed:4 in
  List.iter
    (fun k ->
      let config = { Session.default_config with Session.bound = k } in
      let run_one (_, qs) =
        let goal = q qs in
        if Eval.count ds.graph goal = 0 then None
        else begin
          let t0 = Sys.time () in
          let trace =
            Simulate.run ~config ds.graph ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal)
          in
          let ms = (Sys.time () -. t0) *. 1000.0 in
          let ok = Eval.select ds.graph trace.Simulate.outcome.Session.query = Eval.select ds.graph goal in
          Some (float_of_int trace.Simulate.questions, (if ok then 1.0 else 0.0), ms)
        end
      in
      let rows = List.filter_map run_one city_queries in
      let avg f = mean (List.map f rows) in
      Printf.printf "%6d %10.1f %12.2f %12.1f\n" k
        (avg (fun (a, _, _) -> a))
        (avg (fun (_, b, _) -> b))
        (avg (fun (_, _, c) -> c)))
    [ 2; 3; 4; 6 ]

(* ---------------------------------------------------------------- *)
(* ABL-SUGG: the path-suggestion heuristic (longest vs shortest) under a
   trusting user who always accepts the suggestion *)

let suggestion_ablation () =
  rule ();
  print_endline
    "ABL-SUGG  suggestion heuristic under a trusting user (recovers goal on instance?)";
  rule ();
  Printf.printf "%-12s %-5s %-30s %10s %10s\n" "dataset" "query" "goal" "longest" "shortest";
  let datasets =
    [
      (figure1 (), [ ("q", "(tram+bus)*.cinema") ]);
      (city ~districts:24 ~seed:1, city_queries);
      (bio ~nodes:120 ~seed:3, bio_queries);
    ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then begin
            let run prefer =
              let config = { Session.default_config with Session.prefer_suggestion = prefer } in
              let trace =
                Simulate.run ~config ds.graph ~strategy:Strategy.smart
                  ~user:(Oracle.trusting ~goal)
              in
              Eval.select ds.graph trace.Simulate.outcome.Session.query
              = Eval.select ds.graph goal
            in
            Printf.printf "%-12s %-5s %-30s %10b %10b\n" ds.name qname qs (run `Longest)
              (run `Shortest)
          end)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* EXP-CONV: the identification guarantee — examples needed until the
   learner's output selects exactly the goal's nodes (teacher protocol) *)

let convergence () =
  rule ();
  print_endline
    "EXP-CONV  examples until convergence (counterexample teacher; paper: polynomial)";
  rule ();
  Printf.printf "%-12s %-5s %-30s %9s %8s %9s\n" "dataset" "query" "goal" "examples" "|goal|"
    "|learned|";
  let transpole = { name = "transpole"; graph = Gps.Graph.Datasets.transpole () } in
  let datasets =
    [
      (figure1 (), [ ("q", "(tram+bus)*.cinema") ]);
      (transpole, [ ("T1", "metro*.cinema"); ("T2", "(metro+tram+bus)*.museum"); ("T3", "bus.park") ]);
      (city ~districts:24 ~seed:1, city_queries);
      (bio ~nodes:120 ~seed:3, bio_queries);
    ]
  in
  List.iter
    (fun (ds, queries) ->
      List.iter
        (fun (qname, qs) ->
          let goal = q qs in
          if Eval.count ds.graph goal > 0 then
            match Gps.Learning.Convergence.teach ds.graph ~goal with
            | Ok p ->
                Printf.printf "%-12s %-5s %-30s %9d %8d %9d\n" ds.name qname qs
                  (Sample.size p.Gps.Learning.Convergence.sample)
                  (Gps.Regex.Regex.size (Rpq.regex goal))
                  (Gps.Regex.Regex.size (Rpq.regex p.Gps.Learning.Convergence.learned))
            | Error p ->
                Printf.printf "%-12s %-5s %-30s %9s (gave up after %d rounds)\n" ds.name qname
                  qs "-" p.Gps.Learning.Convergence.rounds)
        queries)
    datasets

(* ---------------------------------------------------------------- *)
(* ABL-CSR: adjacency-list evaluation vs frozen CSR snapshots *)

let csr_ablation () =
  rule ();
  print_endline "ABL-CSR  evaluation over adjacency lists vs a frozen CSR snapshot (ms, best of 5)";
  rule ();
  Printf.printf "%7s %7s %12s %12s %9s\n" "|V|" "|E|" "lists(ms)" "csr(ms)" "speedup";
  List.iter
    (fun districts ->
      let ds = city ~districts ~seed:5 in
      let g = ds.graph in
      let csr = Gps.Graph.Csr.freeze g in
      let goal = q "(tram+bus)*.cinema" in
      let lists_ms = time_best ~repeat:5 (fun () -> ignore (Eval.select g goal)) in
      let csr_ms = time_best ~repeat:5 (fun () -> ignore (Eval.select_frozen g csr goal)) in
      Printf.printf "%7d %7d %12.3f %12.3f %8.1fx\n" (Digraph.n_nodes g) (Digraph.n_edges g)
        lists_ms csr_ms (lists_ms /. csr_ms))
    [ 50; 200; 800; 3200 ]

(* ---------------------------------------------------------------- *)
(* ABL-SAMPLED: exact smart scoring vs Monte-Carlo sampled scoring *)

let sampled_ablation () =
  rule ();
  print_endline
    "ABL-SAMPLED  exact vs sampled smart strategy (answers / session ms, mean over queries)";
  rule ();
  Printf.printf "%-10s %-18s %10s %10s %10s\n" "dataset" "strategy" "answers" "reached"
    "session(ms)";
  List.iter
    (fun districts ->
      let ds = city ~districts ~seed:4 in
      let strategies =
        [
          ("smart (exact)", fun ~seed:_ -> Strategy.smart);
          ("sampled-32", fun ~seed -> Strategy.sampled_smart ~seed ~samples:32);
          ("sampled-8", fun ~seed -> Strategy.sampled_smart ~seed ~samples:8);
        ]
      in
      List.iter
        (fun (name, strategy) ->
          let rows =
            List.filter_map
              (fun (_, qs) ->
                let goal = q qs in
                if Eval.count ds.graph goal = 0 then None
                else begin
                  let t0 = Sys.time () in
                  let r = Gps.Interactive.Batch.run_once ds.graph ~strategy:(strategy ~seed:7) ~goal in
                  let ms = (Sys.time () -. t0) *. 1000.0 in
                  Some
                    ( float_of_int r.Gps.Interactive.Batch.questions,
                      (if r.Gps.Interactive.Batch.reached_goal then 1.0 else 0.0),
                      ms )
                end)
              city_queries
          in
          let avg f = mean (List.map f rows) in
          Printf.printf "%-10s %-18s %10.1f %10.2f %10.1f\n" ds.name name
            (avg (fun (a, _, _) -> a))
            (avg (fun (_, b, _) -> b))
            (avg (fun (_, _, c) -> c)))
        strategies)
    [ 32; 96 ]

(* ---------------------------------------------------------------- *)
(* ABL-INC: incremental evaluation vs recompute-from-scratch under edge
   insertions *)

let incremental_ablation () =
  rule ();
  print_endline
    "ABL-INC  maintaining selection under edge insertions: scratch vs incremental (ms total)";
  rule ();
  Printf.printf "%7s %8s %12s %12s %9s\n" "|V|" "inserts" "scratch(ms)" "incr(ms)" "speedup";
  List.iter
    (fun districts ->
      let full = (city ~districts ~seed:6).graph in
      let goal = q "(tram+bus)*.cinema" in
      (* hold back a third of the edges, then insert them one by one *)
      let edges = Digraph.edges full in
      let keep, inserts =
        List.partition (fun e -> Hashtbl.hash e mod 3 <> 0) edges
      in
      let base () =
        let g = Digraph.create () in
        Digraph.iter_nodes (fun v -> ignore (Digraph.add_node g (Digraph.node_name full v))) full;
        List.iter
          (fun e ->
            Digraph.link g
              (Digraph.node_name full e.Digraph.src)
              (Digraph.label_name full e.Digraph.lbl)
              (Digraph.node_name full e.Digraph.dst))
          keep;
        g
      in
      let insert g e =
        Digraph.add_edge g ~src:e.Digraph.src
          ~label:(Digraph.label_name full e.Digraph.lbl)
          ~dst:e.Digraph.dst
      in
      (* node ids coincide: base creates nodes in the same order *)
      let scratch_ms =
        let g = base () in
        let t0 = Sys.time () in
        List.iter
          (fun e ->
            insert g e;
            ignore (Eval.select g goal))
          inserts;
        (Sys.time () -. t0) *. 1000.0
      in
      let incr_ms =
        let g = base () in
        let inc = Gps.Query.Incremental.create g goal in
        let t0 = Sys.time () in
        List.iter
          (fun e ->
            insert g e;
            Gps.Query.Incremental.add_edge inc ~src:e.Digraph.src
              ~label:(Digraph.label_name full e.Digraph.lbl)
              ~dst:e.Digraph.dst;
            ignore (Gps.Query.Incremental.count inc))
          inserts;
        (Sys.time () -. t0) *. 1000.0
      in
      Printf.printf "%7d %8d %12.2f %12.2f %8.1fx\n" (Digraph.n_nodes full)
        (List.length inserts) scratch_ms incr_ms (scratch_ms /. incr_ms))
    [ 50; 200; 800 ]

(* ---------------------------------------------------------------- *)
(* EXP-USERS: sensitivity to user behavior *)

let user_matrix () =
  rule ();
  print_endline
    "EXP-USERS  user-behavior sensitivity (mean over city queries; answers / goal recovery)";
  rule ();
  Printf.printf "%-14s %10s %8s %8s %10s\n" "user" "answers" "zooms" "reached" "validations";
  let ds = city ~districts:32 ~seed:4 in
  let users goal =
    [
      ("perfect", Oracle.perfect ~goal);
      ("eager", Oracle.eager ~goal);
      ("hesitant(+2)", Oracle.hesitant ~goal ~extra_zooms:2);
      ("trusting", Oracle.trusting ~goal);
    ]
  in
  let by_user = Hashtbl.create 8 in
  List.iter
    (fun (_, qs) ->
      let goal = q qs in
      if Eval.count ds.graph goal > 0 then
        List.iter
          (fun (name, user) ->
            let trace = Simulate.run ds.graph ~strategy:Strategy.smart ~user in
            let reached =
              Eval.select ds.graph trace.Simulate.outcome.Session.query = Eval.select ds.graph goal
            in
            let row =
              ( float_of_int trace.Simulate.questions,
                float_of_int trace.Simulate.counters.Session.zooms,
                (if reached then 1.0 else 0.0),
                float_of_int trace.Simulate.counters.Session.validations )
            in
            Hashtbl.replace by_user name
              (row :: Option.value ~default:[] (Hashtbl.find_opt by_user name)))
          (users goal))
    city_queries;
  List.iter
    (fun name ->
      match Hashtbl.find_opt by_user name with
      | None -> ()
      | Some rows ->
          let avg f = mean (List.map f rows) in
          Printf.printf "%-14s %10.1f %8.1f %8.2f %10.1f\n" name
            (avg (fun (a, _, _, _) -> a))
            (avg (fun (_, b, _, _) -> b))
            (avg (fun (_, _, c, _) -> c))
            (avg (fun (_, _, _, d) -> d)))
    [ "perfect"; "eager"; "hesitant(+2)"; "trusting" ]

(* ---------------------------------------------------------------- *)
(* EXP-LSTAR: the active-learning ideal — queries Angluin's L* needs to
   identify each goal language exactly (vs the session's answer counts) *)

let lstar_counts () =
  rule ();
  print_endline
    "EXP-LSTAR  L* with a perfect teacher: queries to identify each goal language exactly";
  rule ();
  Printf.printf "%-5s %-32s %12s %12s %8s\n" "query" "goal" "membership" "equivalence" "states";
  List.iter
    (fun (qname, qs) ->
      let goal = q qs in
      match Gps.Learning.Lstar.learn_query goal with
      | Ok (learned, stats) ->
          let open Gps.Learning.Lstar in
          Printf.printf "%-5s %-32s %12d %12d %8d %s\n" qname qs stats.membership_queries
            stats.equivalence_queries stats.states
            (if Rpq.equal_lang learned goal then "" else "(NOT EQUAL!)")
      | Error e -> Printf.printf "%-5s %-32s error: %s\n" qname qs e)
    (city_queries @ bio_queries)
