bench/experiments.ml: Array Format Fun Gps Hashtbl List Option Printf Result String Sys Workloads
