bench/main.ml: Analyze Array Bechamel Benchmark Experiments Gps Hashtbl Instance List Measure Printf Staged Sys Test Time Workloads
