bench/workloads.ml: Gps List Printf String
