bench/main.mli:
