(** Convergence of the learner — the paper's identification guarantee.

    "After a certain number of examples (this number being polynomial in
    the size of the query), the learning algorithm is guaranteed to return
    in polynomial time a query equivalent to the user's goal query."

    This module plays the teacher: starting from the empty sample, it
    repeatedly compares the learner's output with the goal query {e on the
    instance}, picks a disagreement node, labels it correctly (validating
    the goal witness path for positives), and re-learns — exactly the
    counterexample-driven protocol behind the guarantee. The number of
    rounds needed is the empirical "characteristic sample" size reported
    in the convergence benchmark. *)

type progress = {
  rounds : int;                 (** counterexamples supplied *)
  sample : Sample.t;            (** the final sample *)
  learned : Gps_query.Rpq.t;
}

val teach :
  ?max_rounds:int ->
  ?fuel:int ->
  Gps_graph.Digraph.t ->
  goal:Gps_query.Rpq.t ->
  (progress, progress) result
(** [Ok p] when the learned query selects exactly the goal's nodes
    (reached within [max_rounds], default 200); [Error p] carries the
    state at give-up (also on a learner failure, which cannot happen with
    goal-consistent labels unless the witness budget trips). Disagreement
    nodes are picked lowest-id first, so the run is deterministic. *)

val examples_to_converge :
  ?max_rounds:int -> Gps_graph.Digraph.t -> goal:Gps_query.Rpq.t -> int option
(** Sample size at convergence ([None] if not reached). *)
