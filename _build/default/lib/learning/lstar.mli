(** Angluin's L* — active learning with membership and equivalence
    queries.

    The paper frames GPS in "the well-known framework of learning with
    membership queries" and cites Angluin's *Queries and concept learning*
    as reference [1]. This module implements the canonical algorithm of
    that framework for regular languages: maintain an observation table
    over prefixes S and suffixes E, keep it closed, conjecture the DFA of
    its distinct rows, and refine with the suffixes of each counterexample
    (the Maler–Pnueli variant, which needs no consistency check because S
    stays prefix-closed and distinct rows are distinct states).

    Where the RPNI pipeline learns passively from whatever examples the
    session gathered, L* drives the questioning itself — the theoretical
    ideal the paper's practical strategies approximate. The benchmark
    [--exp lstar] reports how many queries the ideal needs on the goal
    suite. *)

type stats = {
  membership_queries : int;   (** distinct words asked (memoized) *)
  equivalence_queries : int;  (** conjectures submitted *)
  states : int;               (** states of the final hypothesis *)
}

val learn :
  alphabet:string list ->
  membership:(string list -> bool) ->
  equivalence:(Gps_automata.Dfa.t -> string list option) ->
  ?max_rounds:int ->
  unit ->
  (Gps_automata.Dfa.t * stats, string) result
(** [equivalence h] returns a counterexample word on which [h] and the
    target disagree, or [None] to accept. [max_rounds] (default 10_000)
    bounds conjectures. The result is the minimal DFA of the target
    (Angluin's theorem) whenever the teacher is truthful. *)

val learn_query :
  Gps_query.Rpq.t -> (Gps_query.Rpq.t * stats, string) result
(** Learn back a known query through a perfect teacher built from it
    (membership = word matching, equivalence = symmetric-difference
    emptiness with witness). The result is language-equal to the input —
    property-tested. *)
