module Digraph = Gps_graph.Digraph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Witness = Gps_query.Witness

type progress = { rounds : int; sample : Sample.t; learned : Rpq.t }

let teach ?(max_rounds = 200) ?fuel g ~goal =
  let goal_sel = Eval.select g goal in
  let disagreement learned_sel =
    let rec go v =
      if v >= Digraph.n_nodes g then None
      else if goal_sel.(v) <> learned_sel.(v) then Some v
      else go (v + 1)
    in
    go 0
  in
  let label sample v =
    if goal_sel.(v) then begin
      let sample = Sample.add_pos sample v in
      match Witness.find g goal v with
      | Some w -> Sample.validate sample v w.Witness.word
      | None -> sample (* unreachable: v is goal-selected *)
    end
    else Sample.add_neg sample v
  in
  let rec loop sample rounds =
    match Learner.learn ?fuel g sample with
    | Learner.Failed _ ->
        Error { rounds; sample; learned = Rpq.of_regex Gps_regex.Regex.empty }
    | Learner.Learned learned -> (
        let learned_sel = Eval.select g learned in
        if learned_sel = goal_sel then Ok { rounds; sample; learned }
        else if rounds >= max_rounds then Error { rounds; sample; learned }
        else
          match disagreement learned_sel with
          | None -> Ok { rounds; sample; learned }
          | Some v -> loop (label sample v) (rounds + 1))
  in
  loop Sample.empty 0

let examples_to_converge ?max_rounds g ~goal =
  match teach ?max_rounds g ~goal with
  | Ok p -> Some (Sample.size p.sample)
  | Error _ -> None
