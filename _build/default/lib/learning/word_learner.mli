(** Learning path queries from example {e words} (no graph involved).

    The companion paper grounds graph-query learning in classical regular
    language inference: a path query is first of all a word language. This
    module exposes that layer directly — learn from positive and negative
    label words — which is also what powers unit-testable
    identification-in-the-limit experiments. *)

type failure = Contradiction of string list
(** A word labeled both positive and negative. *)

val learn :
  pos:string list list ->
  neg:string list list ->
  (Gps_query.Rpq.t, failure) result
(** RPNI over the PTA of [pos] with the oracle "accepts no word of [neg]".
    With [pos = []] the empty query is returned. The result accepts every
    positive and no negative word. *)

val learn_exn : pos:string list list -> neg:string list list -> Gps_query.Rpq.t

val consistent_with : Gps_query.Rpq.t -> pos:string list list -> neg:string list list -> bool
(** Acceptance check used in tests. *)

val characteristic_words :
  ?max_len:int -> Gps_query.Rpq.t -> string list list * string list list
(** A (positive, negative) word sample drawn from the query: its accepted
    words up to [max_len] (default 4, capped at 64 words) and the rejected
    words over its own alphabet up to the same length (same cap). Feeding
    these back into {!learn} recovers a query equivalent on words up to
    that length — the empirical identification experiment. *)
