module Digraph = Gps_graph.Digraph
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type t = { pos : Iset.t; neg : Iset.t; validated : string list Imap.t }

let empty = { pos = Iset.empty; neg = Iset.empty; validated = Imap.empty }

let add_pos t v =
  if Iset.mem v t.neg then
    invalid_arg (Printf.sprintf "Sample.add_pos: node %d is already negative" v)
  else { t with pos = Iset.add v t.pos }

let add_neg t v =
  if Iset.mem v t.pos then
    invalid_arg (Printf.sprintf "Sample.add_neg: node %d is already positive" v)
  else { t with neg = Iset.add v t.neg }

let validate t v word =
  if not (Iset.mem v t.pos) then
    invalid_arg (Printf.sprintf "Sample.validate: node %d is not positive" v)
  else { t with validated = Imap.add v word t.validated }

let pos t = Iset.elements t.pos
let neg t = Iset.elements t.neg
let validated t v = Imap.find_opt v t.validated
let is_pos t v = Iset.mem v t.pos
let is_neg t v = Iset.mem v t.neg
let is_labeled t v = is_pos t v || is_neg t v
let size t = Iset.cardinal t.pos + Iset.cardinal t.neg

let of_names g ~pos ~neg =
  let node name =
    match Digraph.node_of_name g name with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Sample.of_names: unknown node %S" name)
  in
  let t = List.fold_left (fun t n -> add_pos t (node n)) empty pos in
  List.fold_left (fun t n -> add_neg t (node n)) t neg

let pp g ppf t =
  let names set = String.concat ", " (List.map (Digraph.node_name g) (Iset.elements set)) in
  Format.fprintf ppf "@[<v>positive: {%s}@,negative: {%s}" (names t.pos) (names t.neg);
  Imap.iter
    (fun v w ->
      Format.fprintf ppf "@,path of %s: %s" (Digraph.node_name g v) (String.concat "." w))
    t.validated;
  Format.fprintf ppf "@]"
