module Dfa = Gps_automata.Dfa
module Nfa = Gps_automata.Nfa

type stats = { membership_queries : int; equivalence_queries : int; states : int }

(* Observation table: prefixes S (prefix-closed, in discovery order),
   suffixes E (suffix set, in discovery order), and the memoized
   membership function. A "row" is the membership vector of s·e over E. *)
type table = {
  alphabet : string list;
  mutable prefixes : string list list;   (* S *)
  mutable suffixes : string list list;   (* E *)
  memo : (string list, bool) Hashtbl.t;
  ask : string list -> bool;
  mutable asked : int;
}

let member t w =
  match Hashtbl.find_opt t.memo w with
  | Some b -> b
  | None ->
      let b = t.ask w in
      Hashtbl.add t.memo w b;
      t.asked <- t.asked + 1;
      b

let row t s = List.map (fun e -> member t (s @ e)) t.suffixes

(* Close the table: every one-symbol extension of a prefix must have the
   row of some prefix; otherwise promote the extension to S and retry. *)
let rec close t =
  let known = List.map (fun s -> row t s) t.prefixes in
  let missing =
    List.find_opt
      (fun ext -> not (List.mem (row t ext) known))
      (List.concat_map (fun s -> List.map (fun a -> s @ [ a ]) t.alphabet) t.prefixes)
  in
  match missing with
  | None -> ()
  | Some ext ->
      t.prefixes <- t.prefixes @ [ ext ];
      close t

(* Build the hypothesis DFA: states = distinct rows, start = row(ε),
   accepting iff T(s) = true, transitions via row(s·a). *)
let hypothesis t =
  let rows = ref [] in
  let id_of r =
    match List.assoc_opt r !rows with
    | Some i -> i
    | None ->
        let i = List.length !rows in
        rows := !rows @ [ (r, i) ];
        i
  in
  (* canonical representative prefix per row id, first occurrence wins *)
  let reps = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let i = id_of (row t s) in
      if not (Hashtbl.mem reps i) then Hashtbl.add reps i s)
    t.prefixes;
  let n = List.length !rows in
  let alphabet = Array.of_list (List.sort compare t.alphabet) in
  let delta =
    Array.init n (fun i ->
        let s = Hashtbl.find reps i in
        Array.map (fun a -> id_of (row t (s @ [ a ]))) alphabet)
  in
  let finals = Array.make n false in
  Hashtbl.iter (fun i s -> finals.(i) <- member t s) reps;
  {
    Dfa.alphabet;
    n_states = n;
    start = id_of (row t []);
    finals;
    delta;
  }

let learn ~alphabet ~membership ~equivalence ?(max_rounds = 10_000) () =
  if alphabet = [] then Error "Lstar.learn: empty alphabet"
  else begin
    let t =
      {
        alphabet;
        prefixes = [ [] ];
        suffixes = [ [] ];
        memo = Hashtbl.create 256;
        ask = membership;
        asked = 0;
      }
    in
    let eq_queries = ref 0 in
    let rec loop round =
      if round > max_rounds then Error "Lstar.learn: round budget exceeded"
      else begin
        close t;
        let h = hypothesis t in
        incr eq_queries;
        match equivalence h with
        | None ->
            Ok
              ( h,
                {
                  membership_queries = t.asked;
                  equivalence_queries = !eq_queries;
                  states = h.Dfa.n_states;
                } )
        | Some cex ->
            (* sanity: a truthful teacher's counterexample disagrees *)
            if Dfa.accepts h cex = membership cex then
              Error "Lstar.learn: teacher returned a non-counterexample"
            else begin
              (* add every suffix of the counterexample to E *)
              let rec suffixes = function [] -> [ [] ] | _ :: rest as w -> w :: suffixes rest in
              List.iter
                (fun e -> if not (List.mem e t.suffixes) then t.suffixes <- t.suffixes @ [ e ])
                (suffixes cex);
              loop (round + 1)
            end
      end
    in
    loop 1
  end

let learn_query q =
  let target_nfa = Gps_query.Rpq.nfa q in
  let alphabet =
    match Nfa.symbols target_nfa with
    | [] -> [ "a" ] (* empty/epsilon languages still need some alphabet *)
    | syms -> syms
  in
  let target = Dfa.determinize ~alphabet target_nfa in
  let membership w = Dfa.accepts target w in
  let equivalence h = Dfa.distinguishing_word h target in
  Result.map
    (fun (h, stats) -> (Gps_query.Rpq.of_nfa (Dfa.to_nfa h), stats))
    (learn ~alphabet ~membership ~equivalence ())
