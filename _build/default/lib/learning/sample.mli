(** Labeled node examples on a graph database.

    A sample collects what the user has said so far: nodes labeled
    positive (should be selected), nodes labeled negative (should not),
    and, for positive nodes, the validated {e path of interest} — the
    witness word the user confirmed in the Figure 3(c) interaction. *)

type t

val empty : t

val add_pos : t -> Gps_graph.Digraph.node -> t
(** @raise Invalid_argument if the node is already labeled negative. *)

val add_neg : t -> Gps_graph.Digraph.node -> t
(** @raise Invalid_argument if the node is already labeled positive. *)

val validate : t -> Gps_graph.Digraph.node -> string list -> t
(** Record the user's path of interest for a positive node (replacing any
    previous one). @raise Invalid_argument if the node is not positive. *)

val pos : t -> Gps_graph.Digraph.node list
(** Ascending node order. *)

val neg : t -> Gps_graph.Digraph.node list
val validated : t -> Gps_graph.Digraph.node -> string list option
val is_pos : t -> Gps_graph.Digraph.node -> bool
val is_neg : t -> Gps_graph.Digraph.node -> bool
val is_labeled : t -> Gps_graph.Digraph.node -> bool
val size : t -> int
(** Total number of labeled nodes. *)

val of_names : Gps_graph.Digraph.t -> pos:string list -> neg:string list -> t
(** Convenience for tests and examples. @raise Invalid_argument on unknown
    node names. *)

val pp : Gps_graph.Digraph.t -> Format.formatter -> t -> unit
