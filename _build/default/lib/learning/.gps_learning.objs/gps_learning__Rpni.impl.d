lib/learning/rpni.ml: Array Fun Gps_automata Hashtbl List
