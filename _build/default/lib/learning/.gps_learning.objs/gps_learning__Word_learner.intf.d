lib/learning/word_learner.mli: Gps_query
