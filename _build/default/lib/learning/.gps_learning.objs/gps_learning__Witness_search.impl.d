lib/learning/witness_search.ml: Gps_graph Hashtbl Int List Queue Set
