lib/learning/word_learner.ml: Gps_automata Gps_query Gps_regex List Printf Rpni String
