lib/learning/witness_search.mli: Gps_graph
