lib/learning/baseline.mli: Gps_graph Learner Sample
