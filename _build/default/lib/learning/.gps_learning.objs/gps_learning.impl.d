lib/learning/gps_learning.ml: Baseline Convergence Learner Lstar Repair Rpni Sample Static Witness_search Word_learner
