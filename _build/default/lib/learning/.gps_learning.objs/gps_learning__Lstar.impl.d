lib/learning/lstar.ml: Array Gps_automata Gps_query Hashtbl List Result
