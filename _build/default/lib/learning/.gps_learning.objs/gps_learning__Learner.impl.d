lib/learning/learner.ml: Format Gps_automata Gps_graph Gps_query Gps_regex List Rpni Sample String Witness_search
