lib/learning/repair.mli: Format Gps_graph Sample
