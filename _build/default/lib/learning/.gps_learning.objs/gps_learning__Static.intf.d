lib/learning/static.mli: Format Gps_graph Sample
