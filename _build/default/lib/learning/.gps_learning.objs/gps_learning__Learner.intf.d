lib/learning/learner.mli: Format Gps_graph Gps_query Sample Stdlib
