lib/learning/lstar.mli: Gps_automata Gps_query
