lib/learning/static.ml: Format Gps_graph List Sample Witness_search
