lib/learning/convergence.ml: Array Gps_graph Gps_query Gps_regex Learner Sample
