lib/learning/baseline.ml: Gps_query Gps_regex Learner List Sample String
