lib/learning/repair.ml: Format Gps_graph List Sample String Witness_search
