lib/learning/sample.ml: Format Gps_graph Int List Map Printf Set String
