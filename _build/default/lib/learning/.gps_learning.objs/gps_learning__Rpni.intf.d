lib/learning/rpni.mli: Gps_automata
