lib/learning/convergence.mli: Gps_graph Gps_query Sample
