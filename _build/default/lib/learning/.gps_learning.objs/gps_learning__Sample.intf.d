lib/learning/sample.mli: Format Gps_graph
