module Rpq = Gps_query.Rpq
module Nfa = Gps_automata.Nfa
module Pta = Gps_automata.Pta

type failure = Contradiction of string list

let find_contradiction ~pos ~neg =
  List.find_opt (fun w -> List.mem w neg) pos

let learn ~pos ~neg =
  match find_contradiction ~pos ~neg with
  | Some w -> Error (Contradiction w)
  | None -> (
      match pos with
      | [] -> Ok (Rpq.of_regex Gps_regex.Regex.empty)
      | _ ->
          let pta = Pta.build pos in
          let nfa = Rpni.generalize_words pta ~neg_words:neg in
          Ok (Rpq.of_nfa nfa))

let learn_exn ~pos ~neg =
  match learn ~pos ~neg with
  | Ok q -> q
  | Error (Contradiction w) ->
      invalid_arg
        (Printf.sprintf "Word_learner.learn_exn: %S is both positive and negative"
           (String.concat "." w))

let consistent_with q ~pos ~neg =
  List.for_all (fun w -> Rpq.matches_word q w) pos
  && not (List.exists (fun w -> Rpq.matches_word q w) neg)

let characteristic_words ?(max_len = 4) q =
  let cap = 64 in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let nfa = Rpq.nfa q in
  let pos = take cap (Nfa.enumerate nfa ~max_len) in
  (* negatives: all words over the query's own alphabet up to max_len that
     the query rejects *)
  let sigma = Nfa.symbols nfa in
  let rec words_up_to len =
    if len = 0 then [ [] ]
    else
      let shorter = words_up_to (len - 1) in
      shorter @ List.concat_map (fun w -> List.map (fun a -> a :: w) sigma)
                  (List.filter (fun w -> List.length w = len - 1) shorter)
  in
  let neg =
    take cap (List.filter (fun w -> not (Rpq.matches_word q w)) (words_up_to max_len))
  in
  (pos, neg)
