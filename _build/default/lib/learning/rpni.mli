(** Step (ii) of the paper's learning algorithm: generalize the prefix
    tree of witness paths by state merging.

    This is RPNI-style inference with one twist: instead of a finite set
    of negative {e words}, the inconsistency oracle is semantic —
    "the hypothesis selects a negative {e node}" — supplied by the caller
    as a predicate on candidate automata (the engine checks
    [L(A) ∩ paths(n) = ∅] via RPQ evaluation). States of the PTA are
    considered in breadth-first order; each is merged with the
    lowest-numbered compatible earlier block (folding nondeterminism away
    determinately), or promoted if none is compatible. The result accepts
    every witness word and satisfies the oracle. *)

val generalize :
  Gps_automata.Pta.t ->
  consistent:(Gps_automata.Nfa.t -> bool) ->
  Gps_automata.Nfa.t
(** @raise Invalid_argument if the oracle rejects the PTA itself (the
    sample is then inconsistent — some witness word is covered). The
    returned automaton is trimmed and deterministic. *)

val generalize_words :
  Gps_automata.Pta.t -> neg_words:string list list -> Gps_automata.Nfa.t
(** Classic RPNI: the oracle is "accepts none of the negative words".
    Used for language-level learning (no graph involved) and as a
    reference point in tests — the companion paper's word-learning
    foundation. *)

val merge_count : unit -> int
(** Merges attempted by the latest {!generalize} call (successful or
    rolled back) — surfaced for the benchmark harness. *)
