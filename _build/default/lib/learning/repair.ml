module Digraph = Gps_graph.Digraph

type suggestion =
  | Drop_positive of Digraph.node
  | Drop_negatives of Digraph.node * Digraph.node list

let informative ?max_len g v negatives =
  match Witness_search.search g ?max_len v ~negatives with
  | Witness_search.Found _ -> true
  | Witness_search.Uninformative | Witness_search.Timeout -> false

(* Greedy minimization: try to put withdrawn negatives back one by one,
   keeping the conflict resolved. *)
let minimize_withdrawal ?max_len g v ~kept ~withdrawn =
  List.fold_left
    (fun (kept, withdrawn) n ->
      if informative ?max_len g v (n :: kept) then (n :: kept, withdrawn)
      else (kept, n :: withdrawn))
    (kept, []) withdrawn

let suggest ?max_len g sample =
  let negatives = Sample.neg sample in
  let conflicting =
    List.filter (fun v -> not (informative ?max_len g v negatives)) (Sample.pos sample)
  in
  List.concat_map
    (fun v ->
      let drop_pos = Drop_positive v in
      (* can withdrawing negatives alone fix v? start from "withdraw all",
         then greedily re-add *)
      if informative ?max_len g v [] then begin
        let _, withdrawn = minimize_withdrawal ?max_len g v ~kept:[] ~withdrawn:negatives in
        [ drop_pos; Drop_negatives (v, List.sort compare withdrawn) ]
      end
      else
        (* even with no negatives the node has no path at all beyond the
           covered ones — only ε, which any negative covers; dropping the
           positive is the only repair *)
        [ drop_pos ])
    conflicting

let apply sample suggestion =
  let rebuild ~drop_pos ~drop_negs =
    let s =
      List.fold_left
        (fun s v -> if List.mem v drop_pos then s else Sample.add_pos s v)
        Sample.empty (Sample.pos sample)
    in
    let s =
      List.fold_left
        (fun s v -> if List.mem v drop_negs then s else Sample.add_neg s v)
        s (Sample.neg sample)
    in
    (* preserve validated paths of surviving positives *)
    List.fold_left
      (fun s v ->
        if List.mem v drop_pos then s
        else match Sample.validated sample v with Some w -> Sample.validate s v w | None -> s)
      s (Sample.pos sample)
  in
  match suggestion with
  | Drop_positive v -> rebuild ~drop_pos:[ v ] ~drop_negs:[]
  | Drop_negatives (_, negs) -> rebuild ~drop_pos:[] ~drop_negs:negs

let pp_suggestion g ppf = function
  | Drop_positive v ->
      Format.fprintf ppf "withdraw the positive label of %s" (Digraph.node_name g v)
  | Drop_negatives (v, negs) ->
      Format.fprintf ppf "to keep %s positive, withdraw the negative label(s) of %s"
        (Digraph.node_name g v)
        (String.concat ", " (List.map (Digraph.node_name g) negs))
