(** Repairing inconsistent labelings.

    The static scenario is "the only one where we let the user make
    mistakes by labeling nodes inconsistently" (paper, Section 3). When
    that happens the learner can only report failure; this module goes one
    step further and proposes {e repairs}: minimal label withdrawals that
    restore consistency, so the front end can ask "did you mean …?"
    instead of starting over. *)

type suggestion =
  | Drop_positive of Gps_graph.Digraph.node
      (** withdrawing this positive label resolves all conflicts it
          causes *)
  | Drop_negatives of Gps_graph.Digraph.node * Gps_graph.Digraph.node list
      (** for this conflicting positive, withdrawing this (greedily
          minimized) set of negative labels uncovers one of its paths *)

val suggest :
  ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> suggestion list
(** One {!Drop_positive} per conflicting positive node, plus a
    {!Drop_negatives} alternative when a (greedy) negative subset
    withdrawal also works. Empty when the sample is already consistent. *)

val apply : Sample.t -> suggestion -> Sample.t
(** The sample with the suggested labels withdrawn. (Samples are
    re-built, since labels are otherwise append-only.) *)

val pp_suggestion : Gps_graph.Digraph.t -> Format.formatter -> suggestion -> unit
