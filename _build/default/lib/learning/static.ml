module Digraph = Gps_graph.Digraph

type verdict = Consistent | Conflict of Digraph.node | Undecided of Digraph.node

let check ?fuel ?max_len g sample =
  let negatives = Sample.neg sample in
  let rec go = function
    | [] -> Consistent
    | v :: rest -> (
        match Witness_search.search g ?fuel ?max_len v ~negatives with
        | Witness_search.Found _ -> go rest
        | Witness_search.Uninformative -> Conflict v
        | Witness_search.Timeout -> Undecided v)
  in
  go (Sample.pos sample)

let conflicts ?fuel ?max_len g sample =
  let negatives = Sample.neg sample in
  List.filter
    (fun v ->
      match Witness_search.search g ?fuel ?max_len v ~negatives with
      | Witness_search.Uninformative -> true
      | Witness_search.Found _ | Witness_search.Timeout -> false)
    (Sample.pos sample)

let pp_verdict g ppf = function
  | Consistent -> Format.pp_print_string ppf "consistent"
  | Conflict v ->
      Format.fprintf ppf "inconsistent: positive node %s has all paths covered by negatives"
        (Digraph.node_name g v)
  | Undecided v ->
      Format.fprintf ppf "undecided: budget exhausted on node %s" (Digraph.node_name g v)
