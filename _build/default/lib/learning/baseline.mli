(** Baseline learners, for the ablation studies.

    The paper's learner generalizes witness paths by state merging. These
    baselines isolate what each ingredient buys:

    - {!disjunction} skips generalization entirely: the learned query is
      the plain disjunction of the witness words. Always consistent, never
      generalizes — on unseen data it under-selects, and its size grows
      linearly with the number of positive examples.
    - {!label_union} over-generalizes: the query is [(l1+...+lk)*.(f1+...+fm)]
      where the li are all labels seen anywhere in witness words and the
      fj the final labels; kept only if consistent, otherwise falls back
      to {!disjunction}. A crude "guess the shape" heuristic.

    Both share {!Learner}'s witness-word machinery (validated paths first,
    search otherwise), so the comparison isolates the generalization
    step. *)

val disjunction :
  ?fuel:int -> ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> Learner.result

val label_union :
  ?fuel:int -> ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> Learner.result
