module Regex = Gps_regex.Regex
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval

let with_words ?fuel ?max_len g sample k =
  match Sample.pos sample with
  | [] -> Learner.Learned (Rpq.of_regex Regex.empty)
  | _ -> (
      match Learner.witness_words ?fuel ?max_len g sample with
      | Error f -> Learner.Failed f
      | Ok words -> k words)

let disjunction ?fuel ?max_len g sample =
  with_words ?fuel ?max_len g sample (fun words ->
      Learner.Learned (Rpq.of_regex (Regex.alt (List.map Regex.word words))))

let label_union ?fuel ?max_len g sample =
  with_words ?fuel ?max_len g sample (fun words ->
      let finals =
        List.sort_uniq String.compare
          (List.filter_map (fun w -> match List.rev w with [] -> None | l :: _ -> Some l) words)
      in
      let inners =
        List.sort_uniq String.compare
          (List.concat_map
             (fun w -> match List.rev w with [] -> [] | _ :: rest -> rest)
             words)
      in
      let guess =
        Regex.seq
          [
            Regex.star (Regex.alt (List.map Regex.sym inners));
            Regex.alt (List.map Regex.sym finals);
          ]
      in
      let q = Rpq.of_regex guess in
      if
        (not (Regex.is_empty_lang guess))
        && Eval.consistent g q ~pos:(Sample.pos sample) ~neg:(Sample.neg sample)
      then Learner.Learned q
      else
        Learner.Learned (Rpq.of_regex (Regex.alt (List.map Regex.word words))))
