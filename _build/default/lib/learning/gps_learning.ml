(** The paper's learning algorithm: witness-path search for positive
    nodes, prefix-tree generalization by state merging under the
    "selects no negative node" oracle, plus the static-labeling
    consistency checker. *)

module Sample = Sample
module Witness_search = Witness_search
module Rpni = Rpni
module Learner = Learner
module Static = Static
module Baseline = Baseline
module Convergence = Convergence
module Word_learner = Word_learner
module Repair = Repair
module Lstar = Lstar
