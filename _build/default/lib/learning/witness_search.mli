(** Step (i) of the paper's learning algorithm: for a positive node, find a
    path {e not covered by any negative node}.

    A word [w] is covered by a negative [n] iff [w ∈ paths(n)]; a
    consistent query must avoid all covered words, so the witness chosen
    for a positive node must be uncovered. The search runs a BFS over
    pairs [(S_v, S_N)] of subset-simulation frontiers — nodes reachable
    from the positive node, and from the set of negatives, by the current
    word — looking for a reachable pair with [S_v ≠ ∅] and [S_N = ∅].
    Exact (no length bound needed: the pair space is finite), but
    worst-case exponential, which is why the paper bounds consistency
    checking; [fuel] caps the number of expanded pairs and makes the
    search effectively polynomial, returning [`Timeout] when exceeded. *)

type outcome =
  | Found of string list   (** a shortest uncovered path, as label names *)
  | Uninformative          (** every path of the node is covered — no consistent
                               query can select it (the paper's pruning criterion) *)
  | Timeout                (** fuel exhausted before deciding *)

val search :
  Gps_graph.Digraph.t ->
  ?fuel:int ->
  ?max_len:int ->
  Gps_graph.Digraph.node ->
  negatives:Gps_graph.Digraph.node list ->
  outcome
(** [fuel] defaults to 100_000 expanded pairs; [max_len] (default
    unbounded) additionally caps the word length, after which the node is
    reported [Uninformative] — this is the bounded variant the
    interactive strategies use. *)

val count_uncovered :
  Gps_graph.Digraph.t ->
  Gps_graph.Digraph.node ->
  negatives:Gps_graph.Digraph.node list ->
  max_len:int ->
  int
(** Number of distinct uncovered words of length at most [max_len] — the
    informativeness score the paper's smart strategy ranks nodes by. *)
