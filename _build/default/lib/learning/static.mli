(** The static-labeling scenario (first part of the paper's demo).

    The user freely browses the whole graph and labels any nodes she
    likes; only then is the learner run. Unlike the interactive scenario —
    where only informative nodes are proposed, so every labeling stays
    consistent — free labeling can be contradictory, and the paper points
    out this is the one scenario where mistakes are possible. This module
    diagnoses a labeling before learning from it. *)

type verdict =
  | Consistent
      (** some query consistent with the labels exists (and {!Learner.learn}
          will find one) *)
  | Conflict of Gps_graph.Digraph.node
      (** this positive node cannot be selected by any query avoiding the
          negatives — every path it has is covered *)
  | Undecided of Gps_graph.Digraph.node
      (** the search budget ran out while analyzing this node *)

val check : ?fuel:int -> ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> verdict

val conflicts :
  ?fuel:int -> ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> Gps_graph.Digraph.node list
(** All conflicting positive nodes (not just the first). *)

val pp_verdict : Gps_graph.Digraph.t -> Format.formatter -> verdict -> unit
