module Digraph = Gps_graph.Digraph
module Ws = Gps_learning.Witness_search

let is_informative g ~negatives ~bound v =
  match Ws.search g ~max_len:bound v ~negatives with
  | Ws.Found _ -> true
  | Ws.Uninformative | Ws.Timeout -> false

let score g ~negatives ~bound v = Ws.count_uncovered g v ~negatives ~max_len:bound

module Iset = Set.Make (Int)

let sampled_score g ~negatives ~bound ~samples ~rng v =
  let module Prng = Gps_graph.Prng in
  (* one random walk from v; uncovered iff at some prefix the negatives'
     subset-frontier dies while the walk is still alive *)
  let walk_is_uncovered () =
    let rec go u neg_frontier steps =
      if Iset.is_empty neg_frontier then true
      else if steps = 0 then false
      else
        match Digraph.out_edges g u with
        | [] -> false
        | outs ->
            let lbl, u' = Prng.pick rng outs in
            let frontier' =
              Iset.fold
                (fun n acc ->
                  List.fold_left (fun acc d -> Iset.add d acc) acc (Digraph.succ_by_label g n lbl))
                neg_frontier Iset.empty
            in
            go u' frontier' (steps - 1)
    in
    go v (Iset.of_list negatives) bound
  in
  let hits = ref 0 in
  for _ = 1 to samples do
    if walk_is_uncovered () then incr hits
  done;
  !hits

let uninformative_nodes g ~negatives ~bound =
  List.filter (fun v -> not (is_informative g ~negatives ~bound v)) (Digraph.nodes g)
