module Digraph = Gps_graph.Digraph
module Neighborhood = Gps_graph.Neighborhood
module Walks = Gps_graph.Walks

type neighborhood = {
  node : Digraph.node;
  fragment : Neighborhood.t;
  previous : Neighborhood.t option;
}

type tree = { label : string option; accepting : bool; children : tree list }

type path_tree = {
  node : Digraph.node;
  words : string list list;
  suggested : string list;
  tree : tree;
}

let make_neighborhood g ?previous node ~radius =
  { node; fragment = Neighborhood.compute g node ~radius; previous }

let added t =
  match t.previous with
  | None -> ([], [])
  | Some before -> Neighborhood.diff ~before ~after:t.fragment

let rec insert_word tree word =
  match word with
  | [] -> { tree with accepting = true }
  | sym :: rest ->
      let rec place = function
        | [] -> [ insert_word { label = Some sym; accepting = false; children = [] } rest ]
        | child :: others ->
            if child.label = Some sym then insert_word child rest :: others
            else child :: place others
      in
      { tree with children = place tree.children }

let rec sort_tree tree =
  {
    tree with
    children =
      List.sort (fun a b -> compare a.label b.label) (List.map sort_tree tree.children);
  }

let tree_of_words words =
  sort_tree
    (List.fold_left insert_word { label = None; accepting = false; children = [] } words)

let make_path_tree g ?(prefer = `Longest) node ~negatives ~max_len =
  (* Candidate words: non-empty paths of the node, length <= max_len, not
     covered by any negative. Enumeration is length-lexicographic. *)
  let words =
    Walks.words g node ~max_len
    |> List.map (Walks.word_names g)
    |> List.filter (fun w -> not (Gps_query.Pathlang.covers g negatives w))
  in
  match words with
  | [] -> None
  | first :: _ ->
      let suggested =
        match prefer with
        | `Shortest -> first (* enumeration is length-lexicographic *)
        | `Longest ->
            let best_len = List.fold_left (fun acc w -> max acc (List.length w)) 0 words in
            List.find (fun w -> List.length w = best_len) words
      in
      Some { node; words; suggested; tree = tree_of_words words }
