(** Informativeness of nodes — the paper's pruning criterion.

    "Intuitively, a node is uninformative if all its paths are covered by
    negative nodes": labeling it positive would be inconsistent, labeling
    it negative adds nothing, so GPS never proposes it and prunes it from
    the candidate pool. Already-labeled nodes and nodes whose label is
    implied by propagation are likewise uninformative.

    All checks are length-bounded ([bound]) as in the paper's practical
    strategies, making them polynomial per node. *)

val is_informative :
  Gps_graph.Digraph.t ->
  negatives:Gps_graph.Digraph.node list ->
  bound:int ->
  Gps_graph.Digraph.node ->
  bool
(** Some path of the node of length ≤ [bound] is uncovered. With no
    negatives every node with ε uncovered — i.e. every node — is
    informative. *)

val score :
  Gps_graph.Digraph.t ->
  negatives:Gps_graph.Digraph.node list ->
  bound:int ->
  Gps_graph.Digraph.node ->
  int
(** Number of distinct uncovered words of length ≤ [bound] — what the
    smart strategy maximizes ("nodes having an important number of paths
    that are shorter than a fixed bound and not covered by any
    negative"). *)

val sampled_score :
  Gps_graph.Digraph.t ->
  negatives:Gps_graph.Digraph.node list ->
  bound:int ->
  samples:int ->
  rng:Gps_graph.Prng.t ->
  Gps_graph.Digraph.node ->
  int
(** Monte-Carlo approximation of {!score}: how many of [samples] random
    walks of length ≤ [bound] from the node spell an uncovered word.
    O(samples · bound · |negatives-frontier|) instead of enumerating every
    word — the scalable strategy variant benchmarked by [--exp sampled].
    Between 0 and [samples]; correlated with, not equal to, {!score}. *)

val uninformative_nodes :
  Gps_graph.Digraph.t ->
  negatives:Gps_graph.Digraph.node list ->
  bound:int ->
  Gps_graph.Digraph.node list
(** All nodes with zero uncovered words — the prune set. *)
