(** Batch experiment runner: many sessions, aggregated.

    The evaluation tables all have the same shape — run a session per
    (graph, goal, strategy, seed) and aggregate a metric. This module
    centralizes that loop with summary statistics, so the benchmark
    harness and downstream evaluations share one implementation. *)

type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on []. *)

type run_result = {
  questions : int;
  labels : int;
  zooms : int;
  validations : int;
  pruned : int;
  reached_goal : bool;  (** learned query selects exactly the goal's nodes *)
}

val run_once :
  ?config:Session.config ->
  Gps_graph.Digraph.t ->
  strategy:Strategy.t ->
  goal:Gps_query.Rpq.t ->
  run_result

val over_seeds :
  ?config:Session.config ->
  Gps_graph.Digraph.t ->
  strategy:(seed:int -> Strategy.t) ->
  goal:Gps_query.Rpq.t ->
  seeds:int list ->
  metric:(run_result -> float) ->
  summary
(** One session per seed (the strategy factory receives it); aggregate
    [metric]. *)

val pp_summary : Format.formatter -> summary -> unit
(** [mean ± stddev [min, max]]. *)
