(** What GPS shows the user at each interaction.

    Two kinds of views, matching the paper's Figure 3:
    - a {e neighborhood view} (3a/3b): the fragment around the proposed
      node, with what the previous zoom level already showed, so a
      renderer can highlight the newly revealed parts;
    - a {e path tree} (3c): the prefix tree of the node's candidate paths
      (uncovered by negatives, length-bounded by the neighborhood the user
      last saw), with the system's suggested path of interest. *)

type neighborhood = {
  node : Gps_graph.Digraph.node;
  fragment : Gps_graph.Neighborhood.t;
  previous : Gps_graph.Neighborhood.t option;
      (** the view before the last zoom, if the user zoomed *)
}

(** Prefix tree of candidate words. *)
type tree = { label : string option; accepting : bool; children : tree list }
(** [label = None] only at the root (ε); children sorted by label. A node
    is [accepting] iff the word spelled from the root is a candidate. *)

type path_tree = {
  node : Gps_graph.Digraph.node;
  words : string list list;   (** the candidate words, enumeration order *)
  suggested : string list;    (** the highlighted candidate *)
  tree : tree;
}

val make_neighborhood :
  Gps_graph.Digraph.t ->
  ?previous:Gps_graph.Neighborhood.t ->
  Gps_graph.Digraph.node ->
  radius:int ->
  neighborhood

val added :
  neighborhood -> (Gps_graph.Digraph.node * int) list * Gps_graph.Digraph.edge list
(** Nodes/edges newly revealed w.r.t. [previous] (empty when none). *)

val make_path_tree :
  Gps_graph.Digraph.t ->
  ?prefer:[ `Longest | `Shortest ] ->
  Gps_graph.Digraph.node ->
  negatives:Gps_graph.Digraph.node list ->
  max_len:int ->
  path_tree option
(** [None] when the node has no uncovered word within the bound (it is
    uninformative). The suggestion follows the paper's heuristic by
    default ([`Longest]): prefer the longest candidates — the user zoomed
    out to [max_len], so a path of that length "better fits the user's
    will" — breaking ties by enumeration (length-lexicographic) order.
    [`Shortest] is the ablation alternative measured by the benchmark
    harness. *)

val tree_of_words : string list list -> tree
(** Exposed for testing and for renderers of external word sets. *)
