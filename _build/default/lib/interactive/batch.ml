type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize = function
  | [] -> invalid_arg "Batch.summarize: empty sample"
  | xs ->
      let n = List.length xs in
      let nf = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 xs /. nf in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. nf in
      let sorted = List.sort compare xs in
      {
        runs = n;
        mean;
        stddev = sqrt var;
        min = List.hd sorted;
        max = List.nth sorted (n - 1);
        median = List.nth sorted (n / 2);
      }

type run_result = {
  questions : int;
  labels : int;
  zooms : int;
  validations : int;
  pruned : int;
  reached_goal : bool;
}

let run_once ?config g ~strategy ~goal =
  let trace = Simulate.run ?config g ~strategy ~user:(Oracle.perfect ~goal) in
  let counters = trace.Simulate.counters in
  {
    questions = trace.Simulate.questions;
    labels = counters.Session.labels;
    zooms = counters.Session.zooms;
    validations = counters.Session.validations;
    pruned = trace.Simulate.pruned;
    reached_goal =
      Gps_query.Eval.select g trace.Simulate.outcome.Session.query
      = Gps_query.Eval.select g goal;
  }

let over_seeds ?config g ~strategy ~goal ~seeds ~metric =
  summarize (List.map (fun seed -> metric (run_once ?config g ~strategy:(strategy ~seed) ~goal)) seeds)

let pp_summary ppf s =
  Format.fprintf ppf "%.1f +/- %.1f [%.0f, %.0f]" s.mean s.stddev s.min s.max
