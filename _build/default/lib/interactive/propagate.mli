(** Label propagation — "the system seamlessly propagates to the rest of
    the graph the labels provided by the user, while at the same time
    pruning the nodes that become uninformative".

    Two sound inferences:
    - a validated positive path [w] implies {e positive} for every node
      that has [w] among its paths: any query consistent with the
      validation accepts [w], hence selects those nodes;
    - a node all of whose (bounded) paths are covered by negatives can be
      selected by no consistent query: it is implied {e negative} and
      pruned. *)

val implied_positives :
  Gps_graph.Digraph.t -> word:string list -> Gps_graph.Digraph.node list
(** Nodes having [word] among their paths. *)

val implied_negatives :
  Gps_graph.Digraph.t ->
  negatives:Gps_graph.Digraph.node list ->
  bound:int ->
  among:Gps_graph.Digraph.node list ->
  Gps_graph.Digraph.node list
(** The members of [among] that are uninformative w.r.t. [negatives]. *)
