module Digraph = Gps_graph.Digraph
module Neighborhood = Gps_graph.Neighborhood
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Witness = Gps_query.Witness
module Prng = Gps_graph.Prng

type user = {
  name : string;
  label : Digraph.t -> View.neighborhood -> [ `Pos | `Neg | `Zoom ];
  validate : Digraph.t -> View.path_tree -> string list;
  satisfied : Digraph.t -> Rpq.t -> bool;
}

let goal_label ~goal ~zooms g (view : View.neighborhood) =
  let v = view.View.node in
  match Witness.find g goal v with
  | None -> `Neg
  | Some w ->
      let radius = view.View.fragment.Neighborhood.radius in
      if List.length w.Witness.word <= radius then `Pos
      else if (not zooms) || Neighborhood.is_complete g view.View.fragment then `Pos
      else `Zoom

let goal_validate ~goal _g (tree : View.path_tree) =
  let in_goal = List.filter (fun w -> Rpq.matches_word goal w) tree.View.words in
  let shortest ws =
    List.fold_left
      (fun best w ->
        match best with
        | Some b when List.length b <= List.length w -> best
        | _ -> Some w)
      None ws
  in
  match shortest in_goal with
  | Some w -> w
  | None ->
      (* her path of interest is not among the candidates (she answered
         before zooming far enough): accept the system's suggestion, as a
         hurried user would *)
      tree.View.suggested

let goal_satisfied ~goal g q = Eval.select g q = Eval.select g goal

let perfect ~goal =
  {
    name = "perfect";
    label = goal_label ~goal ~zooms:true;
    validate = goal_validate ~goal;
    satisfied = goal_satisfied ~goal;
  }

let eager ~goal =
  {
    name = "eager";
    label = goal_label ~goal ~zooms:false;
    validate = goal_validate ~goal;
    satisfied = goal_satisfied ~goal;
  }

let trusting ~goal =
  {
    name = "trusting";
    label = goal_label ~goal ~zooms:true;
    validate = (fun _g (tree : View.path_tree) -> tree.View.suggested);
    satisfied = goal_satisfied ~goal;
  }

let hesitant ~goal ~extra_zooms =
  (* zooms [extra_zooms] more times than needed before every label — the
     cautious user; exercises deep-radius views *)
  let pending = ref 0 in
  let base = perfect ~goal in
  {
    base with
    name = Printf.sprintf "hesitant(%d)" extra_zooms;
    label =
      (fun g view ->
        match base.label g view with
        | `Zoom ->
            pending := extra_zooms;
            `Zoom
        | (`Pos | `Neg) as l ->
            if !pending > 0 && not (Neighborhood.is_complete g view.View.fragment) then begin
              decr pending;
              `Zoom
            end
            else begin
              pending := extra_zooms;
              l
            end);
  }

let noisy ~goal ~flip ~seed =
  let rng = Prng.create ~seed in
  let base = eager ~goal in
  {
    base with
    name = Printf.sprintf "noisy(%.2f)" flip;
    label =
      (fun g view ->
        match base.label g view with
        | `Zoom -> `Zoom
        | (`Pos | `Neg) as l ->
            if Prng.float rng 1.0 < flip then match l with `Pos -> `Neg | `Neg -> `Pos
            else l);
  }
