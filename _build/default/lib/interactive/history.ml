type t = { current : Session.t; past : Session.t list }

let start ?config ~strategy g = { current = Session.start ?config ~strategy g; past = [] }

let current t = t.current
let request t = Session.request t.current

let push t next = { current = next; past = t.current :: t.past }

let answer_label t reply = push t (Session.answer_label t.current reply)
let answer_path t word = push t (Session.answer_path t.current word)
let accept t = push t (Session.accept t.current)
let refine t = push t (Session.refine t.current)

let undo t =
  match t.past with [] -> None | prev :: rest -> Some { current = prev; past = rest }

let depth t = List.length t.past
