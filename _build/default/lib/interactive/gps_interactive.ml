(** The GPS interactive engine: informativeness and pruning, zoomable
    neighborhood and path-tree views, node-proposal strategies, label
    propagation, the Figure-2 session state machine, simulated users and
    the session runner. *)

module Informative = Informative
module View = View
module Strategy = Strategy
module Propagate = Propagate
module Session = Session
module Oracle = Oracle
module Simulate = Simulate
module Journal = Journal
module Batch = Batch
module History = History
module Transcript = Transcript
module Explain = Explain
