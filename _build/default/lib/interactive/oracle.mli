(** Simulated users.

    The demo lets humans drive GPS; the measured evaluation (as in the
    companion paper) drives it with oracles that answer according to a
    hidden goal query. An oracle only uses information a person could
    read off the screen: the current neighborhood fragment for labeling
    decisions, the proposed path tree for validation, and query answers on
    the instance for the satisfaction check. *)

type user = {
  name : string;
  label : Gps_graph.Digraph.t -> View.neighborhood -> [ `Pos | `Neg | `Zoom ];
  validate : Gps_graph.Digraph.t -> View.path_tree -> string list;
  satisfied : Gps_graph.Digraph.t -> Gps_query.Rpq.t -> bool;
}

val perfect : goal:Gps_query.Rpq.t -> user
(** Labels nodes by the goal query; zooms out while her shortest witness
    for a selected node is longer than the shown radius (and the fragment
    is still incomplete); validates the shortest candidate path belonging
    to the goal language; is satisfied when the proposal selects exactly
    the goal's nodes on this graph. *)

val eager : goal:Gps_query.Rpq.t -> user
(** Same, but never zooms — answers on the first view. Used to measure
    what path validation buys when the user under-explores. *)

val hesitant : goal:Gps_query.Rpq.t -> extra_zooms:int -> user
(** Like {!perfect} but zooms [extra_zooms] more times than necessary
    before committing to each label (never past a complete fragment) —
    the cautious user, inflating the zoom count without changing
    labels. *)

val trusting : goal:Gps_query.Rpq.t -> user
(** Labels and zooms like {!perfect}, but always validates whatever path
    the system suggests — the user who clicks "looks right". Measures how
    much the suggestion heuristic itself matters ([--exp suggestion]). *)

val noisy : goal:Gps_query.Rpq.t -> flip:float -> seed:int -> user
(** Flips each label with probability [flip] — models the mistakes the
    paper allows only in the static scenario. Never zooms. *)
