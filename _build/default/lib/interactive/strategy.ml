module Digraph = Gps_graph.Digraph
module Prng = Gps_graph.Prng

type context = {
  graph : Digraph.t;
  excluded : Digraph.node -> bool;
  negatives : Digraph.node list;
  bound : int;
}

type t = { name : string; choose : context -> Digraph.node option }

let candidates ctx =
  List.filter
    (fun v ->
      (not (ctx.excluded v))
      && Informative.is_informative ctx.graph ~negatives:ctx.negatives ~bound:ctx.bound v)
    (Digraph.nodes ctx.graph)

let random ~seed =
  let rng = Prng.create ~seed in
  {
    name = "random";
    choose =
      (fun ctx ->
        match candidates ctx with [] -> None | cs -> Some (Prng.pick rng cs));
  }

let best_by score = function
  | [] -> None
  | c :: cs ->
      let better best v = if score v > score best then v else best in
      Some (List.fold_left better c cs)

let max_degree =
  {
    name = "degree";
    choose = (fun ctx -> best_by (fun v -> Digraph.out_degree ctx.graph v) (candidates ctx));
  }

let smart =
  {
    name = "smart";
    choose =
      (fun ctx ->
        best_by
          (fun v -> Informative.score ctx.graph ~negatives:ctx.negatives ~bound:ctx.bound v)
          (candidates ctx));
  }

let sampled_smart ~seed ~samples =
  let rng = Prng.create ~seed in
  {
    name = Printf.sprintf "sampled-%d" samples;
    choose =
      (fun ctx ->
        best_by
          (fun v ->
            Informative.sampled_score ctx.graph ~negatives:ctx.negatives ~bound:ctx.bound
              ~samples ~rng v)
          (candidates ctx));
  }

let sequential =
  {
    name = "sequential";
    choose = (fun ctx -> match candidates ctx with [] -> None | c :: _ -> Some c);
  }

let by_name ~seed = function
  | "random" -> Ok (random ~seed)
  | "degree" -> Ok max_degree
  | "smart" -> Ok smart
  | "sequential" -> Ok sequential
  | other ->
      Error
        (Printf.sprintf "unknown strategy %S (expected random, degree, smart or sequential)"
           other)
