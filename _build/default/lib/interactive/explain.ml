module Digraph = Gps_graph.Digraph
module Walks = Gps_graph.Walks
module Sample = Gps_learning.Sample

type reason =
  | User_positive of string list option
  | User_negative
  | Implied_positive of string list
  | Pruned of string list * Digraph.node
  | Selected_by_hypothesis of string list
  | Unconstrained

let shared_validated_word g sample v =
  List.find_map
    (fun p ->
      match Sample.validated sample p with
      | Some w when Gps_query.Pathlang.covers g [ v ] w -> Some w
      | Some _ | None -> None)
    (Sample.pos sample)

let covering_example g negatives v =
  (* shortest path of v (bounded) plus one negative covering it *)
  let words = List.map (Walks.word_names g) (Walks.words g v ~max_len:4) in
  (* prefer a non-empty example; fall back to ε, which is a path of every
     node and is covered whenever a negative exists *)
  let candidates = words @ [ [] ] in
  List.find_map
    (fun w ->
      List.find_map
        (fun n -> if Gps_query.Pathlang.covers g [ n ] w then Some (w, n) else None)
        negatives)
    candidates

let explain session v =
  let g = Session.graph session in
  let sample = Session.sample session in
  if Sample.is_pos sample v then User_positive (Sample.validated sample v)
  else if Sample.is_neg sample v then User_negative
  else if List.mem v (Session.implied_pos session) then
    match shared_validated_word g sample v with
    | Some w -> Implied_positive w
    | None -> Unconstrained (* should not happen: implication came from a word *)
  else if List.mem v (Session.implied_neg session) then
    match covering_example g (Sample.neg sample) v with
    | Some (w, n) -> Pruned (w, n)
    | None -> Unconstrained
  else
    match Session.hypothesis session with
    | Some q when Gps_query.Eval.selects g q v -> (
        match Gps_query.Witness.find g q v with
        | Some w -> Selected_by_hypothesis w.Gps_query.Witness.word
        | None -> Unconstrained)
    | Some _ | None -> Unconstrained

let pp_word ppf = function
  | [] -> Format.pp_print_string ppf "the empty path"
  | w -> Format.pp_print_string ppf (String.concat "." w)

let render g ppf = function
  | User_positive (Some w) ->
      Format.fprintf ppf "labeled positive; path of interest: %a" pp_word w
  | User_positive None -> Format.fprintf ppf "labeled positive"
  | User_negative -> Format.fprintf ppf "labeled negative"
  | Implied_positive w ->
      Format.fprintf ppf "implied positive: it also has the validated path %a" pp_word w
  | Pruned (w, n) ->
      Format.fprintf ppf
        "pruned as uninformative: e.g. its path %a is also a path of the negative node %s"
        pp_word w (Digraph.node_name g n)
  | Selected_by_hypothesis w ->
      Format.fprintf ppf "selected by the current query via %a" pp_word w
  | Unconstrained -> Format.fprintf ppf "no information yet"
