(** Undoable sessions.

    {!Session} is immutable, so undo is just keeping the previous states
    around. Real users change their minds — the demo's static scenario
    even lets them make outright mistakes — and the cost of a wrong label
    in the interactive scenario would otherwise be restarting the whole
    session. The CLI exposes this as the [u] answer. *)

type t

val start : ?config:Session.config -> strategy:Strategy.t -> Gps_graph.Digraph.t -> t

val current : t -> Session.t
val request : t -> Session.request

val answer_label : t -> [ `Pos | `Neg | `Zoom ] -> t
val answer_path : t -> string list -> t
val accept : t -> t
val refine : t -> t
(** All four record the pre-answer state before delegating to
    {!Session}. *)

val undo : t -> t option
(** Back to the state before the latest answer; [None] at the start. *)

val depth : t -> int
(** Number of answers that can be undone. *)
