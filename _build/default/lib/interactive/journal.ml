module Digraph = Gps_graph.Digraph
module Json = Gps_graph.Json

type answer =
  | Label of string option * [ `Pos | `Neg | `Zoom ]
  | Validate of string option * string list
  | Satisfied of string * bool

type t = answer list

let recording (user : Oracle.user) =
  let log = ref [] in
  let push a = log := a :: !log in
  let wrapped =
    {
      Oracle.name = user.Oracle.name ^ "+rec";
      label =
        (fun g view ->
          let a = user.Oracle.label g view in
          push (Label (Some (Digraph.node_name g view.View.node), a));
          a);
      validate =
        (fun g tree ->
          let w = user.Oracle.validate g tree in
          push (Validate (Some (Digraph.node_name g tree.View.node), w));
          w);
      satisfied =
        (fun g q ->
          let ok = user.Oracle.satisfied g q in
          push (Satisfied (Gps_query.Rpq.to_string q, ok));
          ok);
    }
  in
  (wrapped, fun () -> List.rev !log)

let replayer ?(strict = true) journal =
  let remaining = ref journal in
  let next kind =
    match !remaining with
    | [] -> failwith (Printf.sprintf "Journal.replayer: journal exhausted awaiting %s" kind)
    | a :: rest ->
        remaining := rest;
        a
  in
  let check_node kind recorded g actual =
    match recorded with
    | Some name when strict && name <> Digraph.node_name g actual ->
        failwith
          (Printf.sprintf "Journal.replayer: %s diverged (recorded %s, session shows %s)" kind
             name (Digraph.node_name g actual))
    | Some _ | None -> ()
  in
  {
    Oracle.name = "replay";
    label =
      (fun g view ->
        match next "label" with
        | Label (node, a) ->
            check_node "label" node g view.View.node;
            a
        | Validate _ | Satisfied _ -> failwith "Journal.replayer: expected a label entry");
    validate =
      (fun g tree ->
        match next "validate" with
        | Validate (node, w) ->
            check_node "validate" node g tree.View.node;
            w
        | Label _ | Satisfied _ -> failwith "Journal.replayer: expected a validate entry");
    satisfied =
      (fun _g _q ->
        match next "satisfied" with
        | Satisfied (_, ok) -> ok
        | Label _ | Validate _ -> failwith "Journal.replayer: expected a satisfied entry");
  }

(* -------------------------------------------------------------- *)
(* JSON codec *)

let answer_to_json = function
  | Label (node, a) ->
      Json.Object
        [
          ("kind", Json.String "label");
          ("node", match node with Some n -> Json.String n | None -> Json.Null);
          ( "answer",
            Json.String (match a with `Pos -> "pos" | `Neg -> "neg" | `Zoom -> "zoom") );
        ]
  | Validate (node, w) ->
      Json.Object
        [
          ("kind", Json.String "validate");
          ("node", match node with Some n -> Json.String n | None -> Json.Null);
          ("word", Json.Array (List.map (fun s -> Json.String s) w));
        ]
  | Satisfied (q, ok) ->
      Json.Object
        [ ("kind", Json.String "satisfied"); ("query", Json.String q); ("ok", Json.Bool ok) ]

let to_json t = Json.value_to_string ~pretty:true (Json.Array (List.map answer_to_json t))

let answer_of_json v =
  let str_field f =
    match Json.member f v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" f)
  in
  let node_field () =
    match Json.member "node" v with Some (Json.String s) -> Some s | _ -> None
  in
  match str_field "kind" with
  | Error e -> Error e
  | Ok "label" -> (
      match str_field "answer" with
      | Ok "pos" -> Ok (Label (node_field (), `Pos))
      | Ok "neg" -> Ok (Label (node_field (), `Neg))
      | Ok "zoom" -> Ok (Label (node_field (), `Zoom))
      | Ok other -> Error (Printf.sprintf "bad answer %S" other)
      | Error e -> Error e)
  | Ok "validate" -> (
      match Json.member "word" v with
      | Some (Json.Array items) ->
          let strings =
            List.filter_map (function Json.String s -> Some s | _ -> None) items
          in
          if List.length strings = List.length items then Ok (Validate (node_field (), strings))
          else Error "word must be an array of strings"
      | _ -> Error "missing word array")
  | Ok "satisfied" -> (
      match (str_field "query", Json.member "ok" v) with
      | Ok q, Some (Json.Bool ok) -> Ok (Satisfied (q, ok))
      | Error e, _ -> Error e
      | _, _ -> Error "missing bool field ok")
  | Ok other -> Error (Printf.sprintf "unknown entry kind %S" other)

let of_json text =
  match Json.value_of_string text with
  | exception Json.Parse_error (pos, msg) -> Error (Printf.sprintf "json error at %d: %s" pos msg)
  | Json.Array items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match answer_of_json item with Ok a -> go (a :: acc) rest | Error e -> Error e)
      in
      go [] items
  | _ -> Error "journal must be a JSON array"

let save path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      of_json text
