lib/interactive/informative.ml: Gps_graph Gps_learning Int List Set
