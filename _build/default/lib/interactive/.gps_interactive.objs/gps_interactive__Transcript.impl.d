lib/interactive/transcript.ml: Buffer Gps_graph Gps_query List Oracle Printf Session String View
