lib/interactive/history.ml: List Session
