lib/interactive/simulate.mli: Gps_graph Gps_query Oracle Session Strategy
