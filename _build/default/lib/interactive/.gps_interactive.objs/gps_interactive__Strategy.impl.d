lib/interactive/strategy.ml: Gps_graph Informative List Printf
