lib/interactive/explain.mli: Format Gps_graph Session
