lib/interactive/oracle.ml: Gps_graph Gps_query List Printf View
