lib/interactive/batch.mli: Format Gps_graph Gps_query Session Strategy
