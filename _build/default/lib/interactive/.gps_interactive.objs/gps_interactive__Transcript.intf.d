lib/interactive/transcript.mli: Gps_graph Gps_query Oracle Session Strategy
