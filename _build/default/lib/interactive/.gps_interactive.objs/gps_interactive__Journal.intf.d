lib/interactive/journal.mli: Oracle
