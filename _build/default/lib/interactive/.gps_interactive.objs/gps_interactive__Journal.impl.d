lib/interactive/journal.ml: Gps_graph Gps_query List Oracle Printf View
