lib/interactive/gps_interactive.ml: Batch Explain History Informative Journal Oracle Propagate Session Simulate Strategy Transcript View
