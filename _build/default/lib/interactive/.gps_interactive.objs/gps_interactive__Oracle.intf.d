lib/interactive/oracle.mli: Gps_graph Gps_query View
