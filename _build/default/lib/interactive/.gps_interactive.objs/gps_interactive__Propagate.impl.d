lib/interactive/propagate.ml: Gps_graph Gps_query Informative List
