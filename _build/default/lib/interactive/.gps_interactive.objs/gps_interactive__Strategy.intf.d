lib/interactive/strategy.mli: Gps_graph
