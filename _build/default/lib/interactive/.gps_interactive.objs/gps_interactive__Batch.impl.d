lib/interactive/batch.ml: Format Gps_query List Oracle Session Simulate
