lib/interactive/history.mli: Gps_graph Session Strategy
