lib/interactive/informative.mli: Gps_graph
