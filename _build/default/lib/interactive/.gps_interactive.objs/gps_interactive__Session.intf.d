lib/interactive/session.mli: Gps_graph Gps_learning Gps_query Strategy View
