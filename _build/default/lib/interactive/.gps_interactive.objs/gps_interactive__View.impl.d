lib/interactive/view.ml: Gps_graph Gps_query List
