lib/interactive/session.ml: Gps_graph Gps_learning Gps_query Gps_regex Int List Option Propagate Set Strategy View
