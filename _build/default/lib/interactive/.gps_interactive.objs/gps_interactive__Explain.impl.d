lib/interactive/explain.ml: Format Gps_graph Gps_learning Gps_query List Session String
