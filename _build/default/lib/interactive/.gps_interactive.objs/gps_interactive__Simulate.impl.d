lib/interactive/simulate.ml: Gps_query List Oracle Session
