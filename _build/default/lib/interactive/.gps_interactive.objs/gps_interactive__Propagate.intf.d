lib/interactive/propagate.mli: Gps_graph
