lib/interactive/view.mli: Gps_graph
