(** Typed transcripts of simulated sessions.

    The benchmark's Figure-2 trace and any front end that wants a
    human-readable session log need the same thing: the sequence of
    interaction events with enough detail to narrate. This runs a user
    against a session and records each step. *)

type event =
  | Shown of { node : Gps_graph.Digraph.node; radius : int; reply : [ `Pos | `Neg | `Zoom ] }
  | Validated of { node : Gps_graph.Digraph.node; candidates : int; word : string list }
  | Proposed of { query : Gps_query.Rpq.t; accepted : bool }
  | Halted of Session.outcome

type t = event list

val record :
  ?config:Session.config ->
  ?max_steps:int ->
  Gps_graph.Digraph.t ->
  strategy:Strategy.t ->
  user:Oracle.user ->
  t
(** Run the session to completion (like {!Simulate.run}) and return the
    event list, oldest first; the final element is always [Halted]. *)

val outcome : t -> Session.outcome option
(** The final outcome, if the transcript ran to completion. *)

val render : Gps_graph.Digraph.t -> t -> string
(** Numbered, one line per event — the format of the paper's interaction
    walkthrough:
    {v
    1. show neighborhood of N2 (radius 2); user: zoom out
    2. ...
    v} *)
