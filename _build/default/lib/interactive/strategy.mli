(** Node-proposal strategies Υ.

    A strategy is "a function that takes as input a graph G and a set of
    examples S, and returns a node from G" (paper, Section 2). Only
    candidates that are unlabeled, not implied by propagation, and
    informative w.r.t. the current negatives are ever returned.

    Implemented strategies:
    - {!random}: uniform over candidates — the baseline the companion
      paper compares against;
    - {!max_degree}: highest out-degree first — a cheap structural
      heuristic;
    - {!smart}: maximize the number of short uncovered paths — the
      paper's strategy ("seek the nodes having an important number of
      paths that are shorter than a fixed bound and not covered by any
      negative node"). *)

type context = {
  graph : Gps_graph.Digraph.t;
  excluded : Gps_graph.Digraph.node -> bool;
      (** labeled or implied nodes, never proposed *)
  negatives : Gps_graph.Digraph.node list;  (** current effective negatives *)
  bound : int;                              (** path-length bound for scoring *)
}

type t = { name : string; choose : context -> Gps_graph.Digraph.node option }
(** [choose] returns [None] when no informative candidate remains — the
    natural halt condition. *)

val random : seed:int -> t
val max_degree : t
val smart : t

val sampled_smart : seed:int -> samples:int -> t
(** Monte-Carlo variant of {!smart}: scores candidates by
    {!Informative.sampled_score} with [samples] random walks instead of
    exhaustive word enumeration. Trades proposal quality for per-question
    latency on large graphs — quantified by the [--exp sampled]
    benchmark. *)

val sequential : t
(** Lowest node id first — a deterministic worst-ish baseline
    corresponding to a user paging through the node list. *)

val by_name : seed:int -> string -> (t, string) result
(** ["random"], ["degree"], ["smart"], ["sequential"] — for the CLI. *)

val candidates : context -> Gps_graph.Digraph.node list
(** The informative, unlabeled, un-implied nodes (what all strategies
    choose from). *)
