(** Driving a session to completion with a simulated user, recording the
    measurements the evaluation reports. *)

type snapshot = {
  at_questions : int;            (** user answers given so far *)
  hypothesis : Gps_query.Rpq.t;  (** proposal at that point *)
}

type trace = {
  outcome : Session.outcome;
  counters : Session.counters;
  questions : int;       (** labels + zooms + validations — the paper's measure *)
  pruned : int;          (** nodes pruned as uninformative *)
  implied_pos : int;     (** nodes auto-labeled positive by propagation *)
  history : snapshot list;  (** hypothesis after each proposal, oldest first *)
}

val run :
  ?config:Session.config ->
  ?max_steps:int ->
  Gps_graph.Digraph.t ->
  strategy:Strategy.t ->
  user:Oracle.user ->
  trace
(** [max_steps] (default 100_000) bounds machine steps as a safety net
    against a user that answers pathologically (e.g. zooming forever).
    @raise Failure if exceeded. *)

val final_state :
  ?config:Session.config ->
  ?max_steps:int ->
  Gps_graph.Digraph.t ->
  strategy:Strategy.t ->
  user:Oracle.user ->
  Session.t
(** Like {!run}, but returns the finished session itself — for callers
    that need its full state afterwards (explanations, sample
    inspection). *)

val interactions_to_learn :
  ?config:Session.config ->
  Gps_graph.Digraph.t ->
  strategy:Strategy.t ->
  goal:Gps_query.Rpq.t ->
  int option
(** Questions a {!Oracle.perfect} user needs before the session ends with
    her satisfied (or with no informative nodes and the right answer);
    [None] when the session ends without reaching the goal's selection. *)
