(** Explanations: why a node carries the label it does.

    Non-expert users trust a system they can interrogate. Given a session
    state, this module justifies the status of any node in terms the user
    has already seen — validated paths, coverage by her own negatives —
    rather than automata internals. *)

type reason =
  | User_positive of string list option
      (** she labeled it, with her validated path of interest if given *)
  | User_negative
  | Implied_positive of string list
      (** it shares this validated path with a node she labeled positive *)
  | Pruned of string list * Gps_graph.Digraph.node
      (** uninformative: its example path (shortest, within the session
          bound) is covered by this negative node — as is every other *)
  | Selected_by_hypothesis of string list
      (** unlabeled, but the current learned query selects it via this
          witness *)
  | Unconstrained  (** nothing known about it yet *)

val explain : Session.t -> Gps_graph.Digraph.node -> reason

val render : Gps_graph.Digraph.t -> Format.formatter -> reason -> unit
