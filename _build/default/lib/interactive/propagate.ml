module Digraph = Gps_graph.Digraph

let implied_positives g ~word =
  List.filter (fun v -> Gps_query.Pathlang.covers g [ v ] word) (Digraph.nodes g)

let implied_negatives g ~negatives ~bound ~among =
  List.filter (fun v -> not (Informative.is_informative g ~negatives ~bound v)) among
