type snapshot = { at_questions : int; hypothesis : Gps_query.Rpq.t }

type trace = {
  outcome : Session.outcome;
  counters : Session.counters;
  questions : int;
  pruned : int;
  implied_pos : int;
  history : snapshot list;
}

let run ?config ?(max_steps = 100_000) g ~strategy ~user =
  let rec loop t history steps =
    if steps > max_steps then failwith "Simulate.run: step budget exceeded"
    else
      match Session.request t with
      | Session.Finished outcome ->
          {
            outcome;
            counters = Session.counters t;
            questions = Session.questions t;
            pruned = List.length (Session.implied_neg t);
            implied_pos = List.length (Session.implied_pos t);
            history = List.rev history;
          }
      | Session.Ask_label view -> loop (Session.answer_label t (user.Oracle.label g view)) history (steps + 1)
      | Session.Ask_path tree -> loop (Session.answer_path t (user.Oracle.validate g tree)) history (steps + 1)
      | Session.Propose q ->
          let history = { at_questions = Session.questions t; hypothesis = q } :: history in
          let t = if user.Oracle.satisfied g q then Session.accept t else Session.refine t in
          loop t history (steps + 1)
  in
  loop (Session.start ?config ~strategy g) [] 0

let final_state ?config ?(max_steps = 100_000) g ~strategy ~user =
  let rec loop t steps =
    if steps > max_steps then failwith "Simulate.final_state: step budget exceeded"
    else
      match Session.request t with
      | Session.Finished _ -> t
      | Session.Ask_label view -> loop (Session.answer_label t (user.Oracle.label g view)) (steps + 1)
      | Session.Ask_path tree -> loop (Session.answer_path t (user.Oracle.validate g tree)) (steps + 1)
      | Session.Propose q ->
          loop ((if user.Oracle.satisfied g q then Session.accept else Session.refine) t) (steps + 1)
  in
  loop (Session.start ?config ~strategy g) 0

let interactions_to_learn ?config g ~strategy ~goal =
  let trace = run ?config g ~strategy ~user:(Oracle.perfect ~goal) in
  let reached =
    Gps_query.Eval.select g trace.outcome.Session.query = Gps_query.Eval.select g goal
  in
  if reached then Some trace.questions else None
