(** Incremental RPQ evaluation under edge insertions.

    {!Digraph} is append-only, which makes selection {e monotone}: adding
    an edge can only select more nodes, never fewer. This module keeps the
    backward-reachability table of {!Eval} alive and, on each insertion,
    reseeds the BFS from just the product states the new edge enables —
    typically touching a small fraction of the product instead of
    recomputing it (the [--exp incremental] benchmark quantifies this).

    Usage: evaluate once with {!create}, then interleave {!add_edge}
    (which must mirror every [Digraph.add_edge] on the underlying graph)
    with O(1) {!selected} queries. *)

type t

val create : Gps_graph.Digraph.t -> Rpq.t -> t
(** Evaluates eagerly. The graph must only grow afterwards, and only
    through {!add_edge} (node additions need no notification until an
    edge touches them; new nodes are accommodated automatically). *)

val add_edge : t -> src:Gps_graph.Digraph.node -> label:string -> dst:Gps_graph.Digraph.node -> unit
(** Record that [src -label-> dst] was just added to the graph (after the
    [Digraph.add_edge] call) and propagate its consequences. Unknown
    labels (no transition in the query) cost O(1). *)

val selected : t -> Gps_graph.Digraph.node -> bool
val select : t -> bool array
val count : t -> int

val agrees_with_scratch : t -> bool
(** Recompute from scratch and compare — the test-suite oracle. *)
