(** RPQ evaluation: which nodes does a query select?

    A node [v] is selected iff in the product of the graph with the query
    NFA some accepting product state is reachable from [(v, q0)] for a
    start state [q0]. Evaluation runs one {e backward} BFS from all
    accepting product states over reversed product edges, which answers
    the question for {e every} node simultaneously in
    O(|E| · |Δ| + |V| · |Q|) — this is the engine behind every
    interaction of the system, so it must stay graph-linear. *)

val select : Gps_graph.Digraph.t -> Rpq.t -> bool array
(** [select g q].(v) iff [q] selects node [v]. *)

val select_frozen : Gps_graph.Digraph.t -> Gps_graph.Csr.t -> Rpq.t -> bool array
(** Same answer over a {!Gps_graph.Csr} snapshot of the same graph
    (passed alongside for label-name resolution). Avoids adjacency-list
    allocation on the hot path; the [--exp csr] benchmark quantifies the
    win. The snapshot must be [Csr.freeze] of exactly this graph. *)

val select_via_dfa : Gps_graph.Digraph.t -> Rpq.t -> bool array
(** Same answer computed against the determinized-and-minimized query
    automaton instead of the NFA. A smaller automaton shrinks the product,
    but determinization can blow the automaton up — the [--exp eval]
    ablation of the benchmark harness measures this trade-off. *)

val select_nodes : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node list
(** Selected nodes in ascending id order. *)

val selects : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> bool

val consistent :
  Gps_graph.Digraph.t ->
  Rpq.t ->
  pos:Gps_graph.Digraph.node list ->
  neg:Gps_graph.Digraph.node list ->
  bool
(** The query selects every positive node and no negative one — the
    paper's consistency criterion (a negative node "covers" a word iff the
    word is one of its paths, so "no negative covered" is exactly "no
    negative selected"). *)

val count : Gps_graph.Digraph.t -> Rpq.t -> int

val witness_lengths : Gps_graph.Digraph.t -> Rpq.t -> int option array
(** Per node, the length of its shortest witness word ([None] when not
    selected) — all nodes in one backward BFS, used to rank answers by
    how direct they are. Agrees with the length of {!Witness.find}'s
    result. *)

val product_states : Gps_graph.Digraph.t -> Rpq.t -> int
(** |V| · |Q| — reported by the benchmark harness. *)
