(** Compiled path queries.

    A path query pairs a regular expression with its compiled NFA. The
    query selects a graph node iff some outgoing walk of the node spells a
    word of the expression's language (the paper's monadic RPQ
    semantics). *)

type t

val of_regex : Gps_regex.Regex.t -> t
val of_nfa : Gps_automata.Nfa.t -> t
(** The displayed expression is recovered by state elimination, lazily —
    building a query from an automaton is cheap until {!regex} or a
    printer is called. *)

val of_string : string -> (t, string) result
(** Parses the paper's notation, e.g. ["(tram+bus)*.cinema"]. *)

val of_string_exn : string -> t

val regex : t -> Gps_regex.Regex.t
val nfa : t -> Gps_automata.Nfa.t

val matches_word : t -> string list -> bool
(** Word membership (labels by name). *)

val equal_lang : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
