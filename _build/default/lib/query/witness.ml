module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

type t = { word : string list; walk : Digraph.node list }

let find g q v =
  let nfa = Rpq.nfa q in
  let m = Nfa.n_states nfa in
  if m = 0 then None
  else begin
    let n = Digraph.n_nodes g in
    (* parent.(v*m+q) = (prev_state, label_name) for path reconstruction *)
    let visited = Array.make (n * m) false in
    let parent = Array.make (n * m) None in
    let queue = Queue.create () in
    let push idx parent_info =
      if not visited.(idx) then begin
        visited.(idx) <- true;
        parent.(idx) <- parent_info;
        Queue.add idx queue
      end
    in
    List.iter (fun q0 -> push ((v * m) + q0) None) (Nfa.starts nfa);
    let goal = ref None in
    while !goal = None && not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let u = idx / m and qs = idx mod m in
      if Nfa.is_final nfa qs then goal := Some idx
      else
        List.iter
          (fun (lbl, u') ->
            let sym = Digraph.label_name g lbl in
            List.iter
              (fun qd -> push ((u' * m) + qd) (Some (idx, sym)))
              (Nfa.delta_sym nfa qs sym))
          (Digraph.out_edges g u)
    done;
    match !goal with
    | None -> None
    | Some idx ->
        let rec unroll idx word walk =
          let u = idx / m in
          match parent.(idx) with
          | None -> { word; walk = u :: walk }
          | Some (prev, sym) -> unroll prev (sym :: word) (u :: walk)
        in
        Some (unroll idx [] [])
  end

let find_all_selected g q =
  List.filter_map
    (fun v -> Option.map (fun w -> (v, w)) (find g q v))
    (Eval.select_nodes g q)

let pp g ppf t =
  match t.walk with
  | [] -> ()
  | first :: _ ->
      Format.pp_print_string ppf (Digraph.node_name g first);
      List.iteri
        (fun i sym ->
          let next = List.nth t.walk (i + 1) in
          Format.fprintf ppf " -%s-> %s" sym (Digraph.node_name g next))
        t.word
