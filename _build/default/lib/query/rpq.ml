module Regex = Gps_regex.Regex
module Nfa = Gps_automata.Nfa
module Compile = Gps_automata.Compile
module Elim = Gps_automata.Elim

(* The displayed expression of an automaton-built query is computed by
   state elimination only when first asked for: the learner's inner loop
   builds thousands of candidate queries just to evaluate them. *)
type t = { regex : Regex.t Lazy.t; nfa : Nfa.t }

let of_regex regex = { regex = lazy regex; nfa = Compile.to_nfa regex }

let of_nfa nfa = { regex = lazy (Gps_automata.Simplify.simplify (Elim.to_regex nfa)); nfa }

let of_string s =
  Result.map of_regex (Gps_regex.Parse.parse s)

let of_string_exn s =
  match of_string s with Ok q -> q | Error msg -> invalid_arg ("Rpq.of_string_exn: " ^ msg)

let regex t = Lazy.force t.regex
let nfa t = t.nfa

let matches_word t w = Nfa.accepts t.nfa w

let equal_lang a b =
  (* compare the automata directly — avoids forcing state elimination *)
  let module Dfa = Gps_automata.Dfa in
  Dfa.equal_lang (Dfa.determinize a.nfa) (Dfa.determinize b.nfa)

let to_string t = Regex.to_string (regex t)
let pp ppf t = Regex.pp ppf (regex t)
