(** Conjunctive path queries — tree-shaped CRPQ patterns.

    Single RPQs express one requirement ("can reach a cinema by
    transport"); real questions often conjoin several ("… {e and} a park,
    {e and} sits one bus hop from a museum"). This module evaluates
    {e tree-shaped} conjunctive patterns over RPQ atoms: a pattern has a
    root variable and atoms [root -L(q)-> child-pattern]; a node matches
    iff for every atom some q-walk leads from it to a node matching the
    child. Tree shape keeps evaluation polynomial — one bottom-up pass,
    each step a targeted product BFS — while covering the acyclic CRPQs
    users actually write.

    The root is the selected variable, as in the paper's monadic
    semantics. *)

type t = {
  var : string;          (** display name for the variable, e.g. "x" *)
  atoms : (Rpq.t * t) list;
}

val leaf : ?var:string -> unit -> t
(** A pattern matched by every node (no constraints). *)

val pattern : ?var:string -> (Rpq.t * t) list -> t

val all_of : ?var:string -> Rpq.t list -> t
(** Conjunction of plain reachability atoms: the node must satisfy every
    query (each atom's target is unconstrained). *)

val select : Gps_graph.Digraph.t -> t -> bool array
(** [select g p].(v) iff [v] matches the pattern. *)

val select_nodes : Gps_graph.Digraph.t -> t -> Gps_graph.Digraph.node list
val count : Gps_graph.Digraph.t -> t -> int

val select_into : Gps_graph.Digraph.t -> Rpq.t -> targets:bool array -> bool array
(** The evaluation kernel, exposed for reuse: nodes with a q-walk ending
    at a node marked in [targets]. [Eval.select] is the special case
    [targets = all true]. *)

val pp : Format.formatter -> t -> unit
(** [x(q1 -> y(...), q2 -> z)]. *)
