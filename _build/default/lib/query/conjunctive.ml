module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

type t = { var : string; atoms : (Rpq.t * t) list }

let leaf ?(var = "_") () = { var; atoms = [] }
let pattern ?(var = "x") atoms = { var; atoms }
let all_of ?var queries = pattern ?var (List.map (fun q -> (q, leaf ())) queries)

(* Backward product BFS seeded only at accepting states located on
   [targets] nodes. *)
let select_into g q ~targets =
  let nfa = Rpq.nfa q in
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  if Array.length targets <> n then invalid_arg "Conjunctive.select_into: targets size mismatch";
  let selected = Array.make n false in
  if m = 0 then selected
  else begin
    let by_label = Array.make (max (Digraph.n_labels g) 1) [] in
    List.iter
      (fun (qs, sym, qd) ->
        match Digraph.label_of_name g sym with
        | Some lbl -> by_label.(lbl) <- (qs, qd) :: by_label.(lbl)
        | None -> ())
      (Nfa.transitions nfa);
    let can_accept = Array.make (n * m) false in
    let queue = Queue.create () in
    let push v qs =
      let idx = (v * m) + qs in
      if not can_accept.(idx) then begin
        can_accept.(idx) <- true;
        Queue.add idx queue
      end
    in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      if targets.(v) then List.iter (fun qf -> push v qf) finals
    done;
    while not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let v' = idx / m and q' = idx mod m in
      List.iter
        (fun (lbl, v) ->
          List.iter (fun (qs, qd) -> if qd = q' then push v qs) by_label.(lbl))
        (Digraph.in_edges g v')
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      selected.(v) <- List.exists (fun q0 -> can_accept.((v * m) + q0)) starts
    done;
    selected
  end

let rec select g p =
  let n = Digraph.n_nodes g in
  let result = Array.make n true in
  List.iter
    (fun (q, child) ->
      let child_match = select g child in
      let satisfied = select_into g q ~targets:child_match in
      for v = 0 to n - 1 do
        result.(v) <- result.(v) && satisfied.(v)
      done)
    p.atoms;
  result

let select_nodes g p =
  let sel = select g p in
  List.filter (fun v -> sel.(v)) (List.init (Array.length sel) Fun.id)

let count g p = List.length (select_nodes g p)

let rec pp ppf p =
  Format.fprintf ppf "%s" p.var;
  match p.atoms with
  | [] -> ()
  | atoms ->
      Format.fprintf ppf "(";
      List.iteri
        (fun i (q, child) ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%s -> %a" (Rpq.to_string q) pp child)
        atoms;
      Format.fprintf ppf ")"
