(** Witness paths: concrete evidence of why a query selects a node.

    When GPS proposes a path to the user for validation (Figure 3(c)) or
    explains a result, it needs, for a selected node, a shortest walk
    whose word the query accepts. *)

type t = {
  word : string list;                 (** the label word, by name *)
  walk : Gps_graph.Digraph.node list; (** node sequence, starting at the queried node *)
}

val find : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> t option
(** A shortest witness for the node, [None] when the query does not
    select it. Forward BFS over the product from [(v, starts)]. *)

val find_all_selected : Gps_graph.Digraph.t -> Rpq.t -> (Gps_graph.Digraph.node * t) list
(** One shortest witness per selected node. *)

val pp : Gps_graph.Digraph.t -> Format.formatter -> t -> unit
(** [N2 -bus-> N1 -tram-> N4 -cinema-> C1]. *)
