module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

(* Forward BFS over the product from (src, starts); records for every
   product state whether it was reached, optionally with parents for
   witness reconstruction. *)
let forward g q src ~want_parents =
  let nfa = Rpq.nfa q in
  let m = Nfa.n_states nfa in
  let n = Digraph.n_nodes g in
  let visited = Array.make (n * m) false in
  let parent = if want_parents then Array.make (n * m) None else [||] in
  let queue = Queue.create () in
  let push idx p =
    if not visited.(idx) then begin
      visited.(idx) <- true;
      if want_parents then parent.(idx) <- p;
      Queue.add idx queue
    end
  in
  List.iter (fun q0 -> push ((src * m) + q0) None) (Nfa.starts nfa);
  while not (Queue.is_empty queue) do
    let idx = Queue.pop queue in
    let u = idx / m and qs = idx mod m in
    List.iter
      (fun (lbl, u') ->
        let sym = Digraph.label_name g lbl in
        List.iter
          (fun qd -> push ((u' * m) + qd) (if want_parents then Some (idx, sym) else None))
          (Nfa.delta_sym nfa qs sym))
      (Digraph.out_edges g u)
  done;
  (visited, parent, m)

let targets g q src =
  let nfa = Rpq.nfa q in
  let visited, _, m = forward g q src ~want_parents:false in
  if m = 0 then []
  else begin
    let finals = Nfa.finals nfa in
    List.filter
      (fun y -> List.exists (fun qf -> visited.((y * m) + qf)) finals)
      (Digraph.nodes g)
  end

let select_pairs g q =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) (targets g q x)) (Digraph.nodes g)

let count_pairs g q = List.length (select_pairs g q)

let is_answer g q ~src ~dst =
  let nfa = Rpq.nfa q in
  let visited, _, m = forward g q src ~want_parents:false in
  m > 0 && List.exists (fun qf -> visited.((dst * m) + qf)) (Nfa.finals nfa)

let witness g q ~src ~dst =
  let nfa = Rpq.nfa q in
  if Nfa.n_states nfa = 0 then None
  else begin
    (* BFS again but stopping at the first final product state located at
       dst; parents give the walk. *)
    let m = Nfa.n_states nfa in
    let n = Digraph.n_nodes g in
    let visited = Array.make (n * m) false in
    let parent = Array.make (n * m) None in
    let queue = Queue.create () in
    let push idx p =
      if not visited.(idx) then begin
        visited.(idx) <- true;
        parent.(idx) <- p;
        Queue.add idx queue
      end
    in
    List.iter (fun q0 -> push ((src * m) + q0) None) (Nfa.starts nfa);
    let goal = ref None in
    while !goal = None && not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let u = idx / m and qs = idx mod m in
      if u = dst && Nfa.is_final nfa qs then goal := Some idx
      else
        List.iter
          (fun (lbl, u') ->
            let sym = Digraph.label_name g lbl in
            List.iter (fun qd -> push ((u' * m) + qd) (Some (idx, sym))) (Nfa.delta_sym nfa qs sym))
          (Digraph.out_edges g u)
    done;
    match !goal with
    | None -> None
    | Some idx ->
        let rec unroll idx word walk =
          let u = idx / m in
          match parent.(idx) with
          | None -> { Witness.word; walk = u :: walk }
          | Some (prev, sym) -> unroll prev (sym :: word) (u :: walk)
        in
        Some (unroll idx [] [])
  end

let agree_with_monadic g q =
  let monadic = Eval.select g q in
  Digraph.fold_nodes (fun acc v -> acc && monadic.(v) = (targets g q v <> [])) true g
