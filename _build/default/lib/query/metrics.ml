type t = {
  true_pos : int;
  false_pos : int;
  false_neg : int;
  precision : float;
  recall : float;
  f1 : float;
}

let score_sets ~expected ~got =
  if Array.length expected <> Array.length got then
    invalid_arg "Metrics.score_sets: arrays of different lengths";
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i e ->
      match (e, got.(i)) with
      | true, true -> incr tp
      | false, true -> incr fp
      | true, false -> incr fn
      | false, false -> ())
    expected;
  let tp = !tp and fp = !fp and fn = !fn in
  let precision = if tp + fp = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fp) in
  let recall = if tp + fn = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fn) in
  let f1 =
    if precision +. recall = 0.0 then 0.0 else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { true_pos = tp; false_pos = fp; false_neg = fn; precision; recall; f1 }

let score g ~goal ~hypothesis =
  score_sets ~expected:(Eval.select g goal) ~got:(Eval.select g hypothesis)

let exact g ~goal ~hypothesis = Eval.select g goal = Eval.select g hypothesis

let pp ppf t =
  Format.fprintf ppf "P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)" t.precision t.recall t.f1
    t.true_pos t.false_pos t.false_neg
