module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

type t = {
  graph : Digraph.t;
  query : Rpq.t;
  m : int;                          (* automaton states *)
  mutable capacity : int;           (* nodes covered by [can_accept] *)
  mutable can_accept : bool array;  (* (v * m + q) -> accepting reachable *)
  trans_by_symbol : (string, (int * int) list) Hashtbl.t;
      (* symbol -> automaton transitions, fixed at creation *)
}

let rebuild_tables nfa =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (qs, sym, qd) ->
      Hashtbl.replace tbl sym ((qs, qd) :: Option.value ~default:[] (Hashtbl.find_opt tbl sym)))
    (Nfa.transitions nfa);
  tbl

let ensure_capacity t n =
  if n > t.capacity then begin
    let grown = Array.make (n * t.m) false in
    Array.blit t.can_accept 0 grown 0 (t.capacity * t.m);
    t.can_accept <- grown;
    t.capacity <- n
  end

(* Backward propagation from a set of freshly-true product states. *)
let propagate t seeds =
  let queue = Queue.create () in
  List.iter (fun idx -> Queue.add idx queue) seeds;
  while not (Queue.is_empty queue) do
    let idx = Queue.pop queue in
    let v' = idx / t.m and q' = idx mod t.m in
    List.iter
      (fun (lbl, v) ->
        let sym = Digraph.label_name t.graph lbl in
        match Hashtbl.find_opt t.trans_by_symbol sym with
        | None -> ()
        | Some trans ->
            List.iter
              (fun (qs, qd) ->
                if qd = q' then begin
                  let pidx = (v * t.m) + qs in
                  if not t.can_accept.(pidx) then begin
                    t.can_accept.(pidx) <- true;
                    Queue.add pidx queue
                  end
                end)
              trans)
      (Digraph.in_edges t.graph v')
  done

let create g q =
  let nfa = Rpq.nfa q in
  let m = Nfa.n_states nfa in
  let n = Digraph.n_nodes g in
  let t =
    {
      graph = g;
      query = q;
      m;
      capacity = n;
      can_accept = Array.make (max 1 (n * m)) false;
      trans_by_symbol = rebuild_tables nfa;
    }
  in
  if m > 0 then begin
    let seeds = ref [] in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      List.iter
        (fun qf ->
          let idx = (v * m) + qf in
          t.can_accept.(idx) <- true;
          seeds := idx :: !seeds)
        finals
    done;
    propagate t !seeds
  end;
  t

let add_edge t ~src ~label ~dst =
  if t.m > 0 then begin
    ensure_capacity t (Digraph.n_nodes t.graph);
    (* a new graph edge src -label-> dst enables, for every automaton
       transition qs -label-> qd, the product edge (src,qs) -> (dst,qd);
       (src,qs) becomes accepting-reachable if (dst,qd) already is. Any
       accepting automaton state at a fresh node is also seeded. *)
    let nfa = Rpq.nfa t.query in
    List.iter
      (fun v ->
        if v < t.capacity then
          List.iter
            (fun qf ->
              let idx = (v * t.m) + qf in
              if not t.can_accept.(idx) then begin
                t.can_accept.(idx) <- true;
                propagate t [ idx ]
              end)
            (Nfa.finals nfa))
      [ src; dst ];
    match Hashtbl.find_opt t.trans_by_symbol label with
    | None -> ()
    | Some trans ->
        let seeds =
          List.filter_map
            (fun (qs, qd) ->
              let src_idx = (src * t.m) + qs in
              if t.can_accept.((dst * t.m) + qd) && not t.can_accept.(src_idx) then begin
                t.can_accept.(src_idx) <- true;
                Some src_idx
              end
              else None)
            trans
        in
        if seeds <> [] then propagate t seeds
  end

let selected t v =
  t.m > 0 && v < t.capacity
  && List.exists (fun q0 -> t.can_accept.((v * t.m) + q0)) (Nfa.starts (Rpq.nfa t.query))

let select t = Array.init (Digraph.n_nodes t.graph) (fun v -> selected t v)

let count t =
  let c = ref 0 in
  for v = 0 to Digraph.n_nodes t.graph - 1 do
    if selected t v then incr c
  done;
  !c

let agrees_with_scratch t = select t = Eval.select t.graph t.query
