(** Two-way regular path queries (2RPQs).

    The survey the paper builds on (Wood, "Query languages for graph
    databases", SIGMOD Record 2012 — reference [8]) treats the class of
    2RPQs: regular expressions over labels {e and their inverses}, where
    the inverse symbol [l~] traverses an [l]-edge backwards. GPS's demo
    works with plain RPQs; this module adds the standard extension so a
    downstream user can evaluate queries like [in~.(tram+bus)*.cinema]
    ("starting from a facility, step back to its district, then ride to a
    cinema").

    Concrete syntax: a trailing [~] on a symbol marks the inverse —
    [(child~)*], [in~.tram]. The expression layer is unchanged ([l~] is
    just a symbol name); direction is interpreted here, at evaluation
    time. *)

val is_inverse : string -> bool
(** Whether a symbol name carries the trailing [~]. *)

val base_label : string -> string
(** [base_label "tram~"] is ["tram"]; identity on plain symbols. *)

val select : Gps_graph.Digraph.t -> Rpq.t -> bool array
(** [select g q].(v) iff some two-way walk from [v] spells a word of
    [L(q)] — forward edges for plain symbols, backward edges for inverse
    symbols. Coincides with {!Eval.select} on inverse-free queries. *)

val select_nodes : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node list
val count : Gps_graph.Digraph.t -> Rpq.t -> int

type step = { label : string; inverse : bool; from_node : Gps_graph.Digraph.node; to_node : Gps_graph.Digraph.node }

val witness : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> step list option
(** A shortest two-way witness walk for a selected node: each step records
    the direction actually traversed. [Some []] when ε ∈ L(q). *)

val pp_step : Gps_graph.Digraph.t -> Format.formatter -> step -> unit
(** [N4 <-cinema- C1] for inverse steps, [N4 -cinema-> C1] otherwise. *)
