module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

let graph_transitions g =
  List.rev
    (Digraph.fold_edges
       (fun acc e -> (e.Digraph.src, Digraph.label_name g e.Digraph.lbl, e.Digraph.dst) :: acc)
       [] g)

let of_nodes g nodes =
  let n = Digraph.n_nodes g in
  Nfa.trim
    (Nfa.make ~n_states:n ~starts:nodes ~finals:(List.init n Fun.id)
       ~trans:(graph_transitions g))

let of_node g v = of_nodes g [ v ]

let covers g nodes w =
  match nodes with
  | [] -> false
  | _ -> (
      match Gps_graph.Walks.word_of_names g w with
      | None -> false (* a label the graph does not even have *)
      | Some word ->
          let module Iset = Set.Make (Int) in
          let step frontier lbl =
            Iset.fold
              (fun u acc ->
                List.fold_left (fun acc d -> Iset.add d acc) acc (Digraph.succ_by_label g u lbl))
              frontier Iset.empty
          in
          not (Iset.is_empty (List.fold_left step (Iset.of_list nodes) word)))

let disjoint_from g v q = not (Eval.selects g q v)
