(** Binary regular path queries — the classical two-variable semantics.

    The paper's GPS works with {e monadic} RPQs (select single nodes);
    the textbook RPQ semantics selects {e pairs}: [(x, y)] is an answer
    iff some walk from [x] to [y] spells a word of the language. This
    module provides that semantics as a natural extension — the demo's
    future audience would expect both — built on the same product
    construction as {!Eval}.

    The monadic semantics is recovered as: [x] is selected iff
    [(x, y)] is an answer for some [y]. *)

val targets : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> Gps_graph.Digraph.node list
(** [targets g q x]: all [y] with a walk [x ⇝ y] spelling a word of
    [L(q)], ascending. Includes [x] itself iff ε ∈ L(q). *)

val select_pairs : Gps_graph.Digraph.t -> Rpq.t -> (Gps_graph.Digraph.node * Gps_graph.Digraph.node) list
(** All answer pairs, lexicographically. Size can be quadratic — intended
    for moderate graphs or selective queries. *)

val count_pairs : Gps_graph.Digraph.t -> Rpq.t -> int

val is_answer :
  Gps_graph.Digraph.t -> Rpq.t -> src:Gps_graph.Digraph.node -> dst:Gps_graph.Digraph.node -> bool

val witness :
  Gps_graph.Digraph.t ->
  Rpq.t ->
  src:Gps_graph.Digraph.node ->
  dst:Gps_graph.Digraph.node ->
  Witness.t option
(** A shortest witness walk from [src] ending exactly at [dst]. *)

val agree_with_monadic : Gps_graph.Digraph.t -> Rpq.t -> bool
(** Cross-check used by the test suite: a node is {!Eval}-selected iff it
    has at least one binary target. *)
