lib/query/rewrite.mli: Gps_graph Rpq
