lib/query/pathlang.ml: Eval Fun Gps_automata Gps_graph Int List Set
