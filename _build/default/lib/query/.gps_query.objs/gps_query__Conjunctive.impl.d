lib/query/conjunctive.ml: Array Format Fun Gps_automata Gps_graph List Queue Rpq
