lib/query/eval.ml: Array Fun Gps_automata Gps_graph List Queue Rpq
