lib/query/witness.mli: Format Gps_graph Rpq
