lib/query/pathlang.mli: Gps_automata Gps_graph Rpq
