lib/query/rewrite.ml: Gps_graph Gps_regex List Rpq Twoway
