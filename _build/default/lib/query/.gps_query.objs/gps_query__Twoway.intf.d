lib/query/twoway.mli: Format Gps_graph Rpq
