lib/query/incremental.ml: Array Eval Gps_automata Gps_graph Hashtbl List Option Queue Rpq
