lib/query/rpq.ml: Gps_automata Gps_regex Lazy Result
