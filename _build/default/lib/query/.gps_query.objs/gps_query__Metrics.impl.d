lib/query/metrics.ml: Array Eval Format
