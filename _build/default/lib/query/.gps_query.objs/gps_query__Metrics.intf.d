lib/query/metrics.mli: Format Gps_graph Rpq
