lib/query/eval.mli: Gps_graph Rpq
