lib/query/incremental.mli: Gps_graph Rpq
