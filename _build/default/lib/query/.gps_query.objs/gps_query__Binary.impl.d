lib/query/binary.ml: Array Eval Gps_automata Gps_graph List Queue Rpq Witness
