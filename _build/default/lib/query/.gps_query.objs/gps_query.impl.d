lib/query/gps_query.ml: Binary Conjunctive Eval Incremental Metrics Pathlang Rewrite Rpq Twoway Witness
