lib/query/witness.ml: Array Eval Format Gps_automata Gps_graph List Option Queue Rpq
