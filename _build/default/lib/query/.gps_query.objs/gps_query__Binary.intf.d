lib/query/binary.mli: Gps_graph Rpq Witness
