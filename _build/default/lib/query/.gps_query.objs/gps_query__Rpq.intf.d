lib/query/rpq.mli: Format Gps_automata Gps_regex
