lib/query/conjunctive.mli: Format Gps_graph Rpq
