(** Quality metrics of a hypothesis query against a goal query.

    The companion paper reports learning quality as the F-measure of the
    node set selected by the learned query w.r.t. the goal query's set on
    the same graph. Exact language equivalence is also decidable here
    (regular languages), and both views are reported by the benchmarks:
    equivalence is what the interactive protocol converges to, F-measure
    is what intermediate hypotheses are scored with. *)

type t = {
  true_pos : int;
  false_pos : int;
  false_neg : int;
  precision : float;   (** 1.0 when nothing is retrieved *)
  recall : float;      (** 1.0 when nothing is relevant *)
  f1 : float;
}

val score : Gps_graph.Digraph.t -> goal:Rpq.t -> hypothesis:Rpq.t -> t

val score_sets : expected:bool array -> got:bool array -> t

val exact : Gps_graph.Digraph.t -> goal:Rpq.t -> hypothesis:Rpq.t -> bool
(** Same selected node set on this graph (weaker than language equality,
    which is {!Rpq.equal_lang}). *)

val pp : Format.formatter -> t -> unit
