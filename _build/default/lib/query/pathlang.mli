(** The path language of a node: all label words spelled by its outgoing
    walks, as an automaton.

    [paths(ν)] is prefix-closed and regular — its automaton is just the
    graph itself with start [ν] and every state accepting. The learner's
    consistency checks are language operations against these automata:
    a query is consistent with a negative node [n] iff
    [L(q) ∩ paths(n) = ∅]. *)

val of_node : Gps_graph.Digraph.t -> Gps_graph.Digraph.node -> Gps_automata.Nfa.t
(** Automaton over label {e names} accepting exactly the paths of the
    node (including ε). *)

val of_nodes : Gps_graph.Digraph.t -> Gps_graph.Digraph.node list -> Gps_automata.Nfa.t
(** Union: the words covered by {e some} node of the list. For an empty
    list this is the empty language. *)

val covers : Gps_graph.Digraph.t -> Gps_graph.Digraph.node list -> string list -> bool
(** [covers g nodes w]: is [w] a path of one of [nodes]? (Direct subset
    simulation on the graph — no automaton is built.) *)

val disjoint_from : Gps_graph.Digraph.t -> Gps_graph.Digraph.node -> Rpq.t -> bool
(** [L(q) ∩ paths(ν) = ∅] — equivalently, [q] does not select [ν]. *)
