module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa

let is_inverse sym =
  let n = String.length sym in
  n > 0 && sym.[n - 1] = '~'

let base_label sym = if is_inverse sym then String.sub sym 0 (String.length sym - 1) else sym

(* Automaton transitions re-indexed by graph label id, split by traversal
   direction. *)
let index_transitions g nfa =
  let n_labels = max (Digraph.n_labels g) 1 in
  let fwd = Array.make n_labels [] in
  let bwd = Array.make n_labels [] in
  List.iter
    (fun (qs, sym, qd) ->
      let table = if is_inverse sym then bwd else fwd in
      match Digraph.label_of_name g (base_label sym) with
      | Some lbl -> table.(lbl) <- (qs, qd) :: table.(lbl)
      | None -> ())
    (Nfa.transitions nfa);
  (fwd, bwd)

let select g q =
  let nfa = Rpq.nfa q in
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  let selected = Array.make n false in
  if m = 0 then selected
  else begin
    let fwd, bwd = index_transitions g nfa in
    (* Backward BFS from accepting product states. A forward-symbol
       product edge (v,q) -> (v',q') needs a graph edge v -l-> v'; an
       inverse-symbol edge needs v' -l-> v. So predecessors of (v',q')
       come from in-edges via [fwd] and out-edges via [bwd]. *)
    let can_accept = Array.make (n * m) false in
    let queue = Queue.create () in
    let push v qs =
      let idx = (v * m) + qs in
      if not can_accept.(idx) then begin
        can_accept.(idx) <- true;
        Queue.add idx queue
      end
    in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      List.iter (fun qf -> push v qf) finals
    done;
    while not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let v' = idx / m and q' = idx mod m in
      List.iter
        (fun (lbl, v) -> List.iter (fun (qs, qd) -> if qd = q' then push v qs) fwd.(lbl))
        (Digraph.in_edges g v');
      List.iter
        (fun (lbl, v) -> List.iter (fun (qs, qd) -> if qd = q' then push v qs) bwd.(lbl))
        (Digraph.out_edges g v')
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      selected.(v) <- List.exists (fun q0 -> can_accept.((v * m) + q0)) starts
    done;
    selected
  end

let select_nodes g q =
  let sel = select g q in
  List.filter (fun v -> sel.(v)) (List.init (Array.length sel) Fun.id)

let count g q = List.length (select_nodes g q)

type step = { label : string; inverse : bool; from_node : Digraph.node; to_node : Digraph.node }

let witness g q v =
  let nfa = Rpq.nfa q in
  let m = Nfa.n_states nfa in
  if m = 0 then None
  else begin
    let n = Digraph.n_nodes g in
    let visited = Array.make (n * m) false in
    let parent = Array.make (n * m) None in
    let queue = Queue.create () in
    let push idx p =
      if not visited.(idx) then begin
        visited.(idx) <- true;
        parent.(idx) <- p;
        Queue.add idx queue
      end
    in
    List.iter (fun q0 -> push ((v * m) + q0) None) (Nfa.starts nfa);
    let goal = ref None in
    while !goal = None && not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let u = idx / m and qs = idx mod m in
      if Nfa.is_final nfa qs then goal := Some idx
      else
        List.iter
          (fun (sym, qd) ->
            let inverse = is_inverse sym in
            match Digraph.label_of_name g (base_label sym) with
            | None -> ()
            | Some lbl ->
                let neighbors =
                  if inverse then Digraph.pred_by_label g u lbl
                  else Digraph.succ_by_label g u lbl
                in
                List.iter
                  (fun u' ->
                    push ((u' * m) + qd)
                      (Some (idx, { label = base_label sym; inverse; from_node = u; to_node = u' })))
                  neighbors)
          (Nfa.delta nfa qs)
    done;
    match !goal with
    | None -> None
    | Some idx ->
        let rec unroll idx steps =
          match parent.(idx) with
          | None -> steps
          | Some (prev, step) -> unroll prev (step :: steps)
        in
        Some (unroll idx [])
  end

let pp_step g ppf s =
  if s.inverse then
    Format.fprintf ppf "%s <-%s- %s" (Digraph.node_name g s.from_node) s.label
      (Digraph.node_name g s.to_node)
  else
    Format.fprintf ppf "%s -%s-> %s" (Digraph.node_name g s.from_node) s.label
      (Digraph.node_name g s.to_node)
