(** Antimirov partial derivatives.

    Where the Brzozowski derivative of a regex is a single regex, the
    Antimirov partial derivative is a {e set} of regexes whose union of
    languages is the derivative language; iterating from [r] reaches at
    most [size r] distinct terms, which yields a small NFA directly (see
    {!Gps_automata.Compile.to_nfa_antimirov}) and gives the test suite a
    third independent membership oracle. *)

val partial : string -> Regex.t -> Regex.t list
(** The set ∂ₐ(r), sorted and duplicate-free. *)

val partial_word : string list -> Regex.t -> Regex.t list
(** Iterated over a word, starting from [{r}]. *)

val matches : Regex.t -> string list -> bool
(** [w ∈ L(r)] decided via partial derivatives. *)

val terms : ?fuel:int -> Regex.t -> Regex.t list
(** All terms reachable from [r] by iterated partial derivation over its
    own alphabet (including [r]); the state space of the Antimirov
    automaton. Linear in [size r] in theory; [fuel] (default 10_000) is a
    safety net. *)
