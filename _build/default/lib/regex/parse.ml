exception Error of int * string

type token = Tsym of string | Tplus | Tdot | Tstar | Topt | Tlpar | Trpar | Teps | Tempty

let is_sym_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'
  || c = '~' (* trailing ~ marks an inverse symbol for two-way queries *)

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := (t, !i) :: !toks in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '+' then (push Tplus; incr i)
    else if c = '.' then (push Tdot; incr i)
    else if c = '*' then (push Tstar; incr i)
    else if c = '?' then (push Topt; incr i)
    else if c = '(' then (push Tlpar; incr i)
    else if c = ')' then (push Trpar; incr i)
    else if is_sym_char c then begin
      let start = !i in
      while !i < n && is_sym_char input.[!i] do incr i done;
      let s = String.sub input start (!i - start) in
      let t = match s with "eps" | "epsilon" -> Teps | "empty" -> Tempty | _ -> Tsym s in
      toks := (t, start) :: !toks
    end
    else if !i + 1 < n && input.[!i] = '\xce' && input.[!i + 1] = '\xb5' then begin
      push Teps;
      i := !i + 2
    end
    else if !i + 2 < n && input.[!i] = '\xe2' && input.[!i + 1] = '\x88' && input.[!i + 2] = '\x85'
    then begin
      push Tempty;
      i := !i + 3
    end
    else raise (Error (!i, Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !toks

(* Recursive descent over the token list; each rule returns the remaining
   tokens. *)
let parse_exn input =
  let rec alt toks =
    let r, toks = seq toks in
    match toks with
    | (Tplus, _) :: rest ->
        let r', toks = alt rest in
        (Regex.alt [ r; r' ], toks)
    | _ -> (r, toks)
  and seq toks =
    let r, toks = postfix toks in
    match toks with
    | (Tdot, _) :: rest ->
        let r', toks = seq rest in
        (Regex.seq [ r; r' ], toks)
    | ((Tsym _ | Teps | Tempty | Tlpar), _) :: _ ->
        (* adjacency concatenation *)
        let r', toks = seq toks in
        (Regex.seq [ r; r' ], toks)
    | _ -> (r, toks)
  and postfix toks =
    let r, toks = atom toks in
    let rec stars r = function
      | (Tstar, _) :: rest -> stars (Regex.star r) rest
      | (Topt, _) :: rest -> stars (Regex.opt r) rest
      | toks -> (r, toks)
    in
    stars r toks
  and atom = function
    | (Tsym s, _) :: rest -> (Regex.sym s, rest)
    | (Teps, _) :: rest -> (Regex.epsilon, rest)
    | (Tempty, _) :: rest -> (Regex.empty, rest)
    | (Tlpar, pos) :: rest -> (
        let r, toks = alt rest in
        match toks with
        | (Trpar, _) :: rest -> (r, rest)
        | _ -> raise (Error (pos, "unclosed parenthesis")))
    | (_, pos) :: _ -> raise (Error (pos, "expected a symbol, 'ε', '∅' or '('"))
    | [] -> raise (Error (String.length input, "unexpected end of input"))
  in
  let toks = tokenize input in
  if toks = [] then raise (Error (0, "empty input"));
  let r, toks = alt toks in
  match toks with
  | [] -> r
  | (_, pos) :: _ -> raise (Error (pos, "trailing input"))

let parse input =
  match parse_exn input with
  | r -> Ok r
  | exception Error (pos, msg) -> Result.error (Printf.sprintf "parse error at %d: %s" pos msg)
