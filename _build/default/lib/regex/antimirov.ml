module Rset = Set.Make (Regex)

let seq_all tail terms =
  (* append [tail] to every term, dropping empties via the smart
     constructor *)
  List.filter_map
    (fun t ->
      let r = Regex.seq [ t; tail ] in
      if Regex.is_empty_lang r then None else Some r)
    terms

let rec partial_set a (r : Regex.t) =
  match r with
  | Empty | Epsilon -> Rset.empty
  | Sym s -> if String.equal s a then Rset.singleton Regex.epsilon else Rset.empty
  | Alt rs -> List.fold_left (fun acc r -> Rset.union acc (partial_set a r)) Rset.empty rs
  | Seq (r1 :: rest) ->
      let tail = Regex.seq rest in
      let first = Rset.of_list (seq_all tail (Rset.elements (partial_set a r1))) in
      if Regex.nullable r1 then Rset.union first (partial_set a tail) else first
  | Seq [] -> Rset.empty (* unreachable: Seq holds >= 2 members *)
  | Star body -> Rset.of_list (seq_all r (Rset.elements (partial_set a body)))

let partial a r = Rset.elements (partial_set a r)

let partial_word w r =
  let step terms a =
    Rset.elements
      (List.fold_left (fun acc t -> Rset.union acc (partial_set a t)) Rset.empty terms)
  in
  List.fold_left step [ r ] w

let matches r w = List.exists Regex.nullable (partial_word w r)

let terms ?(fuel = 10_000) r =
  let sigma = Regex.alphabet r in
  let rec explore seen frontier fuel =
    if fuel <= 0 then seen
    else
      match frontier with
      | [] -> seen
      | t :: rest ->
          let nexts = List.concat_map (fun a -> partial a t) sigma in
          let fresh = List.filter (fun d -> not (Rset.mem d seen)) nexts in
          let fresh = List.sort_uniq Regex.compare fresh in
          explore
            (List.fold_left (fun s d -> Rset.add d s) seen fresh)
            (fresh @ rest) (fuel - 1)
  in
  Rset.elements (explore (Rset.singleton r) [ r ] fuel)
