(** Regular expressions over edge-label alphabets — the query language of
    the paper.

    A path query is a regular expression such as [(tram+bus)*.cinema]; it
    selects a graph node iff some outgoing walk spells a word of the
    expression's language. Symbols are free-form label names (strings);
    [+] is alternation, [.] concatenation, [*] Kleene star, as in the
    paper's notation.

    Values are kept in a lightweight normal form by the smart constructors
    (neutral/absorbing elements folded away, alternations flattened, sorted
    and deduplicated, nested stars collapsed), so structural equality is a
    useful — though of course not complete — approximation of language
    equality. *)

type t = private
  | Empty              (** ∅ — the empty language *)
  | Epsilon            (** ε — the singleton empty word *)
  | Sym of string      (** one edge label *)
  | Alt of t list      (** union; invariant: >= 2 members, flat, sorted, no duplicates, no [Empty] *)
  | Seq of t list      (** concatenation; invariant: >= 2 members, flat, no [Epsilon]/[Empty] *)
  | Star of t          (** Kleene closure; invariant: body not [Empty]/[Epsilon]/[Star _] *)

(** {1 Smart constructors} *)

val empty : t
val epsilon : t
val sym : string -> t
val alt : t list -> t
val seq : t list -> t
val star : t -> t
val plus : t -> t
(** [plus r] is [r.r*]. *)

val opt : t -> t
(** [opt r] is [ε + r]. *)

val word : string list -> t
(** The single-word language. *)

(** {1 Predicates and metrics} *)

val equal : t -> t -> bool
val compare : t -> t -> int

val nullable : t -> bool
(** Whether ε belongs to the language. *)

val is_empty_lang : t -> bool
(** Whether the language is ∅ (syntactic: [Empty] — the invariants
    guarantee no other form denotes ∅). *)

val size : t -> int
(** Number of AST nodes — the measure used when reporting learned-query
    conciseness. *)

val height : t -> int
val alphabet : t -> string list
(** Distinct symbols, sorted. *)

(** {1 Printing} *)

val to_string : t -> string
(** Paper notation, minimal parentheses: [(tram+bus)*.cinema]. [Empty]
    prints as [∅], [Epsilon] as [ε]. *)

val pp : Format.formatter -> t -> unit
