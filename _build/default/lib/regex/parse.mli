(** Parser for the paper's path-query notation.

    Grammar (whitespace ignored between tokens):
    {v
    alt    ::= seq ('+' seq)*
    seq    ::= star ('.'? star)*          concatenation: explicit '.' or adjacency
    star   ::= atom ('*' | '+'? ...)      postfix '*'; postfix '?' for option
    atom   ::= SYMBOL | 'ε' | 'eps' | '∅' | '(' alt ')'
    SYMBOL ::= [A-Za-z0-9_~-]+            but not the reserved words above
                                          (a trailing '~' marks an inverse
                                          symbol for two-way queries)
    v}

    Examples accepted: [(tram+bus)*.cinema], [tram* . restaurant],
    [bus bus cinema] (adjacency), [a?.b]. *)

exception Error of int * string
(** Byte offset and message. *)

val parse : string -> (Regex.t, string) result
val parse_exn : string -> Regex.t
(** @raise Error on malformed input. *)
