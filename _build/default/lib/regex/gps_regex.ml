(** Regular expressions over edge labels: AST with normalizing smart
    constructors, the paper's concrete syntax, and Brzozowski
    derivatives. *)

module Regex = Regex
module Parse = Parse
module Deriv = Deriv
module Antimirov = Antimirov
