(** Brzozowski derivatives.

    [derive a r] denotes the language [{ w | a.w ∈ L(r) }]. Derivatives
    give a direct, automaton-free word-membership test, used both by the
    query engine for single-word checks and by the test suite as an
    independent oracle against the Thompson/product pipeline. *)

val derive : string -> Regex.t -> Regex.t

val derive_word : string list -> Regex.t -> Regex.t

val matches : Regex.t -> string list -> bool
(** [matches r w] iff the word [w] (a list of labels) belongs to [L(r)]. *)

val derivatives : ?fuel:int -> Regex.t -> Regex.t list
(** The set of iterated derivatives of [r] reachable over its own alphabet
    (including [r]); cut off at [fuel] distinct values (default 10_000).
    Finite up to the smart-constructor normal form for all practical
    inputs; the learned queries here are tiny. *)
