let rec derive a (r : Regex.t) =
  match r with
  | Empty | Epsilon -> Regex.empty
  | Sym s -> if String.equal s a then Regex.epsilon else Regex.empty
  | Alt rs -> Regex.alt (List.map (derive a) rs)
  | Seq (r1 :: rest) ->
      let tail = Regex.seq rest in
      let first = Regex.seq [ derive a r1; tail ] in
      if Regex.nullable r1 then Regex.alt [ first; derive a tail ] else first
  | Seq [] -> Regex.empty (* unreachable: Seq holds >= 2 members *)
  | Star body -> Regex.seq [ derive a body; r ]

let derive_word w r = List.fold_left (fun r a -> derive a r) r w

let matches r w = Regex.nullable (derive_word w r)

module Rset = Set.Make (Regex)

let derivatives ?(fuel = 10_000) r =
  let sigma = Regex.alphabet r in
  let rec explore seen frontier fuel =
    if fuel <= 0 then seen
    else
      match frontier with
      | [] -> seen
      | r :: rest ->
          let nexts = List.map (fun a -> derive a r) sigma in
          let fresh = List.filter (fun d -> not (Rset.mem d seen)) nexts in
          let fresh = List.sort_uniq Regex.compare fresh in
          explore
            (List.fold_left (fun s d -> Rset.add d s) seen fresh)
            (fresh @ rest) (fuel - 1)
  in
  Rset.elements (explore (Rset.singleton r) [ r ] fuel)
