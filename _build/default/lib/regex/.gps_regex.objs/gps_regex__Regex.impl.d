lib/regex/regex.ml: Buffer Format List Set Stdlib String
