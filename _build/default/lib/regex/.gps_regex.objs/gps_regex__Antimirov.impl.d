lib/regex/antimirov.ml: List Regex Set String
