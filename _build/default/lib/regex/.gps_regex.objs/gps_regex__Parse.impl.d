lib/regex/parse.ml: List Printf Regex Result String
