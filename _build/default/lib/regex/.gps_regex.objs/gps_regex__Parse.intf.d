lib/regex/parse.mli: Regex
