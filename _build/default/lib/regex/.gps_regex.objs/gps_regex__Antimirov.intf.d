lib/regex/antimirov.mli: Regex
