lib/regex/deriv.ml: List Regex Set String
