lib/regex/gps_regex.ml: Antimirov Deriv Parse Regex
