lib/regex/deriv.mli: Regex
