type t =
  | Empty
  | Epsilon
  | Sym of string
  | Alt of t list
  | Seq of t list
  | Star of t

let empty = Empty
let epsilon = Epsilon
let sym s = Sym s

let rec compare a b =
  let rank = function
    | Empty -> 0
    | Epsilon -> 1
    | Sym _ -> 2
    | Alt _ -> 3
    | Seq _ -> 4
    | Star _ -> 5
  in
  match (a, b) with
  | Empty, Empty | Epsilon, Epsilon -> 0
  | Sym x, Sym y -> String.compare x y
  | Alt xs, Alt ys | Seq xs, Seq ys -> compare_list xs ys
  | Star x, Star y -> compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs ys

let equal a b = compare a b = 0

let rec nullable = function
  | Empty | Sym _ -> false
  | Epsilon | Star _ -> true
  | Alt rs -> List.exists nullable rs
  | Seq rs -> List.for_all nullable rs

(* Alternation: flatten nested Alts, drop Empty, sort, dedup; absorb any
   sibling of a star already containing it? (too clever — skip). If a Star r
   is a member, an Epsilon member is redundant. *)
let alt rs =
  let rec flatten acc = function
    | [] -> acc
    | Empty :: rest -> flatten acc rest
    | Alt xs :: rest -> flatten (flatten acc xs) rest
    | r :: rest -> flatten (r :: acc) rest
  in
  let members = List.sort_uniq compare (flatten [] rs) in
  let members =
    if List.exists (function Star _ -> true | _ -> false) members then
      List.filter (fun r -> r <> Epsilon) members
    else members
  in
  match members with [] -> Empty | [ r ] -> r | rs -> Alt rs

let seq rs =
  let rec flatten acc = function
    | [] -> Some acc
    | Empty :: _ -> None
    | Epsilon :: rest -> flatten acc rest
    | Seq xs :: rest -> (
        match flatten acc xs with None -> None | Some acc -> flatten acc rest)
    | r :: rest -> flatten (r :: acc) rest
  in
  match flatten [] rs with
  | None -> Empty
  | Some [] -> Epsilon
  | Some [ r ] -> r
  | Some rs -> Seq (List.rev rs)

let rec star r =
  match r with
  | Empty | Epsilon -> Epsilon
  | Star _ -> r
  | Alt rs when List.mem Epsilon rs ->
      (* (ε + r)* = r* *)
      star (alt (List.filter (fun r -> r <> Epsilon) rs))
  | Sym _ | Alt _ | Seq _ -> Star r

let plus r = seq [ r; star r ]
let opt r = alt [ epsilon; r ]
let word labels = seq (List.map sym labels)

let is_empty_lang r = r = Empty

let rec size = function
  | Empty | Epsilon | Sym _ -> 1
  | Alt rs | Seq rs -> List.fold_left (fun acc r -> acc + size r) 1 rs
  | Star r -> 1 + size r

let rec height = function
  | Empty | Epsilon | Sym _ -> 1
  | Alt rs | Seq rs -> 1 + List.fold_left (fun acc r -> max acc (height r)) 0 rs
  | Star r -> 1 + height r

let alphabet r =
  let module Sset = Set.Make (String) in
  let rec go acc = function
    | Empty | Epsilon -> acc
    | Sym s -> Sset.add s acc
    | Alt rs | Seq rs -> List.fold_left go acc rs
    | Star r -> go acc r
  in
  Sset.elements (go Sset.empty r)

(* Precedence climbing for printing: alt < seq < star/atom. *)
let to_string r =
  let buf = Buffer.create 64 in
  let paren cond body =
    if cond then Buffer.add_char buf '(';
    body ();
    if cond then Buffer.add_char buf ')'
  in
  (* [level]: 0 = alternation context, 1 = concatenation, 2 = star operand. *)
  let rec go level r =
    match r with
    | Empty -> Buffer.add_string buf "\xe2\x88\x85" (* ∅ *)
    | Epsilon -> Buffer.add_string buf "\xce\xb5" (* ε *)
    | Sym s -> Buffer.add_string buf s
    | Alt rs ->
        paren (level > 0) (fun () ->
            List.iteri
              (fun i r ->
                if i > 0 then Buffer.add_char buf '+';
                go 0 r)
              rs)
    | Seq rs ->
        paren (level > 1) (fun () ->
            List.iteri
              (fun i r ->
                if i > 0 then Buffer.add_char buf '.';
                go 1 r)
              rs)
    | Star r ->
        go 2 r;
        Buffer.add_char buf '*'
  in
  go 0 r;
  Buffer.contents buf

let pp ppf r = Format.pp_print_string ppf (to_string r)
