(** Graph traversals: BFS distances, reachability, shortest label-paths. *)

type direction = Out | In | Both
(** Which edges to follow: outgoing, incoming, or either (the undirected
    view). The paper's neighborhood views follow [Out] by default, since a
    path query reads labels along outgoing walks. *)

val step : Digraph.t -> direction -> Digraph.node -> (Digraph.label * Digraph.node) list
(** Neighbors of a node in the given direction, as [(label, neighbor)]. *)

val distances : Digraph.t -> ?direction:direction -> Digraph.node -> int array
(** BFS hop distances from the node; unreachable nodes get [max_int]. *)

val reachable : Digraph.t -> ?direction:direction -> Digraph.node -> bool array
(** Nodes reachable from the node (including itself). *)

val reachable_within : Digraph.t -> ?direction:direction -> Digraph.node -> radius:int -> Digraph.node list
(** Nodes at hop distance at most [radius], in BFS order (closest first). *)

val eccentricity : Digraph.t -> ?direction:direction -> Digraph.node -> int
(** Greatest finite BFS distance from the node. *)

val spell_word : Digraph.t -> Digraph.node -> Digraph.label list -> Digraph.node list
(** [spell_word g v w] is the set of nodes reachable from [v] by a walk
    whose label sequence is exactly [w] (subset simulation, no
    duplicates). Empty if no such walk exists. *)

val has_word : Digraph.t -> Digraph.node -> Digraph.label list -> bool
(** Whether some walk from the node spells the word. The empty word is a
    walk of every node. *)

val word_witness_walk : Digraph.t -> Digraph.node -> Digraph.label list -> Digraph.node list option
(** A concrete node sequence [v0; v1; ...; vk] realizing the word from the
    node, if any ([v0] is the node itself). *)
