(** Zoomable node neighborhoods — the graph fragments GPS shows the user.

    The system never displays the whole (possibly huge) graph: it shows the
    fragment induced by the nodes at hop distance at most [radius] from a
    center node, marks the fragment's {e frontier} (nodes with edges leaving
    the fragment, drawn as "…" in the paper's Figure 3), and supports
    zooming out by one hop with a diff of what appeared. *)

type t = {
  center : Digraph.node;
  radius : int;
  direction : Traverse.direction;
  nodes : (Digraph.node * int) list;  (** members with their BFS distance, closest first *)
  edges : Digraph.edge list;          (** edges with both endpoints in the fragment *)
  frontier : Digraph.node list;       (** members with at least one edge leaving the fragment *)
}

val compute : Digraph.t -> ?direction:Traverse.direction -> Digraph.node -> radius:int -> t
(** The fragment of radius [radius] around the node. [direction] defaults
    to [Out]: path queries read outgoing walks, so that is what the user
    must see to decide a label. *)

val zoom_out : Digraph.t -> t -> t
(** Same center, radius + 1. *)

val diff : before:t -> after:t -> (Digraph.node * int) list * Digraph.edge list
(** Nodes and edges of [after] absent from [before] — the parts a renderer
    highlights after a zoom (the blue additions of Figure 3(b)). *)

val mem : t -> Digraph.node -> bool
val size : t -> int

val is_complete : Digraph.t -> t -> bool
(** No frontier: the fragment already shows everything reachable, so
    further zooming reveals nothing. *)
