let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_id g v = Printf.sprintf "\"%s\"" (escape (Digraph.node_name g v))

let edge_line ?(attrs = "") g { Digraph.src; lbl; dst } =
  Printf.sprintf "  %s -> %s [label=\"%s\"%s];\n" (node_id g src) (node_id g dst)
    (escape (Digraph.label_name g lbl))
    attrs

let of_graph ?(highlight = []) ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Digraph.iter_nodes
    (fun v ->
      let attrs =
        if List.mem v highlight then " [style=filled, fillcolor=lightblue]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %s%s;\n" (node_id g v) attrs))
    g;
  Digraph.iter_edges (fun e -> Buffer.add_string buf (edge_line g e)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_fragment ?added ?(name = "neighborhood") g (frag : Neighborhood.t) =
  let added_nodes, added_edges = match added with Some d -> d | None -> ([], []) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  List.iter
    (fun (v, _) ->
      let attrs =
        if v = frag.center then " [style=filled, fillcolor=gold, penwidth=2]"
        else if List.mem_assoc v added_nodes then " [color=blue, fontcolor=blue]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %s%s;\n" (node_id g v) attrs))
    frag.nodes;
  List.iter
    (fun e ->
      let is_added =
        List.exists
          (fun e' -> e'.Digraph.src = e.Digraph.src && e'.lbl = e.Digraph.lbl && e'.dst = e.Digraph.dst)
          added_edges
      in
      let attrs = if is_added then ", color=blue, fontcolor=blue" else "" in
      Buffer.add_string buf (edge_line ~attrs g e))
    frag.edges;
  (* Frontier markers: a dashed edge to an anonymous "..." node, as in the
     paper's figures. *)
  List.iteri
    (fun i v ->
      let dots = Printf.sprintf "\"...%d\"" i in
      Buffer.add_string buf (Printf.sprintf "  %s [label=\"...\", shape=none];\n" dots);
      Buffer.add_string buf (Printf.sprintf "  %s -> %s [style=dashed];\n" (node_id g v) dots))
    frag.frontier;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
