(* The edge set instantiates Figure 1 of the paper. The figure's exact edge
   list is partly illegible in the archived text, so the instance below is
   reconstructed to satisfy every constraint the paper states about it:
   - (tram+bus)*.cinema selects exactly N1, N2, N4, N6, via the witness
     walks the paper lists (N1 -tram-> N4 -cinema-> C1; N2 -bus-> N1 ...;
     N4 -cinema-> C1; N6 -cinema-> C2);
   - bus travel exists between N2 and N3;
   - no path from N5 reaches a cinema;
   - the query [bus] selects both N2 and N6 and not N5 (Section 3);
   - the paths of N2 of length <= 3 include bus.tram.cinema and
     bus.bus.cinema, the latter being the Figure 3(c) candidate;
   - the cinema C1 is invisible from N2 at radius 2 and visible at
     radius 3 (Figures 3(a) vs 3(b)). *)
let figure1 () =
  Codec.of_edges
    [
      ("N2", "bus", "N1");
      ("N2", "bus", "N3");
      ("N1", "tram", "N4");
      ("N1", "bus", "N4");
      ("N4", "cinema", "C1");
      ("N6", "cinema", "C2");
      ("N6", "bus", "N3");
      ("N5", "tram", "N3");
      ("N5", "restaurant", "R1");
      ("N3", "restaurant", "R2");
    ]

let figure1_expected = [ "N1"; "N2"; "N4"; "N6" ]

(* A small, plausible slice of the Lille Transpole network. Stop names
   follow the real M1 line order (CHU Eurasanté -> 4 Cantons) plus the
   tram to Roubaix; facility placement is approximate but realistic
   (Palais des Beaux-Arts near République, the Majestic cinema near
   Rihour, the Citadelle park, etc.). *)
let transpole () =
  let g = Digraph.create () in
  let both label a b =
    Digraph.link g a label b;
    Digraph.link g b label a
  in
  let facility kind stop name =
    Digraph.link g stop kind name;
    Digraph.link g name "in" stop
  in
  (* metro line M1 *)
  let m1 =
    [
      "CHU_Eurasante"; "CHU_Centre"; "Porte_des_Postes"; "Wazemmes"; "Gambetta";
      "Republique_Beaux_Arts"; "Rihour"; "Gare_Lille_Flandres"; "Caulier"; "Fives";
      "Marbrerie"; "Pont_de_Bois"; "Villeneuve_Hotel_de_Ville"; "Triolo";
      "Cite_Scientifique"; "Quatre_Cantons";
    ]
  in
  let rec wire label = function
    | a :: (b :: _ as rest) ->
        both label a b;
        wire label rest
    | [ _ ] | [] -> ()
  in
  wire "metro" m1;
  (* tram towards Roubaix *)
  wire "tram"
    [ "Gare_Lille_Flandres"; "Romarin"; "Saint_Maur"; "Croix_Centre"; "Roubaix_Grand_Place" ];
  (* a few bus links *)
  both "bus" "Rihour" "Wazemmes";
  both "bus" "Gambetta" "Porte_des_Postes";
  both "bus" "Citadelle" "Rihour";
  both "bus" "Romarin" "Citadelle";
  both "bus" "Croix_Centre" "Villeneuve_Hotel_de_Ville";
  (* facilities *)
  facility "museum" "Republique_Beaux_Arts" "Palais_des_Beaux_Arts";
  facility "museum" "Pont_de_Bois" "LaM_Villeneuve";
  facility "cinema" "Rihour" "Majestic";
  facility "cinema" "Gare_Lille_Flandres" "UGC_Lille";
  facility "cinema" "Roubaix_Grand_Place" "Duplexe_Roubaix";
  facility "theatre" "Rihour" "Theatre_du_Nord";
  facility "theatre" "Roubaix_Grand_Place" "Colisee";
  facility "park" "Citadelle" "Parc_de_la_Citadelle";
  facility "park" "Quatre_Cantons" "Parc_du_Heron";
  facility "restaurant" "Wazemmes" "Marche_Wazemmes";
  facility "restaurant" "Gare_Lille_Flandres" "Estaminet_Flandres";
  facility "restaurant" "Croix_Centre" "Brasserie_Croix";
  g
