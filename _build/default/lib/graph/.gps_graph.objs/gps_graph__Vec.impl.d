lib/graph/vec.ml: Array Printf
