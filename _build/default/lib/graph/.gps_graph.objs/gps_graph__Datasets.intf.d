lib/graph/datasets.mli: Digraph
