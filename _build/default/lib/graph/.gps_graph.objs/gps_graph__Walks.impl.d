lib/graph/walks.ml: Array Digraph Format Int List Queue Set
