lib/graph/json.ml: Buffer Char Digraph Float List Printf String
