lib/graph/gps_graph.ml: Codec Csr Datasets Digraph Dot Edit Generators Json Neighborhood Prng Reach Scc Stats Store Symtab Traverse Vec Walks
