lib/graph/store.ml: Digraph List Option Printf String Sys
