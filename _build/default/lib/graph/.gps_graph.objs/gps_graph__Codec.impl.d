lib/graph/codec.ml: Buffer Digraph List Printf String
