lib/graph/digraph.ml: Format Fun Hashtbl List Printf Symtab Vec
