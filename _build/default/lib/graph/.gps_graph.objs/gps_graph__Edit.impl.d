lib/graph/edit.ml: Array Digraph List
