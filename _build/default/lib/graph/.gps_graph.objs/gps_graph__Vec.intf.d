lib/graph/vec.mli:
