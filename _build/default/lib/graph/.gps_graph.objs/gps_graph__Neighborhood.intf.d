lib/graph/neighborhood.mli: Digraph Traverse
