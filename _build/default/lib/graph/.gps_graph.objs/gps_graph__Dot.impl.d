lib/graph/dot.ml: Buffer Digraph List Neighborhood Printf String
