lib/graph/neighborhood.ml: Array Digraph Int List Set Traverse
