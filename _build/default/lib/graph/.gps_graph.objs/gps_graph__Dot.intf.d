lib/graph/dot.mli: Digraph Neighborhood
