lib/graph/json.mli: Digraph
