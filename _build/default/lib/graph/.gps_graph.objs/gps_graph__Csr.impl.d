lib/graph/csr.ml: Array Digraph Printf
