lib/graph/symtab.ml: Hashtbl Printf Vec
