lib/graph/reach.ml: Array Bytes Char Digraph List Scc
