lib/graph/codec.mli: Digraph
