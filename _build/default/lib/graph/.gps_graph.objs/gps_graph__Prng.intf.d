lib/graph/prng.mli:
