lib/graph/edit.mli: Digraph
