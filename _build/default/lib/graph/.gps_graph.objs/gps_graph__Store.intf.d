lib/graph/store.mli: Digraph
