lib/graph/symtab.mli:
