lib/graph/stats.ml: Digraph Format Hashtbl List Option Scc Traverse
