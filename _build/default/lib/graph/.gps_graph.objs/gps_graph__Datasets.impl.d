lib/graph/datasets.ml: Codec Digraph
