lib/graph/csr.mli: Digraph
