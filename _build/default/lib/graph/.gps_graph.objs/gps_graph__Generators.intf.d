lib/graph/generators.mli: Digraph
