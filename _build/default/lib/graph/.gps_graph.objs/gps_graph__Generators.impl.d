lib/graph/generators.ml: Array Digraph List Printf Prng Vec
