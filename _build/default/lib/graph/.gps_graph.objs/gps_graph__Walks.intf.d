lib/graph/walks.mli: Digraph Format
