lib/graph/traverse.ml: Array Digraph Int List Queue Set
