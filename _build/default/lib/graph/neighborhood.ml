type t = {
  center : Digraph.node;
  radius : int;
  direction : Traverse.direction;
  nodes : (Digraph.node * int) list;
  edges : Digraph.edge list;
  frontier : Digraph.node list;
}

module Iset = Set.Make (Int)

let compute g ?(direction = Traverse.Out) center ~radius =
  let dist = Traverse.distances g ~direction center in
  let members =
    List.filter (fun v -> dist.(v) <= radius) (Traverse.reachable_within g ~direction center ~radius)
  in
  let member_set = Iset.of_list members in
  let nodes = List.map (fun v -> (v, dist.(v))) members in
  let edges =
    (* Collect graph edges (always directed src->dst) between members,
       regardless of the traversal direction used to pick members. *)
    List.concat_map
      (fun src ->
        List.filter_map
          (fun (lbl, dst) ->
            if Iset.mem dst member_set then Some { Digraph.src; lbl; dst } else None)
          (Digraph.out_edges g src))
      members
  in
  let escapes v =
    List.exists (fun (_, u) -> not (Iset.mem u member_set)) (Traverse.step g direction v)
  in
  let frontier = List.filter escapes members in
  { center; radius; direction; nodes; edges; frontier }

let zoom_out g t = compute g ~direction:t.direction t.center ~radius:(t.radius + 1)

let diff ~before ~after =
  let before_nodes = Iset.of_list (List.map fst before.nodes) in
  let new_nodes = List.filter (fun (v, _) -> not (Iset.mem v before_nodes)) after.nodes in
  let edge_mem e es =
    List.exists (fun e' -> e'.Digraph.src = e.Digraph.src && e'.lbl = e.Digraph.lbl && e'.dst = e.Digraph.dst) es
  in
  let new_edges = List.filter (fun e -> not (edge_mem e before.edges)) after.edges in
  (new_nodes, new_edges)

let mem t v = List.mem_assoc v t.nodes

let size t = List.length t.nodes

let is_complete _g t = t.frontier = []
