(** Graph editing and subgraph extraction.

    {!Digraph} is append-only (adding nodes/edges never invalidates ids);
    deletions and projections therefore build a {e new} graph. Node
    identity across an edit is by {e name}, which survives the rebuild —
    use {!Digraph.node_of_name} to re-resolve ids afterwards. *)

val induced : Digraph.t -> Digraph.node list -> Digraph.t
(** The subgraph on exactly the given nodes and the edges among them. *)

val filter_labels : Digraph.t -> keep:(string -> bool) -> Digraph.t
(** Drop every edge whose label fails [keep]; all nodes survive. *)

val filter_edges : Digraph.t -> keep:(Digraph.edge -> bool) -> Digraph.t

val remove_node : Digraph.t -> Digraph.node -> Digraph.t
(** Remove the node and all incident edges. *)

val remove_edge : Digraph.t -> Digraph.edge -> Digraph.t

val merge_nodes : Digraph.t -> into:Digraph.node -> Digraph.node -> Digraph.t
(** Redirect all edges of the second node onto [into] and drop it.
    Self-loops arising from edges between the two are kept.
    @raise Invalid_argument if the nodes are equal. *)

val relabel : Digraph.t -> from_label:string -> to_label:string -> Digraph.t
(** Rename every edge label [from_label] to [to_label] (edges collapsing
    onto existing ones are deduplicated). *)
