(** GraphViz DOT export, for whole graphs and for neighborhood fragments.

    The fragment renderer reproduces the conventions of the paper's
    Figure 3: the proposed node is emphasized, newly revealed nodes/edges
    (after a zoom) are drawn in blue, and frontier nodes reachable beyond
    the fragment get a dashed "…" successor. *)

val of_graph :
  ?highlight:Digraph.node list ->
  ?name:string ->
  Digraph.t ->
  string

val of_fragment :
  ?added:(Digraph.node * int) list * Digraph.edge list ->
  ?name:string ->
  Digraph.t ->
  Neighborhood.t ->
  string
(** [added] is a {!Neighborhood.diff} result to draw highlighted. *)
