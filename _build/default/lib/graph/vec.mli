(** Growable arrays.

    A thin dynamic-array abstraction used by the graph store for adjacency
    lists and interned-name tables. OCaml 5.1 has no [Dynarray] in the
    standard library, so we provide the small subset we need. *)

type 'a t

val create : unit -> 'a t
(** A fresh, empty vector. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element. @raise Invalid_argument if out
    of bounds. *)

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val copy : 'a t -> 'a t
