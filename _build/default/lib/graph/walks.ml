type word = Digraph.label list

module Iset = Set.Make (Int)

(* Breadth-first over distinct (word, endpoint-set) states: standard
   on-the-fly subset construction of the node's path language. Distinct
   words of the same length are visited in lexicographic order because
   extension labels are sorted. *)
let fold_words g v ~max_len f acc =
  let next_labels frontier =
    let add acc (l, _) = Iset.add l acc in
    Iset.elements
      (Iset.fold (fun u acc -> List.fold_left add acc (Digraph.out_edges g u)) frontier Iset.empty)
  in
  let extend frontier lbl =
    Iset.fold
      (fun u acc -> List.fold_left (fun acc d -> Iset.add d acc) acc (Digraph.succ_by_label g u lbl))
      frontier Iset.empty
  in
  let q = Queue.create () in
  Queue.add ([], Iset.singleton v) q;
  let acc = ref acc in
  (try
     while not (Queue.is_empty q) do
       let rev_word, frontier = Queue.pop q in
       let len = List.length rev_word in
       if len > 0 then begin
         match f !acc (List.rev rev_word) (Iset.elements frontier) with
         | `Stop a ->
             acc := a;
             raise Exit
         | `Continue a -> acc := a
       end;
       if len < max_len then
         List.iter
           (fun lbl -> Queue.add (lbl :: rev_word, extend frontier lbl) q)
           (next_labels frontier)
     done
   with Exit -> ());
  !acc

let words_with_endpoints g v ~max_len =
  List.rev (fold_words g v ~max_len (fun acc w ends -> `Continue ((w, ends) :: acc)) [])

let words g v ~max_len = List.map fst (words_with_endpoints g v ~max_len)

let exists_word g v ~max_len p =
  fold_words g v ~max_len (fun acc w _ -> if p w then `Stop (Some w) else `Continue acc) None

let count_walks g v ~max_len =
  (* DP on walk counts per node per length; saturating addition. *)
  let n = Digraph.n_nodes g in
  let sat_add a b = if a > max_int - b then max_int else a + b in
  let cur = Array.make n 0 in
  cur.(v) <- 1;
  let total = ref 0 in
  let cur = ref cur in
  for _ = 1 to max_len do
    let nxt = Array.make n 0 in
    Array.iteri
      (fun u c ->
        if c > 0 then
          List.iter (fun (_, d) -> nxt.(d) <- sat_add nxt.(d) c) (Digraph.out_edges g u))
      !cur;
    Array.iter (fun c -> total := sat_add !total c) nxt;
    cur := nxt
  done;
  !total

let pp_word g ppf = function
  | [] -> Format.pp_print_string ppf "\xce\xb5" (* ε *)
  | w ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
        (fun ppf l -> Format.pp_print_string ppf (Digraph.label_name g l))
        ppf w

let word_of_names g names =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | s :: rest -> (
        match Digraph.label_of_name g s with
        | Some l -> go (l :: acc) rest
        | None -> None)
  in
  go [] names

let word_names g w = List.map (Digraph.label_name g) w
