(** Deterministic pseudo-random numbers (splitmix64).

    Synthetic-workload generation must be reproducible bit-for-bit across
    runs and OCaml versions, so the generators use this self-contained PRNG
    rather than [Stdlib.Random]. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val pick_arr : t -> 'a array -> 'a

val shuffle : t -> 'a list -> 'a list
(** A uniformly random permutation. *)

val split : t -> t
(** An independent stream (for parallel or nested generation). *)
