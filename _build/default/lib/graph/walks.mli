(** Enumeration of the {e paths of a node}: the label words spelled by walks
    leaving it.

    In the paper, the paths of a node [ν] are the words read along walks
    starting at [ν]; a path query selects [ν] iff one of its paths belongs
    to the query language. The path language of a node is in general
    infinite (cycles), so all enumeration here is bounded by a word
    length. *)

type word = Digraph.label list

val words : Digraph.t -> Digraph.node -> max_len:int -> word list
(** All distinct non-empty words of length at most [max_len] spelled by
    walks from the node, in length-then-lexicographic (by label id) order. *)

val words_with_endpoints : Digraph.t -> Digraph.node -> max_len:int -> (word * Digraph.node list) list
(** Same, each word paired with the set of endpoints its walks can reach. *)

val count_walks : Digraph.t -> Digraph.node -> max_len:int -> int
(** Number of non-empty walks (not distinct words) of length at most
    [max_len] leaving the node. Grows fast on dense graphs; capped at
    [max_int]. *)

val exists_word : Digraph.t -> Digraph.node -> max_len:int -> (word -> bool) -> word option
(** First word (in enumeration order) of length at most [max_len]
    satisfying the predicate, if any. Prunes by prefix: a word is only
    extended, never skipped, so the predicate sees every candidate. *)

val pp_word : Digraph.t -> Format.formatter -> word -> unit
(** Renders a word as [lbl1.lbl2.....lbln] by label name; the empty word
    as [ε]. *)

val word_of_names : Digraph.t -> string list -> word option
(** Translates label names to a word; [None] if some label is unknown to
    the graph. *)

val word_names : Digraph.t -> word -> string list
