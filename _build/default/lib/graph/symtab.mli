(** String interning tables.

    Graph databases carry no schema: node identifiers and edge labels are
    arbitrary strings. Interning them to dense integers lets the rest of the
    system work on [int]s (array-indexed adjacency, bitsets) while keeping
    the human-readable names around for display. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating a fresh one on first
    sight. Ids are dense, starting at [0], in order of first interning. *)

val find : t -> string -> int option
(** [find t s] is the id of [s] if already interned. *)

val name : t -> int -> string
(** [name t id] is the string interned as [id].
    @raise Invalid_argument on unknown ids. *)

val size : t -> int
(** Number of interned strings. *)

val iter : (int -> string -> unit) -> t -> unit
val names : t -> string list
val copy : t -> t
