(** Built-in datasets.

    {!figure1} is the paper's motivating example reproduced verbatim: a
    geographical database with six neighborhoods, two cinemas and two
    restaurants, connected by [tram]/[bus] transport edges and
    [cinema]/[restaurant] facility edges. On it, the goal query
    [(tram+bus)*.cinema] selects exactly [N1], [N2], [N4] and [N6]. *)

val figure1 : unit -> Digraph.t

val figure1_expected : string list
(** Node names the paper states are selected by [(tram+bus)*.cinema]:
    ["N1"; "N2"; "N4"; "N6"]. *)

val transpole : unit -> Digraph.t
(** A hand-curated Lille-area transport network in the spirit of the demo
    data (the paper demos on Transpole, the Lille operator): 16 stops of
    metro line M1, the Roubaix tram branch and a few bus links, with
    cultural facilities ([cinema], [museum], [theatre], [park],
    [restaurant]) attached to the stops that actually host them.
    Transport edges run in both directions; facility edges carry an [in]
    back-edge like {!Generators.city}. *)
