(** JSON serialization of graph databases (self-contained — no external
    JSON dependency).

    The document shape interchanges with common graph tooling:
    {v
    { "nodes": ["N1", "N2"],
      "edges": [ { "src": "N1", "label": "tram", "dst": "N2" } ] }
    v}
    The [nodes] array may list nodes that no edge mentions; edge endpoints
    are added implicitly. *)

(** A minimal JSON value tree, exposed because the CLI and tests reuse the
    parser for other payloads (session journals). *)
type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of int * string
(** Byte offset and message. *)

val value_of_string : string -> value
(** @raise Parse_error *)

val value_to_string : ?pretty:bool -> value -> string

val of_string : string -> Digraph.t
(** @raise Parse_error on malformed JSON or on a document without the
    expected shape. *)

val to_string : ?pretty:bool -> Digraph.t -> string

val member : string -> value -> value option
(** Object field lookup helper. *)
