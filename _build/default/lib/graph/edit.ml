(* All edits rebuild: copy the surviving nodes (preserving names, hence
   identity), then the surviving edges. *)
let rebuild g ~keep_node ~map_edge =
  let g' = Digraph.create () in
  Digraph.iter_nodes
    (fun v -> if keep_node v then ignore (Digraph.add_node g' (Digraph.node_name g v)))
    g;
  Digraph.iter_edges
    (fun e ->
      match map_edge e with
      | None -> ()
      | Some (src, label, dst) ->
          if keep_node src && keep_node dst then
            Digraph.link g' (Digraph.node_name g src) label (Digraph.node_name g dst))
    g;
  g'

let induced g nodes =
  let member = Array.make (Digraph.n_nodes g) false in
  List.iter (fun v -> member.(v) <- true) nodes;
  rebuild g
    ~keep_node:(fun v -> member.(v))
    ~map_edge:(fun e -> Some (e.Digraph.src, Digraph.label_name g e.Digraph.lbl, e.Digraph.dst))

let filter_edges g ~keep =
  rebuild g
    ~keep_node:(fun _ -> true)
    ~map_edge:(fun e ->
      if keep e then Some (e.Digraph.src, Digraph.label_name g e.Digraph.lbl, e.Digraph.dst)
      else None)

let filter_labels g ~keep = filter_edges g ~keep:(fun e -> keep (Digraph.label_name g e.Digraph.lbl))

let remove_node g v =
  rebuild g
    ~keep_node:(fun u -> u <> v)
    ~map_edge:(fun e -> Some (e.Digraph.src, Digraph.label_name g e.Digraph.lbl, e.Digraph.dst))

let remove_edge g edge =
  filter_edges g ~keep:(fun e ->
      not (e.Digraph.src = edge.Digraph.src && e.Digraph.lbl = edge.Digraph.lbl && e.Digraph.dst = edge.Digraph.dst))

let merge_nodes g ~into victim =
  if into = victim then invalid_arg "Edit.merge_nodes: cannot merge a node into itself";
  let redirect v = if v = victim then into else v in
  rebuild g
    ~keep_node:(fun u -> u <> victim)
    ~map_edge:(fun e ->
      Some (redirect e.Digraph.src, Digraph.label_name g e.Digraph.lbl, redirect e.Digraph.dst))

let relabel g ~from_label ~to_label =
  rebuild g
    ~keep_node:(fun _ -> true)
    ~map_edge:(fun e ->
      let l = Digraph.label_name g e.Digraph.lbl in
      Some (e.Digraph.src, (if l = from_label then to_label else l), e.Digraph.dst))
