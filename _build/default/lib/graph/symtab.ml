type t = { by_name : (string, int) Hashtbl.t; by_id : string Vec.t }

let create () = { by_name = Hashtbl.create 64; by_id = Vec.create () }

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
      let id = Vec.push t.by_id s in
      Hashtbl.add t.by_name s id;
      id

let find t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= Vec.length t.by_id then
    invalid_arg (Printf.sprintf "Symtab.name: unknown id %d" id)
  else Vec.get t.by_id id

let size t = Vec.length t.by_id

let iter f t = Vec.iteri f t.by_id

let names t = Vec.to_list t.by_id

let copy t = { by_name = Hashtbl.copy t.by_name; by_id = Vec.copy t.by_id }
