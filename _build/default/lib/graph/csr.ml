type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;
  out_offsets : int array;  (* length n_nodes + 1 *)
  out_labels : int array;   (* length n_edges, parallel with out_targets *)
  out_targets : int array;
  in_offsets : int array;
  in_labels : int array;
  in_sources : int array;
}

let freeze g =
  let n = Digraph.n_nodes g in
  let m = Digraph.n_edges g in
  let out_offsets = Array.make (n + 1) 0 in
  let in_offsets = Array.make (n + 1) 0 in
  Digraph.iter_edges
    (fun e ->
      out_offsets.(e.Digraph.src + 1) <- out_offsets.(e.Digraph.src + 1) + 1;
      in_offsets.(e.Digraph.dst + 1) <- in_offsets.(e.Digraph.dst + 1) + 1)
    g;
  for i = 1 to n do
    out_offsets.(i) <- out_offsets.(i) + out_offsets.(i - 1);
    in_offsets.(i) <- in_offsets.(i) + in_offsets.(i - 1)
  done;
  let out_labels = Array.make m 0 and out_targets = Array.make m 0 in
  let in_labels = Array.make m 0 and in_sources = Array.make m 0 in
  let out_cursor = Array.copy out_offsets and in_cursor = Array.copy in_offsets in
  Digraph.iter_edges
    (fun e ->
      let o = out_cursor.(e.Digraph.src) in
      out_cursor.(e.Digraph.src) <- o + 1;
      out_labels.(o) <- e.Digraph.lbl;
      out_targets.(o) <- e.Digraph.dst;
      let i = in_cursor.(e.Digraph.dst) in
      in_cursor.(e.Digraph.dst) <- i + 1;
      in_labels.(i) <- e.Digraph.lbl;
      in_sources.(i) <- e.Digraph.src)
    g;
  {
    n_nodes = n;
    n_edges = m;
    n_labels = Digraph.n_labels g;
    out_offsets;
    out_labels;
    out_targets;
    in_offsets;
    in_labels;
    in_sources;
  }

let n_nodes t = t.n_nodes
let n_edges t = t.n_edges
let n_labels t = t.n_labels

let check t v name =
  if v < 0 || v >= t.n_nodes then invalid_arg (Printf.sprintf "Csr.%s: node %d out of range" name v)

let iter_out t v f =
  check t v "iter_out";
  for i = t.out_offsets.(v) to t.out_offsets.(v + 1) - 1 do
    f t.out_labels.(i) t.out_targets.(i)
  done

let iter_in t v f =
  check t v "iter_in";
  for i = t.in_offsets.(v) to t.in_offsets.(v + 1) - 1 do
    f t.in_labels.(i) t.in_sources.(i)
  done

let out_degree t v =
  check t v "out_degree";
  t.out_offsets.(v + 1) - t.out_offsets.(v)

let in_degree t v =
  check t v "in_degree";
  t.in_offsets.(v + 1) - t.in_offsets.(v)

let fold_out t v ~init ~f =
  check t v "fold_out";
  let acc = ref init in
  for i = t.out_offsets.(v) to t.out_offsets.(v + 1) - 1 do
    acc := f !acc t.out_labels.(i) t.out_targets.(i)
  done;
  !acc
