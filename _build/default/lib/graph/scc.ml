type result = { count : int; component : int array }

(* Iterative Tarjan: an explicit stack of (node, remaining successors)
   frames avoids stack overflow on long chains. *)
let compute g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let frames = ref [ (root, ref (List.map snd (Digraph.out_edges g root))) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, succs) :: rest -> (
          match !succs with
          | u :: more ->
              succs := more;
              if index.(u) = -1 then begin
                index.(u) <- !next_index;
                lowlink.(u) <- !next_index;
                incr next_index;
                stack := u :: !stack;
                on_stack.(u) <- true;
                frames := (u, ref (List.map snd (Digraph.out_edges g u))) :: !frames
              end
              else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
          | [] ->
              if lowlink.(v) = index.(v) then begin
                let rec pop () =
                  match !stack with
                  | [] -> assert false
                  | u :: tl ->
                      stack := tl;
                      on_stack.(u) <- false;
                      component.(u) <- !next_comp;
                      if u <> v then pop ()
                in
                pop ();
                incr next_comp
              end;
              frames := rest;
              (match rest with
              | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { count = !next_comp; component }

let components g =
  let { count; component } = compute g in
  let buckets = Array.make count [] in
  let n = Array.length component in
  for v = n - 1 downto 0 do
    buckets.(component.(v)) <- v :: buckets.(component.(v))
  done;
  buckets

let is_trivial r =
  r.count = Array.length r.component

let largest r =
  if r.count = 0 then 0
  else begin
    let sizes = Array.make r.count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) r.component;
    Array.fold_left max 0 sizes
  end
