(** Edge-labeled directed multigraphs — the graph-database model of the
    paper.

    A graph database is a finite set of nodes connected by directed edges,
    each edge carrying a label drawn from a finite alphabet (e.g. [tram],
    [bus], [cinema] in the motivating example). There is no schema: node
    names and edge labels are free-form strings, interned to dense integer
    ids internally.

    The structure is a {e set} of edges: re-adding an existing
    [(src, label, dst)] triple is a no-op. Parallel edges with distinct
    labels are allowed. *)

type node = int
(** Dense node ids, [0 .. n_nodes - 1]. *)

type label = int
(** Dense label ids, [0 .. n_labels - 1]. *)

type edge = { src : node; lbl : label; dst : node }

type t

(** {1 Construction} *)

val create : unit -> t

val add_node : t -> string -> node
(** [add_node g name] returns the node named [name], creating it if
    needed. *)

val add_edge : t -> src:node -> label:string -> dst:node -> unit
(** Adds the edge; a no-op if the same triple is already present.
    @raise Invalid_argument if [src] or [dst] is not a node of [g]. *)

val link : t -> string -> string -> string -> unit
(** [link g src label dst] adds nodes by name as needed, then the edge.
    Convenience for building graphs from literals. *)

val copy : t -> t

(** {1 Lookup} *)

val n_nodes : t -> int
val n_edges : t -> int
val n_labels : t -> int

val node_of_name : t -> string -> node option
val node_name : t -> node -> string
val label_of_name : t -> string -> label option
val label_name : t -> label -> string
val intern_label : t -> string -> label
(** Interns a label without adding any edge (used when translating query
    alphabets onto a graph). *)

val mem_node : t -> node -> bool
val mem_edge : t -> src:node -> lbl:label -> dst:node -> bool

(** {1 Adjacency} *)

val out_edges : t -> node -> (label * node) list
(** Outgoing [(label, destination)] pairs, in insertion order. *)

val in_edges : t -> node -> (label * node) list
(** Incoming [(label, source)] pairs. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val succ_by_label : t -> node -> label -> node list
(** Destinations of edges leaving the node with the given label. *)

val pred_by_label : t -> node -> label -> node list

(** {1 Iteration} *)

val nodes : t -> node list
val labels : t -> string list
val iter_nodes : (node -> unit) -> t -> unit
val iter_edges : (edge -> unit) -> t -> unit
val fold_nodes : ('acc -> node -> 'acc) -> 'acc -> t -> 'acc
val fold_edges : ('acc -> edge -> 'acc) -> 'acc -> t -> 'acc
val edges : t -> edge list

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** One edge per line, [src -label-> dst], by interned name. *)

val pp_edge : t -> Format.formatter -> edge -> unit
