(** Durable graph storage: an append-only log with crash recovery.

    The interactive sessions mutate nothing, but a graph database worth
    the name must survive restarts. This store keeps the full graph in
    memory (as {!Digraph}) and appends every mutation to a write-ahead
    text log, one record per line:
    {v
    N <name>                 a node
    E <src> <label> <dst>    an edge (tab-separated fields)
    v}
    On open, the log is replayed; a torn final record (no trailing
    newline — the crash case) is ignored, so a crash during append loses
    at most the in-flight record. {!compact} rewrites the log as a
    minimal snapshot of the current graph.

    Names must not contain tabs or newlines
    ({!Invalid_argument} otherwise). *)

type t

val openfile : string -> t
(** Open (replaying the log) or create the store at the path.
    @raise Failure on a corrupt record that is not a torn tail.
    @raise Sys_error on I/O errors. *)

val graph : t -> Digraph.t
(** The live graph. Treat as read-only: mutations must go through the
    store or they will not be persisted. *)

val path : t -> string

val add_node : t -> string -> Digraph.node
(** Idempotent, like {!Digraph.add_node}; only logs genuinely new
    nodes. *)

val link : t -> string -> string -> string -> unit
(** [link t src label dst] — like {!Digraph.link}; only logs genuinely
    new nodes/edges. *)

val sync : t -> unit
(** Flush buffered appends to the OS. *)

val compact : t -> unit
(** Atomically replace the log with a snapshot of the current graph
    (write to [path ^ ".tmp"], then rename). *)

val close : t -> unit
(** Flush and close; the store must not be used afterwards. *)
