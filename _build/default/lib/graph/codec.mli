(** Text serialization of graph databases.

    The format is a plain edge list, one edge per line:
    {v
    # comment
    N1 tram N4
    N4 cinema C1
    node N9            # declares an isolated node
    v}
    Whitespace-separated; [#] starts a comment; blank lines are ignored;
    a [node NAME] line declares a node with no edges. Names may contain any
    non-whitespace characters. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : string -> Digraph.t
(** @raise Parse_error on malformed input. *)

val to_string : Digraph.t -> string

val of_edges : (string * string * string) list -> Digraph.t
(** Builds a graph from [(src, label, dst)] triples. *)

val load : string -> Digraph.t
(** Reads the file at the path. @raise Sys_error, Parse_error. *)

val save : string -> Digraph.t -> unit
