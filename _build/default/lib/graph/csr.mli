(** Frozen compressed-sparse-row graph snapshots.

    {!Digraph} optimizes for incremental construction (hash-interned
    names, per-node edge lists). Query evaluation, which dominates the
    learner's inner loop, only needs fast iteration over out/in edges —
    this module freezes a graph into int-array CSR form (offsets +
    packed [label, endpoint] pairs), roughly halving evaluation time and
    allocation (see the [--exp csr] benchmark).

    A snapshot shares the original graph's node/label ids; it reflects the
    graph at freeze time and is immutable. *)

type t

val freeze : Digraph.t -> t

val n_nodes : t -> int
val n_edges : t -> int
val n_labels : t -> int

val iter_out : t -> Digraph.node -> (Digraph.label -> Digraph.node -> unit) -> unit
(** Iterate [(label, destination)] over the node's out-edges. *)

val iter_in : t -> Digraph.node -> (Digraph.label -> Digraph.node -> unit) -> unit
(** Iterate [(label, source)] over the node's in-edges. *)

val out_degree : t -> Digraph.node -> int
val in_degree : t -> Digraph.node -> int

val fold_out : t -> Digraph.node -> init:'a -> f:('a -> Digraph.label -> Digraph.node -> 'a) -> 'a
