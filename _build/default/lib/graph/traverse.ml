type direction = Out | In | Both

let step g dir v =
  match dir with
  | Out -> Digraph.out_edges g v
  | In -> Digraph.in_edges g v
  | Both -> Digraph.out_edges g v @ Digraph.in_edges g v

let distances g ?(direction = Out) src =
  let dist = Array.make (Digraph.n_nodes g) max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = dist.(v) in
    let visit (_, u) =
      if dist.(u) = max_int then begin
        dist.(u) <- d + 1;
        Queue.add u q
      end
    in
    List.iter visit (step g direction v)
  done;
  dist

let reachable g ?(direction = Out) src =
  Array.map (fun d -> d < max_int) (distances g ~direction src)

let reachable_within g ?(direction = Out) src ~radius =
  let dist = Array.make (Digraph.n_nodes g) max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  let order = ref [ src ] in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = dist.(v) in
    if d < radius then
      let visit (_, u) =
        if dist.(u) = max_int then begin
          dist.(u) <- d + 1;
          order := u :: !order;
          Queue.add u q
        end
      in
      List.iter visit (step g direction v)
  done;
  List.rev !order

let eccentricity g ?(direction = Out) src =
  Array.fold_left (fun acc d -> if d < max_int && d > acc then d else acc) 0
    (distances g ~direction src)

module Iset = Set.Make (Int)

let spell_word g v word =
  let stepper frontier lbl =
    Iset.fold
      (fun u acc -> List.fold_left (fun acc d -> Iset.add d acc) acc (Digraph.succ_by_label g u lbl))
      frontier Iset.empty
  in
  Iset.elements (List.fold_left stepper (Iset.singleton v) word)

let has_word g v word = spell_word g v word <> []

let word_witness_walk g v word =
  (* Depth-first over the (position-in-word, node) product; the word is
     finite so the search space is |word| * branching, no cycle risk. *)
  let rec go u = function
    | [] -> Some [ u ]
    | lbl :: rest ->
        let try_succ acc d =
          match acc with
          | Some _ -> acc
          | None -> (
              match go d rest with Some walk -> Some (u :: walk) | None -> None)
        in
        List.fold_left try_succ None (Digraph.succ_by_label g u lbl)
  in
  go v word
