type t = { n : int; words : int; bits : Bytes.t }
(* row-major: row v holds the closure of v as [words] 8-byte... we use
   byte-granular bitsets for simplicity: row size = (n+7)/8 bytes. *)

let row_bytes n = (n + 7) / 8

let get_bit t v u =
  let idx = (v * t.words) + (u lsr 3) in
  Char.code (Bytes.get t.bits idx) land (1 lsl (u land 7)) <> 0

let set_bit t v u =
  let idx = (v * t.words) + (u lsr 3) in
  Bytes.set t.bits idx (Char.chr (Char.code (Bytes.get t.bits idx) lor (1 lsl (u land 7))))

(* OR row [src] into row [dst]; returns whether anything changed. *)
let or_rows t ~dst ~src =
  let changed = ref false in
  let base_d = dst * t.words and base_s = src * t.words in
  for i = 0 to t.words - 1 do
    let d = Char.code (Bytes.get t.bits (base_d + i)) in
    let s = Char.code (Bytes.get t.bits (base_s + i)) in
    let m = d lor s in
    if m <> d then begin
      Bytes.set t.bits (base_d + i) (Char.chr m);
      changed := true
    end
  done;
  !changed

let build_with g ~edge_kept =
  let n = Digraph.n_nodes g in
  let words = row_bytes n in
  let t = { n; words; bits = Bytes.make (max 1 (n * words)) '\000' } in
  for v = 0 to n - 1 do
    set_bit t v v
  done;
  (* SCC condensation: process components in reverse topological order
     (Tarjan emits them in that order already: a component is finished
     only after everything it reaches), OR-ing successor rows in. Within
     a component all members share one closure. *)
  let scc = Scc.compute g in
  let comps = Array.make scc.Scc.count [] in
  Digraph.iter_nodes
    (fun v -> comps.(scc.Scc.component.(v)) <- v :: comps.(scc.Scc.component.(v)))
    g;
  (* union all members of a component into its first member's row, then
     propagate successors, then copy back to every member *)
  for c = 0 to scc.Scc.count - 1 do
    match comps.(c) with
    | [] -> ()
    | rep :: rest ->
        List.iter (fun v -> ignore (or_rows t ~dst:rep ~src:v)) rest;
        (* successors of any member *)
        List.iter
          (fun v ->
            List.iter
              (fun (lbl, u) -> if edge_kept lbl then ignore (or_rows t ~dst:rep ~src:u))
              (Digraph.out_edges g v))
          (rep :: rest);
        List.iter (fun v -> ignore (or_rows t ~dst:v ~src:rep)) rest
  done;
  t

let build g = build_with g ~edge_kept:(fun _ -> true)

let build_filtered g ~keep =
  build_with g ~edge_kept:(fun lbl -> keep (Digraph.label_name g lbl))

let reachable t v u =
  if v < 0 || v >= t.n || u < 0 || u >= t.n then
    invalid_arg "Reach.reachable: node out of range"
  else get_bit t v u

let reachable_any t v = List.exists (fun u -> reachable t v u)

let count_from t v =
  let c = ref 0 in
  for u = 0 to t.n - 1 do
    if get_bit t v u then incr c
  done;
  !c

let n_nodes t = t.n
