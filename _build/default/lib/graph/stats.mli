(** Descriptive statistics of a graph database, for dataset tables and
    sanity checks on synthetic workloads. *)

type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  n_sources : int;             (** nodes with in-degree 0 *)
  n_sinks : int;               (** nodes with out-degree 0 *)
  n_sccs : int;
  largest_scc : int;
  label_histogram : (string * int) list;  (** label -> edge count, most frequent first *)
  eccentricity_sample : int;   (** max BFS eccentricity over a node sample *)
}

val compute : ?sample:int -> Digraph.t -> t
(** [sample] bounds how many nodes the eccentricity estimate probes
    (default 32). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
