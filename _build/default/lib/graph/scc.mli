(** Strongly connected components (Tarjan's algorithm).

    Used by the statistics module and by generators to check/ensure
    connectivity properties of synthetic graphs. *)

type result = {
  count : int;               (** number of components *)
  component : int array;     (** node -> component id, ids in reverse topological order *)
}

val compute : Digraph.t -> result

val components : Digraph.t -> Digraph.node list array
(** Members of each component, indexed by component id. *)

val is_trivial : result -> bool
(** Every component is a single node (the graph is a DAG). *)

val largest : result -> int
(** Size of the largest component. *)
