type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
   used as a stream; more than enough for workload synthesis. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Modulo bias is negligible for the small bounds used here. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_arr: empty array";
  a.(int t (Array.length a))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = { state = next t }
