(** Precomputed reachability index (bitset transitive closure).

    GPS's simulated users and several strategies repeatedly ask "can this
    node reach one of those?"; at a few thousand nodes the full closure
    fits comfortably in memory ([n²/64] words) and answers in O(1). Built
    once per graph in O(V·E/64) by propagating bitsets in reverse
    topological order of SCCs. *)

type t

val build : Digraph.t -> t
(** Label-blind closure over all edges. *)

val build_filtered : Digraph.t -> keep:(string -> bool) -> t
(** Closure over the edges whose label satisfies [keep] — e.g. transport
    labels only. *)

val reachable : t -> Digraph.node -> Digraph.node -> bool
(** Includes reflexivity: every node reaches itself. *)

val reachable_any : t -> Digraph.node -> Digraph.node list -> bool

val count_from : t -> Digraph.node -> int
(** Number of reachable nodes (including itself). *)

val n_nodes : t -> int
