type node = int
type label = int
type edge = { src : node; lbl : label; dst : node }

type t = {
  node_tab : Symtab.t;
  label_tab : Symtab.t;
  out_adj : (label * node) list Vec.t;  (* per node, reverse insertion order *)
  in_adj : (label * node) list Vec.t;
  edge_set : (node * label * node, unit) Hashtbl.t;
  mutable edge_count : int;
}

let create () =
  {
    node_tab = Symtab.create ();
    label_tab = Symtab.create ();
    out_adj = Vec.create ();
    in_adj = Vec.create ();
    edge_set = Hashtbl.create 256;
    edge_count = 0;
  }

let n_nodes g = Symtab.size g.node_tab
let n_edges g = g.edge_count
let n_labels g = Symtab.size g.label_tab

let add_node g name =
  match Symtab.find g.node_tab name with
  | Some v -> v
  | None ->
      let v = Symtab.intern g.node_tab name in
      let v' = Vec.push g.out_adj [] in
      let v'' = Vec.push g.in_adj [] in
      assert (v = v' && v = v'');
      v

let mem_node g v = v >= 0 && v < n_nodes g

let check_node g v =
  if not (mem_node g v) then
    invalid_arg (Printf.sprintf "Digraph: node %d not in graph" v)

let mem_edge g ~src ~lbl ~dst = Hashtbl.mem g.edge_set (src, lbl, dst)

let add_edge g ~src ~label ~dst =
  check_node g src;
  check_node g dst;
  let lbl = Symtab.intern g.label_tab label in
  if not (mem_edge g ~src ~lbl ~dst) then begin
    Hashtbl.add g.edge_set (src, lbl, dst) ();
    Vec.set g.out_adj src ((lbl, dst) :: Vec.get g.out_adj src);
    Vec.set g.in_adj dst ((lbl, src) :: Vec.get g.in_adj dst);
    g.edge_count <- g.edge_count + 1
  end

let link g src label dst =
  let s = add_node g src and d = add_node g dst in
  add_edge g ~src:s ~label ~dst:d

let copy g =
  {
    node_tab = Symtab.copy g.node_tab;
    label_tab = Symtab.copy g.label_tab;
    out_adj = Vec.copy g.out_adj;
    in_adj = Vec.copy g.in_adj;
    edge_set = Hashtbl.copy g.edge_set;
    edge_count = g.edge_count;
  }

let node_of_name g name = Symtab.find g.node_tab name
let node_name g v = Symtab.name g.node_tab v
let label_of_name g name = Symtab.find g.label_tab name
let label_name g l = Symtab.name g.label_tab l
let intern_label g name = Symtab.intern g.label_tab name

(* Adjacency lists are stored newest-first; expose them in insertion order. *)
let out_edges g v =
  check_node g v;
  List.rev (Vec.get g.out_adj v)

let in_edges g v =
  check_node g v;
  List.rev (Vec.get g.in_adj v)

let out_degree g v =
  check_node g v;
  List.length (Vec.get g.out_adj v)

let in_degree g v =
  check_node g v;
  List.length (Vec.get g.in_adj v)

let succ_by_label g v l =
  List.filter_map (fun (l', d) -> if l' = l then Some d else None) (out_edges g v)

let pred_by_label g v l =
  List.filter_map (fun (l', s) -> if l' = l then Some s else None) (in_edges g v)

let nodes g = List.init (n_nodes g) Fun.id
let labels g = Symtab.names g.label_tab

let iter_nodes f g =
  for v = 0 to n_nodes g - 1 do
    f v
  done

let iter_edges f g =
  iter_nodes (fun src -> List.iter (fun (lbl, dst) -> f { src; lbl; dst }) (out_edges g src)) g

let fold_nodes f acc g =
  let acc = ref acc in
  iter_nodes (fun v -> acc := f !acc v) g;
  !acc

let fold_edges f acc g =
  let acc = ref acc in
  iter_edges (fun e -> acc := f !acc e) g;
  !acc

let edges g = List.rev (fold_edges (fun acc e -> e :: acc) [] g)

let pp_edge g ppf { src; lbl; dst } =
  Format.fprintf ppf "%s -%s-> %s" (node_name g src) (label_name g lbl) (node_name g dst)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges, %d labels" (n_nodes g) (n_edges g)
    (n_labels g);
  iter_edges (fun e -> Format.fprintf ppf "@,%a" (pp_edge g) e) g;
  Format.fprintf ppf "@]"
