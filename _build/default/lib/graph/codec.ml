exception Parse_error of int * string

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let of_string text =
  let g = Digraph.create () in
  let handle lineno line =
    match tokens (strip_comment line) with
    | [] -> ()
    | [ "node"; name ] -> ignore (Digraph.add_node g name)
    | [ src; label; dst ] -> Digraph.link g src label dst
    | _ ->
        raise
          (Parse_error (lineno, Printf.sprintf "expected 'src label dst' or 'node name': %S" line))
  in
  List.iteri (fun i line -> handle (i + 1) line) (String.split_on_char '\n' text);
  g

let to_string g =
  let buf = Buffer.create 1024 in
  Digraph.iter_nodes
    (fun v ->
      if Digraph.out_degree g v = 0 && Digraph.in_degree g v = 0 then
        Buffer.add_string buf (Printf.sprintf "node %s\n" (Digraph.node_name g v)))
    g;
  Digraph.iter_edges
    (fun { Digraph.src; lbl; dst } ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s\n" (Digraph.node_name g src) (Digraph.label_name g lbl)
           (Digraph.node_name g dst)))
    g;
  Buffer.contents buf

let of_edges triples =
  let g = Digraph.create () in
  List.iter (fun (src, label, dst) -> Digraph.link g src label dst) triples;
  g

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc
