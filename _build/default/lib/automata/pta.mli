(** Prefix tree acceptors.

    The PTA of a finite word set is the tree-shaped DFA accepting exactly
    that set. It is the starting hypothesis of the paper's learning step:
    the learner builds the PTA of the validated witness paths, then
    generalizes it by state merging.

    States are numbered in breadth-first order with per-node children
    visited in symbol order, so state 0 is the root (ε) and lower ids are
    shorter prefixes — exactly the merge order RPNI-style learners need. *)

type t = {
  nfa : Nfa.t;                    (** the tree automaton (deterministic) *)
  prefix : string list array;     (** state -> the prefix it represents *)
}

val build : string list list -> t
(** @raise Invalid_argument on an empty word list (the PTA of ∅ has no
    states and nothing can be learned from it). Duplicate words are
    fine. *)

val n_states : t -> int
val words : t -> string list list
(** The accepted words, recovered from the tree (sorted). *)
