(** Nondeterministic finite automata over label alphabets (ε-free).

    States are dense ints [0 .. n_states-1]; symbols are label names.
    ε-transitions never appear: the compiler from regular expressions uses
    the Glushkov position construction, and every other producer (prefix
    tree acceptors, quotients) is ε-free by nature. *)

type state = int

type t

val make :
  n_states:int ->
  starts:state list ->
  finals:state list ->
  trans:(state * string * state) list ->
  t
(** @raise Invalid_argument if any state is out of range. Duplicate
    transitions are collapsed. *)

(** {1 Accessors} *)

val n_states : t -> int
val n_trans : t -> int
val starts : t -> state list
val finals : t -> state list
val is_start : t -> state -> bool
val is_final : t -> state -> bool

val delta : t -> state -> (string * state) list
(** Outgoing transitions of a state, sorted by symbol then target. *)

val delta_sym : t -> state -> string -> state list
val transitions : t -> (state * string * state) list
val symbols : t -> string list
(** Symbols occurring on some transition, sorted. *)

(** {1 Language operations} *)

val accepts : t -> string list -> bool

val step : t -> state list -> string -> state list
(** Subset image of a state set under one symbol. *)

val reverse : t -> t
(** Language reversal: flip transitions, swap starts and finals. *)

val union : t -> t -> t
(** Disjoint union: accepts [L(a) ∪ L(b)]; states of [b] are shifted. *)

val trim : t -> t
(** Restrict to states both reachable from a start and co-reachable to a
    final, renumbering densely (preserving relative order). The empty
    language yields an automaton with 0 states. *)

val is_empty_lang : t -> bool
(** Whether the accepted language is ∅. *)

val quotient : t -> partition:int array -> t
(** Merge states according to [partition] (state -> block id; block ids
    must be dense [0 .. max]). Starts/finals/transitions are unioned per
    block. The result accepts a superset of the original language. *)

val shortest_accepted : t -> string list option
(** A shortest accepted word, if the language is non-empty. *)

val enumerate : t -> max_len:int -> string list list
(** All accepted words of length at most [max_len], shortest first, then
    lexicographic; includes the empty word when accepted. *)

val pp : Format.formatter -> t -> unit
