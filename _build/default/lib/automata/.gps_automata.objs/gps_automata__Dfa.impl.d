lib/automata/dfa.ml: Array Format Fun Hashtbl Int List Nfa Queue Set String
