lib/automata/pta.ml: Array Fun List Map Nfa Queue String
