lib/automata/elim.ml: Array Fun Gps_regex List Nfa Option
