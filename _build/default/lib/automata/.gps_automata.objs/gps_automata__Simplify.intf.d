lib/automata/simplify.mli: Gps_regex
