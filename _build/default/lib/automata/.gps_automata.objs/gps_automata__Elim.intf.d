lib/automata/elim.mli: Gps_regex Nfa
