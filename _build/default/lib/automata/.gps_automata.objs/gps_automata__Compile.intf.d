lib/automata/compile.mli: Dfa Gps_regex Nfa
