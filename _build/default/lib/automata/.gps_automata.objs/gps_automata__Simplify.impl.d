lib/automata/simplify.ml: Compile Fun Gps_regex List
