lib/automata/gps_automata.ml: Compile Dfa Elim Nfa Pta Simplify
