lib/automata/pta.mli: Nfa
