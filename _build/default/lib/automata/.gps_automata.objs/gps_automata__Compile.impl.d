lib/automata/compile.ml: Array Dfa Gps_regex List Map Nfa String
