lib/automata/nfa.ml: Array Format Hashtbl Int List Printf Queue Set String
