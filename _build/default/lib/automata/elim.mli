(** Conversion of automata back to regular expressions (Brzozowski–
    McCluskey state elimination).

    GPS shows the user the learned query as an expression, not an
    automaton, so the learner's output automaton is converted here. The
    result is equivalent to the input by construction; the smart
    constructors of {!Gps_regex.Regex} keep it reasonably small, and
    elimination order (fewest incident transitions first) helps further. *)

val to_regex : Nfa.t -> Gps_regex.Regex.t
(** An expression denoting exactly the NFA's language. Returns
    [Regex.empty] for the empty language. *)
