type t = { nfa : Nfa.t; prefix : string list array }

module Smap = Map.Make (String)

type tree = { mutable children : tree Smap.t; mutable accept : bool; mutable id : int }

let build wordlist =
  if wordlist = [] then invalid_arg "Pta.build: empty word list";
  let fresh () = { children = Smap.empty; accept = false; id = -1 } in
  let root = fresh () in
  let insert word =
    let rec go node = function
      | [] -> node.accept <- true
      | sym :: rest ->
          let child =
            match Smap.find_opt sym node.children with
            | Some c -> c
            | None ->
                let c = fresh () in
                node.children <- Smap.add sym c node.children;
                c
          in
          go child rest
    in
    go root word
  in
  List.iter insert wordlist;
  (* Breadth-first numbering (children in symbol order via Smap.iter). *)
  let q = Queue.create () in
  Queue.add (root, []) q;
  let count = ref 0 in
  let finals = ref [] in
  let prefixes = ref [] in
  let order = ref [] in
  while not (Queue.is_empty q) do
    let node, rev_prefix = Queue.pop q in
    node.id <- !count;
    incr count;
    order := node :: !order;
    prefixes := List.rev rev_prefix :: !prefixes;
    if node.accept then finals := node.id :: !finals;
    Smap.iter (fun sym child -> Queue.add (child, sym :: rev_prefix) q) node.children
  done;
  let trans = ref [] in
  List.iter
    (fun node -> Smap.iter (fun sym child -> trans := (node.id, sym, child.id) :: !trans) node.children)
    !order;
  let nfa = Nfa.make ~n_states:!count ~starts:[ 0 ] ~finals:!finals ~trans:!trans in
  { nfa; prefix = Array.of_list (List.rev !prefixes) }

let n_states t = Nfa.n_states t.nfa

let words t =
  List.sort compare
    (List.filter_map
       (fun s -> if Nfa.is_final t.nfa s then Some t.prefix.(s) else None)
       (List.init (n_states t) Fun.id))
