module Regex = Gps_regex.Regex

(* Linearized regexes: every symbol occurrence gets a distinct position.
   first/last/follow are computed in one bottom-up pass. *)
type info = {
  nullable : bool;
  first : int list;            (* positions that can start a word *)
  last : int list;             (* positions that can end a word *)
  follow : (int * int) list;   (* position adjacencies *)
}

let to_nfa r =
  let positions = ref [] in   (* position -> symbol, reversed *)
  let next_pos = ref 0 in
  let fresh sym =
    incr next_pos;
    positions := sym :: !positions;
    !next_pos
  in
  let rec go (r : Regex.t) : info =
    match r with
    | Empty -> { nullable = false; first = []; last = []; follow = [] }
    | Epsilon -> { nullable = true; first = []; last = []; follow = [] }
    | Sym s ->
        let p = fresh s in
        { nullable = false; first = [ p ]; last = [ p ]; follow = [] }
    | Alt rs ->
        let infos = List.map go rs in
        {
          nullable = List.exists (fun i -> i.nullable) infos;
          first = List.concat_map (fun i -> i.first) infos;
          last = List.concat_map (fun i -> i.last) infos;
          follow = List.concat_map (fun i -> i.follow) infos;
        }
    | Seq rs ->
        let infos = List.map go rs in
        (* Nullable factors let firsts/lasts flow through them, and make
           follow links jump over them: fold left keeping the set of "open
           lasts" still awaiting a first to their right. *)
        let rec firsts = function
          | [] -> []
          | i :: rest -> i.first @ if i.nullable then firsts rest else []
        in
        let rec lasts = function
          | [] -> []
          | i :: rest -> i.last @ if i.nullable then lasts rest else []
        in
        let follow, _open_lasts =
          List.fold_left
            (fun (acc, open_lasts) i ->
              let links =
                List.concat_map (fun p -> List.map (fun q -> (p, q)) i.first) open_lasts
              in
              (links @ acc, i.last @ if i.nullable then open_lasts else []))
            ([], []) infos
        in
        {
          nullable = List.for_all (fun i -> i.nullable) infos;
          first = firsts infos;
          last = lasts (List.rev infos);
          follow = follow @ List.concat_map (fun i -> i.follow) infos;
        }
    | Star body ->
        let i = go body in
        {
          nullable = true;
          first = i.first;
          last = i.last;
          follow = i.follow @ List.concat_map (fun p -> List.map (fun q -> (p, q)) i.first) i.last;
        }
  in
  let info = go r in
  let syms = Array.of_list (List.rev !positions) in
  let sym_of p = syms.(p - 1) in
  let n = !next_pos + 1 in
  let trans =
    List.map (fun p -> (0, sym_of p, p)) info.first
    @ List.map (fun (p, q) -> (p, sym_of q, q)) info.follow
  in
  let finals = (if info.nullable then [ 0 ] else []) @ info.last in
  Nfa.make ~n_states:n ~starts:[ 0 ] ~finals ~trans

let to_nfa_antimirov r =
  let module Antimirov = Gps_regex.Antimirov in
  let module Rmap = Map.Make (Regex) in
  let terms = Antimirov.terms r in
  let ids = List.fold_left (fun (m, i) t -> (Rmap.add t i m, i + 1)) (Rmap.empty, 0) terms in
  let ids = fst ids in
  let sigma = Regex.alphabet r in
  let trans =
    List.concat_map
      (fun t ->
        let src = Rmap.find t ids in
        List.concat_map
          (fun a -> List.map (fun d -> (src, a, Rmap.find d ids)) (Antimirov.partial a t))
          sigma)
      terms
  in
  let finals =
    List.filter_map (fun t -> if Regex.nullable t then Some (Rmap.find t ids) else None) terms
  in
  Nfa.make ~n_states:(List.length terms) ~starts:[ Rmap.find r ids ] ~finals ~trans

let to_dfa ?alphabet r = Dfa.minimize (Dfa.determinize ?alphabet (to_nfa r))

let common_alphabet a b =
  List.sort_uniq String.compare (Regex.alphabet a @ Regex.alphabet b)

let equal_lang a b =
  let sigma = common_alphabet a b in
  Dfa.equal_lang (to_dfa ~alphabet:sigma a) (to_dfa ~alphabet:sigma b)

let included a b =
  let sigma = common_alphabet a b in
  Dfa.included (to_dfa ~alphabet:sigma a) (to_dfa ~alphabet:sigma b)

let distinguishing_word a b =
  let sigma = common_alphabet a b in
  Dfa.distinguishing_word (to_dfa ~alphabet:sigma a) (to_dfa ~alphabet:sigma b)
