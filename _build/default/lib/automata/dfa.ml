type t = {
  alphabet : string array;
  n_states : int;
  start : int;
  finals : bool array;
  delta : int array array;
}

module Sset = Set.Make (String)
module Iset = Set.Make (Int)

let sym_index t sym =
  (* The alphabet is sorted: binary search. *)
  let lo = ref 0 and hi = ref (Array.length t.alphabet) in
  let found = ref (-1) in
  while !lo < !hi && !found = -1 do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare sym t.alphabet.(mid) in
    if c = 0 then found := mid else if c < 0 then hi := mid else lo := mid + 1
  done;
  !found

let determinize ?alphabet nfa =
  let sigma =
    match alphabet with
    | Some syms -> Sset.elements (Sset.of_list (syms @ Nfa.symbols nfa))
    | None -> Nfa.symbols nfa
  in
  let sigma = Array.of_list sigma in
  let n_sym = Array.length sigma in
  (* Subset states are canonical sorted int lists. *)
  let ids = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let intern subset =
    match Hashtbl.find_opt ids subset with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add ids subset i;
        states := subset :: !states;
        i
  in
  let start_subset = List.sort_uniq compare (Nfa.starts nfa) in
  let start = intern start_subset in
  let delta_rows = ref [] in
  let finals_rev = ref [] in
  let q = Queue.create () in
  Queue.add start_subset q;
  let processed = Hashtbl.create 64 in
  while not (Queue.is_empty q) do
    let subset = Queue.pop q in
    if not (Hashtbl.mem processed subset) then begin
      Hashtbl.add processed subset ();
      let row = Array.make n_sym (-1) in
      Array.iteri
        (fun k sym ->
          let image = Nfa.step nfa subset sym in
          let id = intern image in
          if not (Hashtbl.mem processed image) then Queue.add image q;
          row.(k) <- id)
        sigma;
      delta_rows := (Hashtbl.find ids subset, row) :: !delta_rows;
      finals_rev :=
        (Hashtbl.find ids subset, List.exists (fun s -> Nfa.is_final nfa s) subset) :: !finals_rev
    end
  done;
  let n = !count in
  let delta = Array.make n [||] in
  List.iter (fun (i, row) -> delta.(i) <- row) !delta_rows;
  let finals = Array.make n false in
  List.iter (fun (i, f) -> finals.(i) <- f) !finals_rev;
  { alphabet = sigma; n_states = n; start; finals; delta }

let accepts t word =
  let rec go s = function
    | [] -> t.finals.(s)
    | sym :: rest -> (
        match sym_index t sym with -1 -> false | k -> go t.delta.(s).(k) rest)
  in
  go t.start word

let complement t = { t with finals = Array.map not t.finals }

(* Hopcroft's algorithm. Standard worklist of (block, symbol) splitters. *)
let minimize t =
  let n = t.n_states and n_sym = Array.length t.alphabet in
  if n = 0 then t
  else begin
    (* Pre-compute inverse transitions: preimage.(sym).(state) = sources. *)
    let preimage = Array.init n_sym (fun _ -> Array.make n []) in
    for s = 0 to n - 1 do
      for k = 0 to n_sym - 1 do
        let d = t.delta.(s).(k) in
        preimage.(k).(d) <- s :: preimage.(k).(d)
      done
    done;
    let block_of = Array.make n 0 in
    let blocks = ref [] in
    let n_blocks = ref 0 in
    let add_block members =
      let id = !n_blocks in
      incr n_blocks;
      List.iter (fun s -> block_of.(s) <- id) members;
      blocks := (id, ref members) :: !blocks;
      id
    in
    let members_of id = !(List.assoc id !blocks) in
    let set_members id m = List.assoc id !blocks := m in
    let finals = List.filter (fun s -> t.finals.(s)) (List.init n Fun.id) in
    let nonfinals = List.filter (fun s -> not t.finals.(s)) (List.init n Fun.id) in
    let work = Queue.create () in
    (match (finals, nonfinals) with
    | [], _ | _, [] -> ignore (add_block (List.init n Fun.id))
    | _ ->
        let fid = add_block finals in
        let nid = add_block nonfinals in
        let smaller = if List.length finals <= List.length nonfinals then fid else nid in
        for k = 0 to n_sym - 1 do
          Queue.add (smaller, k) work
        done);
    while not (Queue.is_empty work) do
      let splitter_id, k = Queue.pop work in
      let splitter = Iset.of_list (members_of splitter_id) in
      (* X = states leading into the splitter on symbol k. *)
      let x =
        Iset.fold (fun d acc -> List.fold_left (fun acc s -> Iset.add s acc) acc preimage.(k).(d))
          splitter Iset.empty
      in
      if not (Iset.is_empty x) then begin
        (* Group the affected blocks. *)
        let touched = Hashtbl.create 8 in
        Iset.iter
          (fun s ->
            let b = block_of.(s) in
            Hashtbl.replace touched b ())
          x;
        Hashtbl.iter
          (fun b () ->
            let members = members_of b in
            let inside, outside = List.partition (fun s -> Iset.mem s x) members in
            if inside <> [] && outside <> [] then begin
              (* Split b: keep the larger part under id b, make the smaller a
                 fresh block, enqueue per Hopcroft's "smaller half" rule. *)
              let small, large =
                if List.length inside <= List.length outside then (inside, outside)
                else (outside, inside)
              in
              set_members b large;
              let fresh = add_block small in
              for k' = 0 to n_sym - 1 do
                Queue.add (fresh, k') work
              done
            end)
          touched
      end
    done;
    (* Build the quotient DFA; renumber blocks by first-member order for
       determinism. *)
    let order = Array.make !n_blocks (-1) in
    let next = ref 0 in
    for s = 0 to n - 1 do
      let b = block_of.(s) in
      if order.(b) = -1 then begin
        order.(b) <- !next;
        incr next
      end
    done;
    let m = !next in
    let delta = Array.make m [||] in
    let finals' = Array.make m false in
    for s = 0 to n - 1 do
      let b = order.(block_of.(s)) in
      if delta.(b) = [||] then begin
        delta.(b) <- Array.map (fun d -> order.(block_of.(d))) t.delta.(s);
        finals'.(b) <- t.finals.(s)
      end
    done;
    {
      alphabet = t.alphabet;
      n_states = m;
      start = order.(block_of.(t.start));
      finals = finals';
      delta;
    }
  end

let to_nfa t =
  let trans = ref [] in
  for s = 0 to t.n_states - 1 do
    Array.iteri (fun k d -> trans := (s, t.alphabet.(k), d) :: !trans) t.delta.(s)
  done;
  let finals = List.filter (fun s -> t.finals.(s)) (List.init t.n_states Fun.id) in
  Nfa.trim (Nfa.make ~n_states:t.n_states ~starts:[ t.start ] ~finals ~trans:!trans)

(* Brzozowski's double-reversal minimization: determinizing the reversal
   of an automaton yields a minimal DFA for the reversed language, so
   doing it twice minimizes. Kept alongside Hopcroft both as an
   independent oracle for the test suite and for the minimization
   ablation benchmark. [to_nfa] trims dead states, which preserves the
   language. *)
let minimize_brzozowski nfa =
  let half = determinize (Nfa.reverse nfa) in
  determinize (Nfa.reverse (to_nfa half))

let product ~meet a b =
  let sigma = Sset.elements (Sset.union (Sset.of_list (Array.to_list a.alphabet))
                               (Sset.of_list (Array.to_list b.alphabet))) in
  let sigma = Array.of_list sigma in
  let n_sym = Array.length sigma in
  (* A side without the symbol goes to a virtual sink: encode each side's
     state as Some s | None (sink). *)
  let ids = Hashtbl.create 64 in
  let rows = ref [] in
  let finals = ref [] in
  let count = ref 0 in
  let rec intern (pa, pb) =
    match Hashtbl.find_opt ids (pa, pb) with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add ids (pa, pb) i;
        let acc_a = match pa with Some s -> a.finals.(s) | None -> false in
        let acc_b = match pb with Some s -> b.finals.(s) | None -> false in
        finals := (i, meet acc_a acc_b) :: !finals;
        let row = Array.make n_sym (-1) in
        Array.iteri
          (fun k sym ->
            let next side t p =
              ignore side;
              match p with
              | None -> None
              | Some s -> ( match sym_index t sym with -1 -> None | j -> Some t.delta.(s).(j))
            in
            row.(k) <- intern (next `A a pa, next `B b pb))
          sigma;
        rows := (i, row) :: !rows;
        i
  in
  let start = intern (Some a.start, Some b.start) in
  let n = !count in
  let delta = Array.make n [||] in
  List.iter (fun (i, row) -> delta.(i) <- row) !rows;
  let finals_arr = Array.make n false in
  List.iter (fun (i, f) -> finals_arr.(i) <- f) !finals;
  { alphabet = sigma; n_states = n; start; finals = finals_arr; delta }

let inter = product ~meet:( && )
let union = product ~meet:( || )

let reachable_finals_exist t =
  let seen = Array.make t.n_states false in
  let rec go s =
    if seen.(s) then false
    else begin
      seen.(s) <- true;
      t.finals.(s) || Array.exists go t.delta.(s)
    end
  in
  t.n_states > 0 && go t.start

let is_empty_lang t = not (reachable_finals_exist t)

(* Complete a DFA over a wider alphabet: unknown symbols lead every state
   (including the fresh one) to a new non-accepting sink. *)
let extend_alphabet t sigma =
  let union =
    Sset.elements (Sset.union (Sset.of_list (Array.to_list t.alphabet)) (Sset.of_list sigma))
  in
  if List.length union = Array.length t.alphabet then t
  else begin
    let alphabet = Array.of_list union in
    let n_sym = Array.length alphabet in
    let sink = t.n_states in
    let row s =
      Array.map
        (fun sym -> match sym_index t sym with -1 -> sink | k -> t.delta.(s).(k))
        alphabet
    in
    {
      alphabet;
      n_states = t.n_states + 1;
      start = t.start;
      finals = Array.append t.finals [| false |];
      delta = Array.init (t.n_states + 1) (fun s -> if s = sink then Array.make n_sym sink else row s);
    }
  end

(* Complementation is alphabet-relative, so inclusion and equality must
   first complete both sides over the union alphabet: a word on a symbol
   known only to one side is a perfectly good counterexample. *)
let on_common_alphabet f a b =
  let sigma_a = Array.to_list a.alphabet and sigma_b = Array.to_list b.alphabet in
  f (extend_alphabet a sigma_b) (extend_alphabet b sigma_a)

let included = on_common_alphabet (fun a b -> is_empty_lang (inter a (complement b)))

let equal_lang a b = included a b && included b a

let distinguishing_word a b =
  let a, b = on_common_alphabet (fun a b -> (a, b)) a b in
  let probe x y =
    (* BFS for a shortest accepted word of x ∩ ¬y. *)
    let p = inter x (complement y) in
    if is_empty_lang p then None
    else begin
      let seen = Array.make p.n_states false in
      let q = Queue.create () in
      seen.(p.start) <- true;
      Queue.add (p.start, []) q;
      let rec go () =
        if Queue.is_empty q then None
        else
          let s, rev_word = Queue.pop q in
          if p.finals.(s) then Some (List.rev rev_word)
          else begin
            Array.iteri
              (fun k d ->
                if not seen.(d) then begin
                  seen.(d) <- true;
                  Queue.add (d, p.alphabet.(k) :: rev_word) q
                end)
              p.delta.(s);
            go ()
          end
      in
      go ()
    end
  in
  match probe a b with Some w -> Some w | None -> probe b a

let n_live_states t =
  (* Backward reachability from finals. *)
  let pre = Array.make t.n_states [] in
  for s = 0 to t.n_states - 1 do
    Array.iter (fun d -> pre.(d) <- s :: pre.(d)) t.delta.(s)
  done;
  let live = Array.make t.n_states false in
  let rec go s =
    if not live.(s) then begin
      live.(s) <- true;
      List.iter go pre.(s)
    end
  in
  Array.iteri (fun s f -> if f then go s) t.finals;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 live

let pp ppf t =
  Format.fprintf ppf "@[<v>dfa: %d states over {%s}, start %d" t.n_states
    (String.concat "," (Array.to_list t.alphabet))
    t.start;
  for s = 0 to t.n_states - 1 do
    Format.fprintf ppf "@,%d%s:" s (if t.finals.(s) then " (final)" else "");
    Array.iteri (fun k d -> Format.fprintf ppf " %s->%d" t.alphabet.(k) d) t.delta.(s)
  done;
  Format.fprintf ppf "@]"
