module Regex = Gps_regex.Regex

(* Generalized NFA: a transition matrix of regexes between states
   0..n+1 where n is the source automaton size; state n is the unique
   start, n+1 the unique final. *)
let to_regex nfa =
  let nfa = Nfa.trim nfa in
  let n = Nfa.n_states nfa in
  if n = 0 then Regex.empty
  else begin
    let start = n and final = n + 1 in
    let size = n + 2 in
    let mat = Array.make_matrix size size Regex.empty in
    let add i j r = mat.(i).(j) <- Regex.alt [ mat.(i).(j); r ] in
    List.iter (fun (s, sym, d) -> add s d (Regex.sym sym)) (Nfa.transitions nfa);
    List.iter (fun s -> add start s Regex.epsilon) (Nfa.starts nfa);
    List.iter (fun s -> add s final Regex.epsilon) (Nfa.finals nfa);
    let alive = Array.make size true in
    (* Eliminate interior states cheapest-first: fewer incident non-empty
       entries means fewer regex products created. *)
    let cost k =
      let c = ref 0 in
      for i = 0 to size - 1 do
        if alive.(i) then begin
          if not (Regex.is_empty_lang mat.(i).(k)) then incr c;
          if not (Regex.is_empty_lang mat.(k).(i)) then incr c
        end
      done;
      !c
    in
    let remaining = ref (List.init n Fun.id) in
    while !remaining <> [] do
      let k =
        List.fold_left
          (fun best s -> match best with
            | None -> Some (s, cost s)
            | Some (_, c) ->
                let c' = cost s in
                if c' < c then Some (s, c') else best)
          None !remaining
        |> Option.get |> fst
      in
      remaining := List.filter (fun s -> s <> k) !remaining;
      let loop = Regex.star mat.(k).(k) in
      for i = 0 to size - 1 do
        if alive.(i) && i <> k && not (Regex.is_empty_lang mat.(i).(k)) then
          for j = 0 to size - 1 do
            if alive.(j) && j <> k && not (Regex.is_empty_lang mat.(k).(j)) then
              add i j (Regex.seq [ mat.(i).(k); loop; mat.(k).(j) ])
          done
      done;
      alive.(k) <- false
    done;
    mat.(start).(final)
  end
