(** Language-preserving simplification of regular expressions.

    State elimination ({!Elim}) can produce verbose expressions; GPS shows
    queries to non-expert users, so conciseness matters. On top of the
    purely syntactic normal form of {!Gps_regex.Regex}'s smart
    constructors, this pass applies {e semantic} rewrites backed by
    automata decision procedures:

    - alternation members subsumed by another member are dropped
      ([a + a.b* .a? + (a+b)* = (a+b)*] when inclusion holds);
    - [r*.r*] and [r.r*.r*]-style adjacent stars collapse;
    - [(a* + b)*] rewrites to [(a+b)*];
    - a starred body is replaced by the union of its alternation members'
      bodies when that preserves the language.

    Every rewrite is verified: the result is checked equivalent to the
    input (cheap at learned-query sizes), so the function is total and
    safe by construction. *)

val simplify : Gps_regex.Regex.t -> Gps_regex.Regex.t
(** Equivalent to the input and never larger ({!Gps_regex.Regex.size}). *)
