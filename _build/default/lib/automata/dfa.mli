(** Deterministic finite automata, complete over an explicit alphabet.

    Completeness (every state has a transition on every alphabet symbol,
    via a sink state if necessary) makes complementation a final-flip and
    lets Hopcroft's algorithm run without special cases. *)

type t = {
  alphabet : string array;     (** sorted, duplicate-free *)
  n_states : int;
  start : int;
  finals : bool array;
  delta : int array array;     (** [delta.(state).(symbol_index)] *)
}

val determinize : ?alphabet:string list -> Nfa.t -> t
(** Subset construction. The alphabet defaults to the NFA's occurring
    symbols; pass a larger one when the DFA must be complete over a wider
    label set (e.g. a graph's full alphabet, for complementation). *)

val minimize : t -> t
(** Hopcroft's partition-refinement algorithm; the result is the unique
    minimal complete DFA (up to isomorphism) for the same language over
    the same alphabet. *)

val minimize_brzozowski : Nfa.t -> t
(** Brzozowski's double-reversal minimization (determinize the reversal,
    twice). Accepts an NFA directly; the result is minimal over the NFA's
    occurring alphabet. Kept as an independent oracle for the test suite
    and for the minimization ablation benchmark — Hopcroft
    ({!minimize}) is the production path. *)

val accepts : t -> string list -> bool
(** Symbols outside the alphabet make the word rejected. *)

val complement : t -> t
(** Complement {e relative to the automaton's own alphabet}: words using
    other symbols belong to neither language. Use {!extend_alphabet}
    first when a wider universe is intended. *)

val extend_alphabet : t -> string list -> t
(** Complete the DFA over the union of its alphabet and the given symbols;
    new symbols send every state to a fresh rejecting sink. The language
    is unchanged. *)

val product : meet:(bool -> bool -> bool) -> t -> t -> t
(** Pairing construction over the union of both alphabets; [meet]
    combines acceptance ([(&&)] for intersection, [(||)] for union).
    Symbols absent from one automaton's alphabet lead that side to a
    sink. *)

val inter : t -> t -> t
val union : t -> t -> t

val is_empty_lang : t -> bool
val included : t -> t -> bool
(** [included a b] iff [L(a) ⊆ L(b)]. *)

val equal_lang : t -> t -> bool

val distinguishing_word : t -> t -> string list option
(** A word accepted by exactly one of the two, if the languages differ. *)

val to_nfa : t -> Nfa.t
(** Forgetful embedding; sink states and their transitions are dropped. *)

val n_live_states : t -> int
(** States from which a final state is reachable — i.e. not sinks. *)

val pp : Format.formatter -> t -> unit
