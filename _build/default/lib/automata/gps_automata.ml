(** Finite automata substrate: ε-free NFAs, complete DFAs with the full
    classical toolbox (subset construction, Hopcroft minimization, boolean
    operations, inclusion/equivalence with witnesses), Glushkov compilation
    from regular expressions, state elimination back to expressions, and
    prefix-tree acceptors for the learner. *)

module Nfa = Nfa
module Dfa = Dfa
module Compile = Compile
module Elim = Elim
module Simplify = Simplify
module Pta = Pta
