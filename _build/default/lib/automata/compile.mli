(** Compilation of regular expressions to automata (Glushkov position
    construction — ε-free by design, n+1 states for n symbol
    occurrences). *)

val to_nfa : Gps_regex.Regex.t -> Nfa.t
(** State 0 is the start; state i > 0 corresponds to the i-th symbol
    occurrence (left-to-right). *)

val to_nfa_antimirov : Gps_regex.Regex.t -> Nfa.t
(** The Antimirov (partial-derivative) automaton — an alternative
    construction with at most [size r] states, typically smaller than
    Glushkov's and never larger. States are the reachable partial-
    derivative terms. *)

val to_dfa : ?alphabet:string list -> Gps_regex.Regex.t -> Dfa.t
(** [determinize (to_nfa r)], minimized. *)

val equal_lang : Gps_regex.Regex.t -> Gps_regex.Regex.t -> bool
(** Language equality of two expressions, decided over the union of their
    alphabets. *)

val included : Gps_regex.Regex.t -> Gps_regex.Regex.t -> bool

val distinguishing_word : Gps_regex.Regex.t -> Gps_regex.Regex.t -> string list option
