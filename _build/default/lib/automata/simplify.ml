module Regex = Gps_regex.Regex

let included a b = Compile.included a b

(* One bottom-up rewriting pass. *)
let rec pass (r : Regex.t) : Regex.t =
  match r with
  | Empty | Epsilon | Sym _ -> r
  | Alt members ->
      let members = List.map pass members in
      (* drop members included in another member (keep the later of two
         equivalent ones arbitrarily — compare by index to avoid dropping
         both) *)
      let keep i m =
        not
          (List.exists2
             (fun j m' -> j <> i && included m m' && ((not (included m' m)) || j < i))
             (List.init (List.length members) Fun.id)
             members)
      in
      Regex.alt (List.filteri (fun i m -> keep i m) members)
  | Seq members ->
      let members = List.map pass members in
      (* collapse adjacent equal stars: r*.r* = r*; and r*.r = r.r* is
         left alone (no size win) *)
      let rec collapse = function
        | (Regex.Star a as s) :: Regex.Star b :: rest when Regex.equal a b ->
            collapse (s :: rest)
        | m :: rest -> m :: collapse rest
        | [] -> []
      in
      Regex.seq (collapse members)
  | Star body -> (
      let body = pass body in
      (* (x* + y + ...)* = (x + y + ...)*: unwrap starred members of a
         starred alternation *)
      let unwrap (m : Regex.t) = match m with Star inner -> inner | _ -> m in
      match body with
      | Alt members -> Regex.star (Regex.alt (List.map unwrap members))
      | _ -> Regex.star body)

let simplify r =
  let rec fix r budget =
    if budget = 0 then r
    else
      let r' = pass r in
      if Regex.equal r' r then r else fix r' (budget - 1)
  in
  let candidate = fix r 8 in
  (* guard: every rewrite above is language-preserving by construction,
     but the subsumption logic is subtle enough that we verify and fall
     back rather than ever ship a wrong simplification *)
  if Regex.size candidate <= Regex.size r && Compile.equal_lang candidate r then candidate
  else r
