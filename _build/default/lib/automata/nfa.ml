type state = int

module Iset = Set.Make (Int)
module Sset = Set.Make (String)

type t = {
  n_states : int;
  starts : Iset.t;
  finals : Iset.t;
  delta : (string * state) list array;  (* sorted, deduped *)
}

let check_state n s kind =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Nfa.make: %s state %d out of range [0,%d)" kind s n)

let make ~n_states ~starts ~finals ~trans =
  List.iter (fun s -> check_state n_states s "start") starts;
  List.iter (fun s -> check_state n_states s "final") finals;
  let delta = Array.make n_states [] in
  List.iter
    (fun (src, sym, dst) ->
      check_state n_states src "source";
      check_state n_states dst "target";
      delta.(src) <- (sym, dst) :: delta.(src))
    trans;
  let delta = Array.map (List.sort_uniq compare) delta in
  { n_states; starts = Iset.of_list starts; finals = Iset.of_list finals; delta }

let n_states a = a.n_states
let n_trans a = Array.fold_left (fun acc l -> acc + List.length l) 0 a.delta
let starts a = Iset.elements a.starts
let finals a = Iset.elements a.finals
let is_start a s = Iset.mem s a.starts
let is_final a s = Iset.mem s a.finals

let delta a s =
  check_state a.n_states s "query";
  a.delta.(s)

let delta_sym a s sym =
  List.filter_map (fun (sym', d) -> if String.equal sym sym' then Some d else None) (delta a s)

let transitions a =
  let acc = ref [] in
  for s = a.n_states - 1 downto 0 do
    List.iter (fun (sym, d) -> acc := (s, sym, d) :: !acc) (List.rev a.delta.(s))
  done;
  !acc

let symbols a =
  Sset.elements
    (Array.fold_left
       (fun acc l -> List.fold_left (fun acc (sym, _) -> Sset.add sym acc) acc l)
       Sset.empty a.delta)

let step a states sym =
  let image =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc d -> Iset.add d acc) acc (delta_sym a s sym))
      Iset.empty states
  in
  Iset.elements image

let accepts a word =
  let final_set = List.fold_left (fun acc w -> step a acc w) (starts a) word in
  List.exists (fun s -> is_final a s) final_set

let reverse a =
  make ~n_states:a.n_states ~starts:(finals a) ~finals:(starts a)
    ~trans:(List.map (fun (s, sym, d) -> (d, sym, s)) (transitions a))

let union a b =
  let shift = a.n_states in
  make
    ~n_states:(a.n_states + b.n_states)
    ~starts:(starts a @ List.map (( + ) shift) (starts b))
    ~finals:(finals a @ List.map (( + ) shift) (finals b))
    ~trans:
      (transitions a
      @ List.map (fun (s, sym, d) -> (s + shift, sym, d + shift)) (transitions b))

let closure seed next =
  let visited = Hashtbl.create 64 in
  let rec go = function
    | [] -> ()
    | s :: rest ->
        if Hashtbl.mem visited s then go rest
        else begin
          Hashtbl.add visited s ();
          go (next s @ rest)
        end
  in
  go seed;
  visited

let trim a =
  let fwd = closure (starts a) (fun s -> List.map snd a.delta.(s)) in
  let rev = reverse a in
  let bwd = closure (finals a) (fun s -> List.map snd rev.delta.(s)) in
  let keep s = Hashtbl.mem fwd s && Hashtbl.mem bwd s in
  let remap = Array.make (max a.n_states 1) (-1) in
  let count = ref 0 in
  for s = 0 to a.n_states - 1 do
    if keep s then begin
      remap.(s) <- !count;
      incr count
    end
  done;
  let map_states l = List.filter_map (fun s -> if keep s then Some remap.(s) else None) l in
  make ~n_states:!count ~starts:(map_states (starts a)) ~finals:(map_states (finals a))
    ~trans:
      (List.filter_map
         (fun (s, sym, d) -> if keep s && keep d then Some (remap.(s), sym, remap.(d)) else None)
         (transitions a))

let is_empty_lang a = n_states (trim a) = 0

let quotient a ~partition =
  if Array.length partition <> a.n_states then
    invalid_arg "Nfa.quotient: partition size mismatch";
  let blocks = Array.fold_left (fun acc b -> max acc (b + 1)) 0 partition in
  make ~n_states:blocks
    ~starts:(List.map (fun s -> partition.(s)) (starts a))
    ~finals:(List.map (fun s -> partition.(s)) (finals a))
    ~trans:(List.map (fun (s, sym, d) -> (partition.(s), sym, partition.(d))) (transitions a))

let shortest_accepted a =
  (* BFS over subset states would be exponential; BFS over single states
     suffices: a shortest accepted word is a shortest start-to-final walk. *)
  let q = Queue.create () in
  let seen = Array.make (max a.n_states 1) false in
  List.iter
    (fun s ->
      seen.(s) <- true;
      Queue.add (s, []) q)
    (starts a);
  let rec go () =
    if Queue.is_empty q then None
    else
      let s, rev_word = Queue.pop q in
      if is_final a s then Some (List.rev rev_word)
      else begin
        List.iter
          (fun (sym, d) ->
            if not seen.(d) then begin
              seen.(d) <- true;
              Queue.add (d, sym :: rev_word) q
            end)
          a.delta.(s);
        go ()
      end
  in
  go ()

let enumerate a ~max_len =
  (* BFS over (word, subset) pairs, deduplicating subsets per word prefix
     is unnecessary: distinct words are distinct states of the product of
     Σ* with the subset automaton; we just cap by length. *)
  let q = Queue.create () in
  Queue.add ([], starts a) q;
  let out = ref [] in
  while not (Queue.is_empty q) do
    let rev_word, states = Queue.pop q in
    if List.exists (fun s -> is_final a s) states then out := List.rev rev_word :: !out;
    if List.length rev_word < max_len then begin
      let syms =
        Sset.elements
          (List.fold_left
             (fun acc s -> List.fold_left (fun acc (sym, _) -> Sset.add sym acc) acc a.delta.(s))
             Sset.empty states)
      in
      List.iter (fun sym -> Queue.add (sym :: rev_word, step a states sym) q) syms
    end
  done;
  List.rev !out

let pp ppf a =
  Format.fprintf ppf "@[<v>nfa: %d states, starts {%s}, finals {%s}" a.n_states
    (String.concat "," (List.map string_of_int (starts a)))
    (String.concat "," (List.map string_of_int (finals a)));
  List.iter (fun (s, sym, d) -> Format.fprintf ppf "@,%d -%s-> %d" s sym d) (transitions a);
  Format.fprintf ppf "@]"
