lib/viz/dotviz.ml: Buffer Gps_graph Gps_interactive List Option Printf
