lib/viz/ascii.mli: Gps_graph Gps_interactive Gps_query
