lib/viz/gps_viz.ml: Ascii Dotviz
