lib/viz/ascii.ml: Buffer Format Gps_graph Gps_interactive Gps_query Hashtbl List Option Printf String
