lib/viz/dotviz.mli: Gps_graph Gps_interactive
