module Digraph = Gps_graph.Digraph
module Neighborhood = Gps_graph.Neighborhood
module View = Gps_interactive.View

let neighborhood g (view : View.neighborhood) =
  let frag = view.View.fragment in
  let buf = Buffer.create 512 in
  let added_nodes, added_edges = View.added view in
  let is_new_node v = List.mem_assoc v added_nodes in
  let is_new_edge e =
    List.exists
      (fun e' ->
        e'.Digraph.src = e.Digraph.src && e'.Digraph.lbl = e.Digraph.lbl
        && e'.Digraph.dst = e.Digraph.dst)
      added_edges
  in
  Buffer.add_string buf
    (Printf.sprintf "neighborhood of %s (radius %d)%s\n"
       (Digraph.node_name g frag.Neighborhood.center)
       frag.Neighborhood.radius
       (if added_nodes = [] && added_edges = [] then "" else "   [+ = newly revealed]"));
  let member v = List.mem_assoc v frag.Neighborhood.nodes in
  let frontier v = List.mem v frag.Neighborhood.frontier in
  (* Edge tree rooted at the center; repeats are cut with "(seen)". *)
  let visited = Hashtbl.create 16 in
  let rec draw prefix v =
    let outs = List.filter (fun (_, d) -> member d) (Digraph.out_edges g v) in
    let n = List.length outs in
    List.iteri
      (fun i (lbl, d) ->
        let e = { Digraph.src = v; lbl; dst = d } in
        let last = i = n - 1 in
        let branch = if last then "`-" else "|-" in
        let seen = Hashtbl.mem visited d in
        Buffer.add_string buf
          (Printf.sprintf "%s%s%s%s-> %s%s%s%s\n" prefix branch
             (if is_new_edge e then "+" else "")
             (Digraph.label_name g lbl) (Digraph.node_name g d)
             (if is_new_node d then " (+)" else "")
             (if frontier d then " ..." else "")
             (if seen then " (seen)" else ""));
        if not seen then begin
          Hashtbl.add visited d ();
          draw (prefix ^ if last then "   " else "|  ") d
        end)
      outs
  in
  Hashtbl.add visited frag.Neighborhood.center ();
  Buffer.add_string buf
    (Printf.sprintf "%s%s\n"
       (Digraph.node_name g frag.Neighborhood.center)
       (if frontier frag.Neighborhood.center then " ..." else ""));
  draw "" frag.Neighborhood.center;
  Buffer.contents buf

let path_tree (pt : View.path_tree) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "candidate paths (%d); suggested: %s\n" (List.length pt.View.words)
       (String.concat "." pt.View.suggested));
  (* walk the tree, tracking the word spelled so far to spot the
     suggestion *)
  let rec draw prefix word (t : View.tree) =
    let n = List.length t.View.children in
    List.iteri
      (fun i (child : View.tree) ->
        let lbl = Option.value child.View.label ~default:"?" in
        let word = word @ [ lbl ] in
        let last = i = n - 1 in
        let branch = if last then "`-" else "|-" in
        let marks =
          (if child.View.accepting then " *" else "")
          ^ if word = pt.View.suggested then " <== suggested" else ""
        in
        Buffer.add_string buf (Printf.sprintf "%s%s %s%s\n" prefix branch lbl marks);
        draw (prefix ^ if last then "   " else "|  ") word child)
      t.View.children
  in
  Buffer.add_string buf ".\n";
  draw "" [] pt.View.tree;
  Buffer.contents buf

let graph_summary g =
  let stats = Gps_graph.Stats.compute g in
  Format.asprintf "%a" Gps_graph.Stats.pp stats

let witness g w = Format.asprintf "%a" (Gps_query.Witness.pp g) w
