(** GraphViz output of session views (delegates fragments to
    {!Gps_graph.Dot}, adds path trees). *)

val neighborhood : Gps_graph.Digraph.t -> Gps_interactive.View.neighborhood -> string
(** The fragment with zoom additions highlighted — Figure 3(a)/(b). *)

val path_tree : Gps_interactive.View.path_tree -> string
(** The candidate prefix tree — Figure 3(c); the suggested path is drawn
    bold, accepting nodes are doubly circled. *)
