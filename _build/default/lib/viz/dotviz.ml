module View = Gps_interactive.View

let neighborhood g (view : View.neighborhood) =
  Gps_graph.Dot.of_fragment ~added:(View.added view) g view.View.fragment

let path_tree (pt : View.path_tree) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph \"paths\" {\n  rankdir=LR;\n";
  let fresh =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Printf.sprintf "n%d" !counter
  in
  (* every prefix of the suggested path is drawn bold, so the whole branch
     stands out *)
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
    | _ :: _, [] -> false
  in
  let on_suggested word = word <> [] && is_prefix word pt.View.suggested in
  let rec draw parent word (t : View.tree) =
    List.iter
      (fun (child : View.tree) ->
        let lbl = Option.value child.View.label ~default:"?" in
        let word = word @ [ lbl ] in
        let id = fresh () in
        let shape = if child.View.accepting then "doublecircle" else "circle" in
        let bold = if on_suggested word then ", penwidth=2, color=blue" else "" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"\", shape=%s%s];\n" id shape bold);
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [label=\"%s\"%s];\n" parent id lbl bold);
        draw id word child)
      t.View.children
  in
  Buffer.add_string buf "  root [label=\"\", shape=point];\n";
  draw "root" [] pt.View.tree;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
