(** Renderers for the GPS views: terminal (ASCII) and GraphViz DOT
    versions of the neighborhood fragments and candidate-path prefix trees
    of the paper's Figure 3. *)

module Ascii = Ascii
module Dotviz = Dotviz
