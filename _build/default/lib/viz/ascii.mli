(** Terminal renderings of the GPS views — the textual equivalent of the
    paper's Figure 3 panels.

    - {!neighborhood} draws the fragment as an edge tree rooted at the
      proposed node: frontier nodes carry a ["..."] marker (parts of the
      graph reachable but not shown), and nodes/edges revealed by the last
      zoom are prefixed with [+] (the paper draws them in blue);
    - {!path_tree} draws the candidate-path prefix tree with the
      accepting words ticked and the system's suggestion marked;
    - {!graph_summary} is a one-screen description of a whole graph. *)

val neighborhood : Gps_graph.Digraph.t -> Gps_interactive.View.neighborhood -> string

val path_tree : Gps_interactive.View.path_tree -> string

val graph_summary : Gps_graph.Digraph.t -> string

val witness : Gps_graph.Digraph.t -> Gps_query.Witness.t -> string
(** [N2 -bus-> N1 -tram-> N4 -cinema-> C1]. *)
