(* Tests for the third wave of extensions: CSR snapshots, two-way RPQs,
   the word-level learner. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Twoway = Gps_query.Twoway
module Word_learner = Gps_learning.Word_learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)

(* -------------------------------------------------------------------- *)
(* Csr *)

let test_csr_shape () =
  let g = Datasets.figure1 () in
  let csr = Csr.freeze g in
  check_int "nodes" (Digraph.n_nodes g) (Csr.n_nodes csr);
  check_int "edges" (Digraph.n_edges g) (Csr.n_edges csr);
  check_int "labels" (Digraph.n_labels g) (Csr.n_labels csr);
  Digraph.iter_nodes
    (fun v ->
      check_int "out degree" (Digraph.out_degree g v) (Csr.out_degree csr v);
      check_int "in degree" (Digraph.in_degree g v) (Csr.in_degree csr v))
    g

let test_csr_adjacency_agrees () =
  let g = Generators.city (Generators.default_city ~districts:12) ~seed:9 in
  let csr = Csr.freeze g in
  Digraph.iter_nodes
    (fun v ->
      let from_lists = List.sort compare (Digraph.out_edges g v) in
      let from_csr = ref [] in
      Csr.iter_out csr v (fun lbl d -> from_csr := (lbl, d) :: !from_csr);
      check "same out-adjacency" true (List.sort compare !from_csr = from_lists);
      let in_lists = List.sort compare (Digraph.in_edges g v) in
      let in_csr = ref [] in
      Csr.iter_in csr v (fun lbl s -> in_csr := (lbl, s) :: !in_csr);
      check "same in-adjacency" true (List.sort compare !in_csr = in_lists))
    g

let test_csr_fold_and_bounds () =
  let g = Datasets.figure1 () in
  let csr = Csr.freeze g in
  let n2 = node g "N2" in
  check_int "fold counts out-edges" (Digraph.out_degree g n2)
    (Csr.fold_out csr n2 ~init:0 ~f:(fun acc _ _ -> acc + 1));
  Alcotest.check_raises "bounds" (Invalid_argument "Csr.out_degree: node 99 out of range")
    (fun () -> ignore (Csr.out_degree csr 99))

let test_csr_eval_agrees () =
  let g = Generators.city (Generators.default_city ~districts:20) ~seed:4 in
  let csr = Csr.freeze g in
  List.iter
    (fun qs ->
      let q = Rpq.of_string_exn qs in
      check ("frozen eval agrees on " ^ qs) true (Eval.select g q = Eval.select_frozen g csr q))
    [ "cinema"; "(tram+bus)*.cinema"; "metro*.park"; "zzz"; "eps" ]

(* -------------------------------------------------------------------- *)
(* Twoway (2RPQ) *)

let test_twoway_symbols () =
  check "inverse" true (Twoway.is_inverse "tram~");
  check "plain" false (Twoway.is_inverse "tram");
  Alcotest.(check string) "base" "tram" (Twoway.base_label "tram~");
  Alcotest.(check string) "base id" "tram" (Twoway.base_label "tram")

let test_twoway_plain_queries_agree () =
  let g = Datasets.figure1 () in
  List.iter
    (fun qs ->
      let q = Rpq.of_string_exn qs in
      check ("agrees with Eval on " ^ qs) true (Twoway.select g q = Eval.select g q))
    [ "(tram+bus)*.cinema"; "bus"; "tram*.restaurant"; "eps"; "zzz" ]

let test_twoway_inverse_step () =
  (* from a cinema, step back into its district: C1 -cinema~-> N4 *)
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "cinema~" in
  let sel = List.map (Digraph.node_name g) (Twoway.select_nodes g q) in
  Alcotest.(check (list string)) "cinemas can step back" [ "C1"; "C2" ] (List.sort compare sel)

let test_twoway_facility_to_facility () =
  (* restaurants whose district can reach a cinema by transport:
     restaurant~ . (tram+bus)* . cinema — starting FROM the facility *)
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "restaurant~.(tram+bus)*.cinema" in
  let sel = List.map (Digraph.node_name g) (Twoway.select_nodes g q) in
  (* R2's district is N3 (no cinema reachable); R1's is N5 (no cinema).
     So nobody. *)
  Alcotest.(check (list string)) "no restaurant qualifies here" [] sel;
  (* but on transpole, facilities sit on well-connected stops *)
  let t = Datasets.transpole () in
  let q2 = Rpq.of_string_exn "restaurant~.(metro+tram+bus)*.cinema" in
  let sel2 = List.map (Digraph.node_name t) (Twoway.select_nodes t q2) in
  check "Wazemmes market reaches a cinema" true (List.mem "Marche_Wazemmes" sel2)

let test_twoway_witness () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "cinema~.tram~" in
  (* C1 <-cinema- N4 <-tram- N1 *)
  match Twoway.witness g q (node g "C1") with
  | Some steps ->
      check_int "two steps" 2 (List.length steps);
      let first = List.hd steps in
      check "first is inverse" true first.Twoway.inverse;
      Alcotest.(check string) "renders with back arrow" "C1 <-cinema- N4"
        (Format.asprintf "%a" (Twoway.pp_step g) first)
  | None -> Alcotest.fail "witness expected"

let test_twoway_witness_none () =
  let g = Datasets.figure1 () in
  check "unselected node has no witness" true
    (Twoway.witness g (Rpq.of_string_exn "cinema") (node g "N5") = None)

(* -------------------------------------------------------------------- *)
(* Word_learner *)

let test_word_learner_basic () =
  let q =
    Word_learner.learn_exn
      ~pos:[ [ "a"; "b" ]; [ "a"; "b"; "a"; "b" ] ]
      ~neg:[ [ "a" ]; [ "b"; "a" ]; [ "a"; "b"; "a" ] ]
  in
  check "accepts positives" true (Rpq.matches_word q [ "a"; "b" ]);
  check "generalizes" true (Rpq.matches_word q [ "a"; "b"; "a"; "b"; "a"; "b" ]);
  check "rejects negatives" false (Rpq.matches_word q [ "b"; "a" ])

let test_word_learner_contradiction () =
  match Word_learner.learn ~pos:[ [ "a" ] ] ~neg:[ [ "a" ] ] with
  | Error (Word_learner.Contradiction w) -> check "the word" true (w = [ "a" ])
  | Ok _ -> Alcotest.fail "contradiction must be reported"

let test_word_learner_empty_pos () =
  match Word_learner.learn ~pos:[] ~neg:[ [ "x" ] ] with
  | Ok q -> check "empty language" false (Rpq.matches_word q [ "x" ])
  | Error _ -> Alcotest.fail "empty positives are fine"

let test_word_learner_characteristic_roundtrip () =
  List.iter
    (fun qs ->
      let goal = Rpq.of_string_exn qs in
      let pos, neg = Word_learner.characteristic_words ~max_len:4 goal in
      check (qs ^ ": characteristic sample is consistent") true
        (Word_learner.consistent_with goal ~pos ~neg);
      let learned = Word_learner.learn_exn ~pos ~neg in
      check (qs ^ ": learned query consistent with the sample") true
        (Word_learner.consistent_with learned ~pos ~neg))
    [ "a.b"; "(a+b)*.c"; "a*"; "a.(b+c)" ]

let test_word_learner_identification () =
  (* with the full characteristic sample up to length 4, simple queries
     are recovered exactly (language equality) *)
  List.iter
    (fun qs ->
      let goal = Rpq.of_string_exn qs in
      let pos, neg = Word_learner.characteristic_words ~max_len:4 goal in
      let learned = Word_learner.learn_exn ~pos ~neg in
      check (qs ^ " identified") true (Rpq.equal_lang learned goal))
    [ "a.b"; "a*"; "(a.b)*" ]

(* -------------------------------------------------------------------- *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let arb_graph =
    make
      Gen.(
        let* n = int_range 2 12 in
        let* m = int_range 1 30 in
        let* seed = int_range 0 9_999 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b"; "c" ] ~seed))
  in
  let gen_regex =
    Gen.(
      let sym = oneofl [ "a"; "b"; "c" ] in
      fix
        (fun self n ->
          if n <= 1 then map Gps_regex.Regex.sym sym
          else
            frequency
              [
                (3, map Gps_regex.Regex.sym sym);
                (2, map2 (fun a b -> Gps_regex.Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
                (3, map2 (fun a b -> Gps_regex.Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (2, map Gps_regex.Regex.star (self (n - 1)));
              ])
        8)
  in
  let arb_regex = make ~print:Gps_regex.Regex.to_string gen_regex in
  [
    Test.make ~name:"frozen evaluation agrees with lists" ~count:300 (pair arb_graph arb_regex)
      (fun (g, r) ->
        let q = Rpq.of_regex r in
        Eval.select g q = Eval.select_frozen g (Csr.freeze g) q);
    Test.make ~name:"two-way agrees with one-way on inverse-free queries" ~count:300
      (pair arb_graph arb_regex) (fun (g, r) ->
        let q = Rpq.of_regex r in
        Twoway.select g q = Eval.select g q);
    Test.make ~name:"two-way witness exists iff selected" ~count:200
      (pair arb_graph arb_regex) (fun (g, r) ->
        let q = Rpq.of_regex r in
        let sel = Twoway.select g q in
        Digraph.fold_nodes
          (fun acc v -> acc && (Twoway.witness g q v <> None) = sel.(v))
          true g);
    Test.make ~name:"word learner output is consistent with its sample" ~count:200
      (make
         Gen.(
           let word = list_size (int_bound 3) (oneofl [ "a"; "b" ]) in
           pair (list_size (int_range 1 4) word) (list_size (int_bound 4) word)))
      (fun (pos, neg) ->
        let neg = List.filter (fun w -> not (List.mem w pos)) neg in
        match Word_learner.learn ~pos ~neg with
        | Ok q -> Word_learner.consistent_with q ~pos ~neg
        | Error _ -> false);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext3.csr",
      [
        t "shape" test_csr_shape;
        t "adjacency" test_csr_adjacency_agrees;
        t "fold and bounds" test_csr_fold_and_bounds;
        t "eval agreement" test_csr_eval_agrees;
      ] );
    ( "ext3.twoway",
      [
        t "symbols" test_twoway_symbols;
        t "plain queries" test_twoway_plain_queries_agree;
        t "inverse step" test_twoway_inverse_step;
        t "facility to facility" test_twoway_facility_to_facility;
        t "witness" test_twoway_witness;
        t "no witness" test_twoway_witness_none;
      ] );
    ( "ext3.word_learner",
      [
        t "basic" test_word_learner_basic;
        t "contradiction" test_word_learner_contradiction;
        t "empty positives" test_word_learner_empty_pos;
        t "characteristic roundtrip" test_word_learner_characteristic_roundtrip;
        t "identification" test_word_learner_identification;
      ] );
    ("ext3.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
