test/test_extensions7_suite.ml: Alcotest Array Codec Datasets Digraph Format Fun Gen Generators Gps_graph Gps_learning Gps_query List Option QCheck QCheck_alcotest String Test
