test/test_invariants_suite.ml: Alcotest Array Datasets Format Generators Gps_graph Gps_interactive Gps_learning Gps_query List
