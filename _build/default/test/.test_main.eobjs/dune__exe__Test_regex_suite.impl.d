test/test_regex_suite.ml: Alcotest Deriv Gps_regex List Parse QCheck QCheck_alcotest Regex Test
