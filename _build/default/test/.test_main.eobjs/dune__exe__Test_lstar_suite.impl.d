test/test_lstar_suite.ml: Alcotest Gen Gps_automata Gps_learning Gps_query Gps_regex List QCheck QCheck_alcotest String Test
