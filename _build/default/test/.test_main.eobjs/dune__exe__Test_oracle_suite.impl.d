test/test_oracle_suite.ml: Array Csr Digraph Generators Gps_graph Gps_query Gps_regex Hashtbl List QCheck QCheck_alcotest Queue Test Walks
