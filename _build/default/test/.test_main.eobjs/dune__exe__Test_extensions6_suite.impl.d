test/test_extensions6_suite.ml: Alcotest Array Datasets Digraph Gen Generators Gps_graph Gps_query List Option Prng QCheck QCheck_alcotest Test
