test/test_automata_suite.ml: Alcotest Array Compile Dfa Elim Gps_automata Gps_regex List Nfa Pta QCheck QCheck_alcotest Test
