test/test_viz_suite.ml: Alcotest Codec Datasets Digraph Gen Generators Gps_graph Gps_interactive Gps_query Gps_viz List Neighborhood Option QCheck QCheck_alcotest String Test
