test/test_integration_suite.ml: Alcotest Array Codec Csr Datasets Digraph Filename Fun Generators Gps Gps_graph Gps_interactive Gps_query Json List Option Printf Prng Reach Store String Sys
