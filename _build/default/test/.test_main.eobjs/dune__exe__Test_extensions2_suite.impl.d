test/test_extensions2_suite.ml: Alcotest Datasets Digraph Gen Generators Gps Gps_automata Gps_graph Gps_learning Gps_query Gps_regex List Nfa Option QCheck QCheck_alcotest Test Traverse
