test/test_core_suite.ml: Alcotest Gps List Result String
