test/test_extensions3_suite.ml: Alcotest Array Csr Datasets Digraph Format Gen Generators Gps_graph Gps_learning Gps_query Gps_regex List Option QCheck QCheck_alcotest Test
