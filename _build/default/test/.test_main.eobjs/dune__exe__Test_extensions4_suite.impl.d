test/test_extensions4_suite.ml: Alcotest Datasets Digraph Gen Generators Gps_graph Gps_interactive Gps_query Gps_regex List Option Prng QCheck QCheck_alcotest Test
