(* Tests for the Gps umbrella API — the functions a downstream user calls
   first. *)

let check = Alcotest.(check bool)

let test_parse_query () =
  check "ok" true (Result.is_ok (Gps.parse_query "(tram+bus)*.cinema"));
  check "error" true (Result.is_error (Gps.parse_query "(("));
  match Gps.parse_query_exn "a.b" with
  | q -> check "size" true (Gps.Regex.Regex.size (Gps.Query.Rpq.regex q) > 1)

let test_evaluate () =
  let g = Gps.Graph.Datasets.figure1 () in
  Alcotest.(check (list string))
    "paper selection" [ "N1"; "N2"; "N4"; "N6" ]
    (Gps.evaluate g (Gps.parse_query_exn "(tram+bus)*.cinema"));
  match Gps.evaluate_str g "cinema" with
  | Ok sel -> Alcotest.(check (list string)) "direct" [ "N4"; "N6" ] sel
  | Error e -> Alcotest.fail e

let test_learn_api () =
  let g = Gps.Graph.Datasets.figure1 () in
  (match Gps.learn g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] with
  | Ok q ->
      check "consistent" true
        (Gps.evaluate g q <> [] && not (List.mem "N5" (Gps.evaluate g q)))
  | Error e -> Alcotest.fail e);
  (* conflicting labels are reported, not raised *)
  (match Gps.learn g ~pos:[ "C1" ] ~neg:[ "N5" ] with
  | Ok _ -> Alcotest.fail "expected a conflict"
  | Error msg -> check "mentions the node" true (String.length msg > 0));
  (* unknown names are reported *)
  match Gps.learn g ~pos:[ "NOPE" ] ~neg:[] with
  | Ok _ -> Alcotest.fail "expected unknown-node error"
  | Error _ -> ()

let test_specify_interactively () =
  let g = Gps.Graph.Datasets.figure1 () in
  let goal = Gps.parse_query_exn "(tram+bus)*.cinema" in
  let o = Gps.specify_interactively g ~goal in
  check "reached goal" true o.Gps.reached_goal;
  check "questions = labels+zooms+validations" true
    (o.Gps.questions = o.Gps.labels + o.Gps.zooms + o.Gps.validations);
  check "learned selects the goal nodes" true
    (Gps.evaluate g o.Gps.learned = Gps.evaluate g goal)

let test_specify_with_strategy_and_config () =
  let g = Gps.Graph.Generators.city (Gps.Graph.Generators.default_city ~districts:12) ~seed:3 in
  let goal = Gps.parse_query_exn "bus.cinema" in
  let config =
    { Gps.Interactive.Session.default_config with
      Gps.Interactive.Session.max_questions = Some 4 }
  in
  let o =
    Gps.specify_interactively ~strategy:(Gps.Interactive.Strategy.random ~seed:1) ~config g ~goal
  in
  check "budget respected" true (o.Gps.questions <= 4)

let test_version () = check "semver-ish" true (String.length Gps.version >= 5)


let test_two_way_and_conjunction () =
  let g = Gps.Graph.Datasets.figure1 () in
  Alcotest.(check (list string)) "two-way inverse step" [ "C1"; "C2" ]
    (Gps.evaluate_two_way g (Gps.parse_query_exn "cinema~"));
  Alcotest.(check (list string)) "conjunction" [ "N1"; "N2"; "N6" ]
    (Gps.evaluate_all_of g
       [ Gps.parse_query_exn "bus"; Gps.parse_query_exn "(tram+bus)*.cinema" ])

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "core.api",
      [
        t "parse_query" test_parse_query;
        t "evaluate" test_evaluate;
        t "learn" test_learn_api;
        t "specify_interactively" test_specify_interactively;
        t "strategy and config" test_specify_with_strategy_and_config;
        t "version" test_version;
        t "two-way and conjunction" test_two_way_and_conjunction;
      ] );
  ]
