(* Unit and property tests for gps_automata: NFA/DFA algebra, Glushkov
   compilation, Hopcroft minimization, state elimination, PTA. The key
   properties cross-check three independent language representations:
   Brzozowski derivatives, compiled automata, and eliminated regexes. *)

open Gps_automata
module Regex = Gps_regex.Regex
module Deriv = Gps_regex.Deriv
module Parse = Gps_regex.Parse

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Parse.parse_exn

(* -------------------------------------------------------------------- *)
(* Nfa *)

let ab_star_nfa () =
  (* accepts (ab)* : 0 -a-> 1 -b-> 0, start 0, final 0 *)
  Nfa.make ~n_states:2 ~starts:[ 0 ] ~finals:[ 0 ] ~trans:[ (0, "a", 1); (1, "b", 0) ]

let test_nfa_accepts () =
  let a = ab_star_nfa () in
  check "empty" true (Nfa.accepts a []);
  check "ab" true (Nfa.accepts a [ "a"; "b" ]);
  check "abab" true (Nfa.accepts a [ "a"; "b"; "a"; "b" ]);
  check "a" false (Nfa.accepts a [ "a" ]);
  check "ba" false (Nfa.accepts a [ "b"; "a" ]);
  check "foreign symbol" false (Nfa.accepts a [ "z" ])

let test_nfa_make_validation () =
  Alcotest.check_raises "bad start" (Invalid_argument "Nfa.make: start state 5 out of range [0,2)")
    (fun () -> ignore (Nfa.make ~n_states:2 ~starts:[ 5 ] ~finals:[] ~trans:[]))

let test_nfa_reverse () =
  let a = Nfa.make ~n_states:3 ~starts:[ 0 ] ~finals:[ 2 ] ~trans:[ (0, "a", 1); (1, "b", 2) ] in
  let r = Nfa.reverse a in
  check "reversed word" true (Nfa.accepts r [ "b"; "a" ]);
  check "original word rejected" false (Nfa.accepts r [ "a"; "b" ])

let test_nfa_union () =
  let a = Compile.to_nfa (p "a") and b = Compile.to_nfa (p "b.b") in
  let u = Nfa.union a b in
  check "left" true (Nfa.accepts u [ "a" ]);
  check "right" true (Nfa.accepts u [ "b"; "b" ]);
  check "neither" false (Nfa.accepts u [ "b" ])

let test_nfa_trim () =
  (* state 2 unreachable, state 3 dead *)
  let a =
    Nfa.make ~n_states:4 ~starts:[ 0 ] ~finals:[ 1 ]
      ~trans:[ (0, "a", 1); (2, "b", 1); (0, "c", 3) ]
  in
  let t = Nfa.trim a in
  check_int "trimmed to 2 states" 2 (Nfa.n_states t);
  check "language preserved" true (Nfa.accepts t [ "a" ])

let test_nfa_trim_empty () =
  let a = Nfa.make ~n_states:3 ~starts:[ 0 ] ~finals:[] ~trans:[ (0, "a", 1) ] in
  check_int "empty language trims to nothing" 0 (Nfa.n_states (Nfa.trim a));
  check "is_empty_lang" true (Nfa.is_empty_lang a);
  check "nonempty" false (Nfa.is_empty_lang (ab_star_nfa ()))

let test_nfa_quotient () =
  (* merging the two states of (ab)* yields (a+b)* over-approximation *)
  let a = ab_star_nfa () in
  let q = Nfa.quotient a ~partition:[| 0; 0 |] in
  check_int "one state" 1 (Nfa.n_states q);
  check "superset: a" true (Nfa.accepts q [ "a" ]);
  check "still accepts ab" true (Nfa.accepts q [ "a"; "b" ])

let test_nfa_shortest () =
  let a = Compile.to_nfa (p "a.a.a+b.b") in
  check "shortest is bb" true (Nfa.shortest_accepted a = Some [ "b"; "b" ]);
  let e = Nfa.make ~n_states:1 ~starts:[ 0 ] ~finals:[] ~trans:[] in
  check "empty lang" true (Nfa.shortest_accepted e = None);
  let eps = Nfa.make ~n_states:1 ~starts:[ 0 ] ~finals:[ 0 ] ~trans:[] in
  check "epsilon" true (Nfa.shortest_accepted eps = Some [])

let test_nfa_enumerate () =
  let a = Compile.to_nfa (p "a*") in
  Alcotest.(check (list (list string)))
    "a* up to 2" [ []; [ "a" ]; [ "a"; "a" ] ] (Nfa.enumerate a ~max_len:2)

(* -------------------------------------------------------------------- *)
(* Compile (Glushkov) *)

let test_glushkov_paper_query () =
  let a = Compile.to_nfa (p "(tram+bus)*.cinema") in
  check "cinema" true (Nfa.accepts a [ "cinema" ]);
  check "bus.tram.cinema" true (Nfa.accepts a [ "bus"; "tram"; "cinema" ]);
  check "not bus" false (Nfa.accepts a [ "bus" ]);
  check "not empty" false (Nfa.accepts a [])

let test_glushkov_nullable_seq () =
  (* nullable middles: a?.b?.c must link a to c *)
  let a = Compile.to_nfa (p "a?.b?.c") in
  check "abc" true (Nfa.accepts a [ "a"; "b"; "c" ]);
  check "ac" true (Nfa.accepts a [ "a"; "c" ]);
  check "bc" true (Nfa.accepts a [ "b"; "c" ]);
  check "c" true (Nfa.accepts a [ "c" ]);
  check "ab" false (Nfa.accepts a [ "a"; "b" ])

let test_glushkov_sizes () =
  (* Glushkov: exactly n+1 states for n symbol occurrences *)
  check_int "states" 4 (Nfa.n_states (Compile.to_nfa (p "(a+b)*.c")));
  check_int "states" 1 (Nfa.n_states (Compile.to_nfa Regex.epsilon))

(* -------------------------------------------------------------------- *)
(* Dfa *)

let test_determinize_equiv () =
  let r = p "(a+b)*.a.b" in
  let nfa = Compile.to_nfa r in
  let dfa = Dfa.determinize nfa in
  List.iter
    (fun w -> check "nfa/dfa agree" true (Nfa.accepts nfa w = Dfa.accepts dfa w))
    [ []; [ "a" ]; [ "a"; "b" ]; [ "b"; "a"; "b" ]; [ "a"; "b"; "a" ]; [ "a"; "a"; "b" ] ]

let test_minimize_canonical_size () =
  (* minimal DFA of (a+b)*.a.b over {a,b} has 3 states *)
  let d = Dfa.minimize (Dfa.determinize (Compile.to_nfa (p "(a+b)*.a.b"))) in
  check_int "3 states" 3 d.Dfa.n_states

let test_minimize_preserves_language () =
  let d = Dfa.determinize (Compile.to_nfa (p "a.(b+c)*+c")) in
  let m = Dfa.minimize d in
  check "equal language" true (Dfa.equal_lang d m);
  check "not larger" true (m.Dfa.n_states <= d.Dfa.n_states)

let test_complement () =
  let d = Dfa.determinize ~alphabet:[ "a"; "b" ] (Compile.to_nfa (p "a*")) in
  let c = Dfa.complement d in
  check "a* in d" true (Dfa.accepts d [ "a"; "a" ]);
  check "a* not in c" false (Dfa.accepts c [ "a"; "a" ]);
  check "b in c" true (Dfa.accepts c [ "b" ]);
  check "empty word flips" true (Dfa.accepts d [] && not (Dfa.accepts c []))

let test_product_inter_union () =
  let da = Dfa.determinize (Compile.to_nfa (p "a.(a+b)*")) in
  let db = Dfa.determinize (Compile.to_nfa (p "(a+b)*.b")) in
  let inter = Dfa.inter da db and union = Dfa.union da db in
  check "ab in inter" true (Dfa.accepts inter [ "a"; "b" ]);
  check "a not in inter" false (Dfa.accepts inter [ "a" ]);
  check "a in union" true (Dfa.accepts union [ "a" ]);
  check "b in union" true (Dfa.accepts union [ "b" ]);
  check "empty not in union" false (Dfa.accepts union [])

let test_product_mixed_alphabets () =
  let da = Dfa.determinize (Compile.to_nfa (p "x")) in
  let db = Dfa.determinize (Compile.to_nfa (p "x+y")) in
  let u = Dfa.union da db in
  check "y via second only" true (Dfa.accepts u [ "y" ]);
  check "included" true (Dfa.included da db);
  check "not included rev" false (Dfa.included db da)

let test_inclusion_equal () =
  let d1 = Dfa.determinize (Compile.to_nfa (p "(a.b)*")) in
  let d2 = Dfa.determinize (Compile.to_nfa (p "(a.b)*.(a.b)*")) in
  check "equal languages" true (Dfa.equal_lang d1 d2);
  check "distinguishing none" true (Dfa.distinguishing_word d1 d2 = None);
  let d3 = Dfa.determinize (Compile.to_nfa (p "(a.b)*.a")) in
  check "different" false (Dfa.equal_lang d1 d3);
  match Dfa.distinguishing_word d1 d3 with
  | Some w -> check "witness distinguishes" true (Dfa.accepts d1 w <> Dfa.accepts d3 w)
  | None -> Alcotest.fail "expected a distinguishing word"

let test_is_empty () =
  check "empty regex" true (Dfa.is_empty_lang (Dfa.determinize (Compile.to_nfa Regex.empty)));
  check "nonempty" false (Dfa.is_empty_lang (Dfa.determinize (Compile.to_nfa (p "a"))))

let test_to_nfa_roundtrip () =
  let d = Dfa.determinize ~alphabet:[ "a"; "b" ] (Compile.to_nfa (p "a.b*")) in
  let n = Dfa.to_nfa d in
  List.iter
    (fun w -> check "dfa/to_nfa agree" true (Dfa.accepts d w = Nfa.accepts n w))
    [ []; [ "a" ]; [ "a"; "b" ]; [ "b" ]; [ "a"; "b"; "b" ] ]

(* -------------------------------------------------------------------- *)
(* Elim *)

let test_elim_simple () =
  let r = p "(a+b)*.c" in
  let r' = Elim.to_regex (Compile.to_nfa r) in
  check "same language" true (Compile.equal_lang r r')

let test_elim_empty () =
  let e = Nfa.make ~n_states:1 ~starts:[ 0 ] ~finals:[] ~trans:[] in
  check "empty" true (Regex.is_empty_lang (Elim.to_regex e))

let test_elim_epsilon () =
  let eps = Nfa.make ~n_states:1 ~starts:[ 0 ] ~finals:[ 0 ] ~trans:[] in
  check "epsilon in language" true (Regex.nullable (Elim.to_regex eps))

(* -------------------------------------------------------------------- *)
(* Pta *)

let test_pta_basic () =
  let t = Pta.build [ [ "b"; "t"; "c" ]; [ "c" ] ] in
  check_int "states: eps, b, c(final), bt, btc" 5 (Pta.n_states t);
  check "accepts btc" true (Nfa.accepts t.Pta.nfa [ "b"; "t"; "c" ]);
  check "accepts c" true (Nfa.accepts t.Pta.nfa [ "c" ]);
  check "rejects b" false (Nfa.accepts t.Pta.nfa [ "b" ]);
  check "rejects eps" false (Nfa.accepts t.Pta.nfa []);
  Alcotest.(check (list (list string)))
    "words recovered" [ [ "b"; "t"; "c" ]; [ "c" ] ] (Pta.words t)

let test_pta_bfs_order () =
  let t = Pta.build [ [ "a"; "a" ]; [ "b" ] ] in
  (* BFS: 0=eps, 1=a, 2=b, 3=aa *)
  Alcotest.(check (list string)) "prefix of state 1" [ "a" ] t.Pta.prefix.(1);
  Alcotest.(check (list string)) "prefix of state 2" [ "b" ] t.Pta.prefix.(2);
  Alcotest.(check (list string)) "prefix of state 3" [ "a"; "a" ] t.Pta.prefix.(3)

let test_pta_duplicates_and_eps () =
  let t = Pta.build [ [ "a" ]; [ "a" ]; [] ] in
  check_int "two states" 2 (Pta.n_states t);
  check "accepts eps" true (Nfa.accepts t.Pta.nfa []);
  Alcotest.check_raises "empty list rejected" (Invalid_argument "Pta.build: empty word list")
    (fun () -> ignore (Pta.build []))

(* -------------------------------------------------------------------- *)
(* Cross-representation properties *)

let gen_regex =
  let open QCheck.Gen in
  let sym = oneofl [ "a"; "b"; "c" ] in
  fix
    (fun self n ->
      if n <= 1 then
        frequency [ (6, map Regex.sym sym); (1, return Regex.epsilon); (1, return Regex.empty) ]
      else
        frequency
          [
            (3, map Regex.sym sym);
            (2, map2 (fun a b -> Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
            (3, map2 (fun a b -> Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
            (2, map Regex.star (self (n - 1)));
          ])
    8

let arb_regex = QCheck.make ~print:Regex.to_string gen_regex
let gen_word = QCheck.Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ]))

let gen_words =
  QCheck.Gen.(list_size (int_range 1 6) (list_size (int_bound 4) (oneofl [ "a"; "b" ])))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Glushkov agrees with derivatives" ~count:800
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        Nfa.accepts (Compile.to_nfa r) w = Deriv.matches r w);
    Test.make ~name:"determinize preserves acceptance" ~count:500
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        let nfa = Compile.to_nfa r in
        Dfa.accepts (Dfa.determinize nfa) w = Nfa.accepts nfa w);
    Test.make ~name:"minimize preserves acceptance" ~count:500 (pair arb_regex (make gen_word))
      (fun (r, w) ->
        let d = Dfa.determinize (Compile.to_nfa r) in
        Dfa.accepts (Dfa.minimize d) w = Dfa.accepts d w);
    Test.make ~name:"minimize is idempotent on size" ~count:300 arb_regex (fun r ->
        let m = Dfa.minimize (Dfa.determinize (Compile.to_nfa r)) in
        (Dfa.minimize m).Dfa.n_states = m.Dfa.n_states);
    Test.make ~name:"elimination roundtrip preserves language" ~count:300
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        Deriv.matches (Elim.to_regex (Compile.to_nfa r)) w = Deriv.matches r w);
    Test.make ~name:"complement flips acceptance" ~count:400 (pair arb_regex (make gen_word))
      (fun (r, w) ->
        let d = Dfa.determinize ~alphabet:[ "a"; "b"; "c" ] (Compile.to_nfa r) in
        Dfa.accepts (Dfa.complement d) w = not (Dfa.accepts d w));
    Test.make ~name:"inter accepts iff both" ~count:300
      (triple arb_regex arb_regex (make gen_word)) (fun (r1, r2, w) ->
        let d1 = Dfa.determinize (Compile.to_nfa r1) in
        let d2 = Dfa.determinize (Compile.to_nfa r2) in
        Dfa.accepts (Dfa.inter d1 d2) w = (Dfa.accepts d1 w && Dfa.accepts d2 w));
    Test.make ~name:"reverse twice preserves acceptance" ~count:300
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        let a = Compile.to_nfa r in
        Nfa.accepts (Nfa.reverse (Nfa.reverse a)) w = Nfa.accepts a w);
    Test.make ~name:"trim preserves acceptance" ~count:300 (pair arb_regex (make gen_word))
      (fun (r, w) ->
        let a = Compile.to_nfa r in
        Nfa.accepts (Nfa.trim a) w = Nfa.accepts a w);
    Test.make ~name:"PTA accepts exactly its words" ~count:300 (make gen_words) (fun words ->
        let t = Pta.build words in
        List.for_all (fun w -> Nfa.accepts t.Pta.nfa w) words
        && Pta.words t = List.sort_uniq compare words);
    Test.make ~name:"quotient over-approximates" ~count:300 (pair arb_regex (make gen_word))
      (fun (r, w) ->
        let a = Compile.to_nfa r in
        let n = Nfa.n_states a in
        (* partition pairs of adjacent states *)
        let partition = Array.init n (fun i -> i / 2) in
        (not (Nfa.accepts a w)) || Nfa.accepts (Nfa.quotient a ~partition) w);
    Test.make ~name:"shortest_accepted is accepted and minimal-ish" ~count:300 arb_regex
      (fun r ->
        let a = Compile.to_nfa r in
        match Nfa.shortest_accepted a with
        | None -> Nfa.is_empty_lang a
        | Some w ->
            Nfa.accepts a w
            && List.for_all (fun w' -> List.length w' >= List.length w)
                 (Nfa.enumerate a ~max_len:(List.length w)));
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "automata.nfa",
      [
        t "accepts" test_nfa_accepts;
        t "validation" test_nfa_make_validation;
        t "reverse" test_nfa_reverse;
        t "union" test_nfa_union;
        t "trim" test_nfa_trim;
        t "trim empty" test_nfa_trim_empty;
        t "quotient" test_nfa_quotient;
        t "shortest" test_nfa_shortest;
        t "enumerate" test_nfa_enumerate;
      ] );
    ( "automata.compile",
      [
        t "paper query" test_glushkov_paper_query;
        t "nullable seq" test_glushkov_nullable_seq;
        t "position count" test_glushkov_sizes;
      ] );
    ( "automata.dfa",
      [
        t "determinize" test_determinize_equiv;
        t "minimize canonical size" test_minimize_canonical_size;
        t "minimize preserves language" test_minimize_preserves_language;
        t "complement" test_complement;
        t "inter/union" test_product_inter_union;
        t "mixed alphabets" test_product_mixed_alphabets;
        t "inclusion/equality" test_inclusion_equal;
        t "emptiness" test_is_empty;
        t "to_nfa" test_to_nfa_roundtrip;
      ] );
    ( "automata.elim",
      [ t "simple" test_elim_simple; t "empty" test_elim_empty; t "epsilon" test_elim_epsilon ] );
    ( "automata.pta",
      [
        t "basic" test_pta_basic;
        t "bfs order" test_pta_bfs_order;
        t "duplicates and eps" test_pta_duplicates_and_eps;
      ] );
    ("automata.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
