(* Tests for the extension modules: JSON codec, graph editing,
   reachability index, Antimirov construction, Brzozowski minimization,
   binary RPQs, DFA-based evaluation, baseline learners, session
   journals, sequential strategy. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Binary = Gps_query.Binary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)

(* -------------------------------------------------------------------- *)
(* Json *)

let test_json_roundtrip_graph () =
  let g = Datasets.figure1 () in
  let g' = Json.of_string (Json.to_string g) in
  check_int "nodes" (Digraph.n_nodes g) (Digraph.n_nodes g');
  check_int "edges" (Digraph.n_edges g) (Digraph.n_edges g');
  Digraph.iter_edges
    (fun e ->
      let src = Option.get (Digraph.node_of_name g' (Digraph.node_name g e.Digraph.src)) in
      let dst = Option.get (Digraph.node_of_name g' (Digraph.node_name g e.Digraph.dst)) in
      let lbl = Option.get (Digraph.label_of_name g' (Digraph.label_name g e.Digraph.lbl)) in
      check "edge kept" true (Digraph.mem_edge g' ~src ~lbl ~dst))
    g

let test_json_values () =
  let v = Json.value_of_string {| {"a": [1, true, null, "x\n\"y\""], "b": {"c": 2.5}} |} in
  (match Json.member "a" v with
  | Some (Json.Array [ Json.Number 1.0; Json.Bool true; Json.Null; Json.String s ]) ->
      Alcotest.(check string) "escapes decoded" "x\n\"y\"" s
  | _ -> Alcotest.fail "bad array decoding");
  (match Json.member "b" v with
  | Some inner -> check "nested" true (Json.member "c" inner = Some (Json.Number 2.5))
  | None -> Alcotest.fail "missing b");
  (* roundtrip through the printer *)
  let again = Json.value_of_string (Json.value_to_string v) in
  check "value roundtrip" true (again = v);
  let pretty = Json.value_of_string (Json.value_to_string ~pretty:true v) in
  check "pretty roundtrip" true (pretty = v)

let test_json_unicode_escape () =
  match Json.value_of_string {| "é€" |} with
  | Json.String s -> Alcotest.(check string) "utf-8 encoded" "\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "expected a string"

let test_json_errors () =
  let fails s =
    match Json.value_of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "{";
  fails "[1,]";
  fails "{\"a\" 1}";
  fails "nul";
  fails "\"unterminated";
  fails "1 2";
  (* shape errors for graphs *)
  match Json.of_string {| {"nodes": []} |} with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "graph without edges field must be rejected"

let test_json_isolated_nodes () =
  let g = Json.of_string {| {"nodes": ["lonely"], "edges": [{"src":"a","label":"x","dst":"b"}]} |} in
  check_int "three nodes" 3 (Digraph.n_nodes g);
  check "lonely kept" true (Digraph.node_of_name g "lonely" <> None)

(* -------------------------------------------------------------------- *)
(* Edit *)

let test_edit_induced () =
  let g = Datasets.figure1 () in
  let sub = Edit.induced g [ node g "N2"; node g "N1"; node g "N4" ] in
  check_int "three nodes" 3 (Digraph.n_nodes sub);
  (* edges among members: N2-bus->N1, N1-tram->N4, N1-bus->N4 *)
  check_int "three edges" 3 (Digraph.n_edges sub);
  check "names preserved" true (Digraph.node_of_name sub "N1" <> None)

let test_edit_filter_labels () =
  let g = Datasets.figure1 () in
  let transport = Edit.filter_labels g ~keep:(fun l -> l = "tram" || l = "bus") in
  check_int "nodes kept" (Digraph.n_nodes g) (Digraph.n_nodes transport);
  check_int "transport edges only" 6 (Digraph.n_edges transport);
  check "no cinema label" true (Digraph.label_of_name transport "cinema" = None
                                || Digraph.fold_edges (fun acc e ->
                                       acc && Digraph.label_name transport e.Digraph.lbl <> "cinema")
                                     true transport)

let test_edit_remove_node () =
  let g = Datasets.figure1 () in
  let g' = Edit.remove_node g (node g "N1") in
  check_int "one fewer node" (Digraph.n_nodes g - 1) (Digraph.n_nodes g');
  check "N1 gone" true (Digraph.node_of_name g' "N1" = None);
  (* removing N1 cuts N2's route to C1 via tram *)
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  check "N2 no longer selected" false (Eval.select g' q).(node g' "N2")

let test_edit_remove_edge () =
  let g = Datasets.figure1 () in
  let n4 = node g "N4" and c1 = node g "C1" in
  let lbl = Option.get (Digraph.label_of_name g "cinema") in
  let g' = Edit.remove_edge g { Digraph.src = n4; lbl; dst = c1 } in
  check_int "one fewer edge" (Digraph.n_edges g - 1) (Digraph.n_edges g');
  let q = Rpq.of_string_exn "cinema" in
  check "N4 lost its cinema" false (Eval.select g' q).(node g' "N4");
  check "N6 keeps its cinema" true (Eval.select g' q).(node g' "N6")

let test_edit_merge_nodes () =
  let g = Codec.of_edges [ ("a", "x", "b"); ("c", "y", "b"); ("b", "z", "c") ] in
  let merged = Edit.merge_nodes g ~into:(node g "a") (node g "c") in
  check_int "one fewer node" 2 (Digraph.n_nodes merged);
  let a = node merged "a" and b = node merged "b" in
  let y = Option.get (Digraph.label_of_name merged "y") in
  let z = Option.get (Digraph.label_of_name merged "z") in
  check "c's out-edge moved" true (Digraph.mem_edge merged ~src:a ~lbl:y ~dst:b);
  check "c's in-edge moved" true (Digraph.mem_edge merged ~src:b ~lbl:z ~dst:a);
  Alcotest.check_raises "self merge"
    (Invalid_argument "Edit.merge_nodes: cannot merge a node into itself") (fun () ->
      ignore (Edit.merge_nodes g ~into:(node g "a") (node g "a")))

let test_edit_relabel () =
  let g = Datasets.figure1 () in
  let g' = Edit.relabel g ~from_label:"tram" ~to_label:"bus" in
  check "no tram edges left" true
    (Digraph.fold_edges
       (fun acc e -> acc && Digraph.label_name g' e.Digraph.lbl <> "tram")
       true g');
  (* N1 had both tram->N4 and bus->N4: they collapse into one edge *)
  check_int "collapsed duplicate" (Digraph.n_edges g - 1) (Digraph.n_edges g')

(* -------------------------------------------------------------------- *)
(* Reach *)

let test_reach_figure1 () =
  let g = Datasets.figure1 () in
  let idx = Reach.build g in
  check "N2 reaches C1" true (Reach.reachable idx (node g "N2") (node g "C1"));
  check "N5 does not reach C1" false (Reach.reachable idx (node g "N5") (node g "C1"));
  check "reflexive" true (Reach.reachable idx (node g "N5") (node g "N5"));
  check "any" true
    (Reach.reachable_any idx (node g "N2") [ node g "C1"; node g "C2" ]);
  check_int "C1 reaches only itself" 1 (Reach.count_from idx (node g "C1"))

let test_reach_filtered () =
  let g = Datasets.figure1 () in
  let idx = Reach.build_filtered g ~keep:(fun l -> l = "tram" || l = "bus") in
  check "transport-only: N2 reaches N4" true (Reach.reachable idx (node g "N2") (node g "N4"));
  check "transport-only: N4 does not reach C1" false
    (Reach.reachable idx (node g "N4") (node g "C1"))

let test_reach_cycle () =
  let g = Codec.of_edges [ ("a", "x", "b"); ("b", "x", "c"); ("c", "x", "a"); ("d", "y", "a") ] in
  let idx = Reach.build g in
  check "within scc" true (Reach.reachable idx (node g "a") (node g "c"));
  check "into scc" true (Reach.reachable idx (node g "d") (node g "b"));
  check "not back out" false (Reach.reachable idx (node g "a") (node g "d"));
  check_int "a reaches 3" 3 (Reach.count_from idx (node g "a"))

(* -------------------------------------------------------------------- *)
(* Antimirov / Brzozowski *)

let p = Gps_regex.Parse.parse_exn

let test_antimirov_membership () =
  let r = p "(tram+bus)*.cinema" in
  check "cinema" true (Gps_regex.Antimirov.matches r [ "cinema" ]);
  check "bus.tram.cinema" true (Gps_regex.Antimirov.matches r [ "bus"; "tram"; "cinema" ]);
  check "not bus" false (Gps_regex.Antimirov.matches r [ "bus" ]);
  check "not eps" false (Gps_regex.Antimirov.matches r [])

let test_antimirov_linear_terms () =
  let r = p "(a+b)*.c.(a.b)*" in
  (* Antimirov guarantees at most size-of-regex+1 distinct terms *)
  check "few terms" true
    (List.length (Gps_regex.Antimirov.terms r) <= Gps_regex.Regex.size r + 1)

let test_antimirov_nfa () =
  let open Gps_automata in
  let r = p "(tram+bus)*.cinema" in
  let a = Compile.to_nfa_antimirov r in
  check "accepts" true (Nfa.accepts a [ "tram"; "cinema" ]);
  check "rejects" false (Nfa.accepts a [ "cinema"; "tram" ]);
  check "not larger than Glushkov" true
    (Nfa.n_states a <= Nfa.n_states (Compile.to_nfa r))

let test_brzozowski_minimal () =
  let open Gps_automata in
  let r = p "(a+b)*.a.b" in
  let hopcroft = Dfa.minimize (Dfa.determinize (Compile.to_nfa r)) in
  let brzozowski = Dfa.minimize_brzozowski (Compile.to_nfa r) in
  check "same language" true (Dfa.equal_lang hopcroft brzozowski);
  (* both minimal: same number of live states *)
  check_int "same live size" (Dfa.n_live_states hopcroft) (Dfa.n_live_states brzozowski)

(* -------------------------------------------------------------------- *)
(* Binary RPQ *)

let test_binary_targets_figure1 () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let targets = Binary.targets g q (node g "N2") in
  let names = List.sort compare (List.map (Digraph.node_name g) targets) in
  (* from N2 one can end a q-walk in C1 (via N1/N4) or C2? N2 cannot reach
     N6, so only C1 *)
  Alcotest.(check (list string)) "targets of N2" [ "C1" ] names;
  check "pair answer" true (Binary.is_answer g q ~src:(node g "N2") ~dst:(node g "C1"));
  check "non-answer" false (Binary.is_answer g q ~src:(node g "N2") ~dst:(node g "C2"))

let test_binary_epsilon_pairs () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "bus*" in
  (* epsilon in language: (v, v) is an answer for every v *)
  check "reflexive pair" true (Binary.is_answer g q ~src:(node g "C1") ~dst:(node g "C1"));
  check "bus pair" true (Binary.is_answer g q ~src:(node g "N2") ~dst:(node g "N3"))

let test_binary_witness () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  match Binary.witness g q ~src:(node g "N2") ~dst:(node g "C1") with
  | Some w ->
      check "starts at src" true (List.hd w.Gps_query.Witness.walk = node g "N2");
      check "ends at dst" true
        (List.nth w.Gps_query.Witness.walk (List.length w.Gps_query.Witness.walk - 1)
        = node g "C1");
      check "word in language" true (Rpq.matches_word q w.Gps_query.Witness.word)
  | None -> Alcotest.fail "witness expected"

let test_binary_count () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "cinema" in
  (* exactly N4->C1 and N6->C2 *)
  check_int "two pairs" 2 (Binary.count_pairs g q)

(* -------------------------------------------------------------------- *)
(* select_via_dfa *)

let test_eval_dfa_agrees () =
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:2 in
  List.iter
    (fun qs ->
      let q = Rpq.of_string_exn qs in
      check ("dfa/nfa eval agree on " ^ qs) true (Eval.select g q = Eval.select_via_dfa g q))
    [ "cinema"; "(tram+bus)*.cinema"; "metro*.park"; "bus.bus*"; "zzz"; "eps" ]

(* -------------------------------------------------------------------- *)
(* Baseline learners *)

let paper_sample g =
  let s = Gps_learning.Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  let s = Gps_learning.Sample.validate s (node g "N2") [ "bus"; "tram"; "cinema" ] in
  Gps_learning.Sample.validate s (node g "N6") [ "cinema" ]

let test_baseline_disjunction () =
  let g = Datasets.figure1 () in
  match Gps_learning.Baseline.disjunction g (paper_sample g) with
  | Gps_learning.Learner.Learned q ->
      check "consistent" true
        (Eval.consistent g q ~pos:[ node g "N2"; node g "N6" ] ~neg:[ node g "N5" ]);
      (* no generalization: N1 (selected by the goal) is NOT selected *)
      check "does not generalize" false (Eval.select g q).(node g "N1")
  | Gps_learning.Learner.Failed _ -> Alcotest.fail "expected success"

let test_baseline_label_union () =
  let g = Datasets.figure1 () in
  match Gps_learning.Baseline.label_union g (paper_sample g) with
  | Gps_learning.Learner.Learned q ->
      check "consistent" true
        (Eval.consistent g q ~pos:[ node g "N2"; node g "N6" ] ~neg:[ node g "N5" ])
  | Gps_learning.Learner.Failed _ -> Alcotest.fail "expected success"

let test_baseline_empty_sample () =
  let g = Datasets.figure1 () in
  match Gps_learning.Baseline.disjunction g Gps_learning.Sample.empty with
  | Gps_learning.Learner.Learned q -> check_int "selects nothing" 0 (Eval.count g q)
  | Gps_learning.Learner.Failed _ -> Alcotest.fail "empty sample is fine"

(* -------------------------------------------------------------------- *)
(* Journal *)

let test_journal_roundtrip () =
  let entries =
    [
      Gps_interactive.Journal.Label (Some "N2", `Zoom);
      Gps_interactive.Journal.Label (Some "N2", `Pos);
      Gps_interactive.Journal.Validate (Some "N2", [ "bus"; "bus"; "cinema" ]);
      Gps_interactive.Journal.Satisfied ("bus*.cinema", true);
      Gps_interactive.Journal.Label (None, `Neg);
    ]
  in
  match Gps_interactive.Journal.of_json (Gps_interactive.Journal.to_json entries) with
  | Ok decoded -> check "roundtrip" true (decoded = entries)
  | Error e -> Alcotest.fail e

let test_journal_record_replay () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let user, journal_of =
    Gps_interactive.Journal.recording (Gps_interactive.Oracle.perfect ~goal)
  in
  let strategy = Gps_interactive.Strategy.smart in
  let t1 = Gps_interactive.Simulate.run g ~strategy ~user in
  let journal = journal_of () in
  check "journal non-empty" true (journal <> []);
  let t2 =
    Gps_interactive.Simulate.run g ~strategy
      ~user:(Gps_interactive.Journal.replayer journal)
  in
  check "identical outcome" true
    (Rpq.to_string t1.Gps_interactive.Simulate.outcome.Gps_interactive.Session.query
    = Rpq.to_string t2.Gps_interactive.Simulate.outcome.Gps_interactive.Session.query);
  check "identical question count" true
    (t1.Gps_interactive.Simulate.questions = t2.Gps_interactive.Simulate.questions)

let test_journal_divergence_detected () =
  let journal = [ Gps_interactive.Journal.Label (Some "WRONG", `Pos) ] in
  let g = Datasets.figure1 () in
  let user = Gps_interactive.Journal.replayer journal in
  match Gps_interactive.Simulate.run g ~strategy:Gps_interactive.Strategy.smart ~user with
  | exception Failure msg -> check "mentions divergence" true (String.length msg > 0)
  | _ -> Alcotest.fail "divergence must raise"

let test_journal_bad_json () =
  check "parse error surfaces" true
    (Result.is_error (Gps_interactive.Journal.of_json "[{\"kind\": \"launch\"}]"));
  check "not an array" true (Result.is_error (Gps_interactive.Journal.of_json "{}"))

(* -------------------------------------------------------------------- *)
(* sequential strategy *)

let test_sequential_strategy () =
  let g = Datasets.figure1 () in
  let ctx =
    { Gps_interactive.Strategy.graph = g; excluded = (fun _ -> false); negatives = []; bound = 3 }
  in
  check "picks lowest id" true
    (Gps_interactive.Strategy.sequential.Gps_interactive.Strategy.choose ctx = Some 0);
  check "by_name knows it" true
    (Result.is_ok (Gps_interactive.Strategy.by_name ~seed:0 "sequential"))

(* -------------------------------------------------------------------- *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let arb_graph =
    make
      Gen.(
        let* n = int_range 2 10 in
        let* m = int_range 1 25 in
        let* seed = int_range 0 9_999 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b"; "c" ] ~seed))
  in
  let gen_regex =
    Gen.(
      let sym = oneofl [ "a"; "b"; "c" ] in
      fix
        (fun self n ->
          if n <= 1 then map Gps_regex.Regex.sym sym
          else
            frequency
              [
                (3, map Gps_regex.Regex.sym sym);
                (2, map2 (fun a b -> Gps_regex.Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
                (3, map2 (fun a b -> Gps_regex.Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (2, map Gps_regex.Regex.star (self (n - 1)));
              ])
        8)
  in
  let arb_regex = make ~print:Gps_regex.Regex.to_string gen_regex in
  let gen_word = Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ])) in
  [
    Test.make ~name:"antimirov agrees with brzozowski derivatives" ~count:500
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        Gps_regex.Antimirov.matches r w = Gps_regex.Deriv.matches r w);
    Test.make ~name:"antimirov NFA agrees with Glushkov NFA" ~count:400
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        let open Gps_automata in
        Nfa.accepts (Compile.to_nfa_antimirov r) w = Nfa.accepts (Compile.to_nfa r) w);
    Test.make ~name:"brzozowski minimization equals hopcroft (live states + language)"
      ~count:200 arb_regex (fun r ->
        let open Gps_automata in
        let nfa = Compile.to_nfa r in
        let h = Dfa.minimize (Dfa.determinize nfa) in
        let b = Dfa.minimize_brzozowski nfa in
        Dfa.equal_lang h b && Dfa.n_live_states h = Dfa.n_live_states b);
    Test.make ~name:"binary targets agree with monadic selection" ~count:200
      (pair arb_graph arb_regex) (fun (g, r) ->
        Binary.agree_with_monadic g (Rpq.of_regex r));
    Test.make ~name:"dfa evaluation agrees with nfa evaluation" ~count:200
      (pair arb_graph arb_regex) (fun (g, r) ->
        let q = Rpq.of_regex r in
        Eval.select g q = Eval.select_via_dfa g q);
    Test.make ~name:"json graph roundtrip" ~count:200 arb_graph (fun g ->
        let g' = Json.of_string (Json.to_string g) in
        Digraph.n_nodes g = Digraph.n_nodes g' && Digraph.n_edges g = Digraph.n_edges g');
    Test.make ~name:"reach index agrees with BFS" ~count:200 arb_graph (fun g ->
        let idx = Reach.build g in
        Digraph.fold_nodes
          (fun acc v ->
            let bfs = Traverse.reachable g v in
            acc
            && Digraph.fold_nodes (fun acc u -> acc && bfs.(u) = Reach.reachable idx v u) true g)
          true g);
    Test.make ~name:"remove_node removes all incident edges" ~count:200 arb_graph (fun g ->
        let v = 0 in
        let name = Digraph.node_name g v in
        let g' = Edit.remove_node g v in
        Digraph.node_of_name g' name = None
        && Digraph.fold_edges
             (fun acc e ->
               acc
               && Digraph.node_name g' e.Digraph.src <> name
               && Digraph.node_name g' e.Digraph.dst <> name)
             true g');
    Test.make ~name:"induced subgraph never gains edges" ~count:200 arb_graph (fun g ->
        let sub = Edit.induced g (List.filteri (fun i _ -> i mod 2 = 0) (Digraph.nodes g)) in
        Digraph.n_edges sub <= Digraph.n_edges g);
    Test.make ~name:"baseline disjunction is always consistent" ~count:100
      (pair arb_graph arb_regex) (fun (g, r) ->
        let goal = Rpq.of_regex r in
        let sel = Eval.select g goal in
        let nodes = Digraph.nodes g in
        let pos = List.filteri (fun i _ -> i < 2) (List.filter (fun v -> sel.(v)) nodes) in
        let neg =
          List.filteri (fun i _ -> i < 2) (List.filter (fun v -> not sel.(v)) nodes)
        in
        let s = List.fold_left Gps_learning.Sample.add_pos Gps_learning.Sample.empty pos in
        let s = List.fold_left Gps_learning.Sample.add_neg s neg in
        match Gps_learning.Baseline.disjunction g s with
        | Gps_learning.Learner.Learned q -> Eval.consistent g q ~pos ~neg
        | Gps_learning.Learner.Failed _ -> pos = [] || true);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext.json",
      [
        t "graph roundtrip" test_json_roundtrip_graph;
        t "values" test_json_values;
        t "unicode escapes" test_json_unicode_escape;
        t "errors" test_json_errors;
        t "isolated nodes" test_json_isolated_nodes;
      ] );
    ( "ext.edit",
      [
        t "induced" test_edit_induced;
        t "filter labels" test_edit_filter_labels;
        t "remove node" test_edit_remove_node;
        t "remove edge" test_edit_remove_edge;
        t "merge nodes" test_edit_merge_nodes;
        t "relabel" test_edit_relabel;
      ] );
    ( "ext.reach",
      [
        t "figure1" test_reach_figure1;
        t "filtered" test_reach_filtered;
        t "cycle" test_reach_cycle;
      ] );
    ( "ext.antimirov",
      [
        t "membership" test_antimirov_membership;
        t "linear terms" test_antimirov_linear_terms;
        t "nfa" test_antimirov_nfa;
        t "brzozowski minimization" test_brzozowski_minimal;
      ] );
    ( "ext.binary",
      [
        t "targets" test_binary_targets_figure1;
        t "epsilon pairs" test_binary_epsilon_pairs;
        t "witness" test_binary_witness;
        t "count" test_binary_count;
      ] );
    ("ext.eval_dfa", [ t "agrees with nfa" test_eval_dfa_agrees ]);
    ( "ext.baseline",
      [
        t "disjunction" test_baseline_disjunction;
        t "label union" test_baseline_label_union;
        t "empty sample" test_baseline_empty_sample;
      ] );
    ( "ext.journal",
      [
        t "json roundtrip" test_journal_roundtrip;
        t "record/replay" test_journal_record_replay;
        t "divergence" test_journal_divergence_detected;
        t "bad json" test_journal_bad_json;
      ] );
    ("ext.strategy", [ t "sequential" test_sequential_strategy ]);
    ("ext.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
