(* Tests for the fifth wave: the durable store (persistence, crash
   recovery, compaction), undoable sessions, and fuzzing of the parsers
   (regex, JSON, edge-list) — they must reject garbage with errors, never
   crash, and be stable on valid input. *)

open Gps_graph
module History = Gps_interactive.History
module Session = Gps_interactive.Session
module Strategy = Gps_interactive.Strategy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_temp_store f =
  let path = Filename.temp_file "gps_store" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* -------------------------------------------------------------------- *)
(* Store *)

let test_store_roundtrip () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      Store.link s "N1" "tram" "N4";
      Store.link s "N4" "cinema" "C1";
      ignore (Store.add_node s "lonely");
      Store.close s;
      let s2 = Store.openfile path in
      let g = Store.graph s2 in
      check_int "4 nodes" 4 (Digraph.n_nodes g);
      check_int "2 edges" 2 (Digraph.n_edges g);
      check "lonely survived" true (Digraph.node_of_name g "lonely" <> None);
      Store.close s2)

let test_store_idempotent_appends () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      Store.link s "a" "x" "b";
      Store.link s "a" "x" "b";
      Store.link s "a" "x" "b";
      Store.sync s;
      Store.close s;
      let size = (Unix.stat path).Unix.st_size in
      ignore size;
      let s2 = Store.openfile path in
      check_int "one edge" 1 (Digraph.n_edges (Store.graph s2));
      Store.close s2)

let test_store_torn_tail_recovery () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      Store.link s "a" "x" "b";
      Store.close s;
      (* simulate a crash mid-append: a record without the newline *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "E\tc\ty\td";
      close_out oc;
      let s2 = Store.openfile path in
      let g = Store.graph s2 in
      check_int "torn record dropped" 1 (Digraph.n_edges g);
      check "c never appeared" true (Digraph.node_of_name g "c" = None);
      (* and appending still works after recovery *)
      Store.link s2 "b" "z" "e";
      Store.close s2;
      let s3 = Store.openfile path in
      check_int "two edges after recovery+append" 2 (Digraph.n_edges (Store.graph s3));
      Store.close s3)

let test_store_corrupt_middle_detected () =
  with_temp_store (fun path ->
      let oc = open_out_bin path in
      output_string oc "E\ta\tx\tb\nGARBAGE LINE\nE\tb\tx\tc\n";
      close_out oc;
      match Store.openfile path with
      | exception Failure msg -> check "mentions corruption" true (String.length msg > 0)
      | s ->
          Store.close s;
          Alcotest.fail "corruption must be detected")

let test_store_compact () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      (* create churn: many duplicate-producing appends via reopen *)
      for i = 0 to 9 do
        Store.link s "hub" "x" (Printf.sprintf "leaf%d" i)
      done;
      Store.sync s;
      let before = (Unix.stat path).Unix.st_size in
      Store.compact s;
      let after = (Unix.stat path).Unix.st_size in
      check "compaction not larger" true (after <= before + 32);
      (* graph intact, appends still work *)
      Store.link s "hub" "x" "leaf10";
      Store.close s;
      let s2 = Store.openfile path in
      check_int "11 edges" 11 (Digraph.n_edges (Store.graph s2));
      Store.close s2)

let test_store_rejects_bad_names () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      Alcotest.check_raises "tab in name"
        (Invalid_argument "Store: name \"a\\tb\" contains a tab or newline") (fun () ->
          ignore (Store.add_node s "a\tb"));
      Store.close s)

let test_store_use_after_close () =
  with_temp_store (fun path ->
      let s = Store.openfile path in
      Store.close s;
      Store.close s (* double close is fine *);
      Alcotest.check_raises "use after close" (Invalid_argument "Store: already closed")
        (fun () -> ignore (Store.add_node s "x")))

(* -------------------------------------------------------------------- *)
(* History / undo *)

let test_history_undo_label () =
  let g = Datasets.figure1 () in
  let h = History.start ~strategy:Strategy.smart g in
  check_int "depth 0" 0 (History.depth h);
  check "nothing to undo" true (History.undo h = None);
  match History.request h with
  | Session.Ask_label _ ->
      let h2 = History.answer_label h `Neg in
      check_int "depth 1" 1 (History.depth h2);
      let h3 = Option.get (History.undo h2) in
      check_int "depth back to 0" 0 (History.depth h3);
      (* same question is asked again *)
      check "same sample size" true
        (Gps_learning.Sample.size (Session.sample (History.current h3)) = 0)
  | _ -> Alcotest.fail "expected a label question"

let test_history_undo_restores_counts () =
  let g = Datasets.figure1 () in
  let h = History.start ~strategy:Strategy.smart g in
  let h = History.answer_label h `Zoom in
  let h = History.answer_label h `Zoom in
  check_int "two zooms" 2 (Session.questions (History.current h));
  let h = Option.get (History.undo h) in
  check_int "one zoom after undo" 1 (Session.questions (History.current h))

let test_history_full_session_with_undo () =
  (* answer wrong, undo, answer right: the final query matches a clean run *)
  let g = Datasets.figure1 () in
  let goal = Gps_query.Rpq.of_string_exn "tram*.restaurant" in
  let user = Gps_interactive.Oracle.perfect ~goal in
  let rec drive h ~sabotage =
    match History.request h with
    | Session.Finished o -> o
    | Session.Ask_label view ->
        let answer = user.Gps_interactive.Oracle.label g view in
        if sabotage then begin
          (* answer wrongly once, then undo and correct *)
          let wrong = match answer with `Pos -> `Neg | `Neg | `Zoom -> `Pos in
          let sabotaged = History.answer_label h wrong in
          let restored = Option.get (History.undo sabotaged) in
          drive (History.answer_label restored answer) ~sabotage:false
        end
        else drive (History.answer_label h answer) ~sabotage
    | Session.Ask_path tree ->
        drive (History.answer_path h (user.Gps_interactive.Oracle.validate g tree)) ~sabotage
    | Session.Propose q ->
        if user.Gps_interactive.Oracle.satisfied g q then drive (History.accept h) ~sabotage
        else drive (History.refine h) ~sabotage
  in
  let outcome = drive (History.start ~strategy:Strategy.smart g) ~sabotage:true in
  check "reaches the goal despite the undone mistake" true
    (Gps_query.Eval.select g outcome.Session.query = Gps_query.Eval.select g goal)

(* -------------------------------------------------------------------- *)
(* Fuzzing *)

let gen_garbage =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 40))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"regex parser never crashes on printable garbage" ~count:1000
      (make gen_garbage) (fun s ->
        match Gps_regex.Parse.parse s with Ok _ | Error _ -> true);
    Test.make ~name:"regex parser is stable on its own output" ~count:500 (make gen_garbage)
      (fun s ->
        match Gps_regex.Parse.parse s with
        | Error _ -> true
        | Ok r ->
            let printed = Gps_regex.Regex.to_string r in
            (match Gps_regex.Parse.parse printed with
            | Ok r' -> Gps_regex.Regex.equal r r'
            | Error _ -> false));
    Test.make ~name:"json parser never crashes on printable garbage" ~count:1000
      (make gen_garbage) (fun s ->
        match Json.value_of_string s with
        | _ -> true
        | exception Json.Parse_error _ -> true);
    Test.make ~name:"edge-list parser never crashes on printable garbage" ~count:1000
      (make gen_garbage) (fun s ->
        match Codec.of_string s with
        | _ -> true
        | exception Codec.Parse_error _ -> true);
    Test.make ~name:"store reopen is idempotent" ~count:50
      (make Gen.(list_size (int_bound 10) (pair (int_bound 5) (int_bound 5))))
      (fun pairs ->
        with_temp_store (fun path ->
            let s = Store.openfile path in
            List.iter
              (fun (a, b) ->
                Store.link s (Printf.sprintf "n%d" a) "x" (Printf.sprintf "n%d" b))
              pairs;
            Store.close s;
            let s2 = Store.openfile path in
            let g2 = Store.graph s2 in
            Store.close s2;
            let s3 = Store.openfile path in
            let g3 = Store.graph s3 in
            Store.close s3;
            Codec.to_string g2 = Codec.to_string g3));
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext5.store",
      [
        t "roundtrip" test_store_roundtrip;
        t "idempotent appends" test_store_idempotent_appends;
        t "torn tail recovery" test_store_torn_tail_recovery;
        t "corruption detected" test_store_corrupt_middle_detected;
        t "compaction" test_store_compact;
        t "bad names" test_store_rejects_bad_names;
        t "use after close" test_store_use_after_close;
      ] );
    ( "ext5.history",
      [
        t "undo label" test_history_undo_label;
        t "undo restores counts" test_history_undo_restores_counts;
        t "session with undone mistake" test_history_full_session_with_undo;
      ] );
    ("ext5.fuzz", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
