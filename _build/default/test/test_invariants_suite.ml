(* Invariant tests: properties the engine's documentation promises, pinned
   explicitly — immutability of session values, counter monotonicity,
   determinism of everything seeded. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Session = Gps_interactive.Session
module Strategy = Gps_interactive.Strategy
module Oracle = Gps_interactive.Oracle
module Simulate = Gps_interactive.Simulate
module Sample = Gps_learning.Sample

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)

let test_session_values_immutable () =
  (* answering from one state twice gives equal results; the original
     state is unaffected *)
  let g = Datasets.figure1 () in
  let s = Session.start ~strategy:Strategy.smart g in
  let q0 = Session.questions s in
  let s1 = Session.answer_label s `Neg in
  let s2 = Session.answer_label s `Neg in
  check_int "original untouched" q0 (Session.questions s);
  check_int "same question count" (Session.questions s1) (Session.questions s2);
  check "same sample" true (Sample.neg (Session.sample s1) = Sample.neg (Session.sample s2))

let test_counters_monotone () =
  let g = Generators.city (Generators.default_city ~districts:12) ~seed:3 in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let user = Oracle.perfect ~goal in
  let rec walk t last =
    match Session.request t with
    | Session.Finished _ -> ()
    | Session.Ask_label view ->
        let t' = Session.answer_label t (user.Oracle.label g view) in
        check "questions never decrease" true (Session.questions t' >= last);
        walk t' (Session.questions t')
    | Session.Ask_path tree ->
        let t' = Session.answer_path t (user.Oracle.validate g tree) in
        check "questions never decrease" true (Session.questions t' >= last);
        walk t' (Session.questions t')
    | Session.Propose q ->
        walk ((if user.Oracle.satisfied g q then Session.accept else Session.refine) t) last
  in
  walk (Session.start ~strategy:Strategy.smart g) 0

let test_sessions_deterministic () =
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:7 in
  let goal = Rpq.of_string_exn "metro*.museum" in
  let run () =
    let t = Simulate.run g ~strategy:(Strategy.random ~seed:9) ~user:(Oracle.perfect ~goal) in
    (t.Simulate.questions, Rpq.to_string t.Simulate.outcome.Session.query)
  in
  check "two identical runs" true (run () = run ())

let test_pruned_nodes_never_goal_selected () =
  (* soundness of pruning under a truthful user: a pruned node is never in
     the goal's answer (its paths are covered by true negatives) *)
  List.iter
    (fun seed ->
      let g = Generators.city (Generators.default_city ~districts:16) ~seed in
      let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
      let final = Simulate.final_state g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
      let goal_sel = Eval.select g goal in
      List.iter
        (fun v -> check "pruned implies not goal-selected" false goal_sel.(v))
        (Session.implied_neg final))
    [ 1; 2; 3; 4; 5 ]

let test_implied_positives_always_goal_selected () =
  List.iter
    (fun seed ->
      let g = Generators.city (Generators.default_city ~districts:16) ~seed in
      let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
      let final = Simulate.final_state g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
      let goal_sel = Eval.select g goal in
      List.iter
        (fun v -> check "implied positive is goal-selected" true goal_sel.(v))
        (Session.implied_pos final))
    [ 1; 2; 3; 4; 5 ]

let test_hypothesis_always_consistent_with_sample () =
  let g = Generators.bio ~nodes:80 ~seed:6 in
  let goal = Rpq.of_string_exn "interacts*.treats" in
  let user = Oracle.perfect ~goal in
  let rec walk t =
    (* the hypothesis is recomputed after each completed labeling round,
       so consistency with the sample is promised exactly at proposal and
       halt points (in between, a fresh positive may not be learned yet) *)
    (match (Session.hypothesis t, Session.request t) with
    | Some h, (Session.Propose _ | Session.Finished _) ->
        check "hypothesis consistent" true
          (Eval.consistent g h ~pos:(Sample.pos (Session.sample t))
             ~neg:(Sample.neg (Session.sample t)))
    | _ -> ());
    match Session.request t with
    | Session.Finished _ -> ()
    | Session.Ask_label view -> walk (Session.answer_label t (user.Oracle.label g view))
    | Session.Ask_path tree -> walk (Session.answer_path t (user.Oracle.validate g tree))
    | Session.Propose q ->
        walk ((if user.Oracle.satisfied g q then Session.accept else Session.refine) t)
  in
  walk (Session.start ~strategy:Strategy.smart g)

let test_rpq_display_stable () =
  (* printing is a pure function of the value *)
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  Alcotest.(check string) "stable" (Rpq.to_string q) (Rpq.to_string q);
  let via_fmt = Format.asprintf "%a" Rpq.pp q in
  Alcotest.(check string) "pp agrees" (Rpq.to_string q) via_fmt

let test_metrics_bounds () =
  let g = Datasets.figure1 () in
  List.iter
    (fun (goal, hyp) ->
      let m =
        Gps_query.Metrics.score g ~goal:(Rpq.of_string_exn goal)
          ~hypothesis:(Rpq.of_string_exn hyp)
      in
      let open Gps_query.Metrics in
      check "precision in [0,1]" true (m.precision >= 0.0 && m.precision <= 1.0);
      check "recall in [0,1]" true (m.recall >= 0.0 && m.recall <= 1.0);
      check "f1 in [0,1]" true (m.f1 >= 0.0 && m.f1 <= 1.0);
      check "f1 <= max(p,r)" true (m.f1 <= max m.precision m.recall +. 1e-9))
    [ ("bus", "tram"); ("cinema", "cinema"); ("(tram+bus)*.cinema", "bus"); ("zzz", "bus") ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "invariants.session",
      [
        t "values immutable" test_session_values_immutable;
        t "counters monotone" test_counters_monotone;
        t "deterministic" test_sessions_deterministic;
        t "pruning sound" test_pruned_nodes_never_goal_selected;
        t "implication sound" test_implied_positives_always_goal_selected;
        t "hypothesis consistent throughout" test_hypothesis_always_consistent_with_sample;
      ] );
    ( "invariants.misc",
      [ t "rpq display stable" test_rpq_display_stable; t "metrics bounds" test_metrics_bounds ] );
  ]
