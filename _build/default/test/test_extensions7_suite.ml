(* Tests for the seventh wave: conjunctive patterns and label repair. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Conjunctive = Gps_query.Conjunctive
module Repair = Gps_learning.Repair
module Sample = Gps_learning.Sample
module Static = Gps_learning.Static

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)
let q = Rpq.of_string_exn

let names g sel = List.sort compare (List.map (Digraph.node_name g) sel)

(* -------------------------------------------------------------------- *)
(* Conjunctive *)

let test_conjunctive_leaf_matches_all () =
  let g = Datasets.figure1 () in
  check_int "leaf matches everything" (Digraph.n_nodes g)
    (Conjunctive.count g (Conjunctive.leaf ()))

let test_conjunctive_single_atom_is_eval () =
  let g = Datasets.figure1 () in
  let query = q "(tram+bus)*.cinema" in
  check "one atom = plain evaluation" true
    (Conjunctive.select g (Conjunctive.all_of [ query ]) = Eval.select g query)

let test_conjunctive_intersection () =
  (* transpole stops that reach BOTH a cinema and a park by transport *)
  let g = Datasets.transpole () in
  let transport = "(metro+tram+bus)*" in
  let p = Conjunctive.all_of [ q (transport ^ ".cinema"); q (transport ^ ".park") ] in
  let both = Conjunctive.select g p in
  let cinema_only = Eval.select g (q (transport ^ ".cinema")) in
  let park_only = Eval.select g (q (transport ^ ".park")) in
  Digraph.iter_nodes
    (fun v -> check "conjunction = intersection" true (both.(v) = (cinema_only.(v) && park_only.(v))))
    g

let test_conjunctive_nested_target () =
  (* figure1: nodes with a bus edge to somewhere that has a restaurant *)
  let g = Datasets.figure1 () in
  let p = Conjunctive.pattern [ (q "bus", Conjunctive.pattern [ (q "restaurant", Conjunctive.leaf ()) ]) ] in
  (* N2 -bus-> N3 -restaurant-> R2 and N6 -bus-> N3 *)
  Alcotest.(check (list string)) "nested" [ "N2"; "N6" ] (names g (Conjunctive.select_nodes g p))

let test_conjunctive_unsatisfiable () =
  let g = Datasets.figure1 () in
  let p = Conjunctive.all_of [ q "cinema"; q "restaurant" ] in
  (* no node has both a cinema and a restaurant edge *)
  check_int "empty" 0 (Conjunctive.count g p)

let test_conjunctive_select_into () =
  let g = Datasets.figure1 () in
  (* nodes with a (tram+bus)* walk ending exactly at N4 *)
  let targets = Array.make (Digraph.n_nodes g) false in
  targets.(node g "N4") <- true;
  let sel = Conjunctive.select_into g (q "(tram+bus)*") ~targets in
  check "N1 reaches N4" true sel.(node g "N1");
  check "N2 reaches N4" true sel.(node g "N2");
  check "N4 trivially (eps)" true sel.(node g "N4");
  check "N3 cannot" false sel.(node g "N3");
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Conjunctive.select_into: targets size mismatch") (fun () ->
      ignore (Conjunctive.select_into g (q "bus") ~targets:[| true |]))

let test_conjunctive_pp () =
  let p =
    Conjunctive.pattern ~var:"x"
      [ (q "bus", Conjunctive.leaf ~var:"y" ()); (q "tram", Conjunctive.leaf ~var:"z" ()) ]
  in
  Alcotest.(check string) "render" "x(bus -> y, tram -> z)"
    (Format.asprintf "%a" Conjunctive.pp p)

(* -------------------------------------------------------------------- *)
(* Repair *)

let test_repair_consistent_sample () =
  let g = Datasets.figure1 () in
  let s = Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  check "no suggestions" true (Repair.suggest g s = [])

let test_repair_drop_positive () =
  (* +C1 (a sink) conflicts with any negative. Two repairs exist: drop the
     positive, or drop every negative (with none left, C1's ε path is
     uncovered). Both must be suggested and both must work. *)
  let g = Datasets.figure1 () in
  let s = Sample.of_names g ~pos:[ "C1"; "N2" ] ~neg:[ "N5" ] in
  match Repair.suggest g s with
  | [ Repair.Drop_positive v; Repair.Drop_negatives (v', negs) ] ->
      Alcotest.(check string) "the sink" "C1" (Digraph.node_name g v);
      Alcotest.(check string) "same node" "C1" (Digraph.node_name g v');
      Alcotest.(check (list string)) "withdraw N5" [ "N5" ]
        (List.map (Digraph.node_name g) negs);
      let repaired = Repair.apply s (Repair.Drop_positive v) in
      check "repaired is consistent" true (Static.check g repaired = Static.Consistent);
      check "other labels kept" true
        (Sample.is_pos repaired (node g "N2") && Sample.is_neg repaired (node g "N5"));
      let alt = Repair.apply s (Repair.Drop_negatives (v', negs)) in
      check "alternative also consistent" true (Static.check g alt = Static.Consistent)
  | other -> Alcotest.failf "unexpected suggestions (%d)" (List.length other)

let test_repair_drop_negative_alternative () =
  (* +R2's only path is eps... use a conflict where negatives are the
     culprit: v=N5 positive, negatives N3 and R1 cover all of N5's bounded
     paths? N5's paths: tram, restaurant, tram.restaurant. N3 covers
     restaurant (N3 -restaurant-> R2)?? N3's paths = {restaurant}; N5's
     word "tram" is covered by nobody unless a negative has tram. Use
     negative N1 (paths tram, bus, tram.cinema, bus.cinema...) and
     negative N3 (restaurant): together they cover tram, restaurant,
     and tram.restaurant? N1 has no tram.restaurant — but coverage is
     per-word: tram.restaurant must be a path of SOME negative. N1 covers
     tram.cinema not tram.restaurant. So craft a graph instead. *)
  let g =
    Codec.of_edges
      [ ("v", "a", "x"); ("n1", "a", "y"); ("n2", "b", "z") ]
  in
  let s = Sample.of_names g ~pos:[ "v" ] ~neg:[ "n1"; "n2" ] in
  (* v's only path "a" is covered by n1; dropping n1's label fixes it *)
  let suggestions = Repair.suggest g s in
  check "two suggestions" true (List.length suggestions = 2);
  let has_drop_neg =
    List.exists
      (function
        | Repair.Drop_negatives (v, negs) ->
            Digraph.node_name g v = "v"
            && List.map (Digraph.node_name g) negs = [ "n1" ]
        | Repair.Drop_positive _ -> false)
      suggestions
  in
  check "suggests dropping exactly n1" true has_drop_neg;
  let fix =
    List.find
      (function Repair.Drop_negatives _ -> true | Repair.Drop_positive _ -> false)
      suggestions
  in
  let repaired = Repair.apply s fix in
  check "consistent after repair" true (Static.check g repaired = Static.Consistent);
  check "n2 still negative" true (Sample.is_neg repaired (node g "n2"))

let test_repair_apply_preserves_validation () =
  let g = Datasets.figure1 () in
  let s = Sample.of_names g ~pos:[ "N2"; "C1" ] ~neg:[ "N5" ] in
  let s = Sample.validate s (node g "N2") [ "bus"; "bus"; "cinema" ] in
  let repaired = Repair.apply s (Repair.Drop_positive (node g "C1")) in
  check "validated path survives" true
    (Sample.validated repaired (node g "N2") = Some [ "bus"; "bus"; "cinema" ])

let test_repair_pp () =
  let g = Datasets.figure1 () in
  let out =
    Format.asprintf "%a" (Repair.pp_suggestion g) (Repair.Drop_positive (node g "C1"))
  in
  check "mentions node" true (String.length out > 0)

(* -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let arb_graph =
    make
      Gen.(
        let* n = int_range 3 10 in
        let* m = int_range 2 25 in
        let* seed = int_range 0 9_999 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b" ] ~seed))
  in
  [
    Test.make ~name:"conjunction of two atoms = intersection of selections" ~count:200 arb_graph
      (fun g ->
        let q1 = q "a.(a+b)*" and q2 = q "(a+b)*.b" in
        let conj = Conjunctive.select g (Conjunctive.all_of [ q1; q2 ]) in
        let s1 = Eval.select g q1 and s2 = Eval.select g q2 in
        Array.for_all Fun.id (Array.mapi (fun i c -> c = (s1.(i) && s2.(i))) conj));
    Test.make ~name:"select_into with all-true targets = Eval.select" ~count:200 arb_graph
      (fun g ->
        let query = q "a.b" in
        let targets = Array.make (Digraph.n_nodes g) true in
        Conjunctive.select_into g query ~targets = Eval.select g query);
    Test.make ~name:"repair suggestions restore consistency" ~count:100 arb_graph (fun g ->
        (* force conflicts: positives = two random nodes, negatives = two
           others; suggestions (if any) must each repair the sample *)
        let nodes = Digraph.nodes g in
        match nodes with
        | p1 :: p2 :: n1 :: n2 :: _ ->
            let s = Sample.add_pos (Sample.add_pos Sample.empty p1) p2 in
            let s = Sample.add_neg (Sample.add_neg s n1) n2 in
            List.for_all
              (fun sug ->
                (* a single suggestion fixes the node it targets; applying
                   all Drop_positive suggestions fixes everything *)
                match sug with
                | Repair.Drop_positive _ ->
                    let s' = Repair.apply s sug in
                    List.length (Static.conflicts g s') < List.length (Static.conflicts g s)
                | Repair.Drop_negatives (v, _) ->
                    let s' = Repair.apply s sug in
                    not (List.mem v (Static.conflicts g s')))
              (Repair.suggest g s)
        | _ -> true);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext7.conjunctive",
      [
        t "leaf" test_conjunctive_leaf_matches_all;
        t "single atom" test_conjunctive_single_atom_is_eval;
        t "intersection" test_conjunctive_intersection;
        t "nested target" test_conjunctive_nested_target;
        t "unsatisfiable" test_conjunctive_unsatisfiable;
        t "select_into" test_conjunctive_select_into;
        t "pp" test_conjunctive_pp;
      ] );
    ( "ext7.repair",
      [
        t "consistent sample" test_repair_consistent_sample;
        t "drop positive" test_repair_drop_positive;
        t "drop negative alternative" test_repair_drop_negative_alternative;
        t "validation preserved" test_repair_apply_preserves_validation;
        t "pp" test_repair_pp;
      ] );
    ("ext7.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
