(* Tests for the fourth wave: sampled strategy, query rewriting, the batch
   runner, the hesitant oracle. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Rewrite = Gps_query.Rewrite
module Strategy = Gps_interactive.Strategy
module Informative = Gps_interactive.Informative
module Batch = Gps_interactive.Batch
module Oracle = Gps_interactive.Oracle
module Simulate = Gps_interactive.Simulate
module Session = Gps_interactive.Session

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)

(* -------------------------------------------------------------------- *)
(* sampled informativeness / strategy *)

let test_sampled_score_bounds () =
  let g = Datasets.figure1 () in
  let rng = Prng.create ~seed:1 in
  let score v =
    Informative.sampled_score g ~negatives:[ node g "N5" ] ~bound:3 ~samples:50 ~rng v
  in
  let s = score (node g "N2") in
  check "within [0, samples]" true (s >= 0 && s <= 50);
  check "informative node scores > 0" true (s > 0);
  check_int "sink scores 0" 0 (score (node g "C1"))

let test_sampled_score_no_negatives () =
  let g = Datasets.figure1 () in
  let rng = Prng.create ~seed:2 in
  check_int "no negatives: every walk uncovered" 20
    (Informative.sampled_score g ~negatives:[] ~bound:3 ~samples:20 ~rng (node g "N2"))

let test_sampled_strategy_converges () =
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:8 in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let r =
    Batch.run_once g ~strategy:(Strategy.sampled_smart ~seed:3 ~samples:16) ~goal
  in
  check "reaches the goal" true r.Batch.reached_goal

(* -------------------------------------------------------------------- *)
(* Rewrite *)

let test_rewrite_dead_symbols () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+monorail)*.cinema" in
  Alcotest.(check (list string)) "monorail is dead" [ "monorail" ] (Rewrite.dead_symbols g q);
  let q' = Rewrite.specialize g q in
  Alcotest.(check string) "specialized" "tram*.cinema" (Rpq.to_string q');
  check "same selection" true (Eval.select g q = Eval.select g q')

let test_rewrite_noop () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  check "no dead symbols" true (Rewrite.dead_symbols g q = []);
  check "same query value" true (Rewrite.specialize g q == q)

let test_rewrite_collapses_to_empty () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "monorail.cablecar" in
  let q' = Rewrite.specialize g q in
  check "empty language" true (Gps_regex.Regex.is_empty_lang (Rpq.regex q'));
  check_int "selects nothing" 0 (Eval.count g q')

let test_rewrite_inverse_symbols () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "cinema~.tram" in
  check "inverse of known label is alive" true (Rewrite.dead_symbols g q = []);
  let q2 = Rpq.of_string_exn "monorail~.tram" in
  check "inverse of unknown label is dead" true (Rewrite.dead_symbols g q2 = [ "monorail~" ])

(* -------------------------------------------------------------------- *)
(* Batch *)

let test_batch_summarize () =
  let s = Batch.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "runs" 4 s.Batch.runs;
  check "mean" true (abs_float (s.Batch.mean -. 2.5) < 1e-9);
  check "min/max" true (s.Batch.min = 1.0 && s.Batch.max = 4.0);
  check "median" true (s.Batch.median = 3.0);
  check "stddev" true (abs_float (s.Batch.stddev -. sqrt 1.25) < 1e-9);
  Alcotest.check_raises "empty" (Invalid_argument "Batch.summarize: empty sample") (fun () ->
      ignore (Batch.summarize []))

let test_batch_run_once () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let r = Batch.run_once g ~strategy:Strategy.smart ~goal in
  check "reached" true r.Batch.reached_goal;
  check_int "questions decompose" r.Batch.questions
    (r.Batch.labels + r.Batch.zooms + r.Batch.validations)

let test_batch_over_seeds () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "tram*.restaurant" in
  let s =
    Batch.over_seeds g
      ~strategy:(fun ~seed -> Strategy.random ~seed)
      ~goal ~seeds:[ 1; 2; 3; 4 ]
      ~metric:(fun r -> float_of_int r.Batch.questions)
  in
  check_int "four runs" 4 s.Batch.runs;
  check "positive mean" true (s.Batch.mean > 0.0);
  check "min <= median <= max" true (s.Batch.min <= s.Batch.median && s.Batch.median <= s.Batch.max)

(* -------------------------------------------------------------------- *)
(* hesitant oracle *)

let test_hesitant_zooms_more () =
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:2 in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let run user = Simulate.run g ~strategy:Strategy.smart ~user in
  let normal = run (Oracle.perfect ~goal) in
  let cautious = run (Oracle.hesitant ~goal ~extra_zooms:2) in
  check "more zooms" true
    (cautious.Simulate.counters.Session.zooms > normal.Simulate.counters.Session.zooms);
  check_int "same labels" normal.Simulate.counters.Session.labels
    cautious.Simulate.counters.Session.labels;
  check "still reaches the goal" true
    (Eval.select g cautious.Simulate.outcome.Session.query = Eval.select g goal)

(* -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"specialize preserves the selected node set" ~count:200
      (make
         Gen.(
           let* n = int_range 2 10 in
           let* m = int_range 1 25 in
           let* seed = int_range 0 9_999 in
           return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b" ] ~seed)))
      (fun g ->
        (* query over a wider alphabet than the graph's *)
        let q = Rpq.of_string_exn "(a+zz)*.(b+yy)" in
        Eval.select g q = Eval.select g (Rewrite.specialize g q));
    Test.make ~name:"sampled score never exceeds samples and matches exact zero" ~count:100
      (make Gen.(int_range 0 10_000)) (fun seed ->
        let g = Generators.uniform ~nodes:8 ~edges:16 ~labels:[ "a"; "b" ] ~seed in
        let rng = Prng.create ~seed in
        let negatives = [ 0 ] in
        List.for_all
          (fun v ->
            let s =
              Informative.sampled_score g ~negatives ~bound:3 ~samples:30 ~rng v
            in
            s >= 0 && s <= 30
            && (Informative.score g ~negatives ~bound:3 v > 0 || s = 0))
          (Digraph.nodes g));
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext4.sampled",
      [
        t "score bounds" test_sampled_score_bounds;
        t "no negatives" test_sampled_score_no_negatives;
        t "strategy converges" test_sampled_strategy_converges;
      ] );
    ( "ext4.rewrite",
      [
        t "dead symbols" test_rewrite_dead_symbols;
        t "noop" test_rewrite_noop;
        t "collapse to empty" test_rewrite_collapses_to_empty;
        t "inverse symbols" test_rewrite_inverse_symbols;
      ] );
    ( "ext4.batch",
      [
        t "summarize" test_batch_summarize;
        t "run_once" test_batch_run_once;
        t "over_seeds" test_batch_over_seeds;
      ] );
    ("ext4.oracle", [ t "hesitant" test_hesitant_zooms_more ]);
    ("ext4.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
