(* Cross-library integration tests: whole workflows that chain the store,
   codecs, sessions, journals, learners and evaluators together the way a
   downstream application would. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Strategy = Gps_interactive.Strategy
module Oracle = Gps_interactive.Oracle
module Simulate = Gps_interactive.Simulate
module Session = Gps_interactive.Session
module Journal = Gps_interactive.Journal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_temp_file f =
  let path = Filename.temp_file "gps_it" ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* -------------------------------------------------------------------- *)

let test_store_session_journal_pipeline () =
  (* build a city through the durable store, crash-free reopen, run a
     recorded session, replay it on the reloaded graph: same learned
     query *)
  with_temp_file (fun store_path ->
      Sys.remove store_path;
      let s = Store.openfile store_path in
      let city = Generators.city (Generators.default_city ~districts:16) ~seed:12 in
      Digraph.iter_edges
        (fun e ->
          Store.link s
            (Digraph.node_name city e.Digraph.src)
            (Digraph.label_name city e.Digraph.lbl)
            (Digraph.node_name city e.Digraph.dst))
        city;
      Store.close s;
      let s2 = Store.openfile store_path in
      let g = Store.graph s2 in
      check_int "graph reloaded" (Digraph.n_edges city) (Digraph.n_edges g);
      let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
      let user, journal_of = Journal.recording (Oracle.perfect ~goal) in
      let t1 = Simulate.run g ~strategy:Strategy.smart ~user in
      let journal = journal_of () in
      let t2 = Simulate.run g ~strategy:Strategy.smart ~user:(Journal.replayer journal) in
      check "replay matches" true
        (Rpq.to_string t1.Simulate.outcome.Session.query
        = Rpq.to_string t2.Simulate.outcome.Session.query);
      Store.close s2)

let test_codec_conversion_chain () =
  (* edge-list -> graph -> JSON -> graph -> edge-list preserves the edge
     set (node ids are renumbered by first appearance, so compare the
     canonical sorted form, not raw text) *)
  let canonical g = List.sort compare (String.split_on_char '\n' (Codec.to_string g)) in
  let g0 = Generators.bio ~nodes:60 ~seed:21 in
  let g1 = Json.of_string (Json.to_string (Codec.of_string (Codec.to_string g0))) in
  Alcotest.(check (list string)) "same canonical edge set" (canonical g0) (canonical g1)

let test_learned_query_portability () =
  (* learn on one city, carry the query to another graph: specialize
     drops alien labels, evaluation answers without error *)
  let g1 = Generators.city (Generators.default_city ~districts:20) ~seed:31 in
  let goal = Rpq.of_string_exn "(tram+bus+metro)*.cinema" in
  let trace = Simulate.run g1 ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  let learned = trace.Simulate.outcome.Session.query in
  let g2 = Datasets.transpole () in
  let ported = Gps_query.Rewrite.specialize g2 learned in
  check "evaluates on the new graph" true (Array.length (Eval.select g2 ported) > 0);
  check "selection identical to unspecialized" true
    (Eval.select g2 ported = Eval.select g2 learned)

let test_incremental_store_mirror () =
  (* stream edges into a store and an incremental evaluator in lockstep;
     after every few inserts the incremental answer matches scratch *)
  with_temp_file (fun store_path ->
      Sys.remove store_path;
      let s = Store.openfile store_path in
      let g = Store.graph s in
      let query = Rpq.of_string_exn "(a+b)*.c" in
      (* seed nodes so ids exist before incremental evaluation starts *)
      for i = 0 to 9 do
        ignore (Store.add_node s (Printf.sprintf "n%d" i))
      done;
      let inc = Gps_query.Incremental.create g query in
      let rng = Prng.create ~seed:5 in
      let ok = ref true in
      for step = 1 to 40 do
        let src = Printf.sprintf "n%d" (Prng.int rng 10) in
        let dst = Printf.sprintf "n%d" (Prng.int rng 10) in
        let label = Prng.pick rng [ "a"; "b"; "c" ] in
        let before = Digraph.n_edges g in
        Store.link s src label dst;
        if Digraph.n_edges g > before then begin
          let sv = Option.get (Digraph.node_of_name g src) in
          let dv = Option.get (Digraph.node_of_name g dst) in
          Gps_query.Incremental.add_edge inc ~src:sv ~label ~dst:dv
        end;
        if step mod 5 = 0 then ok := !ok && Gps_query.Incremental.agrees_with_scratch inc
      done;
      check "incremental tracked the store" true !ok;
      Store.close s)

let test_learned_displays_parse_back () =
  (* the printed form of every learned query re-parses to the same
     language — display, parser and simplifier agree end to end *)
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:41 in
  List.iter
    (fun qs ->
      let goal = Rpq.of_string_exn qs in
      if Eval.count g goal > 0 then begin
        let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
        let learned = trace.Simulate.outcome.Session.query in
        let printed = Rpq.to_string learned in
        match Rpq.of_string printed with
        | Ok reparsed -> check ("reparse " ^ printed) true (Rpq.equal_lang learned reparsed)
        | Error e -> Alcotest.failf "learned query %S does not parse: %s" printed e
      end)
    [ "cinema"; "bus.cinema"; "(tram+bus)*.cinema"; "metro*.park" ]

let test_full_pipeline_everywhere () =
  (* the headline scenario works on every dataset family *)
  let cases =
    [
      ("figure1", Datasets.figure1 (), "(tram+bus)*.cinema");
      ("transpole", Datasets.transpole (), "(metro+tram+bus)*.museum");
      ("city", Generators.city (Generators.default_city ~districts:24) ~seed:51, "tram*.restaurant");
      ("bio", Generators.bio ~nodes:90 ~seed:52, "interacts*.treats");
      ("grid", Generators.grid ~rows:4 ~cols:4, "east.south");
      ("tree", Generators.full_tree ~depth:3 ~branching:2 ~labels:[ "l"; "r" ], "l.r");
    ]
  in
  List.iter
    (fun (name, g, qs) ->
      let goal = Rpq.of_string_exn qs in
      if Eval.count g goal > 0 then begin
        let o = Gps.specify_interactively g ~goal in
        check (name ^ " reaches the goal") true o.Gps.reached_goal;
        check (name ^ " beats labeling everything") true
          (o.Gps.labels <= Digraph.n_nodes g)
      end)
    cases

let test_conjunctive_over_learned_queries () =
  (* learn two queries interactively, then conjoin them *)
  let g = Generators.city (Generators.default_city ~districts:24) ~seed:61 in
  let learn qs =
    let goal = Rpq.of_string_exn qs in
    (Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal)).Simulate.outcome
      .Session.query
  in
  let q1 = learn "(tram+bus)*.cinema" and q2 = learn "(tram+bus)*.restaurant" in
  let conj = Gps_query.Conjunctive.select g (Gps_query.Conjunctive.all_of [ q1; q2 ]) in
  let s1 = Eval.select g q1 and s2 = Eval.select g q2 in
  Digraph.iter_nodes (fun v -> check "conjunction" true (conj.(v) = (s1.(v) && s2.(v)))) g

let test_csr_and_reach_on_stored_graph () =
  with_temp_file (fun store_path ->
      Sys.remove store_path;
      let s = Store.openfile store_path in
      Store.link s "a" "x" "b";
      Store.link s "b" "x" "c";
      Store.compact s;
      Store.link s "c" "y" "d";
      Store.close s;
      let s2 = Store.openfile store_path in
      let g = Store.graph s2 in
      let csr = Csr.freeze g in
      let idx = Reach.build g in
      let q = Rpq.of_string_exn "x.x.y" in
      check "frozen eval" true (Eval.select_frozen g csr q = Eval.select g q);
      check "reach across compaction" true
        (Reach.reachable idx
           (Option.get (Digraph.node_of_name g "a"))
           (Option.get (Digraph.node_of_name g "d")));
      Store.close s2)


let test_transcript_record_render () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let transcript =
    Gps_interactive.Transcript.record g ~strategy:Strategy.smart
      ~user:(Oracle.perfect ~goal)
  in
  (match Gps_interactive.Transcript.outcome transcript with
  | Some o -> check "reaches the goal set" true (Eval.select g o.Session.query = Eval.select g goal)
  | None -> Alcotest.fail "transcript must end with Halted");
  let rendered = Gps_interactive.Transcript.render g transcript in
  check "narrates the zoom" true
    (String.length rendered > 0
    &&
    let contains needle =
      let nl = String.length needle and hl = String.length rendered in
      let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
      go 0
    in
    contains "zoom out" && contains "HALT" && contains "validates");
  (* the transcript's question count matches a Simulate run *)
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  let asks =
    List.length
      (List.filter
         (function
           | Gps_interactive.Transcript.Shown _ | Gps_interactive.Transcript.Validated _ -> true
           | Gps_interactive.Transcript.Proposed _ | Gps_interactive.Transcript.Halted _ -> false)
         transcript)
  in
  check_int "same question count as Simulate" trace.Simulate.questions asks

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "integration.workflows",
      [
        t "store -> session -> journal -> replay" test_store_session_journal_pipeline;
        t "codec conversion chain" test_codec_conversion_chain;
        t "learned query portability" test_learned_query_portability;
        t "incremental mirrors the store" test_incremental_store_mirror;
        t "learned displays parse back" test_learned_displays_parse_back;
        t "full pipeline on every dataset family" test_full_pipeline_everywhere;
        t "conjunction of learned queries" test_conjunctive_over_learned_queries;
        t "csr + reach on a compacted store" test_csr_and_reach_on_stored_graph;
        t "transcript record/render" test_transcript_record_render;
      ] );
  ]
