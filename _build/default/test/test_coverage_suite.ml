(* Coverage suite: printers, explanations and slow soak tests that push
   the system to larger scales than the unit suites. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Session = Gps_interactive.Session
module Strategy = Gps_interactive.Strategy
module Oracle = Gps_interactive.Oracle
module Simulate = Gps_interactive.Simulate
module Explain = Gps_interactive.Explain

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* -------------------------------------------------------------------- *)
(* printers *)

let test_pp_digraph () =
  let g = Datasets.figure1 () in
  let out = Format.asprintf "%a" Digraph.pp g in
  check "header" true (contains ~needle:"10 nodes, 10 edges, 4 labels" out);
  check "an edge" true (contains ~needle:"N1 -tram-> N4" out)

let test_pp_stats () =
  let g = Datasets.figure1 () in
  let out = Format.asprintf "%a" Stats.pp (Stats.compute g) in
  check "histogram" true (contains ~needle:"bus" out);
  check "sccs" true (contains ~needle:"SCCs" out)

let test_pp_nfa_dfa () =
  let open Gps_automata in
  let nfa = Compile.to_nfa (Gps_regex.Parse.parse_exn "(a+b)*.c") in
  let out = Format.asprintf "%a" Nfa.pp nfa in
  check "nfa states shown" true (contains ~needle:"nfa: 4 states" out);
  let dfa = Dfa.determinize nfa in
  let out2 = Format.asprintf "%a" Dfa.pp dfa in
  check "dfa alphabet shown" true (contains ~needle:"{a,b,c}" out2)

let test_pp_sample_and_failure () =
  let g = Datasets.figure1 () in
  let s = Gps_learning.Sample.of_names g ~pos:[ "N2" ] ~neg:[ "N5" ] in
  let s = Gps_learning.Sample.validate s (node g "N2") [ "bus" ] in
  let out = Format.asprintf "%a" (Gps_learning.Sample.pp g) s in
  check "positives shown" true (contains ~needle:"N2" out);
  check "validated path shown" true (contains ~needle:"path of N2: bus" out);
  let f = Gps_learning.Learner.Budget_exhausted (node g "N2") in
  check "failure rendered" true
    (contains ~needle:"budget" (Format.asprintf "%a" (Gps_learning.Learner.pp_failure g) f))

let test_pp_batch_summary () =
  let s = Gps_interactive.Batch.summarize [ 2.0; 4.0 ] in
  Alcotest.(check string) "format" "3.0 +/- 1.0 [2, 4]"
    (Format.asprintf "%a" Gps_interactive.Batch.pp_summary s)

(* -------------------------------------------------------------------- *)
(* Explain *)

let drive_until_finished g strategy user =
  let trace = Simulate.run g ~strategy ~user in
  ignore trace;
  (* re-drive step by step to keep the final Session.t *)
  let rec loop t =
    match Session.request t with
    | Session.Finished _ -> t
    | Session.Ask_label view -> loop (Session.answer_label t (user.Oracle.label g view))
    | Session.Ask_path tree -> loop (Session.answer_path t (user.Oracle.validate g tree))
    | Session.Propose q ->
        loop (if user.Oracle.satisfied g q then Session.accept t else Session.refine t)
  in
  loop (Session.start ~strategy g)

let test_explain_reasons () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let final = drive_until_finished g Strategy.smart (Oracle.perfect ~goal) in
  let sample = Session.sample final in
  (* at least one user positive with a validated path *)
  let pos = List.hd (Gps_learning.Sample.pos sample) in
  (match Explain.explain final pos with
  | Explain.User_positive (Some _) -> ()
  | _ -> Alcotest.fail "positive with validation expected");
  (* the negative *)
  List.iter
    (fun n ->
      match Explain.explain final n with
      | Explain.User_negative -> ()
      | _ -> Alcotest.fail "negative expected")
    (Gps_learning.Sample.neg sample);
  (* every pruned node explains with a concrete covering example *)
  List.iter
    (fun v ->
      match Explain.explain final v with
      | Explain.Pruned (_, n) -> check "coverer is a negative" true
          (Gps_learning.Sample.is_neg sample n)
      | _ -> Alcotest.fail "pruned expected")
    (Session.implied_neg final);
  (* renders don't crash and mention something *)
  Digraph.iter_nodes
    (fun v ->
      let out = Format.asprintf "%a" (Explain.render g) (Explain.explain final v) in
      check "non-empty explanation" true (String.length out > 0))
    g

let test_explain_implied_positive () =
  let g = Datasets.figure1 () in
  let strategy = Strategy.smart in
  let s = Session.start ~strategy g in
  (* drive manually: label N2 positive and validate bus.bus.cinema; N6 is
     NOT implied by that word (it has cinema, not bus.bus.cinema) but N6
     would be implied by "cinema"... craft: validate "bus" for N2 -> every
     node with a bus edge is implied positive (N1, N6). *)
  let rec to_label t =
    match Session.request t with
    | Session.Ask_label view when view.Gps_interactive.View.node = node g "N2" -> t
    | Session.Ask_label _ -> to_label (Session.answer_label t `Neg)
    | Session.Propose _ -> to_label (Session.refine t)
    | _ -> Alcotest.fail "unexpected state"
  in
  (* smart strategy proposes N2 first on figure1 (highest uncovered count) *)
  let t = to_label s in
  let t = Session.answer_label t `Pos in
  match Session.request t with
  | Session.Ask_path tree when List.mem [ "bus" ] tree.Gps_interactive.View.words ->
      let t = Session.answer_path t [ "bus" ] in
      let implied = Session.implied_pos t in
      check "N1 implied (has bus path)" true (List.mem (node g "N1") implied);
      (match Explain.explain t (node g "N1") with
      | Explain.Implied_positive w -> check "via bus" true (w = [ "bus" ])
      | _ -> Alcotest.fail "implied positive expected")
  | _ -> Alcotest.fail "bus should be a candidate"

(* -------------------------------------------------------------------- *)
(* soak (larger-scale end-to-end, still seconds not minutes) *)

let test_soak_large_city_session () =
  let g = Generators.city (Generators.default_city ~districts:400) ~seed:77 in
  check "sizable" true (Digraph.n_nodes g > 700);
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let o = Gps.specify_interactively g ~goal in
  check "reaches goal at scale" true o.Gps.reached_goal;
  check "few labels even at scale" true (o.Gps.labels < 60)

let test_soak_store_many_records () =
  let path = Filename.temp_file "gps_soak" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let s = Store.openfile path in
      let src = Generators.uniform ~nodes:500 ~edges:2000 ~labels:[ "a"; "b"; "c" ] ~seed:9 in
      Digraph.iter_edges
        (fun e ->
          Store.link s
            (Digraph.node_name src e.Digraph.src)
            (Digraph.label_name src e.Digraph.lbl)
            (Digraph.node_name src e.Digraph.dst))
        src;
      Store.compact s;
      Store.close s;
      let s2 = Store.openfile path in
      check_int "all edges back" (Digraph.n_edges src) (Digraph.n_edges (Store.graph s2));
      Store.close s2)

let test_soak_incremental_thousands () =
  let g = Generators.uniform ~nodes:300 ~edges:200 ~labels:[ "a"; "b" ] ~seed:13 in
  let q = Rpq.of_string_exn "(a+b)*.a.b" in
  let inc = Gps_query.Incremental.create g q in
  let rng = Prng.create ~seed:14 in
  for _ = 1 to 1500 do
    let src = Prng.int rng 300 and dst = Prng.int rng 300 in
    let label = Prng.pick rng [ "a"; "b" ] in
    Digraph.add_edge g ~src ~label ~dst;
    Gps_query.Incremental.add_edge inc ~src ~label ~dst
  done;
  check "still exact after 1500 insertions" true (Gps_query.Incremental.agrees_with_scratch inc)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "coverage.printers",
      [
        t "digraph" test_pp_digraph;
        t "stats" test_pp_stats;
        t "nfa/dfa" test_pp_nfa_dfa;
        t "sample and failure" test_pp_sample_and_failure;
        t "batch summary" test_pp_batch_summary;
      ] );
    ( "coverage.explain",
      [ t "reasons" test_explain_reasons; t "implied positive" test_explain_implied_positive ] );
    ( "coverage.soak",
      [
        slow "800-node city session" test_soak_large_city_session;
        slow "store with thousands of records" test_soak_store_many_records;
        slow "incremental x1500" test_soak_incremental_thousands;
      ] );
  ]
