(* Tests for the second wave of extensions: semantic regex simplification,
   the convergence teacher, classic word-RPNI, the Transpole dataset and
   the structured generators. *)

open Gps_graph
module Regex = Gps_regex.Regex
module Parse = Gps_regex.Parse
module Simplify = Gps_automata.Simplify
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Convergence = Gps_learning.Convergence

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Parse.parse_exn
let node g n = Option.get (Digraph.node_of_name g n)

(* -------------------------------------------------------------------- *)
(* Simplify *)

let test_simplify_subsumed_alt () =
  (* a is included in (a+b)*; the alternation collapses *)
  let r = Regex.alt [ p "a"; p "(a+b)*" ] in
  let s = Simplify.simplify r in
  check "collapsed" true (Regex.equal s (p "(a+b)*"))

let test_simplify_adjacent_stars () =
  let r = Regex.seq [ Regex.star (p "a"); Regex.star (p "a"); p "b" ] in
  let s = Simplify.simplify r in
  check "a*.a*.b -> a*.b" true (Regex.equal s (p "a*.b"))

let test_simplify_star_of_starred_alt () =
  let r = Regex.star (Regex.alt [ Regex.star (p "a"); p "b" ]) in
  let s = Simplify.simplify r in
  check "(a*+b)* -> (a+b)*" true (Regex.equal s (p "(a+b)*"))

let test_simplify_identity_on_minimal () =
  List.iter
    (fun src ->
      let r = p src in
      check ("unchanged: " ^ src) true (Regex.equal (Simplify.simplify r) r))
    [ "a"; "a.b"; "(a+b)*.c"; "a*" ]

let test_simplify_never_grows_and_preserves () =
  List.iter
    (fun src ->
      let r = p src in
      let s = Simplify.simplify r in
      check ("size: " ^ src) true (Regex.size s <= Regex.size r);
      check ("language: " ^ src) true (Gps_automata.Compile.equal_lang s r))
    [
      "a+a.b+(a+b)*";
      "a*.a*";
      "(a*+b*)*";
      "a.b+a.b+a.c";
      "(a+b)*.c+(a+b)*.c";
      "eps+a.a*";
    ]

(* -------------------------------------------------------------------- *)
(* Convergence *)

let test_convergence_figure1 () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  match Convergence.teach g ~goal with
  | Ok progress ->
      check "selects goal set" true
        (Eval.select g progress.Convergence.learned = Eval.select g goal);
      check "few examples" true (Gps_learning.Sample.size progress.Convergence.sample <= 6)
  | Error _ -> Alcotest.fail "must converge on figure 1"

let test_convergence_all_city_queries () =
  let g = Generators.city (Generators.default_city ~districts:20) ~seed:6 in
  List.iter
    (fun qs ->
      let goal = Rpq.of_string_exn qs in
      if Eval.count g goal > 0 then
        match Convergence.examples_to_converge g ~goal with
        | Some n -> check (qs ^ " converges with few examples") true (n <= Digraph.n_nodes g)
        | None -> Alcotest.failf "%s did not converge" qs)
    [ "cinema"; "bus.cinema"; "(tram+bus)*.cinema"; "metro*.park" ]

let test_convergence_empty_goal () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "zzz" in
  match Convergence.teach g ~goal with
  | Ok progress ->
      check_int "no examples needed for the empty answer" 0 progress.Convergence.rounds
  | Error _ -> Alcotest.fail "empty goal trivially converges"

let test_convergence_deterministic () =
  let g = Datasets.figure1 () in
  let goal = Rpq.of_string_exn "tram*.restaurant" in
  let a = Convergence.examples_to_converge g ~goal in
  let b = Convergence.examples_to_converge g ~goal in
  check "same count twice" true (a = b && a <> None)

(* -------------------------------------------------------------------- *)
(* classic word-RPNI *)

let test_generalize_words_classic () =
  (* learn (ab)* from {eps?, ab, abab} vs negatives {a, b, aba} *)
  let pta = Gps_automata.Pta.build [ []; [ "a"; "b" ]; [ "a"; "b"; "a"; "b" ] ] in
  let nfa =
    Gps_learning.Rpni.generalize_words pta
      ~neg_words:[ [ "a" ]; [ "b" ]; [ "a"; "b"; "a" ]; [ "b"; "a" ] ]
  in
  let open Gps_automata in
  check "accepts ababab (generalized)" true
    (Nfa.accepts nfa [ "a"; "b"; "a"; "b"; "a"; "b" ]);
  check "rejects a" false (Nfa.accepts nfa [ "a" ]);
  check "rejects ba" false (Nfa.accepts nfa [ "b"; "a" ]);
  check "accepts eps" true (Nfa.accepts nfa [])

let test_generalize_words_no_negatives () =
  let pta = Gps_automata.Pta.build [ [ "a" ] ] in
  let nfa = Gps_learning.Rpni.generalize_words pta ~neg_words:[] in
  check_int "collapses fully" 1 (Gps_automata.Nfa.n_states nfa)

(* -------------------------------------------------------------------- *)
(* Transpole dataset *)

let test_transpole_shape () =
  let g = Datasets.transpole () in
  check "has the M1 terminus" true (Digraph.node_of_name g "Quatre_Cantons" <> None);
  check "has the Beaux-Arts museum" true (Digraph.node_of_name g "Palais_des_Beaux_Arts" <> None);
  let labels = List.sort compare (Digraph.labels g) in
  List.iter
    (fun l -> check (l ^ " label") true (List.mem l labels))
    [ "metro"; "tram"; "bus"; "cinema"; "museum"; "theatre"; "park"; "restaurant"; "in" ];
  (* transport is bidirectional *)
  Digraph.iter_edges
    (fun e ->
      let l = Digraph.label_name g e.Digraph.lbl in
      if l = "metro" || l = "tram" || l = "bus" then
        check "two-way" true (Digraph.mem_edge g ~src:e.Digraph.dst ~lbl:e.Digraph.lbl ~dst:e.Digraph.src))
    g

let test_transpole_queries () =
  let g = Datasets.transpole () in
  let sel qs = List.map (Digraph.node_name g) (Eval.select_nodes g (Rpq.of_string_exn qs)) in
  (* every metro stop reaches a cinema via the network *)
  check "Eurasante reaches a cinema by metro" true
    (List.mem "CHU_Eurasante" (sel "metro*.cinema"));
  (* the tram-only branch reaches the Roubaix cinema *)
  check "Saint_Maur tram to cinema" true (List.mem "Saint_Maur" (sel "tram*.cinema"));
  (* park right next door by bus *)
  check "Rihour bus to park" true (List.mem "Rihour" (sel "bus.park"))

let test_transpole_interactive () =
  let g = Datasets.transpole () in
  let goal = Rpq.of_string_exn "(metro+tram+bus)*.museum" in
  let o = Gps.specify_interactively g ~goal in
  check "goal reachable interactively" true o.Gps.reached_goal;
  check "fewer answers than nodes" true (o.Gps.questions < Digraph.n_nodes g)

(* -------------------------------------------------------------------- *)
(* structured generators *)

let test_chain () =
  let g = Generators.chain ~length:10 ~label:"a" in
  check_int "11 nodes" 11 (Digraph.n_nodes g);
  check_int "10 edges" 10 (Digraph.n_edges g);
  check_int "eccentricity" 10 (Traverse.eccentricity g (node g "c0"));
  let q = Rpq.of_string_exn "a.a.a.a.a.a.a.a.a.a" in
  Alcotest.(check (list string)) "only the head spells a^10" [ "c0" ]
    (List.map (Digraph.node_name g) (Eval.select_nodes g q))

let test_chain_empty () =
  let g = Generators.chain ~length:0 ~label:"a" in
  check_int "single node" 1 (Digraph.n_nodes g);
  check_int "no edges" 0 (Digraph.n_edges g)

let test_grid () =
  let g = Generators.grid ~rows:3 ~cols:4 in
  check_int "12 nodes" 12 (Digraph.n_nodes g);
  (* edges: 3*3 east + 2*4 south = 17 *)
  check_int "17 edges" 17 (Digraph.n_edges g);
  let q = Rpq.of_string_exn "east.east.east" in
  check_int "first column of each row spells east^3" 3 (Eval.count g q);
  (* corner-to-corner words: any interleaving of 3 easts and 2 souths *)
  let q2 = Rpq.of_string_exn "(east+south)*" in
  let targets = Gps_query.Binary.targets g q2 (node g "r0c0") in
  check_int "r0c0 reaches everything" 12 (List.length targets)

let test_star_topology () =
  let g = Generators.star ~leaves:20 ~label:"x" in
  check_int "out degree" 20 (Digraph.out_degree g (node g "hub"));
  check_int "hub only" 1 (Eval.count g (Rpq.of_string_exn "x"))

let test_full_tree () =
  let g = Generators.full_tree ~depth:3 ~branching:2 ~labels:[ "l"; "r" ] in
  check_int "15 nodes" 15 (Digraph.n_nodes g);
  check_int "14 edges" 14 (Digraph.n_edges g);
  (* left-left-left path exists only from the root and left-spine nodes *)
  let q = Rpq.of_string_exn "l.l.l" in
  check_int "only the root" 1 (Eval.count g q);
  Alcotest.check_raises "empty labels"
    (Invalid_argument "Generators.full_tree: empty label list") (fun () ->
      ignore (Generators.full_tree ~depth:1 ~branching:1 ~labels:[]))

(* -------------------------------------------------------------------- *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let gen_regex =
    Gen.(
      let sym = oneofl [ "a"; "b"; "c" ] in
      fix
        (fun self n ->
          if n <= 1 then
            frequency [ (6, map Regex.sym sym); (1, return Regex.epsilon) ]
          else
            frequency
              [
                (3, map Regex.sym sym);
                (2, map2 (fun a b -> Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
                (3, map2 (fun a b -> Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (2, map Regex.star (self (n - 1)));
              ])
        8)
  in
  let arb_regex = make ~print:Regex.to_string gen_regex in
  let gen_word = Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ])) in
  [
    Test.make ~name:"simplify preserves the language" ~count:300 (pair arb_regex (make gen_word))
      (fun (r, w) ->
        Gps_regex.Deriv.matches (Simplify.simplify r) w = Gps_regex.Deriv.matches r w);
    Test.make ~name:"simplify never grows" ~count:300 arb_regex (fun r ->
        Regex.size (Simplify.simplify r) <= Regex.size r);
    Test.make ~name:"simplify is idempotent" ~count:200 arb_regex (fun r ->
        let s = Simplify.simplify r in
        Regex.equal (Simplify.simplify s) s);
    Test.make ~name:"teacher always converges on city graphs" ~count:20
      (make
         Gen.(
           let* d = int_range 6 14 in
           let* seed = int_range 0 1_000 in
           return (Generators.city (Generators.default_city ~districts:d) ~seed)))
      (fun g ->
        let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
        match Convergence.teach g ~goal with
        | Ok p -> Eval.select g p.Convergence.learned = Eval.select g goal
        | Error _ -> false);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext2.simplify",
      [
        t "subsumed alternation" test_simplify_subsumed_alt;
        t "adjacent stars" test_simplify_adjacent_stars;
        t "star of starred alt" test_simplify_star_of_starred_alt;
        t "identity on minimal" test_simplify_identity_on_minimal;
        t "safety" test_simplify_never_grows_and_preserves;
      ] );
    ( "ext2.convergence",
      [
        t "figure1" test_convergence_figure1;
        t "city queries" test_convergence_all_city_queries;
        t "empty goal" test_convergence_empty_goal;
        t "deterministic" test_convergence_deterministic;
      ] );
    ( "ext2.word_rpni",
      [
        t "classic (ab)*" test_generalize_words_classic;
        t "no negatives" test_generalize_words_no_negatives;
      ] );
    ( "ext2.transpole",
      [
        t "shape" test_transpole_shape;
        t "queries" test_transpole_queries;
        t "interactive session" test_transpole_interactive;
      ] );
    ( "ext2.topologies",
      [
        t "chain" test_chain;
        t "chain empty" test_chain_empty;
        t "grid" test_grid;
        t "star" test_star_topology;
        t "full tree" test_full_tree;
      ] );
    ("ext2.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
