(* Tests for the L* active learner (Angluin — the paper's reference [1]). *)

module Rpq = Gps_query.Rpq
module Dfa = Gps_automata.Dfa
module Lstar = Gps_learning.Lstar

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let learn_ok qs =
  match Lstar.learn_query (Rpq.of_string_exn qs) with
  | Ok r -> r
  | Error e -> Alcotest.failf "L* failed on %s: %s" qs e

let test_learns_paper_query () =
  let learned, stats = learn_ok "(tram+bus)*.cinema" in
  check "language equal" true (Rpq.equal_lang learned (Rpq.of_string_exn "(tram+bus)*.cinema"));
  check_int "minimal DFA has 3 live-ish states" 3 stats.Lstar.states;
  check "few membership queries" true (stats.Lstar.membership_queries < 100)

let test_learns_classic_languages () =
  List.iter
    (fun qs ->
      let learned, _ = learn_ok qs in
      check (qs ^ " identified") true (Rpq.equal_lang learned (Rpq.of_string_exn qs)))
    [ "(a.b)*"; "a*.b"; "a.a.a"; "(a+b)*.a.b"; "a?.b?"; "eps"; "empty"; "a+b+c" ]

let test_stats_monotone_in_size () =
  let _, small = learn_ok "a" in
  let _, large = learn_ok "(a+b)*.a.b.a" in
  check "larger language needs more membership queries" true
    (large.Lstar.membership_queries > small.Lstar.membership_queries)

let test_rejects_empty_alphabet () =
  match Lstar.learn ~alphabet:[] ~membership:(fun _ -> false) ~equivalence:(fun _ -> None) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty alphabet must be rejected"

let test_lying_teacher_detected () =
  (* an "equivalence" oracle returning a word the hypothesis already
     classifies like the target is not a counterexample *)
  let membership w = w = [ "a" ] in
  let equivalence _ = Some [ "a"; "a"; "a"; "a" ] (* rejected by both *) in
  match Lstar.learn ~alphabet:[ "a" ] ~membership ~equivalence () with
  | Error msg -> check "diagnosed" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "lying teacher must be detected"

let test_minimality () =
  (* Angluin's guarantee: the result is the minimal DFA *)
  List.iter
    (fun qs ->
      let learned, stats = learn_ok qs in
      let minimal =
        Dfa.minimize (Dfa.determinize (Rpq.nfa (Rpq.of_string_exn qs)))
      in
      check (qs ^ ": minimal size") true (stats.Lstar.states <= minimal.Dfa.n_states + 1);
      ignore learned)
    [ "(a.b)*"; "a*.b.a*" ]

let qcheck_tests =
  let open QCheck in
  let gen_regex =
    Gen.(
      let sym = oneofl [ "a"; "b" ] in
      fix
        (fun self n ->
          if n <= 1 then map Gps_regex.Regex.sym sym
          else
            frequency
              [
                (3, map Gps_regex.Regex.sym sym);
                (2, map2 (fun a b -> Gps_regex.Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
                (3, map2 (fun a b -> Gps_regex.Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (2, map Gps_regex.Regex.star (self (n - 1)));
              ])
        6)
  in
  [
    Test.make ~name:"L* with a perfect teacher identifies every regular language" ~count:150
      (make ~print:Gps_regex.Regex.to_string gen_regex) (fun r ->
        let q = Rpq.of_regex r in
        match Lstar.learn_query q with
        | Ok (learned, _) -> Rpq.equal_lang learned q
        | Error _ -> false);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "lstar",
      [
        t "paper query" test_learns_paper_query;
        t "classic languages" test_learns_classic_languages;
        t "stats monotone" test_stats_monotone_in_size;
        t "empty alphabet" test_rejects_empty_alphabet;
        t "lying teacher" test_lying_teacher_detected;
        t "minimality" test_minimality;
      ] );
    ("lstar.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
