(* Tests for gps_learning: witness search, RPNI generalization with the
   semantic oracle, the end-to-end learner on the paper's running example,
   and the static-labeling consistency checker. *)

open Gps_graph
open Gps_learning
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node g n = Option.get (Digraph.node_of_name g n)
let fig1 = Datasets.figure1

(* -------------------------------------------------------------------- *)
(* Sample *)

let test_sample_basic () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  check "is_pos" true (Sample.is_pos s (node g "N2"));
  check "is_neg" true (Sample.is_neg s (node g "N5"));
  check "is_labeled" true (Sample.is_labeled s (node g "N6"));
  check "unlabeled" false (Sample.is_labeled s (node g "N3"));
  check_int "size" 3 (Sample.size s);
  check_int "pos count" 2 (List.length (Sample.pos s))

let test_sample_contradiction () =
  let g = fig1 () in
  let s = Sample.add_pos Sample.empty (node g "N2") in
  Alcotest.check_raises "relabeling positive as negative"
    (Invalid_argument (Printf.sprintf "Sample.add_neg: node %d is already positive" (node g "N2")))
    (fun () -> ignore (Sample.add_neg s (node g "N2")))

let test_sample_validate () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "N2" ] ~neg:[] in
  let s = Sample.validate s (node g "N2") [ "bus"; "bus"; "cinema" ] in
  check "validated stored" true
    (Sample.validated s (node g "N2") = Some [ "bus"; "bus"; "cinema" ]);
  check "missing" true (Sample.validated s (node g "N6") = None);
  Alcotest.check_raises "validate non-positive"
    (Invalid_argument (Printf.sprintf "Sample.validate: node %d is not positive" (node g "N5")))
    (fun () -> ignore (Sample.validate s (node g "N5") [ "tram" ]))

let test_sample_idempotent_relabel () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "N2" ] ~neg:[] in
  let s = Sample.add_pos s (node g "N2") in
  check_int "no duplicates" 1 (Sample.size s)

(* -------------------------------------------------------------------- *)
(* Witness_search *)

let test_witness_search_found () =
  let g = fig1 () in
  match Witness_search.search g (node g "N6") ~negatives:[ node g "N5" ] with
  | Witness_search.Found w ->
      (* shortest path of N6 not covered by N5: N5 has {eps, tram, restaurant,
         tram.restaurant}; N6's words of length 1 are bus, cinema; both
         uncovered, bfs order -> first by label-name enumeration *)
      check_int "length 1" 1 (List.length w);
      check "uncovered" false (Gps_query.Pathlang.covers g [ node g "N5" ] w)
  | _ -> Alcotest.fail "expected Found"

let test_witness_search_shortest () =
  let g = fig1 () in
  (* N2 vs negative N1: N1 covers tram, bus (via N1->N4? no: N1's paths are
     tram, bus, tram.cinema, bus.cinema...). Sanity: search returns some
     uncovered word, and no shorter uncovered word exists. *)
  let negatives = [ node g "N1" ] in
  match Witness_search.search g (node g "N2") ~negatives with
  | Witness_search.Found w ->
      let len = List.length w in
      check "uncovered" false (Gps_query.Pathlang.covers g negatives w);
      let module W = Gps_graph.Walks in
      let shorter =
        W.words g (node g "N2") ~max_len:(len - 1)
        |> List.map (W.word_names g)
        |> List.filter (fun w' -> not (Gps_query.Pathlang.covers g negatives w'))
      in
      check "no shorter uncovered word" true (shorter = [])
  | _ -> Alcotest.fail "expected Found"

let test_witness_search_uninformative () =
  let g = fig1 () in
  (* C1 has no outgoing edges: only path is eps, covered by any negative *)
  (match Witness_search.search g (node g "C1") ~negatives:[ node g "N5" ] with
  | Witness_search.Uninformative -> ()
  | _ -> Alcotest.fail "sink node must be uninformative");
  (* R2 likewise *)
  match Witness_search.search g (node g "R2") ~negatives:[ node g "N3" ] with
  | Witness_search.Uninformative -> ()
  | _ -> Alcotest.fail "R2 vs N3"

let test_witness_search_no_negatives () =
  let g = fig1 () in
  match Witness_search.search g (node g "N2") ~negatives:[] with
  | Witness_search.Found [] -> ()
  | _ -> Alcotest.fail "epsilon is uncovered when there are no negatives"

let test_witness_search_subsumed_node () =
  (* v's path language strictly inside the negative's: uninformative *)
  let g = Codec.of_edges [ ("n", "a", "x"); ("n", "b", "y"); ("v", "a", "z") ] in
  match Witness_search.search g (node g "v") ~negatives:[ node g "n" ] with
  | Witness_search.Uninformative -> ()
  | _ -> Alcotest.fail "subsumed node must be uninformative"

let test_witness_search_cycles_terminate () =
  (* both v and the negative sit on cycles: the pair space is finite and
     the search must terminate (here: uninformative, languages equal) *)
  let g = Codec.of_edges [ ("v", "a", "v"); ("n", "a", "n") ] in
  match Witness_search.search g (node g "v") ~negatives:[ node g "n" ] with
  | Witness_search.Uninformative -> ()
  | _ -> Alcotest.fail "equal cyclic languages: uninformative"

let test_witness_search_cycle_found () =
  (* v loops on a, negative has only a finite 'a' chain: a.a.a escapes *)
  let g = Codec.of_edges [ ("v", "a", "v"); ("n", "a", "m"); ("m", "a", "o") ] in
  match Witness_search.search g (node g "v") ~negatives:[ node g "n" ] with
  | Witness_search.Found w -> check_int "needs length 3" 3 (List.length w)
  | _ -> Alcotest.fail "expected Found"

let test_witness_search_fuel () =
  let g = Generators.uniform ~nodes:30 ~edges:120 ~labels:[ "a"; "b" ] ~seed:1 in
  match Witness_search.search g ~fuel:1 0 ~negatives:[ 1 ] with
  | Witness_search.Timeout -> ()
  | Witness_search.Found _ -> () (* found before fuel ran out (start pair may already qualify) *)
  | Witness_search.Uninformative -> Alcotest.fail "cannot decide uninformative with fuel 1"

let test_witness_search_max_len () =
  (* with max_len shorter than the only escape, bounded search reports
     uninformative — the paper's bounded-strategy behaviour *)
  let g = Codec.of_edges [ ("v", "a", "v"); ("n", "a", "m"); ("m", "a", "o") ] in
  match Witness_search.search g ~max_len:2 (node g "v") ~negatives:[ node g "n" ] with
  | Witness_search.Uninformative -> ()
  | _ -> Alcotest.fail "bounded search should give up"

let test_count_uncovered () =
  let g = fig1 () in
  (* N5's uncovered path count vs negative N3: N3 covers {restaurant};
     N5's words: tram, restaurant, tram.restaurant -> uncovered: tram,
     tram.restaurant *)
  check_int "count" 2
    (Witness_search.count_uncovered g (node g "N5") ~negatives:[ node g "N3" ] ~max_len:3);
  (* all covered for a sink node *)
  check_int "sink" 0
    (Witness_search.count_uncovered g (node g "C1") ~negatives:[ node g "N5" ] ~max_len:3)

(* -------------------------------------------------------------------- *)
(* Rpni *)

let accepts_all nfa words = List.for_all (fun w -> Gps_automata.Nfa.accepts nfa w) words

let test_rpni_no_negatives_collapses () =
  (* with a trivially true oracle everything merges into one state:
     the universal-ish language over seen symbols *)
  let pta = Gps_automata.Pta.build [ [ "a"; "b" ]; [ "b" ] ] in
  let nfa = Rpni.generalize pta ~consistent:(fun _ -> true) in
  check "accepts samples" true (accepts_all nfa [ [ "a"; "b" ]; [ "b" ] ]);
  check_int "collapsed to one state" 1 (Gps_automata.Nfa.n_states nfa)

let test_rpni_oracle_blocks () =
  (* oracle: must not accept the word [a] — keeps hypothesis away from
     full collapse *)
  let pta = Gps_automata.Pta.build [ [ "a"; "a" ] ] in
  let ok nfa = not (Gps_automata.Nfa.accepts nfa [ "a" ]) in
  let nfa = Rpni.generalize pta ~consistent:ok in
  check "still accepts a.a" true (Gps_automata.Nfa.accepts nfa [ "a"; "a" ]);
  check "never accepts a" false (Gps_automata.Nfa.accepts nfa [ "a" ]);
  check "merge attempts counted" true (Rpni.merge_count () > 0)

let test_rpni_inconsistent_pta () =
  let pta = Gps_automata.Pta.build [ [ "a" ] ] in
  Alcotest.check_raises "oracle rejects PTA"
    (Invalid_argument "Rpni.generalize: the sample itself is inconsistent (a witness word is covered)")
    (fun () -> ignore (Rpni.generalize pta ~consistent:(fun _ -> false)))

let test_rpni_star_generalization () =
  (* the classic: {a, aa, aaa} with "no b" oracle collapses to a+ or a* *)
  let pta = Gps_automata.Pta.build [ [ "a" ]; [ "a"; "a" ]; [ "a"; "a"; "a" ] ] in
  let ok nfa = not (Gps_automata.Nfa.accepts nfa [ "b" ]) in
  let nfa = Rpni.generalize pta ~consistent:ok in
  check "generalizes to unbounded repetition" true
    (Gps_automata.Nfa.accepts nfa [ "a"; "a"; "a"; "a"; "a" ])

(* -------------------------------------------------------------------- *)
(* Learner: the paper's running example *)

let paper_sample ?(validate = true) g =
  let s = Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  if validate then
    let s = Sample.validate s (node g "N2") [ "bus"; "tram"; "cinema" ] in
    Sample.validate s (node g "N6") [ "cinema" ]
  else s

let test_learner_paper_example () =
  (* Section 2: from +N2 +N6 -N5 with validated paths bus.tram.cinema and
     cinema, the learner constructs a query equivalent to
     (tram+bus)*.cinema *)
  let g = fig1 () in
  let q = Learner.learn_exn g (paper_sample g) in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  check "learned the goal query" true (Rpq.equal_lang q goal);
  Alcotest.(check (list string))
    "selects the paper's nodes" Datasets.figure1_expected
    (List.sort compare (List.map (Digraph.node_name g) (Eval.select_nodes g q)))

let test_learner_without_validation_is_weaker () =
  (* Section 3: without path validation the learner still returns a
     consistent query, but it is `bus`, not the goal *)
  let g = fig1 () in
  let q = Learner.learn_exn g (paper_sample ~validate:false g) in
  check "consistent with the labels" true
    (Eval.consistent g q ~pos:[ node g "N2"; node g "N6" ] ~neg:[ node g "N5" ]);
  check "but not the goal query" false
    (Rpq.equal_lang q (Rpq.of_string_exn "(tram+bus)*.cinema"))

let test_learner_empty_sample () =
  let g = fig1 () in
  let q = Learner.learn_exn g Sample.empty in
  check_int "empty query selects nothing" 0 (Eval.count g q)

let test_learner_only_negatives () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[] ~neg:[ "N5"; "N3" ] in
  let q = Learner.learn_exn g s in
  check "selects no negative" true
    (Eval.consistent g q ~pos:[] ~neg:[ node g "N5"; node g "N3" ])

let test_learner_conflict () =
  (* C1 (a sink) positive + any negative: every path of C1 (just ε) is
     covered -> no consistent query *)
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "C1" ] ~neg:[ "N5" ] in
  match Learner.learn g s with
  | Learner.Failed (Learner.Conflicting_node v) ->
      Alcotest.(check string) "conflicting node" "C1" (Digraph.node_name g v)
  | _ -> Alcotest.fail "expected Conflicting_node"

let test_learner_covered_witness () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "N2" ] ~neg:[ "N5" ] in
  (* user validates `bus.restaurant`? that is a path of N2 (bus to N3,
     restaurant to R2) — but suppose she picked a path that N5 covers:
     N5 covers tram.restaurant; N2 has no tram, so use a negative that
     covers bus: N6 covers bus (N6 -bus-> N3). *)
  let s = Sample.add_neg s (node g "N6") in
  let s = Sample.validate s (node g "N2") [ "bus" ] in
  match Learner.learn g s with
  | Learner.Failed (Learner.Covered_witness (v, w)) ->
      Alcotest.(check string) "node" "N2" (Digraph.node_name g v);
      Alcotest.(check (list string)) "word" [ "bus" ] w
  | _ -> Alcotest.fail "expected Covered_witness"

let test_learner_consistency_always () =
  (* whatever it learns is consistent with the sample, across datasets *)
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:3 in
  let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let sel = Eval.select g goal in
  (* label three positives and three negatives according to the goal *)
  let nodes = Digraph.nodes g in
  let pos = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> sel.(v)) nodes) in
  let neg = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> not sel.(v)) nodes) in
  let s = List.fold_left Sample.add_pos Sample.empty pos in
  let s = List.fold_left Sample.add_neg s neg in
  let q = Learner.learn_exn g s in
  check "consistent" true (Eval.consistent g q ~pos ~neg)

(* -------------------------------------------------------------------- *)
(* Static *)

let test_static_consistent () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  check "paper labels consistent" true (Static.check g s = Static.Consistent)

let test_static_conflict () =
  let g = fig1 () in
  let s = Sample.of_names g ~pos:[ "C1"; "N2" ] ~neg:[ "N5" ] in
  (match Static.check g s with
  | Static.Conflict v -> Alcotest.(check string) "conflict node" "C1" (Digraph.node_name g v)
  | _ -> Alcotest.fail "expected conflict");
  Alcotest.(check (list string))
    "conflicts lists all" [ "C1" ]
    (List.map (Digraph.node_name g) (Static.conflicts g s))

(* -------------------------------------------------------------------- *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let arb_setup =
    make
      Gen.(
        let* seed = int_range 0 5_000 in
        let* n = int_range 8 20 in
        let* m = int_range 10 40 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b"; "c" ] ~seed, seed))
  in
  [
    Test.make ~name:"learned query is always consistent with its sample" ~count:100 arb_setup
      (fun (g, seed) ->
        let rng = Prng.create ~seed in
        (* random labeling derived from a random goal query *)
        let goals = [ "a"; "a.b"; "(a+b)*.c"; "b*.a"; "c" ] in
        let goal = Rpq.of_string_exn (Prng.pick rng goals) in
        let sel = Gps_query.Eval.select g goal in
        let nodes = Prng.shuffle rng (Digraph.nodes g) in
        let pos = List.filteri (fun i _ -> i < 2) (List.filter (fun v -> sel.(v)) nodes) in
        let neg = List.filteri (fun i _ -> i < 2) (List.filter (fun v -> not sel.(v)) nodes) in
        let s = List.fold_left Sample.add_pos Sample.empty pos in
        let s = List.fold_left Sample.add_neg s neg in
        match Learner.learn g s with
        | Learner.Learned q -> Gps_query.Eval.consistent g q ~pos ~neg
        | Learner.Failed _ ->
            (* goal-derived labels are consistent by construction, so the
               only acceptable failure is a search timeout *)
            false);
    Test.make ~name:"witness search result is genuinely uncovered and a real path" ~count:100
      arb_setup (fun (g, seed) ->
        let rng = Prng.create ~seed in
        let v = Prng.int rng (Digraph.n_nodes g) in
        let negs =
          List.filter (fun u -> u <> v)
            [ Prng.int rng (Digraph.n_nodes g); Prng.int rng (Digraph.n_nodes g) ]
        in
        match Witness_search.search g v ~negatives:negs with
        | Witness_search.Found w ->
            (not (Gps_query.Pathlang.covers g negs w))
            && (w = [] || Gps_query.Pathlang.covers g [ v ] w)
        | Witness_search.Uninformative ->
            (* verify on bounded enumeration: no uncovered word up to 4 *)
            let module W = Gps_graph.Walks in
            List.for_all
              (fun word -> Gps_query.Pathlang.covers g negs (W.word_names g word))
              (W.words g v ~max_len:4)
        | Witness_search.Timeout -> true);
    Test.make ~name:"rpni result accepts all its words" ~count:100
      (make Gen.(list_size (int_range 1 5) (list_size (int_bound 4) (oneofl [ "a"; "b" ]))))
      (fun words ->
        let pta = Gps_automata.Pta.build words in
        (* oracle: reject automata accepting the fresh symbol z *)
        let ok nfa = not (Gps_automata.Nfa.accepts nfa [ "z" ]) in
        let nfa = Rpni.generalize pta ~consistent:ok in
        accepts_all nfa words);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "learning.sample",
      [
        t "basic" test_sample_basic;
        t "contradiction" test_sample_contradiction;
        t "validate" test_sample_validate;
        t "idempotent" test_sample_idempotent_relabel;
      ] );
    ( "learning.witness_search",
      [
        t "found" test_witness_search_found;
        t "shortest" test_witness_search_shortest;
        t "uninformative" test_witness_search_uninformative;
        t "no negatives" test_witness_search_no_negatives;
        t "subsumed" test_witness_search_subsumed_node;
        t "cycles terminate" test_witness_search_cycles_terminate;
        t "cycle found" test_witness_search_cycle_found;
        t "fuel" test_witness_search_fuel;
        t "max_len" test_witness_search_max_len;
        t "count_uncovered" test_count_uncovered;
      ] );
    ( "learning.rpni",
      [
        t "collapse without oracle" test_rpni_no_negatives_collapses;
        t "oracle blocks merges" test_rpni_oracle_blocks;
        t "inconsistent pta" test_rpni_inconsistent_pta;
        t "star generalization" test_rpni_star_generalization;
      ] );
    ( "learning.learner",
      [
        t "paper example (Section 2)" test_learner_paper_example;
        t "without validation (Section 3)" test_learner_without_validation_is_weaker;
        t "empty sample" test_learner_empty_sample;
        t "only negatives" test_learner_only_negatives;
        t "conflict" test_learner_conflict;
        t "covered witness" test_learner_covered_witness;
        t "consistency on city graph" test_learner_consistency_always;
      ] );
    ("learning.static", [ t "consistent" test_static_consistent; t "conflict" test_static_conflict ]);
    ("learning.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
