(* Unit and property tests for gps_regex: smart constructors, parser,
   printer, derivatives. *)

open Gps_regex

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let p = Parse.parse_exn

(* -------------------------------------------------------------------- *)
(* Smart constructors *)

let test_alt_normalization () =
  check "idempotent" true (Regex.equal (Regex.alt [ p "a"; p "a" ]) (p "a"));
  check "commutative" true (Regex.equal (Regex.alt [ p "a"; p "b" ]) (Regex.alt [ p "b"; p "a" ]));
  check "empty neutral" true (Regex.equal (Regex.alt [ Regex.empty; p "a" ]) (p "a"));
  check "flattening" true
    (Regex.equal (Regex.alt [ p "a"; Regex.alt [ p "b"; p "c" ] ]) (p "a+b+c"))

let test_seq_normalization () =
  check "epsilon neutral" true (Regex.equal (Regex.seq [ Regex.epsilon; p "a" ]) (p "a"));
  check "empty absorbing" true (Regex.equal (Regex.seq [ Regex.empty; p "a" ]) Regex.empty);
  check "flattening" true
    (Regex.equal (Regex.seq [ p "a"; Regex.seq [ p "b"; p "c" ] ]) (p "a.b.c"))

let test_star_normalization () =
  check "star of empty" true (Regex.equal (Regex.star Regex.empty) Regex.epsilon);
  check "star of epsilon" true (Regex.equal (Regex.star Regex.epsilon) Regex.epsilon);
  check "star idempotent" true (Regex.equal (Regex.star (Regex.star (p "a"))) (Regex.star (p "a")));
  check "(eps+a)* = a*" true (Regex.equal (Regex.star (Regex.opt (p "a"))) (Regex.star (p "a")))

let test_derived_forms () =
  check "plus" true (Regex.equal (Regex.plus (p "a")) (p "a.a*"));
  check "opt nullable" true (Regex.nullable (Regex.opt (p "a")));
  check "word" true (Regex.equal (Regex.word [ "a"; "b" ]) (p "a.b"))

let test_nullable () =
  check "star" true (Regex.nullable (p "a*"));
  check "sym" false (Regex.nullable (p "a"));
  check "seq of stars" true (Regex.nullable (p "a*.b*"));
  check "seq with sym" false (Regex.nullable (p "a*.b"));
  check "alt one nullable" true (Regex.nullable (p "a+b*"));
  check "epsilon" true (Regex.nullable Regex.epsilon);
  check "empty" false (Regex.nullable Regex.empty)

let test_metrics () =
  check "alphabet" true (Regex.alphabet (p "(tram+bus)*.cinema") = [ "bus"; "cinema"; "tram" ]);
  check "size positive" true (Regex.size (p "(a+b)*.c") > 3);
  check "height" true (Regex.height (p "a") = 1)

(* -------------------------------------------------------------------- *)
(* Parser and printer *)

let test_parse_paper_query () =
  let q = p "(tram+bus)*.cinema" in
  check_str "roundtrip" "(bus+tram)*.cinema" (Regex.to_string q)

let test_parse_adjacency () =
  check "adjacency = dot" true (Regex.equal (p "bus bus cinema") (p "bus.bus.cinema"))

let test_parse_postfix () =
  check "opt" true (Regex.equal (p "a?") (Regex.opt (p "a")));
  check "double star" true (Regex.equal (p "a**") (p "a*"))

let test_parse_epsilon_empty () =
  check "eps word" true (Regex.equal (p "eps") Regex.epsilon);
  check "unicode eps" true (Regex.equal (p "\xce\xb5") Regex.epsilon);
  check "empty word" true (Regex.equal (p "empty") Regex.empty);
  check "unicode empty" true (Regex.equal (p "\xe2\x88\x85") Regex.empty)

let test_parse_errors () =
  let fails s =
    match Parse.parse s with Ok _ -> Alcotest.failf "should not parse: %s" s | Error _ -> ()
  in
  fails "";
  fails "(a";
  fails "a)";
  fails "+a";
  fails "a..b";
  fails "a %"

let test_print_parse_roundtrip_cases () =
  List.iter
    (fun s ->
      let r = p s in
      let r' = p (Regex.to_string r) in
      check ("roundtrip " ^ s) true (Regex.equal r r'))
    [
      "a";
      "a.b.c";
      "a+b+c";
      "(a+b)*.c";
      "a.(b+c)*";
      "((a.b)+c)*";
      "a*.b*.c*";
      "a?";
      "(a.b)?";
      "tram*.restaurant";
    ]

(* -------------------------------------------------------------------- *)
(* Derivatives *)

let test_matches_basic () =
  let q = p "(tram+bus)*.cinema" in
  check "cinema" true (Deriv.matches q [ "cinema" ]);
  check "bus.cinema" true (Deriv.matches q [ "bus"; "cinema" ]);
  check "bus.tram.cinema" true (Deriv.matches q [ "bus"; "tram"; "cinema" ]);
  check "not bus" false (Deriv.matches q [ "bus" ]);
  check "not empty" false (Deriv.matches q []);
  check "not cinema.bus" false (Deriv.matches q [ "cinema"; "bus" ])

let test_matches_star () =
  let q = p "a*" in
  check "empty" true (Deriv.matches q []);
  check "aaa" true (Deriv.matches q [ "a"; "a"; "a" ]);
  check "b" false (Deriv.matches q [ "b" ])

let test_derive_unknown_symbol () =
  check "derivative by foreign symbol is empty" true
    (Regex.is_empty_lang (Deriv.derive "zzz" (p "a.b")))

let test_derivatives_finite () =
  let ds = Deriv.derivatives (p "(a+b)*.c.(a.b)*") in
  check "finitely many" true (List.length ds < 50);
  check "contains self" true (List.exists (Regex.equal (p "(a+b)*.c.(a.b)*")) ds)

(* -------------------------------------------------------------------- *)
(* Properties *)

(* random regex generator over alphabet {a,b,c} *)
let gen_regex =
  let open QCheck.Gen in
  let sym = oneofl [ "a"; "b"; "c" ] in
  fix
    (fun self n ->
      if n <= 1 then
        frequency [ (6, map Regex.sym sym); (1, return Regex.epsilon); (1, return Regex.empty) ]
      else
        frequency
          [
            (3, map Regex.sym sym);
            (2, map2 (fun a b -> Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
            (3, map2 (fun a b -> Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
            (2, map Regex.star (self (n - 1)));
          ])
    8

let arb_regex = QCheck.make ~print:Regex.to_string gen_regex

let gen_word = QCheck.Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ]))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"print/parse roundtrip preserves language (structural)" ~count:500 arb_regex
      (fun r ->
        let printed = Regex.to_string r in
        Regex.equal r (Parse.parse_exn printed));
    Test.make ~name:"nullable agrees with matches []" ~count:500 arb_regex (fun r ->
        Regex.nullable r = Deriv.matches r []);
    Test.make ~name:"derivative soundness: w in L(r) iff tail in L(derive a r)" ~count:500
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        match w with
        | [] -> true
        | a :: rest -> Deriv.matches r w = Deriv.matches (Deriv.derive a r) rest);
    Test.make ~name:"alt is least upper bound" ~count:300 (triple arb_regex arb_regex (make gen_word))
      (fun (r1, r2, w) ->
        Deriv.matches (Regex.alt [ r1; r2 ]) w = (Deriv.matches r1 w || Deriv.matches r2 w));
    Test.make ~name:"star absorbs concatenation with self" ~count:300
      (pair arb_regex (make gen_word)) (fun (r, w) ->
        let s = Regex.star r in
        (* the star is idempotent under concatenation with itself *)
        Deriv.matches s w = Deriv.matches (Regex.seq [ s; s ]) w);
    Test.make ~name:"size is monotone under star" ~count:300 arb_regex (fun r ->
        Regex.size (Regex.star r) <= Regex.size r + 1);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "regex.constructors",
      [
        t "alt" test_alt_normalization;
        t "seq" test_seq_normalization;
        t "star" test_star_normalization;
        t "derived forms" test_derived_forms;
        t "nullable" test_nullable;
        t "metrics" test_metrics;
      ] );
    ( "regex.parse",
      [
        t "paper query" test_parse_paper_query;
        t "adjacency" test_parse_adjacency;
        t "postfix" test_parse_postfix;
        t "epsilon/empty" test_parse_epsilon_empty;
        t "errors" test_parse_errors;
        t "roundtrip cases" test_print_parse_roundtrip_cases;
      ] );
    ( "regex.deriv",
      [
        t "paper query membership" test_matches_basic;
        t "star" test_matches_star;
        t "unknown symbol" test_derive_unknown_symbol;
        t "finitely many derivatives" test_derivatives_finite;
      ] );
    ("regex.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
