(* Tests for gps_viz: the ASCII and DOT renderers of the Figure 3 views.
   Renderers are checked structurally (markers present/absent), not by
   golden strings, so cosmetic changes don't break the suite. *)

open Gps_graph
module View = Gps_interactive.View
module Ascii = Gps_viz.Ascii
module Dotviz = Gps_viz.Dotviz

let check = Alcotest.(check bool)
let node g n = Option.get (Digraph.node_of_name g n)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let count_lines s = List.length (String.split_on_char '\n' s)

(* -------------------------------------------------------------------- *)

let test_ascii_neighborhood_markers () =
  let g = Datasets.figure1 () in
  let v = View.make_neighborhood g (node g "N2") ~radius:2 in
  let out = Ascii.neighborhood g v in
  check "mentions center" true (contains ~needle:"N2" out);
  check "frontier dots present (paper's ...)" true (contains ~needle:"..." out);
  check "radius in header" true (contains ~needle:"radius 2" out);
  check "cinema invisible at radius 2" false (contains ~needle:"C1" out)

let test_ascii_zoom_highlight () =
  let g = Datasets.figure1 () in
  let v2 = View.make_neighborhood g (node g "N2") ~radius:2 in
  let v3 = View.make_neighborhood g ~previous:v2.View.fragment (node g "N2") ~radius:3 in
  let out = Ascii.neighborhood g v3 in
  check "newly revealed node marked" true (contains ~needle:"C1 (+)" out);
  check "newly revealed edge marked" true (contains ~needle:"+cinema" out);
  check "legend shown" true (contains ~needle:"newly revealed" out)

let test_ascii_neighborhood_shared_nodes () =
  (* a node reachable along two branches is expanded once *)
  let g = Codec.of_edges [ ("a", "x", "b"); ("a", "y", "b"); ("b", "z", "c") ] in
  let v = View.make_neighborhood g (node g "a") ~radius:3 in
  let out = Ascii.neighborhood g v in
  check "revisit marked" true (contains ~needle:"(seen)" out)

let test_ascii_path_tree () =
  let g = Datasets.figure1 () in
  match View.make_path_tree g (node g "N2") ~negatives:[ node g "N5" ] ~max_len:3 with
  | None -> Alcotest.fail "tree expected"
  | Some tree ->
      let out = Ascii.path_tree tree in
      check "suggestion marked" true (contains ~needle:"<== suggested" out);
      check "accepting words ticked" true (contains ~needle:" *" out);
      check "header has count" true (contains ~needle:"candidate paths (6)" out)

let test_ascii_summary_and_witness () =
  let g = Datasets.figure1 () in
  check "summary mentions nodes" true (contains ~needle:"nodes: 10" (Ascii.graph_summary g));
  let q = Gps_query.Rpq.of_string_exn "tram.cinema" in
  let w = Option.get (Gps_query.Witness.find g q (node g "N1")) in
  Alcotest.(check string) "witness" "N1 -tram-> N4 -cinema-> C1" (Ascii.witness g w)

(* -------------------------------------------------------------------- *)

let test_dot_neighborhood () =
  let g = Datasets.figure1 () in
  let v2 = View.make_neighborhood g (node g "N2") ~radius:2 in
  let v3 = View.make_neighborhood g ~previous:v2.View.fragment (node g "N2") ~radius:3 in
  let out = Dotviz.neighborhood g v3 in
  check "valid digraph" true (contains ~needle:"digraph" out);
  check "center highlighted" true (contains ~needle:"gold" out);
  check "additions in blue" true (contains ~needle:"color=blue" out);
  (* the radius-2 view is incomplete, so it must carry the "..." marker;
     the radius-3 view shows everything reachable and must not *)
  check "frontier dots at radius 2" true
    (contains ~needle:"label=\"...\"" (Dotviz.neighborhood g v2));
  check "no frontier dots at radius 3" false (contains ~needle:"label=\"...\"" out)

let test_dot_path_tree () =
  let g = Datasets.figure1 () in
  match View.make_path_tree g (node g "N2") ~negatives:[ node g "N5" ] ~max_len:3 with
  | None -> Alcotest.fail "tree expected"
  | Some tree ->
      let out = Dotviz.path_tree tree in
      check "valid digraph" true (contains ~needle:"digraph" out);
      check "accepting double circles" true (contains ~needle:"doublecircle" out);
      check "suggested branch bold" true (contains ~needle:"penwidth=2" out);
      check "left-to-right" true (contains ~needle:"rankdir=LR" out)

(* -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let arb_graph =
    make
      Gen.(
        let* n = int_range 2 12 in
        let* m = int_range 1 30 in
        let* seed = int_range 0 5_000 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b" ] ~seed))
  in
  [
    Test.make ~name:"ascii neighborhood renders every member node" ~count:100 arb_graph
      (fun g ->
        let v = View.make_neighborhood g 0 ~radius:2 in
        let out = Ascii.neighborhood g v in
        List.for_all
          (fun (n, _) -> contains ~needle:(Digraph.node_name g n) out)
          v.View.fragment.Neighborhood.nodes);
    Test.make ~name:"dot output is balanced and line-structured" ~count:100 arb_graph (fun g ->
        let v = View.make_neighborhood g 0 ~radius:2 in
        let out = Dotviz.neighborhood g v in
        let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 out in
        let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 out in
        opens = closes && count_lines out >= 3);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "viz.ascii",
      [
        t "neighborhood markers" test_ascii_neighborhood_markers;
        t "zoom highlight (Fig 3b)" test_ascii_zoom_highlight;
        t "shared nodes" test_ascii_neighborhood_shared_nodes;
        t "path tree (Fig 3c)" test_ascii_path_tree;
        t "summary and witness" test_ascii_summary_and_witness;
      ] );
    ( "viz.dot",
      [ t "neighborhood" test_dot_neighborhood; t "path tree" test_dot_path_tree ] );
    ("viz.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
