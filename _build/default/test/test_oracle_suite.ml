(* Heavy cross-validation properties: each pits an optimized implementation
   against an independent brute-force oracle written here, in the dumbest
   possible style, so a shared bug is implausible. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Twoway = Gps_query.Twoway
module Deriv = Gps_regex.Deriv

(* ------------------------------------------------------------------ *)
(* brute-force one-way selection: enumerate all walks up to a bound and
   test each word with derivatives *)

let brute_select g regex ~bound =
  let matches w = Deriv.matches regex w in
  Array.init (Digraph.n_nodes g) (fun v ->
      matches []
      || List.exists
           (fun word -> matches (Walks.word_names g word))
           (Walks.words g v ~max_len:bound))

(* brute-force two-way selection: BFS over (node, word) pairs where steps
   may follow out-edges (plain symbol) or in-edges (inverse symbol) *)
let brute_two_way g regex ~bound =
  let matches w = Deriv.matches regex w in
  let select v =
    (* enumerate two-way words breadth-first from v, dedup on (endpoint
       set is wrong for two-way; use plain (node, word) states, bounded) *)
    let seen = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add (v, []) q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u, rev_word = Queue.pop q in
      let word = List.rev rev_word in
      if matches word then found := true
      else if List.length word < bound then begin
        List.iter
          (fun (lbl, d) ->
            let key = (d, Digraph.label_name g lbl :: rev_word) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              Queue.add key q
            end)
          (Digraph.out_edges g u);
        List.iter
          (fun (lbl, s) ->
            let key = (s, (Digraph.label_name g lbl ^ "~") :: rev_word) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              Queue.add key q
            end)
          (Digraph.in_edges g u)
      end
    done;
    !found
  in
  Array.init (Digraph.n_nodes g) select

(* star-free regexes over {a,b,a~,b~}: bounded enumeration is complete *)
let gen_starfree_twoway =
  QCheck.Gen.(
    let sym = oneofl [ "a"; "b"; "a~"; "b~" ] in
    fix
      (fun self n ->
        if n <= 1 then map Gps_regex.Regex.sym sym
        else
          frequency
            [
              (3, map Gps_regex.Regex.sym sym);
              (2, map2 (fun a b -> Gps_regex.Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
              (3, map2 (fun a b -> Gps_regex.Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
            ])
      5)

let gen_starfree_oneway =
  QCheck.Gen.(
    let sym = oneofl [ "a"; "b" ] in
    fix
      (fun self n ->
        if n <= 1 then map Gps_regex.Regex.sym sym
        else
          frequency
            [
              (3, map Gps_regex.Regex.sym sym);
              (2, map2 (fun a b -> Gps_regex.Regex.alt [ a; b ]) (self (n / 2)) (self (n / 2)));
              (3, map2 (fun a b -> Gps_regex.Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2)));
            ])
      6)

let arb_graph =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* m = int_range 1 18 in
      let* seed = int_range 0 20_000 in
      return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b" ] ~seed))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"two-way product agrees with brute-force two-way walker" ~count:250
      (pair arb_graph (make ~print:Gps_regex.Regex.to_string gen_starfree_twoway))
      (fun (g, r) ->
        let bound = Gps_regex.Regex.size r in
        Twoway.select g (Rpq.of_regex r) = brute_two_way g r ~bound);
    Test.make ~name:"all four one-way evaluators agree with brute force" ~count:250
      (pair arb_graph (make ~print:Gps_regex.Regex.to_string gen_starfree_oneway))
      (fun (g, r) ->
        let q = Rpq.of_regex r in
        let bound = Gps_regex.Regex.size r in
        let reference = brute_select g r ~bound in
        Eval.select g q = reference
        && Eval.select_via_dfa g q = reference
        && Eval.select_frozen g (Csr.freeze g) q = reference
        && Twoway.select g q = reference);
    Test.make ~name:"witness_lengths lower-bounds every accepted walk" ~count:200
      (pair arb_graph (make ~print:Gps_regex.Regex.to_string gen_starfree_oneway))
      (fun (g, r) ->
        let q = Rpq.of_regex r in
        let lens = Eval.witness_lengths g q in
        Digraph.fold_nodes
          (fun acc v ->
            acc
            &&
            match lens.(v) with
            | None -> true
            | Some l ->
                (* no accepted word among this node's walks is shorter *)
                List.for_all
                  (fun word ->
                    let w = Walks.word_names g word in
                    (not (Rpq.matches_word q w)) || List.length w >= l)
                  (Walks.words g v ~max_len:(max 0 (l - 1))))
          true g);
  ]

let suite = [ ("oracle.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
