(* Tests for the sixth wave: witness lengths and incremental evaluation. *)

open Gps_graph
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Witness = Gps_query.Witness
module Incremental = Gps_query.Incremental

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)

(* -------------------------------------------------------------------- *)
(* witness_lengths *)

let test_witness_lengths_figure1 () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let lens = Eval.witness_lengths g q in
  check "N4 has length 1" true (lens.(node g "N4") = Some 1);
  check "N1 has length 2" true (lens.(node g "N1") = Some 2);
  check "N2 has length 3" true (lens.(node g "N2") = Some 3);
  check "N5 unselected" true (lens.(node g "N5") = None)

let test_witness_lengths_epsilon () =
  let g = Datasets.figure1 () in
  let lens = Eval.witness_lengths g (Rpq.of_string_exn "bus*") in
  Digraph.iter_nodes (fun v -> check "all zero" true (lens.(v) = Some 0)) g

(* -------------------------------------------------------------------- *)
(* Incremental *)

let test_incremental_matches_initial () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let inc = Incremental.create g q in
  check "initial agreement" true (Incremental.agrees_with_scratch inc);
  check_int "count" 4 (Incremental.count inc)

let test_incremental_edge_extends_selection () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let inc = Incremental.create g q in
  check "N5 not selected yet" false (Incremental.selected inc (node g "N5"));
  (* give N5 a bus line to N4: now N5 -bus-> N4 -cinema-> C1 *)
  Digraph.add_edge g ~src:(node g "N5") ~label:"bus" ~dst:(node g "N4");
  Incremental.add_edge inc ~src:(node g "N5") ~label:"bus" ~dst:(node g "N4");
  check "N5 now selected" true (Incremental.selected inc (node g "N5"));
  check "still agrees with scratch" true (Incremental.agrees_with_scratch inc)

let test_incremental_irrelevant_label () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "cinema" in
  let inc = Incremental.create g q in
  let before = Incremental.select inc in
  Digraph.add_edge g ~src:(node g "N5") ~label:"restaurant" ~dst:(node g "R2");
  Incremental.add_edge inc ~src:(node g "N5") ~label:"restaurant" ~dst:(node g "R2");
  check "unchanged" true (Incremental.select inc = before);
  check "agrees" true (Incremental.agrees_with_scratch inc)

let test_incremental_new_nodes () =
  let g = Datasets.figure1 () in
  let q = Rpq.of_string_exn "(tram+bus)*.cinema" in
  let inc = Incremental.create g q in
  (* a brand-new district with a tram to N4 *)
  let n7 = Digraph.add_node g "N7" in
  Digraph.add_edge g ~src:n7 ~label:"tram" ~dst:(node g "N4");
  Incremental.add_edge inc ~src:n7 ~label:"tram" ~dst:(node g "N4");
  check "fresh node selected" true (Incremental.selected inc n7);
  check "agrees" true (Incremental.agrees_with_scratch inc)

let test_incremental_chain_propagation () =
  (* adding one edge at the far end must flip a whole chain *)
  let g = Generators.chain ~length:5 ~label:"a" in
  let q = Rpq.of_string_exn "a*.win" in
  let inc = Incremental.create g q in
  check_int "nobody yet" 0 (Incremental.count inc);
  let tail = node g "c5" in
  let prize = Digraph.add_node g "prize" in
  Digraph.add_edge g ~src:tail ~label:"win" ~dst:prize;
  Incremental.add_edge inc ~src:tail ~label:"win" ~dst:prize;
  check_int "whole chain selected" 6 (Incremental.count inc);
  check "agrees" true (Incremental.agrees_with_scratch inc)

(* -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"witness_lengths agree with Witness.find" ~count:200
      (make
         Gen.(
           let* n = int_range 2 10 in
           let* m = int_range 1 25 in
           let* seed = int_range 0 9_999 in
           return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b" ] ~seed)))
      (fun g ->
        let q = Rpq.of_string_exn "a.(a+b)*.b" in
        let lens = Eval.witness_lengths g q in
        Digraph.fold_nodes
          (fun acc v ->
            acc
            &&
            match (lens.(v), Witness.find g q v) with
            | Some l, Some w -> l = List.length w.Witness.word
            | None, None -> true
            | Some _, None | None, Some _ -> false)
          true g);
    Test.make ~name:"incremental stays correct through random insertions" ~count:100
      (make
         Gen.(
           let* seed = int_range 0 9_999 in
           let* extra = int_range 1 15 in
           return (seed, extra)))
      (fun (seed, extra) ->
        let g = Generators.uniform ~nodes:8 ~edges:10 ~labels:[ "a"; "b" ] ~seed in
        let q = Rpq.of_string_exn "(a+b)*.a.a" in
        let inc = Incremental.create g q in
        let rng = Prng.create ~seed in
        let ok = ref (Incremental.agrees_with_scratch inc) in
        for _ = 1 to extra do
          let src = Prng.int rng (Digraph.n_nodes g) in
          let dst = Prng.int rng (Digraph.n_nodes g) in
          let label = Prng.pick rng [ "a"; "b" ] in
          Digraph.add_edge g ~src ~label ~dst;
          Incremental.add_edge inc ~src ~label ~dst;
          ok := !ok && Incremental.agrees_with_scratch inc
        done;
        !ok);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "ext6.witness_lengths",
      [ t "figure1" test_witness_lengths_figure1; t "epsilon" test_witness_lengths_epsilon ] );
    ( "ext6.incremental",
      [
        t "initial" test_incremental_matches_initial;
        t "edge extends selection" test_incremental_edge_extends_selection;
        t "irrelevant label" test_incremental_irrelevant_label;
        t "new nodes" test_incremental_new_nodes;
        t "chain propagation" test_incremental_chain_propagation;
      ] );
    ("ext6.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
