  $ cat > fig1.g <<'END'
  > N2 bus N1
  > N2 bus N3
  > N1 tram N4
  > N1 bus N4
  > N4 cinema C1
  > N6 cinema C2
  > N6 bus N3
  > N5 tram N3
  > N5 restaurant R1
  > N3 restaurant R2
  > END
  $ gps stats fig1.g | head -4
  $ gps query fig1.g '(tram+bus)*.cinema' --witness
  $ gps learn fig1.g --pos N2,N6 --neg N5
  $ gps learn fig1.g --pos C1 --neg N5
  $ gps session fig1.g --goal '(tram+bus)*.cinema'
  $ gps session fig1.g --goal 'tram*.restaurant' --record j.json > first.out
  $ gps session fig1.g --replay j.json > second.out
  $ grep -v journal first.out > first.clean
  $ diff first.clean second.out
  $ gps generate --kind city --nodes 20 --seed 5 -o city.g
  $ gps generate --kind city --nodes 20 --seed 5 | head -1
  $ gps dot fig1.g --around N2 -r 2 | head -3
  $ gps convert fig1.g --to json > fig1.json
  $ head -3 fig1.json
  $ gps convert fig1.json --to edges > fig1_back.g
  $ gps query fig1_back.g '(tram+bus)*.cinema' | head -1
  $ printf 'n\nu\ny\n0\nn\nn\nn\ny\n' | gps session fig1.g --strategy sequential | tail -2 | head -1
  $ gps identify '(tram+bus)*.cinema'
  $ gps query fig1.g '((' 
  $ gps dot fig1.g --around NOPE
  $ gps generate --kind hovercraft
  $ gps convert fig1.g --to yaml
  $ echo 'broken line here extra' > bad.g
  $ gps stats bad.g
  $ gps session fig1.g --goal '(tram+bus)*.cinema' --budget 2 | grep finished
  $ gps session fig1.g --goal '(tram+bus)*.cinema' --explain | grep -E "N4|N5"
