The gps CLI end to end, on the paper's Figure 1 database.

  $ cat > fig1.g <<'END'
  > N2 bus N1
  > N2 bus N3
  > N1 tram N4
  > N1 bus N4
  > N4 cinema C1
  > N6 cinema C2
  > N6 bus N3
  > N5 tram N3
  > N5 restaurant R1
  > N3 restaurant R2
  > END

stats describes the graph:

  $ gps stats fig1.g | head -4
  nodes: 10
  edges: 10
  labels: 4
  avg out-degree: 1.00

query evaluates the paper's goal query and explains with witnesses:

  $ gps query fig1.g '(tram+bus)*.cinema' --witness
  (bus+tram)*.cinema selects 4 node(s)
    N2           N2 -bus-> N1 -tram-> N4 -cinema-> C1
    N1           N1 -tram-> N4 -cinema-> C1
    N4           N4 -cinema-> C1
    N6           N6 -cinema-> C2

learn from the paper's labels (static scenario; Section 3's `bus`):

  $ gps learn fig1.g --pos N2,N6 --neg N5
  learned: bus
  selects: N1, N2, N6

inconsistent labels are diagnosed, with a non-zero exit:

  $ gps learn fig1.g --pos C1 --neg N5
  no consistent query: node C1 is labeled positive but every path it has is covered by a negative node
  [2]

a simulated session with a goal in mind recovers an equivalent query:

  $ gps session fig1.g --goal '(tram+bus)*.cinema'
  
  session finished (user satisfied)
  learned query: bus*.cinema
  selects: N1, N2, N4, N6
  answers: 8  pruned: 5

record and replay a session:

  $ gps session fig1.g --goal 'tram*.restaurant' --record j.json > first.out
  $ gps session fig1.g --replay j.json > second.out
  $ grep -v journal first.out > first.clean
  $ diff first.clean second.out

generation is deterministic and loadable:

  $ gps generate --kind city --nodes 20 --seed 5 -o city.g
  wrote 18 nodes, 40 edges to city.g
  $ gps generate --kind city --nodes 20 --seed 5 | head -1
  node D4

dot emits GraphViz with the neighborhood conventions:

  $ gps dot fig1.g --around N2 -r 2 | head -3
  digraph "neighborhood" {
    "N2" [style=filled, fillcolor=gold, penwidth=2];
    "N1";

convert between edge-list and JSON, round-tripping:

  $ gps convert fig1.g --to json > fig1.json
  $ head -3 fig1.json
  {
    "nodes": [
      "N2",
  $ gps convert fig1.json --to edges > fig1_back.g
  $ gps query fig1_back.g '(tram+bus)*.cinema' | head -1
  (bus+tram)*.cinema selects 4 node(s)

an undo mid-session is honoured (the learned query still matches the goal set):

  $ printf 'n\nu\ny\n0\nn\nn\nn\ny\n' | gps session fig1.g --strategy sequential | tail -2 | head -1
  selects: N1, N2, N4, N6

identify a query's language via Angluin's L*:

  $ gps identify '(tram+bus)*.cinema'
  target      : (bus+tram)*.cinema
  identified  : (bus+tram)*.cinema
  equal       : true
  queries     : 31 membership, 2 equivalence
  minimal DFA : 3 states

error paths exit non-zero with readable messages:

  $ gps query fig1.g '((' 
  gps: parse error at 2: unexpected end of input
  [1]
  $ gps dot fig1.g --around NOPE
  gps: unknown node "NOPE"
  [1]
  $ gps generate --kind hovercraft
  gps: unknown kind "hovercraft"
  [1]
  $ gps convert fig1.g --to yaml
  gps: unknown format "yaml" (json or edges)
  [1]
  $ echo 'broken line here extra' > bad.g
  $ gps stats bad.g
  gps: bad.g:1: expected 'src label dst' or 'node name': "broken line here extra"
  [1]

a budget caps the simulated session:

  $ gps session fig1.g --goal '(tram+bus)*.cinema' --budget 2 | grep finished
  session finished (budget exhausted)

an oracle session can explain every node's final status:

  $ gps session fig1.g --goal '(tram+bus)*.cinema' --explain | grep -E "N4|N5"
  selects: N1, N2, N4, N6
    N3             pruned as uninformative: e.g. its path restaurant is also a path of the negative node N5
    N4             implied positive: it also has the validated path cinema
    C1             pruned as uninformative: e.g. its path the empty path is also a path of the negative node N5
    C2             pruned as uninformative: e.g. its path the empty path is also a path of the negative node N5
    N5             labeled negative
    R1             pruned as uninformative: e.g. its path the empty path is also a path of the negative node N5
    R2             pruned as uninformative: e.g. its path the empty path is also a path of the negative node N5
