(* The paper's three demonstration scenarios side by side.

   Run with: dune exec examples/static_vs_interactive.exe

   1. Static labeling: the user labels arbitrary nodes on her own; she can
      waste effort on uninformative nodes and even contradict herself.
   2. Interactive labeling without path validation: GPS picks informative
      nodes, but generalizes from witness paths it chose itself — the
      result is consistent yet often not the intended query.
   3. Interactive labeling with path validation (the full system): the
      user confirms the path of interest, and the intended query is
      recovered. *)

module Digraph = Gps.Graph.Digraph
module Sample = Gps.Learning.Sample
module Learner = Gps.Learning.Learner
module Static = Gps.Learning.Static
module Strategy = Gps.Interactive.Strategy
module Oracle = Gps.Interactive.Oracle
module Simulate = Gps.Interactive.Simulate
module Session = Gps.Interactive.Session
module Eval = Gps.Query.Eval
module Prng = Gps.Graph.Prng

let goal_str = "(tram+bus)*.cinema"

(* Scenario 1: label nodes in random order (as a user browsing freely
   might), stopping as soon as the learned query matches the goal on the
   instance. Counts how many labels that takes. *)
let static_labeling g goal seed =
  let rng = Prng.create ~seed in
  let sel = Eval.select g goal in
  let order = Prng.shuffle rng (Digraph.nodes g) in
  let rec go sample used = function
    | [] -> (used, false)
    | v :: rest -> (
        let sample = if sel.(v) then Sample.add_pos sample v else Sample.add_neg sample v in
        let used = used + 1 in
        match Learner.learn g sample with
        | Learner.Learned q when Eval.select g q = sel -> (used, true)
        | Learner.Learned _ -> go sample used rest
        | Learner.Failed _ -> (used, false))
  in
  go Sample.empty 0 order

let () =
  let g = Gps.Graph.Datasets.figure1 () in
  let goal = Gps.parse_query_exn goal_str in
  Printf.printf "graph: Figure 1 (%d nodes); goal query: %s\n\n" (Digraph.n_nodes g) goal_str;

  (* --- scenario 1: static labeling ------------------------------- *)
  Printf.printf "scenario 1 - static labeling (random browsing order):\n";
  let runs = List.init 10 (fun i -> static_labeling g goal (i + 1)) in
  let succeeded = List.filter snd runs in
  let avg =
    if succeeded = [] then 0.0
    else
      float_of_int (List.fold_left (fun a (n, _) -> a + n) 0 succeeded)
      /. float_of_int (List.length succeeded)
  in
  Printf.printf "  reached the goal in %d/10 runs, avg %.1f labels when successful\n"
    (List.length succeeded) avg;
  (* and the user can contradict herself: labeling the cinema node C1
     positive together with N5 negative is unsatisfiable *)
  let bad = Sample.of_names g ~pos:[ "C1" ] ~neg:[ "N5" ] in
  Printf.printf "  labeling +C1 -N5 is detected as: %s\n\n"
    (Format.asprintf "%a" (Static.pp_verdict g) (Static.check g bad));

  (* --- scenario 2: interactive, no real path validation ----------- *)
  Printf.printf "scenario 2 - interactive, user never zooms or corrects paths:\n";
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.eager ~goal) in
  let learned = trace.Simulate.outcome.Session.query in
  Printf.printf "  learned %s in %d answers -- consistent, but equals goal: %b\n\n"
    (Gps.Query.Rpq.to_string learned) trace.Simulate.questions
    (Eval.select g learned = Eval.select g goal);

  (* --- scenario 3: the full system ------------------------------- *)
  Printf.printf "scenario 3 - interactive with path validation (full GPS):\n";
  let o = Gps.specify_interactively g ~goal in
  Printf.printf "  learned %s in %d answers -- equals goal: %b, pruned %d nodes\n"
    (Gps.Query.Rpq.to_string o.Gps.learned) o.Gps.questions o.Gps.reached_goal o.Gps.pruned;

  (* same comparison at city scale *)
  let g = Gps.Graph.Generators.city (Gps.Graph.Generators.default_city ~districts:32) ~seed:9 in
  let goal = Gps.parse_query_exn goal_str in
  Printf.printf "\nsame comparison on a %d-node city graph:\n" (Digraph.n_nodes g);
  let s1, ok1 = static_labeling g goal 1 in
  Printf.printf "  static labels needed      : %s\n"
    (if ok1 then string_of_int s1 else "did not converge");
  let o = Gps.specify_interactively g ~goal in
  Printf.printf "  interactive (full) answers: %d (reached goal: %b)\n" o.Gps.questions
    o.Gps.reached_goal
