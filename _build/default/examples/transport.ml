(* Transport-network scenario: the demo's Transpole-style geographical
   data, at city scale.

   Run with: dune exec examples/transport.exe

   Generates a synthetic city (districts connected by tram/bus/metro
   lines, with cinemas/restaurants/museums/parks), then lets a simulated
   user specify several everyday queries interactively, comparing the
   three node-proposal strategies on the number of interactions. *)

module Digraph = Gps.Graph.Digraph
module Strategy = Gps.Interactive.Strategy

let queries =
  [
    ("reach a cinema by public transport", "(tram+bus+metro)*.cinema");
    ("a museum right after one tram hop", "tram.museum");
    ("restaurant district next door by bus", "bus.restaurant");
    ("metro-only access to a park", "metro*.park");
  ]

let () =
  let g = Gps.Graph.Generators.city (Gps.Graph.Generators.default_city ~districts:40) ~seed:2024 in
  Printf.printf "city graph: %d nodes, %d edges, labels: %s\n\n" (Digraph.n_nodes g)
    (Digraph.n_edges g)
    (String.concat ", " (List.sort compare (Digraph.labels g)));
  Printf.printf "%-42s %-28s %8s %8s %8s %7s\n" "intent" "goal query" "smart" "random" "degree"
    "|answer|";
  List.iter
    (fun (intent, qs) ->
      let goal = Gps.parse_query_exn qs in
      let run strategy =
        let o = Gps.specify_interactively ~strategy g ~goal in
        if o.Gps.reached_goal then string_of_int o.Gps.questions else "-"
      in
      Printf.printf "%-42s %-28s %8s %8s %8s %7d\n" intent qs (run Strategy.smart)
        (run (Strategy.random ~seed:1))
        (run Strategy.max_degree)
        (List.length (Gps.evaluate g goal)))
    queries;
  print_newline ();
  (* one full run in detail *)
  let goal = Gps.parse_query_exn "(tram+bus+metro)*.cinema" in
  let o = Gps.specify_interactively g ~goal in
  Printf.printf "detailed run for %s:\n" (Gps.Query.Rpq.to_string goal);
  Printf.printf "  learned    : %s\n" (Gps.Query.Rpq.to_string o.Gps.learned);
  Printf.printf "  goal set   : %d nodes, reached: %b\n"
    (List.length (Gps.evaluate g goal))
    o.Gps.reached_goal;
  Printf.printf "  questions  : %d (vs %d nodes in the graph)\n" o.Gps.questions
    (Digraph.n_nodes g);
  Printf.printf "  pruned     : %d nodes never had to be looked at\n" o.Gps.pruned
