(* Advanced features on the Transpole network: two-way queries, query
   specialization, session journals, batch statistics.

   Run with: dune exec examples/advanced.exe *)

module Digraph = Gps.Graph.Digraph
module Rpq = Gps.Query.Rpq
module Twoway = Gps.Query.Twoway
module Rewrite = Gps.Query.Rewrite
module Journal = Gps.Interactive.Journal
module Batch = Gps.Interactive.Batch
module Strategy = Gps.Interactive.Strategy
module Oracle = Gps.Interactive.Oracle
module Simulate = Gps.Interactive.Simulate

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let g = Gps.Graph.Datasets.transpole () in
  Printf.printf "Transpole network: %d stops/facilities, %d edges\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);

  section "Two-way query: from a restaurant, back to its stop, then to a cinema";
  let q = Gps.parse_query_exn "restaurant~.(metro+tram+bus)*.cinema" in
  let selected = Twoway.select_nodes g q in
  List.iter
    (fun v ->
      Printf.printf "  %s\n" (Digraph.node_name g v);
      match Twoway.witness g q v with
      | Some steps ->
          List.iteri
            (fun i s -> if i < 3 then Printf.printf "    %s\n" (Format.asprintf "%a" (Twoway.pp_step g) s))
            steps
      | None -> ())
    selected;

  section "Query specialization: dropping labels this graph does not have";
  let wide = Gps.parse_query_exn "(metro+tram+monorail)*.cinema" in
  Printf.printf "original    : %s\n" (Rpq.to_string wide);
  Printf.printf "dead symbols: %s\n" (String.concat ", " (Rewrite.dead_symbols g wide));
  Printf.printf "specialized : %s\n" (Rpq.to_string (Rewrite.specialize g wide));

  section "Journaling: record a session, replay it bit-for-bit";
  let goal = Gps.parse_query_exn "(metro+tram+bus)*.museum" in
  let user, journal_of = Journal.recording (Oracle.perfect ~goal) in
  let t1 = Simulate.run g ~strategy:Strategy.smart ~user in
  let journal = journal_of () in
  Printf.printf "recorded %d answers; learned %s\n" (List.length journal)
    (Rpq.to_string t1.Simulate.outcome.Gps.Interactive.Session.query);
  let t2 = Simulate.run g ~strategy:Strategy.smart ~user:(Journal.replayer journal) in
  Printf.printf "replayed: same query learned: %b\n"
    (Rpq.to_string t2.Simulate.outcome.Gps.Interactive.Session.query
    = Rpq.to_string t1.Simulate.outcome.Gps.Interactive.Session.query);

  section "Batch statistics: random strategy across 10 seeds";
  let summary =
    Batch.over_seeds g
      ~strategy:(fun ~seed -> Strategy.random ~seed)
      ~goal
      ~seeds:(List.init 10 (fun i -> i + 1))
      ~metric:(fun r -> float_of_int r.Batch.questions)
  in
  Printf.printf "questions: %s\n" (Format.asprintf "%a" Batch.pp_summary summary);
  let smart = Batch.run_once g ~strategy:Strategy.smart ~goal in
  Printf.printf "smart strategy needs %d (labels %d, zooms %d, validations %d)\n"
    smart.Batch.questions smart.Batch.labels smart.Batch.zooms smart.Batch.validations
