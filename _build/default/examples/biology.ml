(* Biological-network scenario: stands in for the AliBaba
   protein-interaction dataset of the companion paper's evaluation.

   Run with: dune exec examples/biology.exe

   A biologist wants "proteins whose activation cascade can end up
   treating a disease" without writing regular expressions. GPS asks her
   to label a handful of entities; witness walks explain each answer. *)

module Digraph = Gps.Graph.Digraph

let () =
  let g = Gps.Graph.Generators.bio ~nodes:150 ~seed:7 in
  Printf.printf "bio graph: %d nodes, %d edges\n" (Digraph.n_nodes g) (Digraph.n_edges g);
  print_string (Gps.Viz.Ascii.graph_summary g);
  print_newline ();

  let goals =
    [
      ("drugs that treat something", "treats");
      ("drugs binding a protein that activates another", "binds.activates");
      ("entities reaching a disease through interactions", "interacts*.associated");
    ]
  in
  List.iter
    (fun (intent, qs) ->
      let goal = Gps.parse_query_exn qs in
      let o = Gps.specify_interactively g ~goal in
      Printf.printf "\nintent: %s\n" intent;
      Printf.printf "  goal    : %s (%d nodes)\n" qs (List.length (Gps.evaluate g goal));
      Printf.printf "  learned : %s\n" (Gps.Query.Rpq.to_string o.Gps.learned);
      Printf.printf "  reached : %b with %d answers (%d pruned)\n" o.Gps.reached_goal
        o.Gps.questions o.Gps.pruned;
      (* explain the first three selected nodes with witness walks *)
      let selected = Gps.Query.Eval.select_nodes g o.Gps.learned in
      List.iteri
        (fun i v ->
          if i < 3 then
            match Gps.Query.Witness.find g o.Gps.learned v with
            | Some w -> Printf.printf "    why %-6s: %s\n" (Digraph.node_name g v)
                          (Gps.Viz.Ascii.witness g w)
            | None -> ())
        selected)
    goals
