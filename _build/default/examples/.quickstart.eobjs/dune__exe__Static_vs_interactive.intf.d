examples/static_vs_interactive.mli:
