examples/quickstart.mli:
