examples/static_vs_interactive.ml: Array Format Gps List Printf
