examples/quickstart.ml: Gps Option Printf String
