examples/biology.mli:
