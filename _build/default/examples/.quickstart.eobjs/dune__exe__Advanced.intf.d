examples/advanced.mli:
