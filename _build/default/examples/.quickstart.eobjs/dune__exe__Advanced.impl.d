examples/advanced.ml: Format Gps List Printf String
