examples/active_learning.ml: Gps List Option Printf
