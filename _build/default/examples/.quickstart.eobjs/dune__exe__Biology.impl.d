examples/biology.ml: Gps List Printf
