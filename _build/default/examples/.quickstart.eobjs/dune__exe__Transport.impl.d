examples/transport.ml: Gps List Printf String
