examples/transport.mli:
