(* Quickstart: the paper's motivating example, end to end.

   Run with: dune exec examples/quickstart.exe

   Walks through the exact scenario of the paper's Sections 2-3 on the
   Figure 1 geographical database: evaluating the goal query, inspecting
   the zoomable neighborhood of N2 (Figures 3a/3b), the candidate-path
   prefix tree (Figure 3c), and finally a full simulated interactive
   session that recovers the goal query. *)

module Digraph = Gps.Graph.Digraph
module View = Gps.Interactive.View

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let g = Gps.Graph.Datasets.figure1 () in
  section "The geographical database of Figure 1";
  print_string (Gps.Viz.Ascii.graph_summary g);
  print_newline ();

  section "Evaluating the goal query q = (tram+bus)*.cinema";
  let goal = Gps.parse_query_exn "(tram+bus)*.cinema" in
  Printf.printf "q selects: %s\n" (String.concat ", " (Gps.evaluate g goal));
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  (match Gps.Query.Witness.find g goal n2 with
  | Some w -> Printf.printf "why N2: %s\n" (Gps.Viz.Ascii.witness g w)
  | None -> assert false);

  section "Neighborhood of N2 at radius 2 (Figure 3a)";
  let v2 = View.make_neighborhood g n2 ~radius:2 in
  print_string (Gps.Viz.Ascii.neighborhood g v2);

  section "After zooming out to radius 3 (Figure 3b)";
  let v3 = View.make_neighborhood g ~previous:v2.View.fragment n2 ~radius:3 in
  print_string (Gps.Viz.Ascii.neighborhood g v3);

  section "Candidate paths of N2 given negative N5 (Figure 3c)";
  let n5 = Option.get (Digraph.node_of_name g "N5") in
  (match View.make_path_tree g n2 ~negatives:[ n5 ] ~max_len:3 with
  | Some tree -> print_string (Gps.Viz.Ascii.path_tree tree)
  | None -> assert false);

  section "Interactive session with a simulated user (goal in mind: q)";
  let outcome = Gps.specify_interactively g ~goal in
  Printf.printf "learned query : %s\n" (Gps.Query.Rpq.to_string outcome.Gps.learned);
  Printf.printf "selects exactly the goal's nodes (user's halt condition) : %b\n"
    outcome.Gps.reached_goal;
  Printf.printf "language-equal to the goal : %b%s\n"
    (Gps.Query.Rpq.equal_lang outcome.Gps.learned goal)
    "  (the user stops as soon as the result looks right on the instance)";
  Printf.printf "user answers : %d (labels %d, zooms %d, path validations %d)\n"
    outcome.Gps.questions outcome.Gps.labels outcome.Gps.zooms outcome.Gps.validations;
  Printf.printf "nodes pruned as uninformative : %d of %d\n" outcome.Gps.pruned
    (Digraph.n_nodes g);

  section "Static learning from the paper's labels (+N2 +N6 -N5)";
  (match Gps.learn g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] with
  | Ok q ->
      Printf.printf
        "without path validation the learner returns: %s\n\
         (consistent with the labels, but not the goal -- the paper's Section 3 point)\n"
        (Gps.Query.Rpq.to_string q)
  | Error e -> Printf.printf "error: %s\n" e)
