(* The learning stack side by side: Angluin's L* (the paper's framework
   reference [1]), word-level RPNI, the convergence teacher, and the full
   interactive session — all aiming at the same goal queries.

   Run with: dune exec examples/active_learning.exe *)

module Rpq = Gps.Query.Rpq
module Lstar = Gps.Learning.Lstar
module Word_learner = Gps.Learning.Word_learner
module Convergence = Gps.Learning.Convergence

let goals =
  [ "(a.b)*"; "a*.b"; "(a+b)*.a.b"; "(tram+bus)*.cinema" ]

let () =
  Printf.printf "%-24s %22s %18s %14s %14s\n" "goal" "L* (member/equiv)" "wordRPNI ok?"
    "teacher ex." "session ans.";
  List.iter
    (fun qs ->
      let goal = Rpq.of_string_exn qs in
      (* 1. L* with a perfect teacher: exact identification *)
      let lstar =
        match Lstar.learn_query goal with
        | Ok (learned, stats) ->
            Printf.sprintf "%d/%d%s" stats.Lstar.membership_queries
              stats.Lstar.equivalence_queries
              (if Rpq.equal_lang learned goal then "" else " (!)")
        | Error e -> "error: " ^ e
      in
      (* 2. word RPNI from a characteristic sample *)
      let word_rpni =
        let pos, neg = Word_learner.characteristic_words ~max_len:4 goal in
        match Word_learner.learn ~pos ~neg with
        | Ok learned -> string_of_bool (Word_learner.consistent_with learned ~pos ~neg)
        | Error _ -> "error"
      in
      (* 3 & 4 need a graph: use a city for transport labels, else skip *)
      let on_graph =
        let g =
          Gps.Graph.Generators.city (Gps.Graph.Generators.default_city ~districts:24) ~seed:3
        in
        if Gps.Query.Eval.count g goal = 0 then None
        else
          let teacher =
            match Convergence.examples_to_converge g ~goal with
            | Some n -> string_of_int n
            | None -> "-"
          in
          let session =
            let o = Gps.specify_interactively g ~goal in
            Printf.sprintf "%d%s" o.Gps.questions (if o.Gps.reached_goal then "" else " (!)")
          in
          Some (teacher, session)
      in
      let teacher, session = Option.value on_graph ~default:("n/a", "n/a") in
      Printf.printf "%-24s %22s %18s %14s %14s\n" qs lstar word_rpni teacher session)
    goals;
  print_newline ();
  print_endline
    "L* counts are membership/equivalence queries against a perfect teacher;";
  print_endline
    "'teacher ex.' is the labeled examples the counterexample teacher feeds the";
  print_endline
    "paper's learner; 'session ans.' is what the full interactive scenario asks a";
  print_endline "simulated user on a 48-node city graph."
