(* Tests for gps_par (the Domain work pool) and Gps_graph.Bitset (the
   packed membership tables) — the two substrates under the parallel
   evaluation kernel. The pool tests run real multi-domain pools even on
   a single-core host: chunk claiming, completion and exception
   propagation do not depend on physical parallelism. *)

open Gps_graph
module Pool = Gps_par.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check_int "length" 100 (Bitset.length b);
  check_int "empty" 0 (Bitset.cardinal b);
  check "nothing member" false (Bitset.mem b 0);
  Bitset.set b 42;
  check "42 in" true (Bitset.mem b 42);
  check "41 out" false (Bitset.mem b 41);
  check_int "one bit" 1 (Bitset.cardinal b)

let test_bitset_word_boundaries () =
  (* indices straddling byte (8) and word (32) packing edges *)
  let n = 100 in
  let b = Bitset.create n in
  let edges = [ 0; 7; 8; 15; 16; 31; 32; 33; 63; 64; n - 1 ] in
  List.iter (fun i -> check ("tas fresh " ^ string_of_int i) true (Bitset.test_and_set b i)) edges;
  List.iter
    (fun i -> check ("tas again " ^ string_of_int i) false (Bitset.test_and_set b i))
    edges;
  check_int "cardinal = distinct edges" (List.length edges) (Bitset.cardinal b);
  for i = 0 to n - 1 do
    check ("mem " ^ string_of_int i) (List.mem i edges) (Bitset.mem b i)
  done;
  Bitset.clear b;
  check_int "clear empties" 0 (Bitset.cardinal b);
  check "cleared bit" false (Bitset.mem b 32)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  let raises f = match f () with () -> false | exception Invalid_argument _ -> true in
  check "mem -1" true (raises (fun () -> ignore (Bitset.mem b (-1))));
  check "set 10" true (raises (fun () -> Bitset.set b 10));
  check "tas 11" true (raises (fun () -> ignore (Bitset.test_and_set b 11)));
  check "negative create" true (raises (fun () -> ignore (Bitset.create (-1))));
  check "zero-length ok" true (Bitset.cardinal (Bitset.create 0) = 0)

let test_atomic_bitset_basic () =
  let b = Bitset.Atomic.create 100 in
  check_int "length" 100 (Bitset.Atomic.length b);
  let edges = [ 0; 31; 32; 63; 64; 99 ] in
  List.iter (fun i -> check ("tas " ^ string_of_int i) true (Bitset.Atomic.test_and_set b i)) edges;
  List.iter
    (fun i -> check ("tas dup " ^ string_of_int i) false (Bitset.Atomic.test_and_set b i))
    edges;
  check_int "cardinal" (List.length edges) (Bitset.Atomic.cardinal b);
  check "mem" true (Bitset.Atomic.mem b 64);
  check "not mem" false (Bitset.Atomic.mem b 65);
  Bitset.Atomic.clear b;
  check_int "cleared" 0 (Bitset.Atomic.cardinal b)

let test_atomic_bitset_race_free () =
  (* 4 domains all test-and-set every bit of a shared set; exactly one
     winner per bit means total successes = number of bits, regardless
     of interleaving. *)
  let n = 4096 in
  let b = Bitset.Atomic.create n in
  let pool = Pool.create ~domains:4 in
  let wins = Array.make 8 0 in
  Pool.run pool ~chunks:8 (fun c ->
      let w = ref 0 in
      for i = 0 to n - 1 do
        if Bitset.Atomic.test_and_set b i then incr w
      done;
      wins.(c) <- !w);
  check_int "every bit set" n (Bitset.Atomic.cardinal b);
  check_int "each bit won exactly once" n (Array.fold_left ( + ) 0 wins);
  Pool.shutdown pool

(* -------------------------------------------------------------------- *)
(* Pool *)

let test_pool_covers_all_chunks () =
  let pool = Pool.create ~domains:3 in
  check_int "size" 3 (Pool.size pool);
  let hits = Array.make 57 0 in
  Pool.run pool ~chunks:57 (fun i -> hits.(i) <- hits.(i) + 1);
  check "each chunk exactly once" true (Array.for_all (fun c -> c = 1) hits);
  Pool.shutdown pool

let test_pool_reuse () =
  let pool = Pool.create ~domains:2 in
  let acc = Atomic.make 0 in
  for _ = 1 to 20 do
    Pool.run pool ~chunks:5 (fun i -> ignore (Atomic.fetch_and_add acc (i + 1)))
  done;
  check_int "20 jobs of 1+2+3+4+5" (20 * 15) (Atomic.get acc);
  Pool.run pool ~chunks:0 (fun _ -> Alcotest.fail "zero chunks must not run");
  Pool.shutdown pool

let test_pool_single_domain () =
  let pool = Pool.create ~domains:1 in
  let order = ref [] in
  Pool.run pool ~chunks:4 (fun i -> order := i :: !order);
  (* no workers: chunks run inline, in order, on the caller *)
  Alcotest.(check (list int)) "inline order" [ 3; 2; 1; 0 ] !order;
  Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Pool.create ~domains:4 in
  let ran = Array.make 16 false in
  (try
     Pool.run pool ~chunks:16 (fun i ->
         ran.(i) <- true;
         if i = 7 then failwith "chunk 7");
     Alcotest.fail "expected Failure"
   with Failure msg -> Alcotest.(check string) "first failure" "chunk 7" msg);
  check "all chunks still completed" true (Array.for_all Fun.id ran);
  (* the pool survives a failing job *)
  let sum = Atomic.make 0 in
  Pool.run pool ~chunks:8 (fun i -> ignore (Atomic.fetch_and_add sum i));
  check_int "usable after failure" 28 (Atomic.get sum);
  Pool.shutdown pool

let test_pool_invalid_sizes () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "domains=0 rejected" true (raises (fun () -> Pool.create ~domains:0));
  check "set_default_domains 0 rejected" true (raises (fun () -> Pool.set_default_domains 0));
  check "default >= 1" true (Pool.default_domains () >= 1)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  let raises f = match f () with () -> false | exception Invalid_argument _ -> true in
  check "run after shutdown rejected" true
    (raises (fun () -> Pool.run pool ~chunks:4 (fun _ -> ())))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "par.bitset",
      [
        t "basic" test_bitset_basic;
        t "word boundaries" test_bitset_word_boundaries;
        t "bounds checks" test_bitset_bounds;
        t "atomic basic" test_atomic_bitset_basic;
        t "atomic race-free under pool" test_atomic_bitset_race_free;
      ] );
    ( "par.pool",
      [
        t "covers all chunks" test_pool_covers_all_chunks;
        t "reuse across jobs" test_pool_reuse;
        t "single domain inline" test_pool_single_domain;
        t "exception propagates" test_pool_exception_propagates;
        t "invalid sizes" test_pool_invalid_sizes;
        t "shutdown idempotent" test_pool_shutdown_idempotent;
      ] );
  ]
