let () =
  Alcotest.run "gps"
    (Test_graph_suite.suite @ Test_regex_suite.suite @ Test_automata_suite.suite
   @ Test_query_suite.suite @ Test_learning_suite.suite @ Test_interactive_suite.suite
   @ Test_viz_suite.suite @ Test_core_suite.suite @ Test_extensions_suite.suite @ Test_extensions2_suite.suite @ Test_extensions3_suite.suite @ Test_extensions4_suite.suite @ Test_extensions5_suite.suite @ Test_extensions6_suite.suite @ Test_extensions7_suite.suite @ Test_integration_suite.suite @ Test_lstar_suite.suite @ Test_coverage_suite.suite @ Test_oracle_suite.suite @ Test_invariants_suite.suite @ Test_server_suite.suite @ Test_obs_suite.suite @ Test_par_suite.suite
   @ Test_resilience_suite.suite @ Test_workload_suite.suite
   @ Test_introspection_suite.suite @ Test_ooc_suite.suite @ Test_runtime_suite.suite
   @ Test_durability_suite.suite)
