(* crash_harness — seeded SIGKILL/restart cycles against the durability
   layer (DESIGN §14, EXPERIMENTS EXP-CRASH).

   Two targets, each spawned as a child copy of this binary and killed
   with SIGKILL at a seeded-random point:

   - store: a worker appends a deterministic op stream to a {!Store}
     (fsync=always) and acknowledges every durable op to a side file.
     After the kill the parent replays the log and checks the crash
     invariants: the log never reports corruption (a kill can only tear
     the tail), every acknowledged op is present, the replayed record
     count sits inside the one-op in-flight window, and the recovered
     graph is byte-equivalent to a reference replay of the same op
     prefix.

   - server: a worker runs the real TCP server with --state-dir; the
     parent drives interactive sessions over the socket, counting every
     acknowledged mutation per session. After the kill it scans the
     journals (no CRC failures, answers within [acked, acked+1]),
     recovers them through a fresh server (zero failed journals, every
     driven session restored and still answering) and finally stops
     every session, which must leave the state dir empty.

   Invocation:
     crash_harness [--mode store|server|both] [--cycles N] [--seed S]
   plus the two internal worker entry points (store-worker,
   server-worker). Exit 0 only if every cycle upholds every invariant. *)

module Json = Gps_graph.Json
module Digraph = Gps_graph.Digraph
module Store = Gps_graph.Store
module Wal = Gps_graph.Wal
module Srv = Gps_server.Server
module D = Gps_server.Durability

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("crash_harness: FAIL: " ^ m); exit 1) fmt

let info fmt = Printf.ksprintf (fun m -> print_endline ("crash_harness: " ^ m)) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let temp_dir tag seed =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gps_crash_%s_%d_%d" tag (Unix.getpid ()) seed)
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

(* spawn a child copy of this binary; stdin </dev/null, stderr inherited *)
let spawn args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process Sys.executable_name
      (Array.append [| Sys.executable_name |] args)
      devnull Unix.stdout Unix.stderr
  in
  Unix.close devnull;
  pid

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* ------------------------------------------------------------------ *)
(* the deterministic store workload, shared by worker and verifier     *)

let n_names = 200

type op = Node of int | Edge of int * int * int

(* op [k] of the stream for [seed]; every op appends exactly one store
   record (nodes first, then edges whose (src,dst) pairs never repeat
   for e < n_names²) *)
let op_at ~seed k =
  if k < n_names then Node k
  else
    let e = k - n_names in
    let src = e mod n_names in
    let dst = ((e / n_names * 31) + seed) mod n_names in
    Edge (src, (e + seed) mod 7, dst)

let node_name i = Printf.sprintf "n%03d" i
let label_name i = Printf.sprintf "l%d" i

let apply_ref g = function
  | Node i -> ignore (Digraph.add_node g (node_name i))
  | Edge (s, l, d) -> Digraph.link g (node_name s) (label_name l) (node_name d)

(* canonical byte dump: node names in id order, then edges in insertion
   order — two graphs built by the same op sequence dump identically *)
let dump g =
  let b = Buffer.create 4096 in
  for n = 0 to Digraph.n_nodes g - 1 do
    Buffer.add_string b (Digraph.node_name g n);
    Buffer.add_char b '\n'
  done;
  Digraph.iter_edges
    (fun { Digraph.src; lbl; dst } ->
      Buffer.add_string b (Digraph.node_name g src);
      Buffer.add_char b '\t';
      Buffer.add_string b (Digraph.label_name g lbl);
      Buffer.add_char b '\t';
      Buffer.add_string b (Digraph.node_name g dst);
      Buffer.add_char b '\n')
    g;
  Buffer.contents b

(* child: append the op stream forever, acknowledging each durable op
   as one line in [ack]; the parent SIGKILLs us mid-flight *)
let store_worker log ack seed =
  let st = Store.openfile ~policy:Wal.Always log in
  let out = open_out ack in
  let k = ref 0 in
  while true do
    (match op_at ~seed !k with
    | Node i -> ignore (Store.add_node st (node_name i))
    | Edge (s, l, d) -> Store.link st (node_name s) (label_name l) (node_name d));
    (* the ack is written only after the op returned (= was fsynced);
       the ack file itself needs no fsync — SIGKILL spares the page
       cache, unlike power loss *)
    output_string out (string_of_int !k);
    output_char out '\n';
    flush out;
    incr k
  done

(* last fully-written ack, or -1; a torn final line (no trailing
   newline) is the in-flight op and is ignored — it may even parse as a
   valid-but-wrong int ("12" torn from "123"), so only the region up to
   the last newline counts *)
let read_acked ack =
  match open_in_bin ack with
  | exception Sys_error _ -> -1
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match String.rindex_opt s '\n' with
      | None -> -1
      | Some last_nl ->
          let start =
            match String.rindex_from_opt s (last_nl - 1) '\n' with
            | Some prev_nl -> prev_nl + 1
            | None -> 0
          in
          let line = String.sub s start (last_nl - start) in
          Option.value ~default:(-1) (int_of_string_opt line))

let outcome_name = function
  | `Clean -> "clean"
  | `Torn_tail -> "torn-tail"
  | `Corrupt_record -> "corrupt"

let store_cycle ~seed =
  let dir = temp_dir "store" seed in
  let log = Filename.concat dir "graph.log" in
  let ack = Filename.concat dir "acked" in
  let pid = spawn [| "store-worker"; log; ack; string_of_int seed |] in
  let rng = Random.State.make [| seed; 0xC0FFEE |] in
  let delay_ms = 20 + Random.State.int rng 130 in
  Unix.sleepf (float_of_int delay_ms /. 1000.);
  kill_and_reap pid;
  let acked = read_acked ack in
  (* invariant: a SIGKILL can tear the tail but never corrupt a record;
     corruption here would mean an undetected framing bug *)
  let vinfo =
    match Store.verify log with
    | Ok i -> i
    | Error e -> die "store seed=%d: verify refused the log: %s" seed e
  in
  if vinfo.Store.outcome = `Corrupt_record then
    die "store seed=%d: kill produced a CRC failure (outcome corrupt)" seed;
  (* openfile without ~recover: raises on corruption, truncates tears *)
  let st =
    try Store.openfile log
    with Failure m -> die "store seed=%d: recovery refused the log: %s" seed m
  in
  let r = Store.recovery st in
  let j = r.Store.entries_replayed in
  (* durability: every acked op must have reached the log (acked+1
     records), and at most one more op can be in flight beyond the last
     visible ack (the ack line for a durable op may itself be torn) *)
  if j < acked + 1 then
    die "store seed=%d: LOST ACKED OPS: %d acked but only %d records replayed" seed
      acked j;
  if j > acked + 2 then
    die "store seed=%d: %d records replayed but only %d acked (+1 in-flight allowed)"
      seed j acked;
  let g = Store.graph st in
  (* every acked op, explicitly *)
  for k = 0 to acked do
    match op_at ~seed k with
    | Node i ->
        if Digraph.node_of_name g (node_name i) = None then
          die "store seed=%d: acked node op %d missing after recovery" seed k
    | Edge (s, l, d) -> (
        match
          ( Digraph.node_of_name g (node_name s),
            Digraph.label_of_name g (label_name l),
            Digraph.node_of_name g (node_name d) )
        with
        | Some src, Some lbl, Some dst when Digraph.mem_edge g ~src ~lbl ~dst -> ()
        | _ -> die "store seed=%d: acked edge op %d missing after recovery" seed k)
  done;
  (* byte-equivalence with a reference replay of the same op prefix *)
  let g_ref = Digraph.create () in
  for k = 0 to j - 1 do
    apply_ref g_ref (op_at ~seed k)
  done;
  if dump g <> dump g_ref then
    die "store seed=%d: recovered graph differs from reference replay of %d ops" seed j;
  Store.close st;
  info "store  seed=%-4d kill=%3dms acked=%-5d replayed=%-5d tail=%s ok" seed delay_ms
    (acked + 1) j
    (outcome_name vinfo.Store.outcome);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* server mode                                                         *)

(* child: the real server — TCP transport, state dir, fsync=always —
   announcing its ephemeral port through [portfile] *)
let server_worker dir portfile =
  let config =
    { Srv.default_config with Srv.state_dir = Some dir; Srv.fsync = Wal.Always }
  in
  let t = Srv.create ~config () in
  ignore (Srv.handle_line t {|{"op":"load","name":"fig","builtin":"figure1"}|});
  ignore (Srv.recover t);
  let tcp = Srv.start_tcp t ~port:0 () in
  let tmp = portfile ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (string_of_int (Srv.tcp_port tcp));
  close_out oc;
  Sys.rename tmp portfile;
  Srv.wait_tcp tcp

let wait_port portfile pid =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec poll () =
    if Unix.gettimeofday () > deadline then die "server worker never announced a port";
    (match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> ()
    | _ -> die "server worker died before announcing a port");
    match open_in portfile with
    | exception Sys_error _ ->
        Unix.sleepf 0.01;
        poll ()
    | ic ->
        let port = int_of_string (String.trim (input_line ic)) in
        close_in ic;
        port
  in
  poll ()

let jfield name = function Json.Object f -> List.assoc_opt name f | _ -> None

let jint name v =
  match jfield name v with Some (Json.Number n) -> Some (int_of_float n) | _ -> None

let jstr name v = match jfield name v with Some (Json.String s) -> Some s | _ -> None

let jok v = match jfield "ok" v with Some (Json.Bool b) -> b | _ -> false

type sess = {
  id : int;
  mutable acked : int;  (** mutations acknowledged (journaled answers) *)
  mutable ask : string;  (** pending request kind from the last view *)
}

(* one request/response exchange; None once the socket dies (the kill) *)
let exchange ic oc line =
  match
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> None
  | resp -> (
      match Json.value_of_string resp with
      | exception Json.Parse_error _ -> die "server sent junk: %s" resp
      | v -> Some v)

let start_session ic oc ~seed ~n =
  let line =
    Printf.sprintf
      {|{"op":"session-start","graph":"fig","strategy":"smart","seed":%d,"budget":30}|}
      ((seed * 100) + n)
  in
  match exchange ic oc line with
  | None -> None
  | Some v when jok v -> (
      match (jint "session" v, jstr "ask" v) with
      | Some id, Some ask -> Some { id; acked = 0; ask }
      | _ -> die "session-start response missing fields")
  | Some _ -> die "session-start refused on a healthy server"

(* the next mutation for a session, driven purely by its pending ask *)
let mutation_line rng s =
  match s.ask with
  | "label" ->
      Some
        (Printf.sprintf {|{"op":"session-label","session":%d,"answer":"%s"}|} s.id
           (if Random.State.bool rng then "yes" else "no"))
  | "path" ->
      (* no "path" field: the server validates the suggested word *)
      Some (Printf.sprintf {|{"op":"session-validate","session":%d}|} s.id)
  | "propose" ->
      Some
        (Printf.sprintf {|{"op":"session-propose","session":%d,"accept":%b}|} s.id
           (Random.State.int rng 4 = 0))
  | _ -> None (* finished *)

let server_cycle ~seed =
  let dir = temp_dir "server" seed in
  let state_dir = Filename.concat dir "state" in
  let portfile = Filename.concat dir "port" in
  let pid = spawn [| "server-worker"; state_dir; portfile |] in
  let port = wait_port portfile pid in
  let rng = Random.State.make [| seed; 0xDEAD |] in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  (* the kill fires on its own thread while we drive traffic at full
     speed; the driving loop ends when the socket dies under us *)
  let delay_ms = 40 + Random.State.int rng 160 in
  let killer = Thread.create (fun () -> Unix.sleepf (float_of_int delay_ms /. 1000.)) () in
  let kill_after = Thread.create (fun () -> Thread.join killer; kill_and_reap pid) () in
  let sessions = Hashtbl.create 8 in
  let next = ref 0 in
  let live = Queue.create () in
  let dead = ref false in
  let ensure_sessions () =
    (* keep ~3 dialogs in flight so several journals are mid-append —
       but never start more than 60 total: the session manager evicts
       (and rightly discards the journal of) the idlest session past
       its 64-session cap, which would read as a "lost" journal here *)
    while Queue.length live < 3 && !next < 60 && not !dead do
      incr next;
      match start_session ic oc ~seed ~n:!next with
      | None -> dead := true
      | Some s ->
          Hashtbl.replace sessions s.id s;
          Queue.add s live
    done
  in
  let steps = ref 0 in
  while (not !dead) && !steps < 100_000 do
    ensure_sessions ();
    if not !dead then begin
      incr steps;
      if Queue.is_empty live then begin
        (* every dialog finished under the 60-session cap: keep the
           socket busy with reads until the kill lands *)
        match
          exchange ic oc (Printf.sprintf {|{"op":"session-show","session":%d}|} !next)
        with
        | None -> dead := true
        | Some _ -> ()
      end
      else
        let s = Queue.pop live in
        match mutation_line rng s with
        | None -> () (* finished: drop from rotation, journal stays *)
        | Some line -> (
            match exchange ic oc line with
            | None -> dead := true
            | Some v ->
                if jok v then begin
                  s.acked <- s.acked + 1;
                  s.ask <- Option.value ~default:"?" (jstr "ask" v)
                end
                else
                  (* no faults are injected here: a healthy server may only
                     refuse a mutation we mis-aimed, never an acked one *)
                  die "server seed=%d: unexpected error response: %s" seed
                    (Json.value_to_string v);
                Queue.add s live)
    end
  done;
  Thread.join kill_after;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let tracked = Hashtbl.fold (fun _ s acc -> s :: acc) sessions [] in
  let total_acked = List.fold_left (fun a s -> a + s.acked) 0 tracked in
  (* 1. raw journal scan: a kill may tear a tail, never fail a CRC *)
  let journals =
    Sys.readdir state_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".wal")
  in
  List.iter
    (fun f ->
      match Wal.scan (Filename.concat state_dir f) with
      | Error e -> die "server seed=%d: %s unreadable: %s" seed f e
      | Ok r -> (
          match r.Wal.outcome with
          | Wal.Corrupt_record _ ->
              die "server seed=%d: kill produced a CRC failure in %s" seed f
          | Wal.Clean | Wal.Torn_tail _ -> ()))
    journals;
  (* 2. typed recovery: every tracked acked step must be in its journal,
     with at most one unacknowledged in-flight answer on top *)
  let d =
    match D.load ~dir:state_dir ~policy:Wal.Always with
    | Ok d -> d
    | Error e -> die "server seed=%d: durability load: %s" seed e
  in
  let stats = D.recover d in
  if stats.D.quarantined <> 0 then
    die "server seed=%d: %d journal(s) quarantined after a plain kill" seed
      stats.D.quarantined;
  if stats.D.entries_discarded > 1 then
    die "server seed=%d: %d torn journal tails (at most the one in-flight append can tear)"
      seed stats.D.entries_discarded;
  List.iter
    (fun s ->
      match List.find_opt (fun r -> r.D.r_id = s.id) stats.D.journals with
      | None -> die "server seed=%d: session %d's journal vanished" seed s.id
      | Some r ->
          let n = List.length r.D.r_answers in
          if n < s.acked then
            die "server seed=%d: LOST ACKED STEPS: session %d acked %d, journal has %d"
              seed s.id s.acked n;
          if n > s.acked + 1 then
            die "server seed=%d: session %d journal has %d answers for %d acked" seed
              s.id n s.acked)
    tracked;
  let journal_ids = List.map (fun r -> r.D.r_id) stats.D.journals in
  D.close d;
  (* 3. end-to-end: a fresh server over the same state dir must restore
     every journal and keep answering on the restored sessions *)
  let t =
    Srv.create
      ~config:
        { Srv.default_config with Srv.state_dir = Some state_dir; Srv.fsync = Wal.Always }
      ()
  in
  ignore (Srv.handle_line t {|{"op":"load","name":"fig","builtin":"figure1"}|});
  let summary =
    match Srv.recover t with
    | Some s -> s
    | None -> die "server seed=%d: recover returned None with a state dir" seed
  in
  if summary.Srv.sessions_failed <> 0 then
    die "server seed=%d: %d session(s) failed recovery" seed summary.Srv.sessions_failed;
  if summary.Srv.sessions_restored <> List.length journal_ids then
    die "server seed=%d: %d journals but %d sessions restored" seed
      (List.length journal_ids) summary.Srv.sessions_restored;
  let handle line =
    match Json.value_of_string (Srv.handle_line t line) with
    | exception Json.Parse_error _ -> die "server seed=%d: junk response" seed
    | v -> v
  in
  List.iter
    (fun id ->
      let v = handle (Printf.sprintf {|{"op":"session-show","session":%d}|} id) in
      if not (jok v) then
        die "server seed=%d: restored session %d does not answer session-show" seed id;
      (* restored sessions must stay live: drive one more step *)
      let s = { id; acked = 0; ask = Option.value ~default:"?" (jstr "ask" v) } in
      match mutation_line rng s with
      | None -> () (* recovered in finished state *)
      | Some line ->
          if not (jok (handle line)) then
            die "server seed=%d: restored session %d refuses a next step" seed id)
    journal_ids;
  (* stopping every session discards its journal: the state dir empties *)
  List.iter
    (fun id ->
      ignore (handle (Printf.sprintf {|{"op":"session-stop","session":%d}|} id)))
    journal_ids;
  let leftover =
    Sys.readdir state_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".wal")
  in
  if leftover <> [] then
    die "server seed=%d: %d journal(s) leaked after stop" seed (List.length leftover);
  info "server seed=%-4d kill=%3dms sessions=%d acked=%-4d restored=%d tails=%d ok" seed
    delay_ms (List.length journal_ids) total_acked summary.Srv.sessions_restored
    summary.Srv.entries_discarded;
  rm_rf dir

(* ------------------------------------------------------------------ *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Array.to_list Sys.argv with
  | [ _; "store-worker"; log; ack; seed ] -> store_worker log ack (int_of_string seed)
  | [ _; "server-worker"; dir; portfile ] -> server_worker dir portfile
  | _ :: rest ->
      let mode = ref "both" and cycles = ref 10 and seed = ref 1 in
      let rec parse = function
        | [] -> ()
        | "--mode" :: m :: tl ->
            mode := m;
            parse tl
        | "--cycles" :: n :: tl ->
            cycles := int_of_string n;
            parse tl
        | "--seed" :: s :: tl ->
            seed := int_of_string s;
            parse tl
        | a :: _ -> die "unknown argument %s" a
      in
      parse rest;
      if not (List.mem !mode [ "store"; "server"; "both" ]) then
        die "--mode must be store, server or both";
      let kills = ref 0 in
      for c = 0 to !cycles - 1 do
        let s = !seed + c in
        if !mode = "store" || !mode = "both" then begin
          store_cycle ~seed:s;
          incr kills
        end;
        if !mode = "server" || !mode = "both" then begin
          server_cycle ~seed:s;
          incr kills
        end
      done;
      info "%d kill/restart cycle(s): zero lost acked steps, zero undetected corruption"
        !kills
  | [] -> die "empty argv"
