(* gps_obs: the clock, counters/gauges, span recording and its sinks,
   and trace summaries.

   Tracing state is process-global, so every test that enables a sink
   restores the disabled state under Fun.protect — the rest of the test
   binary (and the server suite's dispatch spans) must keep seeing the
   dead path. *)

module Clock = Gps_obs.Clock
module Counter = Gps_obs.Counter
module Gauge = Gps_obs.Gauge
module Trace = Gps_obs.Trace
module Summary = Gps_obs.Summary
module Histogram = Gps_obs.Histogram
module Flame = Gps_obs.Flame
module Prom = Gps_obs.Prom
module Json = Gps_graph.Json

let check = Alcotest.check

(* run [f] with tracing into a fresh memory buffer, return (result,
   emitted spans); tracing is off again afterwards no matter what *)
let with_memory_trace ?capacity f =
  let buf = Trace.buffer ?capacity () in
  Trace.enable (Trace.Memory buf);
  Fun.protect ~finally:Trace.disable (fun () ->
      let v = f () in
      (v, Trace.buffer_spans buf))

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check Alcotest.bool "now_ns never goes back" true (Int64.compare b a >= 0);
  check Alcotest.bool "elapsed is non-negative" true (Int64.compare (Clock.elapsed_ns a) 0L >= 0);
  check (Alcotest.float 1e-9) "ns_to_us" 1.5 (Clock.ns_to_us 1500L);
  check (Alcotest.float 1e-12) "ns_to_s" 0.0025 (Clock.ns_to_s 2_500_000L)

(* ------------------------------------------------------------------ *)
(* counters and gauges *)

let test_counter_ops () =
  let c = Counter.make "test.obs.counter_ops" in
  let c' = Counter.make "test.obs.counter_ops" in
  check Alcotest.bool "make is idempotent per name" true (c == c');
  let base = Counter.value c in
  Counter.incr c;
  Counter.add c 4;
  Counter.add c 0;
  check Alcotest.int "incr + add accumulate" (base + 5) (Counter.value c);
  check Alcotest.bool "negative add rejected" true
    (match Counter.add c (-1) with
    | exception Invalid_argument _ -> true
    | () -> false);
  let snap = Counter.snapshot () in
  check Alcotest.bool "snapshot is sorted by name" true
    (List.sort compare snap = snap);
  check (Alcotest.option Alcotest.int) "snapshot carries the value" (Some (base + 5))
    (List.assoc_opt "test.obs.counter_ops" snap)

let test_counter_reset_and_nonzero () =
  let c = Counter.make "test.obs.reset" in
  Counter.add c 7;
  check Alcotest.bool "nonzero snapshot sees it" true
    (List.mem_assoc "test.obs.reset" (Counter.snapshot_nonzero ()));
  Counter.reset_all ();
  check Alcotest.int "reset_all zeroes" 0 (Counter.value c);
  check Alcotest.bool "nonzero snapshot drops zeroes" false
    (List.mem_assoc "test.obs.reset" (Counter.snapshot_nonzero ()))

let test_gauge_ops () =
  let g = Gauge.make "test.obs.gauge" in
  check Alcotest.bool "make is idempotent per name" true (g == Gauge.make "test.obs.gauge");
  Gauge.set g 2.5;
  check (Alcotest.float 0.) "set" 2.5 (Gauge.value g);
  Gauge.set_int g 7;
  check (Alcotest.float 0.) "set_int overwrites" 7.0 (Gauge.value g);
  check (Alcotest.option (Alcotest.float 0.)) "snapshot" (Some 7.0)
    (List.assoc_opt "test.obs.gauge" (Gauge.snapshot ()))

(* ------------------------------------------------------------------ *)
(* spans: disabled path, nesting, exceptions, attributes *)

let test_disabled_path () =
  check Alcotest.bool "tracing starts disabled" false (Trace.enabled ());
  let r =
    Trace.with_span "dead" (fun sp ->
        Trace.set_int sp "x" 1;
        Trace.set_current_attr "y" (Trace.Int 2);
        41 + 1)
  in
  check Alcotest.int "body runs normally" 42 r;
  check Alcotest.bool "sink stays Null" true (Trace.current_sink () = Trace.Null)

let test_span_nesting () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun outer ->
            Trace.set_int outer "n" 1;
            Trace.with_span "inner" (fun _ -> ());
            Trace.with_span "inner" (fun _ -> ())))
  in
  match List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans with
  | [ a; b; c ] ->
      (* ids are allocated in start order: outer first *)
      check Alcotest.string "outer name" "outer" a.Trace.name;
      check Alcotest.int "outer is a root" (-1) a.Trace.parent;
      check Alcotest.string "first child" "inner" b.Trace.name;
      check Alcotest.int "child's parent is outer" a.Trace.id b.Trace.parent;
      check Alcotest.int "second child too" a.Trace.id c.Trace.parent;
      check Alcotest.bool "outer closed last" true
        (Int64.compare a.Trace.dur_ns b.Trace.dur_ns >= 0);
      check Alcotest.bool "attr recorded" true (a.Trace.attrs = [ ("n", Trace.Int 1) ])
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_exception_safety () =
  let result, spans =
    with_memory_trace (fun () ->
        match Trace.with_span "boom" (fun _ -> failwith "kaput") with
        | exception Failure msg -> msg
        | _ -> "no exception")
  in
  check Alcotest.string "exception re-raised intact" "kaput" result;
  match spans with
  | [ sp ] ->
      check Alcotest.string "span still emitted" "boom" sp.Trace.name;
      check Alcotest.bool "error attr set" true
        (List.assoc_opt "error" sp.Trace.attrs = Some (Trace.Bool true))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_set_current_attr () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun _ ->
            Trace.with_span "inner" (fun _ ->
                (* annotates the innermost open span: inner, not outer *)
                Trace.set_current_attr "cache" (Trace.String "hit"))))
  in
  let find name = List.find (fun sp -> sp.Trace.name = name) spans in
  check Alcotest.bool "inner got the attr" true
    (List.assoc_opt "cache" (find "inner").Trace.attrs = Some (Trace.String "hit"));
  check Alcotest.bool "outer did not" true
    (List.assoc_opt "cache" (find "outer").Trace.attrs = None)

let test_last_set_wins () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "s" (fun sp ->
            Trace.set_int sp "k" 1;
            Trace.set_str sp "other" "v";
            Trace.set_int sp "k" 2))
  in
  match spans with
  | [ sp ] ->
      check Alcotest.bool "last write wins, order kept" true
        (sp.Trace.attrs = [ ("k", Trace.Int 2); ("other", Trace.String "v") ])
  | _ -> Alcotest.fail "expected 1 span"

let test_ring_buffer () =
  let (), spans =
    with_memory_trace ~capacity:2 (fun () ->
        List.iter (fun n -> Trace.with_span n (fun _ -> ())) [ "a"; "b"; "c" ])
  in
  check
    (Alcotest.list Alcotest.string)
    "ring keeps the most recent, oldest first" [ "b"; "c" ]
    (List.map (fun sp -> sp.Trace.name) spans)

let test_jsonl_sink_and_load () =
  let path = Filename.temp_file "gps_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.enable (Trace.Jsonl oc);
      Fun.protect ~finally:Trace.disable (fun () ->
          Trace.with_span "write" (fun sp -> Trace.set_int sp "n" 3);
          Trace.with_span "write" (fun _ -> ());
          (match Trace.with_span "fail" (fun _ -> failwith "x") with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail "expected exception"));
      close_out oc;
      let spans =
        match Summary.load_file path with
        | Ok spans -> spans
        | Error msg -> Alcotest.failf "load_file: %s" msg
      in
      check Alcotest.int "all spans on disk" 3 (List.length spans);
      match Summary.aggregate spans with
      | [ fail; write ] ->
          check Alcotest.string "rows sorted by name" "fail" fail.Summary.name;
          check Alcotest.int "write count" 2 write.Summary.count;
          check Alcotest.int "fail errors" 1 fail.Summary.errors;
          check Alcotest.int "write errors" 0 write.Summary.errors;
          check Alcotest.bool "mean <= max" true
            (Summary.mean_us write <= Clock.ns_to_us write.Summary.max_ns)
      | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows))

let test_load_file_reports_bad_lines () =
  let path = Filename.temp_file "gps_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"span\":\"ok\",\"id\":0,\"parent\":-1,\"start_ns\":1,\"dur_ns\":2,\"attrs\":{}}\n";
      output_string oc "\n";
      output_string oc "not json\n";
      close_out oc;
      match Summary.load_file path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          check Alcotest.bool "error names line 3" true (contains msg ":3:"))

let test_summary_to_json_deterministic () =
  let mk name dur attrs =
    { Trace.id = 0; parent = -1; name; start_ns = 0L; dur_ns = dur; attrs }
  in
  let rows =
    Summary.aggregate
      [ mk "a" 1000L []; mk "a" 3000L [ ("error", Trace.Bool true) ]; mk "b" 10L [] ]
  in
  let doc = Summary.to_json ~timings:false rows in
  check Alcotest.string "timings:false is pure work counts"
    "{\"a\":{\"count\":2,\"errors\":1},\"b\":{\"count\":1,\"errors\":0}}"
    (Json.value_to_string doc);
  let doc = Summary.to_json rows in
  (match Json.member "a" doc with
  | Some a ->
      check Alcotest.bool "mean_us present with timings" true (Json.member "mean_us" a <> None);
      check Alcotest.bool "max_us present with timings" true
        (Json.member "max_us" a = Some (Json.Number 3.0))
  | None -> Alcotest.fail "row a missing")

(* ------------------------------------------------------------------ *)
(* histograms *)

let test_histogram_basics () =
  let h = Histogram.create "test.obs.hist" in
  List.iter (Histogram.record h) [ 0; 1; 5; 1000; 1000; -3 ];
  let s = Histogram.snapshot h in
  check Alcotest.int "count" 6 s.Histogram.count;
  check Alcotest.int "sum (negative clamps to 0)" 2006 s.Histogram.sum;
  check Alcotest.int "max" 1000 s.Histogram.max;
  check Alcotest.bool "buckets ascending, nonzero only" true
    (let idxs = List.map fst s.Histogram.buckets in
     List.sort compare idxs = idxs && List.for_all (fun (_, c) -> c > 0) s.Histogram.buckets);
  check Alcotest.int "bucket counts sum to count" 6
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Histogram.buckets);
  (* values 0..3 are exact *)
  List.iter (fun v -> check Alcotest.int "small exact" v (Histogram.bucket_index v)) [ 0; 1; 2; 3 ]

let test_histogram_bucket_bounds_partition () =
  (* buckets tile the non-negative ints: upper i + 1 = lower (i+1), and
     each bucket's bounds map back to its own index *)
  for i = 0 to Histogram.n_buckets - 2 do
    check Alcotest.int
      (Printf.sprintf "bucket %d upper + 1 = next lower" i)
      (Histogram.bucket_upper i + 1)
      (Histogram.bucket_lower (i + 1));
    check Alcotest.int "lower maps to own index" i (Histogram.bucket_index (Histogram.bucket_lower i));
    check Alcotest.int "upper maps to own index" i (Histogram.bucket_index (Histogram.bucket_upper i))
  done;
  check Alcotest.int "max_int lands in the last bucket" (Histogram.n_buckets - 1)
    (Histogram.bucket_index max_int)

let test_histogram_labels_registry () =
  let a = Histogram.make ~labels:[ ("k", "a") ] "test.obs.hist_reg" in
  let a' = Histogram.make ~labels:[ ("k", "a") ] "test.obs.hist_reg" in
  let b = Histogram.make ~labels:[ ("k", "b") ] "test.obs.hist_reg" in
  check Alcotest.bool "make idempotent per (name, labels)" true (a == a');
  check Alcotest.bool "different labels, different series" true (a != b);
  Histogram.record a 1;
  let snaps =
    List.filter (fun s -> s.Histogram.hname = "test.obs.hist_reg") (Histogram.snapshot_all ())
  in
  check Alcotest.int "both series in the registry" 2 (List.length snaps);
  check Alcotest.bool "private histograms stay out" true
    (let p = Histogram.create "test.obs.hist_private" in
     Histogram.record p 1;
     List.for_all (fun s -> s.Histogram.hname <> "test.obs.hist_private") (Histogram.snapshot_all ()))

let test_histogram_quantiles () =
  let h = Histogram.create "test.obs.hist_q" in
  (* values 1..1000: the quantile estimate must track within bucket error *)
  for v = 1 to 1000 do
    Histogram.record h v
  done;
  let s = Histogram.snapshot h in
  check (Alcotest.float 1e-9) "mean" 500.5 (Histogram.mean s);
  List.iter
    (fun q ->
      let est = Histogram.quantile s q in
      let rank = max 1 (min 1000 (int_of_float (Float.ceil (q *. 1000.)))) in
      let b = Histogram.bucket_index rank in
      check Alcotest.bool
        (Printf.sprintf "q=%.2f estimate within its bucket" q)
        true
        (est >= float_of_int (Histogram.bucket_lower b)
        && est <= float_of_int (Histogram.bucket_upper b)))
    [ 0.0; 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  check (Alcotest.float 0.) "empty histogram quantile is 0" 0.
    (Histogram.quantile (Histogram.snapshot (Histogram.create "test.obs.hist_q_empty")) 0.5)

let test_histogram_concurrent_record () =
  let h = Histogram.create "test.obs.hist_par" in
  let per_domain = 10_000 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Histogram.record h ((d * per_domain) + i)
            done))
  in
  Array.iter Domain.join domains;
  let s = Histogram.snapshot h in
  check Alcotest.int "no lost records" (4 * per_domain) s.Histogram.count;
  check Alcotest.int "no lost sum" (4 * per_domain * ((4 * per_domain) + 1) / 2) s.Histogram.sum;
  check Alcotest.int "max survives the race" (4 * per_domain) s.Histogram.max

(* ------------------------------------------------------------------ *)
(* flame folding *)

let mk_span ?(parent = -1) ?(attrs = []) id name dur_ns =
  { Trace.id; parent; name; start_ns = 0L; dur_ns; attrs }

let test_flame_fold_forest () =
  (* root(100) -> b(30) -> d(10), root -> c(20): self times 50/20/10/20 *)
  let spans =
    [
      mk_span 0 "root" 100L;
      mk_span ~parent:0 1 "b" 30L;
      mk_span ~parent:0 2 "c" 20L;
      mk_span ~parent:1 3 "d" 10L;
    ]
  in
  let folded = Flame.fold spans in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "folded stacks, sorted"
    [ ("root", 50L); ("root;b", 20L); ("root;b;d", 10L); ("root;c", 20L) ]
    folded;
  check Alcotest.int64 "total equals root duration" 100L (Flame.total folded);
  check Alcotest.int64 "roots_total agrees" 100L (Flame.roots_total spans);
  check Alcotest.string "rendering" "root 50\nroot;b 20\nroot;b;d 10\nroot;c 20\n"
    (Flame.to_string folded)

let test_flame_orphans_and_sanitize () =
  (* parent id 99 is not in the list: the span is a root; names with ';'
     and whitespace can't corrupt the stack syntax *)
  let spans = [ mk_span ~parent:99 1 "a;b c" 40L ] in
  (match Flame.fold spans with
  | [ (stack, 40L) ] -> check Alcotest.string "sanitized" "a:b_c" stack
  | l -> Alcotest.failf "expected 1 stack, got %d" (List.length l));
  check Alcotest.int64 "orphan counts as a root" 40L (Flame.roots_total spans);
  (* overlapping children clamp at 0 rather than going negative *)
  let spans = [ mk_span 0 "p" 10L; mk_span ~parent:0 1 "k" 25L ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "self time clamps to 0"
    [ ("p", 0L); ("p;k", 25L) ]
    (Flame.fold spans)

let test_flame_aggregates_identical_stacks () =
  let spans =
    [
      mk_span 0 "r" 10L;
      mk_span ~parent:0 1 "x" 3L;
      mk_span ~parent:0 2 "x" 4L;
    ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "same stack merges"
    [ ("r", 3L); ("r;x", 7L) ]
    (Flame.fold spans)

let test_flame_of_real_trace () =
  (* the acceptance invariant on a live trace: folded total = sum of
     root-span durations *)
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun _ ->
            Trace.with_span "inner" (fun _ -> ignore (Sys.opaque_identity (List.init 100 Fun.id)));
            Trace.with_span "inner" (fun _ -> ()));
        Trace.with_span "second_root" (fun _ -> ()))
  in
  let folded = Flame.fold spans in
  check Alcotest.bool "non-empty fold" true (folded <> []);
  check Alcotest.int64 "fold conserves root time" (Flame.roots_total spans) (Flame.total folded)

(* ------------------------------------------------------------------ *)
(* prometheus exposition *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_prom_names_and_escaping () =
  check Alcotest.string "dots sanitize, counters get _total" "gps_eval_runs_total"
    (Prom.metric_name ~suffix:"_total" "eval.runs");
  check Alcotest.string "odd characters collapse to _" "gps_a_b_c"
    (Prom.metric_name "a b-c");
  let buf = Buffer.create 64 in
  Prom.render_counters [ ("eval.runs", 3) ] buf;
  check Alcotest.string "counter family"
    "# TYPE gps_eval_runs_total counter\ngps_eval_runs_total 3\n" (Buffer.contents buf)

let test_prom_histogram_family () =
  let a = Histogram.create ~labels:[ ("endpoint", "query") ] "server.request_ns" in
  let b = Histogram.create ~labels:[ ("endpoint", "lo\"ad") ] "server.request_ns" in
  List.iter (Histogram.record a) [ 5; 5; 100 ];
  Histogram.record b 7;
  let buf = Buffer.create 256 in
  Prom.render_histograms [ Histogram.snapshot a; Histogram.snapshot b ] buf;
  let text = Buffer.contents buf in
  (* one TYPE line for the shared family *)
  let type_lines =
    List.filter
      (fun l -> contains l "# TYPE gps_server_request_ns")
      (String.split_on_char '\n' text)
  in
  check Alcotest.int "one TYPE line per family" 1 (List.length type_lines);
  check Alcotest.bool "cumulative +Inf carries the count" true
    (contains text "gps_server_request_ns_bucket{endpoint=\"query\",le=\"+Inf\"} 3");
  check Alcotest.bool "sum rendered" true
    (contains text "gps_server_request_ns_sum{endpoint=\"query\"} 110");
  check Alcotest.bool "label values escape quotes" true (contains text "endpoint=\"lo\\\"ad\"");
  (* buckets are cumulative: counts along le never decrease *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if contains l "_bucket{endpoint=\"query\"" then
          String.rindex_opt l ' '
          |> Option.map (fun i -> int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      (String.split_on_char '\n' text)
  in
  check Alcotest.bool "buckets are monotone" true
    (List.sort compare bucket_counts = bucket_counts)

let test_prom_render_registries () =
  Counter.add (Counter.make "test.obs.prom_counter") 2;
  Gauge.set (Gauge.make "test.obs.prom_gauge") 1.5;
  let extra = Histogram.create ~labels:[ ("lbl", "x") ] "test.obs.prom_extra" in
  Histogram.record extra 9;
  let text = Prom.render ~extra:[ Histogram.snapshot extra ] () in
  check Alcotest.bool "counter exposed" true (contains text "gps_test_obs_prom_counter_total 2");
  check Alcotest.bool "gauge exposed" true (contains text "gps_test_obs_prom_gauge 1.5");
  check Alcotest.bool "extra histogram exposed" true
    (contains text "gps_test_obs_prom_extra_count{lbl=\"x\"} 1")

(* ------------------------------------------------------------------ *)
(* summary ordering *)

let test_summary_sort () =
  let row name count total_ns max_ns =
    { Summary.name; count; total_ns; max_ns; errors = 0 }
  in
  let rows = [ row "a" 2 100L 60L; row "b" 5 40L 40L; row "c" 2 300L 10L ] in
  let names by = List.map (fun r -> r.Summary.name) (Summary.sort ~by rows) in
  check (Alcotest.list Alcotest.string) "by count desc, name tiebreak" [ "b"; "a"; "c" ]
    (names Summary.By_count);
  check (Alcotest.list Alcotest.string) "by total desc" [ "c"; "a"; "b" ]
    (names Summary.By_total);
  check (Alcotest.list Alcotest.string) "by max desc" [ "a"; "b"; "c" ] (names Summary.By_max);
  check (Alcotest.list Alcotest.string) "by mean desc" [ "c"; "a"; "b" ]
    (names Summary.By_mean);
  check (Alcotest.list Alcotest.string) "by name ascending" [ "a"; "b"; "c" ]
    (names Summary.By_name);
  check Alcotest.bool "unknown key rejected" true
    (Result.is_error (Summary.order_of_string "biggest"))

(* ------------------------------------------------------------------ *)
(* properties *)

(* a random program of nested span activity, some bodies raising *)
type program = Leaf | Node of string * bool * program list

let gen_program =
  let open QCheck.Gen in
  let name = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then return Leaf
         else
           let* nm = name in
           let* raises = frequency [ (4, return false); (1, return true) ] in
           let* kids = list_size (int_bound 3) (self (n / 4)) in
           return (Node (nm, raises, kids)))

exception Planned

(* run the program under tracing, return how many spans were started *)
let rec run_program p =
  match p with
  | Leaf -> 0
  | Node (name, raises, kids) -> (
      try
        Trace.with_span name (fun _ ->
            let n = List.fold_left (fun acc k -> acc + run_program k) 0 kids in
            if raises then raise Planned else 1 + n)
      with Planned -> 1 + List.length kids (* children's counts lost; count_nodes is the truth *))

(* count the Nodes of a program — what run_program starts *)
let rec count_nodes = function
  | Leaf -> 0
  | Node (_, _, kids) -> 1 + List.fold_left (fun acc k -> acc + count_nodes k) 0 kids

let prop_every_started_span_closes =
  QCheck.Test.make ~name:"obs: every started span is closed and emitted" ~count:100
    (QCheck.make gen_program) (fun p ->
      let _, spans = with_memory_trace (fun () -> try ignore (run_program p) with Planned -> ()) in
      List.length spans = count_nodes p)

let prop_parents_form_a_forest =
  QCheck.Test.make ~name:"obs: span parents form a forest (parent id < own id)" ~count:100
    (QCheck.make gen_program) (fun p ->
      let _, spans = with_memory_trace (fun () -> try ignore (run_program p) with Planned -> ()) in
      let ids = List.map (fun sp -> sp.Trace.id) spans in
      let distinct = List.sort_uniq compare ids in
      List.length distinct = List.length ids
      && List.for_all
           (fun sp ->
             sp.Trace.parent = -1
             || (sp.Trace.parent < sp.Trace.id && List.mem sp.Trace.parent ids))
           spans)

let gen_span =
  let open QCheck.Gen in
  let* id = int_bound 10_000 in
  let* parent = oneof [ return (-1); int_bound 10_000 ] in
  let* name = oneofl [ "eval.select"; "rpni.generalize"; "server.dispatch"; "s p a c e" ] in
  let* start_ns = map Int64.of_int (int_bound 1_000_000_000) in
  let* dur_ns = map Int64.of_int (int_bound 1_000_000) in
  let* attrs =
    list_size (int_bound 4)
      (let* k = oneofl [ "a"; "b"; "cache"; "error" ] in
       let* v =
         oneof
           [
             map (fun n -> Trace.Int n) (int_bound 1000);
             (* +0.125 keeps the value non-integral and exact in binary;
                an integral Float legitimately decodes as Int *)
             map (fun n -> Trace.Float ((float_of_int n /. 4.) +. 0.125)) (int_bound 1000);
             map (fun s -> Trace.String s) (oneofl [ "hit"; "miss"; "" ]);
             map (fun b -> Trace.Bool b) bool;
           ]
       in
       return (k, v))
  in
  (* the codec keys attrs by name: dedup like the recorder does *)
  let attrs =
    List.fold_left (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc) [] attrs
    |> List.rev
  in
  return { Trace.id; parent; name; start_ns; dur_ns; attrs }

let prop_span_json_roundtrip =
  QCheck.Test.make ~name:"obs: span JSONL line round-trips" ~count:300 (QCheck.make gen_span)
    (fun sp ->
      match Trace.span_of_json (Json.value_of_string (Trace.span_to_string sp)) with
      | Ok sp' -> sp = sp'
      | Error _ -> false)

(* histogram properties: value lists are the ground truth a histogram
   approximates *)

let gen_values = QCheck.Gen.(list_size (int_range 1 200) (int_bound 5_000_000))

let snapshot_of values =
  let h = Histogram.create "test.obs.prop" in
  List.iter (Histogram.record h) values;
  Histogram.snapshot h

let snapshots_equal (a : Histogram.snapshot) (b : Histogram.snapshot) =
  a.Histogram.count = b.Histogram.count
  && a.Histogram.sum = b.Histogram.sum
  && a.Histogram.max = b.Histogram.max
  && a.Histogram.buckets = b.Histogram.buckets

let prop_histogram_merge_assoc_comm =
  QCheck.Test.make ~name:"obs: histogram merge is associative and commutative" ~count:100
    (QCheck.make QCheck.Gen.(triple gen_values gen_values gen_values))
    (fun (xs, ys, zs) ->
      let a = snapshot_of xs and b = snapshot_of ys and c = snapshot_of zs in
      let open Histogram in
      snapshots_equal (merge (merge a b) c) (merge a (merge b c))
      && snapshots_equal (merge a b) (merge b a)
      (* and merging matches recording everything into one histogram *)
      && snapshots_equal (merge a b) (snapshot_of (xs @ ys)))

let prop_bucket_index_monotone =
  QCheck.Test.make ~name:"obs: bucket_index is monotone" ~count:500
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000)))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Histogram.bucket_index lo <= Histogram.bucket_index hi
      && Histogram.bucket_lower (Histogram.bucket_index lo) <= lo
      && lo <= Histogram.bucket_upper (Histogram.bucket_index lo))

let prop_quantile_within_true_bucket =
  QCheck.Test.make ~name:"obs: quantile estimate stays in the true value's bucket" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_values (float_bound_inclusive 1.)))
    (fun (values, q) ->
      let s = snapshot_of values in
      let sorted = List.sort compare values in
      let n = List.length sorted in
      let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
      let true_value = List.nth sorted (rank - 1) in
      let b = Histogram.bucket_index true_value in
      let est = Histogram.quantile s q in
      float_of_int (Histogram.bucket_lower b) <= est
      && est <= float_of_int (Histogram.bucket_upper b))

let qcheck_tests =
  [
    prop_every_started_span_closes;
    prop_parents_form_a_forest;
    prop_span_json_roundtrip;
    prop_histogram_merge_assoc_comm;
    prop_bucket_index_monotone;
    prop_quantile_within_true_bucket;
  ]

let suite =
  [
    ( "obs.core",
      [
        Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
        Alcotest.test_case "counter ops" `Quick test_counter_ops;
        Alcotest.test_case "counter reset and nonzero snapshot" `Quick
          test_counter_reset_and_nonzero;
        Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
        Alcotest.test_case "disabled path is inert" `Quick test_disabled_path;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
        Alcotest.test_case "set_current_attr hits the innermost span" `Quick
          test_set_current_attr;
        Alcotest.test_case "attr last-set-wins" `Quick test_last_set_wins;
        Alcotest.test_case "memory ring drops oldest" `Quick test_ring_buffer;
        Alcotest.test_case "jsonl sink, load_file, aggregate" `Quick test_jsonl_sink_and_load;
        Alcotest.test_case "load_file names the bad line" `Quick
          test_load_file_reports_bad_lines;
        Alcotest.test_case "summary JSON determinism" `Quick test_summary_to_json_deterministic;
        Alcotest.test_case "summary sort orders" `Quick test_summary_sort;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "record and snapshot basics" `Quick test_histogram_basics;
        Alcotest.test_case "bucket bounds tile the ints" `Quick
          test_histogram_bucket_bounds_partition;
        Alcotest.test_case "registry and labels" `Quick test_histogram_labels_registry;
        Alcotest.test_case "quantiles and mean" `Quick test_histogram_quantiles;
        Alcotest.test_case "concurrent record loses nothing" `Quick
          test_histogram_concurrent_record;
      ] );
    ( "obs.flame",
      [
        Alcotest.test_case "fold a forest into self-time stacks" `Quick test_flame_fold_forest;
        Alcotest.test_case "orphans root, names sanitize, self clamps" `Quick
          test_flame_orphans_and_sanitize;
        Alcotest.test_case "identical stacks aggregate" `Quick
          test_flame_aggregates_identical_stacks;
        Alcotest.test_case "fold conserves a live trace's root time" `Quick
          test_flame_of_real_trace;
      ] );
    ( "obs.prom",
      [
        Alcotest.test_case "metric names and counter families" `Quick
          test_prom_names_and_escaping;
        Alcotest.test_case "histogram family rendering" `Quick test_prom_histogram_family;
        Alcotest.test_case "full registry render" `Quick test_prom_render_registries;
      ] );
    ("obs.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
