(* gps_obs: the clock, counters/gauges, span recording and its sinks,
   and trace summaries.

   Tracing state is process-global, so every test that enables a sink
   restores the disabled state under Fun.protect — the rest of the test
   binary (and the server suite's dispatch spans) must keep seeing the
   dead path. *)

module Clock = Gps_obs.Clock
module Counter = Gps_obs.Counter
module Gauge = Gps_obs.Gauge
module Trace = Gps_obs.Trace
module Summary = Gps_obs.Summary
module Json = Gps_graph.Json

let check = Alcotest.check

(* run [f] with tracing into a fresh memory buffer, return (result,
   emitted spans); tracing is off again afterwards no matter what *)
let with_memory_trace ?capacity f =
  let buf = Trace.buffer ?capacity () in
  Trace.enable (Trace.Memory buf);
  Fun.protect ~finally:Trace.disable (fun () ->
      let v = f () in
      (v, Trace.buffer_spans buf))

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check Alcotest.bool "now_ns never goes back" true (Int64.compare b a >= 0);
  check Alcotest.bool "elapsed is non-negative" true (Int64.compare (Clock.elapsed_ns a) 0L >= 0);
  check (Alcotest.float 1e-9) "ns_to_us" 1.5 (Clock.ns_to_us 1500L);
  check (Alcotest.float 1e-12) "ns_to_s" 0.0025 (Clock.ns_to_s 2_500_000L)

(* ------------------------------------------------------------------ *)
(* counters and gauges *)

let test_counter_ops () =
  let c = Counter.make "test.obs.counter_ops" in
  let c' = Counter.make "test.obs.counter_ops" in
  check Alcotest.bool "make is idempotent per name" true (c == c');
  let base = Counter.value c in
  Counter.incr c;
  Counter.add c 4;
  Counter.add c 0;
  check Alcotest.int "incr + add accumulate" (base + 5) (Counter.value c);
  check Alcotest.bool "negative add rejected" true
    (match Counter.add c (-1) with
    | exception Invalid_argument _ -> true
    | () -> false);
  let snap = Counter.snapshot () in
  check Alcotest.bool "snapshot is sorted by name" true
    (List.sort compare snap = snap);
  check (Alcotest.option Alcotest.int) "snapshot carries the value" (Some (base + 5))
    (List.assoc_opt "test.obs.counter_ops" snap)

let test_counter_reset_and_nonzero () =
  let c = Counter.make "test.obs.reset" in
  Counter.add c 7;
  check Alcotest.bool "nonzero snapshot sees it" true
    (List.mem_assoc "test.obs.reset" (Counter.snapshot_nonzero ()));
  Counter.reset_all ();
  check Alcotest.int "reset_all zeroes" 0 (Counter.value c);
  check Alcotest.bool "nonzero snapshot drops zeroes" false
    (List.mem_assoc "test.obs.reset" (Counter.snapshot_nonzero ()))

let test_gauge_ops () =
  let g = Gauge.make "test.obs.gauge" in
  check Alcotest.bool "make is idempotent per name" true (g == Gauge.make "test.obs.gauge");
  Gauge.set g 2.5;
  check (Alcotest.float 0.) "set" 2.5 (Gauge.value g);
  Gauge.set_int g 7;
  check (Alcotest.float 0.) "set_int overwrites" 7.0 (Gauge.value g);
  check (Alcotest.option (Alcotest.float 0.)) "snapshot" (Some 7.0)
    (List.assoc_opt "test.obs.gauge" (Gauge.snapshot ()))

(* ------------------------------------------------------------------ *)
(* spans: disabled path, nesting, exceptions, attributes *)

let test_disabled_path () =
  check Alcotest.bool "tracing starts disabled" false (Trace.enabled ());
  let r =
    Trace.with_span "dead" (fun sp ->
        Trace.set_int sp "x" 1;
        Trace.set_current_attr "y" (Trace.Int 2);
        41 + 1)
  in
  check Alcotest.int "body runs normally" 42 r;
  check Alcotest.bool "sink stays Null" true (Trace.current_sink () = Trace.Null)

let test_span_nesting () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun outer ->
            Trace.set_int outer "n" 1;
            Trace.with_span "inner" (fun _ -> ());
            Trace.with_span "inner" (fun _ -> ())))
  in
  match List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans with
  | [ a; b; c ] ->
      (* ids are allocated in start order: outer first *)
      check Alcotest.string "outer name" "outer" a.Trace.name;
      check Alcotest.int "outer is a root" (-1) a.Trace.parent;
      check Alcotest.string "first child" "inner" b.Trace.name;
      check Alcotest.int "child's parent is outer" a.Trace.id b.Trace.parent;
      check Alcotest.int "second child too" a.Trace.id c.Trace.parent;
      check Alcotest.bool "outer closed last" true
        (Int64.compare a.Trace.dur_ns b.Trace.dur_ns >= 0);
      check Alcotest.bool "attr recorded" true (a.Trace.attrs = [ ("n", Trace.Int 1) ])
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_exception_safety () =
  let result, spans =
    with_memory_trace (fun () ->
        match Trace.with_span "boom" (fun _ -> failwith "kaput") with
        | exception Failure msg -> msg
        | _ -> "no exception")
  in
  check Alcotest.string "exception re-raised intact" "kaput" result;
  match spans with
  | [ sp ] ->
      check Alcotest.string "span still emitted" "boom" sp.Trace.name;
      check Alcotest.bool "error attr set" true
        (List.assoc_opt "error" sp.Trace.attrs = Some (Trace.Bool true))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_set_current_attr () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun _ ->
            Trace.with_span "inner" (fun _ ->
                (* annotates the innermost open span: inner, not outer *)
                Trace.set_current_attr "cache" (Trace.String "hit"))))
  in
  let find name = List.find (fun sp -> sp.Trace.name = name) spans in
  check Alcotest.bool "inner got the attr" true
    (List.assoc_opt "cache" (find "inner").Trace.attrs = Some (Trace.String "hit"));
  check Alcotest.bool "outer did not" true
    (List.assoc_opt "cache" (find "outer").Trace.attrs = None)

let test_last_set_wins () =
  let (), spans =
    with_memory_trace (fun () ->
        Trace.with_span "s" (fun sp ->
            Trace.set_int sp "k" 1;
            Trace.set_str sp "other" "v";
            Trace.set_int sp "k" 2))
  in
  match spans with
  | [ sp ] ->
      check Alcotest.bool "last write wins, order kept" true
        (sp.Trace.attrs = [ ("k", Trace.Int 2); ("other", Trace.String "v") ])
  | _ -> Alcotest.fail "expected 1 span"

let test_ring_buffer () =
  let (), spans =
    with_memory_trace ~capacity:2 (fun () ->
        List.iter (fun n -> Trace.with_span n (fun _ -> ())) [ "a"; "b"; "c" ])
  in
  check
    (Alcotest.list Alcotest.string)
    "ring keeps the most recent, oldest first" [ "b"; "c" ]
    (List.map (fun sp -> sp.Trace.name) spans)

let test_jsonl_sink_and_load () =
  let path = Filename.temp_file "gps_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.enable (Trace.Jsonl oc);
      Fun.protect ~finally:Trace.disable (fun () ->
          Trace.with_span "write" (fun sp -> Trace.set_int sp "n" 3);
          Trace.with_span "write" (fun _ -> ());
          (match Trace.with_span "fail" (fun _ -> failwith "x") with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail "expected exception"));
      close_out oc;
      let spans =
        match Summary.load_file path with
        | Ok spans -> spans
        | Error msg -> Alcotest.failf "load_file: %s" msg
      in
      check Alcotest.int "all spans on disk" 3 (List.length spans);
      match Summary.aggregate spans with
      | [ fail; write ] ->
          check Alcotest.string "rows sorted by name" "fail" fail.Summary.name;
          check Alcotest.int "write count" 2 write.Summary.count;
          check Alcotest.int "fail errors" 1 fail.Summary.errors;
          check Alcotest.int "write errors" 0 write.Summary.errors;
          check Alcotest.bool "mean <= max" true
            (Summary.mean_us write <= Clock.ns_to_us write.Summary.max_ns)
      | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows))

let test_load_file_reports_bad_lines () =
  let path = Filename.temp_file "gps_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"span\":\"ok\",\"id\":0,\"parent\":-1,\"start_ns\":1,\"dur_ns\":2,\"attrs\":{}}\n";
      output_string oc "\n";
      output_string oc "not json\n";
      close_out oc;
      match Summary.load_file path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          check Alcotest.bool "error names line 3" true (contains msg ":3:"))

let test_summary_to_json_deterministic () =
  let mk name dur attrs =
    { Trace.id = 0; parent = -1; name; start_ns = 0L; dur_ns = dur; attrs }
  in
  let rows =
    Summary.aggregate
      [ mk "a" 1000L []; mk "a" 3000L [ ("error", Trace.Bool true) ]; mk "b" 10L [] ]
  in
  let doc = Summary.to_json ~timings:false rows in
  check Alcotest.string "timings:false is pure work counts"
    "{\"a\":{\"count\":2,\"errors\":1},\"b\":{\"count\":1,\"errors\":0}}"
    (Json.value_to_string doc);
  let doc = Summary.to_json rows in
  (match Json.member "a" doc with
  | Some a ->
      check Alcotest.bool "mean_us present with timings" true (Json.member "mean_us" a <> None);
      check Alcotest.bool "max_us present with timings" true
        (Json.member "max_us" a = Some (Json.Number 3.0))
  | None -> Alcotest.fail "row a missing")

(* ------------------------------------------------------------------ *)
(* properties *)

(* a random program of nested span activity, some bodies raising *)
type program = Leaf | Node of string * bool * program list

let gen_program =
  let open QCheck.Gen in
  let name = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then return Leaf
         else
           let* nm = name in
           let* raises = frequency [ (4, return false); (1, return true) ] in
           let* kids = list_size (int_bound 3) (self (n / 4)) in
           return (Node (nm, raises, kids)))

exception Planned

(* run the program under tracing, return how many spans were started *)
let rec run_program p =
  match p with
  | Leaf -> 0
  | Node (name, raises, kids) -> (
      try
        Trace.with_span name (fun _ ->
            let n = List.fold_left (fun acc k -> acc + run_program k) 0 kids in
            if raises then raise Planned else 1 + n)
      with Planned -> 1 + List.length kids (* children's counts lost; count_nodes is the truth *))

(* count the Nodes of a program — what run_program starts *)
let rec count_nodes = function
  | Leaf -> 0
  | Node (_, _, kids) -> 1 + List.fold_left (fun acc k -> acc + count_nodes k) 0 kids

let prop_every_started_span_closes =
  QCheck.Test.make ~name:"obs: every started span is closed and emitted" ~count:100
    (QCheck.make gen_program) (fun p ->
      let _, spans = with_memory_trace (fun () -> try ignore (run_program p) with Planned -> ()) in
      List.length spans = count_nodes p)

let prop_parents_form_a_forest =
  QCheck.Test.make ~name:"obs: span parents form a forest (parent id < own id)" ~count:100
    (QCheck.make gen_program) (fun p ->
      let _, spans = with_memory_trace (fun () -> try ignore (run_program p) with Planned -> ()) in
      let ids = List.map (fun sp -> sp.Trace.id) spans in
      let distinct = List.sort_uniq compare ids in
      List.length distinct = List.length ids
      && List.for_all
           (fun sp ->
             sp.Trace.parent = -1
             || (sp.Trace.parent < sp.Trace.id && List.mem sp.Trace.parent ids))
           spans)

let gen_span =
  let open QCheck.Gen in
  let* id = int_bound 10_000 in
  let* parent = oneof [ return (-1); int_bound 10_000 ] in
  let* name = oneofl [ "eval.select"; "rpni.generalize"; "server.dispatch"; "s p a c e" ] in
  let* start_ns = map Int64.of_int (int_bound 1_000_000_000) in
  let* dur_ns = map Int64.of_int (int_bound 1_000_000) in
  let* attrs =
    list_size (int_bound 4)
      (let* k = oneofl [ "a"; "b"; "cache"; "error" ] in
       let* v =
         oneof
           [
             map (fun n -> Trace.Int n) (int_bound 1000);
             (* +0.125 keeps the value non-integral and exact in binary;
                an integral Float legitimately decodes as Int *)
             map (fun n -> Trace.Float ((float_of_int n /. 4.) +. 0.125)) (int_bound 1000);
             map (fun s -> Trace.String s) (oneofl [ "hit"; "miss"; "" ]);
             map (fun b -> Trace.Bool b) bool;
           ]
       in
       return (k, v))
  in
  (* the codec keys attrs by name: dedup like the recorder does *)
  let attrs =
    List.fold_left (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc) [] attrs
    |> List.rev
  in
  return { Trace.id; parent; name; start_ns; dur_ns; attrs }

let prop_span_json_roundtrip =
  QCheck.Test.make ~name:"obs: span JSONL line round-trips" ~count:300 (QCheck.make gen_span)
    (fun sp ->
      match Trace.span_of_json (Json.value_of_string (Trace.span_to_string sp)) with
      | Ok sp' -> sp = sp'
      | Error _ -> false)

let qcheck_tests =
  [ prop_every_started_span_closes; prop_parents_form_a_forest; prop_span_json_roundtrip ]

let suite =
  [
    ( "obs.core",
      [
        Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
        Alcotest.test_case "counter ops" `Quick test_counter_ops;
        Alcotest.test_case "counter reset and nonzero snapshot" `Quick
          test_counter_reset_and_nonzero;
        Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
        Alcotest.test_case "disabled path is inert" `Quick test_disabled_path;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
        Alcotest.test_case "set_current_attr hits the innermost span" `Quick
          test_set_current_attr;
        Alcotest.test_case "attr last-set-wins" `Quick test_last_set_wins;
        Alcotest.test_case "memory ring drops oldest" `Quick test_ring_buffer;
        Alcotest.test_case "jsonl sink, load_file, aggregate" `Quick test_jsonl_sink_and_load;
        Alcotest.test_case "load_file names the bad line" `Quick
          test_load_file_reports_bad_lines;
        Alcotest.test_case "summary JSON determinism" `Quick test_summary_to_json_deterministic;
      ] );
    ("obs.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
