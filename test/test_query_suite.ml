(* Tests for gps_query: evaluation semantics on the paper's Figure 1 and on
   synthetic graphs, witnesses, path languages, metrics. The central
   cross-check: product-based selection must agree with brute-force
   bounded path enumeration + derivative matching on acyclic cases. *)

open Gps_graph
open Gps_query

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q s = Rpq.of_string_exn s

let node g n = Option.get (Digraph.node_of_name g n)

let selected_names g query =
  List.sort compare (List.map (Digraph.node_name g) (Eval.select_nodes g query))

(* -------------------------------------------------------------------- *)
(* The paper's motivating example *)

let test_figure1_selection () =
  let g = Datasets.figure1 () in
  Alcotest.(check (list string))
    "q selects exactly N1 N2 N4 N6 (paper, Section 2)" Datasets.figure1_expected
    (selected_names g (q "(tram+bus)*.cinema"))

let test_figure1_bus_query () =
  (* Section 3: the query `bus` is consistent with +N2 +N6 -N5 *)
  let g = Datasets.figure1 () in
  let sel = Eval.select g (q "bus") in
  check "selects N2" true sel.(node g "N2");
  check "selects N6" true sel.(node g "N6");
  check "not N5" false sel.(node g "N5")

let test_figure1_consistency () =
  let g = Datasets.figure1 () in
  let pos = [ node g "N2"; node g "N6" ] and neg = [ node g "N5" ] in
  check "goal query consistent" true (Eval.consistent g (q "(tram+bus)*.cinema") ~pos ~neg);
  check "bus also consistent" true (Eval.consistent g (q "bus") ~pos ~neg);
  check "tram not consistent (misses N6)" false (Eval.consistent g (q "tram") ~pos ~neg);
  check "restaurant not consistent (selects N5)" false (Eval.consistent g (q "restaurant") ~pos ~neg)

let test_figure1_restaurant () =
  let g = Datasets.figure1 () in
  let sel = selected_names g (q "tram*.restaurant") in
  check "N5 selected" true (List.mem "N5" sel);
  check "N3 selected" true (List.mem "N3" sel);
  check "N4 not selected" false (List.mem "N4" sel)

(* -------------------------------------------------------------------- *)
(* Evaluation semantics *)

let test_epsilon_selects_everything () =
  let g = Datasets.figure1 () in
  check_int "eps selects all nodes" (Digraph.n_nodes g) (Eval.count g (q "eps"));
  check_int "a* with foreign label also selects all" (Digraph.n_nodes g)
    (Eval.count g (q "zzz*"))

let test_empty_selects_nothing () =
  let g = Datasets.figure1 () in
  check_int "empty" 0 (Eval.count g (q "empty"));
  check_int "foreign symbol" 0 (Eval.count g (q "zzz"))

let test_cycle_star () =
  (* a self-loop makes arbitrarily long words available *)
  let g = Codec.of_edges [ ("a", "x", "a"); ("a", "y", "b") ] in
  let sel = Eval.select g (q "x.x.x.x.x.y") in
  check "deep star through cycle" true sel.(node g "a");
  check "b not selected" false sel.(node g "b")

let test_selection_monotone_under_union () =
  let g = Generators.city (Generators.default_city ~districts:12) ~seed:1 in
  let s1 = Eval.select g (q "tram.cinema") in
  let s2 = Eval.select g (q "tram.cinema+bus.cinema") in
  Array.iteri (fun i b -> if b then check "monotone" true s2.(i)) s1

(* -------------------------------------------------------------------- *)
(* Witness *)

let test_witness_figure1 () =
  let g = Datasets.figure1 () in
  let query = q "(tram+bus)*.cinema" in
  (match Witness.find g query (node g "N4") with
  | Some w ->
      Alcotest.(check (list string)) "N4 witness word" [ "cinema" ] w.Witness.word;
      Alcotest.(check (list string)) "N4 witness walk" [ "N4"; "C1" ]
        (List.map (Digraph.node_name g) w.Witness.walk)
  | None -> Alcotest.fail "N4 should have a witness");
  (match Witness.find g query (node g "N2") with
  | Some w ->
      check_int "N2 shortest witness has length 3" 3 (List.length w.Witness.word);
      check "witness word matched by query" true (Rpq.matches_word query w.Witness.word)
  | None -> Alcotest.fail "N2 should have a witness");
  check "N5 has no witness" true (Witness.find g query (node g "N5") = None)

let test_witness_epsilon () =
  let g = Datasets.figure1 () in
  match Witness.find g (q "cinema*") (node g "N5") with
  | Some w ->
      check "empty word witness" true (w.Witness.word = []);
      Alcotest.(check (list string)) "trivial walk" [ "N5" ]
        (List.map (Digraph.node_name g) w.Witness.walk)
  | None -> Alcotest.fail "nullable query selects everything"

let test_witness_all_selected () =
  let g = Datasets.figure1 () in
  let query = q "(tram+bus)*.cinema" in
  let ws = Witness.find_all_selected g query in
  check_int "4 witnesses" 4 (List.length ws);
  List.iter
    (fun (v, w) ->
      check "walk starts at node" true (List.hd w.Witness.walk = v);
      check "word accepted" true (Rpq.matches_word query w.Witness.word))
    ws

let test_witness_pp () =
  let g = Datasets.figure1 () in
  let w = Option.get (Witness.find g (q "tram.cinema") (node g "N1")) in
  Alcotest.(check string) "render" "N1 -tram-> N4 -cinema-> C1"
    (Format.asprintf "%a" (Witness.pp g) w)

(* -------------------------------------------------------------------- *)
(* Pathlang *)

let test_pathlang_accepts_paths () =
  let g = Datasets.figure1 () in
  let a = Pathlang.of_node g (node g "N2") in
  let open Gps_automata in
  check "bus" true (Nfa.accepts a [ "bus" ]);
  check "bus.tram.cinema" true (Nfa.accepts a [ "bus"; "tram"; "cinema" ]);
  check "epsilon always a path" true (Nfa.accepts a []);
  check "cinema not a path of N2" false (Nfa.accepts a [ "cinema" ])

let test_pathlang_union () =
  let g = Datasets.figure1 () in
  let a = Pathlang.of_nodes g [ node g "N5"; node g "N6" ] in
  let open Gps_automata in
  check "N5 contributes tram" true (Nfa.accepts a [ "tram" ]);
  check "N6 contributes cinema" true (Nfa.accepts a [ "cinema" ]);
  check "neither has tram.cinema" false (Nfa.accepts a [ "tram"; "cinema" ]);
  check "empty list = empty language" true (Nfa.is_empty_lang (Pathlang.of_nodes g []))

let test_pathlang_covers () =
  let g = Datasets.figure1 () in
  check "N5 covers tram.restaurant" true
    (Pathlang.covers g [ node g "N5" ] [ "tram"; "restaurant" ]);
  check "N5 does not cover bus" false (Pathlang.covers g [ node g "N5" ] [ "bus" ]);
  check "unknown label never covered" false (Pathlang.covers g [ node g "N5" ] [ "zzz" ]);
  check "no nodes cover nothing" false (Pathlang.covers g [] [])

let test_pathlang_disjoint () =
  let g = Datasets.figure1 () in
  check "goal query disjoint from N5's paths" true
    (Pathlang.disjoint_from g (node g "N5") (q "(tram+bus)*.cinema"));
  check "not disjoint from N2's" false
    (Pathlang.disjoint_from g (node g "N2") (q "(tram+bus)*.cinema"))

(* -------------------------------------------------------------------- *)
(* Metrics *)

let test_metrics_perfect () =
  let g = Datasets.figure1 () in
  let goal = q "(tram+bus)*.cinema" in
  let m = Metrics.score g ~goal ~hypothesis:goal in
  check "f1 = 1" true (m.Metrics.f1 = 1.0);
  check "exact" true (Metrics.exact g ~goal ~hypothesis:goal)

let test_metrics_partial () =
  let g = Datasets.figure1 () in
  let goal = q "(tram+bus)*.cinema" in
  (* `cinema` catches only N4 and N6 of the four targets *)
  let m = Metrics.score g ~goal ~hypothesis:(q "cinema") in
  check_int "tp" 2 m.Metrics.true_pos;
  check_int "fn" 2 m.Metrics.false_neg;
  check_int "fp" 0 m.Metrics.false_pos;
  check "precision 1" true (m.Metrics.precision = 1.0);
  check "recall 0.5" true (m.Metrics.recall = 0.5);
  check "not exact" false (Metrics.exact g ~goal ~hypothesis:(q "cinema"))

let test_metrics_empty_cases () =
  let expected = [| false; false |] and got = [| false; false |] in
  let m = Metrics.score_sets ~expected ~got in
  check "P=R=1 when both empty" true (m.Metrics.precision = 1.0 && m.Metrics.recall = 1.0);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics.score_sets: arrays of different lengths") (fun () ->
      ignore (Metrics.score_sets ~expected ~got:[| true |]))

(* -------------------------------------------------------------------- *)
(* Rpq *)

let test_rpq_parse_error () =
  match Rpq.of_string "((" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error msg -> check "error message" true (String.length msg > 0)

let test_rpq_of_nfa_roundtrip () =
  let original = q "(a+b)*.c" in
  let back = Rpq.of_nfa (Rpq.nfa original) in
  check "same language after elimination" true (Rpq.equal_lang original back)

(* -------------------------------------------------------------------- *)
(* Properties: product evaluation vs brute-force path enumeration *)

let qcheck_tests =
  let open QCheck in
  let arb_graph =
    make
      Gen.(
        let* n = int_range 2 10 in
        let* m = int_range 1 25 in
        let* seed = int_range 0 10_000 in
        return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b"; "c" ] ~seed))
  in
  let gen_regex =
    (* star-free on purpose: bounded-length enumeration is then complete,
       making brute force an exact oracle *)
    Gen.(
      let sym = oneofl [ "a"; "b"; "c" ] in
      fix
        (fun self n ->
          if n <= 1 then map Gps_regex.Regex.sym sym
          else
            frequency
              [
                (3, map Gps_regex.Regex.sym sym);
                ( 2,
                  map2
                    (fun a b -> Gps_regex.Regex.alt [ a; b ])
                    (self (n / 2)) (self (n / 2)) );
                ( 3,
                  map2
                    (fun a b -> Gps_regex.Regex.seq [ a; b ])
                    (self (n / 2)) (self (n / 2)) );
              ])
        6)
  in
  let arb_starfree = make ~print:Gps_regex.Regex.to_string gen_regex in
  (* with star: richer automata (cycles in the product) for the kernel
     equivalence properties, where select_via_dfa is the oracle and no
     bounded enumeration is needed *)
  let gen_regex_starred =
    Gen.(
      let sym = oneofl [ "a"; "b"; "c" ] in
      fix
        (fun self n ->
          if n <= 1 then map Gps_regex.Regex.sym sym
          else
            frequency
              [
                (3, map Gps_regex.Regex.sym sym);
                ( 2,
                  map2
                    (fun a b -> Gps_regex.Regex.alt [ a; b ])
                    (self (n / 2)) (self (n / 2)) );
                ( 3,
                  map2
                    (fun a b -> Gps_regex.Regex.seq [ a; b ])
                    (self (n / 2)) (self (n / 2)) );
                (2, map Gps_regex.Regex.star (self (n / 2)));
              ])
        8)
  in
  let arb_starred = make ~print:Gps_regex.Regex.to_string gen_regex_starred in
  [
    Test.make ~name:"product eval = brute-force on star-free queries" ~count:300
      (pair arb_graph arb_starfree) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let sel = Eval.select g query in
        let max_len = Gps_regex.Regex.size r in
        Digraph.fold_nodes
          (fun acc v ->
            let brute =
              Gps_regex.Deriv.matches r []
              || List.exists
                   (fun w -> Rpq.matches_word query (Walks.word_names g w))
                   (Walks.words g v ~max_len)
            in
            acc && brute = sel.(v))
          true g);
    Test.make ~name:"witness exists iff selected, and is accepted" ~count:300
      (pair arb_graph arb_starfree) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let sel = Eval.select g query in
        Digraph.fold_nodes
          (fun acc v ->
            acc
            &&
            match Witness.find g query v with
            | Some w ->
                sel.(v)
                && Rpq.matches_word query w.Witness.word
                && List.hd w.Witness.walk = v
                && List.length w.Witness.walk = List.length w.Witness.word + 1
            | None -> not sel.(v))
          true g);
    Test.make ~name:"pathlang accepts exactly enumerated words" ~count:200 arb_graph (fun g ->
        let open Gps_automata in
        let v = 0 in
        let a = Pathlang.of_node g v in
        List.for_all
          (fun w -> Nfa.accepts a (Walks.word_names g w))
          (Walks.words g v ~max_len:3));
    Test.make ~name:"covers agrees with pathlang acceptance" ~count:200 arb_graph (fun g ->
        let open Gps_automata in
        let nodes = [ 0; 1 ] in
        let a = Pathlang.of_nodes g nodes in
        let words = Nfa.enumerate (Pathlang.of_node g 0) ~max_len:3 in
        List.for_all (fun w -> Pathlang.covers g nodes w = Nfa.accepts a w) words);
    Test.make ~name:"selection respects language inclusion" ~count:200 arb_graph (fun g ->
        (* L(a.c) subset of L(a.(b+c)) implies selection subset *)
        let q1 = Rpq.of_string_exn "a.c" and q2 = Rpq.of_string_exn "a.(b+c)" in
        let s1 = Eval.select g q1 and s2 = Eval.select g q2 in
        Array.for_all Fun.id (Array.mapi (fun i b -> (not b) || s2.(i)) s1));
    (* -- parallel kernel equivalence ------------------------------------ *)
    (* par_threshold:0 forces every level down the parallel path, so the
       multi-domain expansion really runs even on these small graphs. *)
    Test.make ~name:"parallel select = sequential select = select_via_dfa" ~count:150
      (pair arb_graph arb_starred) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let seq = Eval.select ~domains:1 g query in
        let par = Eval.select ~domains:2 ~par_threshold:0 g query in
        let dfa = Eval.select_via_dfa g query in
        par = seq && dfa = seq);
    Test.make ~name:"select_frozen parallel = select, any domain count" ~count:100
      (pair arb_graph arb_starred) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let expected = Eval.select g query in
        let csr = Csr.freeze g in
        List.for_all
          (fun d -> Eval.select_frozen ~domains:d ~par_threshold:0 g csr query = expected)
          [ 1; 2; 4 ]);
    Test.make ~name:"parallel evaluation is deterministic across runs and domains" ~count:100
      (pair arb_graph arb_starred) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let first = Eval.select ~domains:4 ~par_threshold:0 g query in
        List.for_all
          (fun d ->
            Eval.select ~domains:d ~par_threshold:0 g query = first
            && Eval.select ~domains:d ~par_threshold:0 g query = first)
          [ 1; 2; 4 ]);
    Test.make ~name:"witness_lengths parallel = sequential, and matches selection" ~count:100
      (pair arb_graph arb_starred) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let seq = Eval.witness_lengths ~domains:1 g query in
        let par = Eval.witness_lengths ~domains:2 ~par_threshold:0 g query in
        let sel = Eval.select g query in
        par = seq
        && Array.for_all Fun.id (Array.mapi (fun v d -> (d <> None) = sel.(v)) seq));
    (* -- explain reports ------------------------------------------------ *)
    Test.make ~name:"select_report agrees with select and survives its JSON codec" ~count:150
      (pair arb_graph arb_starred) (fun (g, r) ->
        let query = Rpq.of_regex r in
        let sel, report = Eval.select_report g query in
        let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sel in
        sel = Eval.select g query
        && report.Eval.selected = count
        && report.Eval.graph_nodes = Digraph.n_nodes g
        && report.Eval.product_states
           = report.Eval.graph_nodes * report.Eval.automaton_states
        && List.for_all (fun l -> l.Eval.frontier > 0) report.Eval.report_levels
        && (match report.Eval.stop with
           | Eval.Empty_automaton -> report.Eval.report_levels = []
           | Eval.Saturated | Eval.Frontier_exhausted | Eval.Timed_out | Eval.Cancelled ->
               true)
        && Eval.report_of_json (Eval.report_to_json report) = Ok report);
  ]

(* -------------------------------------------------------------------- *)
(* explain reports *)

let test_report_figure1 () =
  let g = Datasets.figure1 () in
  let sel, r = Eval.select_report g (q "(tram+bus)*.cinema") in
  check_int "selected count" (List.length Datasets.figure1_expected)
    r.Eval.selected;
  check "selection unchanged" true (sel = Eval.select g (q "(tram+bus)*.cinema"));
  check_int "graph nodes" (Digraph.n_nodes g) r.Eval.graph_nodes;
  check "automaton non-trivial" true (r.Eval.automaton_states > 0);
  check_int "product size" (r.Eval.graph_nodes * r.Eval.automaton_states) r.Eval.product_states;
  check "visits cover at least the seeds" true
    (r.Eval.frontier_visits > 0 && r.Eval.report_levels <> []);
  check "level 1 frontier equals the accepting seeds" true
    ((List.hd r.Eval.report_levels).Eval.frontier > 0);
  check "sequential on a toy graph" true
    (r.Eval.par_levels = 0 && r.Eval.domains_used = 1);
  check "terminal stop reason" true (r.Eval.stop = Eval.Frontier_exhausted);
  (* the pretty-printer mentions the headline numbers *)
  let text = Format.asprintf "%a" Eval.pp_report r in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  check "pp mentions stop reason" true (contains "frontier-exhausted");
  check "pp mentions product states" true (contains "product states")

let test_report_stop_reasons () =
  let g = Datasets.figure1 () in
  (* a 0-state automaton (the empty language) short-circuits the kernel *)
  let nothing =
    Rpq.of_nfa (Gps_automata.Nfa.make ~n_states:0 ~starts:[] ~finals:[] ~trans:[])
  in
  let sel, r = Eval.select_report g nothing in
  check "empty automaton selects nothing" true (Array.for_all not sel);
  check "empty automaton stop reason" true (r.Eval.stop = Eval.Empty_automaton);
  check "no levels ran" true (r.Eval.report_levels = [] && r.Eval.frontier_visits = 0);
  check_int "product size still reported" 0 r.Eval.product_states;
  (* a query selecting everything over a 1-state automaton saturates *)
  let g1 = Digraph.create () in
  let a = Digraph.add_node g1 "a" and b = Digraph.add_node g1 "b" in
  Digraph.add_edge g1 ~src:a ~label:"x" ~dst:b;
  Digraph.add_edge g1 ~src:b ~label:"x" ~dst:a;
  let _, r = Eval.select_report g1 (q "x*") in
  check "x* on an x-cycle saturates its product" true (r.Eval.stop = Eval.Saturated);
  check_int "everything selected" 2 r.Eval.selected;
  (* stop reasons round-trip as strings *)
  List.iter
    (fun s ->
      check "stop reason string codec" true
        (Eval.stop_reason_of_string (Eval.stop_reason_to_string s) = Ok s))
    [
      Eval.Empty_automaton; Eval.Saturated; Eval.Frontier_exhausted; Eval.Timed_out;
      Eval.Cancelled;
    ];
  check "unknown stop reason rejected" true
    (Result.is_error (Eval.stop_reason_of_string "gave-up"))

let test_report_parallel_decisions () =
  let g = Datasets.figure1 () in
  (* par_threshold:0 with 2 domains forces every level parallel *)
  let _, r = Eval.select_report ~domains:2 ~par_threshold:0 g (q "(tram+bus)*.cinema") in
  check "all levels parallel" true
    (r.Eval.seq_fallbacks = 0 && r.Eval.par_levels = List.length r.Eval.report_levels);
  check "levels marked parallel" true
    (List.for_all (fun l -> l.Eval.parallel) r.Eval.report_levels);
  check_int "threshold echoed" 0 r.Eval.par_threshold;
  (* a huge threshold forces the sequential fallback on every level *)
  let _, r = Eval.select_report ~domains:2 ~par_threshold:max_int g (q "(tram+bus)*.cinema") in
  check "all levels sequential" true
    (r.Eval.par_levels = 0
    && r.Eval.seq_fallbacks = List.length r.Eval.report_levels
    && List.for_all (fun l -> not l.Eval.parallel) r.Eval.report_levels)

let test_report_json_shape () =
  let g = Datasets.figure1 () in
  let _, r = Eval.select_report g (q "bus") in
  let j = Eval.report_to_json r in
  (match Json.member "stop" j with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "stop must encode as a string");
  (match Json.member "levels" j with
  | Some (Json.Array (_ :: _)) -> ()
  | _ -> Alcotest.fail "levels must encode as a non-empty array");
  check "codec round-trip" true (Eval.report_of_json j = Ok r);
  check "garbage rejected" true
    (Result.is_error (Eval.report_of_json (Json.Object [ ("stop", Json.Number 3.) ])))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "query.figure1",
      [
        t "paper selection" test_figure1_selection;
        t "bus query (Section 3)" test_figure1_bus_query;
        t "consistency" test_figure1_consistency;
        t "restaurant query" test_figure1_restaurant;
      ] );
    ( "query.eval",
      [
        t "epsilon selects everything" test_epsilon_selects_everything;
        t "empty selects nothing" test_empty_selects_nothing;
        t "cycle star" test_cycle_star;
        t "monotone under union" test_selection_monotone_under_union;
      ] );
    ( "query.witness",
      [
        t "figure1 witnesses" test_witness_figure1;
        t "epsilon witness" test_witness_epsilon;
        t "all selected" test_witness_all_selected;
        t "pretty-print" test_witness_pp;
      ] );
    ( "query.pathlang",
      [
        t "accepts paths" test_pathlang_accepts_paths;
        t "union" test_pathlang_union;
        t "covers" test_pathlang_covers;
        t "disjoint" test_pathlang_disjoint;
      ] );
    ( "query.metrics",
      [
        t "perfect" test_metrics_perfect;
        t "partial" test_metrics_partial;
        t "empty cases" test_metrics_empty_cases;
      ] );
    ("query.rpq", [ t "parse error" test_rpq_parse_error; t "of_nfa" test_rpq_of_nfa_roundtrip ]);
    ( "query.report",
      [
        t "figure1 report" test_report_figure1;
        t "stop reasons" test_report_stop_reasons;
        t "parallel decisions" test_report_parallel_decisions;
        t "json shape" test_report_json_shape;
      ] );
    ("query.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
