(* The gps_server service layer: protocol codec round-trips and fuzzing,
   catalog versioning, the LRU result cache, the session manager's
   TTL/eviction behavior (driven by a fake clock), the dispatch core end
   to end, and the TCP frontend over a real loopback socket. *)

module Json = Gps_graph.Json
module P = Gps_server.Protocol
module Catalog = Gps_server.Catalog
module Qcache = Gps_server.Qcache
module Sessions = Gps_server.Sessions
module Metrics = Gps_server.Metrics
module Srv = Gps_server.Server
module S = Gps.Interactive.Session

let check = Alcotest.check
let fig1 () = Gps.Graph.Datasets.figure1 ()

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "decode error: %s: %s" e.P.code e.P.message

(* ------------------------------------------------------------------ *)
(* helpers over a dispatch core *)

let fresh ?(cache = 256) ?(sessions = Sessions.default_config) ?clock ?slow_ms ?deadline_ms
    ?deadline_cap_ms ?(max_inflight = 0) ?max_frame_bytes () =
  let base = Srv.default_config in
  let clock = match clock with Some c -> c | None -> base.Srv.clock in
  Srv.create
    ~config:
      {
        base with
        Srv.cache_capacity = cache;
        Srv.sessions;
        Srv.clock;
        Srv.slow_ms;
        Srv.deadline_ms;
        Srv.deadline_cap_ms;
        Srv.max_inflight;
        Srv.max_frame_bytes =
          (match max_frame_bytes with Some b -> b | None -> base.Srv.max_frame_bytes);
      }
    ()

let load_fig1 t = Srv.handle t (P.Load { name = "fig"; source = P.Builtin "figure1" })

let expect_answer = function
  | P.Answer { query; nodes; cache; explain = _ } -> (query, nodes, cache)
  | r -> Alcotest.failf "expected answer, got %s" (P.response_to_string r)

let expect_session = function
  | P.Session { session; view } -> (session, view)
  | r -> Alcotest.failf "expected session, got %s" (P.response_to_string r)

let expect_err code = function
  | P.Err e -> check Alcotest.string "error code" code e.P.code
  | r -> Alcotest.failf "expected %s error, got %s" code (P.response_to_string r)

(* ------------------------------------------------------------------ *)
(* dispatch end to end *)

let test_load_query_cache () =
  let t = fresh () in
  (match load_fig1 t with
  | P.Loaded { nodes; edges; version; _ } ->
      check Alcotest.int "nodes" 10 nodes;
      check Alcotest.int "edges" 10 edges;
      check Alcotest.int "version" 1 version
  | r -> Alcotest.failf "expected loaded, got %s" (P.response_to_string r));
  let q = P.Query { graph = "fig"; query = "(tram+bus)*.cinema"; explain = false; deadline_ms = None } in
  let _, nodes, cache = expect_answer (Srv.handle t q) in
  check (Alcotest.list Alcotest.string) "selected" [ "N1"; "N2"; "N4"; "N6" ] nodes;
  check Alcotest.bool "first is a miss" true (cache = `Miss);
  (* a syntactic variant of the same query must hit the same entry *)
  let norm, nodes', cache' =
    expect_answer (Srv.handle t (P.Query { graph = "fig"; query = "(bus+tram)*.cinema"; explain = false; deadline_ms = None }))
  in
  check (Alcotest.list Alcotest.string) "same answer" nodes nodes';
  check Alcotest.bool "normalized variant hits" true (cache' = `Hit);
  check Alcotest.string "normalized form" "(bus+tram)*.cinema" norm

let test_reload_invalidates () =
  let t = fresh () in
  ignore (load_fig1 t);
  let q = P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None } in
  ignore (Srv.handle t q);
  let _, _, c = expect_answer (Srv.handle t q) in
  check Alcotest.bool "hit before reload" true (c = `Hit);
  (match load_fig1 t with
  | P.Loaded { version; _ } -> check Alcotest.int "version bumped" 2 version
  | r -> Alcotest.failf "expected loaded, got %s" (P.response_to_string r));
  let _, _, c = expect_answer (Srv.handle t q) in
  check Alcotest.bool "miss after reload" true (c = `Miss)

let test_errors_are_structured () =
  let t = fresh () in
  expect_err "unknown-graph" (Srv.handle t (P.Stats { graph = "nope" }));
  ignore (load_fig1 t);
  expect_err "bad-query" (Srv.handle t (P.Query { graph = "fig"; query = "(("; explain = false; deadline_ms = None }));
  expect_err "unknown-session" (Srv.handle t (P.Session_show { session = 99 }));
  expect_err "bad-request"
    (Srv.handle t (P.Load { name = "x"; source = P.Builtin "nope" }));
  expect_err "io" (Srv.handle t (P.Load { name = "x"; source = P.Path "/no/such/file" }));
  expect_err "parse" (Srv.handle t (P.Load { name = "x"; source = P.Text "one two" }));
  expect_err "inconsistent"
    (Srv.handle t (P.Learn { graph = "fig"; pos = [ "C1" ]; neg = [ "N5" ]; deadline_ms = None }));
  expect_err "bad-request"
    (Srv.handle t (P.Learn { graph = "fig"; pos = [ "Nx" ]; neg = []; deadline_ms = None }))

let test_learn () =
  let t = fresh () in
  ignore (load_fig1 t);
  match Srv.handle t (P.Learn { graph = "fig"; pos = [ "N2"; "N6" ]; neg = [ "N5" ]; deadline_ms = None }) with
  | P.Learned { query; selects } ->
      check Alcotest.string "learned" "bus" query;
      check (Alcotest.list Alcotest.string) "selects" [ "N1"; "N2"; "N6" ] selects
  | r -> Alcotest.failf "expected learned, got %s" (P.response_to_string r)

(* drive a full interactive session through the dispatch core with a
   perfect oracle for (tram+bus)*.cinema *)
let test_full_session () =
  let t = fresh () in
  ignore (load_fig1 t);
  let goal = [ "N1"; "N2"; "N4"; "N6" ] in
  let in_lang w =
    match List.rev w with
    | "cinema" :: rest -> List.for_all (fun l -> l = "bus" || l = "tram") rest
    | _ -> false
  in
  let r =
    Srv.handle t
      (P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = Some 30 })
  in
  let sid, view = expect_session r in
  let rec drive view steps =
    if steps > 100 then Alcotest.fail "session did not terminate";
    match view with
    | P.Ask_label { node; _ } ->
        let positive = List.mem node goal in
        let _, v = expect_session (Srv.handle t (P.Session_label { session = sid; positive })) in
        drive v (steps + 1)
    | P.Ask_path { words; _ } ->
        let path = List.find_opt in_lang words in
        let _, v =
          expect_session (Srv.handle t (P.Session_validate { session = sid; path }))
        in
        drive v (steps + 1)
    | P.Proposal { selects; _ } ->
        let accept = selects = goal in
        let _, v =
          expect_session (Srv.handle t (P.Session_propose { session = sid; accept }))
        in
        drive v (steps + 1)
    | P.Finished { reason; selects; _ } ->
        check Alcotest.string "reason" "satisfied" reason;
        check (Alcotest.list Alcotest.string) "final selects" goal selects
  in
  drive view 0;
  (match Srv.handle t (P.Session_stop { session = sid }) with
  | P.Stopped { questions; _ } -> check Alcotest.bool "asked questions" true (questions > 0)
  | r -> Alcotest.failf "expected stopped, got %s" (P.response_to_string r));
  expect_err "unknown-session" (Srv.handle t (P.Session_show { session = sid }))

let test_session_bad_state () =
  let t = fresh () in
  ignore (load_fig1 t);
  let r =
    Srv.handle t (P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = None })
  in
  let sid, view = expect_session r in
  (match view with
  | P.Ask_label _ -> ()
  | _ -> Alcotest.fail "expected an initial label request");
  (* answering a path or proposal out of turn is a structured error, and
     the session survives *)
  expect_err "bad-state" (Srv.handle t (P.Session_validate { session = sid; path = None }));
  expect_err "bad-state" (Srv.handle t (P.Session_propose { session = sid; accept = true }));
  let _, view' = expect_session (Srv.handle t (P.Session_show { session = sid })) in
  match view' with
  | P.Ask_label _ -> ()
  | _ -> Alcotest.fail "session state disturbed by bad-state requests"

let test_session_budget () =
  let t = fresh () in
  ignore (load_fig1 t);
  let r =
    Srv.handle t
      (P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = Some 1 })
  in
  let sid, view = expect_session r in
  match view with
  | P.Ask_label _ -> (
      let _, v =
        expect_session (Srv.handle t (P.Session_label { session = sid; positive = false }))
      in
      (* one answer allowed: the session must now be finished (maybe after
         a final proposal) *)
      match v with
      | P.Finished { reason; _ } -> check Alcotest.string "reason" "budget-exhausted" reason
      | P.Proposal _ -> ()
      | _ -> Alcotest.fail "budget 1 should end the interaction")
  | _ -> Alcotest.fail "expected an initial label request"

(* two concurrent sessions on the same graph advance independently *)
let test_two_sessions_interleaved () =
  let t = fresh () in
  ignore (load_fig1 t);
  let start seed =
    fst
      (expect_session
         (Srv.handle t
            (P.Session_start { graph = "fig"; strategy = "smart"; seed; budget = Some 30 })))
  in
  let s1 = start 1 in
  let s2 = start 2 in
  check Alcotest.bool "distinct ids" true (s1 <> s2);
  (* answer "no" in s1; s2's pending request must be untouched *)
  let _, v2_before = expect_session (Srv.handle t (P.Session_show { session = s2 })) in
  ignore (Srv.handle t (P.Session_label { session = s1; positive = false }));
  let _, v2_after = expect_session (Srv.handle t (P.Session_show { session = s2 })) in
  (match (v2_before, v2_after) with
  | P.Ask_label { node = a; _ }, P.Ask_label { node = b; _ } ->
      check Alcotest.string "s2 unchanged" a b
  | _ -> Alcotest.fail "expected label requests in s2");
  ignore (Srv.handle t (P.Session_stop { session = s1 }));
  ignore (Srv.handle t (P.Session_stop { session = s2 }))

(* ------------------------------------------------------------------ *)
(* sessions manager: TTL and max-sessions, under a fake clock *)

let test_session_ttl_and_eviction () =
  let now = ref 0. in
  let clock () = !now in
  let t =
    fresh ~sessions:{ Sessions.max_sessions = 2; idle_ttl = 10. } ~clock ()
  in
  ignore (load_fig1 t);
  let start () =
    fst
      (expect_session
         (Srv.handle t
            (P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = None })))
  in
  let s1 = start () in
  now := 5.;
  let s2 = start () in
  (* s3 exceeds max_sessions: the idlest (s1) is evicted *)
  let s3 = start () in
  expect_err "unknown-session" (Srv.handle t (P.Session_show { session = s1 }));
  ignore (expect_session (Srv.handle t (P.Session_show { session = s2 })));
  (* the TTL is sliding: showing s3 at t=12 refreshes it, so at t=22 only
     s2 (idle since t=5) has expired *)
  now := 12.;
  ignore (expect_session (Srv.handle t (P.Session_show { session = s3 })));
  now := 22.;
  expect_err "unknown-session" (Srv.handle t (P.Session_show { session = s2 }));
  ignore (expect_session (Srv.handle t (P.Session_show { session = s3 })))

(* ------------------------------------------------------------------ *)
(* catalog and cache units *)

let test_catalog_versions () =
  let c = Catalog.create () in
  let e1 = Catalog.put c ~name:"a" (fig1 ()) in
  let e2 = Catalog.put c ~name:"a" (fig1 ()) in
  let e3 = Catalog.put c ~name:"b" (fig1 ()) in
  check Alcotest.int "v1" 1 e1.Catalog.version;
  check Alcotest.int "v2" 2 e2.Catalog.version;
  check Alcotest.int "b v1" 1 e3.Catalog.version;
  check Alcotest.int "count" 2 (Catalog.count c);
  check
    (Alcotest.list Alcotest.string)
    "list sorted" [ "a"; "b" ]
    (List.map (fun e -> e.Catalog.name) (Catalog.list c))

let test_qcache_lru () =
  let c = Qcache.create ~capacity:2 () in
  let k q = { Qcache.graph = "g"; version = 1; query = q } in
  Qcache.add c (k "a") [ "1" ];
  Qcache.add c (k "b") [ "2" ];
  check (Alcotest.option (Alcotest.list Alcotest.string)) "a cached" (Some [ "1" ])
    (Qcache.find c (k "a"));
  (* b is now least recently used; inserting c evicts it *)
  Qcache.add c (k "c") [ "3" ];
  check (Alcotest.option (Alcotest.list Alcotest.string)) "b evicted" None
    (Qcache.find c (k "b"));
  check (Alcotest.option (Alcotest.list Alcotest.string)) "a survives" (Some [ "1" ])
    (Qcache.find c (k "a"));
  let s = Qcache.stats c in
  check Alcotest.int "evictions" 1 s.Qcache.evictions;
  check Alcotest.int "size" 2 s.Qcache.size;
  (* invalidation drops only the named graph *)
  let c = Qcache.create ~capacity:8 () in
  Qcache.add c (k "a") [ "1" ];
  Qcache.add c (k "b") [ "2" ];
  Qcache.add c { Qcache.graph = "other"; version = 1; query = "a" } [ "x" ];
  let dropped = Qcache.invalidate c ~graph:"g" in
  check Alcotest.int "dropped" 2 dropped;
  check Alcotest.int "other survives" 1 (Qcache.stats c).Qcache.size

let test_qcache_disabled () =
  let c = Qcache.create ~capacity:0 () in
  let k = { Qcache.graph = "g"; version = 1; query = "a" } in
  Qcache.add c k [ "1" ];
  check (Alcotest.option (Alcotest.list Alcotest.string)) "never stores" None (Qcache.find c k)

let test_qcache_version_isolation () =
  let c = Qcache.create () in
  Qcache.add c { Qcache.graph = "g"; version = 1; query = "a" } [ "old" ];
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "other version misses" None
    (Qcache.find c { Qcache.graph = "g"; version = 2; query = "a" })

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.record m ~endpoint:"query" ~ok:true ~seconds:0.00005;
  Metrics.record m ~endpoint:"query" ~ok:false ~seconds:0.5;
  Metrics.record m ~endpoint:"load" ~ok:true ~seconds:2.0;
  let doc = Metrics.to_json m in
  let q = Option.get (Json.member "query" doc) in
  check Alcotest.int "requests"
    2
    (match Json.member "requests" q with Some (Json.Number f) -> int_of_float f | _ -> -1);
  check Alcotest.int "errors" 1
    (match Json.member "errors" q with Some (Json.Number f) -> int_of_float f | _ -> -1);
  let lat = Option.get (Json.member "latency" q) in
  let buckets = Option.get (Json.member "buckets" lat) in
  check Alcotest.int "le_100us bucket" 1
    (match Json.member "le_100us" buckets with Some (Json.Number f) -> int_of_float f | _ -> -1);
  check Alcotest.int "le_1s bucket" 1
    (match Json.member "le_1s" buckets with Some (Json.Number f) -> int_of_float f | _ -> -1);
  let load = Option.get (Json.member "load" doc) in
  let lbuckets = Option.get (Json.member "buckets" (Option.get (Json.member "latency" load))) in
  check Alcotest.int "gt_1s bucket" 1
    (match Json.member "gt_1s" lbuckets with Some (Json.Number f) -> int_of_float f | _ -> -1);
  (* deterministic variant has no latency *)
  let doc = Metrics.to_json ~timings:false m in
  let q = Option.get (Json.member "query" doc) in
  check Alcotest.bool "no latency" true (Json.member "latency" q = None)

let test_metrics_endpoint_counts () =
  let t = fresh () in
  ignore (load_fig1 t);
  ignore (Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None }));
  ignore (Srv.handle_line t "not json at all");
  let line = Srv.handle_line t "{\"op\":\"metrics\",\"timings\":false}" in
  let doc = Json.value_of_string line in
  let m = Option.get (Json.member "metrics" doc) in
  let cache = Option.get (Json.member "cache" m) in
  (match Json.member "misses" cache with
  | Some (Json.Number f) -> check Alcotest.int "one miss" 1 (int_of_float f)
  | _ -> Alcotest.fail "no cache.misses");
  let eps = Option.get (Json.member "endpoints" m) in
  (match Json.member "invalid" eps with
  | Some inv ->
      check Alcotest.int "invalid counted" 1
        (match Json.member "requests" inv with Some (Json.Number f) -> int_of_float f | _ -> -1)
  | None -> Alcotest.fail "no invalid endpoint")

(* the decade projection contract: a latency well inside a decade lands
   in that decade's own le_* bucket and nowhere else, and anything above
   one second is gt_1s. (Values exactly on a decade edge straddle a log
   bucket, so the projection only promises mid-decade accuracy — the
   full-resolution histogram behind the projection keeps ≤25% error
   everywhere.) *)
let test_metrics_bucket_edges () =
  let m = Metrics.create () in
  let edges =
    [
      (5e-6, "le_10us");
      (5e-5, "le_100us");
      (5e-4, "le_1ms");
      (5e-3, "le_10ms");
      (5e-2, "le_100ms");
      (0.5, "le_1s");
      (2.0, "gt_1s");
    ]
  in
  List.iteri
    (fun i (seconds, label) ->
      let endpoint = Printf.sprintf "edge%d" i in
      Metrics.record m ~endpoint ~ok:true ~seconds;
      let doc = Metrics.to_json m in
      let e = Option.get (Json.member endpoint doc) in
      let buckets = Option.get (Json.member "buckets" (Option.get (Json.member "latency" e))) in
      List.iter
        (fun l ->
          let expected = if l = label then 1 else 0 in
          check Alcotest.int
            (Printf.sprintf "%g lands in %s only (%s)" seconds label l)
            expected
            (match Json.member l buckets with Some (Json.Number f) -> int_of_float f | _ -> -1))
        Metrics.bucket_labels)
    edges

(* ------------------------------------------------------------------ *)
(* explain, prometheus exposition, slow-query log *)

let test_query_explain () =
  let t = fresh () in
  ignore (load_fig1 t);
  (* miss: the full evaluation report, cache verdict included *)
  (match Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = true; deadline_ms = None }) with
  | P.Answer { cache = `Miss; explain = Some report; nodes; _ } ->
      check Alcotest.bool "cache field says miss" true
        (Json.member "cache" report = Some (Json.String "miss"));
      (* the rest of the object is a decodable Eval.report *)
      let r =
        match Gps_query.Eval.report_of_json report with
        | Ok r -> r
        | Error msg -> Alcotest.failf "explain not a report: %s" msg
      in
      check Alcotest.int "selected matches answer" (List.length nodes)
        r.Gps_query.Eval.selected;
      check Alcotest.bool "positive product" true (r.Gps_query.Eval.product_states > 0);
      check Alcotest.bool "levels recorded" true (r.Gps_query.Eval.report_levels <> []);
      check Alcotest.bool "stop reason terminal" true
        (r.Gps_query.Eval.stop <> Gps_query.Eval.Empty_automaton)
  | r -> Alcotest.failf "expected explained answer, got %s" (P.response_to_string r));
  (* hit: no evaluation ran, the report is just the cache verdict *)
  (match Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = true; deadline_ms = None }) with
  | P.Answer { cache = `Hit; explain = Some (Json.Object [ ("cache", Json.String "hit") ]); _ }
    ->
      ()
  | r -> Alcotest.failf "expected hit verdict, got %s" (P.response_to_string r));
  (* without the flag, no explain field at all *)
  match Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None }) with
  | P.Answer { explain = None; _ } -> ()
  | r -> Alcotest.failf "expected no explain, got %s" (P.response_to_string r)

(* a minimal exposition lint, shared with the CI smoke step's intent:
   every # TYPE introduces a fresh family and is followed by at least
   one sample of that family *)
let lint_prom text =
  let lines = String.split_on_char '\n' text in
  let seen = Hashtbl.create 16 in
  let rec go current_family samples = function
    | [] -> if current_family <> "" && samples = 0 then Error current_family else Ok ()
    | line :: rest ->
        if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
          let rest_of = String.sub line 7 (String.length line - 7) in
          let family =
            match String.index_opt rest_of ' ' with
            | Some i -> String.sub rest_of 0 i
            | None -> rest_of
          in
          if Hashtbl.mem seen family then Error (family ^ " duplicated")
          else begin
            Hashtbl.replace seen family ();
            if current_family <> "" && samples = 0 then Error current_family
            else go family 0 rest
          end
        end
        else if line = "" || line.[0] = '#' then go current_family samples rest
        else go current_family (samples + 1) rest
  in
  go "" 0 lines

let test_metrics_prom () =
  let t = fresh () in
  ignore (load_fig1 t);
  (* endpoint latency is recorded by the wire layer, so go through it *)
  ignore (Srv.handle_line t "{\"op\":\"query\",\"graph\":\"fig\",\"query\":\"bus\"}");
  match Srv.handle t P.Metrics_prom with
  | P.Prom_dump text ->
      check Alcotest.bool "non-empty" true (String.length text > 0);
      (match lint_prom text with
      | Ok () -> ()
      | Error family -> Alcotest.failf "family %s has no samples (or is duplicated)" family);
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
        at 0
      in
      check Alcotest.bool "counters render" true (has "# TYPE gps_server_dispatches_total counter");
      check Alcotest.bool "endpoint histogram renders" true
        (has "gps_server_request_ns_bucket{endpoint=\"query\"");
      check Alcotest.bool "+Inf bucket present" true (has "le=\"+Inf\"")
  | r -> Alcotest.failf "expected prom dump, got %s" (P.response_to_string r)

let test_slow_query_log () =
  let c_slow = Gps_obs.Counter.make "server.slow_queries" in
  let before = Gps_obs.Counter.value c_slow in
  (* threshold 0: every query is slow *)
  let t = fresh ~slow_ms:0. () in
  ignore (load_fig1 t);
  ignore (Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None }));
  check Alcotest.int "slow query counted" (before + 1) (Gps_obs.Counter.value c_slow);
  (* no threshold: nothing logged *)
  let t = fresh () in
  ignore (load_fig1 t);
  ignore (Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None }));
  check Alcotest.int "no threshold, no log" (before + 1) (Gps_obs.Counter.value c_slow)

(* ------------------------------------------------------------------ *)
(* status *)

let test_status_endpoint () =
  let t = fresh () in
  ignore (load_fig1 t);
  ignore (Srv.handle t (P.Query { graph = "fig"; query = "bus"; explain = false; deadline_ms = None }));
  let line = Srv.handle_line t "{\"op\":\"status\",\"timings\":false}" in
  let doc = Json.value_of_string line in
  let s = Option.get (Json.member "status" doc) in
  check Alcotest.bool "no uptime without timings" true (Json.member "uptime_s" s = None);
  (match Json.member "graphs" s with
  | Some (Json.Array [ g ]) ->
      check Alcotest.bool "graph name" true (Json.member "name" g = Some (Json.String "fig"));
      check Alcotest.bool "graph version" true (Json.member "version" g = Some (Json.Number 1.))
  | _ -> Alcotest.fail "expected one graph in status");
  let cache = Option.get (Json.member "cache" s) in
  (match Json.member "size" cache with
  | Some (Json.Number f) -> check Alcotest.int "one cached result" 1 (int_of_float f)
  | _ -> Alcotest.fail "no cache.size");
  let sessions = Option.get (Json.member "sessions" s) in
  check Alcotest.bool "no active sessions" true
    (Json.member "active" sessions = Some (Json.Number 0.));
  (* with timings, uptime is present and non-negative *)
  let line = Srv.handle_line t "{\"op\":\"status\"}" in
  let s = Option.get (Json.member "status" (Json.value_of_string line)) in
  match Json.member "uptime_s" s with
  | Some (Json.Number f) -> check Alcotest.bool "uptime >= 0" true (f >= 0.)
  | _ -> Alcotest.fail "no uptime_s with timings"

(* ------------------------------------------------------------------ *)
(* wire envelope *)

let test_id_echo () =
  let t = fresh () in
  let line = Srv.handle_line t "{\"op\":\"list-graphs\",\"id\":\"abc\"}" in
  let doc = Json.value_of_string line in
  check Alcotest.bool "id echoed" true (Json.member "id" doc = Some (Json.String "abc"));
  let line = Srv.handle_line t "{\"op\":\"nope\",\"id\":42}" in
  let doc = Json.value_of_string line in
  check Alcotest.bool "id echoed on error" true (Json.member "id" doc = Some (Json.Number 42.));
  check Alcotest.bool "is error" true (Json.member "ok" doc = Some (Json.Bool false))

(* ------------------------------------------------------------------ *)
(* TCP frontend: real sockets, two concurrent connections *)

let test_tcp () =
  let t = fresh () in
  ignore (load_fig1 t);
  let tcp = Srv.start_tcp t ~port:0 () in
  let port = Srv.tcp_port tcp in
  Fun.protect
    ~finally:(fun () -> Srv.stop_tcp tcp)
    (fun () ->
      let connect () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
      in
      let roundtrip (ic, oc) line =
        output_string oc (line ^ "\n");
        flush oc;
        input_line ic
      in
      let c1 = connect () in
      let c2 = connect () in
      let r1 = roundtrip c1 "{\"op\":\"query\",\"graph\":\"fig\",\"query\":\"bus\"}" in
      let r2 = roundtrip c2 "{\"op\":\"query\",\"graph\":\"fig\",\"query\":\"bus\"}" in
      let cache_of r =
        match Json.member "cache" (Json.value_of_string r) with
        | Some (Json.String s) -> s
        | _ -> "?"
      in
      check Alcotest.string "first miss" "miss" (cache_of r1);
      check Alcotest.string "second hit (shared cache)" "hit" (cache_of r2);
      let r = roundtrip c2 "garbage" in
      check Alcotest.bool "tcp structured error" true
        (Json.member "ok" (Json.value_of_string r) = Some (Json.Bool false));
      close_out (snd c1);
      close_out (snd c2))

(* ------------------------------------------------------------------ *)
(* protocol: QCheck round-trip and malformed-input fuzzing *)

let gen_name = QCheck.Gen.(oneofl [ "fig"; "city"; "g1"; "prod"; "a b"; "weird\"name" ])
let gen_label = QCheck.Gen.(oneofl [ "bus"; "tram"; "cinema"; "a"; "b" ])
let gen_word = QCheck.Gen.(list_size (int_range 1 4) gen_label)
let gen_query = QCheck.Gen.(oneofl [ "bus"; "(tram+bus)*.cinema"; "a.b*"; "(a+b).(a+b)*" ])
let gen_session = QCheck.Gen.int_range 0 1000

let gen_request =
  let open QCheck.Gen in
  oneof
    [
      (let* name = gen_name in
       let* source =
         oneof
           [
             map (fun b -> P.Builtin b) (oneofl [ "figure1"; "transpole" ]);
             map (fun p -> P.Path p) gen_name;
             map (fun t -> P.Text t) (oneofl [ "N1 tram N2"; ""; "x y z\nnode q" ]);
           ]
       in
       return (P.Load { name; source }));
      (let* name = gen_name in
       let* path = oneofl [ "g.csr"; "/tmp/big.csr"; "rel/graph.csr" ] in
       return (P.Load_file { name; path }));
      (let* graph = gen_name in
       let* edges = list_size (int_bound 4) (triple gen_name gen_label gen_name) in
       return (P.Add_edges { graph; edges }));
      return P.List_graphs;
      map (fun graph -> P.Stats { graph }) gen_name;
      (let* graph = gen_name in
       let* query = gen_query in
       let* explain = bool in
       (* integral floats: survive the JSON text round-trip exactly *)
       let* deadline_ms = opt (map float_of_int (int_range 1 10_000)) in
       return (P.Query { graph; query; explain; deadline_ms }));
      (let* graph = gen_name in
       let* pos = list_size (int_bound 3) gen_name in
       let* neg = list_size (int_bound 3) gen_name in
       let* deadline_ms = opt (map float_of_int (int_range 1 10_000)) in
       return (P.Learn { graph; pos; neg; deadline_ms }));
      (let* graph = gen_name in
       let* strategy = oneofl [ "smart"; "random"; "degree"; "sequential" ] in
       let* seed = int_bound 100 in
       let* budget = opt (int_bound 50) in
       return (P.Session_start { graph; strategy; seed; budget }));
      map (fun session -> P.Session_show { session }) gen_session;
      (let* session = gen_session in
       let* positive = bool in
       return (P.Session_label { session; positive }));
      map (fun session -> P.Session_zoom { session }) gen_session;
      (let* session = gen_session in
       let* path = opt gen_word in
       return (P.Session_validate { session; path }));
      (let* session = gen_session in
       let* accept = bool in
       return (P.Session_propose { session; accept }));
      map (fun session -> P.Session_stop { session }) gen_session;
      map (fun timings -> P.Metrics { timings }) bool;
      return P.Metrics_prom;
      map (fun timings -> P.Status { timings }) bool;
      (let* last = opt (int_range 1 1000) in
       let* downsample = opt (int_range 1 60) in
       return (P.Timeseries { last; downsample }));
    ]

let gen_view =
  let open QCheck.Gen in
  oneof
    [
      (let* node = gen_name in
       let* radius = int_range 1 5 in
       let* size = int_bound 50 in
       let* frontier = list_size (int_bound 3) gen_name in
       return (P.Ask_label { node; radius; size; frontier }));
      (let* node = gen_name in
       let* words = list_size (int_bound 4) gen_word in
       let* suggested = gen_word in
       return (P.Ask_path { node; words; suggested }));
      (let* query = gen_query in
       let* selects = list_size (int_bound 4) gen_name in
       return (P.Proposal { query; selects }));
      (let* query = gen_query in
       let* reason =
         oneofl [ "satisfied"; "no-informative-nodes"; "budget-exhausted"; "inconsistent" ]
       in
       let* selects = list_size (int_bound 4) gen_name in
       return (P.Finished { query; reason; selects }));
    ]

let gen_response =
  let open QCheck.Gen in
  oneof
    [
      (let* name = gen_name in
       let* nodes = int_bound 1000 in
       let* edges = int_bound 1000 in
       let* labels = int_bound 20 in
       let* version = int_range 1 9 in
       return (P.Loaded { name; nodes; edges; labels; version }));
      (let* name = gen_name in
       let* version = int_range 1 9 in
       let* added = int_bound 100 in
       let* new_nodes = int_bound 10 in
       let* overlay_edges = int_bound 1000 in
       let* invalidated = int_bound 20 in
       return (P.Edges_added { name; version; added; new_nodes; overlay_edges; invalidated }));
      (let* graphs = list_size (int_bound 4) (pair gen_name (int_range 1 9)) in
       return (P.Graphs { graphs }));
      (let* name = gen_name in
       let* nodes = int_bound 1000 in
       let* edges = int_bound 1000 in
       let* labels = list_size (int_bound 4) gen_label in
       let* version = int_range 1 9 in
       return (P.Stats_of { name; nodes; edges; labels; version }));
      (let* query = gen_query in
       let* nodes = list_size (int_bound 4) gen_name in
       let* cache = oneofl [ `Hit; `Miss ] in
       let* explain =
         opt
           (oneofl
              [
                Json.Object [ ("cache", Json.String "hit") ];
                Json.Object
                  [ ("cache", Json.String "miss"); ("product_states", Json.Number 42.) ];
              ])
       in
       return (P.Answer { query; nodes; cache; explain }));
      (let* query = gen_query in
       let* selects = list_size (int_bound 4) gen_name in
       return (P.Learned { query; selects }));
      (let* session = gen_session in
       let* view = gen_view in
       return (P.Session { session; view }));
      (let* session = gen_session in
       let* questions = int_bound 100 in
       return (P.Stopped { session; questions }));
      (let* code = oneofl [ "parse"; "bad-request"; "unknown-graph"; "timeout" ] in
       let* message = gen_name in
       let* data =
         opt (oneofl [ Json.Object [ ("stop", Json.String "timed-out") ]; Json.Null ])
       in
       return (P.Err { code; message; data }));
      map
        (fun lines -> P.Prom_dump (String.concat "\n" lines))
        (list_size (int_bound 4)
           (oneofl
              [
                "# TYPE gps_eval_runs_total counter";
                "gps_eval_runs_total 3";
                "gps_server_request_ns_bucket{endpoint=\"query\",le=\"+Inf\"} 2";
              ]));
      (let* graphs = int_bound 5 in
       let* active = int_bound 9 in
       return
         (P.Status_dump
            (Json.Object
               [
                 ("graphs", Json.Number (float_of_int graphs));
                 ("sessions", Json.Object [ ("active", Json.Number (float_of_int active)) ]);
                 ("trace_enabled", Json.Bool false);
               ])));
      (let* samples = int_bound 100 in
       let* rate = map float_of_int (int_bound 500) in
       return
         (P.Timeseries_dump
            (Json.Object
               [
                 ("interval_s", Json.Number 1.0);
                 ("total_samples", Json.Number (float_of_int samples));
                 ( "points",
                   Json.Array
                     [
                       Json.Object
                         [
                           ("t_s", Json.Number 1.0);
                           ("dt_s", Json.Number 1.0);
                           ( "rates",
                             Json.Object [ ("server.dispatches", Json.Number rate) ] );
                           ("gauges", Json.Object []);
                           ("hist", Json.Object []);
                         ];
                     ] );
               ])));
    ]

let arb_request = QCheck.make ~print:P.request_to_string gen_request
let arb_response = QCheck.make ~print:(fun r -> P.response_to_string r) gen_response

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"protocol: decode (encode request) = request" ~count:500 arb_request
      (fun r -> ok_or_fail (P.decode_request (P.encode_request r)) = r);
    Test.make ~name:"protocol: request survives the wire (via text)" ~count:500 arb_request
      (fun r ->
        ok_or_fail (P.decode_request (Json.value_of_string (P.request_to_string r))) = r);
    Test.make ~name:"protocol: decode (encode response) = response" ~count:500 arb_response
      (fun r -> ok_or_fail (P.decode_response (P.encode_response r)) = r);
    Test.make ~name:"protocol: response survives the wire (via text)" ~count:500 arb_response
      (fun r ->
        ok_or_fail (P.decode_response (Json.value_of_string (P.response_to_string r))) = r);
    (* fuzz: truncating a valid request line anywhere never crashes the
       dispatch loop and always yields a structured error or answer *)
    Test.make ~name:"fuzz: truncated request lines get structured responses" ~count:300
      QCheck.(pair arb_request (make Gen.(float_bound_inclusive 1.)))
      (fun (r, frac) ->
        let t = fresh () in
        let line = P.request_to_string r in
        let cut = int_of_float (frac *. float_of_int (String.length line)) in
        let line = String.sub line 0 (min cut (String.length line)) in
        let out = Srv.handle_line t line in
        match Json.value_of_string out with
        | Json.Object fields -> List.mem_assoc "ok" fields
        | _ -> false);
    (* fuzz: arbitrary byte garbage *)
    Test.make ~name:"fuzz: garbage lines get structured errors" ~count:300
      QCheck.(string_of_size Gen.(int_bound 40))
      (fun s ->
        let t = fresh () in
        let out = Srv.handle_line t s in
        match Json.value_of_string out with
        | Json.Object fields -> List.mem_assoc "ok" fields
        | _ -> false
        | exception _ -> false);
    (* fuzz: well-formed JSON of the wrong shape is "bad-request", and a
       live server (graph + session loaded) survives any decodable
       request against it *)
    Test.make ~name:"fuzz: any decodable request is handled without raising" ~count:200
      arb_request
      (fun r ->
        let t = fresh () in
        ignore (load_fig1 t);
        ignore
          (Srv.handle t
             (P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = None }));
        match Srv.handle t r with _ -> true);
  ]

let wrong_shape_cases () =
  let t = fresh () in
  List.iter
    (fun line ->
      let out = Srv.handle_line t line in
      match Json.value_of_string out with
      | Json.Object fields -> (
          check Alcotest.bool "not ok" true (List.assoc_opt "ok" fields = Some (Json.Bool false));
          match List.assoc_opt "error" fields with
          | Some (Json.Object e) -> check Alcotest.bool "has code" true (List.mem_assoc "code" e)
          | _ -> Alcotest.fail "no error object")
      | _ -> Alcotest.fail "response is not an object")
    [
      "[]";
      "42";
      "null";
      "\"query\"";
      "{}";
      "{\"op\":12}";
      "{\"op\":\"query\"}";
      "{\"op\":\"query\",\"graph\":7,\"query\":\"a\"}";
      "{\"op\":\"session-label\",\"session\":1,\"answer\":\"maybe\"}";
      "{\"op\":\"session-propose\",\"session\":1}";
      "{\"op\":\"load\",\"name\":\"x\"}";
      "{\"op\":\"load\",\"name\":\"x\",\"path\":\"a\",\"text\":\"b\"}";
      "{\"op\":\"session-show\",\"session\":1.5}";
    ]

let suite =
  [
    ( "server.dispatch",
      [
        Alcotest.test_case "load, query, normalized cache hit" `Quick test_load_query_cache;
        Alcotest.test_case "reload bumps version and invalidates" `Quick test_reload_invalidates;
        Alcotest.test_case "errors are structured" `Quick test_errors_are_structured;
        Alcotest.test_case "learn endpoint" `Quick test_learn;
        Alcotest.test_case "full interactive session" `Quick test_full_session;
        Alcotest.test_case "bad-state answers don't disturb sessions" `Quick
          test_session_bad_state;
        Alcotest.test_case "per-session budget" `Quick test_session_budget;
        Alcotest.test_case "two sessions interleave independently" `Quick
          test_two_sessions_interleaved;
        Alcotest.test_case "session TTL and max-sessions eviction" `Quick
          test_session_ttl_and_eviction;
        Alcotest.test_case "id echo envelope" `Quick test_id_echo;
        Alcotest.test_case "malformed shapes get error envelopes" `Quick wrong_shape_cases;
      ] );
    ( "server.components",
      [
        Alcotest.test_case "catalog versions" `Quick test_catalog_versions;
        Alcotest.test_case "qcache LRU + invalidation" `Quick test_qcache_lru;
        Alcotest.test_case "qcache capacity 0 disables" `Quick test_qcache_disabled;
        Alcotest.test_case "qcache isolates versions" `Quick test_qcache_version_isolation;
        Alcotest.test_case "metrics histogram JSON" `Quick test_metrics_json;
        Alcotest.test_case "metrics count endpoints and cache" `Quick
          test_metrics_endpoint_counts;
        Alcotest.test_case "metrics histogram bucket edges" `Quick test_metrics_bucket_edges;
        Alcotest.test_case "query explain reports" `Quick test_query_explain;
        Alcotest.test_case "prometheus exposition lints" `Quick test_metrics_prom;
        Alcotest.test_case "slow-query log counts" `Quick test_slow_query_log;
        Alcotest.test_case "status endpoint" `Quick test_status_endpoint;
        Alcotest.test_case "tcp frontend, two connections" `Quick test_tcp;
      ] );
    ("server.protocol", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
