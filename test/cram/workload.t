The workload generator: PathForge abstract patterns instantiated against
a concrete graph, reproducibly.

  $ gps generate -k city -n 15 -s 6 -o city.g
  wrote 11 nodes, 32 edges to city.g

The same seed yields byte-identical mixes (this is the contract that
makes committed mixes and BENCH_load.json trajectories comparable):

  $ gps workload generate city.g --mix smoke --seed 7 -o m1.jsonl
  wrote 16 queries (mix smoke, seed 7) to m1.jsonl
  $ gps workload generate city.g --mix smoke --seed 7 -o m2.jsonl
  wrote 16 queries (mix smoke, seed 7) to m2.jsonl
  $ cmp m1.jsonl m2.jsonl && echo identical
  identical

A different seed draws different labels and anchors:

  $ gps workload generate city.g --mix smoke --seed 8 -o m3.jsonl
  wrote 16 queries (mix smoke, seed 8) to m3.jsonl
  $ cmp -s m1.jsonl m3.jsonl || echo differs
  differs

The JSONL stream is a header line plus one object per query; every
query is in the repo's own notation and anchors name real nodes:

  $ head -5 m1.jsonl
  {"mix":"smoke","seed":7,"entries":16}
  {"id":"smoke-001.AQ1","aq":"AQ1","graph":"city","query":"metro.bus","anchor":"D0"}
  {"id":"smoke-002.AQ1","aq":"AQ1","graph":"city","query":"museum.cinema","anchor":"D6"}
  {"id":"smoke-003.AQ1","aq":"AQ1","graph":"city","query":"tram.in","anchor":"D4"}
  {"id":"smoke-004.AQ2","aq":"AQ2","graph":"city","query":"museum.tram.in","anchor":"D3"}

Every generated query parses under the gps grammar:

  $ tail -n +2 m1.jsonl | sed 's/.*"query":"\([^"]*\)".*/\1/' | while read q; do
  >   gps query city.g "$q" > /dev/null || echo "FAILED: $q"
  > done

`workload show` lists the taxonomy and the standing mixes:

  $ gps workload show | head -8
  abstract patterns (PathForge AQ1-AQ28; repo notation on the right):
    AQ1   a.b        a.b
    AQ2   a.b.c      a.b.c
    AQ3   (a.b)?     ε+a.b
    AQ4   a.(b|c)    a.(b+c)
    AQ5   c.(a?)     c.(ε+a)
    AQ6   (c?).a     (ε+c).a
    AQ7   a|b        a+b
  $ gps workload show | tail -6
  
  mixes:
    smoke        16 queries — cheap star-free probes: short concatenations, unions, options
    heavy-star   32 queries — recursive traversals: starred unions, a+/a* prefixes and suffixes
    interactive  28 queries — the full PathForge taxonomy, one query per abstract pattern
    paper        10 queries — the fixed Q1-Q10 goal-query suite of DESIGN.md (no instantiation)


  $ gps workload show --mix heavy-star
  heavy-star — recursive traversals: starred unions, a+/a* prefixes and suffixes
    AQ18  x4   (a|b)+     (a+b).(a+b)*
    AQ20  x6   (a|b)*     (a+b)*
    AQ22  x4   a+.b       a.a*.b
    AQ23  x4   a*.b       a*.b
    AQ24  x2   a.b+       a.b.b*
    AQ25  x2   a.b*       a.b*
    AQ26  x2   a|(a+)     a+a.a*
    AQ27  x4   a+         a.a*
    AQ28  x4   a*         a*

An unknown mix is a typed failure:

  $ gps workload generate city.g --mix nope
  gps: unknown mix "nope" (available: smoke, heavy-star, interactive, paper)
  [1]
