Offline trace aggregation. First over a hand-written JSONL file, so the
full table — including the duration columns — is pinned down exactly:

  $ cat > fixed.jsonl <<'EOF'
  > {"span":"eval.select","id":0,"parent":-1,"start_ns":1000,"dur_ns":4000,"attrs":{"product_states":7}}
  > {"span":"eval.select","id":1,"parent":-1,"start_ns":9000,"dur_ns":2000,"attrs":{}}
  > 
  > {"span":"rpni.generalize","id":2,"parent":1,"start_ns":9500,"dur_ns":500,"attrs":{"error":true}}
  > EOF
  $ gps trace summary fixed.jsonl
  span               count   errs      mean_us       max_us
  eval.select            2      0          3.0          4.0
  rpni.generalize        1      1          0.5          0.5
  $ gps trace summary fixed.jsonl --json
  {
    "eval.select": {
      "count": 2,
      "errors": 0,
      "mean_us": 3,
      "max_us": 4
    },
    "rpni.generalize": {
      "count": 1,
      "errors": 1,
      "mean_us": 0.5,
      "max_us": 0.5
    }
  }

Malformed traces fail loudly, naming the offending line:

  $ echo 'not json' >> fixed.jsonl
  $ gps trace summary fixed.jsonl
  gps: fixed.jsonl:5: json error at 0: expected null
  [1]

Now a live trace: --trace records every span of a whole scripted
session (evaluations, witness searches, the learner, the interaction
steps) as one JSONL line each. With --timings=false the summary is pure
work counts, an exact function of the graph, goal and strategy:

  $ cat > tiny.g <<'EOF'
  > home tram stop
  > stop tram cinema
  > home bus mall
  > mall bus cinema
  > cinema film screen
  > EOF
  $ gps session tiny.g --goal 'tram.tram' --trace session.jsonl > /dev/null
  $ gps trace summary session.jsonl --timings=false
  span                    count   errs
  eval.select                 5      0
  eval.select_frozen          4      0
  learner.learn               2      0
  propagate.negatives         2      0
  propagate.positives         1      0
  rpni.generalize             2      0
  session.accept              1      0
  session.answer_label        2      0
  session.answer_path         1      0
  session.refine              1      0
  session.start               1      0
  witness.search             16      0

A plain query records a single evaluation span:

  $ gps query tiny.g 'bus.bus' --trace q.jsonl
  bus.bus selects 1 node(s)
    home
  $ gps trace summary q.jsonl --timings=false
  span           count   errs
  eval.select        1      0
