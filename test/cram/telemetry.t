Query diagnostics and telemetry export, end to end.

  $ cat > fig1.g <<'END'
  > N2 bus N1
  > N2 bus N3
  > N1 tram N4
  > N1 bus N4
  > N4 cinema C1
  > N6 cinema C2
  > N6 bus N3
  > N5 tram N3
  > N5 restaurant R1
  > N3 restaurant R2
  > END

--explain appends an EXPLAIN ANALYZE-style report to a query: product
automaton size, per-level frontier sizes with the parallel-vs-sequential
decision for each, early exits and the reason evaluation stopped. With
--domains 1 every number is an exact function of the graph and query:

  $ gps query fig1.g '(tram+bus)*.cinema' --explain --domains 1
  (bus+tram)*.cinema selects 4 node(s)
    N2
    N1
    N4
    N6
  
  explain:
  automaton states   4
  graph nodes        10
  product states     40
  frontier visits    22
  early-exit hits    3
  levels             4 (1:10s 2:6s 3:3s 4:3s)
  parallel levels    0 (seq fallbacks 0, threshold 1024)
  domains used       1
  stop reason        frontier-exhausted
  selected nodes     4


The same report travels over the wire: "explain":true on a query request
yields the report as a JSON object, and a cache hit honestly reports only
that it was a hit (no evaluation ran, so there is nothing to narrate):

  $ gps serve --stdio <<'EOF' | tail -2
  > {"op":"load","name":"figure1","builtin":"figure1"}
  > {"op":"query","graph":"figure1","query":"bus","explain":true}
  > {"op":"query","graph":"figure1","query":"bus","explain":true}
  > EOF
  {"ok":true,"kind":"answer","query":"bus","nodes":["N1","N2","N6"],"cache":"miss","explain":{"cache":"miss","automaton_states":2,"graph_nodes":10,"product_states":20,"frontier_visits":13,"early_exit_hits":1,"par_levels":0,"seq_fallbacks":0,"domains_used":1,"par_threshold":1024,"levels":[{"frontier":10,"parallel":false},{"frontier":3,"parallel":false}],"efficiency":[],"stop":"frontier-exhausted","selected":3}}
  {"ok":true,"kind":"answer","query":"bus","nodes":["N1","N2","N6"],"cache":"hit","explain":{"cache":"hit"}}

--slow-ms logs queries at or over the threshold to stderr, one JSON line
each, carrying the explain report of the offending evaluation even
though the client never asked for one; at threshold 0 every evaluated
query qualifies. The millisecond field is wall time, so only the stable
fields are checked:

  $ gps serve --stdio --slow-ms 0 >/dev/null 2>slow.log <<'EOF'
  > {"op":"load","name":"figure1","builtin":"figure1"}
  > {"op":"query","graph":"figure1","query":"bus"}
  > EOF
  $ grep -c '"slow_query":true' slow.log
  1
  $ grep -o '"query":"bus","cache":"miss"' slow.log
  "query":"bus","cache":"miss"
  $ grep -o '"explain":{"cache":"miss","automaton_states":2' slow.log
  "explain":{"cache":"miss","automaton_states":2

metrics_prom exposes everything in Prometheus text format — registered
counters plus one histogram family for per-endpoint request latency.
Bucket boundaries are timing-dependent, but the cumulative +Inf bucket
and the count are exact:

  $ gps serve --stdio <<'EOF' > prom.out
  > {"op":"load","name":"figure1","builtin":"figure1"}
  > {"op":"query","graph":"figure1","query":"bus"}
  > {"op":"metrics_prom"}
  > EOF
  $ tail -1 prom.out | sed 's/\\n/\n/g; s/\\"/"/g' | grep -E '^(# TYPE gps_server_request_ns |gps_server_request_ns_count\{endpoint="query")'
  # TYPE gps_server_request_ns histogram
  gps_server_request_ns_count{endpoint="query"} 1
  $ tail -1 prom.out | sed 's/\\n/\n/g; s/\\"/"/g' | grep -c 'le="+Inf"'
  5
  $ tail -1 prom.out | sed 's/\\n/\n/g; s/\\"/"/g' | grep 'gps_server_dispatches_total'
  # TYPE gps_server_dispatches_total counter
  gps_server_dispatches_total 2

gps metrics --prom renders the in-process registries directly (fresh
process, so every counter is zero — but the families are all declared):

  $ gps metrics --prom | grep -A1 'TYPE gps_server_dispatches_total'
  # TYPE gps_server_dispatches_total counter
  gps_server_dispatches_total 0

trace flame folds a span tree into flame-graph folded-stack lines:
self time per call path, ready for flamegraph.pl or speedscope. Span
names are sanitized (';' and whitespace are stack separators):

  $ cat > spans.jsonl <<'EOF'
  > {"span":"serve req","id":0,"parent":-1,"start_ns":0,"dur_ns":1000,"attrs":{}}
  > {"span":"eval.select","id":1,"parent":0,"start_ns":100,"dur_ns":600,"attrs":{}}
  > {"span":"witness.search","id":2,"parent":1,"start_ns":150,"dur_ns":200,"attrs":{}}
  > {"span":"eval.select","id":3,"parent":-1,"start_ns":2000,"dur_ns":300,"attrs":{}}
  > EOF
  $ gps trace flame spans.jsonl
  eval.select 300
  serve_req 400
  serve_req;eval.select 400
  serve_req;eval.select;witness.search 200

trace summary accepts '-' for stdin and --sort to order by any column;
ties and the default fall back to the span name:

  $ cat > mix.jsonl <<'EOF'
  > {"span":"zzz.rare","id":0,"parent":-1,"start_ns":0,"dur_ns":9000,"attrs":{}}
  > {"span":"aaa.common","id":1,"parent":-1,"start_ns":0,"dur_ns":1000,"attrs":{}}
  > {"span":"aaa.common","id":2,"parent":-1,"start_ns":0,"dur_ns":2000,"attrs":{}}
  > {"span":"aaa.common","id":3,"parent":-1,"start_ns":0,"dur_ns":3000,"attrs":{}}
  > EOF
  $ gps trace summary - < mix.jsonl
  span          count   errs      mean_us       max_us
  aaa.common        3      0          2.0          3.0
  zzz.rare          1      0          9.0          9.0
  $ gps trace summary mix.jsonl --sort max
  span          count   errs      mean_us       max_us
  zzz.rare          1      0          9.0          9.0
  aaa.common        3      0          2.0          3.0
  $ gps trace summary mix.jsonl --sort count
  span          count   errs      mean_us       max_us
  aaa.common        3      0          2.0          3.0
  zzz.rare          1      0          9.0          9.0
  $ gps trace summary mix.jsonl --sort total
  span          count   errs      mean_us       max_us
  zzz.rare          1      0          9.0          9.0
  aaa.common        3      0          2.0          3.0
  $ gps trace summary mix.jsonl --sort altitude
  gps: unknown sort key "altitude" (name, count, total, max or mean)
  [1]
