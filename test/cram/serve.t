The gps service over stdio: newline-delimited JSON requests in, one
response line each. One process serves the whole script: a graph load,
cached queries, static learning, two concurrently open interactive
sessions on the same graph (session 1 driven to a learned proposal by a
user with (tram+bus)*.cinema in mind, session 2 zooming in parallel), a
deliberately malformed request, a non-JSON line, a status snapshot, and
a final deterministic metrics dump (timings off) showing nonzero cache
hits, per-endpoint request counts, and the span/counter trace the
service keeps in its in-memory ring (work counts only — every counter
below is an exact function of this script).

The second query is a syntactic variant of the first — the cache keys on
the normalized form, so it must report "cache":"hit".

  $ gps serve --stdio <<'EOF'
  > {"op":"load","name":"figure1","builtin":"figure1"}
  > {"op":"list-graphs"}
  > {"op":"stats","graph":"figure1"}
  > {"op":"query","graph":"figure1","query":"(tram+bus)*.cinema"}
  > {"op":"query","graph":"figure1","query":"(bus+tram)*.cinema"}
  > {"op":"learn","graph":"figure1","pos":["N2","N6"],"neg":["N5"]}
  > {"op":"session-start","graph":"figure1","strategy":"smart","seed":1,"budget":30}
  > {"op":"session-start","graph":"figure1","strategy":"smart","seed":1,"budget":30}
  > {"op":"session-show","session":2}
  > {"op":"session-label","session":1,"answer":"yes"}
  > {"op":"session-zoom","session":2}
  > {"op":"session-validate","session":1}
  > {"op":"session-propose","session":1,"accept":false}
  > {"op":"session-label","session":1,"answer":"yes"}
  > {"op":"session-validate","session":1,"path":["bus","cinema"]}
  > {"op":"session-propose","session":1,"accept":false}
  > {"op":"session-label","session":1,"answer":"yes"}
  > {"op":"session-validate","session":1,"path":["cinema"]}
  > {"op":"session-propose","session":1,"accept":false}
  > {"op":"session-label","session":1,"answer":"no"}
  > {"op":"session-propose","session":1,"accept":true}
  > {"op":"session-show","session":1}
  > {"op":"session-stop","session":1}
  > {"op":"session-show","session":2}
  > {"op":"session-stop","session":2}
  > {"op":"query","graph":"figure1","query":"bus","id":"q-7"}
  > {"op":"query","graph":"figure1"}
  > this line is not JSON
  > {"op":"status","timings":false}
  > {"op":"metrics","timings":false}
  > EOF
  {"ok":true,"kind":"loaded","name":"figure1","nodes":10,"edges":10,"labels":4,"version":1}
  {"ok":true,"kind":"graphs","graphs":[{"name":"figure1","version":1}]}
  {"ok":true,"kind":"stats","name":"figure1","nodes":10,"edges":10,"labels":["bus","cinema","restaurant","tram"],"version":1}
  {"ok":true,"kind":"answer","query":"(bus+tram)*.cinema","nodes":["N1","N2","N4","N6"],"cache":"miss"}
  {"ok":true,"kind":"answer","query":"(bus+tram)*.cinema","nodes":["N1","N2","N4","N6"],"cache":"hit"}
  {"ok":true,"kind":"learned","query":"bus","selects":["N1","N2","N6"]}
  {"ok":true,"kind":"session","session":1,"ask":"label","node":"N2","radius":2,"size":5,"frontier":["N4"]}
  {"ok":true,"kind":"session","session":2,"ask":"label","node":"N2","radius":2,"size":5,"frontier":["N4"]}
  {"ok":true,"kind":"session","session":2,"ask":"label","node":"N2","radius":2,"size":5,"frontier":["N4"]}
  {"ok":true,"kind":"session","session":1,"ask":"path","node":"N2","words":["bus","bus.bus","bus.tram","bus.restaurant"],"suggested":"bus.bus"}
  {"ok":true,"kind":"session","session":2,"ask":"label","node":"N2","radius":3,"size":6,"frontier":[]}
  {"ok":true,"kind":"session","session":1,"ask":"propose","query":"bus*","selects":["C1","C2","N1","N2","N3","N4","N5","N6","R1","R2"]}
  {"ok":true,"kind":"session","session":1,"ask":"label","node":"N1","radius":2,"size":3,"frontier":[]}
  {"ok":true,"kind":"session","session":1,"ask":"path","node":"N1","words":["bus","tram","bus.cinema","tram.cinema"],"suggested":"bus.cinema"}
  {"ok":true,"kind":"session","session":1,"ask":"propose","query":"(bus+cinema)*","selects":["C1","C2","N1","N2","N3","N4","N5","N6","R1","R2"]}
  {"ok":true,"kind":"session","session":1,"ask":"label","node":"N6","radius":2,"size":4,"frontier":[]}
  {"ok":true,"kind":"session","session":1,"ask":"path","node":"N6","words":["bus","cinema","bus.restaurant"],"suggested":"bus.restaurant"}
  {"ok":true,"kind":"session","session":1,"ask":"propose","query":"(bus+cinema)*","selects":["C1","C2","N1","N2","N3","N4","N5","N6","R1","R2"]}
  {"ok":true,"kind":"session","session":1,"ask":"label","node":"N5","radius":2,"size":4,"frontier":[]}
  {"ok":true,"kind":"session","session":1,"ask":"propose","query":"(bus+cinema).(bus+cinema)*","selects":["N1","N2","N4","N6"]}
  {"ok":true,"kind":"session","session":1,"ask":"finished","query":"(bus+cinema).(bus+cinema)*","reason":"satisfied","selects":["N1","N2","N4","N6"]}
  {"ok":true,"kind":"session","session":1,"ask":"finished","query":"(bus+cinema).(bus+cinema)*","reason":"satisfied","selects":["N1","N2","N4","N6"]}
  {"ok":true,"kind":"stopped","session":1,"questions":7}
  {"ok":true,"kind":"session","session":2,"ask":"label","node":"N2","radius":3,"size":6,"frontier":[]}
  {"ok":true,"kind":"stopped","session":2,"questions":1}
  {"id":"q-7","ok":true,"kind":"answer","query":"bus","nodes":["N1","N2","N6"],"cache":"hit"}
  {"ok":false,"error":{"code":"bad-request","message":"missing field \"query\""}}
  {"ok":false,"error":{"code":"parse","message":"at 0: expected true"}}
  {"ok":true,"kind":"status","status":{"graphs":[{"name":"figure1","version":1}],"sessions":{"active":0,"started":2},"cache":{"size":5,"capacity":256,"evictions":0,"invalidations":0,"delta_invalidations":0},"trace_enabled":true,"draining":false,"durability":{"enabled":false},"sampler":{"running":true,"interval_s":1}}}
  {"ok":true,"kind":"metrics","metrics":{"endpoints":{"invalid":{"requests":2,"errors":2},"learn":{"requests":1,"errors":0},"list-graphs":{"requests":1,"errors":0},"load":{"requests":1,"errors":0},"query":{"requests":3,"errors":0},"session-label":{"requests":4,"errors":0},"session-propose":{"requests":4,"errors":0},"session-show":{"requests":3,"errors":0},"session-start":{"requests":2,"errors":0},"session-stop":{"requests":2,"errors":0},"session-validate":{"requests":3,"errors":0},"session-zoom":{"requests":1,"errors":0},"stats":{"requests":1,"errors":0},"status":{"requests":1,"errors":0}},"cache":{"hits":5,"misses":5,"evictions":0,"invalidations":0,"delta_invalidations":0,"size":5,"capacity":256},"sessions":{"active":0,"started":2,"stopped":2,"expired":0,"evicted":0},"graphs":1,"server":{"dispatches":29,"dispatch_errors":2,"sheds":0,"timeouts":0,"slow_queries":0,"frame_rejections":0,"client_disconnects":0,"last_request_id":30},"trace":{"enabled":true,"counters":{"audit.emitted":0,"audit.sampled_out":0,"eval.cancel_checks":35,"eval.cancelled":0,"eval.domains_used":15,"eval.early_exit_hits":89,"eval.frontier_visits":306,"eval.par_levels":0,"eval.product_states":380,"eval.runs":15,"eval.seq_fallbacks":0,"fault.injected":0,"gc.major_slices":0,"gc.minor_allocated_words":0,"gc.minor_collections":0,"gc.minor_promoted_words":0,"learner.failures":0,"learner.runs":5,"pool.barrier_ns":0,"pool.busy_ns":0,"pool.chunks":0,"pool.idle_ns":0,"pool.jobs":0,"propagate.implied_neg":5,"propagate.implied_pos":4,"qcache.delta_invalidations":0,"qcache.evictions":0,"qcache.hits":5,"qcache.invalidations":0,"qcache.misses":5,"recovery.entries_discarded":0,"recovery.sessions_failed":0,"recovery.sessions_restored":0,"rpni.consistency_checks":21,"rpni.merge_accepts":11,"rpni.merge_attempts":16,"rpni.merge_rejects":5,"rpni.promotions":2,"runtime.events_consumed":0,"runtime.events_lost":0,"server.cache_insert_drops":0,"server.client_disconnects":0,"server.dispatch_errors":2,"server.dispatches":29,"server.durability_errors":0,"server.frame_rejections":0,"server.sheds":0,"server.slow_queries":0,"server.timeouts":0,"session.nodes_pruned":5,"session.relearns":4,"session.steps":12,"witness.expansions":76,"witness.searches":73,"witness.timeouts":0},"gauges":{"catalog.file_backed":0,"graph.overlay_edges":0,"recovery.sessions":0,"runtime.domains_live":0,"server.inflight":1,"server.qcache_size":5,"server.sessions_active":0},"spans":{"eval.select_frozen":{"count":15,"errors":0},"learner.learn":{"count":5,"errors":0},"propagate.negatives":{"count":4,"errors":0},"propagate.positives":{"count":3,"errors":0},"rpni.generalize":{"count":5,"errors":0},"server.dispatch":{"count":28,"errors":0},"session.accept":{"count":1,"errors":0},"session.answer_label":{"count":5,"errors":0},"session.answer_path":{"count":3,"errors":0},"session.refine":{"count":3,"errors":0},"session.start":{"count":2,"errors":0},"witness.search":{"count":73,"errors":0}}}}}

A loaded edge-list file works like a builtin, and reloading a name bumps
its version (invalidating cached results for the old snapshot):

  $ cat > tiny.g <<'END'
  > A go B
  > B go C
  > END
  $ gps serve --stdio <<EOF
  > {"op":"load","name":"tiny","path":"tiny.g"}
  > {"op":"query","graph":"tiny","query":"go.go"}
  > {"op":"load","name":"tiny","path":"tiny.g"}
  > {"op":"query","graph":"tiny","query":"go.go"}
  > EOF
  {"ok":true,"kind":"loaded","name":"tiny","nodes":3,"edges":2,"labels":1,"version":1}
  {"ok":true,"kind":"answer","query":"go.go","nodes":["A"],"cache":"miss"}
  {"ok":true,"kind":"loaded","name":"tiny","nodes":3,"edges":2,"labels":1,"version":2}
  {"ok":true,"kind":"answer","query":"go.go","nodes":["A"],"cache":"miss"}
