Live introspection: the timeseries wire op, the wide-event audit log
and the `gps top` dashboard.

Without a sampler the endpoint degrades into a typed error, and wire
validation refuses nonsense windows:

  $ echo '{"op":"timeseries"}' | gps serve --stdio --sample-every 0
  {"ok":false,"error":{"code":"unavailable","message":"no sampler running (start the server with --sample-every > 0)"}}
  $ echo '{"op":"timeseries","last":0}' | gps serve --stdio --sample-every 0
  {"ok":false,"error":{"code":"bad-request","message":"field \"last\" must be >= 1"}}

With --sample-every the background sampler feeds the endpoint; the
response envelope carries the sampler's interval and lifetime sample
count ahead of the derived points:

  $ { echo '{"op":"status"}'; sleep 0.5; echo '{"op":"timeseries","last":3,"downsample":1}'; } \
  >   | gps serve --stdio --load figure1 --sample-every 0.1 | tail -1 \
  >   | grep -o '^{"ok":true,"kind":"timeseries","series":{"interval_s":0.1,"total_samples":'
  {"ok":true,"kind":"timeseries","series":{"interval_s":0.1,"total_samples":

Every wire request accumulates one wide event; --audit appends them as
JSONL. Counters, byte sizes and eval deltas are deterministic for a
fixed script — only the timings need normalizing — and the request ids
count up from 1:

  $ { echo '{"op":"query","graph":"figure1","query":"bus"}';
  >   echo '{"op":"query","graph":"figure1","query":"bus"}'; } \
  >   | gps serve --stdio --load figure1 --sample-every 0 --audit audit.jsonl
  {"ok":true,"kind":"answer","query":"bus","nodes":["N1","N2","N6"],"cache":"miss"}
  {"ok":true,"kind":"answer","query":"bus","nodes":["N1","N2","N6"],"cache":"hit"}
  $ sed -E 's/"(wait_us|service_us|ms)":[0-9.]+/"\1":T/g' audit.jsonl
  {"event":"request","id":1,"bytes_in":46,"graph":"figure1","graph_version":1,"cache":"miss","d_product_states":20,"d_frontier_visits":13,"d_par_levels":0,"d_seq_fallbacks":0,"d_domains_used":1,"query":"bus","nodes":3,"endpoint":"query","ok":true,"bytes_out":81,"wait_us":T,"service_us":T,"ms":T}
  {"event":"request","id":2,"bytes_in":46,"graph":"figure1","graph_version":1,"cache":"hit","query":"bus","nodes":3,"endpoint":"query","ok":true,"bytes_out":80,"wait_us":T,"service_us":T,"ms":T}

`gps audit summary` aggregates the stream offline (counts are exact,
latencies normalized; --top 0 drops the inherently timing-ordered
slowest section):

  $ gps audit summary audit.jsonl --top 0 | sed -E 's/[0-9]+\.[0-9]+/T/g'
  events: 2  (errors: 0, malformed lines: 0)
  
  endpoint          count  errors   mean ms    p50 ms    p99 ms    max ms
  query                 2       0      T      T      T      T
  
  exec path         count  errors   mean ms    p50 ms    p99 ms    max ms
  seq                   1       0      T      T      T      T
  
  cache: hit=1 miss=1



The same aggregation as one JSON object:

  $ gps audit summary audit.jsonl --top 0 --json | sed -E 's/: [0-9]+\.[0-9]+/: T/g'
  {
    "total": 2,
    "malformed": 0,
    "errors": 0,
    "recovered": 0,
    "endpoints": {
      "query": {
        "count": 2,
        "errors": 0,
        "mean_ms": T,
        "p50_ms": T,
        "p99_ms": T,
        "max_ms": T
      }
    },
    "exec": {
      "seq": {
        "count": 1,
        "errors": 0,
        "mean_ms": T,
        "p50_ms": T,
        "p99_ms": T,
        "max_ms": T
      }
    },
    "cache": {
      "hit": 1,
      "miss": 1
    },
    "slowest": []
  }

`gps top --once` renders one dashboard frame off a live server's
timeseries endpoint (numbers and widths normalized — the shape is the
contract):

  $ gps serve --port 0 --load figure1 --sample-every 0.1 2>serve.err &
  $ SRV=$!
  $ for i in $(seq 100); do grep -q serving serve.err 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n '1s/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' serve.err)
  $ gps metrics --connect 127.0.0.1:$PORT > /dev/null
  $ gps metrics --connect 127.0.0.1:$PORT > /dev/null
  $ sleep 0.6
  $ gps top --once --connect 127.0.0.1:$PORT | sed -E 's/[0-9]+(\.[0-9]+)?/N/g' | tr -s ' '
  gps top — N.N:N sampler: every Ns, N samples, N interval(s) shown
  
  rates (/s) last avg
   requests N N
   errors N N
   sheds N N
   timeouts N N
   slow queries N N
   audit lines N N
   eval par levels N N
   eval seq fallbacks N N
   cache hit % - N
  
  gauges (last interval)
   inflight N
   sessions N
   cache entries N
  
  latency count pN pN pN max (last interval, ms)
   metrics N N N N N



  $ kill -TERM $SRV
  $ wait $SRV
