Resilience of the CLI and the service under deadlines, overload and
shutdown.

A pathological query (14-state automaton against a 60k-node uniform
graph, 840k product states) under a 20 ms deadline: the evaluation is
abandoned cooperatively, the partial EXPLAIN report lands on stderr and
the exit status is the dedicated 3. The visit count at the moment the
deadline fired is timing-dependent, so it is normalized.

  $ gps generate -k uniform -n 60000 -s 5 -o big.g
  wrote 60000 nodes, 180000 edges to big.g
  $ gps query big.g '(a+b+c+d)*.(a+b+c)*.(a+b)*.(b+c+d)*.a' --deadline-ms 20 2>err.txt
  [3]
  $ head -n 1 err.txt | sed 's/(visited [0-9]*/(visited N/'
  gps: query timed-out after 20 ms (visited N product states)
  $ grep -c 'timed-out' err.txt
  2

The service applies a default per-request deadline to anything that
evaluates. A deadline of 100 ns is already expired when the evaluation
reaches its first cooperative checkpoint, so the answer is a typed
"timeout" error carrying the (empty) partial report — while requests
that do not evaluate are untouched.

  $ gps serve --stdio --deadline-ms 0.0001 <<'EOF'
  > {"op":"load","name":"fig","builtin":"figure1"}
  > {"op":"query","graph":"fig","query":"(tram+bus)*.cinema"}
  > EOF
  {"ok":true,"kind":"loaded","name":"fig","nodes":10,"edges":10,"labels":4,"version":1}
  {"ok":false,"error":{"code":"timeout","message":"query evaluation timed-out after 0 frontier visits","data":{"automaton_states":4,"graph_nodes":10,"product_states":40,"frontier_visits":0,"early_exit_hits":0,"par_levels":0,"seq_fallbacks":0,"domains_used":1,"par_threshold":1024,"levels":[],"efficiency":[],"stop":"timed-out","selected":0}}}

An oversized request frame is refused with a typed error before any of
it is parsed, and the connection is closed — the well-formed request
behind it is never read. (The cap has a floor of 1024 bytes.)

  $ { printf 'x%.0s' $(seq 2000); printf '\n{"op":"list-graphs"}\n'; } \
  >   | gps serve --stdio --max-frame-bytes 1024
  {"ok":false,"error":{"code":"frame-too-large","message":"request frame exceeds 1024 bytes"}}

Graceful shutdown: SIGTERM drains the TCP listener — the process stops
accepting, waits for live connections (none here), and exits 0. The
ephemeral port is normalized.

  $ gps serve --port 0 2>serve.err &
  $ SRV=$!
  $ for i in $(seq 100); do grep -q serving serve.err 2>/dev/null && break; sleep 0.1; done
  $ kill -TERM $SRV
  $ wait $SRV
  $ sed 's/127\.0\.0\.1:[0-9]*/127.0.0.1:PORT/' serve.err
  gps: serving on 127.0.0.1:PORT
  gps: SIGTERM received, draining 0 connection(s)
  gps: drained (0 forced close(s))
