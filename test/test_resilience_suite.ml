(* Resilience: monotonic deadlines and composable cancel tokens, the
   cooperative cancellation path through the evaluation kernel, the
   learner and the interactive session, deterministic fault injection,
   and the server-side enforcement — per-request deadlines with partial
   EXPLAIN reports, admission control (shedding), frame caps and
   graceful drain. *)

open Gps_graph
module D = Gps_obs.Deadline
module Fault = Gps_obs.Fault
module Eval = Gps_query.Eval
module Rpq = Gps_query.Rpq
module Learner = Gps_learning.Learner
module Sample = Gps_learning.Sample
module Session = Gps_interactive.Session
module Strategy = Gps_interactive.Strategy
module P = Gps_server.Protocol
module Srv = Gps_server.Server

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q s = Rpq.of_string_exn s

let counter name =
  match List.assoc_opt name (Gps_obs.Counter.snapshot ()) with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* deadline and token laws *)

let test_none_token () =
  check "none is none" true (D.is_none D.none);
  check "none never fires" true (D.check D.none = None);
  check "none not expired" false (D.expired D.none);
  check "none not cancelled" false (D.cancelled D.none);
  D.cancel D.none;
  (* cancelling the shared null token is a documented no-op *)
  check "cancel none is a no-op" false (D.cancelled D.none);
  check "none has no time deadline" true (D.remaining_ns D.none = None)

let test_cancel_token () =
  let t = D.token () in
  check "fresh token live" true (D.check t = None);
  check "fresh token not none" false (D.is_none t);
  check "token has no time deadline" true (D.remaining_ns t = None);
  D.cancel t;
  check "cancelled after cancel" true (D.cancelled t);
  check "check reports Cancelled" true (D.check t = Some D.Cancelled);
  D.cancel t;
  check "cancel idempotent" true (D.check t = Some D.Cancelled)

let test_after_ms () =
  let expired = D.after_ms (-5.0) in
  check "non-positive ms is pre-expired" true (D.expired expired);
  check "pre-expired reports Timed_out" true (D.check expired = Some D.Timed_out);
  check "pre-expired remaining clamps at 0" true (D.remaining_ns expired = Some 0L);
  let far = D.after_ms 1e7 in
  check "far deadline live" true (D.check far = None);
  (match D.remaining_ns far with
  | Some ns -> check "remaining positive and bounded" true (ns > 0L && ns <= 10_000_000_000_000L)
  | None -> Alcotest.fail "far deadline must carry a time limit")

let test_cancelled_wins_over_timeout () =
  let d = D.after_ms (-1.0) in
  check "expired" true (D.check d = Some D.Timed_out);
  D.cancel d;
  check "Cancelled wins when both apply" true (D.check d = Some D.Cancelled)

let test_combine () =
  (* identity on none, without allocation *)
  let d = D.after_ms 1e7 in
  check "combine none d == d" true (D.combine D.none d == d);
  check "combine d none == d" true (D.combine d D.none == d);
  (* cancellation propagates from either parent *)
  let p = D.token () in
  let c = D.combine p d in
  check "combined initially live" true (D.check c = None);
  D.cancel p;
  check "parent cancel reaches child" true (D.cancelled c && D.check c = Some D.Cancelled);
  check "sibling unaffected" false (D.cancelled d);
  (* the earlier deadline wins *)
  let near = D.after_ms 1e3 and far2 = D.after_ms 1e7 in
  (match D.remaining_ns (D.combine near far2) with
  | Some ns -> check "combine keeps the earlier deadline" true (ns <= 1_000_000_000L)
  | None -> Alcotest.fail "combined deadline lost its time limit");
  (* cancelling the combined token does not flow up to the parents *)
  let p2 = D.token () in
  let c2 = D.combine p2 (D.token ()) in
  D.cancel c2;
  check "child cancel does not reach parent" false (D.cancelled p2)

let test_reason_codec () =
  List.iter
    (fun r -> check "reason round-trips" true (D.reason_of_string (D.reason_to_string r) = Some r))
    [ D.Timed_out; D.Cancelled ];
  check "unknown reason rejected" true (D.reason_of_string "gave-up" = None);
  check "wire spelling" true
    (D.reason_to_string D.Timed_out = "timed-out" && D.reason_to_string D.Cancelled = "cancelled")

(* cancelling any leaf of an arbitrarily-shaped combine tree cancels the
   root — the law the server relies on to drain nested work *)
let prop_combine_tree_cancel =
  QCheck.Test.make ~name:"resilience: leaf cancel reaches combine root" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 8) (int_bound 7)))
    (fun (n, i) ->
      let leaves = Array.init n (fun _ -> D.token ()) in
      let root = Array.fold_left D.combine D.none leaves in
      let leaf = leaves.(i mod n) in
      let before = D.cancelled root in
      D.cancel leaf;
      (not before) && D.cancelled root && D.check root = Some D.Cancelled)

let prop_combine_takes_earlier =
  QCheck.Test.make ~name:"resilience: combine keeps the earlier deadline" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
    (fun (a_us, b_us) ->
      let a = D.after_ns (Int64.of_int (a_us * 1000)) in
      let b = D.after_ns (Int64.of_int (b_us * 1000)) in
      let c = D.combine a b in
      match D.remaining_ns c with
      | None -> false
      | Some ns ->
          (* created after both parents, so it can only be tighter *)
          ns <= Int64.of_int (min a_us b_us * 1000))

(* ------------------------------------------------------------------ *)
(* cooperative cancellation in the evaluation kernel *)

let queries = [ "bus"; "(tram+bus)*.cinema"; "(bus+tram)*"; "tram.tram*" ]

let test_eval_none_equivalence () =
  let g = Datasets.figure1 () in
  List.iter
    (fun qs ->
      let plain = Eval.select g (q qs) in
      (match Eval.select_result g (q qs) with
      | Ok sel -> check "no deadline: Ok and equal" true (sel = plain)
      | Error _ -> Alcotest.fail "no deadline must not interrupt");
      match Eval.select_result ~deadline:(D.after_ms 1e7) g (q qs) with
      | Ok sel -> check "far deadline: Ok and equal" true (sel = plain)
      | Error _ -> Alcotest.fail "far deadline must not interrupt")
    queries

let test_eval_pre_cancelled () =
  let g = Datasets.figure1 () in
  List.iter
    (fun domains ->
      let tok = D.token () in
      D.cancel tok;
      match Eval.select_report_result ~domains ~deadline:tok g (q "(tram+bus)*.cinema") with
      | Ok _ -> Alcotest.fail "pre-cancelled token must interrupt"
      | Error { Eval.reason; partial } ->
          check "reason is Cancelled" true (reason = D.Cancelled);
          check "partial report carries the stop" true (partial.Eval.stop = Eval.Cancelled);
          check "under-approximation only" true
            (partial.Eval.selected <= partial.Eval.graph_nodes))
    [ 1; 2 ]

let test_eval_pre_expired () =
  let g = Datasets.figure1 () in
  List.iter
    (fun domains ->
      match
        Eval.select_report_result ~domains ~deadline:(D.after_ms 0.0) g
          (q "(tram+bus)*.cinema")
      with
      | Ok _ -> Alcotest.fail "pre-expired deadline must interrupt"
      | Error { Eval.reason; partial } ->
          check "reason is Timed_out" true (reason = D.Timed_out);
          check "partial stop is Timed_out" true (partial.Eval.stop = Eval.Timed_out))
    [ 1; 2 ]

(* a deadline orders-of-magnitude under the work's cost terminates the
   evaluation promptly instead of running to completion *)
let test_eval_prompt_termination () =
  let g = Generators.uniform ~nodes:4000 ~edges:12_000 ~labels:[ "a"; "b"; "c" ] ~seed:7 in
  let heavy = q "(a+b+c)*.(a+b)*.(b+c)*.a" in
  List.iter
    (fun domains ->
      let t0 = Gps_obs.Clock.now_ns () in
      (match Eval.select_report_result ~domains ~deadline:(D.after_ms 1.0) g heavy with
      | Error { Eval.reason = D.Timed_out; partial } ->
          check "partial stop recorded" true (partial.Eval.stop = Eval.Timed_out)
      | Error { Eval.reason = D.Cancelled; _ } -> Alcotest.fail "nothing cancelled this run"
      | Ok _ -> () (* a very fast machine may finish inside 1ms; that is not a failure *));
      let elapsed_s = Gps_obs.Clock.ns_to_s (Gps_obs.Clock.elapsed_ns t0) in
      check "terminates promptly" true (elapsed_s < 5.0))
    [ 1; 2 ]

let test_eval_cancel_counters () =
  let g = Datasets.figure1 () in
  let before = counter "eval.cancel_checks" in
  (match Eval.select_result ~deadline:(D.after_ms 1e7) g (q "(tram+bus)*.cinema") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "far deadline must not interrupt");
  check "guarded run publishes cancel checks" true
    (counter "eval.cancel_checks" > before)

(* ------------------------------------------------------------------ *)
(* learner and session interruption *)

let test_learner_interrupted () =
  let g = Datasets.figure1 () in
  let s = Sample.of_names g ~pos:[ "N2"; "N6" ] ~neg:[ "N5" ] in
  let tok = D.token () in
  D.cancel tok;
  (match Learner.witness_words ~deadline:tok g s with
  | Error (Learner.Interrupted D.Cancelled) -> ()
  | _ -> Alcotest.fail "witness_words must report the interruption");
  (match Learner.learn ~deadline:tok g s with
  | Learner.Failed (Learner.Interrupted D.Cancelled) -> ()
  | _ -> Alcotest.fail "learn must report the interruption");
  (* no deadline: same sample still learns *)
  match Learner.learn g s with
  | Learner.Learned _ -> ()
  | Learner.Failed _ -> Alcotest.fail "the running example must learn without a deadline"

let test_session_interrupted () =
  let g = Datasets.figure1 () in
  let strategy = Result.get_ok (Strategy.by_name ~seed:1 "smart") in
  let tok = D.token () in
  D.cancel tok;
  let rec drive t steps =
    if steps > 50 then Alcotest.fail "session did not halt under a cancelled token"
    else
      match Session.request t with
      | Session.Finished outcome -> outcome
      | Session.Ask_label _ -> drive (Session.answer_label ~deadline:tok t `Pos) (steps + 1)
      | Session.Ask_path view ->
          drive
            (Session.answer_path ~deadline:tok t view.Gps_interactive.View.suggested)
            (steps + 1)
      | Session.Propose _ -> drive (Session.refine t) (steps + 1)
  in
  let outcome = drive (Session.start ~strategy g) 0 in
  match outcome.Session.reason with
  | Session.Interrupted D.Cancelled -> ()
  | _ -> Alcotest.fail "session must finish with Interrupted Cancelled"

(* ------------------------------------------------------------------ *)
(* deterministic fault injection *)

let with_faults spec f =
  Fault.configure_exn spec;
  Fun.protect ~finally:Fault.clear f

let test_fault_parse () =
  check "well-formed spec" true (Result.is_ok (Fault.configure "a:n3, b:once2, c:p0.5@7"));
  Fault.clear ();
  check "empty spec disarms" true (Fault.configure "" = Ok () && not (Fault.active ()));
  check "missing mode rejected" true (Result.is_error (Fault.configure "site"));
  check "unknown mode rejected" true (Result.is_error (Fault.configure "a:q3"));
  check "zero period rejected" true (Result.is_error (Fault.configure "a:n0"));
  check "empty site rejected" true (Result.is_error (Fault.configure ":n3"));
  check "probability over 1 rejected" true (Result.is_error (Fault.configure "a:p1.5"));
  (* a malformed spec leaves the previous configuration armed *)
  with_faults "x:n1" (fun () ->
      check "armed" true (Fault.active ());
      check "bad spec rejected" true (Result.is_error (Fault.configure "broken"));
      check "previous config survives" true (Fault.active () && Fault.should_fail "x"))

let test_fault_nth_once () =
  with_faults "x:n3" (fun () ->
      let decisions = List.init 9 (fun _ -> Fault.should_fail "x") in
      check "every 3rd call fails" true
        (decisions = [ false; false; true; false; false; true; false; false; true ]);
      check "unknown sites never fail" false (Fault.should_fail "other"));
  with_faults "x:once2" (fun () ->
      let decisions = List.init 5 (fun _ -> Fault.should_fail "x") in
      check "exactly the 2nd call fails" true
        (decisions = [ false; true; false; false; false ]))

let test_fault_prob_deterministic () =
  let run () = with_faults "x:p0.5@42" (fun () -> List.init 200 (fun _ -> Fault.should_fail "x")) in
  let a = run () and b = run () in
  check "same seed replays the same schedule" true (a = b);
  check "half-probability schedule is nontrivial" true
    (List.exists Fun.id a && List.exists (fun d -> not d) a);
  let c = with_faults "x:p0.5@43" (fun () -> List.init 200 (fun _ -> Fault.should_fail "x")) in
  check "different seed, different schedule" false (a = c)

let test_fault_trip_and_counters () =
  with_faults "x:once1" (fun () ->
      (match Fault.trip "x" with
      | () -> Alcotest.fail "first call must raise"
      | exception Fault.Injected site -> check "exception names the site" true (site = "x"));
      Fault.trip "x";
      (* call 2: passes *)
      check_int "one injection recorded" 1 (Fault.injected_count "x");
      check "sites lists the armed site" true (Fault.sites () = [ ("x", 1) ]))

(* the four compiled-in sites, each observed through the dispatch core *)

let fresh_server ?clock ?deadline_ms ?deadline_cap_ms ?(max_inflight = 0) ?max_frame_bytes () =
  let base = Srv.default_config in
  Srv.create
    ~config:
      {
        base with
        Srv.clock = (match clock with Some c -> c | None -> base.Srv.clock);
        Srv.deadline_ms;
        Srv.deadline_cap_ms;
        Srv.max_inflight;
        Srv.max_frame_bytes =
          (match max_frame_bytes with Some b -> b | None -> base.Srv.max_frame_bytes);
      }
    ()

let load_fig t = Srv.handle t (P.Load { name = "fig"; source = P.Builtin "figure1" })

let query_fig ?deadline_ms t =
  Srv.handle t (P.Query { graph = "fig"; query = "(tram+bus)*.cinema"; explain = false; deadline_ms })

let expect_code code = function
  | P.Err e -> Alcotest.(check string) "error code" code e.P.code
  | r -> Alcotest.failf "expected %s, got %s" code (P.response_to_string r)

let test_fault_site_catalog () =
  let t = fresh_server () in
  ignore (load_fig t);
  with_faults "catalog.lookup:once1" (fun () ->
      expect_code "unavailable" (query_fig t);
      match query_fig t with
      | P.Answer _ -> ()
      | r -> Alcotest.failf "second lookup must succeed, got %s" (P.response_to_string r))

let test_fault_site_qcache () =
  let t = fresh_server () in
  ignore (load_fig t);
  with_faults "qcache.insert:n1" (fun () ->
      (match query_fig t with
      | P.Answer { cache = `Miss; _ } -> ()
      | r -> Alcotest.failf "expected a served miss, got %s" (P.response_to_string r));
      (* every insert dropped: the same query misses again *)
      (match query_fig t with
      | P.Answer { cache = `Miss; _ } -> ()
      | r -> Alcotest.failf "expected a second miss, got %s" (P.response_to_string r));
      check "insert drops recorded" true (Fault.injected_count "qcache.insert" >= 2))

let test_fault_site_session () =
  let t = fresh_server () in
  ignore (load_fig t);
  with_faults "session.step:once1" (fun () ->
      expect_code "unavailable" (Srv.handle t (P.Session_show { session = 1 }));
      (* next step passes through to the normal (unknown-session) answer *)
      expect_code "unknown-session" (Srv.handle t (P.Session_show { session = 1 })))

let test_fault_site_sock_write () =
  let t = fresh_server () in
  with_faults "sock.write:once1" (fun () ->
      let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
      let ic = Unix.in_channel_of_descr req_r and oc = Unix.out_channel_of_descr resp_w in
      let server =
        Thread.create
          (fun () ->
            (try Srv.serve_channels t ic oc with _ -> ());
            try close_out oc with Sys_error _ -> ())
          ()
      in
      let wr = Unix.out_channel_of_descr req_w in
      output_string wr "{\"op\":\"list-graphs\"}\n{\"op\":\"list-graphs\"}\n";
      close_out wr;
      Thread.join server;
      (* first response write tripped: the connection closed with nothing
         written and the disconnect was counted *)
      let rd = Unix.in_channel_of_descr resp_r in
      let got = try Some (input_line rd) with End_of_file -> None in
      close_in rd;
      (try close_in ic with _ -> ());
      check "no response escaped the tripped socket" true (got = None);
      check_int "one injection at sock.write" 1 (Fault.injected_count "sock.write"))

(* ------------------------------------------------------------------ *)
(* server-side deadline enforcement *)

let decode_report_data = function
  | Some j -> (
      match Eval.report_of_json j with
      | Ok r -> r
      | Error e -> Alcotest.failf "error data is not a report: %s" e)
  | None -> Alcotest.fail "timeout error must attach the partial report"

let test_server_default_deadline () =
  let t = fresh_server ~deadline_ms:0.0001 () in
  ignore (load_fig t);
  match query_fig t with
  | P.Err e ->
      Alcotest.(check string) "typed timeout" "timeout" e.P.code;
      let r = decode_report_data e.P.data in
      check "partial report stop" true (r.Eval.stop = Eval.Timed_out)
  | r -> Alcotest.failf "expected timeout, got %s" (P.response_to_string r)

let test_server_client_deadline_and_cap () =
  let t = fresh_server () in
  ignore (load_fig t);
  (* no default: an unbounded request answers *)
  (match query_fig t with
  | P.Answer _ -> ()
  | r -> Alcotest.failf "expected answer, got %s" (P.response_to_string r));
  (* a client-supplied deadline is honored (a query the cache has not
     seen — a cached result would satisfy any deadline instantly) *)
  expect_code "timeout"
    (Srv.handle t
       (P.Query
          { graph = "fig"; query = "tram.(bus+tram)*"; explain = false; deadline_ms = Some 0.0001 }));
  (* the cap bounds what a client may ask for *)
  let capped = fresh_server ~deadline_cap_ms:0.0001 () in
  ignore (load_fig capped);
  expect_code "timeout" (query_fig ~deadline_ms:60_000.0 capped)

let test_server_learn_deadline () =
  let t = fresh_server () in
  ignore (load_fig t);
  expect_code "timeout"
    (Srv.handle t
       (P.Learn { graph = "fig"; pos = [ "N2"; "N6" ]; neg = [ "N5" ]; deadline_ms = Some 0.0001 }))

(* ------------------------------------------------------------------ *)
(* overload shedding and drain *)

let test_shed_under_load () =
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (* hold the admission slot deterministically: the worker's request is a
     session-start whose injected session clock blocks on [gate] until we
     release it -- no dependence on how long a real evaluation takes *)
  let gate = Mutex.create () in
  let gated = Atomic.make false in
  let clock () =
    if Atomic.get gated then begin
      Mutex.lock gate;
      Mutex.unlock gate
    end;
    0.0
  in
  let t = fresh_server ~clock ~max_inflight:1 () in
  ignore (load_fig t);
  Mutex.lock gate;
  Atomic.set gated true;
  let slow =
    P.Session_start { graph = "fig"; strategy = "smart"; seed = 1; budget = Some 5 }
  in
  (* admission control lives in the wire layer (handle_value), so drive
     it through handle_line *)
  let slow_response = ref "" in
  let worker =
    Thread.create (fun () -> slow_response := Srv.handle_line t (P.request_to_string slow)) ()
  in
  let t0 = Gps_obs.Clock.now_ns () in
  while
    Srv.inflight t < 1 && Gps_obs.Clock.ns_to_s (Gps_obs.Clock.elapsed_ns t0) < 10.0
  do
    Thread.yield ()
  done;
  (* the slot cannot be released while we hold the gate *)
  check_int "worker admitted" 1 (Srv.inflight t);
  (* the second concurrent request is shed before it is even decoded *)
  let shed = Srv.handle_line t (P.request_to_string P.List_graphs) in
  check "shed response is a typed overloaded error" true (has shed "\"overloaded\"");
  check "shed counted" true (counter "server.sheds" >= 1);
  check "not draining yet" false (Srv.draining t);
  Srv.begin_drain t;
  check "draining" true (Srv.draining t);
  (* release the gate: the held request completes and frees its slot *)
  Atomic.set gated false;
  Mutex.unlock gate;
  Thread.join worker;
  check "held request completed" true (has !slow_response "\"ok\":true");
  check_int "slot released" 0 (Srv.inflight t);
  (* the drain token pre-cancels any evaluation dispatched afterwards *)
  expect_code "cancelled"
    (Srv.handle t
       (P.Query { graph = "fig"; query = "bus.(tram+bus)*"; explain = false; deadline_ms = None }));
  (* ...while non-evaluating requests still answer -- a draining server
     refuses new work at the transports, not in the dispatch core *)
  match Srv.handle t P.List_graphs with
  | P.Graphs _ -> ()
  | r -> Alcotest.failf "expected graphs, got %s" (P.response_to_string r)

let test_frame_too_large () =
  let t = fresh_server ~max_frame_bytes:1024 () in
  let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r and oc = Unix.out_channel_of_descr resp_w in
  let server =
    Thread.create
      (fun () ->
        (try Srv.serve_channels t ic oc with _ -> ());
        try close_out oc with Sys_error _ -> ())
      ()
  in
  let wr = Unix.out_channel_of_descr req_w in
  (* an oversized frame, then a well-formed one that must never be read *)
  output_string wr (String.make 4096 'x');
  output_string wr "\n{\"op\":\"list-graphs\"}\n";
  close_out wr;
  Thread.join server;
  let rd = Unix.in_channel_of_descr resp_r in
  let first = try Some (input_line rd) with End_of_file -> None in
  let second = try Some (input_line rd) with End_of_file -> None in
  close_in rd;
  (try close_in ic with _ -> ());
  (match first with
  | Some line ->
      check "frame-too-large error" true
        (let n = String.length line in
         let rec go i =
           i + 15 <= n && (String.sub line i 15 = "frame-too-large" || go (i + 1))
         in
         go 0)
  | None -> Alcotest.fail "expected one frame-too-large error line");
  check "connection closed after the oversized frame" true (second = None);
  check "rejection counted" true (counter "server.frame_rejections" >= 1)

(* ------------------------------------------------------------------ *)

let qcheck_tests = [ prop_combine_tree_cancel; prop_combine_takes_earlier ]

let suite =
  [
    ( "resilience.deadline",
      [
        Alcotest.test_case "none token" `Quick test_none_token;
        Alcotest.test_case "cancel token" `Quick test_cancel_token;
        Alcotest.test_case "after_ms" `Quick test_after_ms;
        Alcotest.test_case "cancelled wins over timeout" `Quick test_cancelled_wins_over_timeout;
        Alcotest.test_case "combine" `Quick test_combine;
        Alcotest.test_case "reason codec" `Quick test_reason_codec;
      ] );
    ( "resilience.eval",
      [
        Alcotest.test_case "none-deadline equivalence" `Quick test_eval_none_equivalence;
        Alcotest.test_case "pre-cancelled interrupts" `Quick test_eval_pre_cancelled;
        Alcotest.test_case "pre-expired interrupts" `Quick test_eval_pre_expired;
        Alcotest.test_case "prompt termination" `Slow test_eval_prompt_termination;
        Alcotest.test_case "cancel checks counted" `Quick test_eval_cancel_counters;
      ] );
    ( "resilience.learning",
      [
        Alcotest.test_case "learner interrupted" `Quick test_learner_interrupted;
        Alcotest.test_case "session interrupted" `Quick test_session_interrupted;
      ] );
    ( "resilience.fault",
      [
        Alcotest.test_case "spec parsing" `Quick test_fault_parse;
        Alcotest.test_case "nth and once modes" `Quick test_fault_nth_once;
        Alcotest.test_case "probabilistic replay" `Quick test_fault_prob_deterministic;
        Alcotest.test_case "trip and counters" `Quick test_fault_trip_and_counters;
        Alcotest.test_case "site: catalog.lookup" `Quick test_fault_site_catalog;
        Alcotest.test_case "site: qcache.insert" `Quick test_fault_site_qcache;
        Alcotest.test_case "site: session.step" `Quick test_fault_site_session;
        Alcotest.test_case "site: sock.write" `Quick test_fault_site_sock_write;
      ] );
    ( "resilience.server",
      [
        Alcotest.test_case "default deadline" `Quick test_server_default_deadline;
        Alcotest.test_case "client deadline and cap" `Quick test_server_client_deadline_and_cap;
        Alcotest.test_case "learn deadline" `Quick test_server_learn_deadline;
        Alcotest.test_case "shed under load" `Slow test_shed_under_load;
        Alcotest.test_case "frame too large" `Quick test_frame_too_large;
      ] );
    ("resilience.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
