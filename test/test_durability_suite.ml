(* Durability tests: the checksummed WAL's recovery contract (clean /
   torn-tail / corrupt-record, property-tested against arbitrary
   truncation and bit flips), the CRC-framed store log, the packed-CSR
   checksum trailer, the per-session durability journals, and
   crash/restart recovery through the full server. *)

module Wal = Gps_graph.Wal
module Crc32 = Gps_graph.Crc32
module Store = Gps_graph.Store
module Disk = Gps_graph.Disk_csr
module Digraph = Gps_graph.Digraph
module Json = Gps_graph.Json
module Journal = Gps_interactive.Journal
module Strategy = Gps_interactive.Strategy
module Session = Gps_interactive.Session
module Catalog = Gps_server.Catalog
module Sessions = Gps_server.Sessions
module Durability = Gps_server.Durability
module Srv = Gps_server.Server

let check = Alcotest.check

let temp_path suffix =
  let f = Filename.temp_file "gps_dur" suffix in
  Sys.remove f;
  f

let cleanup path = try Sys.remove path with Sys_error _ -> ()

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let with_temp_dir f =
  let dir = temp_path ".d" in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let wal_open ?policy path =
  match Wal.open_append ?policy path with
  | Ok (w, r) -> (w, r)
  | Error e -> Alcotest.failf "open_append %s: %s" path e

let scan_ok path =
  match Wal.scan path with Ok r -> r | Error e -> Alcotest.failf "scan %s: %s" path e

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Wal *)

let test_wal_roundtrip () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let records = [ "alpha"; ""; "third record"; String.make 1000 'x' ] in
      let w, r0 = wal_open path in
      check Alcotest.(list string) "fresh log is empty" [] r0.Wal.entries;
      List.iter (Wal.append w) records;
      check Alcotest.int "appends counted" (List.length records) (Wal.appends w);
      check Alcotest.bool "Always fsyncs every append" true
        (Wal.fsyncs w >= List.length records);
      Wal.close w;
      Wal.close w (* idempotent *);
      let r = scan_ok path in
      check Alcotest.(list string) "all records recovered" records r.Wal.entries;
      (match r.Wal.outcome with
      | Wal.Clean -> ()
      | _ -> Alcotest.fail "expected clean outcome");
      check Alcotest.int "no bytes discarded" 0 (Wal.bytes_discarded r);
      (* reopen keeps history and appends continue after it *)
      let w2, r2 = wal_open path in
      check Alcotest.int "reopen sees history" (List.length records)
        (List.length r2.Wal.entries);
      Wal.append w2 "post-crash";
      Wal.close w2;
      check Alcotest.(list string) "append after reopen" (records @ [ "post-crash" ])
        (scan_ok path).Wal.entries)

let test_wal_policy_strings () =
  let roundtrip s =
    match Wal.policy_of_string s with
    | Ok p -> Wal.policy_to_string p
    | Error e -> Alcotest.failf "policy %S: %s" s e
  in
  check Alcotest.string "always" "always" (roundtrip "always");
  check Alcotest.string "never" "never" (roundtrip "never");
  check Alcotest.string "every" "every:5" (roundtrip "every:5");
  check Alcotest.bool "bad interval rejected" true
    (Result.is_error (Wal.policy_of_string "every:0"));
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Wal.policy_of_string "sometimes"))

let test_wal_foreign_file () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      write_file path "this is not a WAL, it is prose";
      match Wal.scan path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign magic must not scan as a WAL")

let test_wal_torn_magic () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      write_file path (String.sub Wal.magic 0 4);
      let r = scan_ok path in
      check Alcotest.int "no entries" 0 (List.length r.Wal.entries);
      match r.Wal.outcome with
      | Wal.Torn_tail { bytes_discarded } ->
          check Alcotest.int "partial magic discarded" 4 bytes_discarded
      | _ -> Alcotest.fail "partial magic is a torn tail")

let test_wal_oversize_length_is_corruption () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let w, _ = wal_open path in
      Wal.append w "ok";
      Wal.close w;
      (* append a frame whose length field claims 1 GiB *)
      let frame = Bytes.make 8 '\000' in
      Bytes.set_int32_le frame 0 (Int32.of_int (1024 * 1024 * 1024));
      let prev = read_file path in
      write_file path (prev ^ Bytes.to_string frame ^ "padding-bytes");
      let r = scan_ok path in
      check Alcotest.(list string) "valid prefix kept" [ "ok" ] r.Wal.entries;
      match r.Wal.outcome with
      | Wal.Corrupt_record { index; _ } -> check Alcotest.int "at record 1" 1 index
      | _ -> Alcotest.fail "absurd length must read as corruption, not torn tail")

(* frame layout facts used by the properties below *)
let frame_bytes payload = 8 + String.length payload

let boundaries records =
  (* absolute end offset of each record's frame, starting after magic *)
  let _, offs =
    List.fold_left
      (fun (pos, acc) r ->
        let e = pos + frame_bytes r in
        (e, e :: acc))
      (String.length Wal.magic, [])
      records
  in
  List.rev offs

let gen_records =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (string_size ~gen:(char_range '\x00' '\xff') (int_bound 40)))

let arb_records =
  QCheck.make ~print:(fun rs -> String.concat "|" (List.map String.escaped rs)) gen_records

(* Property: truncate the log at ANY byte offset; recovery returns
   exactly the records whose frames fit whole below the cut, reports the
   rest as a torn tail, and the truncation offset in valid_bytes. *)
let prop_truncation =
  QCheck.Test.make ~name:"wal: arbitrary truncation recovers longest valid prefix"
    ~count:300
    QCheck.(pair arb_records (float_bound_inclusive 1.0))
    (fun (records, cut_frac) ->
      let path = temp_path ".wal" in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          let w, _ = wal_open path in
          List.iter (Wal.append w) records;
          Wal.close w;
          let full = read_file path in
          let size = String.length full in
          let cut = int_of_float (cut_frac *. float_of_int size) in
          let cut = max 0 (min cut size) in
          write_file path (String.sub full 0 cut);
          let r = scan_ok path in
          let expected =
            let rec go acc = function
              | (r_, e) :: rest when e <= cut -> go (r_ :: acc) rest
              | _ -> List.rev acc
            in
            go [] (List.combine records (boundaries records))
          in
          (* a cut inside the magic header truncates to an empty file
             (offset 0); past it, to the last whole frame *)
          let magic_len = String.length Wal.magic in
          let boundary =
            List.fold_left
              (fun acc e -> if e <= cut then e else acc)
              (if cut >= magic_len then magic_len else 0)
              (boundaries records)
          in
          r.Wal.entries = expected
          && r.Wal.valid_bytes = boundary
          && Wal.bytes_discarded r = cut - boundary
          &&
          match r.Wal.outcome with
          | Wal.Clean -> cut = boundary
          | Wal.Torn_tail _ -> cut > boundary
          | Wal.Corrupt_record _ -> false))

(* Property: flip one byte anywhere past the magic; the record holding
   that byte — and everything after it — is never replayed, and the log
   never reads clean. *)
let prop_bitflip =
  QCheck.Test.make ~name:"wal: one flipped byte is detected, never replayed" ~count:300
    QCheck.(triple arb_records (float_bound_inclusive 1.0) (int_range 1 255))
    (fun (records, pos_frac, xor_byte) ->
      let path = temp_path ".wal" in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          let w, _ = wal_open path in
          List.iter (Wal.append w) records;
          Wal.close w;
          let full = read_file path in
          let size = String.length full in
          let magic_len = String.length Wal.magic in
          let pos =
            magic_len
            + int_of_float (pos_frac *. float_of_int (size - magic_len - 1))
          in
          let pos = max magic_len (min pos (size - 1)) in
          let mutated = Bytes.of_string full in
          Bytes.set mutated pos
            (Char.chr (Char.code (Bytes.get mutated pos) lxor xor_byte));
          write_file path (Bytes.to_string mutated);
          let r = scan_ok path in
          (* index of the record whose frame contains the flipped byte *)
          let hit =
            let rec go i = function
              | e :: rest -> if pos < e then i else go (i + 1) rest
              | [] -> List.length records
            in
            go 0 (boundaries records)
          in
          let intact = List.filteri (fun i _ -> i < hit) records in
          r.Wal.entries = intact
          && match r.Wal.outcome with Wal.Clean -> false | _ -> true))

let test_wal_truncates_on_reopen () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let w, _ = wal_open path in
      Wal.append w "kept";
      Wal.append w "also kept";
      Wal.close w;
      let full = read_file path in
      (* tear mid-frame *)
      write_file path (String.sub full 0 (String.length full - 3));
      let w2, r = wal_open path in
      check Alcotest.int "one record lost to the tear" 1 (List.length r.Wal.entries);
      check Alcotest.int "file physically truncated" r.Wal.valid_bytes
        (Unix.stat path).Unix.st_size;
      Wal.append w2 "after recovery";
      Wal.close w2;
      check Alcotest.(list string) "log is consistent after the tear"
        [ "kept"; "after recovery" ] (scan_ok path).Wal.entries)

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_v2_roundtrip () =
  let path = temp_path ".log" in
  Fun.protect
    ~finally:(fun () -> cleanup path; cleanup (path ^ ".csr"))
    (fun () ->
      let st = Store.openfile path in
      check Alcotest.bool "fresh store is framed" true (Store.format st = Store.Framed_v2);
      ignore (Store.add_node st "solo");
      Store.link st "a" "x" "b";
      Store.link st "b" "y" "c";
      Store.close st;
      let head = String.sub (read_file path) 0 (String.length Wal.magic) in
      check Alcotest.string "log carries the WAL magic" Wal.magic head;
      let st2 = Store.openfile path in
      let g = Store.graph st2 in
      check Alcotest.int "nodes replayed" 4 (Digraph.n_nodes g);
      check Alcotest.int "edges replayed" 2 (Digraph.n_edges g);
      let r = Store.recovery st2 in
      (* solo + (a, b, edge) + (c, edge) *)
      check Alcotest.int "records replayed" 6 r.Store.entries_replayed;
      check Alcotest.bool "clean" true (r.Store.outcome = `Clean);
      Store.close st2)

let test_store_v1_compat () =
  let path = temp_path ".log" in
  Fun.protect
    ~finally:(fun () -> cleanup path; cleanup (path ^ ".csr"))
    (fun () ->
      (* a log written by the pre-WAL store: plain text lines *)
      write_file path "N\ta\nN\tb\nE\ta\tx\tb\n";
      let st = Store.openfile path in
      check Alcotest.bool "legacy format detected" true (Store.format st = Store.Text_v1);
      check Alcotest.int "legacy records replayed" 3
        (Store.recovery st).Store.entries_replayed;
      Store.link st "b" "y" "c";
      Store.close st;
      (* still a valid v1 log, reopenable *)
      let st2 = Store.openfile path in
      check Alcotest.int "appended edge visible" 2 (Digraph.n_edges (Store.graph st2));
      (* compact migrates to v2 *)
      Store.compact st2;
      check Alcotest.bool "compact migrates to framed" true
        (Store.format st2 = Store.Framed_v2);
      Store.close st2;
      let st3 = Store.openfile path in
      check Alcotest.int "snapshot carries the graph" 2
        (Digraph.n_edges (Store.graph st3));
      check Alcotest.int "log restarted empty" 0
        (Store.recovery st3).Store.entries_replayed;
      Store.close st3)

let test_store_corruption_refused_then_recovered () =
  let path = temp_path ".log" in
  Fun.protect
    ~finally:(fun () -> cleanup path; cleanup (path ^ ".csr"))
    (fun () ->
      let st = Store.openfile path in
      Store.link st "a" "x" "b";
      Store.link st "b" "y" "c";
      Store.close st;
      (* flip a payload byte in the middle of the log *)
      let full = read_file path in
      let mutated = Bytes.of_string full in
      let pos = String.length full - 2 in
      Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x40));
      write_file path (Bytes.to_string mutated);
      (* verify reports it read-only *)
      (match Store.verify path with
      | Ok r -> check Alcotest.bool "verify flags corruption" true
            (r.Store.outcome = `Corrupt_record)
      | Error e -> Alcotest.failf "verify: %s" e);
      (* default open refuses *)
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
        go 0
      in
      (match Store.openfile path with
      | exception Failure msg ->
          check Alcotest.bool "error names the recovery tool" true
            (contains msg "store recover" || contains msg "CRC")
      | _st -> Alcotest.fail "corrupt log must not open silently");
      (* explicit recovery truncates and the store works again *)
      let st2 = Store.openfile ~recover:true path in
      let r = Store.recovery st2 in
      check Alcotest.bool "recovery reports the corrupt record" true
        (r.Store.outcome = `Corrupt_record);
      check Alcotest.bool "loss is reported" true (r.Store.bytes_discarded > 0);
      Store.link st2 "a" "z" "d";
      Store.close st2;
      match Store.verify path with
      | Ok r2 -> check Alcotest.bool "log clean after repair" true (r2.Store.outcome = `Clean)
      | Error e -> Alcotest.failf "verify after recover: %s" e)

let test_store_fsync_policy () =
  let path = temp_path ".log" in
  Fun.protect
    ~finally:(fun () -> cleanup path; cleanup (path ^ ".csr"))
    (fun () ->
      let st = Store.openfile ~policy:Wal.Never path in
      Store.link st "a" "x" "b";
      check Alcotest.int "never policy: no fsyncs" 0 (Store.fsyncs st);
      Store.sync st;
      check Alcotest.bool "explicit sync still forces" true (Store.fsyncs st >= 1);
      Store.close st;
      let st2 = Store.openfile ~policy:(Wal.Every 2) path in
      Store.link st2 "c" "x" "d";
      Store.link st2 "d" "x" "e" (* 4 records: 2 nodes + edge each *);
      check Alcotest.bool "every:2 batches fsyncs" true (Store.fsyncs st2 >= 1);
      Store.close st2)

(* ------------------------------------------------------------------ *)
(* Disk_csr checksum trailer *)

let small_graph () =
  let g = Digraph.create () in
  Digraph.link g "a" "x" "b";
  Digraph.link g "b" "y" "c";
  Digraph.link g "c" "x" "a";
  g

let test_csr_trailer_verify () =
  let path = temp_path ".csr" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph (small_graph ()) ~path;
      match Disk.open_map path with
      | Error e -> Alcotest.failf "open: %s" (Disk.open_error_to_string e)
      | Ok d -> (
          check Alcotest.bool "trailer present" true (Disk.has_trailer d);
          match Disk.verify d with
          | Disk.Verified { bytes; _ } ->
              check Alcotest.bool "payload bytes plausible" true (bytes > 0)
          | _ -> Alcotest.fail "fresh pack must verify"))

let test_csr_trailer_mismatch () =
  let path = temp_path ".csr" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph (small_graph ()) ~path;
      let full = read_file path in
      let mutated = Bytes.of_string full in
      (* flip a byte inside the payload, well before the trailer *)
      let pos = String.length full / 2 in
      Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x01));
      write_file path (Bytes.to_string mutated);
      match Disk.open_map path with
      | Error _ -> () (* a header-field flip may fail validation outright *)
      | Ok d -> (
          match Disk.verify d with
          | Disk.Crc_mismatch _ -> ()
          | Disk.Verified _ -> Alcotest.fail "corrupt payload must not verify"
          | Disk.No_trailer -> Alcotest.fail "trailer should still be present"))

let test_csr_pre_trailer_files_still_open () =
  let path = temp_path ".csr" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph (small_graph ()) ~path;
      (* strip the 24-byte trailer: the file an older gps wrote *)
      let full = read_file path in
      write_file path (String.sub full 0 (String.length full - 24));
      match Disk.open_map path with
      | Error e -> Alcotest.failf "pre-trailer file must open: %s" (Disk.open_error_to_string e)
      | Ok d -> (
          check Alcotest.bool "no trailer detected" false (Disk.has_trailer d);
          check Alcotest.int "graph intact" 3 (Disk.base_edges d);
          match Disk.verify d with
          | Disk.No_trailer -> ()
          | _ -> Alcotest.fail "verification must report the absent trailer"))

(* ------------------------------------------------------------------ *)
(* Durability journals *)

let dur_load dir =
  match Durability.load ~dir ~policy:Wal.Always with
  | Ok d -> d
  | Error e -> Alcotest.failf "Durability.load: %s" e

let test_durability_journal_roundtrip () =
  with_temp_dir (fun dir ->
      let d = dur_load dir in
      Durability.journal_start d ~id:3 ~graph:"fig" ~version:1 ~strategy:"smart" ~seed:7
        ~budget:(Some 10);
      Durability.journal_answer d ~id:3 (Journal.Label (Some "N2", `Pos));
      Durability.journal_answer d ~id:3 (Journal.Validate (Some "N2", [ "bus"; "tram" ]));
      Durability.journal_answer d ~id:3 (Journal.Satisfied ("bus*", false));
      Durability.close d;
      let d2 = dur_load dir in
      let stats = Durability.recover d2 in
      check Alcotest.int "one journal" 1 (List.length stats.Durability.journals);
      check Alcotest.int "nothing quarantined" 0 stats.Durability.quarantined;
      check Alcotest.int "no tails" 0 stats.Durability.entries_discarded;
      let j = List.hd stats.Durability.journals in
      check Alcotest.int "id" 3 j.Durability.r_id;
      check Alcotest.string "graph" "fig" j.Durability.r_graph;
      check Alcotest.string "strategy" "smart" j.Durability.r_strategy;
      check Alcotest.int "seed" 7 j.Durability.r_seed;
      check Alcotest.(option int) "budget" (Some 10) j.Durability.r_budget;
      check Alcotest.int "answers" 3 (List.length j.Durability.r_answers);
      check Alcotest.bool "answers replay in order" true
        (j.Durability.r_answers
        = [
            Journal.Label (Some "N2", `Pos);
            Journal.Validate (Some "N2", [ "bus"; "tram" ]);
            Journal.Satisfied ("bus*", false);
          ]);
      (* the recovered journal stays open: a post-recovery answer appends *)
      Durability.journal_answer d2 ~id:3 (Journal.Label (None, `Zoom));
      Durability.close d2;
      let d3 = dur_load dir in
      let stats3 = Durability.recover d3 in
      check Alcotest.int "post-recovery answer persisted" 4
        (List.length (List.hd stats3.Durability.journals).Durability.r_answers);
      Durability.close d3)

let test_durability_discard () =
  with_temp_dir (fun dir ->
      let d = dur_load dir in
      Durability.journal_start d ~id:1 ~graph:"g" ~version:1 ~strategy:"smart" ~seed:0
        ~budget:None;
      check Alcotest.bool "journal exists" true
        (Sys.file_exists (Durability.session_path d 1));
      Durability.discard d ~id:1;
      check Alcotest.bool "journal deleted" false
        (Sys.file_exists (Durability.session_path d 1));
      Durability.close d)

let test_durability_torn_tail_counted () =
  with_temp_dir (fun dir ->
      let d = dur_load dir in
      Durability.journal_start d ~id:9 ~graph:"g" ~version:1 ~strategy:"smart" ~seed:1
        ~budget:None;
      Durability.journal_answer d ~id:9 (Journal.Label (Some "n", `Neg));
      Durability.close d;
      (* tear the last frame, as a crash mid-append would *)
      let path = Filename.concat dir "session-9.wal" in
      let full = read_file path in
      write_file path (String.sub full 0 (String.length full - 2));
      let d2 = dur_load dir in
      let stats = Durability.recover d2 in
      check Alcotest.int "tail counted" 1 stats.Durability.entries_discarded;
      check Alcotest.bool "bytes counted" true (stats.Durability.bytes_discarded > 0);
      let j = List.hd stats.Durability.journals in
      check Alcotest.int "torn answer dropped" 0 (List.length j.Durability.r_answers);
      Durability.close d2)

let test_durability_quarantine () =
  with_temp_dir (fun dir ->
      (* a structurally valid WAL whose first record is not a start
         record: parseable frames, unparseable journal *)
      let path = Filename.concat dir "session-5.wal" in
      (match Wal.open_append path with
      | Ok (w, _) ->
          Wal.append w {|{"ev":"answer","a":{"kind":"satisfied","query":"q","ok":true}}|};
          Wal.close w
      | Error e -> Alcotest.failf "setup: %s" e);
      let d = dur_load dir in
      let stats = Durability.recover d in
      check Alcotest.int "no journals recovered" 0 (List.length stats.Durability.journals);
      check Alcotest.int "quarantined" 1 stats.Durability.quarantined;
      check Alcotest.bool "moved aside as .failed" true
        (Sys.file_exists (path ^ ".failed"));
      check Alcotest.bool "original gone" false (Sys.file_exists path);
      (* the next recovery is clean: the bad file no longer re-fails *)
      let stats2 = Durability.recover d in
      check Alcotest.int "failure does not recur" 0 stats2.Durability.quarantined;
      Durability.close d)

let test_durability_empty_journal_deleted () =
  with_temp_dir (fun dir ->
      (* a kill between journal creation and the start-record append
         leaves a magic-only WAL: zero records, zero acknowledged state
         — recovery deletes it instead of quarantining *)
      let path = Filename.concat dir "session-4.wal" in
      (match Wal.open_append path with
      | Ok (w, _) -> Wal.close w
      | Error e -> Alcotest.failf "setup: %s" e);
      let d = dur_load dir in
      let stats = Durability.recover d in
      check Alcotest.int "no journals recovered" 0 (List.length stats.Durability.journals);
      check Alcotest.int "nothing quarantined" 0 stats.Durability.quarantined;
      check Alcotest.bool "empty journal deleted" false (Sys.file_exists path);
      check Alcotest.bool "no .failed residue" false (Sys.file_exists (path ^ ".failed"));
      Durability.close d)

(* ------------------------------------------------------------------ *)
(* Sessions.restore *)

let test_sessions_restore_id_continuity () =
  let catalog = Catalog.create () in
  let entry = Catalog.put catalog ~name:"fig" (Gps_graph.Datasets.figure1 ()) in
  let fresh () = Session.start ~strategy:Strategy.smart (Catalog.graph entry) in
  let t = Sessions.create () in
  let e5 = Sessions.restore t ~id:5 entry (fresh ()) in
  check Alcotest.int "restored under its old id" 5 e5.Sessions.id;
  let e6 = Sessions.start t entry (fresh ()) in
  check Alcotest.bool "fresh ids continue past restored ones" true (e6.Sessions.id > 5);
  (match Sessions.restore t ~id:5 entry (fresh ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "restoring a live id must be refused");
  (* restoring a low id never collides with the allocator *)
  let e1 = Sessions.restore t ~id:1 entry (fresh ()) in
  check Alcotest.int "low id restored" 1 e1.Sessions.id;
  let e_next = Sessions.start t entry (fresh ()) in
  check Alcotest.bool "allocator unaffected by low restore" true
    (e_next.Sessions.id > e6.Sessions.id)

let test_sessions_on_remove_hook () =
  let catalog = Catalog.create () in
  let entry = Catalog.put catalog ~name:"fig" (Gps_graph.Datasets.figure1 ()) in
  let removed = ref [] in
  let t = Sessions.create ~on_remove:(fun id -> removed := id :: !removed) () in
  let e = Sessions.start t entry (Session.start ~strategy:Strategy.smart (Catalog.graph entry)) in
  ignore (Sessions.stop t e.Sessions.id);
  check Alcotest.(list int) "stop fires on_remove" [ e.Sessions.id ] !removed

(* ------------------------------------------------------------------ *)
(* server crash/restart recovery *)

let server_with_state dir =
  let t =
    Srv.create ~config:{ Srv.default_config with Srv.state_dir = Some dir } ()
  in
  (match Srv.handle t (Gps_server.Protocol.Load { name = "fig"; source = Gps_server.Protocol.Builtin "figure1" }) with
  | Gps_server.Protocol.Err e -> Alcotest.failf "load: %s" e.Gps_server.Protocol.message
  | _ -> ());
  t

let line t s = Srv.handle_line t s

let field v k = Json.member k (Json.value_of_string v)

let test_server_recover_roundtrip () =
  with_temp_dir (fun dir ->
      (* server 1: start a session, answer twice, then "crash" (drop it
         without stopping the session) *)
      let t1 = server_with_state dir in
      let r1 =
        line t1 {|{"op":"session-start","graph":"fig","strategy":"smart","seed":7}|}
      in
      check Alcotest.bool "start ok" true (field r1 "ok" = Some (Json.Bool true));
      let r2 = line t1 {|{"op":"session-label","session":1,"answer":"yes"}|} in
      check Alcotest.bool "label ok" true (field r2 "ok" = Some (Json.Bool true));
      let pre_crash = line t1 {|{"op":"session-show","session":1}|} in
      (* server 2, same state dir: the journal must rebuild session 1 *)
      let t2 = server_with_state dir in
      (match Srv.recover t2 with
      | None -> Alcotest.fail "server with a state dir must recover"
      | Some s ->
          check Alcotest.int "one session restored" 1 s.Srv.sessions_restored;
          check Alcotest.int "none failed" 0 s.Srv.sessions_failed;
          check Alcotest.int "no tails" 0 s.Srv.entries_discarded);
      let post_crash = line t2 {|{"op":"session-show","session":1}|} in
      check Alcotest.string "session state survives the crash bit-for-bit" pre_crash
        post_crash;
      (* the restored session keeps working and journaling *)
      let r3 = line t2 {|{"op":"session-validate","session":1}|} in
      check Alcotest.bool "restored session answers" true
        (field r3 "ok" = Some (Json.Bool true));
      (* status surfaces the recovery *)
      let status = line t2 {|{"op":"status"}|} in
      match field status "status" with
      | Some st -> (
          match Json.member "durability" st with
          | Some dur ->
              check Alcotest.bool "status reports recovery" true
                (Json.member "recovered" dur = Some (Json.Bool true));
              check Alcotest.bool "status counts restored sessions" true
                (Json.member "sessions_restored" dur = Some (Json.Number 1.0))
          | None -> Alcotest.fail "status lacks a durability block")
      | None -> Alcotest.fail "no status payload")

let test_server_recover_missing_graph_quarantines () =
  with_temp_dir (fun dir ->
      let t1 = server_with_state dir in
      ignore (line t1 {|{"op":"session-start","graph":"fig","strategy":"smart","seed":7}|});
      (* server 2 never loads the graph: replay must fail, not crash *)
      let t2 =
        Srv.create ~config:{ Srv.default_config with Srv.state_dir = Some dir } ()
      in
      (match Srv.recover t2 with
      | None -> Alcotest.fail "recover must run"
      | Some s ->
          check Alcotest.int "nothing restored" 0 s.Srv.sessions_restored;
          check Alcotest.int "failure counted" 1 s.Srv.sessions_failed);
      check Alcotest.bool "journal quarantined" true
        (Sys.file_exists (Filename.concat dir "session-1.wal.failed")))

let test_server_session_stop_discards_journal () =
  with_temp_dir (fun dir ->
      let t = server_with_state dir in
      ignore (line t {|{"op":"session-start","graph":"fig","strategy":"smart","seed":7}|});
      check Alcotest.bool "journal created" true
        (Sys.file_exists (Filename.concat dir "session-1.wal"));
      ignore (line t {|{"op":"session-stop","session":1}|});
      check Alcotest.bool "journal discarded on stop" false
        (Sys.file_exists (Filename.concat dir "session-1.wal")))

let test_server_without_state_dir () =
  let t = Srv.create () in
  check Alcotest.bool "no state dir" true (Srv.state_dir t = None);
  check Alcotest.bool "recover is a no-op" true (Srv.recover t = None);
  check Alcotest.bool "no summary" true (Srv.last_recovery t = None)

(* ------------------------------------------------------------------ *)

let qcheck_tests = [ prop_truncation; prop_bitflip ]

let suite =
  [
    ( "durability.wal",
      [
        Alcotest.test_case "roundtrip and reopen" `Quick test_wal_roundtrip;
        Alcotest.test_case "policy strings" `Quick test_wal_policy_strings;
        Alcotest.test_case "foreign file refused" `Quick test_wal_foreign_file;
        Alcotest.test_case "torn magic" `Quick test_wal_torn_magic;
        Alcotest.test_case "absurd length is corruption" `Quick
          test_wal_oversize_length_is_corruption;
        Alcotest.test_case "reopen truncates torn tail" `Quick test_wal_truncates_on_reopen;
      ] );
    ("durability.wal.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ( "durability.store",
      [
        Alcotest.test_case "v2 roundtrip" `Quick test_store_v2_roundtrip;
        Alcotest.test_case "v1 compat and migration" `Quick test_store_v1_compat;
        Alcotest.test_case "corruption refused then recovered" `Quick
          test_store_corruption_refused_then_recovered;
        Alcotest.test_case "fsync policies" `Quick test_store_fsync_policy;
      ] );
    ( "durability.csr",
      [
        Alcotest.test_case "trailer verifies" `Quick test_csr_trailer_verify;
        Alcotest.test_case "corruption detected" `Quick test_csr_trailer_mismatch;
        Alcotest.test_case "pre-trailer files open" `Quick
          test_csr_pre_trailer_files_still_open;
      ] );
    ( "durability.journal",
      [
        Alcotest.test_case "journal roundtrip" `Quick test_durability_journal_roundtrip;
        Alcotest.test_case "discard" `Quick test_durability_discard;
        Alcotest.test_case "torn tail counted" `Quick test_durability_torn_tail_counted;
        Alcotest.test_case "quarantine" `Quick test_durability_quarantine;
        Alcotest.test_case "empty journal deleted" `Quick
          test_durability_empty_journal_deleted;
      ] );
    ( "durability.sessions",
      [
        Alcotest.test_case "restore id continuity" `Quick test_sessions_restore_id_continuity;
        Alcotest.test_case "on_remove hook" `Quick test_sessions_on_remove_hook;
      ] );
    ( "durability.server",
      [
        Alcotest.test_case "crash/restart recovery" `Quick test_server_recover_roundtrip;
        Alcotest.test_case "missing graph quarantines" `Quick
          test_server_recover_missing_graph_quarantines;
        Alcotest.test_case "stop discards journal" `Quick
          test_server_session_stop_discards_journal;
        Alcotest.test_case "no state dir" `Quick test_server_without_state_dir;
      ] );
  ]
