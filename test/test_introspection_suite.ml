(* Introspection: the in-process timeseries sampler, wide-event audit
   stream and their server/CLI surfaces.

   The metric registries are process-global, so every test works with
   its own uniquely-named counters/gauges and reads *deltas* between
   samples it took itself — concurrent suites bumping other metrics
   cannot interfere. *)

module Timeseries = Gps_obs.Timeseries
module Wide_event = Gps_obs.Wide_event
module Counter = Gps_obs.Counter
module Gauge = Gps_obs.Gauge
module Histogram = Gps_obs.Histogram
module Prom = Gps_obs.Prom
module Json = Gps_graph.Json
module Srv = Gps_server.Server
module P = Gps_server.Protocol

let check = Alcotest.check

(* a gated fake clock: time only moves when the test says so *)
let fake_clock start =
  let now = ref start in
  let clock () = !now in
  let advance_s s = now := Int64.add !now (Int64.of_float (s *. 1e9)) in
  (clock, advance_s)

let rate_of point key = List.assoc_opt key point.Timeseries.rates
let counter_of point key = List.assoc_opt key point.Timeseries.counters

(* ------------------------------------------------------------------ *)
(* timeseries: ring, rates, windows *)

let test_ring_wraparound () =
  let clock, advance = fake_clock 1_000_000_000L in
  let ts = Timeseries.create ~capacity:4 ~interval_s:1.0 ~clock () in
  for _ = 1 to 7 do
    Timeseries.sample ts;
    advance 1.0
  done;
  check Alcotest.int "total_samples counts beyond capacity" 7 (Timeseries.total_samples ts);
  let points = Timeseries.window ts in
  (* 4 retained samples -> 3 points *)
  check Alcotest.int "window spans the retained ring" 3 (List.length points);
  let stamps = List.map (fun p -> p.Timeseries.at_ns) points in
  check Alcotest.bool "timestamps strictly increase" true
    (List.for_all2 (fun a b -> Int64.compare a b < 0)
       (List.filteri (fun i _ -> i < List.length stamps - 1) stamps)
       (List.tl stamps))

let test_rate_math () =
  let c = Counter.make "introspect.rate_reqs" in
  let g = Gauge.make "introspect.rate_depth" in
  let clock, advance = fake_clock 5_000_000_000L in
  let ts = Timeseries.create ~capacity:16 ~interval_s:1.0 ~clock () in
  Timeseries.sample ts;
  Counter.add c 10;
  Gauge.set g 3.5;
  advance 2.0;
  Timeseries.sample ts;
  Counter.add c 5;
  advance 0.5;
  Timeseries.sample ts;
  match Timeseries.window ts with
  | [ p1; p2 ] ->
      check (Alcotest.float 1e-9) "dt from the fake clock" 2.0 p1.Timeseries.dt_s;
      check (Alcotest.option (Alcotest.float 1e-9)) "10 in 2s = 5/s" (Some 5.0)
        (rate_of p1 "introspect.rate_reqs");
      check (Alcotest.option (Alcotest.float 1e-9)) "gauge carried verbatim" (Some 3.5)
        (List.assoc_opt "introspect.rate_depth" p1.Timeseries.gauges);
      check (Alcotest.float 1e-9) "second interval dt" 0.5 p2.Timeseries.dt_s;
      check (Alcotest.option (Alcotest.float 1e-9)) "5 in 0.5s = 10/s" (Some 10.0)
        (rate_of p2 "introspect.rate_reqs");
      check Alcotest.bool "cumulative counter is monotone" true
        (counter_of p1 "introspect.rate_reqs" <= counter_of p2 "introspect.rate_reqs")
  | points -> Alcotest.failf "expected 2 points, got %d" (List.length points)

let test_window_selection () =
  let clock, advance = fake_clock 0L in
  let ts = Timeseries.create ~capacity:32 ~interval_s:1.0 ~clock () in
  for _ = 1 to 10 do
    Timeseries.sample ts;
    advance 1.0
  done;
  check Alcotest.int "last 3 samples -> 2 points" 2
    (List.length (Timeseries.window ~last:3 ts));
  check Alcotest.int "last beyond stored clamps" 9
    (List.length (Timeseries.window ~last:100 ts));
  check Alcotest.int "one sample -> no points" 0 (List.length (Timeseries.window ~last:1 ts));
  Alcotest.check_raises "last 0 refused"
    (Invalid_argument "Timeseries.window: last must be >= 1") (fun () ->
      ignore (Timeseries.window ~last:0 ts));
  (* downsampling always keeps the newest sample *)
  let newest sel =
    match List.rev sel with p :: _ -> p.Timeseries.at_ns | [] -> Alcotest.fail "empty"
  in
  let full = Timeseries.window ts in
  List.iter
    (fun k ->
      check Alcotest.bool
        (Printf.sprintf "downsample %d ends on the latest sample" k)
        true
        (newest (Timeseries.window ~downsample:k ts) = newest full))
    [ 2; 3; 4; 7 ]

(* the telescoping invariant: summing rate*dt over the window recovers
   the total counter delta no matter how the window is downsampled *)
let test_downsample_telescopes () =
  QCheck.Test.make ~name:"timeseries: counter delta is downsample-invariant" ~count:60
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 2 40) (int_bound 50))
            (int_range 1 8)))
    (fun (increments, k) ->
      (* the invariant needs the oldest sample retained under
         downsampling (every k-th counting back from the newest), so
         trim to a whole number of strides *)
      let keep = List.length increments - (List.length increments mod k) in
      let increments = List.filteri (fun i _ -> i < keep) increments in
      let c = Counter.make "introspect.telescope" in
      let clock, advance = fake_clock 0L in
      let ts = Timeseries.create ~capacity:64 ~interval_s:1.0 ~clock () in
      Timeseries.sample ts;
      List.iter
        (fun n ->
          Counter.add c n;
          advance 1.0;
          Timeseries.sample ts)
        increments;
      let delta points =
        List.fold_left
          (fun acc p ->
            acc
            +. (Option.value ~default:0.0 (rate_of p "introspect.telescope")
               *. p.Timeseries.dt_s))
          0.0 points
      in
      let full = delta (Timeseries.window ts) in
      let sampled = delta (Timeseries.window ~downsample:k ts) in
      Float.abs (full -. sampled) < 1e-6)

let test_concurrent_record_vs_snapshot () =
  let c = Counter.make "introspect.concurrent" in
  let ts = Timeseries.create ~capacity:128 ~interval_s:0.001 () in
  let stop = Atomic.make false in
  let writer =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Counter.incr c;
          Thread.yield ()
        done)
      ()
  in
  for _ = 1 to 50 do
    Timeseries.sample ts
  done;
  Atomic.set stop true;
  Thread.join writer;
  let points = Timeseries.window ts in
  check Alcotest.bool "sampling under fire yields points" true (List.length points > 0);
  let values =
    List.filter_map (fun p -> counter_of p "introspect.concurrent") points
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check Alcotest.bool "cumulative counter never regresses" true (monotone values)

let test_hist_interval_stats () =
  let h = Histogram.make "introspect.lat_ns" in
  let clock, advance = fake_clock 0L in
  let ts = Timeseries.create ~capacity:8 ~interval_s:1.0 ~clock () in
  Timeseries.sample ts;
  List.iter (Histogram.record h) [ 100; 100; 100; 100 ];
  advance 2.0;
  Timeseries.sample ts;
  match Timeseries.window ts with
  | [ p ] -> (
      match
        List.find_opt (fun hp -> hp.Timeseries.hkey = "introspect.lat_ns") p.Timeseries.hists
      with
      | None -> Alcotest.fail "histogram missing from the point"
      | Some hp ->
          check Alcotest.int "interval count" 4 hp.Timeseries.hcount;
          check (Alcotest.float 1e-9) "interval rate" 2.0 hp.Timeseries.hrate;
          check Alcotest.bool "p50 lands in the recorded bucket" true
            (hp.Timeseries.hp50 >= 64. && hp.Timeseries.hp50 <= 256.))
  | points -> Alcotest.failf "expected 1 point, got %d" (List.length points)

let test_sampler_thread () =
  let ts = Timeseries.create ~capacity:16 ~interval_s:0.01 () in
  check Alcotest.bool "not running before start" false (Timeseries.running ts);
  Timeseries.start ts;
  Timeseries.start ts;
  check Alcotest.bool "running after start" true (Timeseries.running ts);
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Timeseries.total_samples ts < 3 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Timeseries.stop ts;
  Timeseries.stop ts;
  check Alcotest.bool "stopped" false (Timeseries.running ts);
  check Alcotest.bool "took several samples" true (Timeseries.total_samples ts >= 3);
  match Timeseries.last_age_s ts with
  | None -> Alcotest.fail "no last sample after running"
  | Some age -> check Alcotest.bool "age is sane" true (age >= 0.0 && age < 60.0)

let test_csv_export () =
  let c = Counter.make "introspect.csv_reqs" in
  let clock, advance = fake_clock 0L in
  let ts = Timeseries.create ~capacity:8 ~interval_s:1.0 ~clock () in
  Timeseries.sample ts;
  Counter.add c 3;
  advance 1.0;
  Timeseries.sample ts;
  let csv = Timeseries.window_to_csv ts in
  match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
      check Alcotest.bool "header leads with t_s,dt_s" true
        (String.length header >= 8 && String.sub header 0 8 = "t_s,dt_s");
      check Alcotest.bool "rate column present" true
        (List.exists
           (fun col -> col = "rate:introspect.csv_reqs")
           (String.split_on_char ',' header));
      check Alcotest.int "one row per point" 1 (List.length rows)
  | [] -> Alcotest.fail "empty csv"

let test_create_validation () =
  Alcotest.check_raises "capacity 0 refused"
    (Invalid_argument "Timeseries.create: capacity must be positive") (fun () ->
      ignore (Timeseries.create ~capacity:0 ()));
  Alcotest.check_raises "interval 0 refused"
    (Invalid_argument "Timeseries.create: interval must be positive") (fun () ->
      ignore (Timeseries.create ~interval_s:0.0 ()))

(* ------------------------------------------------------------------ *)
(* wide events *)

let test_event_accumulation () =
  let ev = Wide_event.create ~id:7 () in
  Wide_event.set_str ev "endpoint" "query";
  Wide_event.set_int ev "nodes" 3;
  Wide_event.set_bool ev "ok" true;
  Wide_event.set_float ev "ms" 1.5;
  (* overwrite keeps first-set position, last-set value *)
  Wide_event.set_int ev "nodes" 9;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
    "field order is first-set, value is last-set"
    [ ("endpoint", true); ("nodes", true); ("ok", true); ("ms", true) ]
    (List.map (fun (k, _) -> (k, true)) (Wide_event.fields ev));
  (match List.assoc_opt "nodes" (Wide_event.fields ev) with
  | Some (Wide_event.Int 9) -> ()
  | _ -> Alcotest.fail "overwrite must keep the newest value");
  match Wide_event.to_json ev with
  | Json.Object (("event", Json.String "request") :: ("id", Json.Number 7.0) :: rest) ->
      check Alcotest.int "all fields serialized" 4 (List.length rest)
  | _ -> Alcotest.fail "canonical envelope is {event, id, ...fields}"

let test_ids_monotonic () =
  let a = Wide_event.next_id () in
  let b = Wide_event.next_id () in
  check Alcotest.bool "ids increase" true (b > a);
  let ev = Wide_event.create () in
  check Alcotest.bool "create allocates past the last raw id" true (Wide_event.id ev > b);
  check Alcotest.int "last_id tracks the newest allocation" (Wide_event.id ev)
    (Wide_event.last_id ())

let with_temp_sink ?sample ?slow_ms f =
  let path = Filename.temp_file "gps_audit" ".jsonl" in
  let oc = open_out path in
  let sink = Wide_event.sink ?sample ?slow_ms oc in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      Sys.remove path)
    (fun () -> f sink (fun () -> In_channel.with_open_bin path In_channel.input_all))

let test_sampling_determinism () =
  with_temp_sink ~sample:3 ~slow_ms:100.0 @@ fun sink _read ->
  (* fast, ok events: kept iff id mod 3 = 0 *)
  for id = 1 to 12 do
    let ev = Wide_event.create ~id () in
    check Alcotest.bool
      (Printf.sprintf "id %d sampling" id)
      (id mod 3 = 0)
      (Wide_event.keep sink ev ~ok:true ~ms:1.0)
  done;
  (* errors and slow requests always survive sampling *)
  let ev = Wide_event.create ~id:1 () in
  check Alcotest.bool "errors always kept" true (Wide_event.keep sink ev ~ok:false ~ms:1.0);
  check Alcotest.bool "slow always kept" true (Wide_event.keep sink ev ~ok:true ~ms:100.0)

let test_sink_emit_and_load () =
  with_temp_sink ~sample:2 @@ fun sink read ->
  for id = 1 to 5 do
    let ev = Wide_event.create ~id () in
    Wide_event.set_str ev "endpoint" "query";
    Wide_event.emit sink ev ~ok:true ~ms:0.5
  done;
  Wide_event.flush_sink sink;
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' (read ()))
  in
  check Alcotest.int "ids 2 and 4 of 1..5 survive 1-in-2" 2 (List.length lines);
  let events, malformed =
    let path = Filename.temp_file "gps_audit_load" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc ->
            output_string oc (String.concat "\n" lines);
            output_string oc "\nnot json at all\n");
        In_channel.with_open_bin path Wide_event.load_jsonl)
  in
  check Alcotest.int "parsed events" 2 (List.length events);
  check Alcotest.int "malformed tolerated, tallied" 1 malformed

let test_sink_validation () =
  Alcotest.check_raises "sample 0 refused"
    (Invalid_argument "Wide_event.sink: sample must be >= 1") (fun () ->
      with_temp_sink ~sample:0 (fun _ _ -> ()))

(* ------------------------------------------------------------------ *)
(* audit summary *)

let event ~id ~endpoint ?(ok = true) ?cache ~ms () =
  let fields =
    [
      ("event", Json.String "request");
      ("id", Json.Number (float_of_int id));
      ("endpoint", Json.String endpoint);
      ("ok", Json.Bool ok);
      ("ms", Json.Number ms);
    ]
    @ match cache with None -> [] | Some c -> [ ("cache", Json.String c) ]
  in
  Json.Object fields

let test_summarize () =
  let events =
    [
      event ~id:1 ~endpoint:"query" ~cache:"miss" ~ms:4.0 ();
      event ~id:2 ~endpoint:"query" ~cache:"hit" ~ms:1.0 ();
      event ~id:3 ~endpoint:"query" ~cache:"hit" ~ms:2.0 ();
      event ~id:4 ~endpoint:"load" ~ms:10.0 ();
      event ~id:5 ~endpoint:"query" ~ok:false ~cache:"miss" ~ms:8.0 ();
    ]
  in
  let s = Wide_event.summarize ~top:2 ~malformed:1 events in
  check Alcotest.int "total" 5 s.Wide_event.s_total;
  check Alcotest.int "malformed carried through" 1 s.Wide_event.s_malformed;
  check Alcotest.int "errors" 1 s.Wide_event.s_errors;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "cache tally" [ ("hit", 2); ("miss", 2) ] s.Wide_event.s_cache;
  (match s.Wide_event.s_endpoints with
  | [ load; query ] ->
      check Alcotest.string "endpoints sorted" "load" load.Wide_event.e_endpoint;
      check Alcotest.int "query count" 4 query.Wide_event.e_count;
      check Alcotest.int "query errors" 1 query.Wide_event.e_errors;
      check (Alcotest.float 1e-9) "query max ms" 8.0 query.Wide_event.e_ms_max
  | rows -> Alcotest.failf "expected 2 endpoint rows, got %d" (List.length rows));
  let slow_ids =
    List.filter_map
      (fun v ->
        match Json.member "id" v with Some (Json.Number n) -> Some (int_of_float n) | _ -> None)
      s.Wide_event.s_slowest
  in
  check (Alcotest.list Alcotest.int) "top-2 slowest, ms desc" [ 4; 5 ] slow_ids;
  (* table + json renderings agree on the headline number *)
  let rendered = Format.asprintf "%a" Wide_event.pp_summary s in
  check Alcotest.bool "table mentions the total" true
    (List.exists
       (fun line -> String.trim line <> "" && String.length line > 6)
       (String.split_on_char '\n' rendered));
  match Wide_event.summary_to_json s with
  | Json.Object fields -> (
      match List.assoc_opt "total" fields with
      | Some (Json.Number 5.0) -> ()
      | _ -> Alcotest.fail "json total mismatch")
  | _ -> Alcotest.fail "summary_to_json must be an object"

let test_summarize_determinism () =
  QCheck.Test.make ~name:"audit: summarize is permutation-invariant" ~count:50
    QCheck.(
      make
        Gen.(
          list_size (int_range 0 30)
            (triple (int_range 1 1000) (oneofl [ "query"; "load"; "metrics" ])
               (map (fun n -> float_of_int n /. 4.) (int_bound 200)))))
    (fun entries ->
      (* distinct ids keep the slowest-tiebreak deterministic; dyadic
         ms values (quarters) keep float sums order-independent *)
      let entries =
        List.mapi (fun i (_, ep, ms) -> (i + 1, ep, Float.abs ms)) entries
      in
      let events =
        List.map (fun (id, ep, ms) -> event ~id ~endpoint:ep ~ms ()) entries
      in
      let shuffled =
        List.map snd
          (List.sort compare (List.mapi (fun i e -> ((i * 7919) mod 104729, i), e) events))
      in
      Wide_event.summarize events = Wide_event.summarize shuffled)

(* ------------------------------------------------------------------ *)
(* the server's timeseries endpoint *)

let test_endpoint_unavailable () =
  let server = Srv.create () in
  match Srv.handle server (P.Timeseries { last = None; downsample = None }) with
  | P.Err e -> check Alcotest.string "typed error" "unavailable" e.P.code
  | _ -> Alcotest.fail "no sampler -> typed unavailable error"

let test_endpoint_window () =
  let server =
    Srv.create ~config:{ Srv.default_config with Srv.sample_every_s = Some 3600.0 } ()
  in
  Fun.protect ~finally:(fun () -> Srv.stop_sampler server) @@ fun () ->
  let ts = match Srv.sampler server with Some ts -> ts | None -> Alcotest.fail "no sampler" in
  (* drive the sampler by hand: deterministic, no sleeping. Requests go
     through the wire path — the dispatch counter lives there. *)
  let dispatch () =
    ignore (Srv.handle_value server (Json.Object [ ("op", Json.String "list-graphs") ]))
  in
  dispatch ();
  Timeseries.sample ts;
  dispatch ();
  dispatch ();
  Timeseries.sample ts;
  match Srv.handle server (P.Timeseries { last = Some 10; downsample = None }) with
  | P.Timeseries_dump v -> (
      match Json.member "points" v with
      | Some (Json.Array (_ :: _ as points)) ->
          let last = List.nth points (List.length points - 1) in
          let rates = match Json.member "rates" last with Some o -> o | None -> Json.Null in
          check Alcotest.bool "dispatch rate shows up" true
            (Json.member "server.dispatches" rates <> None)
      | _ -> Alcotest.fail "expected a non-empty points array")
  | P.Err e -> Alcotest.failf "unexpected error %s: %s" e.P.code e.P.message
  | _ -> Alcotest.fail "expected a timeseries dump"

let test_protocol_roundtrip () =
  List.iter
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok r -> check Alcotest.bool "decode(encode) is identity" true (r = req)
      | Error e -> Alcotest.failf "roundtrip failed: %s" e.P.message)
    [
      P.Timeseries { last = None; downsample = None };
      P.Timeseries { last = Some 60; downsample = Some 5 };
    ];
  match
    P.decode_request
      (Json.Object [ ("op", Json.String "timeseries"); ("last", Json.Number 0.0) ])
  with
  | Error e -> check Alcotest.string "last 0 refused on the wire" "bad-request" e.P.code
  | Ok _ -> Alcotest.fail "last=0 must be a wire error"

(* ------------------------------------------------------------------ *)
(* prometheus compat families *)

let test_prom_compat () =
  let h = Histogram.make "introspect.prom_ns" in
  Histogram.record h 1000;
  Histogram.record h 2000;
  let plain = Prom.render () in
  let compat = Prom.render ~compat:true () in
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  check Alcotest.bool "plain render has the histogram family" true
    (has plain "# TYPE gps_introspect_prom_ns histogram");
  check Alcotest.bool "plain render has no quantile gauges" false
    (has plain "gps_introspect_prom_ns_p50");
  check Alcotest.bool "compat adds _p50 gauge family" true
    (has compat "# TYPE gps_introspect_prom_ns_p50 gauge");
  check Alcotest.bool "compat adds _mean gauge family" true
    (has compat "# TYPE gps_introspect_prom_ns_mean gauge");
  (* lint: one TYPE line per family, even with compat on *)
  let type_lines =
    List.filter
      (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
      (String.split_on_char '\n' compat)
  in
  check Alcotest.int "no duplicate TYPE lines" (List.length type_lines)
    (List.length (List.sort_uniq compare type_lines))

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "introspection.timeseries",
      [
        Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
        Alcotest.test_case "rate math on a gated clock" `Quick test_rate_math;
        Alcotest.test_case "window selection" `Quick test_window_selection;
        Alcotest.test_case "interval histogram stats" `Quick test_hist_interval_stats;
        Alcotest.test_case "background sampler thread" `Quick test_sampler_thread;
        Alcotest.test_case "csv export" `Quick test_csv_export;
        Alcotest.test_case "creation validation" `Quick test_create_validation;
        Alcotest.test_case "concurrent record vs snapshot" `Quick
          test_concurrent_record_vs_snapshot;
      ] );
    ( "introspection.wide_events",
      [
        Alcotest.test_case "field accumulation" `Quick test_event_accumulation;
        Alcotest.test_case "monotonic ids" `Quick test_ids_monotonic;
        Alcotest.test_case "sampling determinism" `Quick test_sampling_determinism;
        Alcotest.test_case "sink emit and load" `Quick test_sink_emit_and_load;
        Alcotest.test_case "sink validation" `Quick test_sink_validation;
        Alcotest.test_case "audit summary" `Quick test_summarize;
      ] );
    ( "introspection.server",
      [
        Alcotest.test_case "endpoint without sampler" `Quick test_endpoint_unavailable;
        Alcotest.test_case "endpoint window" `Quick test_endpoint_window;
        Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "prometheus compat families" `Quick test_prom_compat;
      ] );
    ( "introspection.properties",
      List.map QCheck_alcotest.to_alcotest
        [ test_downsample_telescopes (); test_summarize_determinism () ] );
  ]
