(* Unit and property tests for the gps_graph substrate. *)

open Gps_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    check_int "push returns index" i (Vec.push v (i * 2))
  done;
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" (i * 2) (Vec.get v i)
  done

let test_vec_set () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Vec.set v 0 42;
  check_int "set" 42 (Vec.get v 0)

let test_vec_bounds () =
  let v = Vec.create () in
  Alcotest.check_raises "get on empty" (Invalid_argument "Vec: index 0 out of bounds (length 0)")
    (fun () -> ignore (Vec.get v 0))

let test_vec_fold_order () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Vec.to_list v);
  check_int "fold" 6 (Vec.fold ( + ) 0 v)

(* -------------------------------------------------------------------- *)
(* Symtab *)

let test_symtab_roundtrip () =
  let t = Symtab.create () in
  let a = Symtab.intern t "alpha" in
  let b = Symtab.intern t "beta" in
  check_int "dense ids" 0 a;
  check_int "dense ids" 1 b;
  check_int "idempotent" a (Symtab.intern t "alpha");
  Alcotest.(check string) "name" "beta" (Symtab.name t b);
  check "find hit" true (Symtab.find t "alpha" = Some 0);
  check "find miss" true (Symtab.find t "gamma" = None);
  check_int "size" 2 (Symtab.size t)

(* -------------------------------------------------------------------- *)
(* Digraph *)

let diamond () =
  (* a -x-> b, a -y-> c, b -z-> d, c -z-> d *)
  Codec.of_edges [ ("a", "x", "b"); ("a", "y", "c"); ("b", "z", "d"); ("c", "z", "d") ]

let test_digraph_basic () =
  let g = diamond () in
  check_int "nodes" 4 (Digraph.n_nodes g);
  check_int "edges" 4 (Digraph.n_edges g);
  check_int "labels" 3 (Digraph.n_labels g);
  let a = Option.get (Digraph.node_of_name g "a") in
  check_int "out degree" 2 (Digraph.out_degree g a);
  check_int "in degree" 0 (Digraph.in_degree g a);
  let d = Option.get (Digraph.node_of_name g "d") in
  check_int "in degree d" 2 (Digraph.in_degree g d)

let test_digraph_dedup () =
  let g = Digraph.create () in
  Digraph.link g "a" "x" "b";
  Digraph.link g "a" "x" "b";
  check_int "duplicate edge ignored" 1 (Digraph.n_edges g);
  Digraph.link g "a" "y" "b";
  check_int "parallel edge with new label kept" 2 (Digraph.n_edges g)

let test_digraph_succ_by_label () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let x = Option.get (Digraph.label_of_name g "x") in
  let b = Option.get (Digraph.node_of_name g "b") in
  Alcotest.(check (list int)) "succ" [ b ] (Digraph.succ_by_label g a x)

let test_digraph_copy_isolated () =
  let g = diamond () in
  let g' = Digraph.copy g in
  Digraph.link g' "a" "w" "d";
  check_int "copy edge count" 5 (Digraph.n_edges g');
  check_int "original untouched" 4 (Digraph.n_edges g)

let test_digraph_bad_node () =
  let g = diamond () in
  Alcotest.check_raises "edge to unknown node"
    (Invalid_argument "Digraph: node 99 not in graph") (fun () ->
      Digraph.add_edge g ~src:99 ~label:"x" ~dst:0)

(* -------------------------------------------------------------------- *)
(* Traverse *)

let test_distances () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let d = Option.get (Digraph.node_of_name g "d") in
  let dist = Traverse.distances g a in
  check_int "dist a" 0 dist.(a);
  check_int "dist d" 2 dist.(d);
  let dist_in = Traverse.distances g ~direction:In a in
  check "d unreachable backwards" true (dist_in.(d) = max_int)

let test_reachable_within () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  check_int "radius 1" 3 (List.length (Traverse.reachable_within g a ~radius:1));
  check_int "radius 2" 4 (List.length (Traverse.reachable_within g a ~radius:2));
  check_int "radius 0" 1 (List.length (Traverse.reachable_within g a ~radius:0))

let test_spell_word () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let word names = Option.get (Walks.word_of_names g names) in
  check "x.z spellable" true (Traverse.has_word g a (word [ "x"; "z" ]));
  check "y.z spellable" true (Traverse.has_word g a (word [ "y"; "z" ]));
  check "x.y not spellable" false (Traverse.has_word g a (word [ "x"; "y" ]));
  check "empty word always" true (Traverse.has_word g a []);
  let d = Option.get (Digraph.node_of_name g "d") in
  Alcotest.(check (list int)) "endpoint" [ d ] (Traverse.spell_word g a (word [ "x"; "z" ]))

let test_word_witness_walk () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let word names = Option.get (Walks.word_of_names g names) in
  match Traverse.word_witness_walk g a (word [ "x"; "z" ]) with
  | Some walk ->
      Alcotest.(check (list string)) "walk nodes" [ "a"; "b"; "d" ]
        (List.map (Digraph.node_name g) walk)
  | None -> Alcotest.fail "expected a witness walk"

let test_eccentricity () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  check_int "ecc" 2 (Traverse.eccentricity g a)

(* -------------------------------------------------------------------- *)
(* Walks *)

let test_words_enumeration () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let ws = Walks.words g a ~max_len:2 in
  let names = List.map (fun w -> String.concat "." (Walks.word_names g w)) ws in
  Alcotest.(check (list string)) "words of a" [ "x"; "y"; "x.z"; "y.z" ] names

let test_words_cycle_bounded () =
  let g = Codec.of_edges [ ("a", "x", "a") ] in
  let a = Option.get (Digraph.node_of_name g "a") in
  check_int "bounded enumeration on cycle" 3 (List.length (Walks.words g a ~max_len:3))

let test_count_walks () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  (* walks of length 1: x, y; length 2: x.z, y.z -> total 4 *)
  check_int "count" 4 (Walks.count_walks g a ~max_len:2);
  check_int "count 1" 2 (Walks.count_walks g a ~max_len:1)

let test_exists_word () =
  let g = diamond () in
  let a = Option.get (Digraph.node_of_name g "a") in
  let z = Option.get (Digraph.label_of_name g "z") in
  (match Walks.exists_word g a ~max_len:3 (fun w -> List.mem z w) with
  | Some w -> check_int "shortest containing z has length 2" 2 (List.length w)
  | None -> Alcotest.fail "expected a word containing z");
  check "no such word" true (Walks.exists_word g a ~max_len:9 (fun w -> List.length w > 2) = None)

(* -------------------------------------------------------------------- *)
(* Neighborhood *)

let test_neighborhood_radius () =
  let g = Datasets.figure1 () in
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  let frag2 = Neighborhood.compute g n2 ~radius:2 in
  let names frag = List.map (fun (v, _) -> Digraph.node_name g v) frag.Neighborhood.nodes in
  (* at radius 2 no cinema node is visible from N2 (paper, Fig 3a) *)
  check "no cinema at radius 2" false
    (List.exists (fun n -> n = "C1" || n = "C2") (names frag2));
  let frag3 = Neighborhood.zoom_out g frag2 in
  check "cinema visible at radius 3" true (List.exists (fun n -> n = "C1") (names frag3));
  let added_nodes, added_edges = Neighborhood.diff ~before:frag2 ~after:frag3 in
  check "zoom adds nodes" true (added_nodes <> []);
  check "zoom adds edges" true (added_edges <> [])

let test_neighborhood_frontier () =
  let g = Datasets.figure1 () in
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  let frag = Neighborhood.compute g n2 ~radius:1 in
  (* N1 has out-edges to N4 outside the radius-1 fragment *)
  let n1 = Option.get (Digraph.node_of_name g "N1") in
  check "N1 on frontier" true (List.mem n1 frag.Neighborhood.frontier);
  check "not complete" false (Neighborhood.is_complete g frag)

let test_neighborhood_complete () =
  let g = Datasets.figure1 () in
  let n5 = Option.get (Digraph.node_of_name g "N5") in
  let frag = Neighborhood.compute g n5 ~radius:3 in
  check "complete at radius 3" true (Neighborhood.is_complete g frag)

(* -------------------------------------------------------------------- *)
(* Scc *)

let test_scc_dag () =
  let g = diamond () in
  let r = Scc.compute g in
  check_int "4 sccs" 4 r.Scc.count;
  check "trivial" true (Scc.is_trivial r)

let test_scc_cycle () =
  let g = Codec.of_edges [ ("a", "x", "b"); ("b", "x", "c"); ("c", "x", "a"); ("c", "y", "d") ] in
  let r = Scc.compute g in
  check_int "2 sccs" 2 r.Scc.count;
  check_int "largest" 3 (Scc.largest r);
  let comps = Scc.components g in
  check_int "components array" 2 (Array.length comps)

(* -------------------------------------------------------------------- *)
(* Codec *)

let test_codec_roundtrip () =
  let g = Datasets.figure1 () in
  let g' = Codec.of_string (Codec.to_string g) in
  check_int "nodes preserved" (Digraph.n_nodes g) (Digraph.n_nodes g');
  check_int "edges preserved" (Digraph.n_edges g) (Digraph.n_edges g');
  Digraph.iter_edges
    (fun e ->
      let src = Option.get (Digraph.node_of_name g' (Digraph.node_name g e.Digraph.src)) in
      let dst = Option.get (Digraph.node_of_name g' (Digraph.node_name g e.Digraph.dst)) in
      let lbl = Option.get (Digraph.label_of_name g' (Digraph.label_name g e.Digraph.lbl)) in
      check "edge preserved" true (Digraph.mem_edge g' ~src ~lbl ~dst))
    g

let test_codec_isolated_node () =
  let g = Codec.of_string "node lonely\na x b\n" in
  check_int "3 nodes" 3 (Digraph.n_nodes g);
  check "lonely present" true (Digraph.node_of_name g "lonely" <> None);
  let g' = Codec.of_string (Codec.to_string g) in
  check "lonely survives roundtrip" true (Digraph.node_of_name g' "lonely" <> None)

let test_codec_comments_blank () =
  let g = Codec.of_string "# a comment\n\na x b # trailing\n" in
  check_int "1 edge" 1 (Digraph.n_edges g)

let test_codec_error () =
  (match Codec.of_string "a b" with
  | exception Codec.Parse_error (1, _) -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error");
  match Codec.of_string "ok x y\na b c d\n" with
  | exception Codec.Parse_error (2, _) -> ()
  | _ -> Alcotest.fail "expected Parse_error on line 2"

(* -------------------------------------------------------------------- *)
(* Generators *)

let test_uniform_generator () =
  let g = Generators.uniform ~nodes:50 ~edges:120 ~labels:[ "a"; "b" ] ~seed:7 in
  check_int "node count" 50 (Digraph.n_nodes g);
  check_int "edge count" 120 (Digraph.n_edges g);
  check "label subset" true
    (List.for_all (fun l -> List.mem l [ "a"; "b" ]) (Digraph.labels g))

let test_uniform_deterministic () =
  let g1 = Generators.uniform ~nodes:30 ~edges:60 ~labels:[ "a"; "b"; "c" ] ~seed:42 in
  let g2 = Generators.uniform ~nodes:30 ~edges:60 ~labels:[ "a"; "b"; "c" ] ~seed:42 in
  Alcotest.(check string) "same seed, same graph" (Codec.to_string g1) (Codec.to_string g2);
  let g3 = Generators.uniform ~nodes:30 ~edges:60 ~labels:[ "a"; "b"; "c" ] ~seed:43 in
  check "different seed, different graph" false (Codec.to_string g1 = Codec.to_string g3)

let test_preferential_skew () =
  let g = Generators.preferential ~nodes:300 ~attach:2 ~labels:[ "l" ] ~seed:5 in
  let s = Stats.compute g in
  (* preferential attachment must produce hubs far above the mean degree *)
  check "hubs exist" true (float_of_int s.Stats.max_in_degree > 4.0 *. s.Stats.avg_out_degree)

let test_city_generator () =
  let g = Generators.city (Generators.default_city ~districts:20) ~seed:11 in
  let labels = Digraph.labels g in
  List.iter
    (fun l -> check (l ^ " present") true (List.mem l labels))
    [ "tram"; "bus"; "metro"; "cinema"; "restaurant"; "museum"; "park"; "in" ];
  check "districts exist" true (Digraph.node_of_name g "D0" <> None);
  check "cinema exists" true (Digraph.node_of_name g "cinema0" <> None)

let test_bio_generator () =
  let g = Generators.bio ~nodes:100 ~seed:3 in
  let labels = Digraph.labels g in
  List.iter
    (fun l -> check (l ^ " present") true (List.mem l labels))
    [ "interacts"; "encodes"; "treats"; "binds"; "associated" ];
  check "interacts symmetric" true
    (Digraph.fold_edges
       (fun acc e ->
         acc
         &&
         if Digraph.label_name g e.Digraph.lbl = "interacts" then
           Digraph.mem_edge g ~src:e.Digraph.dst ~lbl:e.Digraph.lbl ~dst:e.Digraph.src
         else true)
       true g)

(* -------------------------------------------------------------------- *)
(* Datasets: the paper's Figure 1 *)

let test_figure1_shape () =
  let g = Datasets.figure1 () in
  check_int "10 nodes" 10 (Digraph.n_nodes g);
  List.iter
    (fun n -> check (n ^ " present") true (Digraph.node_of_name g n <> None))
    [ "N1"; "N2"; "N3"; "N4"; "N5"; "N6"; "C1"; "C2"; "R1"; "R2" ]

let test_figure1_n5_no_cinema () =
  let g = Datasets.figure1 () in
  let n5 = Option.get (Digraph.node_of_name g "N5") in
  let reach = Traverse.reachable g n5 in
  let c1 = Option.get (Digraph.node_of_name g "C1") in
  let c2 = Option.get (Digraph.node_of_name g "C2") in
  check "N5 cannot reach C1" false reach.(c1);
  check "N5 cannot reach C2" false reach.(c2)

let test_figure1_witness_paths () =
  (* the witness walks the paper lists for q *)
  let g = Datasets.figure1 () in
  let node n = Option.get (Digraph.node_of_name g n) in
  let word names = Option.get (Walks.word_of_names g names) in
  check "N1 tram.cinema" true (Traverse.has_word g (node "N1") (word [ "tram"; "cinema" ]));
  check "N2 bus.tram.cinema" true
    (Traverse.has_word g (node "N2") (word [ "bus"; "tram"; "cinema" ]));
  check "N2 bus.bus.cinema (Fig 3c candidate)" true
    (Traverse.has_word g (node "N2") (word [ "bus"; "bus"; "cinema" ]));
  check "N4 cinema" true (Traverse.has_word g (node "N4") (word [ "cinema" ]));
  check "N6 cinema" true (Traverse.has_word g (node "N6") (word [ "cinema" ]))

(* -------------------------------------------------------------------- *)
(* Stats / Dot *)

let test_stats () =
  let g = Datasets.figure1 () in
  let s = Stats.compute g in
  check_int "nodes" 10 s.Stats.n_nodes;
  check_int "edges" 10 s.Stats.n_edges;
  check_int "labels" 4 s.Stats.n_labels;
  check "histogram sums to edges" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Stats.label_histogram = s.Stats.n_edges)

(* Rank: the deterministic label/degree orderings the workload
   instantiation layer builds on. *)

let test_rank_labels () =
  let g = Digraph.create () in
  (* b carries 3 edges, a carries 3, c carries 1: ties break by name *)
  Digraph.link g "n1" "b" "n2";
  Digraph.link g "n2" "b" "n3";
  Digraph.link g "n3" "b" "n4";
  Digraph.link g "n1" "a" "n3";
  Digraph.link g "n2" "a" "n4";
  Digraph.link g "n3" "a" "n1";
  Digraph.link g "n4" "c" "n1";
  Alcotest.(check (list (pair string int)))
    "count desc, name asc on ties"
    [ ("a", 3); ("b", 3); ("c", 1) ]
    (Rank.labels_by_frequency g);
  Alcotest.(check (list string)) "top_labels truncates" [ "a"; "b" ] (Rank.top_labels 2 g);
  Alcotest.(check (list string))
    "top_labels beyond the alphabet returns all" [ "a"; "b"; "c" ] (Rank.top_labels 10 g)

let test_rank_out_degree () =
  let g = Digraph.create () in
  (* hub: 3 out; x and y: 1 out each (tie, name order); sink: 0 *)
  Digraph.link g "hub" "e" "x";
  Digraph.link g "hub" "e" "y";
  Digraph.link g "hub" "f" "sink";
  Digraph.link g "y" "e" "sink";
  Digraph.link g "x" "e" "sink";
  let names rows = List.map (fun (v, _) -> Digraph.node_name g v) rows in
  check "hub ranks first" true (names (Rank.nodes_by_out_degree g) = [ "hub"; "x"; "y"; "sink" ]);
  Alcotest.(check (list string))
    "limit keeps the true top ranks" [ "hub"; "x" ]
    (Rank.top_nodes 2 g);
  check "degrees attached" true
    (List.map snd (Rank.nodes_by_out_degree g) = [ 3; 1; 1; 0 ])

let test_rank_matches_stats () =
  let g = Generators.city (Generators.default_city ~districts:20) ~seed:3 in
  let s = Stats.compute g in
  check "stats histogram is the rank order" true
    (s.Stats.label_histogram = Rank.labels_by_frequency g)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_dot_output () =
  let g = Datasets.figure1 () in
  let dot = Dot.of_graph g in
  check "digraph header" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  check "contains an edge" true (contains ~needle:"->" dot);
  let n2 = Option.get (Digraph.node_of_name g "N2") in
  let frag = Neighborhood.compute g n2 ~radius:1 in
  let fdot = Dot.of_fragment g frag in
  check "fragment has frontier dots" true (contains ~needle:"..." fdot)

(* -------------------------------------------------------------------- *)
(* Prng *)

let test_prng_determinism () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    check "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:3 in
  let l = List.init 20 Fun.id in
  let s = Prng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

(* -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let small_graph_gen =
    Gen.(
      let* n = int_range 2 12 in
      let* m = int_range 1 30 in
      let* seed = int_range 0 10_000 in
      return (Generators.uniform ~nodes:n ~edges:m ~labels:[ "a"; "b"; "c" ] ~seed))
  in
  let arb_graph = make small_graph_gen in
  [
    Test.make ~name:"spell_word agrees with word_witness_walk" ~count:200 arb_graph (fun g ->
        let rng = Prng.create ~seed:(Digraph.n_edges g) in
        let v = Prng.int rng (Digraph.n_nodes g) in
        let ws = Walks.words g v ~max_len:3 in
        List.for_all
          (fun w ->
            Traverse.has_word g v w
            && match Traverse.word_witness_walk g v w with
               | Some walk -> List.length walk = List.length w + 1 && List.hd walk = v
               | None -> false)
          ws);
    Test.make ~name:"neighborhood nodes are within radius" ~count:200 arb_graph (fun g ->
        let frag = Neighborhood.compute g 0 ~radius:2 in
        List.for_all (fun (_, d) -> d <= 2) frag.Neighborhood.nodes
        && List.for_all
             (fun e ->
               List.mem_assoc e.Digraph.src frag.Neighborhood.nodes
               && List.mem_assoc e.Digraph.dst frag.Neighborhood.nodes)
             frag.Neighborhood.edges);
    Test.make ~name:"zoom_out is monotone" ~count:100 arb_graph (fun g ->
        let f1 = Neighborhood.compute g 0 ~radius:1 in
        let f2 = Neighborhood.zoom_out g f1 in
        List.for_all (fun (v, _) -> List.mem_assoc v f2.Neighborhood.nodes) f1.Neighborhood.nodes);
    Test.make ~name:"codec roundtrip preserves edge count" ~count:200 arb_graph (fun g ->
        let g' = Codec.of_string (Codec.to_string g) in
        Digraph.n_edges g = Digraph.n_edges g' && Digraph.n_nodes g = Digraph.n_nodes g');
    Test.make ~name:"scc component ids partition nodes" ~count:200 arb_graph (fun g ->
        let r = Scc.compute g in
        Array.for_all (fun c -> c >= 0 && c < r.Scc.count) r.Scc.component
        && Array.length r.Scc.component = Digraph.n_nodes g);
    Test.make ~name:"distances satisfy triangle step" ~count:200 arb_graph (fun g ->
        let dist = Traverse.distances g 0 in
        Digraph.fold_edges
          (fun acc e ->
            acc
            && (dist.(e.Digraph.src) = max_int || dist.(e.Digraph.dst) <= dist.(e.Digraph.src) + 1))
          true g);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "graph.vec",
      [
        t "push/get" test_vec_push_get;
        t "set" test_vec_set;
        t "bounds" test_vec_bounds;
        t "fold order" test_vec_fold_order;
      ] );
    ("graph.symtab", [ t "roundtrip" test_symtab_roundtrip ]);
    ( "graph.digraph",
      [
        t "basic" test_digraph_basic;
        t "dedup" test_digraph_dedup;
        t "succ_by_label" test_digraph_succ_by_label;
        t "copy isolation" test_digraph_copy_isolated;
        t "bad node" test_digraph_bad_node;
      ] );
    ( "graph.traverse",
      [
        t "distances" test_distances;
        t "reachable_within" test_reachable_within;
        t "spell_word" test_spell_word;
        t "word_witness_walk" test_word_witness_walk;
        t "eccentricity" test_eccentricity;
      ] );
    ( "graph.walks",
      [
        t "enumeration" test_words_enumeration;
        t "cycle bounded" test_words_cycle_bounded;
        t "count" test_count_walks;
        t "exists_word" test_exists_word;
      ] );
    ( "graph.neighborhood",
      [
        t "radius and zoom (Fig 3a/3b)" test_neighborhood_radius;
        t "frontier" test_neighborhood_frontier;
        t "complete" test_neighborhood_complete;
      ] );
    ("graph.scc", [ t "dag" test_scc_dag; t "cycle" test_scc_cycle ]);
    ( "graph.codec",
      [
        t "roundtrip" test_codec_roundtrip;
        t "isolated node" test_codec_isolated_node;
        t "comments" test_codec_comments_blank;
        t "errors" test_codec_error;
      ] );
    ( "graph.generators",
      [
        t "uniform" test_uniform_generator;
        t "deterministic" test_uniform_deterministic;
        t "preferential skew" test_preferential_skew;
        t "city" test_city_generator;
        t "bio" test_bio_generator;
      ] );
    ( "graph.figure1",
      [
        t "shape" test_figure1_shape;
        t "N5 reaches no cinema" test_figure1_n5_no_cinema;
        t "paper witness paths" test_figure1_witness_paths;
      ] );
    ("graph.stats", [ t "figure1 stats" test_stats; t "dot output" test_dot_output ]);
    ( "graph.rank",
      [
        t "labels by frequency" test_rank_labels;
        t "nodes by out-degree" test_rank_out_degree;
        t "stats histogram shares the ranking" test_rank_matches_stats;
      ] );
    ( "graph.prng",
      [
        t "determinism" test_prng_determinism;
        t "bounds" test_prng_bounds;
        t "shuffle" test_prng_shuffle_permutation;
      ] );
    ("graph.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
