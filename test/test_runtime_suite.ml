(* Tests for the runtime & scheduler observability layer: Obs.Runtime
   (GC pause histograms off the stdlib Runtime_events ring), the pool's
   per-job profiling telemetry, and the per-level efficiency section of
   Eval's explain report.

   The Runtime_events consumer tests are guarded on Runtime.start ()
   succeeding — a host without a writable ring directory degrades the
   whole feature to a no-op, and the tests degrade with it. *)

open Gps_graph
open Gps_query
module Pool = Gps_par.Pool
module Runtime = Gps_obs.Runtime
module Counter = Gps_obs.Counter
module Histogram = Gps_obs.Histogram

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q s = Rpq.of_string_exn s

(* run [f] with process-wide profiling forced to [v], restoring after *)
let with_profiling v f =
  let was = Pool.profiling () in
  Pool.set_profiling v;
  Fun.protect ~finally:(fun () -> Pool.set_profiling was) f

(* -------------------------------------------------------------------- *)
(* Obs.Runtime: the Runtime_events consumer *)

let test_forced_gc_pauses () =
  if not (Runtime.start ()) then check "ring unavailable: feature degrades to no-op" true true
  else begin
    ignore (Runtime.poll ());
    let minors0 = Counter.value (Counter.make "gc.minor_collections") in
    let pauses0 = (Runtime.gc_pause_merged "minor").Histogram.count in
    (* force a handful of real minor collections *)
    for _ = 1 to 5 do
      let junk = ref [] in
      for i = 1 to 20_000 do
        junk := (i, string_of_int i) :: !junk
      done;
      ignore (Sys.opaque_identity !junk);
      Gc.minor ()
    done;
    ignore (Runtime.poll ());
    let minors1 = Counter.value (Counter.make "gc.minor_collections") in
    let pauses1 = (Runtime.gc_pause_merged "minor").Histogram.count in
    check "minor collections counted" true (minors1 > minors0);
    check "pause samples recorded" true (pauses1 > pauses0);
    let snap = Runtime.gc_pause_merged "minor" in
    check "pause time is nonzero" true (snap.Histogram.sum > 0);
    let msum, _ = Runtime.gc_pause_ns () in
    check_int "readback agrees with merged snapshot" snap.Histogram.sum msum
  end

let test_runtime_poll_idempotent_when_quiet () =
  if not (Runtime.start ()) then check "ring unavailable" true true
  else begin
    (* drain, then poll twice without allocating: the second drain sees
       nothing new worth crashing over (events may still trickle from
       the test runner itself, so only the API contract is checked) *)
    ignore (Runtime.poll ());
    let n1 = Runtime.poll () in
    let n2 = Runtime.poll () in
    check "poll returns non-negative counts" true (n1 >= 0 && n2 >= 0);
    check "started stays true" true (Runtime.started ())
  end

(* -------------------------------------------------------------------- *)
(* Pool profiling telemetry *)

let test_pool_run_stats_basic () =
  let pool = Pool.get 2 in
  with_profiling true (fun () ->
      match Pool.run_stats pool ~chunks:16 (fun _ -> ignore (Sys.opaque_identity (Array.make 256 0))) with
      | None -> Alcotest.fail "profiling on: stats expected"
      | Some js ->
          check_int "one slot per participant" 2 (Array.length js.Pool.workers);
          let total = Array.fold_left (fun acc w -> acc + w.Pool.chunks) 0 js.Pool.workers in
          check_int "chunk accounting is exact" 16 total;
          check "wall covers the job" true (js.Pool.job_wall_ns >= 0);
          check "barrier non-negative" true (js.Pool.job_barrier_ns >= 0))

let test_pool_run_stats_off_is_none () =
  let pool = Pool.get 2 in
  with_profiling false (fun () ->
      check "profiling off: no stats" true (Pool.run_stats pool ~chunks:8 (fun _ -> ()) = None))

let qcheck_busy_within_wall =
  QCheck.Test.make ~name:"runtime: per worker, busy + wake <= job wall" ~count:50
    QCheck.(int_range 1 64)
    (fun chunks ->
      let pool = Pool.get 3 in
      with_profiling true (fun () ->
          let work = Array.make 64 0 in
          match
            Pool.run_stats pool ~chunks (fun c ->
                for i = 0 to 200 do
                  work.(c mod 64) <- work.(c mod 64) + i
                done)
          with
          | None -> false
          | Some js ->
              Array.length js.Pool.workers = 3
              && Array.fold_left (fun acc w -> acc + w.Pool.chunks) 0 js.Pool.workers = chunks
              && Array.for_all
                   (fun w -> w.Pool.busy_ns + w.Pool.wake_ns <= js.Pool.job_wall_ns)
                   js.Pool.workers))

let test_pool_concurrent_chunk_accounting () =
  (* two systhreads hammer the same pool: jobs serialize inside the
     pool, and every job's accounting must stay exact *)
  let pool = Pool.get 2 in
  with_profiling true (fun () ->
      let failures = Atomic.make 0 in
      let jobs_per_thread = 10 in
      let body () =
        for i = 1 to jobs_per_thread do
          let chunks = 1 + (i mod 7) in
          match Pool.run_stats pool ~chunks (fun _ -> ()) with
          | None -> Atomic.incr failures
          | Some js ->
              let total =
                Array.fold_left (fun acc w -> acc + w.Pool.chunks) 0 js.Pool.workers
              in
              if total <> chunks then Atomic.incr failures
        done
      in
      let t1 = Thread.create body () and t2 = Thread.create body () in
      Thread.join t1;
      Thread.join t2;
      check_int "every concurrent job accounted exactly" 0 (Atomic.get failures))

let test_pool_counters_accumulate () =
  let jobs0 = Counter.value (Counter.make "pool.jobs") in
  let chunks0 = Counter.value (Counter.make "pool.chunks") in
  let pool = Pool.get 2 in
  with_profiling true (fun () -> ignore (Pool.run_stats pool ~chunks:12 (fun _ -> ())));
  check "pool.jobs advanced" true (Counter.value (Counter.make "pool.jobs") > jobs0);
  check "pool.chunks advanced by the job" true
    (Counter.value (Counter.make "pool.chunks") >= chunks0 + 12)

(* -------------------------------------------------------------------- *)
(* Eval's per-level efficiency section *)

let eval_profiled () =
  with_profiling true (fun () ->
      let g = Datasets.figure1 () in
      let _, r = Eval.select_report ~domains:2 ~par_threshold:0 g (q "(tram+bus)*.cinema") in
      r)

let test_report_efficiency_end_to_end () =
  let r = eval_profiled () in
  check "parallel levels ran" true (r.Eval.par_levels > 0);
  check "efficiency section populated" true (r.Eval.efficiency <> []);
  check_int "one entry per parallel level" r.Eval.par_levels (List.length r.Eval.efficiency);
  List.iter
    (fun lp ->
      check "level indexed" true (lp.Eval.lp_level >= 1);
      check_int "busy per participant" 2 (Array.length lp.Eval.lp_busy_ns);
      check_int "chunks per participant" 2 (Array.length lp.Eval.lp_chunks_by);
      check_int "chunk accounting matches the job" lp.Eval.lp_chunks
        (Array.fold_left ( + ) 0 lp.Eval.lp_chunks_by);
      check "imbalance >= 1 when work ran" true
        (Eval.level_imbalance lp >= 1.0 || Array.for_all (( = ) 0) lp.Eval.lp_busy_ns);
      let bf = Eval.level_busy_frac lp in
      check "busy fraction in [0, 1]" true (bf >= 0. && bf <= 1.))
    r.Eval.efficiency;
  let text = Format.asprintf "%a" Eval.pp_report r in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  check "pp mentions the efficiency section" true (contains "parallel efficiency")

let test_report_efficiency_off_by_default () =
  with_profiling false (fun () ->
      let g = Datasets.figure1 () in
      let _, r = Eval.select_report ~domains:2 ~par_threshold:0 g (q "(tram+bus)*.cinema") in
      check "no profiling: no efficiency section" true (r.Eval.efficiency = []))

let gen_level_perf =
  let open QCheck.Gen in
  let small = int_range 0 1_000_000 in
  let arr n g = array_size (return n) g in
  int_range 1 4 >>= fun d ->
  int_range 1 9 >>= fun level ->
  int_range 0 500 >>= fun frontier ->
  int_range 0 32 >>= fun chunks ->
  small >>= fun wall ->
  small >>= fun barrier ->
  arr d small >>= fun busy ->
  arr d (int_range 0 32) >>= fun chunks_by ->
  arr d small >>= fun wake ->
  return
    {
      Eval.lp_level = level;
      lp_frontier = frontier;
      lp_chunks = chunks;
      lp_wall_ns = wall;
      lp_barrier_ns = barrier;
      lp_busy_ns = busy;
      lp_chunks_by = chunks_by;
      lp_wake_ns = wake;
    }

let qcheck_efficiency_roundtrip =
  QCheck.Test.make ~name:"runtime: efficiency section survives the report JSON codec" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) gen_level_perf))
    (fun perf ->
      let g = Datasets.figure1 () in
      let _, r = Eval.select_report g (q "bus") in
      let r = { r with Eval.efficiency = perf } in
      Eval.report_of_json (Eval.report_to_json r) = Ok r)

let test_efficiency_missing_field_decodes_empty () =
  (* payloads from servers predating the efficiency section decode to [] *)
  let r = eval_profiled () in
  let j = Eval.report_to_json r in
  let stripped =
    match j with
    | Json.Object kvs -> Json.Object (List.filter (fun (k, _) -> k <> "efficiency") kvs)
    | other -> other
  in
  match Eval.report_of_json stripped with
  | Ok r' -> check "missing efficiency decodes to []" true (r'.Eval.efficiency = [])
  | Error e -> Alcotest.fail ("stripped report must still decode: " ^ e)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "runtime.gc",
      [
        t "forced GC records pauses and counts" test_forced_gc_pauses;
        t "poll is safe when quiet" test_runtime_poll_idempotent_when_quiet;
      ] );
    ( "runtime.pool",
      [
        t "run_stats basic accounting" test_pool_run_stats_basic;
        t "profiling off returns None" test_pool_run_stats_off_is_none;
        t "concurrent jobs account exactly" test_pool_concurrent_chunk_accounting;
        t "process-wide counters accumulate" test_pool_counters_accumulate;
      ] );
    ( "runtime.efficiency",
      [
        t "end-to-end explain section" test_report_efficiency_end_to_end;
        t "off by default" test_report_efficiency_off_by_default;
        t "missing field decodes empty" test_efficiency_missing_field_decodes_empty;
      ] );
    ( "runtime.properties",
      List.map QCheck_alcotest.to_alcotest [ qcheck_busy_within_wall; qcheck_efficiency_roundtrip ]
    );
  ]
