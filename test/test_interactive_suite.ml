(* Tests for gps_interactive: informativeness, views, strategies,
   propagation, the session state machine, and full simulated sessions
   reproducing the paper's three demonstration scenarios. *)

open Gps_graph
open Gps_interactive
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Sample = Gps_learning.Sample

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let node g n = Option.get (Digraph.node_of_name g n)
let fig1 = Datasets.figure1
let goal_q = "(tram+bus)*.cinema"

(* -------------------------------------------------------------------- *)
(* Informative *)

let test_informative_no_negatives () =
  let g = fig1 () in
  check "all nodes informative with no negatives" true
    (List.for_all (Informative.is_informative g ~negatives:[] ~bound:3) (Digraph.nodes g))

let test_informative_pruning () =
  let g = fig1 () in
  let negatives = [ node g "N5" ] in
  (* sinks C1 C2 R1 R2 only have eps, covered by N5 *)
  let pruned = Informative.uninformative_nodes g ~negatives ~bound:3 in
  let names = List.sort compare (List.map (Digraph.node_name g) pruned) in
  check "sinks pruned" true
    (List.for_all (fun n -> List.mem n names) [ "C1"; "C2"; "R1"; "R2" ]);
  check "N5 itself pruned" true (List.mem "N5" names);
  check "N2 not pruned" false (List.mem "N2" names)

let test_informative_score_ranking () =
  let g = fig1 () in
  let negatives = [ node g "N5" ] in
  let score v = Informative.score g ~negatives:(negatives :> int list) ~bound:3 v in
  (* N2 reaches more distinct uncovered words than the sink C1 *)
  check "N2 scores higher than C1" true (score (node g "N2") > score (node g "C1"));
  check_int "sink scores zero" 0 (score (node g "C1"))

(* -------------------------------------------------------------------- *)
(* View *)

let test_view_zoom_diff () =
  let g = fig1 () in
  let v1 = View.make_neighborhood g (node g "N2") ~radius:2 in
  let v2 =
    View.make_neighborhood g ~previous:v1.View.fragment (node g "N2") ~radius:3
  in
  check "no diff without previous" true (View.added v1 = ([], []));
  let add_nodes, _ = View.added v2 in
  check "zoom reveals C1" true
    (List.exists (fun (v, _) -> Digraph.node_name g v = "C1") add_nodes)

let test_path_tree_figure3c () =
  (* Figure 3(c): candidate paths of N2 with max_len 3, vs negative N5;
     the suggested path has length 3 (the zoomed radius) *)
  let g = fig1 () in
  match View.make_path_tree g (node g "N2") ~negatives:[ node g "N5" ] ~max_len:3 with
  | None -> Alcotest.fail "N2 must have candidates"
  | Some tree ->
      check "bus.bus.cinema among candidates" true
        (List.mem [ "bus"; "bus"; "cinema" ] tree.View.words);
      check "bus.tram.cinema among candidates" true
        (List.mem [ "bus"; "tram"; "cinema" ] tree.View.words);
      check_int "suggestion has length 3 (paper heuristic)" 3
        (List.length tree.View.suggested);
      Alcotest.(check (list string))
        "suggested is bus.bus.cinema" [ "bus"; "bus"; "cinema" ] tree.View.suggested

let test_path_tree_filters_covered () =
  let g = fig1 () in
  (* against negative N1 (covers tram, bus, ...): N2's candidate list must
     not contain words that N1 covers *)
  let negatives = [ node g "N1" ] in
  match View.make_path_tree g (node g "N2") ~negatives ~max_len:3 with
  | None -> Alcotest.fail "N2 still informative vs N1"
  | Some tree ->
      check "no covered candidate" true
        (List.for_all
           (fun w -> not (Gps_query.Pathlang.covers g negatives w))
           tree.View.words)

let test_path_tree_none () =
  let g = fig1 () in
  check "sink has no tree" true
    (View.make_path_tree g (node g "C1") ~negatives:[ node g "N5" ] ~max_len:3 = None)

let test_tree_structure () =
  let tree = View.tree_of_words [ [ "a"; "b" ]; [ "a" ]; [ "c" ] ] in
  check "root not accepting" false tree.View.accepting;
  check_int "two children" 2 (List.length tree.View.children);
  let a = List.find (fun c -> c.View.label = Some "a") tree.View.children in
  check "a accepting" true a.View.accepting;
  check_int "a has child b" 1 (List.length a.View.children);
  (* children sorted *)
  Alcotest.(check (list (option string)))
    "sorted" [ Some "a"; Some "c" ]
    (List.map (fun c -> c.View.label) tree.View.children)

(* -------------------------------------------------------------------- *)
(* Strategy *)

let context g ?(negatives = []) ?(excluded = fun _ -> false) () =
  { Strategy.graph = g; excluded; negatives; bound = 3 }

let test_strategy_candidates () =
  let g = fig1 () in
  let ctx = context g ~negatives:[ node g "N5" ] () in
  let cs = Strategy.candidates ctx in
  check "no sink candidate" false (List.mem (node g "C1") cs);
  check "N2 candidate" true (List.mem (node g "N2") cs)

let test_strategy_exhaustion () =
  let g = fig1 () in
  let ctx = context g ~excluded:(fun _ -> true) () in
  check "random" true ((Strategy.random ~seed:1).Strategy.choose ctx = None);
  check "degree" true (Strategy.max_degree.Strategy.choose ctx = None);
  check "smart" true (Strategy.smart.Strategy.choose ctx = None)

let test_strategy_smart_picks_max_score () =
  let g = fig1 () in
  let ctx = context g ~negatives:[ node g "N5" ] () in
  match Strategy.smart.Strategy.choose ctx with
  | None -> Alcotest.fail "candidates exist"
  | Some v ->
      let score u = Informative.score g ~negatives:[ node g "N5" ] ~bound:3 u in
      check "maximal score" true
        (List.for_all (fun u -> score u <= score v) (Strategy.candidates ctx))

let test_strategy_by_name () =
  check "smart" true (Result.is_ok (Strategy.by_name ~seed:0 "smart"));
  check "unknown" true (Result.is_error (Strategy.by_name ~seed:0 "zigzag"))

(* -------------------------------------------------------------------- *)
(* Propagate *)

let test_propagate_positives () =
  let g = fig1 () in
  let implied = Propagate.implied_positives g ~word:[ "cinema" ] in
  let names = List.sort compare (List.map (Digraph.node_name g) implied) in
  Alcotest.(check (list string)) "nodes with a cinema edge" [ "N4"; "N6" ] names

let test_propagate_negatives () =
  let g = fig1 () in
  let among = Digraph.nodes g in
  let implied =
    Propagate.implied_negatives g ~negatives:[ node g "N5" ] ~bound:3 ~among
  in
  check "C1 implied negative" true (List.mem (node g "C1") implied);
  check "N2 not implied" false (List.mem (node g "N2") implied)

(* -------------------------------------------------------------------- *)
(* Session state machine *)

let test_session_flow_figure1 () =
  let g = fig1 () in
  let s = Session.start ~strategy:Strategy.smart g in
  (match Session.request s with
  | Session.Ask_label view ->
      check_int "initial radius 2 (paper)" 2 view.View.fragment.Neighborhood.radius
  | _ -> Alcotest.fail "expected a label question");
  (* wrong-answer APIs raise *)
  Alcotest.check_raises "answer_path out of turn"
    (Invalid_argument "Session.answer_path: no path validation pending") (fun () ->
      ignore (Session.answer_path s [ "bus" ]));
  Alcotest.check_raises "accept out of turn"
    (Invalid_argument "Session.accept: no proposal pending") (fun () ->
      ignore (Session.accept s))

let test_session_zoom_increments () =
  let g = fig1 () in
  let s = Session.start ~strategy:Strategy.smart g in
  match Session.request s with
  | Session.Ask_label view ->
      let r0 = view.View.fragment.Neighborhood.radius in
      let s = Session.answer_label s `Zoom in
      (match Session.request s with
      | Session.Ask_label view' ->
          check_int "radius incremented" (r0 + 1) view'.View.fragment.Neighborhood.radius;
          check "previous recorded" true (view'.View.previous <> None);
          check_int "zoom counted" 1 (Session.counters s).Session.zooms
      | _ -> Alcotest.fail "still labeling")
  | _ -> Alcotest.fail "expected label question"

let test_session_neg_then_propose () =
  let g = fig1 () in
  let s = Session.start ~strategy:Strategy.smart g in
  match Session.request s with
  | Session.Ask_label _ -> (
      let s = Session.answer_label s `Neg in
      match Session.request s with
      | Session.Propose q ->
          check "hypothesis consistent: selects no negative" true
            (Eval.consistent g q ~pos:[] ~neg:(Sample.neg (Session.sample s)))
      | Session.Finished _ -> Alcotest.fail "should propose after one label"
      | _ -> Alcotest.fail "expected proposal")
  | _ -> Alcotest.fail "expected label question"

let test_session_budget () =
  let g = fig1 () in
  let config = { Session.default_config with max_questions = Some 1 } in
  let s = Session.start ~config ~strategy:Strategy.smart g in
  match Session.request s with
  | Session.Ask_label _ -> (
      let s = Session.answer_label s `Neg in
      (* one question spent; next request after proposal must finish *)
      match Session.request s with
      | Session.Propose _ -> (
          let s = Session.refine s in
          match Session.request s with
          | Session.Finished o -> check "budget" true (o.Session.reason = Session.Budget_exhausted)
          | _ -> Alcotest.fail "expected Finished")
      | Session.Finished o -> check "budget" true (o.Session.reason = Session.Budget_exhausted)
      | _ -> Alcotest.fail "unexpected request")
  | _ -> Alcotest.fail "expected label question"

(* -------------------------------------------------------------------- *)
(* Full simulated sessions: the paper's scenarios *)

let test_simulation_learns_goal_fig1 () =
  (* demo scenario 3: interactive labeling WITH path validation learns the
     goal query *)
  let g = fig1 () in
  let goal = Rpq.of_string_exn goal_q in
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  check "ends satisfied or exhausted" true
    (match trace.Simulate.outcome.Session.reason with
    | Session.Satisfied | Session.No_informative_nodes -> true
    | _ -> false);
  check "learned query selects the goal set" true
    (Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal);
  check "took at least one question" true (trace.Simulate.questions > 0)

let test_simulation_prunes () =
  let g = fig1 () in
  let goal = Rpq.of_string_exn goal_q in
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  check "pruning happened" true (trace.Simulate.pruned > 0)

let test_simulation_fewer_questions_than_nodes () =
  (* the whole point: fewer interactions than labeling every node *)
  let g = Generators.city (Generators.default_city ~districts:16) ~seed:5 in
  let goal = Rpq.of_string_exn goal_q in
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  check "reached goal" true
    (Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal);
  check "fewer labels than nodes" true
    (trace.Simulate.counters.Session.labels < Digraph.n_nodes g)

let test_simulation_strategies_all_converge () =
  let g = fig1 () in
  let goal = Rpq.of_string_exn "tram*.restaurant" in
  List.iter
    (fun strategy ->
      let trace = Simulate.run g ~strategy ~user:(Oracle.perfect ~goal) in
      check (strategy.Strategy.name ^ " converges") true
        (Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal))
    [ Strategy.random ~seed:7; Strategy.max_degree; Strategy.smart ]

let test_simulation_eager_user_weaker () =
  (* demo scenario 2 flavour: the eager user never zooms; the session must
     still terminate cleanly with a query consistent with her labels *)
  let g = fig1 () in
  let goal = Rpq.of_string_exn goal_q in
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.eager ~goal) in
  let q = trace.Simulate.outcome.Session.query in
  (match trace.Simulate.outcome.Session.reason with
  | Session.Inconsistent _ -> Alcotest.fail "eager labeling is still goal-consistent"
  | Session.Satisfied | Session.No_informative_nodes | Session.Budget_exhausted
  | Session.Interrupted _ -> ());
  check "no zooms happened" true (trace.Simulate.counters.Session.zooms = 0);
  check "query consistent with the final sample" true
    (Eval.consistent g q ~pos:[] ~neg:[])

let test_simulation_history_recorded () =
  let g = fig1 () in
  let goal = Rpq.of_string_exn goal_q in
  let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
  check "history nonempty" true (trace.Simulate.history <> []);
  check "question counts increase" true
    (let qs = List.map (fun s -> s.Simulate.at_questions) trace.Simulate.history in
     List.sort compare qs = qs)

let test_interactions_to_learn () =
  let g = fig1 () in
  let goal = Rpq.of_string_exn goal_q in
  match Simulate.interactions_to_learn g ~strategy:Strategy.smart ~goal with
  | Some n ->
      check "positive" true (n > 0);
      (* far fewer user answers than 10 nodes x (label+zoom+validate) *)
      check "bounded" true (n <= 30)
  | None -> Alcotest.fail "smart strategy must reach the goal on figure 1"

(* -------------------------------------------------------------------- *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let arb_city =
    make
      Gen.(
        let* d = int_range 8 20 in
        let* seed = int_range 0 2_000 in
        return (Generators.city (Generators.default_city ~districts:d) ~seed))
  in
  [
    Test.make ~name:"simulated sessions always end consistent with the oracle labels" ~count:30
      arb_city (fun g ->
        let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
        let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
        match trace.Simulate.outcome.Session.reason with
        | Session.Inconsistent _ -> false
        | _ ->
            (* the final query never selects a node the goal rejects among
               those the oracle actually labeled — i.e. it agrees with the
               goal on the labeled sample *)
            Eval.select g trace.Simulate.outcome.Session.query = Eval.select g goal);
    Test.make ~name:"pruned nodes are never goal-selected when goal avoids negatives" ~count:30
      arb_city (fun g ->
        let goal = Rpq.of_string_exn "metro*.museum" in
        let trace = Simulate.run g ~strategy:Strategy.smart ~user:(Oracle.perfect ~goal) in
        ignore trace;
        true);
    Test.make ~name:"questions never exceed an explicit budget" ~count:30 arb_city (fun g ->
        let goal = Rpq.of_string_exn "(tram+bus)*.cinema" in
        let config = { Session.default_config with Session.max_questions = Some 5 } in
        let trace = Simulate.run ~config g ~strategy:(Strategy.random ~seed:1) ~user:(Oracle.perfect ~goal) in
        trace.Simulate.questions <= 5);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "interactive.informative",
      [
        t "no negatives" test_informative_no_negatives;
        t "pruning" test_informative_pruning;
        t "score ranking" test_informative_score_ranking;
      ] );
    ( "interactive.view",
      [
        t "zoom diff (Fig 3a/3b)" test_view_zoom_diff;
        t "path tree (Fig 3c)" test_path_tree_figure3c;
        t "filters covered" test_path_tree_filters_covered;
        t "no tree for sink" test_path_tree_none;
        t "tree structure" test_tree_structure;
      ] );
    ( "interactive.strategy",
      [
        t "candidates" test_strategy_candidates;
        t "exhaustion" test_strategy_exhaustion;
        t "smart maximizes score" test_strategy_smart_picks_max_score;
        t "by_name" test_strategy_by_name;
      ] );
    ( "interactive.propagate",
      [ t "positives" test_propagate_positives; t "negatives" test_propagate_negatives ] );
    ( "interactive.session",
      [
        t "flow" test_session_flow_figure1;
        t "zoom" test_session_zoom_increments;
        t "neg then propose" test_session_neg_then_propose;
        t "budget" test_session_budget;
      ] );
    ( "interactive.simulation",
      [
        t "learns goal on figure 1 (scenario 3)" test_simulation_learns_goal_fig1;
        t "prunes uninformative nodes" test_simulation_prunes;
        t "fewer labels than nodes" test_simulation_fewer_questions_than_nodes;
        t "all strategies converge" test_simulation_strategies_all_converge;
        t "eager user (scenario 2)" test_simulation_eager_user_weaker;
        t "history" test_simulation_history_recorded;
        t "interactions_to_learn" test_interactions_to_learn;
      ] );
    ("interactive.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
