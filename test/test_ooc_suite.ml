(* Out-of-core graphs: the packed binary CSR file ({!Gps_graph.Disk_csr}),
   its delta overlay, the backing-generic evaluation path, label-aware
   result-cache invalidation, the server's load_file/add_edges ops, and
   the compacted store's binary snapshot. *)

module Digraph = Gps_graph.Digraph
module Disk = Gps_graph.Disk_csr
module Store = Gps_graph.Store
module Generators = Gps_graph.Generators
module Eval = Gps_query.Eval
module Incremental = Gps_query.Incremental
module P = Gps_server.Protocol
module Srv = Gps_server.Server
module Qcache = Gps_server.Qcache
module Catalog = Gps_server.Catalog

let check = Alcotest.check

let parse q =
  match Gps_query.Rpq.of_string q with Ok q -> q | Error m -> Alcotest.failf "parse: %s" m

let temp_csr () = Filename.temp_file "gps_ooc" ".csr"

let cleanup path = try Sys.remove path with Sys_error _ -> ()

let open_ok path =
  match Disk.open_map path with
  | Ok d -> d
  | Error e -> Alcotest.failf "open_map %s: %s" path (Disk.open_error_to_string e)

let with_packed g f =
  let path = temp_csr () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph g ~path;
      f path (open_ok path))

let city ?(districts = 12) ?(seed = 7) () =
  Generators.city (Generators.default_city ~districts) ~seed

(* sorted (label-name, node-name) out/in adjacency of one node, from
   either backing — the canonical comparison form *)
let heap_adj g dir v =
  List.sort compare
    (List.map
       (fun (l, w) -> (Digraph.label_name g l, Digraph.node_name g w))
       (match dir with `Out -> Digraph.out_edges g v | `In -> Digraph.in_edges g v))

let disk_adj view dir v =
  let acc = ref [] in
  (match dir with
  | `Out -> Disk.iter_out view v (fun l w -> acc := (Disk.label_name view l, Disk.node_name view w) :: !acc)
  | `In -> Disk.iter_in view v (fun l w -> acc := (Disk.label_name view l, Disk.node_name view w) :: !acc));
  List.sort compare !acc

let check_graph_equals g view =
  check Alcotest.int "nodes" (Digraph.n_nodes g) (Disk.n_nodes view);
  check Alcotest.int "edges" (Digraph.n_edges g) (Disk.n_edges view);
  check Alcotest.int "labels" (Digraph.n_labels g) (Disk.n_labels view);
  for v = 0 to Digraph.n_nodes g - 1 do
    check Alcotest.string "node name" (Digraph.node_name g v) (Disk.node_name view v);
    check
      Alcotest.(list (pair string string))
      "out adjacency" (heap_adj g `Out v) (disk_adj view `Out v);
    check
      Alcotest.(list (pair string string))
      "in adjacency" (heap_adj g `In v) (disk_adj view `In v)
  done

(* ------------------------------------------------------------------ *)
(* pack → open round-trips *)

let test_roundtrip_city () =
  let g = city () in
  with_packed g (fun _path d ->
      check Alcotest.int "base nodes" (Digraph.n_nodes g) (Disk.base_nodes d);
      check Alcotest.int "base edges" (Digraph.n_edges g) (Disk.base_edges d);
      check_graph_equals g (Disk.snapshot d);
      (* label table survives with ids intact *)
      let v = Disk.snapshot d in
      for l = 0 to Digraph.n_labels g - 1 do
        check Alcotest.string "label name" (Digraph.label_name g l) (Disk.label_name v l);
        check
          Alcotest.(option int)
          "label id" (Some l)
          (Disk.label_of_name v (Digraph.label_name g l))
      done)

let test_to_digraph_roundtrip () =
  let g = city ~districts:8 ~seed:3 () in
  with_packed g (fun _path d ->
      let g' = Disk.to_digraph (Disk.snapshot d) in
      check Alcotest.int "nodes" (Digraph.n_nodes g) (Digraph.n_nodes g');
      check Alcotest.int "edges" (Digraph.n_edges g) (Digraph.n_edges g');
      for v = 0 to Digraph.n_nodes g - 1 do
        check Alcotest.string "name" (Digraph.node_name g v) (Digraph.node_name g' v);
        check
          Alcotest.(list (pair string string))
          "adjacency" (heap_adj g `Out v) (heap_adj g' `Out v)
      done)

(* random graphs: duplicate edges, isolated nodes, odd names *)
let gen_graph =
  QCheck.Gen.(
    let* n = int_range 1 24 in
    let* m = int_bound 60 in
    let* edges =
      list_repeat m (triple (int_bound (n - 1)) (oneofl [ "a"; "b"; "c"; "lbl d" ]) (int_bound (n - 1)))
    in
    return (n, edges))

let arb_graph =
  QCheck.make
    ~print:(fun (n, es) -> Printf.sprintf "%d nodes, %d edge adds" n (List.length es))
    gen_graph

let build (n, edges) =
  let g = Digraph.create () in
  for i = 0 to n - 1 do
    ignore (Digraph.add_node g (Printf.sprintf "node %d" i))
  done;
  List.iter
    (fun (s, l, d) ->
      Digraph.link g (Printf.sprintf "node %d" s) l (Printf.sprintf "node %d" d))
    edges;
  g

let qcheck_roundtrip =
  QCheck.Test.make ~name:"disk_csr: pack → open_map preserves adjacency" ~count:60 arb_graph
    (fun spec ->
      let g = build spec in
      let path = temp_csr () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Disk.pack_digraph g ~path;
          let v = Disk.snapshot (open_ok path) in
          Digraph.n_nodes g = Disk.n_nodes v
          && Digraph.n_edges g = Disk.n_edges v
          && Digraph.n_labels g = Disk.n_labels v
          && List.for_all
               (fun u ->
                 heap_adj g `Out u = disk_adj v `Out u && heap_adj g `In u = disk_adj v `In u)
               (Digraph.nodes g)))

(* ------------------------------------------------------------------ *)
(* typed open errors *)

let test_open_errors () =
  (match Disk.open_map "/nonexistent/gps/file.csr" with
  | Error (Disk.No_such_file _) -> ()
  | _ -> Alcotest.fail "want No_such_file");
  (match Disk.open_map (Filename.get_temp_dir_name ()) with
  | Error (Disk.Not_regular _) -> ()
  | _ -> Alcotest.fail "want Not_regular");
  let g = city ~districts:4 () in
  let path = temp_csr () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph g ~path;
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      (* truncated: half the file *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 (String.length bytes / 2)));
      (match Disk.open_map path with
      | Error (Disk.Truncated { expected; actual }) ->
          check Alcotest.bool "expected > actual" true (expected > actual)
      | Error e -> Alcotest.failf "want Truncated, got %s" (Disk.open_error_to_string e)
      | Ok _ -> Alcotest.fail "want Truncated");
      (* wrong version: patch header word 1 to 99 *)
      let patched = Bytes.of_string bytes in
      Bytes.set_int64_le patched 8 99L;
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc patched);
      (match Disk.open_map path with
      | Error (Disk.Bad_version 99) -> ()
      | Error e -> Alcotest.failf "want Bad_version 99, got %s" (Disk.open_error_to_string e)
      | Ok _ -> Alcotest.fail "want Bad_version");
      (* bad magic: stamp over the first 8 bytes *)
      let patched = Bytes.of_string bytes in
      Bytes.blit_string "NOTAGRPH" 0 patched 0 8;
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc patched);
      match Disk.open_map path with
      | Error Disk.Bad_magic -> ()
      | Error e -> Alcotest.failf "want Bad_magic, got %s" (Disk.open_error_to_string e)
      | Ok _ -> Alcotest.fail "want Bad_magic")

(* ------------------------------------------------------------------ *)
(* overlay semantics *)

let test_overlay () =
  let g = city ~districts:4 () in
  with_packed g (fun _path d ->
      let base_n = Disk.base_nodes d in
      (* re-adding a base edge is a no-op *)
      let e = List.hd (Digraph.edges g) in
      let src = Digraph.node_name g e.Digraph.src
      and lbl = Digraph.label_name g e.Digraph.lbl
      and dst = Digraph.node_name g e.Digraph.dst in
      let delta = Disk.add_edges d [ (src, lbl, dst) ] in
      check Alcotest.int "base dup skipped" 0 delta.Disk.added;
      check Alcotest.int "no new nodes" 0 delta.Disk.new_nodes;
      check Alcotest.int "overlay empty" 0 (Disk.overlay_edges d);
      (* fresh edges intern new nodes and labels past the base ids *)
      let delta =
        Disk.add_edges d
          [
            ("ghost1", "zipline", "ghost2");
            ("ghost2", "zipline", src);
            ("ghost1", "zipline", "ghost2") (* in-batch duplicate *);
          ]
      in
      check Alcotest.int "added" 2 delta.Disk.added;
      check Alcotest.int "new nodes" 2 delta.Disk.new_nodes;
      check Alcotest.(list string) "delta labels" [ "zipline" ] delta.Disk.labels;
      check Alcotest.int "overlay edges" 2 (Disk.overlay_edges d);
      (* overlay-edge duplicate across batches is also a no-op *)
      let delta = Disk.add_edges d [ ("ghost2", "zipline", src) ] in
      check Alcotest.int "overlay dup skipped" 0 delta.Disk.added;
      let v = Disk.snapshot d in
      check Alcotest.int "view nodes" (base_n + 2) (Disk.n_nodes v);
      check Alcotest.string "new node name" "ghost1" (Disk.node_name v base_n);
      check Alcotest.bool "new label resolvable" true (Disk.label_of_name v "zipline" <> None);
      (* materialized graph sees base + overlay *)
      let g' = Disk.to_digraph v in
      check Alcotest.int "materialized edges" (Digraph.n_edges g + 2) (Digraph.n_edges g'))

(* ------------------------------------------------------------------ *)
(* evaluation equivalence: heap vs mapped vs mapped+overlay *)

let queries =
  [ "(tram+bus)*.cinema"; "metro.metro*"; "bus"; "in~.tram"; "(tram+metro)*.museum" ]

let test_eval_equivalence () =
  let g = city ~districts:10 ~seed:11 () in
  with_packed g (fun _path d ->
      (* base: empty overlay takes the flat Base_kernel path *)
      List.iter
        (fun qs ->
          let q = parse qs in
          let heap = Eval.select g q in
          let mapped = Eval.select_mapped (Disk.snapshot d) q in
          check Alcotest.(array bool) (qs ^ " base") heap mapped)
        queries;
      (* overlay: new edges, a new node, a new label *)
      ignore
        (Disk.add_edges d
           [
             ("hub", "tram", "D0"); ("D1", "tram", "hub"); ("hub", "funicular", "D2");
           ]);
      let v = Disk.snapshot d in
      let g' = Disk.to_digraph v in
      List.iter
        (fun qs ->
          let q = parse qs in
          let heap = Eval.select g' q in
          let mapped = Eval.select_mapped v q in
          check Alcotest.(array bool) (qs ^ " overlay") heap mapped)
        ("funicular.(tram+bus)*" :: queries);
      (* report-producing generic entry point agrees too *)
      let q = parse "(tram+bus)*.cinema" in
      match Eval.select_source_report_result (Eval.Mapped v) q with
      | Ok (sel, report) ->
          check Alcotest.(array bool) "source report sel" (Eval.select g' q) sel;
          check Alcotest.int "report nodes" (Digraph.n_nodes g') report.Eval.graph_nodes
      | Error _ -> Alcotest.fail "unexpected interrupt")

let test_incremental_agrees_over_overlay () =
  let g = city ~districts:6 ~seed:5 () in
  let q = parse "(tram+bus)*.cinema" in
  with_packed g (fun _path d ->
      let live = Disk.to_digraph (Disk.snapshot d) in
      let inc = Incremental.create live q in
      let overlay_edges =
        [ ("hub", "tram", "D0"); ("D1", "bus", "hub"); ("hub", "bus", "cinema0") ]
      in
      List.iter
        (fun (s, l, t) ->
          (* mirror each ingest into the disk overlay and the live graph *)
          ignore (Disk.add_edges d [ (s, l, t) ]);
          Digraph.link live s l t;
          let src = Option.get (Digraph.node_of_name live s) in
          let dst = Option.get (Digraph.node_of_name live t) in
          Incremental.add_edge inc ~src ~label:l ~dst)
        overlay_edges;
      check Alcotest.bool "agrees with scratch" true (Incremental.agrees_with_scratch inc);
      let mapped = Eval.select_mapped (Disk.snapshot d) q in
      check Alcotest.(array bool) "incremental = mapped overlay" (Incremental.select inc) mapped)

(* ------------------------------------------------------------------ *)
(* streaming pack (no heap graph) *)

let test_pack_uniform_deterministic () =
  let p1 = temp_csr () and p2 = temp_csr () in
  Fun.protect
    ~finally:(fun () ->
      cleanup p1;
      cleanup p2)
    (fun () ->
      let pack path =
        Generators.pack_uniform ~path ~nodes:500 ~edges:2000 ~labels:[ "a"; "b"; "c" ] ~seed:9
      in
      pack p1;
      pack p2;
      let b1 = In_channel.with_open_bin p1 In_channel.input_all in
      let b2 = In_channel.with_open_bin p2 In_channel.input_all in
      check Alcotest.bool "byte-identical" true (String.equal b1 b2);
      let d = open_ok p1 in
      check Alcotest.int "nodes" 500 (Disk.base_nodes d);
      check Alcotest.int "edges" 2000 (Disk.base_edges d);
      check Alcotest.int "labels" 3 (Disk.base_labels d);
      (* the packed stream evaluates like its materialization *)
      let v = Disk.snapshot d in
      let g = Disk.to_digraph v in
      let q = parse "a.b*" in
      check Alcotest.(array bool) "eval" (Eval.select g q) (Eval.select_mapped v q))

(* ------------------------------------------------------------------ *)
(* qcache: label-aware delta invalidation *)

let test_qcache_delta () =
  let c = Qcache.create () in
  let k q = { Qcache.graph = "g"; version = 1; query = q } in
  Qcache.add c ~labels:[ "bus"; "tram" ] ~nullable:false (k "tram.bus") [ "1" ];
  Qcache.add c ~labels:[ "metro" ] ~nullable:false (k "metro") [ "2" ];
  Qcache.add c ~labels:[ "metro" ] ~nullable:true (k "metro*") [ "3" ];
  Qcache.add c (k "opaque") [ "4" ];
  Qcache.add c ~labels:[ "tram" ] ~nullable:false { Qcache.graph = "other"; version = 1; query = "tram" } [ "5" ];
  (* a tram delta with no new nodes: the tram query and the
     unknown-alphabet entry drop; both metro entries survive *)
  let n = Qcache.invalidate_delta c ~graph:"g" ~labels:[ "tram" ] ~new_nodes:0 in
  check Alcotest.int "tram delta drops" 2 n;
  check Alcotest.(option (list string)) "metro survives" (Some [ "2" ]) (Qcache.find c (k "metro"));
  check Alcotest.(option (list string)) "metro* survives" (Some [ "3" ]) (Qcache.find c (k "metro*"));
  check
    Alcotest.(option (list string))
    "other graph untouched" (Some [ "5" ])
    (Qcache.find c { Qcache.graph = "other"; version = 1; query = "tram" });
  (* a disjoint-label delta that interns new nodes: only nullable
     entries can change (every node ε-selects itself) *)
  let n = Qcache.invalidate_delta c ~graph:"g" ~labels:[ "funicular" ] ~new_nodes:2 in
  check Alcotest.int "new-node delta drops nullable" 1 n;
  check Alcotest.(option (list string)) "metro still cached" (Some [ "2" ]) (Qcache.find c (k "metro"));
  check Alcotest.(option (list string)) "metro* dropped" None (Qcache.find c (k "metro*"));
  let s = Qcache.stats c in
  check Alcotest.int "delta_invalidations total" 3 s.Qcache.delta_invalidations;
  check Alcotest.int "plain invalidations untouched" 0 s.Qcache.invalidations

(* ------------------------------------------------------------------ *)
(* catalog: file backing *)

let test_catalog_file_backing () =
  let g = city ~districts:4 () in
  let path = temp_csr () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph g ~path;
      let c = Catalog.create () in
      let heap_entry = Catalog.put c ~name:"h" (city ~districts:3 ()) in
      check Alcotest.bool "heap not file_backed" false (Catalog.file_backed heap_entry);
      (match Catalog.add_edges heap_entry [ ("a", "x", "b") ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "heap add_edges must be refused");
      let e =
        match Catalog.put_file c ~name:"f" path with
        | Ok e -> e
        | Error err -> Alcotest.failf "put_file: %s" (Disk.open_error_to_string err)
      in
      check Alcotest.bool "file_backed" true (Catalog.file_backed e);
      check Alcotest.int "nodes" (Digraph.n_nodes g) (Catalog.n_nodes e);
      check Alcotest.int "edges" (Digraph.n_edges g) (Catalog.n_edges e);
      check Alcotest.bool "knows tram" true (Catalog.known_label e "tram");
      check Alcotest.bool "no zipline yet" false (Catalog.known_label e "zipline");
      (* lazy materialization memoizes until the overlay grows *)
      let g1 = Catalog.graph e in
      check Alcotest.bool "memoized" true (Catalog.graph e == g1);
      (match Catalog.add_edges e [ ("ghost", "zipline", "D0") ] with
      | Ok delta -> check Alcotest.int "added" 1 delta.Disk.added
      | Error m -> Alcotest.failf "add_edges: %s" m);
      check Alcotest.bool "zipline known after ingest" true (Catalog.known_label e "zipline");
      let g2 = Catalog.graph e in
      check Alcotest.bool "re-materialized" true (g1 != g2);
      check Alcotest.int "overlay edge visible" (Digraph.n_edges g1 + 1) (Digraph.n_edges g2);
      check Alcotest.int "overlay_edges" 1 (Catalog.overlay_edges e);
      (* reload bumps version, same as heap entries *)
      match Catalog.put_file c ~name:"f" path with
      | Ok e2 -> check Alcotest.int "version bump" 2 e2.Catalog.version
      | Error err -> Alcotest.failf "put_file 2: %s" (Disk.open_error_to_string err))

(* ------------------------------------------------------------------ *)
(* server: load_file / add_edges end to end *)

let expect_answer = function
  | P.Answer { nodes; cache; _ } -> (nodes, cache)
  | r -> Alcotest.failf "expected answer, got %s" (P.response_to_string r)

let expect_err code = function
  | P.Err e -> check Alcotest.string "error code" code e.P.code
  | r -> Alcotest.failf "expected %s error, got %s" code (P.response_to_string r)

let test_server_ooc () =
  let g = city ~districts:6 ~seed:13 () in
  let path = temp_csr () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Disk.pack_digraph g ~path;
      let t = Srv.create () in
      (* the same graph twice: heap-parsed and mmapped *)
      (match
         Srv.handle t
           (P.Load { name = "heap"; source = P.Text (Gps_graph.Codec.to_string g) })
       with
      | P.Loaded _ -> ()
      | r -> Alcotest.failf "heap load failed: %s" (P.response_to_string r));
      (match Srv.handle t (P.Load_file { name = "disk"; path }) with
      | P.Loaded { nodes; edges; _ } ->
          check Alcotest.int "loaded nodes" (Digraph.n_nodes g) nodes;
          check Alcotest.int "loaded edges" (Digraph.n_edges g) edges
      | r -> Alcotest.failf "load_file failed: %s" (P.response_to_string r));
      (* byte-identical answers across backings *)
      List.iter
        (fun qs ->
          let ask graph =
            expect_answer
              (Srv.handle t (P.Query { graph; query = qs; explain = false; deadline_ms = None }))
          in
          let h, _ = ask "heap" and d, _ = ask "disk" in
          check Alcotest.(list string) (qs ^ " same answer") h d)
        queries;
      (* stats agree without materializing *)
      (match Srv.handle t (P.Stats { graph = "disk" }) with
      | P.Stats_of { nodes; edges; labels; _ } ->
          check Alcotest.int "stats nodes" (Digraph.n_nodes g) nodes;
          check Alcotest.int "stats edges" (Digraph.n_edges g) edges;
          check Alcotest.(list string) "stats labels" (List.sort compare (Digraph.labels g)) labels
      | r -> Alcotest.failf "stats failed: %s" (P.response_to_string r));
      (* warm two cache entries with disjoint alphabets *)
      let q_metro = "metro.metro" (* not nullable, no tram *) in
      let q_tram = "(tram+bus)*.cinema" in
      let ask q =
        expect_answer
          (Srv.handle t (P.Query { graph = "disk"; query = q; explain = false; deadline_ms = None }))
      in
      ignore (ask q_metro);
      ignore (ask q_tram);
      check Alcotest.bool "metro warmed" true (snd (ask q_metro) = `Hit);
      check Alcotest.bool "tram warmed" true (snd (ask q_tram) = `Hit);
      (* a tram ingest drops exactly the tram-mentioning entries: of the
         seven warmed for "disk" (the five shared queries plus the two
         above, with q_tram deduping against the shared list), the three
         whose alphabet meets {tram} go; nothing is nullable, so the new
         node costs nothing extra *)
      (match
         Srv.handle t
           (P.Add_edges { graph = "disk"; edges = [ ("hub", "tram", "D0"); ("D1", "tram", "hub") ] })
       with
      | P.Edges_added { added; new_nodes; overlay_edges; invalidated; _ } ->
          check Alcotest.int "added" 2 added;
          check Alcotest.int "new nodes" 1 new_nodes;
          check Alcotest.int "overlay" 2 overlay_edges;
          check Alcotest.int "invalidated tram entries" 3 invalidated
      | r -> Alcotest.failf "add_edges failed: %s" (P.response_to_string r));
      check Alcotest.bool "metro stayed warm" true (snd (ask q_metro) = `Hit);
      check Alcotest.bool "tram re-evaluates" true (snd (ask q_tram) = `Miss);
      (* the re-evaluated answer matches a from-scratch heap evaluation
         of base + overlay *)
      let g' = Digraph.copy g in
      Digraph.link g' "hub" "tram" "D0";
      Digraph.link g' "D1" "tram" "hub";
      let sel = Eval.select g' (parse q_tram) in
      let expect =
        List.sort compare
          (List.filter_map
             (fun v -> if sel.(v) then Some (Digraph.node_name g' v) else None)
             (Digraph.nodes g'))
      in
      check Alcotest.(list string) "overlay answer correct" expect (fst (ask q_tram));
      (* error paths: heap graphs refuse ingest; junk files are typed *)
      expect_err "bad-state"
        (Srv.handle t (P.Add_edges { graph = "heap"; edges = [ ("a", "x", "b") ] }));
      expect_err "io" (Srv.handle t (P.Load_file { name = "nope"; path = "/nonexistent.csr" }));
      let junk = Filename.temp_file "gps_ooc_junk" ".csr" in
      Fun.protect
        ~finally:(fun () -> cleanup junk)
        (fun () ->
          Out_channel.with_open_bin junk (fun oc ->
              Out_channel.output_string oc "this is not a packed graph at all, not even close");
          expect_err "bad-file" (Srv.handle t (P.Load_file { name = "junk"; path = junk }))))

(* ------------------------------------------------------------------ *)
(* store: compaction emits the binary snapshot *)

let test_store_compact_snapshot () =
  let path = Filename.temp_file "gps_ooc_store" ".log" in
  let csr = path ^ ".csr" in
  Fun.protect
    ~finally:(fun () ->
      cleanup path;
      cleanup csr)
    (fun () ->
      let s = Store.openfile path in
      Store.link s "a" "x" "b";
      Store.link s "b" "x" "c";
      Store.link s "c" "y" "a";
      ignore (Store.add_node s "lonely");
      Store.compact s;
      check Alcotest.bool "snapshot emitted" true (Sys.file_exists csr);
      (* the log restarts empty (just the WAL magic) and carries only the tail *)
      check Alcotest.int "log truncated"
        (String.length Gps_graph.Wal.magic)
        (In_channel.with_open_bin path (fun ic -> In_channel.length ic) |> Int64.to_int);
      Store.link s "c" "z" "d";
      Store.close s;
      let tail = In_channel.with_open_bin path In_channel.input_all in
      check Alcotest.bool "tail is short" true (String.length tail < 64);
      (* restart = mmap + tail replay *)
      let s2 = Store.openfile path in
      let g = Store.graph s2 in
      check Alcotest.int "all edges back" 4 (Digraph.n_edges g);
      check Alcotest.int "all nodes back" 5 (Digraph.n_nodes g);
      check Alcotest.bool "lonely survived" true (Digraph.node_of_name g "lonely" <> None);
      Store.close s2;
      (* the snapshot itself is a valid packed graph *)
      let d = open_ok csr in
      check Alcotest.int "snapshot edges" 3 (Disk.base_edges d))

let suite =
  [
    ( "ooc.disk_csr",
      [
        Alcotest.test_case "city round-trip" `Quick test_roundtrip_city;
        Alcotest.test_case "to_digraph round-trip" `Quick test_to_digraph_roundtrip;
        Alcotest.test_case "typed open errors" `Quick test_open_errors;
        Alcotest.test_case "delta overlay semantics" `Quick test_overlay;
        Alcotest.test_case "streamed pack is deterministic" `Quick
          test_pack_uniform_deterministic;
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
      ] );
    ( "ooc.eval",
      [
        Alcotest.test_case "heap = mapped = mapped+overlay" `Quick test_eval_equivalence;
        Alcotest.test_case "incremental agrees over overlay" `Quick
          test_incremental_agrees_over_overlay;
      ] );
    ( "ooc.server",
      [
        Alcotest.test_case "qcache label-aware delta invalidation" `Quick test_qcache_delta;
        Alcotest.test_case "catalog file backing" `Quick test_catalog_file_backing;
        Alcotest.test_case "load_file / add_edges end to end" `Quick test_server_ooc;
        Alcotest.test_case "store compaction emits binary snapshot" `Quick
          test_store_compact_snapshot;
      ] );
  ]
