(* Gps_workload: the PathForge taxonomy, seeded mix generation, JSONL
   round-trips, and an end-to-end open-loop storm against a real TCP
   server.

   The determinism contract is the load-bearing one: `gps workload
   generate --seed N` must be byte-identical across runs, or committed
   mixes and BENCH_load.json trajectories stop meaning anything. *)

module W = Gps_workload
module Pattern = W.Pattern
module Mix = W.Mix
module Storm = W.Storm
module R = Gps_regex.Regex
module Parse = Gps_regex.Parse
module Generators = Gps_graph.Generators
module Digraph = Gps_graph.Digraph
module Srv = Gps_server.Server
module P = Gps_server.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let city ~districts ~seed = Generators.city (Generators.default_city ~districts) ~seed

(* ------------------------------------------------------------------ *)
(* the taxonomy *)

let test_pattern_taxonomy () =
  check_int "28 abstract patterns" 28 (List.length Pattern.all);
  let ids = List.map (fun p -> p.Pattern.id) Pattern.all in
  check "ids are AQ1..AQ28 in order" true
    (ids = List.init 28 (fun i -> Printf.sprintf "AQ%d" (i + 1)));
  check "find is case-insensitive" true
    (match Pattern.find "aq22" with Some p -> p.Pattern.id = "AQ22" | None -> false);
  check "find rejects unknown ids" true (Pattern.find "AQ29" = None);
  List.iter
    (fun p ->
      let a = Pattern.arity p in
      check (p.Pattern.id ^ " arity in 1..3") true (a >= 1 && a <= 3))
    Pattern.all;
  check_int "AQ2 uses three symbols" 3 (Pattern.arity (Option.get (Pattern.find "AQ2")));
  check_int "AQ27 uses one symbol" 1 (Pattern.arity (Option.get (Pattern.find "AQ27")));
  check_int "AQ1 is star-free" 0 (Pattern.stars (Option.get (Pattern.find "AQ1")));
  check_int "AQ20 has one star" 1 (Pattern.stars (Option.get (Pattern.find "AQ20")))

let test_pattern_round_trip () =
  (* every abstract body prints in the repo notation and parses back to
     the same normalized AST *)
  List.iter
    (fun p ->
      let s = Pattern.to_string p in
      match Parse.parse s with
      | Ok r -> check (p.Pattern.id ^ " round-trips") true (R.equal r p.Pattern.body)
      | Error e -> Alcotest.failf "%s (%s) does not parse: %s" p.Pattern.id s e)
    Pattern.all

let test_pattern_instantiate () =
  let p = Option.get (Pattern.find "AQ22") in
  check_str "a+.b instantiates" "tram.tram*.bus"
    (R.to_string (Pattern.instantiate p ~a:"tram" ~b:"bus" ~c:"metro"));
  (* mapping two symbols onto one label stays a legal query *)
  let p4 = Option.get (Pattern.find "AQ4") in
  let r = Pattern.instantiate p4 ~a:"x" ~b:"y" ~c:"y" in
  check_str "collapsed union normalizes" "x.y" (R.to_string r);
  List.iter
    (fun p ->
      let r = Pattern.instantiate p ~a:"tram" ~b:"bus" ~c:"metro" in
      check
        (p.Pattern.id ^ " instantiated alphabet is concrete")
        true
        (List.for_all (fun s -> List.mem s [ "tram"; "bus"; "metro" ]) (R.alphabet r)))
    Pattern.all

(* ------------------------------------------------------------------ *)
(* mixes *)

let test_mix_specs () =
  let names = List.map (fun s -> s.Mix.name) Mix.specs in
  check "the four standing mixes" true
    (names = [ "smoke"; "heavy-star"; "interactive"; "paper" ]);
  check "find_spec misses politely" true (Mix.find_spec "nope" = None);
  let interactive = Option.get (Mix.find_spec "interactive") in
  check_int "interactive covers the whole taxonomy" 28 (List.length interactive.Mix.shape)

let test_mix_paper_suite () =
  let g = city ~districts:10 ~seed:1 in
  let m = Mix.generate (Option.get (Mix.find_spec "paper")) ~graph_name:"g" ~seed:0 g in
  check_int "Q1-Q10" 10 (List.length m.Mix.entries);
  check_str "Q3 is the running example" "(tram+bus)*.cinema"
    (List.assoc "Q3" Mix.paper_city_queries);
  check "entries carry the fixed queries in order" true
    (List.map (fun e -> e.Mix.query) m.Mix.entries
    = List.map snd (Mix.paper_city_queries @ Mix.paper_bio_queries));
  check "paper entries are unanchored" true
    (List.for_all (fun e -> e.Mix.anchor = None) m.Mix.entries)

let test_mix_deterministic () =
  let g = city ~districts:25 ~seed:4 in
  let spec = Option.get (Mix.find_spec "smoke") in
  let a = Mix.generate spec ~graph_name:"city" ~seed:7 g in
  let b = Mix.generate spec ~graph_name:"city" ~seed:7 g in
  check_str "same seed, byte-identical JSONL" (Mix.to_jsonl a) (Mix.to_jsonl b);
  let c = Mix.generate spec ~graph_name:"city" ~seed:8 g in
  check "different seed, different draw" true (Mix.to_jsonl a <> Mix.to_jsonl c)

let test_mix_no_labels () =
  let g = Digraph.create () in
  ignore (Digraph.add_node g "lonely");
  check "instantiation demands labels" true
    (match Mix.generate (Option.get (Mix.find_spec "smoke")) ~graph_name:"g" ~seed:1 g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_jsonl_round_trip () =
  let g = city ~districts:25 ~seed:4 in
  let m = Mix.generate (Option.get (Mix.find_spec "heavy-star")) ~graph_name:"city" ~seed:5 g in
  (match Mix.of_jsonl (Mix.to_jsonl m) with
  | Ok m' -> check "JSONL round-trips" true (m' = m)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* header-less streams are accepted (hand-written mixes) *)
  (match
     Mix.of_jsonl
       "{\"id\":\"x\",\"aq\":\"paper\",\"graph\":\"g\",\"query\":\"a.b\"}\n"
   with
  | Ok m' ->
      check_int "headerless: one entry" 1 (List.length m'.Mix.entries);
      check_str "headerless: placeholder mix name" "-" m'.Mix.mix
  | Error e -> Alcotest.failf "headerless parse failed: %s" e);
  check "malformed JSON is a typed error" true
    (match Mix.of_jsonl "{nope" with Error _ -> true | Ok _ -> false);
  check "missing fields are a typed error" true
    (match Mix.of_jsonl "{\"mix\":\"m\",\"seed\":1}\n{\"id\":\"x\"}\n" with
    | Error _ -> true
    | Ok _ -> false);
  check "empty input is a typed error" true
    (match Mix.of_jsonl "" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* properties: every generated mix is well-formed against its graph *)

let generated_specs =
  List.filter (fun s -> s.Mix.shape <> []) Mix.specs

let qcheck_tests =
  let gen = QCheck.Gen.(pair (int_bound 9999) (int_range 0 (List.length generated_specs - 1))) in
  let arb = QCheck.make ~print:(fun (s, i) -> Printf.sprintf "seed=%d spec=%d" s i) gen in
  let graph = city ~districts:30 ~seed:2 in
  let graph_labels = Digraph.labels graph in
  let mk name f = QCheck.Test.make ~name ~count:60 arb f in
  [
    mk "workload: every generated query parses" (fun (seed, si) ->
        let spec = List.nth generated_specs si in
        let m = Mix.generate spec ~graph_name:"g" ~seed graph in
        List.for_all
          (fun e -> match Parse.parse e.Mix.query with Ok _ -> true | Error _ -> false)
          m.Mix.entries);
    mk "workload: generation is deterministic per seed" (fun (seed, si) ->
        let spec = List.nth generated_specs si in
        let a = Mix.generate spec ~graph_name:"g" ~seed graph in
        let b = Mix.generate spec ~graph_name:"g" ~seed graph in
        Mix.to_jsonl a = Mix.to_jsonl b);
    mk "workload: anchors name real nodes" (fun (seed, si) ->
        let spec = List.nth generated_specs si in
        let m = Mix.generate spec ~graph_name:"g" ~seed graph in
        List.for_all
          (fun e ->
            match e.Mix.anchor with
            | Some n -> Digraph.node_of_name graph n <> None
            | None -> false (* generated mixes always anchor *))
          m.Mix.entries);
    mk "workload: instantiated labels exist in the graph" (fun (seed, si) ->
        let spec = List.nth generated_specs si in
        let m = Mix.generate spec ~graph_name:"g" ~seed graph in
        List.for_all
          (fun e ->
            match Parse.parse e.Mix.query with
            | Ok r -> List.for_all (fun s -> List.mem s graph_labels) (R.alphabet r)
            | Error _ -> false)
          m.Mix.entries);
    mk "workload: JSONL round-trips" (fun (seed, si) ->
        let spec = List.nth generated_specs si in
        let m = Mix.generate spec ~graph_name:"g" ~seed graph in
        Mix.of_jsonl (Mix.to_jsonl m) = Ok m);
  ]

(* ------------------------------------------------------------------ *)
(* the storm driver, end to end over real sockets *)

let with_tcp_server ?(config = Srv.default_config) f =
  let server = Srv.create ~config () in
  let g = city ~districts:15 ~seed:6 in
  (match
     Srv.handle server (P.Load { name = "city"; source = P.Text (Gps_graph.Codec.to_string g) })
   with
  | P.Err e -> Alcotest.failf "load failed: %s" e.P.message
  | _ -> ());
  let tcp = Srv.start_tcp server ~port:0 () in
  Fun.protect ~finally:(fun () -> Srv.stop_tcp tcp) (fun () -> f g (Srv.tcp_port tcp))

let test_storm_end_to_end () =
  with_tcp_server (fun g port ->
      let mix =
        Mix.generate (Option.get (Mix.find_spec "smoke")) ~graph_name:"city" ~seed:42 g
      in
      let config =
        {
          Storm.host = "127.0.0.1";
          port;
          rps = 400.0;
          duration_s = 0.5;
          connections = 3;
          deadline_ms = None;
        }
      in
      match Storm.run config mix with
      | Error e -> Alcotest.failf "storm failed: %s" e
      | Ok o ->
          check_int "every scheduled request was sent" 200 o.Storm.sent;
          check_int "every request got a response" o.Storm.sent o.Storm.received;
          check "no typed errors" true (o.Storm.errors = []);
          check "latency histogram saw every response" true
            (o.Storm.latency.Gps_obs.Histogram.count = o.Storm.received);
          check "achieved rate is positive" true (o.Storm.achieved_rps > 0.0);
          check "sheds counter harvested in-band" true
            (List.mem_assoc "sheds" o.Storm.server_delta);
          check "timeouts counter harvested in-band" true
            (List.mem_assoc "timeouts" o.Storm.server_delta))

let test_storm_typed_errors_counted () =
  with_tcp_server (fun _g port ->
      (* every entry targets a graph the server does not have: the storm
         must complete and count the typed failures, not die *)
      let mix =
        {
          Mix.mix = "bad";
          seed = 0;
          entries =
            [
              { Mix.id = "bad-1"; aq = "paper"; graph = "missing"; query = "a.b"; anchor = None };
            ];
        }
      in
      let config =
        {
          Storm.host = "127.0.0.1";
          port;
          rps = 200.0;
          duration_s = 0.25;
          connections = 2;
          deadline_ms = None;
        }
      in
      match Storm.run config mix with
      | Error e -> Alcotest.failf "storm failed: %s" e
      | Ok o ->
          check "all responses arrived" true (o.Storm.received = o.Storm.sent);
          check "typed unknown-graph errors counted" true
            (match List.assoc_opt "unknown-graph" o.Storm.errors with
            | Some n -> n = o.Storm.received
            | None -> false))

let test_storm_refuses_nonsense () =
  check "empty mix refused" true
    (match
       Storm.run
         {
           Storm.host = "127.0.0.1";
           port = 1;
           rps = 1.0;
           duration_s = 0.1;
           connections = 1;
           deadline_ms = None;
         }
         { Mix.mix = "empty"; seed = 0; entries = [] }
     with
    | Error _ -> true
    | Ok _ -> false);
  check "unconnectable endpoint is a transport error" true
    (match
       Storm.run
         {
           Storm.host = "127.0.0.1";
           port = 9;
           rps = 10.0;
           duration_s = 0.1;
           connections = 1;
           deadline_ms = None;
         }
         {
           Mix.mix = "m";
           seed = 0;
           entries = [ { Mix.id = "x"; aq = "paper"; graph = "g"; query = "a"; anchor = None } ];
         }
     with
    | Error _ -> true
    | Ok _ -> false)

let suite =
  [
    ( "workload.pattern",
      [
        Alcotest.test_case "taxonomy shape" `Quick test_pattern_taxonomy;
        Alcotest.test_case "bodies round-trip through the parser" `Quick
          test_pattern_round_trip;
        Alcotest.test_case "instantiation substitutes labels" `Quick test_pattern_instantiate;
      ] );
    ( "workload.mix",
      [
        Alcotest.test_case "named specs" `Quick test_mix_specs;
        Alcotest.test_case "the fixed paper suite" `Quick test_mix_paper_suite;
        Alcotest.test_case "seeded determinism" `Quick test_mix_deterministic;
        Alcotest.test_case "label-less graphs refused" `Quick test_mix_no_labels;
        Alcotest.test_case "JSONL codec" `Quick test_jsonl_round_trip;
      ] );
    ( "workload.storm",
      [
        Alcotest.test_case "open-loop storm over TCP" `Quick test_storm_end_to_end;
        Alcotest.test_case "typed errors are counted, not fatal" `Quick
          test_storm_typed_errors_counted;
        Alcotest.test_case "nonsense configurations refused" `Quick test_storm_refuses_nonsense;
      ] );
    ("workload.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
