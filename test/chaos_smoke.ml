(* chaos_smoke — drive the dispatch core and the stdio transport under a
   GPS_FAULT schedule and assert the service degrades into typed errors
   instead of crashing or wedging.

   Run with e.g.
     GPS_FAULT="catalog.lookup:p0.15@7,qcache.insert:n3" ./chaos_smoke.exe
   An empty/unset GPS_FAULT is the control run: the same script must
   then produce no error responses at all. *)

module Json = Gps_graph.Json
module P = Gps_server.Protocol
module Srv = Gps_server.Server
module Fault = Gps_obs.Fault

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("chaos_smoke: " ^ m); exit 1) fmt

(* one round of mixed traffic, as wire lines; session ids are allocated
   1, 2, … per server, so round [k] starts and drives session [k] *)
let script round =
  [
    {|{"op":"load","name":"fig","builtin":"figure1"}|};
    {|{"op":"query","graph":"fig","query":"(tram+bus)*.cinema"}|};
    {|{"op":"query","graph":"fig","query":"bus","deadline_ms":5000}|};
    {|{"op":"stats","graph":"fig"}|};
    {|{"op":"learn","graph":"fig","pos":["N2","N6"],"neg":["N5"]}|};
    {|{"op":"session-start","graph":"fig","strategy":"smart","seed":1,"budget":10}|};
    Printf.sprintf {|{"op":"session-show","session":%d}|} round;
    Printf.sprintf {|{"op":"session-stop","session":%d}|} round;
    {|{"op":"status"}|};
    {|not json at all|};
    {|{"op":"metrics","timings":false}|};
  ]

let script_len = List.length (script 1)

let is_error_line line =
  match Json.value_of_string line with
  | exception Json.Parse_error _ -> die "response is not JSON: %s" line
  | Json.Object fields -> (
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool ok) -> not ok
      | _ -> die "response has no \"ok\" field: %s" line)
  | _ -> die "response is not an object: %s" line

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let () =
  Fault.init_from_env ();
  let rounds = 50 in
  (* the dispatch server journals sessions to a real state dir so the
     wal.append / store.fsync fault sites sit on the acked-write path *)
  let state_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gps_chaos_%d" (Unix.getpid ()))
  in
  rm_rf state_dir;
  at_exit (fun () -> rm_rf state_dir);
  let t =
    Srv.create
      ~config:{ Srv.default_config with Srv.state_dir = Some state_dir } ()
  in
  (* direct dispatch: every request must draw a typed one-line response,
     no matter what the fault schedule injects *)
  let errors = ref 0 and total = ref 0 in
  for round = 1 to rounds do
    List.iter
      (fun line ->
        incr total;
        if is_error_line (Srv.handle_line t line) then incr errors)
      (script round)
  done;
  (* a journal append or fsync that failed must have surfaced as a typed
     (counted) durability error — an acked step may never silently skip
     the log *)
  let durability_errors =
    match List.assoc_opt "server.durability_errors" (Gps_obs.Counter.snapshot ()) with
    | Some n -> n
    | None -> 0
  in
  let durability_injected =
    Fault.injected_count "wal.append" + Fault.injected_count "store.fsync"
  in
  if durability_errors <> durability_injected then
    die "durability: %d wal.append/store.fsync faults injected but %d typed errors counted"
      durability_injected durability_errors;
  (* the stdio transport: sock.write faults close the stream early; that
     must be a quiet, counted disconnect, never an exception *)
  let t2 = Srv.create () in
  let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r and oc = Unix.out_channel_of_descr resp_w in
  let server =
    Thread.create
      (fun () ->
        (try Srv.serve_channels t2 ic oc with _ -> ());
        (* signal EOF to the response reader, like the TCP wrapper does *)
        try close_out oc with Sys_error _ -> ())
      ()
  in
  (* feed requests from a separate thread while this one drains the
     responses — writing everything first would deadlock both pipes once
     their buffers fill *)
  let writer =
    Thread.create
      (fun () ->
        let wr = Unix.out_channel_of_descr req_w in
        (try
           for round = 1 to rounds do
             List.iter (fun line -> output_string wr (line ^ "\n")) (script round)
           done
         with Sys_error _ -> () (* server closed early under sock.write faults *));
        try close_out wr with Sys_error _ -> ())
      ()
  in
  let rd = Unix.in_channel_of_descr resp_r in
  let transported = ref 0 in
  (try
     while true do
       ignore (is_error_line (input_line rd));
       incr transported
     done
   with End_of_file -> ());
  Thread.join server;
  (* a sock.write fault may have stopped the server mid-stream; closing
     the request pipe unblocks the writer with EPIPE *)
  (try close_in ic with _ -> ());
  Thread.join writer;
  close_in rd;
  if Fault.active () then begin
    (* under the control run (no faults) the script's only failures are
       the deliberate garbage line; under faults we only require typed
       degradation, which the per-line checks already enforced *)
    Printf.printf "chaos: %d/%d dispatch errors, %d transported lines\n" !errors !total
      !transported;
    List.iter (fun (site, n) -> Printf.printf "chaos: %s injected %d\n" site n) (Fault.sites ())
  end
  else begin
    let expected_errors = rounds (* one garbage line per round *) in
    if !errors <> expected_errors then
      die "control run: expected %d errors (garbage lines), got %d" expected_errors !errors;
    if !transported <> rounds * script_len then
      die "control run: expected %d transported lines, got %d" (rounds * script_len)
        !transported;
    (* every session was stopped, so every journal must have been
       discarded — a leak here would grow the state dir forever *)
    let leftover =
      Sys.readdir state_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".wal")
    in
    if leftover <> [] then
      die "control run: %d journal(s) leaked in %s" (List.length leftover) state_dir;
    Printf.printf "chaos: control run clean (%d requests)\n" !total
  end
