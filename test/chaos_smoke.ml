(* chaos_smoke — drive the dispatch core and the stdio transport under a
   GPS_FAULT schedule and assert the service degrades into typed errors
   instead of crashing or wedging.

   Run with e.g.
     GPS_FAULT="catalog.lookup:p0.15@7,qcache.insert:n3" ./chaos_smoke.exe
   An empty/unset GPS_FAULT is the control run: the same script must
   then produce no error responses at all. *)

module Json = Gps_graph.Json
module P = Gps_server.Protocol
module Srv = Gps_server.Server
module Fault = Gps_obs.Fault

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("chaos_smoke: " ^ m); exit 1) fmt

(* one round of mixed traffic, as wire lines; session ids are allocated
   1, 2, … per server, so round [k] starts and drives session [k] *)
let script round =
  [
    {|{"op":"load","name":"fig","builtin":"figure1"}|};
    {|{"op":"query","graph":"fig","query":"(tram+bus)*.cinema"}|};
    {|{"op":"query","graph":"fig","query":"bus","deadline_ms":5000}|};
    {|{"op":"stats","graph":"fig"}|};
    {|{"op":"learn","graph":"fig","pos":["N2","N6"],"neg":["N5"]}|};
    {|{"op":"session-start","graph":"fig","strategy":"smart","seed":1,"budget":10}|};
    Printf.sprintf {|{"op":"session-show","session":%d}|} round;
    Printf.sprintf {|{"op":"session-stop","session":%d}|} round;
    {|{"op":"status"}|};
    {|not json at all|};
    {|{"op":"metrics","timings":false}|};
  ]

let script_len = List.length (script 1)

let is_error_line line =
  match Json.value_of_string line with
  | exception Json.Parse_error _ -> die "response is not JSON: %s" line
  | Json.Object fields -> (
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool ok) -> not ok
      | _ -> die "response has no \"ok\" field: %s" line)
  | _ -> die "response is not an object: %s" line

let () =
  Fault.init_from_env ();
  let rounds = 50 in
  let t = Srv.create () in
  (* direct dispatch: every request must draw a typed one-line response,
     no matter what the fault schedule injects *)
  let errors = ref 0 and total = ref 0 in
  for round = 1 to rounds do
    List.iter
      (fun line ->
        incr total;
        if is_error_line (Srv.handle_line t line) then incr errors)
      (script round)
  done;
  (* the stdio transport: sock.write faults close the stream early; that
     must be a quiet, counted disconnect, never an exception *)
  let t2 = Srv.create () in
  let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r and oc = Unix.out_channel_of_descr resp_w in
  let server =
    Thread.create
      (fun () ->
        (try Srv.serve_channels t2 ic oc with _ -> ());
        (* signal EOF to the response reader, like the TCP wrapper does *)
        try close_out oc with Sys_error _ -> ())
      ()
  in
  (* feed requests from a separate thread while this one drains the
     responses — writing everything first would deadlock both pipes once
     their buffers fill *)
  let writer =
    Thread.create
      (fun () ->
        let wr = Unix.out_channel_of_descr req_w in
        (try
           for round = 1 to rounds do
             List.iter (fun line -> output_string wr (line ^ "\n")) (script round)
           done
         with Sys_error _ -> () (* server closed early under sock.write faults *));
        try close_out wr with Sys_error _ -> ())
      ()
  in
  let rd = Unix.in_channel_of_descr resp_r in
  let transported = ref 0 in
  (try
     while true do
       ignore (is_error_line (input_line rd));
       incr transported
     done
   with End_of_file -> ());
  Thread.join server;
  (* a sock.write fault may have stopped the server mid-stream; closing
     the request pipe unblocks the writer with EPIPE *)
  (try close_in ic with _ -> ());
  Thread.join writer;
  close_in rd;
  if Fault.active () then begin
    (* under the control run (no faults) the script's only failures are
       the deliberate garbage line; under faults we only require typed
       degradation, which the per-line checks already enforced *)
    Printf.printf "chaos: %d/%d dispatch errors, %d transported lines\n" !errors !total
      !transported;
    List.iter (fun (site, n) -> Printf.printf "chaos: %s injected %d\n" site n) (Fault.sites ())
  end
  else begin
    let expected_errors = rounds (* one garbage line per round *) in
    if !errors <> expected_errors then
      die "control run: expected %d errors (garbage lines), got %d" expected_errors !errors;
    if !transported <> rounds * script_len then
      die "control run: expected %d transported lines, got %d" (rounds * script_len)
        !transported;
    Printf.printf "chaos: control run clean (%d requests)\n" !total
  end
