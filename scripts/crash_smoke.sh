#!/usr/bin/env bash
# Crash smoke: 20 seeded SIGKILL/restart cycles against the durability
# layer (DESIGN §14) — 10 against the checksummed store log, 10 against
# the TCP server with --state-dir session journaling.
#
# Each cycle kills a worker process with SIGKILL at a seeded-random
# point under live write traffic, restarts, runs recovery, and checks
# the crash invariants:
#   - no CRC failure is ever reported (a kill tears tails, it cannot
#     corrupt checksummed records);
#   - every acknowledged op / session step is present after recovery;
#   - the recovered graph is byte-equivalent to a reference replay;
#   - restored sessions keep answering, and stopping them empties the
#     state dir.
#
# Gates on CORRECTNESS ONLY — never on latency (fsync timings on shared
# CI runners are noise; EXPERIMENTS.md EXP-CRASH carries the measured
# numbers).
#
# Env overrides: CRASH_CYCLES (per mode), CRASH_SEED.
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${CRASH_CYCLES:-10}"
SEED="${CRASH_SEED:-1}"
HARNESS=_build/default/test/crash_harness.exe

dune build test/crash_harness.exe

echo "== store: $CYCLES kill/restart cycles (seeds $SEED..$((SEED + CYCLES - 1)))"
"$HARNESS" --mode store --cycles "$CYCLES" --seed "$SEED"

echo "== server: $CYCLES kill/restart cycles (seeds $((SEED + 100))..$((SEED + 100 + CYCLES - 1)))"
"$HARNESS" --mode server --cycles "$CYCLES" --seed "$((SEED + 100))"

echo "crash smoke: all cycles passed"
