#!/usr/bin/env bash
# Out-of-core smoke: pack a million-node graph, serve it mmap-backed
# under an explicit address-space budget, storm it with a seeded query
# mix over TCP, exercise overlay ingest, and check the out-of-core
# counters.
#
# Gates on CORRECTNESS ONLY — zero storm errors, cache semantics,
# counter values. Never on latency: numbers from shared CI runners are
# noise.
#
# The budget (ulimit -v 704 MB) is calibrated so the mapped backing
# fits and the heap backing does not: serving this graph from the heap
# peaks at ~767 MB of address space / ~432 MB resident (measured:
# edge-list parse + Digraph + CSR freeze), and under this same budget
# the heap-backed server sheds most of the storm with OOM errors while
# the mapped one answers everything. Most of the mapped server's
# budget is not the graph: the OCaml 5 runtime reserves the minor-heap
# arena for its 128 potential domains up front (OCAMLRUNPARAM=s=64k
# shrinks that to ~64 MB), thread stacks are virtual (ulimit -s 2048
# caps them at 2 MB), and transient answer serialization churns the
# major heap. The packed file itself maps ~47 MB; resident peak while
# answering the storm is ~237 MB.
#
# Env overrides: GPS_CLI, GPS_OOC_NODES, GPS_OOC_PORT.
set -euo pipefail

CLI="${GPS_CLI:-_build/default/bin/gps_cli.exe}"
NODES="${GPS_OOC_NODES:-1000000}"
PORT="${GPS_OOC_PORT:-7477}"
PACK_VMEM_KB=786432   # 768 MB: runtime reservation + mapped output + offsets
SERVE_VMEM_KB=720896  # 704 MB: see header comment

DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== pack ${NODES}-node graph (streaming, under $((PACK_VMEM_KB / 1024)) MB vmem)"
# average degree 1: the smoke's answers should be thousands of node
# names, not hundreds of thousands — answer serialization is heap
# churn on BOTH backings and would drown the storage difference
(
  ulimit -v "$PACK_VMEM_KB"
  exec "$CLI" graph pack --generate uniform --nodes "$NODES" --edges "$NODES" -o "$DIR/big.csr"
)
"$CLI" graph info "$DIR/big.csr"

echo "== serve it mapped (under $((SERVE_VMEM_KB / 1024)) MB vmem)"
# --cache 2: cached ANSWERS live on the heap — a few entries suffice
# to prove the cache semantics below without muddying the budget
(
  ulimit -v "$SERVE_VMEM_KB"
  ulimit -s 2048
  GPS_DOMAINS=1 OCAMLRUNPARAM=s=64k \
    exec "$CLI" serve --port "$PORT" --cache 2 --load "big=$DIR/big.csr"
) &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if "$CLI" metrics --connect "127.0.0.1:$PORT" --retries 0 >/dev/null 2>&1; then
    break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died under the budget" >&2; exit 1; }
  sleep 0.2
done

echo "== seeded query mix over TCP"
# The mix instantiates abstract patterns against a graph's label
# alphabet; a tiny uniform graph shares the packed one's {a,b,c,d}.
"$CLI" generate -k uniform -n 200 -o "$DIR/mixgraph.txt" >/dev/null
"$CLI" workload generate "$DIR/mixgraph.txt" --mix smoke --seed 7 \
  --graph-name big -o "$DIR/mix.jsonl" >/dev/null
# Low rate on purpose: every query is a full product-BFS over 10^6
# nodes — this gate is "every answer arrives, none errors", not
# throughput.
"$CLI" workload storm "$DIR/mix.jsonl" --connect "127.0.0.1:$PORT" \
  --rps 5 --duration 2 --clients 2 --json > "$DIR/storm.json"
python3 - "$DIR/storm.json" <<'PY'
import json, sys
o = json.load(open(sys.argv[1]))
assert o["sent"] > 0 and o["received"] == o["sent"], (o["sent"], o["received"])
assert not o["errors"], o["errors"]
print(f"ok: storm {o['received']}/{o['sent']} answered, zero errors")
PY

echo "== overlay ingest + label-aware invalidation, answers byte-stable"
python3 - "$PORT" "$DIR/big.csr" <<'PY'
import json, socket, sys

sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = sock.makefile("rw")
def rpc(obj):
    f.write(json.dumps(obj) + "\n"); f.flush()
    return json.loads(f.readline())

# remap the file: bumps the version, so storm-era cache entries are
# gone and the invalidation counts below are exact
r = rpc({"op": "load_file", "name": "big", "file": sys.argv[2]})
assert r["ok"] and r["nodes"] > 0, r

q = {"op": "query", "graph": "big", "query": "a.c"}
first = rpc(q)
assert first["ok"], first
warm = rpc(q)
assert warm["cache"] == "hit", warm

# a delta on a fresh label: disjoint from every query alphabet, so the
# warm non-nullable entry must survive
r = rpc({"op": "add_edges", "graph": "big", "edges": [["p1", "zz", "p2"]]})
assert r["ok"] and r["added"] == 1 and r["new_nodes"] == 2, r
assert r["invalidated"] == 0, r
still = rpc(q)
assert still["cache"] == "hit", still

# a delta touching label "a" drops the entry; the fresh nodes carry no
# a.c path, so the re-evaluated answer is identical
r = rpc({"op": "add_edges", "graph": "big", "edges": [["p3", "a", "p4"]]})
assert r["ok"] and r["invalidated"] >= 1, r
again = rpc(q)
assert again["cache"] == "miss", again
assert again["nodes"] == first["nodes"], "answer changed across a no-op delta"
print(f"ok: ingest invalidated {r['invalidated']} entry(ies), answers stable")
PY

echo "== out-of-core counters"
"$CLI" metrics --connect "127.0.0.1:$PORT" > "$DIR/metrics.json"
python3 - "$DIR/metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
gauges = m["trace"]["gauges"]
counters = m["trace"]["counters"]
assert gauges["catalog.file_backed"] == 1, gauges
assert gauges["graph.overlay_edges"] == 2, gauges
assert counters["qcache.delta_invalidations"] >= 1, counters
assert m["cache"]["delta_invalidations"] >= 1, m["cache"]
print("ok: catalog.file_backed=1 graph.overlay_edges=2 "
      f"qcache.delta_invalidations={counters['qcache.delta_invalidations']}")
PY

echo "ooc smoke: all gates passed"
