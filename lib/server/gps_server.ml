(** The GPS service layer: a concurrent multi-session query/specification
    server. {!Protocol} is the typed request/response language and its
    JSON codec; {!Catalog} the named, versioned graph registry; {!Qcache}
    the LRU result cache; {!Sessions} the interactive-session manager;
    {!Metrics} per-endpoint counters and latency histograms; {!Server}
    the dispatch core plus the stdio and TCP wire frontends. *)

module Protocol = Protocol
module Catalog = Catalog
module Qcache = Qcache
module Sessions = Sessions
module Metrics = Metrics
module Durability = Durability
module Server = Server
