(** The named-graph registry.

    The service owns a set of graph databases addressed by name. Each
    [put] installs an immutable snapshot — the {!Gps_graph.Digraph.t}
    together with its {!Gps_graph.Csr} freeze for the evaluation hot path
    — under a monotonically increasing per-name version. Reloading a name
    bumps its version, which is what keys the query cache and lets
    already-running sessions keep working against the snapshot they
    started from.

    All operations are thread-safe (one internal mutex; entries are
    immutable once published). *)

type entry = {
  name : string;
  graph : Gps_graph.Digraph.t;
  csr : Gps_graph.Csr.t;   (** [Csr.freeze graph], shared by all queries *)
  version : int;           (** 1 on first load, +1 per reload *)
}

type t

val create : unit -> t

val put : t -> name:string -> Gps_graph.Digraph.t -> entry
(** Install (or replace) the graph under [name]. Freezes the CSR
    snapshot eagerly. *)

val find : t -> string -> entry option

val list : t -> entry list
(** Sorted by name. *)

val count : t -> int
