(** The named-graph registry.

    The service owns a set of graph databases addressed by name, each
    under a monotonically increasing per-name version. Two backings
    coexist behind one entry type:

    - {e heap} entries ([put]): an immutable {!Gps_graph.Digraph.t}
      snapshot plus its {!Gps_graph.Csr} freeze for the evaluation hot
      path — the original in-core story;
    - {e file} entries ([put_file]): an mmap-backed
      {!Gps_graph.Disk_csr} packed graph plus its mutable delta overlay.
      No [Digraph] is retained — a million-node file costs one [mmap],
      and endpoints that genuinely need full [Digraph] access (sessions,
      learning) force one lazily through {!graph}, memoized until the
      overlay grows.

    Reloading a name bumps its version, which is what keys the query
    cache and lets already-running sessions keep working against the
    snapshot they started from. Overlay ingest ({!add_edges}) does {e
    not} bump the version — the graph only grows, and the query cache
    handles deltas with label-aware invalidation instead of the blanket
    version cliff.

    All operations are thread-safe (one internal mutex; entries are
    immutable once published — the [File] overlay and memo mutate behind
    their own locks). *)

type backing =
  | Heap of { graph : Gps_graph.Digraph.t; csr : Gps_graph.Csr.t }
  | File of {
      disk : Gps_graph.Disk_csr.t;
      file : string;  (** the packed file's path *)
      lock : Mutex.t;  (** guards [heap] *)
      mutable heap : (Gps_graph.Digraph.t * int) option;
          (** memoized materialization, stamped with the overlay edge
              count it reflects *)
    }

type entry = {
  name : string;
  version : int;  (** 1 on first load, +1 per reload *)
  backing : backing;
}

type t

val create : unit -> t

val put : t -> name:string -> Gps_graph.Digraph.t -> entry
(** Install (or replace) the graph under [name]. Freezes the CSR
    snapshot eagerly. *)

val put_file : t -> name:string -> string -> (entry, Gps_graph.Disk_csr.open_error) result
(** Map the packed file at the path and install it under [name]; the
    file is validated before the entry is published. Versioning is the
    same as {!put}. *)

val find : t -> string -> entry option

val list : t -> entry list
(** Sorted by name. *)

val count : t -> int

(** {1 Backing-generic accessors}

    These answer without materializing a heap graph for file entries. *)

val eval_source : entry -> Gps_query.Eval.source
(** What the evaluation kernel should run against: the frozen heap CSR,
    or a fresh overlay-inclusive snapshot of the mapped file. *)

val n_nodes : entry -> int
val n_edges : entry -> int
val n_labels : entry -> int
(** Overlay included for file entries. *)

val labels : entry -> string list
(** All label names, sorted. *)

val known_label : entry -> string -> bool
(** Is the base label in this graph's alphabet (overlay included)? The
    argument feeds {!Gps_query.Rewrite.specialize_known}. *)

val file_backed : entry -> bool
val backing_file : entry -> string option
val overlay_edges : entry -> int
(** 0 for heap entries. *)

val graph : entry -> Gps_graph.Digraph.t
(** The full heap graph. Free for heap entries; file entries materialize
    (base + overlay) on first use and memoize until the overlay grows.
    Sessions and learning go through this — the query path never does. *)

val add_edges :
  entry -> (string * string * string) list -> (Gps_graph.Disk_csr.delta, string) result
(** Append [(src, label, dst)] triples to a file entry's overlay.
    [Error] for heap entries (reload is their only mutation). *)
