module Json = Gps_graph.Json
module Digraph = Gps_graph.Digraph
module Disk_csr = Gps_graph.Disk_csr
module P = Protocol
module S = Gps_interactive.Session
module Clock = Gps_obs.Clock
module Counter = Gps_obs.Counter
module Gauge = Gps_obs.Gauge
module Trace = Gps_obs.Trace
module Deadline = Gps_obs.Deadline
module Fault = Gps_obs.Fault
module Timeseries = Gps_obs.Timeseries
module Wide_event = Gps_obs.Wide_event
module Histogram = Gps_obs.Histogram
module Wal = Gps_graph.Wal
module Journal = Gps_interactive.Journal

let c_dispatches = Counter.make "server.dispatches"
let c_errors = Counter.make "server.dispatch_errors"
let c_slow = Counter.make "server.slow_queries"
let c_timeouts = Counter.make "server.timeouts"
let c_sheds = Counter.make "server.sheds"
let c_disconnects = Counter.make "server.client_disconnects"
let c_frame_rejects = Counter.make "server.frame_rejections"
let c_cache_drops = Counter.make "server.cache_insert_drops"
let c_durability_errors = Counter.make "server.durability_errors"
let c_restored = Counter.make "recovery.sessions_restored"
let c_recovery_failed = Counter.make "recovery.sessions_failed"
let c_entries_discarded = Counter.make "recovery.entries_discarded"
let h_recovery = Histogram.make "recovery.duration_ns"
let g_sessions = Gauge.make "server.sessions_active"
let g_cache = Gauge.make "server.qcache_size"
let g_inflight = Gauge.make "server.inflight"

(* sessions rebuilt by the last crash recovery — a gauge (not the
   cumulative counter) so dashboards sampling the timeseries see the
   boot's recovery without needing rate arithmetic *)
let g_recovered = Gauge.make "recovery.sessions"

(* total delta-overlay edges across every file-backed catalog entry —
   the live measure of how much ingest has landed since the last pack *)
let g_overlay = Gauge.make "graph.overlay_edges"

type config = {
  cache_capacity : int;
  sessions : Sessions.config;
  clock : unit -> float;
  slow_ms : float option;
  deadline_ms : float option;
  deadline_cap_ms : float option;
  max_inflight : int;
  max_frame_bytes : int;
  io_timeout_s : float option;
  audit : Wide_event.sink option;
  sample_every_s : float option;
  prom_compat : bool;
  profile : bool;
  state_dir : string option;
  fsync : Wal.fsync_policy;
}

let default_config =
  {
    cache_capacity = 256;
    sessions = Sessions.default_config;
    (* monotonic by default: a stepped wall clock must not mass-expire
       or immortalize sessions. Still injectable for tests. *)
    clock = (fun () -> Clock.ns_to_s (Clock.now_ns ()));
    slow_ms = None;
    deadline_ms = None;
    deadline_cap_ms = None;
    max_inflight = 0;
    max_frame_bytes = 8 * 1024 * 1024;
    io_timeout_s = None;
    audit = None;
    sample_every_s = None;
    prom_compat = false;
    profile = false;
    state_dir = None;
    fsync = Wal.Always;
  }

type recovery_summary = {
  sessions_restored : int;
  sessions_failed : int;
  entries_discarded : int;
  bytes_discarded : int;
  duration_ms : float;
}

type t = {
  catalog : Catalog.t;
  cache : Qcache.t;
  sessions : Sessions.t;
  metrics : Metrics.t;
  slow_ms : float option;
  deadline_ms : float option;
  deadline_cap_ms : float option;
  max_inflight : int;
  max_frame_bytes : int;
  io_timeout_s : float option;
  inflight : int Atomic.t;
  drain : Deadline.t;  (* server-wide cancel token, fired by begin_drain *)
  started_ns : int64;  (* monotonic — uptime can't jump with the wall clock *)
  audit : Wide_event.sink option;
  prom_compat : bool;
  mutable series : Timeseries.t option;
  dur : Durability.t option;
  mutable recovery : recovery_summary option;
  (* wide events stamped recovered:true until this instant — the first
     post-restart sample window, so restart blips are attributable *)
  mutable recovered_until_ns : int64 option;
  recovered_window_ns : int64;
}

let refresh_gauges t =
  let c = Qcache.stats t.cache in
  let s = Sessions.counters t.sessions in
  Gauge.set_int g_sessions s.Sessions.active;
  Gauge.set_int g_cache c.Qcache.size;
  (c, s)

let create ?(config = default_config) () =
  let dur =
    match config.state_dir with
    | None -> None
    | Some dir -> (
        match Durability.load ~dir ~policy:config.fsync with
        | Ok d -> Some d
        | Error msg -> failwith (Printf.sprintf "state dir %s: %s" dir msg))
  in
  (* a removed session's journal goes with it, whatever removed it:
     explicit stop, TTL expiry or max-sessions eviction *)
  let on_remove id = Option.iter (fun d -> Durability.discard d ~id) dur in
  let t =
    {
      catalog = Catalog.create ();
      cache = Qcache.create ~capacity:config.cache_capacity ();
      sessions = Sessions.create ~config:config.sessions ~clock:config.clock ~on_remove ();
      metrics = Metrics.create ();
      slow_ms = config.slow_ms;
      deadline_ms = config.deadline_ms;
      deadline_cap_ms = config.deadline_cap_ms;
      max_inflight = config.max_inflight;
      max_frame_bytes = max 1024 config.max_frame_bytes;
      io_timeout_s = config.io_timeout_s;
      inflight = Atomic.make 0;
      drain = Deadline.token ();
      started_ns = Clock.now_ns ();
      audit = config.audit;
      prom_compat = config.prom_compat;
      series = None;
      dur;
      recovery = None;
      recovered_until_ns = None;
      recovered_window_ns =
        Int64.of_float
          (1e9 *. Option.value ~default:1.0 config.sample_every_s);
    }
  in
  (* --profile: pool-level scheduler telemetry on every parallel eval,
     plus GC/domain events from the runtime's ring. Both feed the
     ordinary registries, so Prom exposition, timeseries windows and
     [gps top] pick them up with no further wiring. *)
  if config.profile then begin
    ignore (Gps_obs.Runtime.start ());
    Gps_par.Pool.set_profiling true
  end;
  (match config.sample_every_s with
  | Some interval_s when interval_s > 0.0 ->
      (* every sample sees fresh level gauges, drained runtime events
         and the per-endpoint latency tables alongside the global
         registries *)
      let ts =
        Timeseries.create ~interval_s
          ~pre_sample:(fun () ->
            ignore (refresh_gauges t);
            if config.profile then ignore (Gps_obs.Runtime.poll ()))
          ~extra:(fun () -> Metrics.histograms t.metrics)
          ()
      in
      Timeseries.start ts;
      t.series <- Some ts
  | _ -> ());
  t

let sampler t = t.series
let stop_sampler t = Option.iter Timeseries.stop t.series

let begin_drain t = Deadline.cancel t.drain
let draining t = Deadline.cancelled t.drain
let inflight t = Atomic.get t.inflight

(* ------------------------------------------------------------------ *)
(* dispatch plumbing: every failure is a structured error *)

exception Fail of P.error

let fail code fmt =
  Printf.ksprintf (fun message -> raise (Fail { P.code; message; data = None })) fmt

(* Translate an injected fault into the typed degraded answer the real
   failure would produce. *)
let fault_site site =
  try Fault.trip site
  with Fault.Injected _ -> fail "unavailable" "injected fault at %s" site

(* The effective deadline of one request: the client's wire value capped
   by the server, falling back to the server default, always combined
   with the drain token so begin_drain cancels in-flight work. *)
let request_deadline t requested_ms =
  let cap v = match t.deadline_cap_ms with Some c -> Float.min v c | None -> v in
  let ms =
    match requested_ms with
    | Some ms -> Some (cap ms)
    | None -> Option.map cap t.deadline_ms
  in
  let d = match ms with Some ms -> Deadline.after_ms ms | None -> Deadline.none in
  Deadline.combine d t.drain

let interrupt_code = function
  | Deadline.Timed_out -> "timeout"
  | Deadline.Cancelled -> "cancelled"

let graph_entry t name =
  fault_site "catalog.lookup";
  match Catalog.find t.catalog name with
  | Some e -> e
  | None -> fail "unknown-graph" "no graph named %S (use \"load\" first)" name

let parse_rpq s =
  match Gps_query.Rpq.of_string s with
  | Ok q -> q
  | Error msg -> fail "bad-query" "%s" msg

(* ------------------------------------------------------------------ *)
(* cached evaluation *)

let node_names g vs = List.sort compare (List.map (Digraph.node_name g) vs)

(* Normalize to the graph-specialized form: syntactic variants and
   out-of-alphabet symbols collapse onto one cache key with an unchanged
   answer on this graph. Alphabet membership goes through the catalog so
   file-backed entries answer from the mapped label table without
   materializing a heap graph. *)
let specialized (entry : Catalog.entry) q =
  Gps_query.Rewrite.specialize_known ~known:(Catalog.known_label entry) q

(* The eval counters whose per-request deltas go on the wide event —
   the cost attribution of a cache miss. Deltas are computed by
   bracketing the evaluation; under concurrent misses a request's delta
   can include a neighbor's work, which the audit field dictionary
   documents (the totals still reconcile). *)
let audited_eval_counters =
  [
    ("d_product_states", Counter.make "eval.product_states");
    ("d_frontier_visits", Counter.make "eval.frontier_visits");
    ("d_par_levels", Counter.make "eval.par_levels");
    ("d_seq_fallbacks", Counter.make "eval.seq_fallbacks");
    ("d_domains_used", Counter.make "eval.domains_used");
  ]

let ev_set_cache ev verdict =
  Option.iter (fun ev -> Wide_event.set_str ev "cache" verdict) ev

(* With [explain], a miss carries the evaluation's full report (plus the
   cache verdict); a hit runs no evaluation, so its report is just the
   verdict — re-narrating a cached answer would be fiction. *)
let evaluate_cached t (entry : Catalog.entry) ?ev ?(explain = false) ?(deadline = Deadline.none) q =
  (* an armed slow-query log wants the report for every evaluation, so
     it can be emitted for offending requests the client never asked to
     explain; the kernel collects the stats either way *)
  let want_report = explain || t.slow_ms <> None in
  let nq = specialized entry q in
  let normalized = Gps_query.Rpq.to_string nq in
  let key = { Qcache.graph = entry.name; version = entry.version; query = normalized } in
  match Qcache.find t.cache key with
  | Some nodes ->
      Trace.set_current_attr "cache" (Trace.String "hit");
      ev_set_cache ev "hit";
      let report =
        if want_report then Some (Json.Object [ ("cache", Json.String "hit") ]) else None
      in
      (normalized, nodes, `Hit, report)
  | None ->
      Trace.set_current_attr "cache" (Trace.String "miss");
      ev_set_cache ev "miss";
      let eval_before =
        match ev with
        | None -> []
        | Some _ -> List.map (fun (k, c) -> (k, Counter.value c)) audited_eval_counters
      in
      let stamp_eval_deltas () =
        Option.iter
          (fun ev ->
            List.iter
              (fun (k, c) ->
                let before = Option.value ~default:0 (List.assoc_opt k eval_before) in
                Wide_event.set_int ev k (Counter.value c - before))
              audited_eval_counters)
          ev
      in
      (* one snapshot for the whole evaluation: heap entries hand over
         their frozen CSR, file-backed entries an overlay-inclusive view
         of the mapped base — the kernel is instantiated per backing, so
         neither pays per-edge dispatch *)
      let source = Catalog.eval_source entry in
      let sel, report =
        match Gps_query.Eval.select_source_report_result ~deadline source q with
        | Ok (sel, r) ->
            let report =
              if want_report then
                let fields =
                  match Gps_query.Eval.report_to_json r with
                  | Json.Object fields -> fields
                  | other -> [ ("report", other) ]
                in
                Some (Json.Object (("cache", Json.String "miss") :: fields))
              else None
            in
            (sel, report)
        | Error { Gps_query.Eval.reason; partial } ->
            (* typed early-stop: the error carries the partial EXPLAIN
               report so the client sees how far the search got *)
            Counter.incr c_timeouts;
            stamp_eval_deltas ();
            raise
              (Fail
                 {
                   P.code = interrupt_code reason;
                   message =
                     Printf.sprintf "query evaluation %s after %d frontier visits"
                       (Deadline.reason_to_string reason)
                       partial.Gps_query.Eval.frontier_visits;
                   data = Some (Gps_query.Eval.report_to_json partial);
                 })
      in
      stamp_eval_deltas ();
      let name_of, n =
        match source with
        | Gps_query.Eval.Frozen (g, _) -> (Digraph.node_name g, Digraph.n_nodes g)
        | Gps_query.Eval.Mapped v -> (Disk_csr.node_name v, Disk_csr.n_nodes v)
      in
      let selected = ref [] in
      for v = n - 1 downto 0 do
        if sel.(v) then selected := name_of v :: !selected
      done;
      let nodes = List.sort compare !selected in
      (try
         Fault.trip "qcache.insert";
         (* the entry remembers its query's base alphabet and
            nullability, so overlay ingest can invalidate label-aware
            instead of dropping the graph's whole working set *)
         Qcache.add t.cache
           ~labels:(Gps_query.Rewrite.base_alphabet nq)
           ~nullable:(Gps_regex.Regex.nullable (Gps_query.Rpq.regex nq))
           key nodes
       with Fault.Injected _ ->
         (* degrade gracefully: the answer is correct, it just is not
            cached *)
         Counter.incr c_cache_drops);
      (normalized, nodes, `Miss, report)

(* ------------------------------------------------------------------ *)
(* graph loading *)

let builtin_graph = function
  | "figure1" -> Gps_graph.Datasets.figure1 ()
  | "transpole" -> Gps_graph.Datasets.transpole ()
  | other -> fail "bad-request" "unknown builtin %S (figure1 or transpole)" other

let graph_of_text text =
  match Gps_graph.Codec.of_string text with
  | g -> g
  | exception Gps_graph.Codec.Parse_error (line, msg) -> fail "parse" "line %d: %s" line msg

let graph_of_path path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> fail "io" "%s" msg
  in
  let is_json =
    let rec first i =
      if i >= String.length text then '\000'
      else match text.[i] with ' ' | '\t' | '\n' | '\r' -> first (i + 1) | c -> c
    in
    first 0 = '{'
  in
  if is_json then
    match Gps_graph.Json.of_string text with
    | g -> g
    | exception Gps_graph.Json.Parse_error (pos, msg) ->
        fail "parse" "%s: json error at %d: %s" path pos msg
  else
    match Gps_graph.Codec.of_string text with
    | g -> g
    | exception Gps_graph.Codec.Parse_error (line, msg) -> fail "parse" "%s:%d: %s" path line msg

(* ------------------------------------------------------------------ *)
(* session views *)

let view_of_state t (entry : Sessions.entry) =
  let g = Catalog.graph entry.catalog in
  match S.request entry.state with
  | S.Ask_label view ->
      let fragment = view.Gps_interactive.View.fragment in
      P.Ask_label
        {
          node = Digraph.node_name g view.Gps_interactive.View.node;
          radius = fragment.Gps_graph.Neighborhood.radius;
          size = Gps_graph.Neighborhood.size fragment;
          frontier = node_names g fragment.Gps_graph.Neighborhood.frontier;
        }
  | S.Ask_path tree ->
      P.Ask_path
        {
          node = Digraph.node_name g tree.Gps_interactive.View.node;
          words = tree.Gps_interactive.View.words;
          suggested = tree.Gps_interactive.View.suggested;
        }
  | S.Propose q ->
      let query, selects, _cache, _ = evaluate_cached t entry.catalog q in
      P.Proposal { query; selects }
  | S.Finished outcome ->
      let query, selects, _cache, _ = evaluate_cached t entry.catalog outcome.S.query in
      P.Finished { query; reason = P.halt_reason_to_string outcome.S.reason; selects }

let session_response t entry = P.Session { session = entry.Sessions.id; view = view_of_state t entry }

(* Run [step] on the session under its per-session lock. *)
let on_session t id step =
  fault_site "session.step";
  match Sessions.with_entry t.sessions id (fun e -> step e) with
  | Some r -> r
  | None -> fail "unknown-session" "no session %d (expired, stopped or never started)" id

(* A failed journal write must never look like success: the in-memory
   state is left untouched (the computed next state is simply dropped)
   and the client gets a typed "durability" error instead of an ack. *)
let durability_failed exn =
  Counter.incr c_durability_errors;
  match exn with
  | Fault.Injected site -> fail "durability" "injected fault at %s: step not journaled" site
  | Failure msg | Sys_error msg -> fail "durability" "journal write failed: %s" msg
  | Unix.Unix_error (e, _, _) ->
      fail "durability" "journal write failed: %s" (Unix.error_message e)
  | exn -> raise exn

(* Journal one acknowledged session step (no-op without --state-dir).
   Called after the next state is computed but before it commits. *)
let journal t ~id answer =
  match t.dur with
  | None -> ()
  | Some d -> ( try Durability.journal_answer d ~id answer with exn -> durability_failed exn)

let session_node_name (e : Sessions.entry) node =
  Digraph.node_name (Catalog.graph e.Sessions.catalog) node

(* ------------------------------------------------------------------ *)
(* endpoint implementations *)

let do_load t name source =
  let g =
    match source with
    | P.Builtin b -> builtin_graph b
    | P.Path p -> graph_of_path p
    | P.Text txt -> graph_of_text txt
  in
  let entry = Catalog.put t.catalog ~name g in
  ignore (Qcache.invalidate t.cache ~graph:name);
  P.Loaded
    {
      name;
      nodes = Digraph.n_nodes g;
      edges = Digraph.n_edges g;
      labels = Digraph.n_labels g;
      version = entry.Catalog.version;
    }

(* [No_such_file]/[Not_regular] are environment problems; everything
   else means the bytes are there but are not a packed graph we accept. *)
let open_error_code = function
  | Disk_csr.No_such_file _ | Disk_csr.Not_regular _ -> "io"
  | Disk_csr.Bad_magic | Disk_csr.Bad_endianness | Disk_csr.Bad_version _
  | Disk_csr.Truncated _ | Disk_csr.Corrupted _ ->
      "bad-file"

let do_load_file t name path =
  fault_site "catalog.load_file";
  match Catalog.put_file t.catalog ~name path with
  | Error e -> fail (open_error_code e) "%s: %s" path (Disk_csr.open_error_to_string e)
  | Ok entry ->
      ignore (Qcache.invalidate t.cache ~graph:name);
      P.Loaded
        {
          name;
          nodes = Catalog.n_nodes entry;
          edges = Catalog.n_edges entry;
          labels = Catalog.n_labels entry;
          version = entry.Catalog.version;
        }

let refresh_overlay_gauge t =
  Gauge.set_int g_overlay
    (List.fold_left (fun acc e -> acc + Catalog.overlay_edges e) 0 (Catalog.list t.catalog))

let do_add_edges t ?ev graph edges =
  let entry = graph_entry t graph in
  match Catalog.add_edges entry edges with
  | Error msg -> fail "bad-state" "%s" msg
  | Ok delta ->
      (* label-aware: only cache entries whose query alphabet meets the
         delta's labels (or nullable queries when nodes appeared) drop;
         disjoint-label answers stay warm and are still correct because
         edges are only ever added *)
      let invalidated =
        Qcache.invalidate_delta t.cache ~graph ~labels:delta.Disk_csr.labels
          ~new_nodes:delta.Disk_csr.new_nodes
      in
      refresh_overlay_gauge t;
      Option.iter
        (fun w ->
          Wide_event.set_str w "graph" graph;
          Wide_event.set_int w "edges_added" delta.Disk_csr.added;
          Wide_event.set_int w "cache_invalidated" invalidated)
        ev;
      P.Edges_added
        {
          name = graph;
          version = entry.Catalog.version;
          added = delta.Disk_csr.added;
          new_nodes = delta.Disk_csr.new_nodes;
          overlay_edges = Catalog.overlay_edges entry;
          invalidated;
        }

let do_learn t graph pos neg deadline_ms =
  let entry = graph_entry t graph in
  let g = Catalog.graph entry in
  let deadline = request_deadline t deadline_ms in
  let sample =
    match Gps_learning.Sample.of_names g ~pos ~neg with
    | s -> s
    | exception Invalid_argument msg -> fail "bad-request" "%s" msg
  in
  match Gps_learning.Learner.learn ~deadline g sample with
  | Gps_learning.Learner.Learned q ->
      let query, selects, _, _ = evaluate_cached t entry ~deadline q in
      P.Learned { query; selects }
  | Gps_learning.Learner.Failed (Gps_learning.Learner.Interrupted r) ->
      Counter.incr c_timeouts;
      fail (interrupt_code r) "learning %s before converging" (Deadline.reason_to_string r)
  | Gps_learning.Learner.Failed f ->
      fail "inconsistent" "%s" (Format.asprintf "%a" (Gps_learning.Learner.pp_failure g) f)

let do_session_start t graph strategy seed budget =
  let entry = graph_entry t graph in
  let strat =
    match Gps_interactive.Strategy.by_name ~seed strategy with
    | Ok s -> s
    | Error msg -> fail "bad-request" "%s" msg
  in
  let config = { S.default_config with S.max_questions = budget } in
  let state = S.start ~config ~strategy:strat (Catalog.graph entry) in
  let e = Sessions.start t.sessions entry state in
  (match t.dur with
  | None -> ()
  | Some d -> (
      try
        Durability.journal_start d ~id:e.Sessions.id ~graph
          ~version:entry.Catalog.version ~strategy ~seed ~budget
      with exn ->
        (* roll back: the unjournaled session must not outlive the error
           (stop also unlinks whatever partial journal exists) *)
        ignore (Sessions.stop t.sessions e.Sessions.id);
        durability_failed exn));
  session_response t e

let do_session_label t id positive =
  let deadline = request_deadline t None in
  on_session t id (fun e ->
      match S.request e.Sessions.state with
      | S.Ask_label view ->
          let pol = if positive then `Pos else `Neg in
          let next = S.answer_label ~deadline e.Sessions.state pol in
          journal t ~id
            (Journal.Label (Some (session_node_name e view.Gps_interactive.View.node), pol));
          e.Sessions.state <- next;
          session_response t e
      | _ -> fail "bad-state" "session %d is not awaiting a label" id)

let do_session_zoom t id =
  on_session t id (fun e ->
      match S.request e.Sessions.state with
      | S.Ask_label view ->
          let next = S.answer_label e.Sessions.state `Zoom in
          journal t ~id
            (Journal.Label (Some (session_node_name e view.Gps_interactive.View.node), `Zoom));
          e.Sessions.state <- next;
          session_response t e
      | _ -> fail "bad-state" "session %d is not awaiting a label (nothing to zoom)" id)

let do_session_validate t id path =
  let deadline = request_deadline t None in
  on_session t id (fun e ->
      match S.request e.Sessions.state with
      | S.Ask_path tree ->
          let word =
            match path with
            | None -> tree.Gps_interactive.View.suggested
            | Some w ->
                if List.mem w tree.Gps_interactive.View.words then w
                else fail "bad-path" "%S is not a candidate path" (String.concat "." w)
          in
          let next = S.answer_path ~deadline e.Sessions.state word in
          journal t ~id
            (Journal.Validate (Some (session_node_name e tree.Gps_interactive.View.node), word));
          e.Sessions.state <- next;
          session_response t e
      | _ -> fail "bad-state" "session %d is not awaiting path validation" id)

let do_session_propose t id accept =
  on_session t id (fun e ->
      match S.request e.Sessions.state with
      | S.Propose q ->
          let next =
            if accept then S.accept e.Sessions.state else S.refine e.Sessions.state
          in
          journal t ~id (Journal.Satisfied (Gps_query.Rpq.to_string q, accept));
          e.Sessions.state <- next;
          session_response t e
      | _ -> fail "bad-state" "session %d has no pending proposal" id)

let do_session_stop t id =
  match Sessions.stop t.sessions id with
  | Some e -> P.Stopped { session = id; questions = S.questions e.Sessions.state }
  | None -> fail "unknown-session" "no session %d (expired, stopped or never started)" id

(* ------------------------------------------------------------------ *)
(* crash recovery *)

(* Replay one journaled answer through the pure state machine. The
   journal records only what the client was acked for, so a mismatch
   between the recorded answer kind and the state's pending request
   means the journal does not describe this state machine — fail the
   session rather than guess. Replay runs without deadlines: a
   deadline-truncated original step can in principle diverge from its
   replay (documented in DESIGN §14). *)
let replay_answer state a =
  match (S.request state, a) with
  | S.Ask_label _, Journal.Label (_, pol) -> S.answer_label state pol
  | S.Ask_path _, Journal.Validate (_, word) -> S.answer_path state word
  | S.Propose _, Journal.Satisfied (_, true) -> S.accept state
  | S.Propose _, Journal.Satisfied (_, false) -> S.refine state
  | _ -> failwith "journaled answer does not match the session's pending request"

(* Rebuild live sessions from the state dir. Call once, after the
   catalog is preloaded (a journal naming an absent graph fails and is
   quarantined). Returns [None] when durability is off. *)
let recover t =
  match t.dur with
  | None -> None
  | Some d ->
      let t0 = Clock.now_ns () in
      let stats = Durability.recover d in
      let restored = ref 0 and failed = ref stats.Durability.quarantined in
      List.iter
        (fun (j : Durability.recovered_journal) ->
          let outcome =
            match Catalog.find t.catalog j.Durability.r_graph with
            | None -> Error (Printf.sprintf "graph %S not in catalog" j.Durability.r_graph)
            | Some entry -> (
                match
                  Gps_interactive.Strategy.by_name ~seed:j.Durability.r_seed
                    j.Durability.r_strategy
                with
                | Error msg -> Error msg
                | Ok strategy -> (
                    let config =
                      { S.default_config with S.max_questions = j.Durability.r_budget }
                    in
                    match
                      List.fold_left replay_answer
                        (S.start ~config ~strategy (Catalog.graph entry))
                        j.Durability.r_answers
                    with
                    | state -> Ok (entry, state)
                    | exception exn -> Error (Printexc.to_string exn)))
          in
          match outcome with
          | Ok (entry, state) ->
              ignore (Sessions.restore t.sessions ~id:j.Durability.r_id entry state);
              incr restored
          | Error msg ->
              Printf.eprintf "gps: recovery: session %d: %s (quarantined)\n%!"
                j.Durability.r_id msg;
              Durability.quarantine d ~id:j.Durability.r_id;
              incr failed)
        stats.Durability.journals;
      let elapsed = Clock.elapsed_ns t0 in
      Counter.add c_restored !restored;
      Counter.add c_recovery_failed !failed;
      Counter.add c_entries_discarded stats.Durability.entries_discarded;
      Histogram.record_ns h_recovery elapsed;
      let summary =
        {
          sessions_restored = !restored;
          sessions_failed = !failed;
          entries_discarded = stats.Durability.entries_discarded;
          bytes_discarded = stats.Durability.bytes_discarded;
          duration_ms = Clock.ns_to_s elapsed *. 1e3;
        }
      in
      t.recovery <- Some summary;
      t.recovered_until_ns <- Some (Int64.add (Clock.now_ns ()) t.recovered_window_ns);
      Gauge.set_int g_recovered !restored;
      ignore (refresh_gauges t);
      Some summary

let last_recovery t = t.recovery
let state_dir t = Option.map Durability.dir t.dur

(* Slow-query log: one JSON line on stderr per query at or over the
   [slow_ms] threshold — greppable, and structured enough to feed back
   into the trace tooling. [request_id] is the wide-event id of the
   request, so an offender joins its audit line and trace span. *)
let log_slow ?request_id ~graph ~query ~cache ~ms ~nodes ~report () =
  Counter.incr c_slow;
  let explain = match report with Some r -> [ ("explain", r) ] | None -> [] in
  let rid =
    match request_id with
    | Some id -> [ ("request_id", Json.Number (float_of_int id)) ]
    | None -> []
  in
  prerr_endline
    (Json.value_to_string
       (Json.Object
          (("slow_query", Json.Bool true)
           :: rid
          @ [
              ("graph", Json.String graph);
              ("query", Json.String query);
              ("cache", Json.String (match cache with `Hit -> "hit" | `Miss -> "miss"));
              ("ms", Json.Number (Float.round (ms *. 1000.) /. 1000.));
              ("nodes", Json.Number (float_of_int nodes));
            ]
          @ explain)))

let do_query t ?ev graph query explain deadline_ms =
  let e = graph_entry t graph in
  let q = parse_rpq query in
  Option.iter
    (fun w ->
      Wide_event.set_str w "graph" graph;
      Wide_event.set_int w "graph_version" e.Catalog.version)
    ev;
  let deadline = request_deadline t deadline_ms in
  let t0 = Clock.now_ns () in
  let query, nodes, cache, report = evaluate_cached t e ?ev ~explain ~deadline q in
  Option.iter
    (fun w ->
      Wide_event.set_str w "query" query;
      Wide_event.set_int w "nodes" (List.length nodes))
    ev;
  (match t.slow_ms with
  | Some threshold ->
      let ms = Clock.ns_to_s (Clock.elapsed_ns t0) *. 1e3 in
      if ms >= threshold then
        log_slow
          ?request_id:(Option.map Wide_event.id ev)
          ~graph ~query ~cache ~ms ~nodes:(List.length nodes) ~report ()
  | None -> ());
  P.Answer { query; nodes; cache; explain = (if explain then report else None) }

let uptime_s t = Clock.ns_to_s (Clock.elapsed_ns t.started_ns)

(* Work counters and span aggregates in one sub-document, so that the
   whole engine (eval, learner, sessions, dispatch) is visible through a
   single metrics response. Span rows come from the installed sink when
   it is an in-memory ring; counters are always on. *)
let trace_json ~timings =
  let counters =
    Json.Object (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) (Counter.snapshot ()))
  in
  let gauges = Json.Object (List.map (fun (k, v) -> (k, Json.Number v)) (Gauge.snapshot ())) in
  let base = [ ("enabled", Json.Bool (Trace.enabled ())); ("counters", counters); ("gauges", gauges) ] in
  let spans =
    match Trace.current_sink () with
    | Trace.Memory buf ->
        [ ("spans", Gps_obs.Summary.to_json ~timings (Gps_obs.Summary.aggregate (Trace.buffer_spans buf))) ]
    | Trace.Null | Trace.Jsonl _ -> []
  in
  Json.Object (base @ spans)

let metrics_json t ~timings =
  let c = Qcache.stats t.cache in
  let s = Sessions.counters t.sessions in
  Gauge.set_int g_sessions s.Sessions.active;
  Gauge.set_int g_cache c.Qcache.size;
  let int n = Json.Number (float_of_int n) in
  Json.Object
    ([
       ("endpoints", Metrics.to_json ~timings t.metrics);
       ( "cache",
         Json.Object
           [
             ("hits", int c.Qcache.hits);
             ("misses", int c.Qcache.misses);
             ("evictions", int c.Qcache.evictions);
             ("invalidations", int c.Qcache.invalidations);
             ("delta_invalidations", int c.Qcache.delta_invalidations);
             ("size", int c.Qcache.size);
             ("capacity", int c.Qcache.capacity);
           ] );
       ( "sessions",
         Json.Object
           [
             ("active", int s.Sessions.active);
             ("started", int s.Sessions.started);
             ("stopped", int s.Sessions.stopped);
             ("expired", int s.Sessions.expired);
             ("evicted", int s.Sessions.evicted);
           ] );
       ("graphs", int (Catalog.count t.catalog));
       (* The resilience/dispatch counters as a first-class block: the
          load harness reads sheds and timeouts from one response, so a
          storm report can never race the server between two metric
          calls. (The same counters also appear, process-wide, under
          trace.counters.) *)
       ( "server",
         Json.Object
           [
             ("dispatches", int (Counter.value c_dispatches));
             ("dispatch_errors", int (Counter.value c_errors));
             ("sheds", int (Counter.value c_sheds));
             ("timeouts", int (Counter.value c_timeouts));
             ("slow_queries", int (Counter.value c_slow));
             ("frame_rejections", int (Counter.value c_frame_rejects));
             ("client_disconnects", int (Counter.value c_disconnects));
             (* the most recently allocated wide-event request id: a
                storm reconciles its audit line count against the id
                range it observed here *)
             ("last_request_id", int (Wide_event.last_id ()));
           ] );
       ("trace", trace_json ~timings);
     ]
    @ if timings then [ ("uptime_s", Json.Number (uptime_s t)) ] else [])

(* One deterministic health document: uptime (timings only), the catalog
   with versions, session count, cache size/eviction totals. *)
let status_json t ~timings =
  let c = Qcache.stats t.cache in
  let s = Sessions.counters t.sessions in
  Gauge.set_int g_sessions s.Sessions.active;
  Gauge.set_int g_cache c.Qcache.size;
  let int n = Json.Number (float_of_int n) in
  Json.Object
    ((if timings then [ ("uptime_s", Json.Number (uptime_s t)) ] else [])
    @ [
        ( "graphs",
          Json.Array
            (List.map
               (fun e ->
                 Json.Object
                   ([ ("name", Json.String e.Catalog.name); ("version", int e.Catalog.version) ]
                   @
                   if Catalog.file_backed e then
                     [
                       ("file_backed", Json.Bool true);
                       ("overlay_edges", int (Catalog.overlay_edges e));
                     ]
                   else []))
               (Catalog.list t.catalog)) );
        ( "sessions",
          Json.Object [ ("active", int s.Sessions.active); ("started", int s.Sessions.started) ] );
        ( "cache",
          Json.Object
            [
              ("size", int c.Qcache.size);
              ("capacity", int c.Qcache.capacity);
              ("evictions", int c.Qcache.evictions);
              ("invalidations", int c.Qcache.invalidations);
              ("delta_invalidations", int c.Qcache.delta_invalidations);
            ] );
        ("trace_enabled", Json.Bool (Trace.enabled ()));
        ("draining", Json.Bool (draining t));
        (* durability posture and the last recovery's outcome: a client
           (or the crash harness) can tell from one status call whether
           state survives kill -9 and what the last restart replayed *)
        ( "durability",
          match t.dur with
          | None -> Json.Object [ ("enabled", Json.Bool false) ]
          | Some d ->
              Json.Object
                ([
                   ("enabled", Json.Bool true);
                   ("state_dir", Json.String (Durability.dir d));
                   ("fsync", Json.String (Wal.policy_to_string (Durability.policy d)));
                 ]
                @
                match t.recovery with
                | None -> [ ("recovered", Json.Bool false) ]
                | Some r ->
                    [
                      ("recovered", Json.Bool true);
                      ("sessions_restored", int r.sessions_restored);
                      ("sessions_failed", int r.sessions_failed);
                      ("entries_discarded", int r.entries_discarded);
                      ("bytes_discarded", int r.bytes_discarded);
                    ]
                    @
                    if timings then
                      [
                        ( "duration_ms",
                          Json.Number (Float.round (r.duration_ms *. 1000.) /. 1000.) );
                      ]
                    else [] ) );
        (* sampler health: a wedged sampler thread shows up as a
           growing last-sample age. The age and sample count are
           timing-dependent, so they ride behind [timings] like
           uptime does. *)
        ( "sampler",
          match t.series with
          | None -> Json.Object [ ("running", Json.Bool false) ]
          | Some ts ->
              Json.Object
                ([
                   ("running", Json.Bool (Timeseries.running ts));
                   ("interval_s", Json.Number (Timeseries.interval_s ts));
                 ]
                @
                if timings then
                  [
                    ("samples", int (Timeseries.total_samples ts));
                    ( "last_sample_age_s",
                      match Timeseries.last_age_s ts with
                      | None -> Json.Null
                      | Some a -> Json.Number (Float.round (a *. 1000.) /. 1000.) );
                  ]
                else [] ) );
      ])

(* ------------------------------------------------------------------ *)
(* dispatch *)

let handle t ?ev req =
  try
    match req with
    | P.Load { name; source } -> do_load t name source
    | P.Load_file { name; path } -> do_load_file t name path
    | P.Add_edges { graph; edges } -> do_add_edges t ?ev graph edges
    | P.List_graphs ->
        P.Graphs
          {
            graphs =
              List.map (fun e -> (e.Catalog.name, e.Catalog.version)) (Catalog.list t.catalog);
          }
    | P.Stats { graph } ->
        let e = graph_entry t graph in
        P.Stats_of
          {
            name = graph;
            nodes = Catalog.n_nodes e;
            edges = Catalog.n_edges e;
            labels = Catalog.labels e;
            version = e.Catalog.version;
          }
    | P.Query { graph; query; explain; deadline_ms } ->
        do_query t ?ev graph query explain deadline_ms
    | P.Learn { graph; pos; neg; deadline_ms } -> do_learn t graph pos neg deadline_ms
    | P.Session_start { graph; strategy; seed; budget } ->
        do_session_start t graph strategy seed budget
    | P.Session_show { session } -> on_session t session (fun e -> session_response t e)
    | P.Session_label { session; positive } -> do_session_label t session positive
    | P.Session_zoom { session } -> do_session_zoom t session
    | P.Session_validate { session; path } -> do_session_validate t session path
    | P.Session_propose { session; accept } -> do_session_propose t session accept
    | P.Session_stop { session } -> do_session_stop t session
    | P.Metrics { timings } -> P.Metrics_dump (metrics_json t ~timings)
    | P.Metrics_prom ->
        (* refresh the level gauges so the exposition reflects now *)
        ignore (refresh_gauges t);
        P.Prom_dump
          (Gps_obs.Prom.render
             ~extra:(Metrics.histograms t.metrics)
             ~compat:t.prom_compat ())
    | P.Status { timings } -> P.Status_dump (status_json t ~timings)
    | P.Timeseries { last; downsample } -> (
        match t.series with
        | None ->
            fail "unavailable"
              "no sampler running (start the server with --sample-every > 0)"
        | Some ts -> P.Timeseries_dump (Timeseries.window_to_json ?last ?downsample ts))
  with
  | Fail e -> P.Err e
  | Stack_overflow -> P.Err { code = "internal"; message = "stack overflow"; data = None }
  | exn -> P.Err { code = "internal"; message = Printexc.to_string exn; data = None }

let is_error = function P.Err _ -> true | _ -> false

(* Endpoint latency and span durations share the monotonic clock: the
   histograms cannot run backwards when the wall clock is stepped. *)
let record t ~endpoint ~ok ~started_ns =
  Counter.incr c_dispatches;
  if not ok then Counter.incr c_errors;
  Metrics.record t.metrics ~endpoint ~ok ~seconds:(Clock.ns_to_s (Clock.elapsed_ns started_ns))

(* Admission control: bump the in-flight count; refuse when the bounded
   budget (if any) is full. The shed path never decodes the request body
   — an overloaded server answers in O(1). *)
let admit t =
  let n = 1 + Atomic.fetch_and_add t.inflight 1 in
  Gauge.set_int g_inflight n;
  if t.max_inflight > 0 && n > t.max_inflight then begin
    ignore (Atomic.fetch_and_add t.inflight (-1));
    false
  end
  else true

let release t = Gauge.set_int g_inflight (Atomic.fetch_and_add t.inflight (-1) - 1)

let ev_endpoint ev endpoint ok =
  Wide_event.set_str ev "endpoint" endpoint;
  Wide_event.set_bool ev "ok" ok

let handle_value t ?ev v =
  Trace.with_span "server.dispatch" @@ fun sp ->
  let started_ns = Clock.now_ns () in
  (* the one id that joins audit line, trace span and slow-query log *)
  Option.iter (fun ev -> Trace.set_int sp "request_id" (Wide_event.id ev)) ev;
  let id = match v with Json.Object fields -> List.assoc_opt "id" fields | _ -> None in
  if not (admit t) then begin
    Counter.incr c_sheds;
    Trace.set_str sp "endpoint" "overloaded";
    Trace.set_bool sp "ok" false;
    Option.iter
      (fun ev ->
        ev_endpoint ev "overloaded" false;
        Wide_event.set_bool ev "shed" true;
        Wide_event.set_str ev "error" "overloaded")
      ev;
    record t ~endpoint:"overloaded" ~ok:false ~started_ns;
    P.encode_response ?id
      (P.Err
         {
           code = "overloaded";
           message =
             Printf.sprintf "server at capacity (%d requests in flight)" t.max_inflight;
           data = None;
         })
  end
  else
    Fun.protect
      ~finally:(fun () -> release t)
      (fun () ->
        let endpoint, resp =
          match P.decode_request v with
          | Error e -> ("invalid", P.Err e)
          | Ok req -> (P.op_name req, handle t ?ev req)
        in
        let ok = not (is_error resp) in
        Trace.set_str sp "endpoint" endpoint;
        Trace.set_bool sp "ok" ok;
        Option.iter
          (fun ev ->
            ev_endpoint ev endpoint ok;
            match resp with
            | P.Err e -> Wide_event.set_str ev "error" e.P.code
            | _ -> ())
          ev;
        record t ~endpoint ~ok ~started_ns;
        P.encode_response ?id resp)

(* The wire-level entry: allocates the request's wide event, measures
   the queue-wait vs service split, and emits the audit line once the
   response size is known. [recv_ns] is the frame-arrival timestamp
   from the transport; in the thread-per-connection frontend the wait
   is just read-to-dispatch time (a multiplexed frontend will report
   real queue wait through the same field). *)
let handle_line t ?recv_ns line =
  let ev = Wide_event.create () in
  let t0 = Clock.now_ns () in
  let recv_ns = match recv_ns with Some ns -> ns | None -> t0 in
  Wide_event.set_int ev "bytes_in" (String.length line);
  (* restart attribution: requests in the first post-recovery sample
     window carry recovered:true, so a latency blip right after a crash
     joins its cause in [gps audit summary] and [gps top] *)
  (match t.recovered_until_ns with
  | Some until when Int64.compare t0 until <= 0 -> Wide_event.set_bool ev "recovered" true
  | _ -> ());
  let out =
    match Json.value_of_string line with
    | v -> Json.value_to_string (handle_value t ~ev v)
    | exception Json.Parse_error (pos, msg) ->
        record t ~endpoint:"invalid" ~ok:false ~started_ns:t0;
        ev_endpoint ev "invalid" false;
        Wide_event.set_str ev "error" "parse";
        P.response_to_string
          (P.Err { code = "parse"; message = Printf.sprintf "at %d: %s" pos msg; data = None })
    | exception exn ->
        record t ~endpoint:"invalid" ~ok:false ~started_ns:t0;
        ev_endpoint ev "invalid" false;
        Wide_event.set_str ev "error" "parse";
        P.response_to_string
          (P.Err { code = "parse"; message = Printexc.to_string exn; data = None })
  in
  (match t.audit with
  | None -> ()
  | Some sink ->
      let done_ns = Clock.now_ns () in
      let us ns = Float.round (Int64.to_float ns /. 10.) /. 100. in
      let ms = us (Int64.sub done_ns recv_ns) /. 1000. in
      let ok =
        match Wide_event.fields ev |> List.assoc_opt "ok" with
        | Some (Wide_event.Bool b) -> b
        | _ -> false
      in
      Wide_event.set_int ev "bytes_out" (String.length out);
      Wide_event.set_float ev "wait_us" (us (Int64.sub t0 recv_ns));
      Wide_event.set_float ev "service_us" (us (Int64.sub done_ns t0));
      Wide_event.set_float ev "ms" (Float.round (ms *. 1000.) /. 1000.);
      Wide_event.emit sink ev ~ok ~ms);
  out

let blank line = String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) line

(* Ignore SIGPIPE exactly once, lazily, before the first byte is served:
   a peer closing mid-response must surface as an EPIPE write error (a
   counted connection close), never kill the process. *)
let sigpipe_ignored =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

(* Read one newline-terminated frame without ever buffering more than
   [max_bytes] — the slowloris/oversized-payload guard. [`Too_large]
   leaves the rest of the line unread; the caller answers once and
   closes rather than resynchronizing inside a frame of unknown size. *)
let read_frame ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | exception End_of_file -> if Buffer.length buf = 0 then `Eof else `Frame (Buffer.contents buf)
    | '\n' -> `Frame (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= max_bytes then `Too_large
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

let log_disconnect reason =
  Counter.incr c_disconnects;
  prerr_endline
    (Json.value_to_string
       (Json.Object [ ("disconnect", Json.Bool true); ("reason", Json.String reason) ]))

let serve_channels t ic oc =
  Lazy.force sigpipe_ignored;
  let write line =
    Fault.trip "sock.write";
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match read_frame ic ~max_bytes:t.max_frame_bytes with
    | `Eof -> ()
    | `Too_large ->
        Counter.incr c_frame_rejects;
        write
          (P.response_to_string
             (P.Err
                {
                  code = "frame-too-large";
                  message =
                    Printf.sprintf "request frame exceeds %d bytes" t.max_frame_bytes;
                  data = None;
                }))
        (* and close: the remainder of the oversized frame is unread *)
    | `Frame line ->
        let recv_ns = Clock.now_ns () in
        if blank line then loop ()
        else begin
          write (handle_line t ~recv_ns line);
          loop ()
        end
  in
  try loop () with
  | Fault.Injected site -> log_disconnect ("injected fault at " ^ site)
  | Sys_error msg -> log_disconnect msg

(* ------------------------------------------------------------------ *)
(* TCP: one thread per connection *)

type tcp_server = {
  sock : Unix.file_descr;
  port : int;
  mutable running : bool;
  mutable acceptor : Thread.t option;
  conns : int Atomic.t;  (* live connections (accepted, not yet closed) *)
  conn_fds : (Unix.file_descr, unit) Hashtbl.t;
  conn_lock : Mutex.t;
}

let start_tcp t ?(host = "127.0.0.1") ~port () =
  Lazy.force sigpipe_ignored;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let server =
    {
      sock;
      port;
      running = true;
      acceptor = None;
      conns = Atomic.make 0;
      conn_fds = Hashtbl.create 16;
      conn_lock = Mutex.create ();
    }
  in
  let forget fd =
    Mutex.lock server.conn_lock;
    Hashtbl.remove server.conn_fds fd;
    Mutex.unlock server.conn_lock;
    ignore (Atomic.fetch_and_add server.conns (-1))
  in
  let connection fd () =
    (* per-connection read/write timeouts: a peer that stops draining or
       feeding us cannot hold the thread forever *)
    (match t.io_timeout_s with
    | Some sec -> (
        try
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO sec;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO sec
        with Unix.Unix_error _ | Invalid_argument _ -> ())
    | None -> ());
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try serve_channels t ic oc with _ -> ());
    (try close_out oc (* flushes and closes fd *) with _ -> ());
    forget fd
  in
  let rec accept_loop () =
    if server.running then
      match Unix.accept sock with
      | fd, _ ->
          Mutex.lock server.conn_lock;
          Hashtbl.replace server.conn_fds fd ();
          Mutex.unlock server.conn_lock;
          ignore (Atomic.fetch_and_add server.conns 1);
          ignore (Thread.create (connection fd) ());
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception _ -> if server.running then accept_loop ()
  in
  server.acceptor <- Some (Thread.create accept_loop ());
  server

let tcp_port s = s.port
let live_connections s = Atomic.get s.conns

let wait_tcp s = match s.acceptor with Some th -> Thread.join th | None -> ()

(* Stop accepting without touching established connections — the first
   half of both [stop_tcp] and a graceful drain, also what a signal
   handler may safely call. *)
let request_stop s =
  s.running <- false;
  (try Unix.shutdown s.sock Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close s.sock with _ -> ()

let stop_tcp s =
  request_stop s;
  wait_tcp s

let each_conn s f =
  Mutex.lock s.conn_lock;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) s.conn_fds [] in
  Mutex.unlock s.conn_lock;
  List.iter (fun fd -> try f fd with Unix.Unix_error _ | Invalid_argument _ -> ()) fds

let drain_tcp t s ?(grace_s = 5.0) () =
  (* 1. no new connections *)
  request_stop s;
  wait_tcp s;
  (* 2. cancel in-flight work: every request deadline embeds the drain
     token, so running evaluations unwind with a typed "cancelled" *)
  begin_drain t;
  (* 3. half-close the read side of every live connection: pending
     responses still flush, but no further request can arrive and idle
     keep-alive readers see EOF *)
  each_conn s (fun fd -> Unix.shutdown fd Unix.SHUTDOWN_RECEIVE);
  (* 4. wait for connection threads to finish, up to the grace period *)
  let t0 = Clock.now_ns () in
  while Atomic.get s.conns > 0 && Clock.ns_to_s (Clock.elapsed_ns t0) < grace_s do
    Thread.yield ();
    Thread.delay 0.01
  done;
  (* 5. force-close stragglers *)
  let stragglers = Atomic.get s.conns in
  if stragglers > 0 then each_conn s (fun fd -> Unix.shutdown fd Unix.SHUTDOWN_ALL);
  stragglers
