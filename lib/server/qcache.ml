(* Registered mirrors of the per-instance totals: the timeseries sampler
   reads the global counter registry, and the cache hit ratio per
   interval comes from these deltas. *)
let c_hits = Gps_obs.Counter.make "qcache.hits"
let c_misses = Gps_obs.Counter.make "qcache.misses"
let c_evictions = Gps_obs.Counter.make "qcache.evictions"
let c_invalidations = Gps_obs.Counter.make "qcache.invalidations"
let c_delta_invalidations = Gps_obs.Counter.make "qcache.delta_invalidations"

type key = { graph : string; version : int; query : string }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  delta_invalidations : int;
  size : int;
  capacity : int;
}

type slot = {
  value : string list;
  labels : string list option;  (* sorted base alphabet; None = unknown *)
  nullable : bool;
  mutable stamp : int;
}

type t = {
  tbl : (key, slot) Hashtbl.t;
  capacity : int;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable delta_invalidations : int;
}

let create ?(capacity = 256) () =
  {
    tbl = Hashtbl.create (max 16 capacity);
    capacity = max 0 capacity;
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    delta_invalidations = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some slot ->
          t.tick <- t.tick + 1;
          slot.stamp <- t.tick;
          t.hits <- t.hits + 1;
          Gps_obs.Counter.incr c_hits;
          Some slot.value
      | None ->
          t.misses <- t.misses + 1;
          Gps_obs.Counter.incr c_misses;
          None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best <= slot.stamp -> acc
        | _ -> Some (key, slot.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1;
      Gps_obs.Counter.incr c_evictions
  | None -> ()

let add t ?labels ?(nullable = true) key value =
  if t.capacity > 0 then
    with_lock t (fun () ->
        if Hashtbl.mem t.tbl key then Hashtbl.remove t.tbl key
        else if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { value; labels; nullable; stamp = t.tick })

let invalidate t ~graph =
  with_lock t (fun () ->
      let doomed =
        Hashtbl.fold (fun key _ acc -> if key.graph = graph then key :: acc else acc) t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed;
      let n = List.length doomed in
      t.invalidations <- t.invalidations + n;
      if n > 0 then Gps_obs.Counter.add c_invalidations n;
      n)

(* both lists sorted ascending *)
let rec intersects xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> false
  | x :: xs', y :: ys' ->
      let c = String.compare x y in
      if c = 0 then true else if c < 0 then intersects xs' ys else intersects xs ys'

let invalidate_delta t ~graph ~labels ~new_nodes =
  with_lock t (fun () ->
      let touched slot =
        match slot.labels with
        | None -> true (* unknown alphabet: conservatively touched *)
        | Some ls -> intersects ls labels || (new_nodes > 0 && slot.nullable)
      in
      let doomed =
        Hashtbl.fold
          (fun key slot acc -> if key.graph = graph && touched slot then key :: acc else acc)
          t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed;
      let n = List.length doomed in
      t.delta_invalidations <- t.delta_invalidations + n;
      if n > 0 then Gps_obs.Counter.add c_delta_invalidations n;
      n)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        delta_invalidations = t.delta_invalidations;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })
