(** Session durability: one checksummed WAL per live session.

    The interactive dialog is the product — every label the user gives
    is irreplaceable — so with [--state-dir] the server journals each
    acknowledged session mutation to
    [DIR/session-<id>.wal] ({!Gps_graph.Wal} framing, payloads in the
    {!Gps_interactive.Journal} JSON answer encoding plus one leading
    [start] record carrying graph name/version, strategy, seed and
    budget). The append happens {e before} the in-memory state commits
    and the response is written: an acknowledged step is durable per the
    fsync policy, and a failed append surfaces as a typed ["durability"]
    error with the session state unchanged.

    On restart, {!recover} re-reads every journal (truncating torn
    tails, quarantining unparseable ones as [.failed] so one bad file
    cannot wedge every boot) and hands the server the typed entries to
    replay through the deterministic {!Gps_interactive.Session} state
    machine. The journal file of a recovered session stays open for
    further appends, so a session can survive any number of crashes.

    Stopping, expiring or evicting a session discards its journal —
    the WAL is a redo log for {e live} dialogs, not an archive. *)

type t

val load : dir:string -> policy:Gps_graph.Wal.fsync_policy -> (t, string) result
(** Create [dir] if needed (parents too) and fsync it so the directory
    itself survives a crash. *)

val dir : t -> string
val policy : t -> Gps_graph.Wal.fsync_policy

val session_path : t -> int -> string
(** [DIR/session-<id>.wal]. *)

(** {1 Journaling}

    All three raise on failure — {!Gps_obs.Fault.Injected} from the
    [wal.append]/[store.fsync] probes, or the underlying I/O error —
    and the caller must translate that into a degraded (non-acked)
    response. *)

val journal_start :
  t ->
  id:int ->
  graph:string ->
  version:int ->
  strategy:string ->
  seed:int ->
  budget:int option ->
  unit
(** Open the session's WAL and write the [start] record. *)

val journal_answer : t -> id:int -> Gps_interactive.Journal.answer -> unit
(** Append one acknowledged step. The session's WAL must be open (from
    {!journal_start} or {!recover}). *)

(** {1 Lifecycle} *)

val discard : t -> id:int -> unit
(** Close and delete the session's journal (stop/expiry/eviction).
    Harmless if none exists. *)

val quarantine : t -> id:int -> unit
(** Close the journal and rename it to [.failed] — for journals whose
    replay failed, so the data survives for forensics without
    re-failing every restart. *)

val close : t -> unit
(** Close every open journal (files remain for the next boot). *)

(** {1 Recovery} *)

type recovered_journal = {
  r_id : int;
  r_graph : string;
  r_version : int;  (** catalog version at start time (informational) *)
  r_strategy : string;
  r_seed : int;
  r_budget : int option;
  r_answers : Gps_interactive.Journal.answer list;  (** in append order *)
  r_bytes_discarded : int;  (** torn/corrupt tail bytes truncated *)
}

type recover_stats = {
  journals : recovered_journal list;  (** ascending id *)
  quarantined : int;  (** journals unreadable/unparseable, moved aside *)
  entries_discarded : int;
      (** truncated journal tails — each at most one in-flight,
          unacknowledged record under [fsync=always] *)
  bytes_discarded : int;
}

val recover : t -> recover_stats
(** Scan the state dir, recover every [session-*.wal] (tails truncated
    in place) and keep each successfully parsed journal open for
    further appends. Deterministic: journals are processed in id
    order. A journal with zero records (a crash between creation and
    the start-record append — nothing was ever acknowledged) is
    deleted silently rather than quarantined. *)
