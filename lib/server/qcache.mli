(** The query-result cache.

    RPQ evaluation is the service's unit of work, and non-expert users
    overwhelmingly re-run the same handful of queries on the same shared
    graphs — exactly the shape an LRU cache amortizes. Entries are keyed
    by the {e normalized} query string (parse → graph-specialize →
    re-print, so [(tram+bus)*.cinema] and [(bus+tram)*.cinema] share one
    entry; see {!Gps_query.Rewrite.specialize}) crossed with the graph
    name {e and version}: a reload bumps the catalog version, so stale
    results can never be served even before {!invalidate} reclaims them.

    {2 Label-aware delta invalidation}

    Overlay ingest on a file-backed graph does not bump the version —
    it would evict the whole graph's working set on every small batch.
    Instead each entry remembers the query's base-label alphabet
    ({!Gps_query.Rewrite.base_alphabet}) and whether its language is
    nullable. A batch of new edges can only change an answer if the
    query mentions one of the batch's labels — or, when the batch
    interns {e new nodes}, if the query matches ε (every node selects
    itself, so new nodes join the answer of any nullable query).
    {!invalidate_delta} drops exactly those entries; disjoint-label
    results stay warm. This is sound because graphs only grow (no edge
    deletion anywhere in the system) and the query algebra has no
    negation: adding edges of labels a query never mentions cannot
    create or destroy any path the query can read.

    Thread-safe (one internal mutex). Lookups and insertions are O(1)
    amortized except eviction, which scans for the least recently used
    entry — capacities are small (hundreds), and the scan keeps the
    structure simple enough to hold no lock during evaluation. A
    [capacity] of 0 disables caching (every lookup misses, nothing is
    stored), which the benchmark harness uses as its cold-cache
    baseline. *)

type key = { graph : string; version : int; query : string }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** entries dropped by {!invalidate} *)
  delta_invalidations : int;  (** entries dropped by {!invalidate_delta} *)
  size : int;
  capacity : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256. *)

val find : t -> key -> string list option
(** Counts a hit or a miss, and refreshes the entry's recency. *)

val add : t -> ?labels:string list -> ?nullable:bool -> key -> string list -> unit
(** Insert, evicting the least recently used entry when full. Replaces
    any existing value under the same key. [labels] is the query's
    sorted base alphabet and [nullable] whether it matches ε — the
    facts {!invalidate_delta} filters on. Omitted (the conservative
    default), the entry is treated as touched by {e every} delta. *)

val invalidate : t -> graph:string -> int
(** Drop every entry of the named graph (any version); returns how many
    were dropped. Called on reload so superseded snapshots release their
    memory promptly. *)

val invalidate_delta : t -> graph:string -> labels:string list -> new_nodes:int -> int
(** Drop the named graph's entries that a delta with these (sorted)
    labels can affect: label sets intersect, or [new_nodes > 0] and the
    entry's query is nullable. Returns how many were dropped. *)

val stats : t -> stats
