(** The query-result cache.

    RPQ evaluation is the service's unit of work, and non-expert users
    overwhelmingly re-run the same handful of queries on the same shared
    graphs — exactly the shape an LRU cache amortizes. Entries are keyed
    by the {e normalized} query string (parse → graph-specialize →
    re-print, so [(tram+bus)*.cinema] and [(bus+tram)*.cinema] share one
    entry; see {!Gps_query.Rewrite.specialize}) crossed with the graph
    name {e and version}: a reload bumps the catalog version, so stale
    results can never be served even before {!invalidate} reclaims them.

    Thread-safe (one internal mutex). Lookups and insertions are O(1)
    amortized except eviction, which scans for the least recently used
    entry — capacities are small (hundreds), and the scan keeps the
    structure simple enough to hold no lock during evaluation. A
    [capacity] of 0 disables caching (every lookup misses, nothing is
    stored), which the benchmark harness uses as its cold-cache
    baseline. *)

type key = { graph : string; version : int; query : string }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** entries dropped by {!invalidate} *)
  size : int;
  capacity : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256. *)

val find : t -> key -> string list option
(** Counts a hit or a miss, and refreshes the entry's recency. *)

val add : t -> key -> string list -> unit
(** Insert, evicting the least recently used entry when full. Replaces
    any existing value under the same key. *)

val invalidate : t -> graph:string -> int
(** Drop every entry of the named graph (any version); returns how many
    were dropped. Called on reload so superseded snapshots release their
    memory promptly. *)

val stats : t -> stats
