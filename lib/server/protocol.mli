(** The GPS service wire protocol.

    Requests and responses are single JSON objects; on the wire each is
    one line (newline-delimited JSON). The codec is total in both
    directions: {!decode_request} turns any {!Gps_graph.Json.value} into
    either a typed request or a structured {!error} — it never raises —
    and [decode_request (encode_request r) = Ok r] for every request (the
    QCheck property suite pins this down, and the same round-trip holds
    for responses).

    A request object carries an ["op"] discriminator plus operands, e.g.
    {v
    {"op":"query","graph":"fig","query":"(tram+bus)*.cinema"}
    v}
    A response object carries ["ok"] plus either a ["kind"]-tagged payload
    or an ["error"] object with ["code"] and ["message"]. An optional
    ["id"] request field is echoed verbatim by the server (see
    {!Server.handle_value}); it is transport envelope, not part of the
    typed protocol. *)

type load_source =
  | Builtin of string  (** a built-in dataset: ["figure1"] or ["transpole"] *)
  | Path of string     (** edge-list or JSON file on the server's disk *)
  | Text of string     (** inline edge-list text *)

type request =
  | Load of { name : string; source : load_source }
  | Load_file of { name : string; path : string }
      (** map a packed binary CSR file ({!Gps_graph.Disk_csr}) in place —
          no parse, no heap graph; answered with [Loaded] like [Load] *)
  | Add_edges of { graph : string; edges : (string * string * string) list }
      (** append [(src, label, dst)] triples to a file-backed graph's
          delta overlay; unknown names intern as new nodes/labels. The
          catalog version does {e not} change — the cache invalidates
          label-aware instead (see {!Qcache.invalidate_delta}) *)
  | List_graphs
  | Stats of { graph : string }
  | Query of { graph : string; query : string; explain : bool; deadline_ms : float option }
      (** [explain] asks the server for the evaluation's EXPLAIN report
          (see {!Gps_query.Eval.report}) on the answer; [deadline_ms]
          bounds the evaluation (subject to the server's cap — see
          {!Server.config}) *)
  | Learn of { graph : string; pos : string list; neg : string list; deadline_ms : float option }
  | Session_start of {
      graph : string;
      strategy : string;
      seed : int;
      budget : int option;  (** per-session cap on user answers *)
    }
  | Session_show of { session : int }
  | Session_label of { session : int; positive : bool }
  | Session_zoom of { session : int }
  | Session_validate of { session : int; path : string list option }
      (** [None] validates the system-suggested path *)
  | Session_propose of { session : int; accept : bool }
  | Session_stop of { session : int }
  | Metrics of { timings : bool }
      (** [timings = false] omits latency data (deterministic output, for
          tests) *)
  | Metrics_prom
      (** Prometheus text exposition of every registry the process
          carries (counters, gauges, histograms incl. per-endpoint
          latency) — what a scraper reads *)
  | Status of { timings : bool }
      (** one-document service health: uptime, catalog versions, session
          count, cache totals, sampler health; [timings = false] omits
          uptime and sample ages so the document is fully
          deterministic *)
  | Timeseries of { last : int option; downsample : int option }
      (** the sampler's derived window (see {!Gps_obs.Timeseries}):
          [last] restricts to the most recent n samples, [downsample]
          keeps every k-th (both >= 1). Answered with a typed
          ["unavailable"] error when the server runs without a sampler
          ([--sample-every 0]). *)

type error = { code : string; message : string; data : Gps_graph.Json.value option }
(** Stable machine-readable [code] (["parse"], ["bad-request"],
    ["unknown-graph"], ["unknown-session"], ["bad-query"], ["bad-state"],
    ["bad-path"], ["bad-file"], ["inconsistent"], ["timeout"],
    ["cancelled"], ["overloaded"], ["frame-too-large"], ["unavailable"],
    ["io"], ["internal"]) plus a human message. [load_file] answers
    ["io"] for a missing or non-regular path and ["bad-file"] for bytes
    that fail packed-graph validation (magic, version, size, offsets —
    see {!Gps_graph.Disk_csr.open_error}). [data] optionally attaches
    structured context — a ["timeout"]/["cancelled"] error on a query
    carries the {e partial} EXPLAIN report of the work done before the
    deadline fired. *)

(** What an interactive session asks next — the server-side image of
    {!Gps_interactive.Session.request}. *)
type session_view =
  | Ask_label of {
      node : string;
      radius : int;
      size : int;          (** fragment node count *)
      frontier : string list;  (** the "…" nodes, sorted *)
    }
  | Ask_path of { node : string; words : string list list; suggested : string list }
  | Proposal of { query : string; selects : string list }
  | Finished of { query : string; reason : string; selects : string list }

type response =
  | Loaded of { name : string; nodes : int; edges : int; labels : int; version : int }
  | Edges_added of {
      name : string;
      version : int;  (** unchanged by the ingest — echoed for clients *)
      added : int;  (** edges actually appended (duplicates skipped) *)
      new_nodes : int;
      overlay_edges : int;  (** overlay total after this batch *)
      invalidated : int;  (** cache entries dropped by the delta *)
    }
  | Graphs of { graphs : (string * int) list }  (** (name, version), sorted by name *)
  | Stats_of of { name : string; nodes : int; edges : int; labels : string list; version : int }
  | Answer of {
      query : string;
      nodes : string list;
      cache : [ `Hit | `Miss ];
      explain : Gps_graph.Json.value option;
    }
      (** [query] is the normalized (graph-specialized) form used as the
          cache key; [explain] is present iff the request asked for it —
          {!Gps_query.Eval.report_to_json} on a miss, the one-field
          object [{"cache":"hit"}] on a hit (a hit runs no evaluation,
          so there is nothing to narrate) *)
  | Learned of { query : string; selects : string list }
  | Session of { session : int; view : session_view }
  | Stopped of { session : int; questions : int }
  | Metrics_dump of Gps_graph.Json.value
  | Prom_dump of string
      (** Prometheus exposition text (it travels as a JSON string field
          ["text"] — the transport stays one-line JSON) *)
  | Status_dump of Gps_graph.Json.value
  | Timeseries_dump of Gps_graph.Json.value
      (** {!Gps_obs.Timeseries.window_to_json} output: [interval_s],
          [total_samples], and derived [points] *)
  | Err of error

val op_name : request -> string
(** The ["op"] string, used as the metrics endpoint key. *)

val encode_request : request -> Gps_graph.Json.value
val decode_request : Gps_graph.Json.value -> (request, error) result

val encode_response : ?id:Gps_graph.Json.value -> response -> Gps_graph.Json.value
(** [id], when given, is echoed as an ["id"] field. *)

val decode_response : Gps_graph.Json.value -> (response, error) result

val request_to_string : request -> string
(** One-line JSON. *)

val response_to_string : ?id:Gps_graph.Json.value -> response -> string

val halt_reason_to_string : Gps_interactive.Session.halt_reason -> string
(** ["satisfied"], ["no-informative-nodes"], ["budget-exhausted"],
    ["inconsistent"], ["timed-out"], ["cancelled"]. *)
