module Json = Gps_graph.Json
module Wal = Gps_graph.Wal
module Journal = Gps_interactive.Journal

type t = {
  dir : string;
  policy : Wal.fsync_policy;
  lock : Mutex.t;
  wals : (int, Wal.t) Hashtbl.t;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ~dir ~policy =
  match mkdir_p dir with
  | () ->
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "%s: not a directory" dir)
      else begin
        Wal.fsync_dir (Filename.dirname dir);
        Ok { dir; policy; lock = Mutex.create (); wals = Hashtbl.create 16 }
      end
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" dir (Unix.error_message e))

let dir t = t.dir
let policy t = t.policy
let session_path t id = Filename.concat t.dir (Printf.sprintf "session-%d.wal" id)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- record codec ---------------------------------------------------- *)

let start_record ~graph ~version ~strategy ~seed ~budget =
  Json.value_to_string
    (Json.Object
       [
         ("ev", Json.String "start");
         ("graph", Json.String graph);
         ("version", Json.Number (float_of_int version));
         ("strategy", Json.String strategy);
         ("seed", Json.Number (float_of_int seed));
         ( "budget",
           match budget with
           | Some b -> Json.Number (float_of_int b)
           | None -> Json.Null );
       ])

let answer_record a =
  Json.value_to_string
    (Json.Object [ ("ev", Json.String "answer"); ("a", Journal.answer_to_json a) ])

type parsed =
  | Start of {
      graph : string;
      version : int;
      strategy : string;
      seed : int;
      budget : int option;
    }
  | Answer of Journal.answer

let parse_record payload =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* v =
    match Json.value_of_string payload with
    | v -> Ok v
    | exception Json.Parse_error (pos, msg) ->
        Error (Printf.sprintf "json error at %d: %s" pos msg)
  in
  let str k =
    match Json.member k v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let num k =
    match Json.member k v with
    | Some (Json.Number n) -> Ok (int_of_float n)
    | _ -> Error (Printf.sprintf "missing number field %S" k)
  in
  let opt_num k =
    match Json.member k v with
    | Some (Json.Number n) -> Ok (Some (int_of_float n))
    | Some Json.Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "field %S is not a number" k)
  in
  let* ev = str "ev" in
  match ev with
  | "start" ->
      let* graph = str "graph" in
      let* version = num "version" in
      let* strategy = str "strategy" in
      let* seed = num "seed" in
      let* budget = opt_num "budget" in
      Ok (Start { graph; version; strategy; seed; budget })
  | "answer" -> (
      match Json.member "a" v with
      | Some a -> (
          match Journal.answer_of_json a with
          | Ok a -> Ok (Answer a)
          | Error e -> Error e)
      | None -> Error "missing field \"a\"")
  | other -> Error (Printf.sprintf "unknown record kind %S" other)

(* ---- journaling ------------------------------------------------------ *)

let journal_start t ~id ~graph ~version ~strategy ~seed ~budget =
  let path = session_path t id in
  match Wal.open_append ~policy:t.policy path with
  | Error e -> failwith e
  | Ok (w, _) ->
      with_lock t (fun () -> Hashtbl.replace t.wals id w);
      Wal.append w (start_record ~graph ~version ~strategy ~seed ~budget)

let journal_answer t ~id a =
  let w =
    match with_lock t (fun () -> Hashtbl.find_opt t.wals id) with
    | Some w -> w
    | None -> failwith (Printf.sprintf "no open journal for session %d" id)
  in
  Wal.append w (answer_record a)

(* ---- lifecycle ------------------------------------------------------- *)

let take t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.wals id with
      | Some w ->
          Hashtbl.remove t.wals id;
          Some w
      | None -> None)

let discard t ~id =
  (match take t id with Some w -> (try Wal.close w with _ -> ()) | None -> ());
  try Sys.remove (session_path t id) with Sys_error _ -> ()

let quarantine t ~id =
  (match take t id with Some w -> (try Wal.close w with _ -> ()) | None -> ());
  let path = session_path t id in
  if Sys.file_exists path then (
    (try Sys.rename path (path ^ ".failed") with Sys_error _ -> ());
    Wal.fsync_dir t.dir)

let close t =
  with_lock t (fun () ->
      Hashtbl.iter (fun _ w -> try Wal.close w with _ -> ()) t.wals;
      Hashtbl.reset t.wals)

(* ---- recovery -------------------------------------------------------- *)

type recovered_journal = {
  r_id : int;
  r_graph : string;
  r_version : int;
  r_strategy : string;
  r_seed : int;
  r_budget : int option;
  r_answers : Journal.answer list;
  r_bytes_discarded : int;
}

type recover_stats = {
  journals : recovered_journal list;
  quarantined : int;
  entries_discarded : int;
  bytes_discarded : int;
}

let session_id_of_file name =
  if
    String.length name > 12
    && String.sub name 0 8 = "session-"
    && Filename.check_suffix name ".wal"
  then int_of_string_opt (String.sub name 8 (String.length name - 12))
  else None

let parse_journal entries =
  match entries with
  | [] -> Error "empty journal (no start record)"
  | first :: rest -> (
      match parse_record first with
      | Error e -> Error ("start record: " ^ e)
      | Ok (Answer _) -> Error "first record is not a start record"
      | Ok (Start { graph; version; strategy; seed; budget }) ->
          let rec answers acc i = function
            | [] -> Ok (List.rev acc)
            | r :: rest -> (
                match parse_record r with
                | Ok (Answer a) -> answers (a :: acc) (i + 1) rest
                | Ok (Start _) -> Error (Printf.sprintf "record %d: duplicate start" i)
                | Error e -> Error (Printf.sprintf "record %d: %s" i e))
          in
          match answers [] 1 rest with
          | Error _ as e -> e
          | Ok a -> Ok (graph, version, strategy, seed, budget, a))

let recover t =
  let ids =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter_map session_id_of_file
    |> List.sort_uniq compare
  in
  let journals = ref [] in
  let quarantined = ref 0 in
  let entries_discarded = ref 0 in
  let bytes_discarded = ref 0 in
  List.iter
    (fun id ->
      let path = session_path t id in
      match Wal.open_append ~policy:t.policy path with
      | Error msg ->
          Printf.eprintf "gps: recovery: %s: %s (quarantined)\n%!" path msg;
          incr quarantined;
          quarantine t ~id
      | Ok (w, r) -> (
          let dropped = Wal.bytes_discarded r in
          if dropped > 0 then begin
            incr entries_discarded;
            bytes_discarded := !bytes_discarded + dropped
          end;
          match parse_journal r.Wal.entries with
          | Error _ when r.Wal.entries = [] ->
              (* a crash between journal creation and the start-record
                 append: zero records means zero acknowledged state, so
                 there is nothing to preserve — delete, don't quarantine *)
              Wal.close w;
              discard t ~id
          | Error msg ->
              Printf.eprintf "gps: recovery: %s: %s (quarantined)\n%!" path msg;
              Wal.close w;
              incr quarantined;
              quarantine t ~id
          | Ok (graph, version, strategy, seed, budget, answers) ->
              with_lock t (fun () -> Hashtbl.replace t.wals id w);
              journals :=
                {
                  r_id = id;
                  r_graph = graph;
                  r_version = version;
                  r_strategy = strategy;
                  r_seed = seed;
                  r_budget = budget;
                  r_answers = answers;
                  r_bytes_discarded = dropped;
                }
                :: !journals))
    ids;
  {
    journals = List.rev !journals;
    quarantined = !quarantined;
    entries_discarded = !entries_discarded;
    bytes_discarded = !bytes_discarded;
  }
