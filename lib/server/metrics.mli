(** Per-endpoint service metrics.

    Monotonic counters (requests, errors) and a decade latency histogram
    per endpoint, all dumpable as JSON through the [metrics] endpoint so
    load tests and later scaling PRs have a trajectory to compare
    against. Recording is a handful of integer bumps under one mutex —
    cheap enough to sit on every request.

    [to_json ~timings:false] omits everything latency-derived, leaving a
    fully deterministic document (the cram tests rely on this).

    Clock contract: [seconds] must be a {e monotonic} duration —
    callers measure with {!Gps_obs.Clock} (the same source spans use),
    never by differencing [Unix.gettimeofday], so a stepped wall clock
    cannot make a histogram go backwards. *)

type t

val create : unit -> t

val record : t -> endpoint:string -> ok:bool -> seconds:float -> unit

val bucket_labels : string list
(** The histogram decade upper bounds, in order:
    ["le_10us"; "le_100us"; "le_1ms"; "le_10ms"; "le_100ms"; "le_1s";
    "gt_1s"]. *)

val to_json : ?timings:bool -> t -> Gps_graph.Json.value
(** An object keyed by endpoint name (sorted), each value carrying
    ["requests"], ["errors"] and — with [timings] (default true) —
    ["latency"] with ["count"], ["mean_us"], ["max_us"] and the
    ["buckets"] histogram. *)
