(** Per-endpoint service metrics.

    Monotonic counters (requests, errors) and a latency distribution per
    endpoint. The distribution is a private {!Gps_obs.Histogram}
    (lock-free log buckets shared with the rest of the engine's
    telemetry); the JSON dump projects it onto the same decade buckets
    this endpoint has always exposed, so load tests and later scaling
    PRs keep a stable trajectory to compare against, while the
    Prometheus endpoint exports the full-resolution buckets via
    {!histograms}.

    [to_json ~timings:false] omits everything latency-derived, leaving a
    fully deterministic document (the cram tests rely on this).

    Clock contract: [seconds] must be a {e monotonic} duration —
    callers measure with {!Gps_obs.Clock} (the same source spans use),
    never by differencing [Unix.gettimeofday], so a stepped wall clock
    cannot make a histogram go backwards. *)

type t

val create : unit -> t

val record : t -> endpoint:string -> ok:bool -> seconds:float -> unit

val bucket_labels : string list
(** The JSON histogram decade upper bounds, in order:
    ["le_10us"; "le_100us"; "le_1ms"; "le_10ms"; "le_100ms"; "le_1s";
    "gt_1s"]. *)

val histograms : t -> Gps_obs.Histogram.snapshot list
(** One full-resolution snapshot per endpoint (sorted by endpoint name),
    each labelled [("endpoint", name)] under the metric
    ["server.request_ns"] — what the server feeds
    {!Gps_obs.Prom.render}'s [extra]. *)

val to_json : ?timings:bool -> t -> Gps_graph.Json.value
(** An object keyed by endpoint name (sorted), each value carrying
    ["requests"], ["errors"] and — with [timings] (default true) —
    ["latency"] with ["count"], ["mean_us"], ["max_us"] and the
    ["buckets"] decade histogram. *)
