module Json = Gps_graph.Json

type load_source = Builtin of string | Path of string | Text of string

type request =
  | Load of { name : string; source : load_source }
  | Load_file of { name : string; path : string }
  | Add_edges of { graph : string; edges : (string * string * string) list }
  | List_graphs
  | Stats of { graph : string }
  | Query of { graph : string; query : string; explain : bool; deadline_ms : float option }
  | Learn of { graph : string; pos : string list; neg : string list; deadline_ms : float option }
  | Session_start of { graph : string; strategy : string; seed : int; budget : int option }
  | Session_show of { session : int }
  | Session_label of { session : int; positive : bool }
  | Session_zoom of { session : int }
  | Session_validate of { session : int; path : string list option }
  | Session_propose of { session : int; accept : bool }
  | Session_stop of { session : int }
  | Metrics of { timings : bool }
  | Metrics_prom
  | Status of { timings : bool }
  | Timeseries of { last : int option; downsample : int option }

type error = { code : string; message : string; data : Json.value option }

type session_view =
  | Ask_label of { node : string; radius : int; size : int; frontier : string list }
  | Ask_path of { node : string; words : string list list; suggested : string list }
  | Proposal of { query : string; selects : string list }
  | Finished of { query : string; reason : string; selects : string list }

type response =
  | Loaded of { name : string; nodes : int; edges : int; labels : int; version : int }
  | Edges_added of {
      name : string;
      version : int;
      added : int;
      new_nodes : int;
      overlay_edges : int;
      invalidated : int;
    }
  | Graphs of { graphs : (string * int) list }
  | Stats_of of { name : string; nodes : int; edges : int; labels : string list; version : int }
  | Answer of {
      query : string;
      nodes : string list;
      cache : [ `Hit | `Miss ];
      explain : Json.value option;
    }
  | Learned of { query : string; selects : string list }
  | Session of { session : int; view : session_view }
  | Stopped of { session : int; questions : int }
  | Metrics_dump of Json.value
  | Prom_dump of string
  | Status_dump of Json.value
  | Timeseries_dump of Json.value
  | Err of error

let op_name = function
  | Load _ -> "load"
  | Load_file _ -> "load_file"
  | Add_edges _ -> "add_edges"
  | List_graphs -> "list-graphs"
  | Stats _ -> "stats"
  | Query _ -> "query"
  | Learn _ -> "learn"
  | Session_start _ -> "session-start"
  | Session_show _ -> "session-show"
  | Session_label _ -> "session-label"
  | Session_zoom _ -> "session-zoom"
  | Session_validate _ -> "session-validate"
  | Session_propose _ -> "session-propose"
  | Session_stop _ -> "session-stop"
  | Metrics _ -> "metrics"
  | Metrics_prom -> "metrics_prom"
  | Status _ -> "status"
  | Timeseries _ -> "timeseries"

(* ------------------------------------------------------------------ *)
(* JSON building blocks *)

let int n = Json.Number (float_of_int n)
let str s = Json.String s
let strings l = Json.Array (List.map str l)
let word w = str (String.concat "." w)

(* ------------------------------------------------------------------ *)
(* encoding *)

let deadline_field = function
  | None -> []
  | Some ms -> [ ("deadline_ms", Json.Number ms) ]

let encode_request r =
  let op = str (op_name r) in
  let fields =
    match r with
    | Load { name; source } ->
        let src =
          match source with
          | Builtin b -> ("builtin", str b)
          | Path p -> ("path", str p)
          | Text t -> ("text", str t)
        in
        [ ("name", str name); src ]
    | Load_file { name; path } -> [ ("name", str name); ("file", str path) ]
    | Add_edges { graph; edges } ->
        [
          ("graph", str graph);
          ( "edges",
            Json.Array
              (List.map
                 (fun (s, l, d) -> Json.Array [ str s; str l; str d ])
                 edges) );
        ]
    | List_graphs -> []
    | Stats { graph } -> [ ("graph", str graph) ]
    | Query { graph; query; explain; deadline_ms } ->
        [ ("graph", str graph); ("query", str query) ]
        @ (if explain then [ ("explain", Json.Bool true) ] else [])
        @ deadline_field deadline_ms
    | Learn { graph; pos; neg; deadline_ms } ->
        [ ("graph", str graph); ("pos", strings pos); ("neg", strings neg) ]
        @ deadline_field deadline_ms
    | Session_start { graph; strategy; seed; budget } ->
        [ ("graph", str graph); ("strategy", str strategy); ("seed", int seed) ]
        @ (match budget with None -> [] | Some b -> [ ("budget", int b) ])
    | Session_show { session } -> [ ("session", int session) ]
    | Session_label { session; positive } ->
        [ ("session", int session); ("answer", str (if positive then "yes" else "no")) ]
    | Session_zoom { session } -> [ ("session", int session) ]
    | Session_validate { session; path } ->
        [ ("session", int session) ]
        @ (match path with None -> [] | Some p -> [ ("path", strings p) ])
    | Session_propose { session; accept } ->
        [ ("session", int session); ("accept", Json.Bool accept) ]
    | Session_stop { session } -> [ ("session", int session) ]
    | Metrics { timings } -> [ ("timings", Json.Bool timings) ]
    | Metrics_prom -> []
    | Status { timings } -> [ ("timings", Json.Bool timings) ]
    | Timeseries { last; downsample } ->
        (match last with None -> [] | Some n -> [ ("last", int n) ])
        @ (match downsample with None -> [] | Some k -> [ ("downsample", int k) ])
  in
  Json.Object (("op", op) :: fields)

let encode_view = function
  | Ask_label { node; radius; size; frontier } ->
      [
        ("ask", str "label");
        ("node", str node);
        ("radius", int radius);
        ("size", int size);
        ("frontier", strings frontier);
      ]
  | Ask_path { node; words; suggested } ->
      [
        ("ask", str "path");
        ("node", str node);
        ("words", Json.Array (List.map word words));
        ("suggested", word suggested);
      ]
  | Proposal { query; selects } ->
      [ ("ask", str "propose"); ("query", str query); ("selects", strings selects) ]
  | Finished { query; reason; selects } ->
      [
        ("ask", str "finished");
        ("query", str query);
        ("reason", str reason);
        ("selects", strings selects);
      ]

let encode_response ?id r =
  let ok_fields kind fields = (("ok", Json.Bool true) :: ("kind", str kind) :: fields) in
  let fields =
    match r with
    | Loaded { name; nodes; edges; labels; version } ->
        ok_fields "loaded"
          [
            ("name", str name);
            ("nodes", int nodes);
            ("edges", int edges);
            ("labels", int labels);
            ("version", int version);
          ]
    | Edges_added { name; version; added; new_nodes; overlay_edges; invalidated } ->
        ok_fields "edges_added"
          [
            ("name", str name);
            ("version", int version);
            ("added", int added);
            ("new_nodes", int new_nodes);
            ("overlay_edges", int overlay_edges);
            ("invalidated", int invalidated);
          ]
    | Graphs { graphs } ->
        ok_fields "graphs"
          [
            ( "graphs",
              Json.Array
                (List.map
                   (fun (name, version) ->
                     Json.Object [ ("name", str name); ("version", int version) ])
                   graphs) );
          ]
    | Stats_of { name; nodes; edges; labels; version } ->
        ok_fields "stats"
          [
            ("name", str name);
            ("nodes", int nodes);
            ("edges", int edges);
            ("labels", strings labels);
            ("version", int version);
          ]
    | Answer { query; nodes; cache; explain } ->
        ok_fields "answer"
          ([
             ("query", str query);
             ("nodes", strings nodes);
             ("cache", str (match cache with `Hit -> "hit" | `Miss -> "miss"));
           ]
          @ match explain with None -> [] | Some e -> [ ("explain", e) ])
    | Learned { query; selects } ->
        ok_fields "learned" [ ("query", str query); ("selects", strings selects) ]
    | Session { session; view } ->
        ok_fields "session" (("session", int session) :: encode_view view)
    | Stopped { session; questions } ->
        ok_fields "stopped" [ ("session", int session); ("questions", int questions) ]
    | Metrics_dump v -> ok_fields "metrics" [ ("metrics", v) ]
    | Prom_dump text -> ok_fields "metrics_prom" [ ("text", str text) ]
    | Status_dump v -> ok_fields "status" [ ("status", v) ]
    | Timeseries_dump v -> ok_fields "timeseries" [ ("series", v) ]
    | Err { code; message; data } ->
        let body =
          [ ("code", str code); ("message", str message) ]
          @ match data with None -> [] | Some d -> [ ("data", d) ]
        in
        [ ("ok", Json.Bool false); ("error", Json.Object body) ]
  in
  let fields = match id with None -> fields | Some id -> ("id", id) :: fields in
  Json.Object fields

(* ------------------------------------------------------------------ *)
(* decoding *)

let bad fmt =
  Printf.ksprintf (fun message -> Error { code = "bad-request"; message; data = None }) fmt

let ( let* ) = Result.bind

let field obj name =
  match Json.member name obj with
  | Some v -> Ok v
  | None -> bad "missing field %S" name

let opt_field obj name = Json.member name obj

let as_string what = function
  | Json.String s -> Ok s
  | _ -> bad "field %S must be a string" what

let as_bool what = function
  | Json.Bool b -> Ok b
  | _ -> bad "field %S must be a boolean" what

let as_int what = function
  | Json.Number f when Float.is_integer f && Float.abs f < 1e9 -> Ok (int_of_float f)
  | _ -> bad "field %S must be an integer" what

let as_string_list what = function
  | Json.Array items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> bad "field %S must be an array of strings" what
      in
      go [] items
  | _ -> bad "field %S must be an array of strings" what

let str_field obj name =
  let* v = field obj name in
  as_string name v

let int_field obj name =
  let* v = field obj name in
  as_int name v

let list_field obj name =
  let* v = field obj name in
  as_string_list name v

let opt_int_field obj name =
  match opt_field obj name with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* n = as_int name v in
      Ok (Some n)

let opt_ms_field obj name =
  match opt_field obj name with
  | None | Some Json.Null -> Ok None
  | Some (Json.Number f) when f > 0.0 && Float.is_finite f -> Ok (Some f)
  | Some _ -> bad "field %S must be a positive number of milliseconds" name

let session_field obj = int_field obj "session"

let decode_word = function
  | Json.String "" -> Ok []
  | Json.String s -> Ok (String.split_on_char '.' s)
  | _ -> bad "words must be strings"

let decode_request v =
  match v with
  | Json.Object _ -> (
      let* op = str_field v "op" in
      match op with
      | "load" ->
          let* name = str_field v "name" in
          let* source =
            match (opt_field v "builtin", opt_field v "path", opt_field v "text") with
            | Some b, None, None ->
                let* b = as_string "builtin" b in
                Ok (Builtin b)
            | None, Some p, None ->
                let* p = as_string "path" p in
                Ok (Path p)
            | None, None, Some t ->
                let* t = as_string "text" t in
                Ok (Text t)
            | None, None, None -> bad "load needs one of \"builtin\", \"path\" or \"text\""
            | _ -> bad "load takes exactly one of \"builtin\", \"path\" or \"text\""
          in
          Ok (Load { name; source })
      | "load_file" ->
          let* name = str_field v "name" in
          let* path = str_field v "file" in
          Ok (Load_file { name; path })
      | "add_edges" ->
          let* graph = str_field v "graph" in
          let* edges =
            let* es = field v "edges" in
            match es with
            | Json.Array items ->
                let triple = function
                  | Json.Array [ Json.String s; Json.String l; Json.String d ] -> Ok (s, l, d)
                  | _ -> bad "each edge must be a [src, label, dst] array of strings"
                in
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | e :: rest ->
                      let* e = triple e in
                      go (e :: acc) rest
                in
                go [] items
            | _ -> bad "field \"edges\" must be an array"
          in
          Ok (Add_edges { graph; edges })
      | "list-graphs" -> Ok List_graphs
      | "stats" ->
          let* graph = str_field v "graph" in
          Ok (Stats { graph })
      | "query" ->
          let* graph = str_field v "graph" in
          let* query = str_field v "query" in
          let* explain =
            match opt_field v "explain" with
            | None -> Ok false
            | Some e -> as_bool "explain" e
          in
          let* deadline_ms = opt_ms_field v "deadline_ms" in
          Ok (Query { graph; query; explain; deadline_ms })
      | "learn" ->
          let* graph = str_field v "graph" in
          let* pos = list_field v "pos" in
          let* neg = list_field v "neg" in
          let* deadline_ms = opt_ms_field v "deadline_ms" in
          Ok (Learn { graph; pos; neg; deadline_ms })
      | "session-start" ->
          let* graph = str_field v "graph" in
          let* strategy =
            match opt_field v "strategy" with
            | None -> Ok "smart"
            | Some s -> as_string "strategy" s
          in
          let* seed =
            match opt_field v "seed" with None -> Ok 1 | Some s -> as_int "seed" s
          in
          let* budget = opt_int_field v "budget" in
          Ok (Session_start { graph; strategy; seed; budget })
      | "session-show" ->
          let* session = session_field v in
          Ok (Session_show { session })
      | "session-label" ->
          let* session = session_field v in
          let* answer = str_field v "answer" in
          let* positive =
            match String.lowercase_ascii answer with
            | "yes" | "y" | "pos" -> Ok true
            | "no" | "n" | "neg" -> Ok false
            | other -> bad "unknown answer %S (yes or no)" other
          in
          Ok (Session_label { session; positive })
      | "session-zoom" ->
          let* session = session_field v in
          Ok (Session_zoom { session })
      | "session-validate" ->
          let* session = session_field v in
          let* path =
            match opt_field v "path" with
            | None | Some Json.Null -> Ok None
            | Some p ->
                let* p = as_string_list "path" p in
                Ok (Some p)
          in
          Ok (Session_validate { session; path })
      | "session-propose" ->
          let* session = session_field v in
          let* accept =
            let* a = field v "accept" in
            as_bool "accept" a
          in
          Ok (Session_propose { session; accept })
      | "session-stop" ->
          let* session = session_field v in
          Ok (Session_stop { session })
      | "metrics" ->
          let* timings =
            match opt_field v "timings" with
            | None -> Ok true
            | Some t -> as_bool "timings" t
          in
          Ok (Metrics { timings })
      | "metrics_prom" -> Ok Metrics_prom
      | "status" ->
          let* timings =
            match opt_field v "timings" with
            | None -> Ok true
            | Some t -> as_bool "timings" t
          in
          Ok (Status { timings })
      | "timeseries" ->
          let pos what = function
            | Ok (Some n) when n < 1 -> bad "field %S must be >= 1" what
            | r -> r
          in
          let* last = pos "last" (opt_int_field v "last") in
          let* downsample = pos "downsample" (opt_int_field v "downsample") in
          Ok (Timeseries { last; downsample })
      | other -> bad "unknown op %S" other)
  | _ -> Error { code = "bad-request"; message = "request must be a JSON object"; data = None }

let decode_view v =
  let* ask = str_field v "ask" in
  match ask with
  | "label" ->
      let* node = str_field v "node" in
      let* radius = int_field v "radius" in
      let* size = int_field v "size" in
      let* frontier = list_field v "frontier" in
      Ok (Ask_label { node; radius; size; frontier })
  | "path" ->
      let* node = str_field v "node" in
      let* words =
        let* ws = field v "words" in
        match ws with
        | Json.Array items ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | w :: rest ->
                  let* w = decode_word w in
                  go (w :: acc) rest
            in
            go [] items
        | _ -> bad "field \"words\" must be an array"
      in
      let* suggested =
        let* s = field v "suggested" in
        decode_word s
      in
      Ok (Ask_path { node; words; suggested })
  | "propose" ->
      let* query = str_field v "query" in
      let* selects = list_field v "selects" in
      Ok (Proposal { query; selects })
  | "finished" ->
      let* query = str_field v "query" in
      let* reason = str_field v "reason" in
      let* selects = list_field v "selects" in
      Ok (Finished { query; reason; selects })
  | other -> bad "unknown view %S" other

let decode_response v =
  match v with
  | Json.Object _ -> (
      let* ok =
        let* b = field v "ok" in
        as_bool "ok" b
      in
      if not ok then
        let* e = field v "error" in
        let* code = str_field e "code" in
        let* message = str_field e "message" in
        let data = opt_field e "data" in
        Ok (Err { code; message; data })
      else
        let* kind = str_field v "kind" in
        match kind with
        | "loaded" ->
            let* name = str_field v "name" in
            let* nodes = int_field v "nodes" in
            let* edges = int_field v "edges" in
            let* labels = int_field v "labels" in
            let* version = int_field v "version" in
            Ok (Loaded { name; nodes; edges; labels; version })
        | "edges_added" ->
            let* name = str_field v "name" in
            let* version = int_field v "version" in
            let* added = int_field v "added" in
            let* new_nodes = int_field v "new_nodes" in
            let* overlay_edges = int_field v "overlay_edges" in
            let* invalidated = int_field v "invalidated" in
            Ok (Edges_added { name; version; added; new_nodes; overlay_edges; invalidated })
        | "graphs" ->
            let* gs = field v "graphs" in
            let* graphs =
              match gs with
              | Json.Array items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | item :: rest ->
                        let* name = str_field item "name" in
                        let* version = int_field item "version" in
                        go ((name, version) :: acc) rest
                  in
                  go [] items
              | _ -> bad "field \"graphs\" must be an array"
            in
            Ok (Graphs { graphs })
        | "stats" ->
            let* name = str_field v "name" in
            let* nodes = int_field v "nodes" in
            let* edges = int_field v "edges" in
            let* labels = list_field v "labels" in
            let* version = int_field v "version" in
            Ok (Stats_of { name; nodes; edges; labels; version })
        | "answer" ->
            let* query = str_field v "query" in
            let* nodes = list_field v "nodes" in
            let* cache =
              let* c = str_field v "cache" in
              match c with
              | "hit" -> Ok `Hit
              | "miss" -> Ok `Miss
              | other -> bad "unknown cache state %S" other
            in
            let explain = opt_field v "explain" in
            Ok (Answer { query; nodes; cache; explain })
        | "learned" ->
            let* query = str_field v "query" in
            let* selects = list_field v "selects" in
            Ok (Learned { query; selects })
        | "session" ->
            let* session = session_field v in
            let* view = decode_view v in
            Ok (Session { session; view })
        | "stopped" ->
            let* session = session_field v in
            let* questions = int_field v "questions" in
            Ok (Stopped { session; questions })
        | "metrics" ->
            let* m = field v "metrics" in
            Ok (Metrics_dump m)
        | "metrics_prom" ->
            let* text = str_field v "text" in
            Ok (Prom_dump text)
        | "status" ->
            let* s = field v "status" in
            Ok (Status_dump s)
        | "timeseries" ->
            let* s = field v "series" in
            Ok (Timeseries_dump s)
        | other -> bad "unknown response kind %S" other)
  | _ -> Error { code = "bad-request"; message = "response must be a JSON object"; data = None }

let request_to_string r = Json.value_to_string (encode_request r)
let response_to_string ?id r = Json.value_to_string (encode_response ?id r)

let halt_reason_to_string = function
  | Gps_interactive.Session.Satisfied -> "satisfied"
  | Gps_interactive.Session.No_informative_nodes -> "no-informative-nodes"
  | Gps_interactive.Session.Budget_exhausted -> "budget-exhausted"
  | Gps_interactive.Session.Inconsistent _ -> "inconsistent"
  | Gps_interactive.Session.Interrupted r -> Gps_obs.Deadline.reason_to_string r
