module Json = Gps_graph.Json
module Histogram = Gps_obs.Histogram

let bucket_labels =
  [ "le_10us"; "le_100us"; "le_1ms"; "le_10ms"; "le_100ms"; "le_1s"; "gt_1s" ]

(* decade upper bounds in nanoseconds, aligned with [bucket_labels]
   (gt_1s is the overflow bucket) *)
let bounds_ns = [| 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |]

type endpoint = {
  mutable requests : int;
  mutable errors : int;
  hist : Histogram.t;  (* nanosecond latencies, private (per-instance) *)
}

type t = { tbl : (string, endpoint) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 16; lock = Mutex.create () }

let endpoint_of t name =
  Mutex.lock t.lock;
  let e =
    match Hashtbl.find_opt t.tbl name with
    | Some e -> e
    | None ->
        let e =
          {
            requests = 0;
            errors = 0;
            hist = Histogram.create ~labels:[ ("endpoint", name) ] "server.request_ns";
          }
        in
        Hashtbl.replace t.tbl name e;
        e
  in
  Mutex.unlock t.lock;
  e

let record t ~endpoint ~ok ~seconds =
  let e = endpoint_of t endpoint in
  Mutex.lock t.lock;
  e.requests <- e.requests + 1;
  if not ok then e.errors <- e.errors + 1;
  Mutex.unlock t.lock;
  let seconds = Float.max 0. seconds in
  Histogram.record e.hist (int_of_float (seconds *. 1e9))

let entries t =
  Mutex.lock t.lock;
  let es = Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.tbl [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> compare a b) es

let histograms t = List.map (fun (_, e) -> Histogram.snapshot e.hist) (entries t)

(* Project the log-bucketed snapshot onto the decade buckets the JSON
   dump has always exposed: each log bucket lands in the decade bucket
   containing its midpoint (log buckets are ≤25%-wide, so at worst the
   sliver of a bucket straddling a decade edge is misattributed). *)
let decades (s : Histogram.snapshot) =
  let out = Array.make (List.length bucket_labels) 0 in
  List.iter
    (fun (i, c) ->
      let mid = (Histogram.bucket_lower i + Histogram.bucket_upper i) / 2 in
      let rec go d = if d >= Array.length bounds_ns || mid <= bounds_ns.(d) then d else go (d + 1) in
      let d = go 0 in
      out.(d) <- out.(d) + c)
    s.buckets;
  out

let int n = Json.Number (float_of_int n)

let micros_of_ns ns = Json.Number (Float.round (ns /. 1e2) /. 10.)  (* 0.1 µs resolution *)

let to_json ?(timings = true) t =
  let doc =
    entries t
    |> List.map (fun (name, e) ->
           let s = Histogram.snapshot e.hist in
           let base = [ ("requests", int e.requests); ("errors", int e.errors) ] in
           let fields =
             if not timings then base
             else
               let by_decade = decades s in
               base
               @ [
                   ( "latency",
                     Json.Object
                       [
                         ("count", int s.count);
                         ("mean_us", micros_of_ns (Histogram.mean s));
                         ("max_us", micros_of_ns (float_of_int s.max));
                         ( "buckets",
                           Json.Object
                             (List.mapi (fun i l -> (l, int by_decade.(i))) bucket_labels) );
                       ] );
                 ]
           in
           (name, Json.Object fields))
  in
  Json.Object doc
