module Json = Gps_graph.Json

let bucket_labels =
  [ "le_10us"; "le_100us"; "le_1ms"; "le_10ms"; "le_100ms"; "le_1s"; "gt_1s" ]

let n_buckets = List.length bucket_labels

(* decade upper bounds, in seconds, aligned with [bucket_labels] *)
let bounds = [| 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0 |]

type endpoint = {
  mutable requests : int;
  mutable errors : int;
  mutable lat_sum : float;  (* seconds *)
  mutable lat_max : float;
  buckets : int array;
}

type t = { tbl : (string, endpoint) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 16; lock = Mutex.create () }

let bucket_of seconds =
  let rec go i = if i >= Array.length bounds || seconds <= bounds.(i) then i else go (i + 1) in
  go 0

let record t ~endpoint ~ok ~seconds =
  Mutex.lock t.lock;
  let e =
    match Hashtbl.find_opt t.tbl endpoint with
    | Some e -> e
    | None ->
        let e =
          { requests = 0; errors = 0; lat_sum = 0.; lat_max = 0.; buckets = Array.make n_buckets 0 }
        in
        Hashtbl.replace t.tbl endpoint e;
        e
  in
  e.requests <- e.requests + 1;
  if not ok then e.errors <- e.errors + 1;
  let seconds = Float.max 0. seconds in
  e.lat_sum <- e.lat_sum +. seconds;
  if seconds > e.lat_max then e.lat_max <- seconds;
  let b = bucket_of seconds in
  e.buckets.(b) <- e.buckets.(b) + 1;
  Mutex.unlock t.lock

let int n = Json.Number (float_of_int n)

let micros s = Json.Number (Float.round (s *. 1e7) /. 10.)  (* 0.1 µs resolution *)

let to_json ?(timings = true) t =
  Mutex.lock t.lock;
  let entries = Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.tbl [] in
  let doc =
    entries
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, e) ->
           let base = [ ("requests", int e.requests); ("errors", int e.errors) ] in
           let fields =
             if not timings then base
             else
               let mean = if e.requests = 0 then 0. else e.lat_sum /. float_of_int e.requests in
               base
               @ [
                   ( "latency",
                     Json.Object
                       [
                         ("count", int e.requests);
                         ("mean_us", micros mean);
                         ("max_us", micros e.lat_max);
                         ( "buckets",
                           Json.Object
                             (List.mapi (fun i l -> (l, int e.buckets.(i))) bucket_labels) );
                       ] );
                 ]
           in
           (name, Json.Object fields))
  in
  Mutex.unlock t.lock;
  Json.Object doc
