(** The multi-session manager.

    Wraps the pure {!Gps_interactive.Session} state machine with what a
    shared service needs: id allocation, a per-session lock so two
    requests on the same id cannot interleave answers, idle-TTL expiry,
    and a max-sessions bound enforced by evicting the least recently
    touched session.

    Each session pins the {!Catalog.entry} it was started on: reloading
    the graph under the same catalog name does not disturb a running
    session — it keeps interacting with its snapshot (its proposals are
    cached under the old version, which the reload invalidated, so they
    simply stop being cached).

    Expiry is piggybacked: every {!start} and {!find} first sweeps
    sessions idle longer than the TTL. The clock is injected at
    {!create} so tests drive time deterministically. *)

type entry = {
  id : int;
  catalog : Catalog.entry;  (** the snapshot the session runs on *)
  lock : Mutex.t;
  mutable state : Gps_interactive.Session.t;
  mutable touched : float;  (** last access, for TTL/eviction *)
}

type config = {
  max_sessions : int;  (** beyond this, starting evicts the idlest *)
  idle_ttl : float;    (** seconds of inactivity before expiry *)
}

val default_config : config
(** 64 sessions, 3600 s TTL. *)

type counters = {
  started : int;
  stopped : int;   (** explicit {!stop}s *)
  expired : int;   (** TTL sweeps *)
  evicted : int;   (** max-sessions evictions *)
  active : int;
}

type t

val create :
  ?config:config -> ?clock:(unit -> float) -> ?on_remove:(int -> unit) -> unit -> t
(** [clock] (seconds) defaults to the shared {!Gps_obs.Clock} monotonic
    source; inject a fake one for deterministic TTL tests. [on_remove]
    fires (under the manager lock — keep it quick, never reentrant)
    whenever a session leaves the table, whatever the cause: explicit
    stop, TTL expiry or eviction. The durability layer hooks it to
    delete the session's journal. *)

val start : t -> Catalog.entry -> Gps_interactive.Session.t -> entry
(** Allocate an id for a fresh session. *)

val restore : t -> id:int -> Catalog.entry -> Gps_interactive.Session.t -> entry
(** Re-register a session under its pre-crash id (recovery replay).
    Future {!start} ids continue past the highest restored id, so
    restored and fresh sessions never collide.
    @raise Invalid_argument if the id is already live. *)

val find : t -> int -> entry option
(** Touches the entry (refreshes its TTL). *)

val with_entry : t -> int -> (entry -> 'a) -> 'a option
(** [find] then run [f] under the entry's own lock — the way dispatch
    answers a session so concurrent requests on one id serialize. *)

val stop : t -> int -> entry option
(** Remove and return the session. *)

val counters : t -> counters
