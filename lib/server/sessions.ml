type entry = {
  id : int;
  catalog : Catalog.entry;
  lock : Mutex.t;
  mutable state : Gps_interactive.Session.t;
  mutable touched : float;
}

type config = { max_sessions : int; idle_ttl : float }

let default_config = { max_sessions = 64; idle_ttl = 3600. }

type counters = {
  started : int;
  stopped : int;
  expired : int;
  evicted : int;
  active : int;
}

type t = {
  tbl : (int, entry) Hashtbl.t;
  lock : Mutex.t;
  config : config;
  clock : unit -> float;
  on_remove : int -> unit;
  mutable next_id : int;
  mutable started : int;
  mutable stopped : int;
  mutable expired : int;
  mutable evicted : int;
}

(* Monotonic by default: idle-TTL bookkeeping must not observe wall-clock
   steps (mass expiry on a forward jump, immortal sessions on a backward
   one). Tests inject a fake clock through [?clock]. *)
let default_clock () = Gps_obs.Clock.ns_to_s (Gps_obs.Clock.now_ns ())

let create ?(config = default_config) ?(clock = default_clock)
    ?(on_remove = fun _ -> ()) () =
  {
    tbl = Hashtbl.create 16;
    lock = Mutex.create ();
    config;
    clock;
    on_remove;
    next_id = 1;
    started = 0;
    stopped = 0;
    expired = 0;
    evicted = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* call with t.lock held *)
let sweep_locked t =
  let now = t.clock () in
  let doomed =
    Hashtbl.fold
      (fun id e acc -> if now -. e.touched > t.config.idle_ttl then id :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.tbl id;
      t.on_remove id)
    doomed;
  t.expired <- t.expired + List.length doomed

(* call with t.lock held *)
let evict_idlest_locked t =
  let victim =
    Hashtbl.fold
      (fun id e acc ->
        match acc with
        | Some (_, best) when best <= e.touched -> acc
        | _ -> Some (id, e.touched))
      t.tbl None
  in
  match victim with
  | Some (id, _) ->
      Hashtbl.remove t.tbl id;
      t.on_remove id;
      t.evicted <- t.evicted + 1
  | None -> ()

let start t catalog state =
  with_lock t (fun () ->
      sweep_locked t;
      while Hashtbl.length t.tbl >= t.config.max_sessions do
        evict_idlest_locked t
      done;
      let id = t.next_id in
      t.next_id <- id + 1;
      t.started <- t.started + 1;
      let entry = { id; catalog; lock = Mutex.create (); state; touched = t.clock () } in
      Hashtbl.replace t.tbl id entry;
      entry)

let restore t ~id catalog state =
  with_lock t (fun () ->
      if Hashtbl.mem t.tbl id then
        invalid_arg (Printf.sprintf "Sessions.restore: id %d already live" id);
      if id >= t.next_id then t.next_id <- id + 1;
      t.started <- t.started + 1;
      let entry = { id; catalog; lock = Mutex.create (); state; touched = t.clock () } in
      Hashtbl.replace t.tbl id entry;
      entry)

let find t id =
  with_lock t (fun () ->
      sweep_locked t;
      match Hashtbl.find_opt t.tbl id with
      | Some e ->
          e.touched <- t.clock ();
          Some e
      | None -> None)

let with_entry t id f =
  match find t id with
  | None -> None
  | Some e ->
      Mutex.lock e.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) (fun () -> Some (f e))

let stop t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some e ->
          Hashtbl.remove t.tbl id;
          t.on_remove id;
          t.stopped <- t.stopped + 1;
          Some e
      | None -> None)

let counters t =
  with_lock t (fun () ->
      {
        started = t.started;
        stopped = t.stopped;
        expired = t.expired;
        evicted = t.evicted;
        active = Hashtbl.length t.tbl;
      })
