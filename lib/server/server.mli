(** The GPS service: dispatch core and wire frontends.

    The core is pure request/response: {!handle} maps a typed
    {!Protocol.request} to a typed {!Protocol.response} against the
    server's state (catalog, query cache, session manager, metrics) and
    never raises — malformed or ill-timed input becomes a structured
    [Err], internal bugs are caught and reported as [code = "internal"].
    The whole protocol is therefore unit-testable as plain OCaml.

    Two thin transports wrap the core in newline-delimited JSON:
    {!serve_channels} (stdio — cram tests, subprocess embedding) and a
    TCP listener with one thread per connection ({!start_tcp}). The
    concurrency model: catalog/cache/session-manager each guard their
    maps with a mutex; graph snapshots are immutable (CSR-frozen), so
    query evaluation runs without any lock; each session has its own
    lock so answers on one session serialize while different sessions
    progress in parallel. *)

type config = {
  cache_capacity : int;            (** {!Qcache} capacity; 0 disables *)
  sessions : Sessions.config;
  clock : unit -> float;
      (** clock (in seconds) for session idle-TTL, injected for
          deterministic tests; defaults to the shared {!Gps_obs.Clock}
          monotonic source so a stepped wall clock cannot mass-expire or
          immortalize sessions. Latency measurement also shares
          {!Gps_obs.Clock}. *)
  slow_ms : float option;
      (** queries at or over this many milliseconds are logged to stderr
          as one JSON line each — including the EXPLAIN report of the
          offending evaluation, whether or not the client asked for it —
          and counted under ["server.slow_queries"]; [None] disables the
          log *)
  deadline_ms : float option;
      (** default per-request deadline applied when the client sends
          none; a typed ["timeout"] error (with the partial EXPLAIN
          report as [data]) replaces the answer when it fires. [None]:
          unbounded unless the request asks. *)
  deadline_cap_ms : float option;
      (** server-side ceiling on client-requested [deadline_ms] (and on
          the default) — a client cannot buy more time than the operator
          allows *)
  max_inflight : int;
      (** admission-control budget: requests beyond this many
          concurrently dispatching ones are refused with a fast typed
          ["overloaded"] error (counted under ["server.sheds"]).
          [0] = unbounded. *)
  max_frame_bytes : int;
      (** per-request wire frame cap for both transports; an oversized
          frame draws ["frame-too-large"] and closes the connection
          (counted under ["server.frame_rejections"]) *)
  io_timeout_s : float option;
      (** per-connection socket read/write timeout (TCP transport): a
          peer that stops feeding or draining us cannot hold its thread
          forever *)
  audit : Gps_obs.Wide_event.sink option;
      (** wide-event audit sink: one canonical JSON line per wire
          request (see {!handle_line}), head-sampled by the sink's
          configuration with errors and slow requests always kept *)
  sample_every_s : float option;
      (** start a background {!Gps_obs.Timeseries} sampler at this
          interval ([Some s], [s > 0]); it feeds the ["timeseries"]
          endpoint and the [status] sampler-health block. [None] (the
          default): no sampler thread — the endpoint answers a typed
          ["unavailable"] error. *)
  prom_compat : bool;
      (** also emit the legacy quantile-gauge families
          ([_p50]/[_p90]/[_p99]/[_mean]) from the Prometheus endpoint,
          for one release of dashboard overlap *)
  profile : bool;
      (** runtime & scheduler observability ([gps serve --profile]):
          start {!Gps_obs.Runtime} (GC pause histograms, domain
          lifecycle) with events drained on each sampler tick, and
          enable {!Gps_par.Pool} per-job telemetry, so [gc.*] and
          [pool.*] families carry data in the metrics/Prometheus/
          timeseries surfaces and [--explain] reports grow their
          per-level efficiency section. Off (the default) costs
          zero on every path. *)
  state_dir : string option;
      (** session durability ([gps serve --state-dir DIR]): journal
          every acknowledged session mutation to a per-session
          checksummed WAL under [DIR] (see {!Durability}), so a crashed
          server rebuilds its live dialogs on restart via {!recover}.
          [None] (the default): sessions are memory-only. *)
  fsync : Gps_graph.Wal.fsync_policy;
      (** when journaled state is forced to disk before a mutation is
          acknowledged: [Always] (default — acked steps survive power
          loss), [Every n] (bounded loss window), [Never] (page cache
          only). Applies to the session journals; a failed append or
          fsync surfaces as a typed ["durability"] error (counted under
          ["server.durability_errors"]) with the session state
          unchanged. *)
}

val default_config : config
(** Cache capacity 256, {!Sessions.default_config}, monotonic clock, no
    slow-query log, no deadline or cap, unbounded in-flight, 8 MiB
    frames, no socket timeout, no audit sink, no sampler, no Prometheus
    compat, no state dir, [fsync = Always]. *)

type t

val create : ?config:config -> unit -> t
(** When [config.sample_every_s] is set, the background sampler thread
    starts here; {!stop_sampler} (or process exit) ends it. With
    [config.state_dir], the directory is created and opened for
    journaling — but existing journals are only replayed by an explicit
    {!recover} call, so the caller can preload the catalog first.
    @raise Failure when the state dir cannot be created. *)

val sampler : t -> Gps_obs.Timeseries.t option
val stop_sampler : t -> unit

(** {1 Crash recovery} *)

type recovery_summary = {
  sessions_restored : int;
  sessions_failed : int;  (** journals that could not be replayed (quarantined) *)
  entries_discarded : int;  (** truncated journal tails *)
  bytes_discarded : int;
  duration_ms : float;
}

val recover : t -> recovery_summary option
(** Replay every session journal in the state dir and re-register the
    resulting sessions under their pre-crash ids; see {!Durability}.
    Call after preloading the catalog — a journal whose graph is absent
    counts as failed. Updates the ["recovery.*"] counters and the
    ["recovery.duration_ns"] histogram, surfaces the summary in the
    [status] endpoint's [durability] block, and stamps wide events
    [recovered:true] for the first post-restart sample window. [None]
    when the server has no state dir. *)

val last_recovery : t -> recovery_summary option
val state_dir : t -> string option

val handle : t -> ?ev:Gps_obs.Wide_event.t -> Protocol.request -> Protocol.response
(** Never raises. The request's effective deadline is its wire
    [deadline_ms] capped by [deadline_cap_ms] (falling back to the
    server default), combined with the drain token. [ev], when given,
    accumulates the request's wide-event fields (graph, cache verdict,
    eval counter deltas, result size) as dispatch proceeds. *)

val begin_drain : t -> unit
(** Fire the server-wide cancel token: every in-flight request's
    deadline observes it, so running evaluations unwind with a typed
    ["cancelled"] error. New requests still dispatch (they fail fast the
    same way if they evaluate anything) — stop the transports to refuse
    them. Idempotent. *)

val draining : t -> bool

val inflight : t -> int
(** Requests currently inside {!handle_value}. *)

val handle_value :
  t -> ?ev:Gps_obs.Wide_event.t -> Gps_graph.Json.value -> Gps_graph.Json.value
(** Decode, dispatch, encode; echoes any ["id"] field of the request and
    records metrics (endpoint ["invalid"] for undecodable requests).
    [ev]'s request id is stamped into the dispatch trace span as
    ["request_id"], and the event collects endpoint/ok/shed/error
    fields. *)

val handle_line : t -> ?recv_ns:int64 -> string -> string
(** One request line in, one response line out (no trailing newline).
    JSON parse failures yield the [code = "parse"] error envelope.

    This is the wire entry point: it allocates the request's
    {!Gps_obs.Wide_event} (so every wire request gets a monotonic id,
    visible as [last_request_id] in the metrics [server] block) and,
    when the server has an audit sink, emits the finished event with
    [bytes_in]/[bytes_out], the [wait_us]/[service_us] split measured
    from [recv_ns] (the transport's frame-arrival stamp; defaults to
    entry time), and total [ms]. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve newline-delimited JSON until EOF. Whitespace-only lines are
    skipped; every response is flushed. Frames over
    [config.max_frame_bytes] draw one ["frame-too-large"] error and end
    the loop; write failures (peer gone, injected ["sock.write"] fault)
    end it quietly with a counted, logged disconnect. SIGPIPE is ignored
    process-wide on first use. *)

(** {1 TCP} *)

type tcp_server

val start_tcp : t -> ?host:string -> port:int -> unit -> tcp_server
(** Listen on [host] (default ["127.0.0.1"]) : [port] (0 picks an
    ephemeral port) and serve each accepted connection on its own
    thread. Returns immediately. *)

val tcp_port : tcp_server -> int
(** The bound port (useful with [port:0]). *)

val stop_tcp : tcp_server -> unit
(** Stop accepting and join the accept loop. Established connections
    finish on their own threads. *)

val request_stop : tcp_server -> unit
(** Stop accepting without joining the accept loop — safe to call from a
    signal handler; follow with {!wait_tcp} (or {!drain_tcp}). *)

val wait_tcp : tcp_server -> unit
(** Block until the accept loop exits — the [gps serve --port] main
    loop. *)

val live_connections : tcp_server -> int

val drain_tcp : t -> tcp_server -> ?grace_s:float -> unit -> int
(** Graceful shutdown: stop accepting, {!begin_drain} (cancelling
    in-flight evaluations), half-close every live connection's read side
    so pending responses still flush, wait up to [grace_s] (default 5s)
    for connection threads to finish, then force-close stragglers.
    Returns how many connections had to be force-closed. *)
