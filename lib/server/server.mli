(** The GPS service: dispatch core and wire frontends.

    The core is pure request/response: {!handle} maps a typed
    {!Protocol.request} to a typed {!Protocol.response} against the
    server's state (catalog, query cache, session manager, metrics) and
    never raises — malformed or ill-timed input becomes a structured
    [Err], internal bugs are caught and reported as [code = "internal"].
    The whole protocol is therefore unit-testable as plain OCaml.

    Two thin transports wrap the core in newline-delimited JSON:
    {!serve_channels} (stdio — cram tests, subprocess embedding) and a
    TCP listener with one thread per connection ({!start_tcp}). The
    concurrency model: catalog/cache/session-manager each guard their
    maps with a mutex; graph snapshots are immutable (CSR-frozen), so
    query evaluation runs without any lock; each session has its own
    lock so answers on one session serialize while different sessions
    progress in parallel. *)

type config = {
  cache_capacity : int;            (** {!Qcache} capacity; 0 disables *)
  sessions : Sessions.config;
  clock : unit -> float;
      (** wall clock for session idle-TTL, injected for deterministic
          tests. Latency measurement does {e not} use it — endpoint
          histograms and spans share {!Gps_obs.Clock}'s monotonic
          source. *)
  slow_ms : float option;
      (** queries at or over this many milliseconds are logged to stderr
          as one JSON line each — including the EXPLAIN report of the
          offending evaluation, whether or not the client asked for it —
          and counted under ["server.slow_queries"]; [None] disables the
          log *)
}

val default_config : config
(** Cache capacity 256, {!Sessions.default_config}, [Unix.gettimeofday],
    no slow-query log. *)

type t

val create : ?config:config -> unit -> t

val handle : t -> Protocol.request -> Protocol.response
(** Never raises. *)

val handle_value : t -> Gps_graph.Json.value -> Gps_graph.Json.value
(** Decode, dispatch, encode; echoes any ["id"] field of the request and
    records metrics (endpoint ["invalid"] for undecodable requests). *)

val handle_line : t -> string -> string
(** One request line in, one response line out (no trailing newline).
    JSON parse failures yield the [code = "parse"] error envelope. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve newline-delimited JSON until EOF. Whitespace-only lines are
    skipped; every response is flushed. *)

(** {1 TCP} *)

type tcp_server

val start_tcp : t -> ?host:string -> port:int -> unit -> tcp_server
(** Listen on [host] (default ["127.0.0.1"]) : [port] (0 picks an
    ephemeral port) and serve each accepted connection on its own
    thread. Returns immediately. *)

val tcp_port : tcp_server -> int
(** The bound port (useful with [port:0]). *)

val stop_tcp : tcp_server -> unit
(** Stop accepting and join the accept loop. Established connections
    finish on their own threads. *)

val wait_tcp : tcp_server -> unit
(** Block until the accept loop exits — the [gps serve --port] main
    loop. *)
