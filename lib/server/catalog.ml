type entry = {
  name : string;
  graph : Gps_graph.Digraph.t;
  csr : Gps_graph.Csr.t;
  version : int;
}

type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 16; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let put t ~name graph =
  (* freeze outside the lock: it is the expensive part and touches no
     shared state *)
  let csr = Gps_graph.Csr.freeze graph in
  with_lock t (fun () ->
      let version =
        match Hashtbl.find_opt t.tbl name with
        | Some prev -> prev.version + 1
        | None -> 1
      in
      let entry = { name; graph; csr; version } in
      Hashtbl.replace t.tbl name entry;
      entry)

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.tbl name)

let list t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
      |> List.sort (fun a b -> compare a.name b.name))

let count t = with_lock t (fun () -> Hashtbl.length t.tbl)
