module Digraph = Gps_graph.Digraph
module Csr = Gps_graph.Csr
module Disk_csr = Gps_graph.Disk_csr

(* level gauge: how many catalog entries are currently mmap-backed *)
let g_file_backed = Gps_obs.Gauge.make "catalog.file_backed"

type backing =
  | Heap of { graph : Digraph.t; csr : Csr.t }
  | File of {
      disk : Disk_csr.t;
      file : string;
      lock : Mutex.t;
      mutable heap : (Digraph.t * int) option;
    }

type entry = { name : string; version : int; backing : backing }

type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 16; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let file_backed e = match e.backing with File _ -> true | Heap _ -> false
let backing_file e = match e.backing with File f -> Some f.file | Heap _ -> None

let refresh_file_gauge t =
  (* called under the catalog lock *)
  let n = Hashtbl.fold (fun _ e acc -> if file_backed e then acc + 1 else acc) t.tbl 0 in
  Gps_obs.Gauge.set_int g_file_backed n

let install t name backing =
  with_lock t (fun () ->
      let version =
        match Hashtbl.find_opt t.tbl name with
        | Some prev -> prev.version + 1
        | None -> 1
      in
      let entry = { name; version; backing } in
      Hashtbl.replace t.tbl name entry;
      refresh_file_gauge t;
      entry)

let put t ~name graph =
  (* freeze outside the lock: it is the expensive part and touches no
     shared state *)
  let csr = Csr.freeze graph in
  install t name (Heap { graph; csr })

let put_file t ~name path =
  match Disk_csr.open_map path with
  | Error _ as e -> e
  | Ok disk ->
      Ok (install t name (File { disk; file = path; lock = Mutex.create (); heap = None }))

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.tbl name)

let list t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
      |> List.sort (fun a b -> compare a.name b.name))

let count t = with_lock t (fun () -> Hashtbl.length t.tbl)

(* ------------------------------------------------------------------ *)
(* backing-generic accessors *)

let eval_source e =
  match e.backing with
  | Heap { graph; csr } -> Gps_query.Eval.Frozen (graph, csr)
  | File { disk; _ } -> Gps_query.Eval.Mapped (Disk_csr.snapshot disk)

let n_nodes e =
  match e.backing with
  | Heap { graph; _ } -> Digraph.n_nodes graph
  | File { disk; _ } -> Disk_csr.n_nodes (Disk_csr.snapshot disk)

let n_edges e =
  match e.backing with
  | Heap { graph; _ } -> Digraph.n_edges graph
  | File { disk; _ } -> Disk_csr.n_edges (Disk_csr.snapshot disk)

let n_labels e =
  match e.backing with
  | Heap { graph; _ } -> Digraph.n_labels graph
  | File { disk; _ } -> Disk_csr.n_labels (Disk_csr.snapshot disk)

let labels e =
  match e.backing with
  | Heap { graph; _ } -> List.sort compare (Digraph.labels graph)
  | File { disk; _ } ->
      let v = Disk_csr.snapshot disk in
      let acc = ref [] in
      for l = Disk_csr.n_labels v - 1 downto 0 do
        acc := Disk_csr.label_name v l :: !acc
      done;
      List.sort compare !acc

let known_label e base =
  match e.backing with
  | Heap { graph; _ } -> Digraph.label_of_name graph base <> None
  | File { disk; _ } -> Disk_csr.label_of_name (Disk_csr.snapshot disk) base <> None

let overlay_edges e =
  match e.backing with Heap _ -> 0 | File { disk; _ } -> Disk_csr.overlay_edges disk

let graph e =
  match e.backing with
  | Heap { graph; _ } -> graph
  | File ({ disk; lock; _ } as f) ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          let v = Disk_csr.snapshot disk in
          let stamp = Disk_csr.view_overlay_edges v in
          match f.heap with
          | Some (g, s) when s = stamp -> g
          | _ ->
              let g = Disk_csr.to_digraph v in
              f.heap <- Some (g, stamp);
              g)

let add_edges e triples =
  match e.backing with
  | Heap _ ->
      Error
        (Printf.sprintf "graph %S is heap-backed; add_edges needs a file-backed graph (load_file)"
           e.name)
  | File { disk; _ } -> Ok (Disk_csr.add_edges disk triples)
