(** Structural rankings of a graph database.

    Workload instantiation (PathForge-style) maps abstract query symbols
    onto the labels that actually carry traffic and anchors queries at
    the nodes most likely to have non-trivial answers. Both choices are
    rankings of the graph — by label edge-frequency and by node
    out-degree — computed here once, deterministically, instead of
    ad-hoc sorting in every consumer ({!Stats} shares the label
    ranking for its histogram).

    All orders are total: ties break on the interned name, so a ranking
    is a pure function of the graph's edge set, independent of insertion
    order or hashing. *)

val labels_by_frequency : Digraph.t -> (string * int) list
(** [(label, edge count)] pairs, most frequent first; ties sort by label
    name ascending. Every label of the graph appears (labels interned
    without edges count 0). *)

val nodes_by_out_degree : ?limit:int -> Digraph.t -> (Digraph.node * int) list
(** [(node, out-degree)] pairs, highest degree first; ties sort by node
    name ascending. [limit] keeps only the first [limit] rows (the
    ranking is still computed over the whole graph, so row [i] is the
    true rank-[i] node). *)

val top_labels : int -> Digraph.t -> string list
(** The first [k] label names of {!labels_by_frequency} (fewer when the
    graph has fewer labels). *)

val top_nodes : int -> Digraph.t -> string list
(** The first [k] node names of {!nodes_by_out_degree}. *)
