(** Synthetic graph-database generators.

    Three families, matching the evaluation substrates of the paper and of
    its companion research paper:

    - {!uniform}: Erdős–Rényi-style random labeled graphs (the "synthetic"
      datasets of the companion paper's evaluation);
    - {!city}: geographical/transport networks in the spirit of the
      motivating example and of the Transpole demo data — districts on a
      grid linked by [tram]/[bus]/[metro] lines, with facility nodes
      ([cinema], [restaurant], [museum], [park]) hanging off districts;
    - {!bio}: scale-free (preferential-attachment) interaction networks
      with biological relation labels, standing in for the AliBaba
      protein-interaction dataset used by the companion paper.

    All generators are deterministic given [seed]. *)

val uniform : nodes:int -> edges:int -> labels:string list -> seed:int -> Digraph.t
(** [edges] random (src, label, dst) triples over [nodes] nodes named
    [v0..]; duplicate triples are retried, self-loops allowed. The label
    list must be non-empty. *)

val pack_uniform :
  path:string -> nodes:int -> edges:int -> labels:string list -> seed:int -> unit
(** Stream a uniform random graph straight into a packed {!Disk_csr}
    file at [path] — the graph is never materialized in the OCaml heap,
    so 10⁶–10⁷-node inputs cost file size, not resident memory. Nodes
    are [v0..]; exactly [edges] triples are drawn (duplicates kept, not
    retried — unlike {!uniform} there is no in-heap edge set to check
    against; selection semantics are unaffected). Deterministic given
    [seed]. *)

val preferential : nodes:int -> attach:int -> labels:string list -> seed:int -> Digraph.t
(** Barabási–Albert-style: nodes arrive one by one; each new node emits
    [attach] edges whose targets are picked proportionally to current
    degree. Produces the skewed degree distributions of real networks. *)

type city_params = {
  districts : int;       (** number of neighborhood nodes (grid-ish topology) *)
  cinemas : int;
  restaurants : int;
  museums : int;
  parks : int;
  tram_lines : int;      (** each line is a bidirectional path through random districts *)
  bus_lines : int;
  metro_lines : int;
  line_stops : int;      (** districts per transport line *)
}

val default_city : districts:int -> city_params
(** Facility and line counts scaled from the district count: roughly one
    facility per 4 districts of each kind, one line per 8 districts per
    mode, 5 stops per line (min 1 line, 3 stops). *)

val city : city_params -> seed:int -> Digraph.t
(** Districts are [D0..]; facilities [cinema0..], [restaurant0..],
    [museum0..], [park0..]. Transport edges are labeled [tram]/[bus]/
    [metro] (both directions along each line); facility edges are labeled
    by the facility kind, district -> facility, and each facility also has
    an [in] edge back to its district. *)

val bio : nodes:int -> seed:int -> Digraph.t
(** Entities [P*] (proteins), [G*] (genes), [D*] (drugs), [S*] (diseases)
    in ratio 6:2:1:1; relations [interacts] (protein-protein, symmetric),
    [encodes] (gene->protein), [activates]/[inhibits] (protein->protein or
    drug->protein), [binds] (drug->protein), [treats] (drug->disease),
    [associated] (protein->disease). Degree-skewed via preferential
    attachment within relation kinds. *)

(** {1 Structured topologies}

    Deterministic shapes used by tests and worst/best-case benchmarks. *)

val chain : length:int -> label:string -> Digraph.t
(** [c0 -label-> c1 -label-> ... -label-> c_length]: maximizes BFS depth
    (worst case for zooming and eccentricity). *)

val grid : rows:int -> cols:int -> Digraph.t
(** Lattice with [east]/[south] edges ([r{i}c{j}] nodes): dense short
    paths, many distinct walks. *)

val star : leaves:int -> label:string -> Digraph.t
(** [hub -label-> leaf{i}]: maximal out-degree in one node. *)

val full_tree : depth:int -> branching:int -> labels:string list -> Digraph.t
(** Complete rooted tree, edge labels cycling through [labels] by child
    index; node [t] is the root. *)
