(** A generic checksummed append-only journal (write-ahead log).

    One file, one writer: an 8-byte magic header (["GPSWAL01"]) followed
    by length+CRC32-framed records —

    {v
    | len : u32 LE | crc32(payload) : u32 LE | payload bytes |
    v}

    — so a reader can always tell exactly where durable history ends.
    {!scan} replays the frames and stops at the first invalid one,
    distinguishing the three ways a log can end:

    - {e clean}: the last frame ends exactly at EOF;
    - {e torn tail}: the file ends inside a frame (the classic
      crash-during-append) — the partial frame is discarded;
    - {e corrupt record}: a frame whose checksum does not match (or
      whose length field is absurd) — everything from that frame on is
      discarded and the corruption is reported, never replayed.

    {!open_append} runs the same scan, truncates the file back to its
    last valid record (so the next append never concatenates onto a
    partial frame) and returns a writer. Appends go through a single
    unbuffered [write]; the fsync policy decides when acknowledged
    records are forced to disk:

    - [Always] — fsync after every append (an acked record survives
      [kill -9] and power loss);
    - [Every n] — fsync every [n]th append (bounded loss window);
    - [Never] — no fsync (the OS page cache decides; survives process
      crash but not power loss).

    Records are opaque byte strings (callers frame JSON, text, anything);
    the empty record is valid. Payloads are capped at {!max_record_bytes}
    — a length field beyond the cap is treated as corruption rather than
    trusted with an allocation.

    The module lives in [gps_graph] (below the observability layer), so
    fault injection is wired through {!set_probe}: the probe runs before
    every record write (site ["wal.append"]) and before every fsync
    (site ["store.fsync"]); an exception it raises aborts the operation
    and propagates — which is exactly how chaos schedules turn a failed
    write into a typed degraded acknowledgement upstream. *)

type fsync_policy = Never | Every of int | Always

val policy_of_string : string -> (fsync_policy, string) result
(** ["never"], ["always"], or ["every:N"] (N >= 1). *)

val policy_to_string : fsync_policy -> string

type outcome =
  | Clean
  | Torn_tail of { bytes_discarded : int }
  | Corrupt_record of { index : int; bytes_discarded : int }
      (** [index] is the 0-based record number of the frame whose
          checksum (or length field) failed. *)

type recovery = {
  entries : string list;  (** every valid record, in append order *)
  outcome : outcome;
  valid_bytes : int;
      (** absolute file offset of the end of the last valid record (the
          truncation point); includes the magic header *)
}

val bytes_discarded : recovery -> int
(** 0 for [Clean]. *)

val magic : string

val scan : string -> (recovery, string) result
(** Read-only recovery scan. A missing file is an empty clean log;
    [Error] only for a file that is not a WAL at all (foreign magic) or
    cannot be read. *)

type t

val open_append :
  ?policy:fsync_policy -> string -> (t * recovery, string) result
(** Open (creating, with the containing directory fsynced so the new
    file itself survives a crash) or recover-then-open for appending.
    Recovery truncates the file at [recovery.valid_bytes] first —
    discarded bytes are physically removed, not just skipped. Default
    policy [Always]. *)

val append : t -> string -> unit
(** Frame, write, and fsync per policy. Raises whatever the probe or the
    OS raises; on any failure the record must be treated as not
    acknowledged. @raise Invalid_argument beyond {!max_record_bytes}. *)

val sync : t -> unit
(** Force an fsync now, regardless of policy. *)

val close : t -> unit
(** Fsync (unless the policy is [Never]) and close. Idempotent. *)

val path : t -> string
val policy : t -> fsync_policy

val appends : t -> int
(** Records appended through this handle. *)

val fsyncs : t -> int
(** Fsyncs issued by this handle (policy + explicit {!sync}). *)

val max_record_bytes : int
(** 64 MiB. *)

val set_probe : (string -> unit) -> unit
(** Install the process-wide fault probe (default: no-op). The server
    layer points this at [Gps_obs.Fault.trip] so [GPS_FAULT] schedules
    reach the durability paths. *)

val fsync_dir : string -> unit
(** Fsync a directory — the step that makes a just-created or
    just-renamed file durable on POSIX filesystems. Errors (e.g. the
    platform refusing to fsync a directory fd) are swallowed: the data
    fsyncs themselves never go through here. *)
