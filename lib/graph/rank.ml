(* Deterministic structural rankings: frequency-ranked labels and
   degree-ranked nodes. The by-count-then-name order makes every ranking
   a pure function of the edge set. *)

let labels_by_frequency g =
  let n = Digraph.n_labels g in
  let counts = Array.make n 0 in
  Digraph.iter_edges (fun e -> counts.(e.Digraph.lbl) <- counts.(e.Digraph.lbl) + 1) g;
  let rows = List.init n (fun l -> (Digraph.label_name g l, counts.(l))) in
  List.sort
    (fun (k1, c1) (k2, c2) -> if c1 <> c2 then compare c2 c1 else compare k1 k2)
    rows

let nodes_by_out_degree ?limit g =
  let rows =
    Digraph.fold_nodes (fun acc v -> (v, Digraph.out_degree g v) :: acc) [] g
  in
  let sorted =
    List.sort
      (fun (v1, d1) (v2, d2) ->
        if d1 <> d2 then compare d2 d1
        else compare (Digraph.node_name g v1) (Digraph.node_name g v2))
      rows
  in
  match limit with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted

let top_labels k g =
  List.filteri (fun i _ -> i < k) (labels_by_frequency g) |> List.map fst

let top_nodes k g =
  nodes_by_out_degree ~limit:k g |> List.map (fun (v, _) -> Digraph.node_name g v)
