type t = { path : string; graph : Digraph.t; mutable chan : out_channel; mutable closed : bool }

let check_name name =
  String.iter
    (fun c ->
      if c = '\t' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Store: name %S contains a tab or newline" name))
    name

let node_record name = "N\t" ^ name ^ "\n"
let edge_record src label dst = String.concat "\t" [ "E"; src; label; dst ] ^ "\n"

(* Replay the log into a fresh graph. The last line may be torn (crash
   during append): if the file does not end in '\n', the tail is
   silently dropped. Any other malformed record is corruption. *)
let replay path g =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let complete =
      match String.rindex_opt text '\n' with
      | None -> "" (* a single torn record, or empty file *)
      | Some i -> String.sub text 0 (i + 1)
    in
    (* drop the torn tail from the file too, or the next append would
       concatenate onto the partial record and corrupt the log *)
    if String.length complete <> String.length text then begin
      let oc = open_out_bin path in
      output_string oc complete;
      close_out oc
    end;
    List.iteri
      (fun lineno line ->
        if line <> "" then
          match String.split_on_char '\t' line with
          | [ "N"; name ] -> ignore (Digraph.add_node g name)
          | [ "E"; src; label; dst ] -> Digraph.link g src label dst
          | _ -> failwith (Printf.sprintf "Store: corrupt record at %s:%d" path (lineno + 1)))
      (String.split_on_char '\n' complete)
  end

let snapshot_path path = path ^ ".csr"

let openfile path =
  (* a compacted store keeps its bulk in a packed binary CSR snapshot
     beside the log: recovery is one mmap + materialize, then replay of
     only the short tail appended since the compaction *)
  let graph =
    let csr = snapshot_path path in
    if Sys.file_exists csr then
      match Disk_csr.open_map csr with
      | Ok d -> Disk_csr.to_digraph (Disk_csr.snapshot d)
      | Error e ->
          failwith
            (Printf.sprintf "Store: corrupt snapshot %s: %s" csr
               (Disk_csr.open_error_to_string e))
    else Digraph.create ()
  in
  replay path graph;
  let chan = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; graph; chan; closed = false }

let graph t = t.graph
let path t = t.path

let alive t = if t.closed then invalid_arg "Store: already closed"

let add_node t name =
  alive t;
  check_name name;
  match Digraph.node_of_name t.graph name with
  | Some v -> v
  | None ->
      output_string t.chan (node_record name);
      Digraph.add_node t.graph name

let link t src label dst =
  alive t;
  List.iter check_name [ src; label; dst ];
  ignore (add_node t src);
  ignore (add_node t dst);
  let s = Digraph.node_of_name t.graph src |> Option.get in
  let d = Digraph.node_of_name t.graph dst |> Option.get in
  let lbl = Digraph.label_of_name t.graph label in
  let already =
    match lbl with Some lbl -> Digraph.mem_edge t.graph ~src:s ~lbl ~dst:d | None -> false
  in
  if not already then begin
    output_string t.chan (edge_record src label dst);
    Digraph.add_edge t.graph ~src:s ~label ~dst:d
  end

let sync t =
  alive t;
  flush t.chan

let compact t =
  alive t;
  flush t.chan;
  (* the whole graph goes into the packed binary snapshot (atomically:
     pack to .tmp, rename over) ... *)
  let csr = snapshot_path t.path in
  let csr_tmp = csr ^ ".tmp" in
  Disk_csr.pack_digraph t.graph ~path:csr_tmp;
  Sys.rename csr_tmp csr;
  (* ... and the text log restarts empty: from here on it holds only the
     tail of mutations since this compaction. A crash between the two
     renames is safe — replaying the full old log on top of the snapshot
     is idempotent (node adds and edge adds both dedup). *)
  let tmp = t.path ^ ".tmp" in
  close_out (open_out_bin tmp);
  close_out t.chan;
  Sys.rename tmp t.path;
  t.chan <- open_out_gen [ Open_append; Open_binary ] 0o644 t.path

let close t =
  if not t.closed then begin
    flush t.chan;
    close_out t.chan;
    t.closed <- true
  end
