type log_format = Text_v1 | Framed_v2

type recovery_info = {
  format : log_format;
  entries_replayed : int;
  bytes_discarded : int;
  outcome : [ `Clean | `Torn_tail | `Corrupt_record ];
}

type channel = V1 of out_channel | V2 of Wal.t

type t = {
  path : string;
  graph : Digraph.t;
  pol : Wal.fsync_policy;
  mutable chan : channel;
  mutable closed : bool;
  rec_info : recovery_info;
  mutable v1_fsyncs : int;
  mutable v1_unsynced : int;
}

let check_name name =
  String.iter
    (fun c ->
      if c = '\t' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Store: name %S contains a tab or newline" name))
    name

let node_record name = "N\t" ^ name
let edge_record src label dst = String.concat "\t" [ "E"; src; label; dst ]

let apply_record path g lineno line =
  match String.split_on_char '\t' line with
  | [ "N"; name ] -> ignore (Digraph.add_node g name)
  | [ "E"; src; label; dst ] -> Digraph.link g src label dst
  | _ -> failwith (Printf.sprintf "Store: corrupt record at %s:%d" path (lineno + 1))

(* ---- format detection ------------------------------------------------ *)

let detect_format path =
  if not (Sys.file_exists path) then Framed_v2
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len = 0 then Framed_v2
        else
          let n = min len (String.length Wal.magic) in
          let head = really_input_string ic n in
          if head = String.sub Wal.magic 0 n then Framed_v2 else Text_v1)

(* ---- v1 (legacy text) replay ----------------------------------------- *)

(* Replay the text log into a fresh graph. The last line may be torn
   (crash during append): if the file does not end in '\n', the tail is
   silently dropped. Any other malformed record is corruption. *)
let replay_v1 path g =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let complete =
      match String.rindex_opt text '\n' with
      | None -> "" (* a single torn record, or empty file *)
      | Some i -> String.sub text 0 (i + 1)
    in
    let torn = String.length text - String.length complete in
    (* drop the torn tail from the file too, or the next append would
       concatenate onto the partial record and corrupt the log *)
    if torn > 0 then begin
      let oc = open_out_bin path in
      output_string oc complete;
      close_out oc
    end;
    let replayed = ref 0 in
    List.iteri
      (fun lineno line ->
        if line <> "" then begin
          apply_record path g lineno line;
          incr replayed
        end)
      (String.split_on_char '\n' complete);
    {
      format = Text_v1;
      entries_replayed = !replayed;
      bytes_discarded = torn;
      outcome = (if torn > 0 then `Torn_tail else `Clean);
    }
  end
  else
    { format = Text_v1; entries_replayed = 0; bytes_discarded = 0; outcome = `Clean }

(* ---- open ------------------------------------------------------------ *)

let snapshot_path path = path ^ ".csr"

let load_snapshot path =
  let csr = snapshot_path path in
  if Sys.file_exists csr then
    match Disk_csr.open_map csr with
    | Ok d -> Disk_csr.to_digraph (Disk_csr.snapshot d)
    | Error e ->
        failwith
          (Printf.sprintf "Store: corrupt snapshot %s: %s" csr
             (Disk_csr.open_error_to_string e))
  else Digraph.create ()

let openfile ?(policy = Wal.Always) ?(recover = false) path =
  (* a compacted store keeps its bulk in a packed binary CSR snapshot
     beside the log: recovery is one mmap + materialize, then replay of
     only the short tail appended since the compaction *)
  let graph = load_snapshot path in
  match detect_format path with
  | Text_v1 ->
      let info = replay_v1 path graph in
      let chan = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
      {
        path;
        graph;
        pol = policy;
        chan = V1 chan;
        closed = false;
        rec_info = info;
        v1_fsyncs = 0;
        v1_unsynced = 0;
      }
  | Framed_v2 -> (
      (match Wal.scan path with
      | Error e -> failwith ("Store: " ^ e)
      | Ok r -> (
          match r.Wal.outcome with
          | Wal.Corrupt_record { index; bytes_discarded } when not recover ->
              failwith
                (Printf.sprintf
                   "Store: CRC mismatch at record %d of %s (%d trailing bytes \
                    unreadable); run `gps store recover` to truncate"
                   index path bytes_discarded)
          | _ -> ()));
      match Wal.open_append ~policy path with
      | Error e -> failwith ("Store: " ^ e)
      | Ok (w, r) ->
          let replayed = ref 0 in
          List.iter
            (fun payload ->
              apply_record path graph !replayed payload;
              incr replayed)
            r.Wal.entries;
          let outcome =
            match r.Wal.outcome with
            | Wal.Clean -> `Clean
            | Wal.Torn_tail _ -> `Torn_tail
            | Wal.Corrupt_record _ -> `Corrupt_record
          in
          {
            path;
            graph;
            pol = policy;
            chan = V2 w;
            closed = false;
            rec_info =
              {
                format = Framed_v2;
                entries_replayed = !replayed;
                bytes_discarded = Wal.bytes_discarded r;
                outcome;
              };
            v1_fsyncs = 0;
            v1_unsynced = 0;
          })

let recovery t = t.rec_info
let graph t = t.graph
let path t = t.path
let format t = match t.chan with V1 _ -> Text_v1 | V2 _ -> Framed_v2
let policy t = t.pol

let fsyncs t =
  t.v1_fsyncs + (match t.chan with V2 w -> Wal.fsyncs w | V1 _ -> 0)

let alive t = if t.closed then invalid_arg "Store: already closed"

(* ---- appends --------------------------------------------------------- *)

let v1_fsync t oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  t.v1_fsyncs <- t.v1_fsyncs + 1;
  t.v1_unsynced <- 0

let log_record t record =
  match t.chan with
  | V2 w -> Wal.append w record
  | V1 oc -> (
      output_string oc (record ^ "\n");
      t.v1_unsynced <- t.v1_unsynced + 1;
      match t.pol with
      | Wal.Always -> v1_fsync t oc
      | Wal.Every n -> if t.v1_unsynced >= n then v1_fsync t oc
      | Wal.Never -> ())

let add_node t name =
  alive t;
  check_name name;
  match Digraph.node_of_name t.graph name with
  | Some v -> v
  | None ->
      log_record t (node_record name);
      Digraph.add_node t.graph name

let link t src label dst =
  alive t;
  List.iter check_name [ src; label; dst ];
  ignore (add_node t src);
  ignore (add_node t dst);
  let s = Digraph.node_of_name t.graph src |> Option.get in
  let d = Digraph.node_of_name t.graph dst |> Option.get in
  let lbl = Digraph.label_of_name t.graph label in
  let already =
    match lbl with Some lbl -> Digraph.mem_edge t.graph ~src:s ~lbl ~dst:d | None -> false
  in
  if not already then begin
    log_record t (edge_record src label dst);
    Digraph.add_edge t.graph ~src:s ~label ~dst:d
  end

let sync t =
  alive t;
  match t.chan with
  | V2 w -> Wal.sync w
  | V1 oc -> v1_fsync t oc

(* ---- compact --------------------------------------------------------- *)

let compact t =
  alive t;
  (* the whole graph goes into the packed binary snapshot. Crash-atomic:
     pack to .tmp (pack_stream fsyncs the file itself), rename over,
     fsync the directory so the rename survives power loss. *)
  let csr = snapshot_path t.path in
  let csr_tmp = csr ^ ".tmp" in
  Disk_csr.pack_digraph t.graph ~path:csr_tmp;
  Sys.rename csr_tmp csr;
  let dir = Filename.dirname t.path in
  Wal.fsync_dir dir;
  (* ... and the log restarts empty, in v2 (framed) format — this is the
     single migration point for legacy text logs. A crash between the
     two renames is safe: replaying the full old log on top of the
     snapshot is idempotent (node adds and edge adds both dedup). *)
  let tmp = t.path ^ ".tmp" in
  (match Wal.open_append ~policy:t.pol tmp with
  | Error e -> failwith ("Store: compact: " ^ e)
  | Ok (w, _) -> Wal.close w);
  (match t.chan with
  | V1 oc -> close_out oc
  | V2 w -> Wal.close w);
  Sys.rename tmp t.path;
  Wal.fsync_dir dir;
  match Wal.open_append ~policy:t.pol t.path with
  | Error e -> failwith ("Store: compact: " ^ e)
  | Ok (w, _) -> t.chan <- V2 w

let close t =
  if not t.closed then begin
    (match t.chan with
    | V1 oc ->
        (match t.pol with
        | Wal.Never -> ()
        | Wal.Always | Wal.Every _ ->
            if t.v1_unsynced > 0 then try v1_fsync t oc with Unix.Unix_error _ -> ());
        flush oc;
        close_out oc
    | V2 w -> Wal.close w);
    t.closed <- true
  end

(* ---- verify ---------------------------------------------------------- *)

let verify path =
  if not (Sys.file_exists path) then
    Ok { format = Framed_v2; entries_replayed = 0; bytes_discarded = 0; outcome = `Clean }
  else
    match detect_format path with
    | Framed_v2 -> (
        match Wal.scan path with
        | Error e -> Error e
        | Ok r ->
            (* parse every payload too: a validly-framed record with a
               malformed body is still corruption *)
            let ok = ref 0 in
            let parse_err = ref None in
            (try
               List.iter
                 (fun payload ->
                   (match String.split_on_char '\t' payload with
                   | [ "N"; _ ] | [ "E"; _; _; _ ] -> ()
                   | _ -> raise Exit);
                   incr ok)
                 r.Wal.entries
             with Exit -> parse_err := Some !ok);
            let outcome =
              match (!parse_err, r.Wal.outcome) with
              | Some _, _ -> `Corrupt_record
              | None, Wal.Clean -> `Clean
              | None, Wal.Torn_tail _ -> `Torn_tail
              | None, Wal.Corrupt_record _ -> `Corrupt_record
            in
            Ok
              {
                format = Framed_v2;
                entries_replayed = !ok;
                bytes_discarded = Wal.bytes_discarded r;
                outcome;
              })
    | Text_v1 -> (
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let complete =
          match String.rindex_opt text '\n' with
          | None -> ""
          | Some i -> String.sub text 0 (i + 1)
        in
        let torn = String.length text - String.length complete in
        let ok = ref 0 in
        let corrupt = ref false in
        List.iter
          (fun line ->
            if line <> "" && not !corrupt then
              match String.split_on_char '\t' line with
              | [ "N"; _ ] | [ "E"; _; _; _ ] -> incr ok
              | _ -> corrupt := true)
          (String.split_on_char '\n' complete);
        Ok
          {
            format = Text_v1;
            entries_replayed = !ok;
            bytes_discarded = torn;
            outcome =
              (if !corrupt then `Corrupt_record
               else if torn > 0 then `Torn_tail
               else `Clean);
          })
