type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* parsing *)

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (c.pos, msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c (Printf.sprintf "expected %C, found end of input" ch)

let parse_literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
                let hex = String.sub c.text c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex) with Failure _ -> fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* encode the code point as UTF-8 (basic plane only) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | other -> fail c (Printf.sprintf "bad escape \\%c" other));
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail c (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '{' ->
      advance c;
      parse_object c []
  | Some '[' ->
      advance c;
      parse_array c []
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

and parse_object c acc =
  skip_ws c;
  match peek c with
  | Some '}' ->
      advance c;
      Object (List.rev acc)
  | _ ->
      skip_ws c;
      expect c '"';
      let key = parse_string_body c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      (match peek c with
      | Some ',' ->
          advance c;
          skip_ws c;
          if peek c = Some '}' then fail c "trailing comma in object"
          else parse_object c ((key, v) :: acc)
      | Some '}' ->
          advance c;
          Object (List.rev ((key, v) :: acc))
      | _ -> fail c "expected ',' or '}'")

and parse_array c acc =
  skip_ws c;
  match peek c with
  | Some ']' ->
      advance c;
      Array (List.rev acc)
  | _ ->
      let v = parse_value c in
      skip_ws c;
      (match peek c with
      | Some ',' ->
          advance c;
          skip_ws c;
          if peek c = Some ']' then fail c "trailing comma in array"
          else parse_array c (v :: acc)
      | Some ']' ->
          advance c;
          Array (List.rev (v :: acc))
      | _ -> fail c "expected ',' or ']'")

let value_of_string text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with None -> () | Some _ -> fail c "trailing input");
  v

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let nl indent = if pretty then Buffer.add_string buf ("\n" ^ String.make indent ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else
          (* shortest decimal that round-trips: %.15g covers almost
             every value (and prints 2.17 as "2.17"); the rare
             remainder needs all 17 digits *)
          let s = Printf.sprintf "%.15g" f in
          Buffer.add_string buf
            (if float_of_string s = f then s else Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string s);
        Buffer.add_char buf '"'
    | Array [] -> Buffer.add_string buf "[]"
    | Array items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            go (indent + 2) item)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | Array _ -> None

(* ------------------------------------------------------------------ *)
(* graph <-> JSON *)

let to_string ?pretty g =
  let nodes =
    List.map (fun v -> String (Digraph.node_name g v)) (Digraph.nodes g)
  in
  let edges =
    List.rev
      (Digraph.fold_edges
         (fun acc e ->
           Object
             [
               ("src", String (Digraph.node_name g e.Digraph.src));
               ("label", String (Digraph.label_name g e.Digraph.lbl));
               ("dst", String (Digraph.node_name g e.Digraph.dst));
             ]
           :: acc)
         [] g)
  in
  value_to_string ?pretty (Object [ ("nodes", Array nodes); ("edges", Array edges) ])

let shape_error msg = raise (Parse_error (0, "graph document: " ^ msg))

let of_string text =
  let v = value_of_string text in
  let g = Digraph.create () in
  (match member "nodes" v with
  | Some (Array names) ->
      List.iter
        (function
          | String name -> ignore (Digraph.add_node g name)
          | Null | Bool _ | Number _ | Array _ | Object _ -> shape_error "node must be a string")
        names
  | Some _ -> shape_error "\"nodes\" must be an array"
  | None -> ());
  (match member "edges" v with
  | Some (Array edges) ->
      List.iter
        (fun e ->
          match (member "src" e, member "label" e, member "dst" e) with
          | Some (String src), Some (String label), Some (String dst) ->
              Digraph.link g src label dst
          | _ -> shape_error "edge must have string src/label/dst")
        edges
  | Some _ -> shape_error "\"edges\" must be an array"
  | None -> shape_error "missing \"edges\"");
  g
